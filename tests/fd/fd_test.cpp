// Tests for the heartbeat failure detector: completeness (crashed nodes get
// suspected), eventual accuracy (false suspicions rescinded, timeouts grow),
// and listener notifications.
#include "fd/fd.hpp"

#include <gtest/gtest.h>

#include "common/test_world.hpp"

namespace dpu {
namespace {

struct Rig {
  explicit Rig(SimConfig config) : world(config) {
    FdModule::Config fc;
    fc.heartbeat_interval = 20 * kMillisecond;
    fc.initial_timeout = 100 * kMillisecond;
    fc.timeout_increment = 100 * kMillisecond;
    handles = testing::install_substrate(world, /*with_rp2p=*/false,
                                         /*with_rbcast=*/false,
                                         /*with_fd=*/true, fc);
  }

  SimWorld world;
  std::vector<testing::SubstrateHandles> handles;
};

class RecordingFdListener final : public FdListener {
 public:
  void on_suspect(NodeId node) override { suspects.push_back(node); }
  void on_trust(NodeId node) override { trusts.push_back(node); }
  std::vector<NodeId> suspects, trusts;
};

TEST(Fd, NoFalseSuspicionsOnHealthyNetwork) {
  Rig rig(SimConfig{.num_stacks = 4, .seed = 1});
  rig.world.run_for(5 * kSecond);
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_TRUE(rig.handles[i].fd->fd_suspected().empty()) << "stack " << i;
    EXPECT_EQ(rig.handles[i].fd->false_suspicions(), 0u);
  }
}

TEST(Fd, CrashedNodeEventuallySuspectedByAll) {
  Rig rig(SimConfig{.num_stacks = 4, .seed = 2});
  rig.world.at(kSecond, [&]() { rig.world.crash(2); });
  rig.world.run_for(3 * kSecond);
  for (NodeId i = 0; i < 4; ++i) {
    if (i == 2) continue;
    EXPECT_TRUE(rig.handles[i].fd->fd_suspects(2)) << "stack " << i;
    EXPECT_EQ(rig.handles[i].fd->fd_suspected(), std::vector<NodeId>{2});
  }
}

TEST(Fd, ListenerNotifiedOnSuspect) {
  Rig rig(SimConfig{.num_stacks = 3, .seed = 3});
  RecordingFdListener listener;
  rig.world.stack(0).listen<FdListener>(kFdService, &listener, nullptr);
  rig.world.at(kSecond, [&]() { rig.world.crash(1); });
  rig.world.run_for(3 * kSecond);
  ASSERT_EQ(listener.suspects.size(), 1u);
  EXPECT_EQ(listener.suspects[0], 1u);
  EXPECT_TRUE(listener.trusts.empty());
}

TEST(Fd, PartitionHealRescindsSuspicionAndRaisesTimeout) {
  Rig rig(SimConfig{.num_stacks = 2, .seed = 4});
  RecordingFdListener listener;
  rig.world.stack(0).listen<FdListener>(kFdService, &listener, nullptr);

  // Cut the link both ways for 500ms — long enough to trip the 100ms
  // timeout — then heal.
  rig.world.at(kSecond, [&]() {
    rig.world.set_link_filter([](NodeId, NodeId) { return false; });
  });
  rig.world.at(1500 * kMillisecond,
               [&]() { rig.world.set_link_filter(nullptr); });
  rig.world.run_for(3 * kSecond);

  EXPECT_FALSE(rig.handles[0].fd->fd_suspects(1));
  ASSERT_EQ(listener.suspects.size(), 1u);
  ASSERT_EQ(listener.trusts.size(), 1u);
  EXPECT_EQ(rig.handles[0].fd->false_suspicions(), 1u);
}

TEST(Fd, EventuallyStopsFalselySuspectingFlakyLink) {
  // With the adaptive timeout, repeated short outages must eventually stop
  // producing suspicions: each false suspicion raises the bar by 100ms.
  Rig rig(SimConfig{.num_stacks = 2, .seed = 5});
  // Outage pattern: 150ms blackout at the start of every second for 6s.
  for (int cycle = 0; cycle < 6; ++cycle) {
    rig.world.at(cycle * kSecond, [&]() {
      rig.world.set_link_filter([](NodeId, NodeId) { return false; });
    });
    rig.world.at(cycle * kSecond + 150 * kMillisecond,
                 [&]() { rig.world.set_link_filter(nullptr); });
  }
  rig.world.run_for(7 * kSecond);
  // 100ms initial timeout trips on a 150ms outage once or twice; after the
  // increment(s), the 150ms outages are below the bar.
  EXPECT_LE(rig.handles[0].fd->false_suspicions(), 2u);
  EXPECT_FALSE(rig.handles[0].fd->fd_suspects(1));

  // And the final state stays quiet through more outages.
  const auto before = rig.handles[0].fd->false_suspicions();
  for (int cycle = 7; cycle < 10; ++cycle) {
    rig.world.at(cycle * kSecond, [&]() {
      rig.world.set_link_filter([](NodeId, NodeId) { return false; });
    });
    rig.world.at(cycle * kSecond + 150 * kMillisecond,
                 [&]() { rig.world.set_link_filter(nullptr); });
  }
  rig.world.run_for(4 * kSecond);
  EXPECT_EQ(rig.handles[0].fd->false_suspicions(), before);
}

TEST(Fd, SuspectsQueryBoundsChecked) {
  Rig rig(SimConfig{.num_stacks = 2, .seed = 6});
  rig.world.run_for(kSecond);
  EXPECT_FALSE(rig.handles[0].fd->fd_suspects(99));  // out of range: false
}

}  // namespace
}  // namespace dpu
