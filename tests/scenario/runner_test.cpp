// Scenario runner: fault/update execution, audits, and deterministic replay.
#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include <string>

#include "scenario/library.hpp"

namespace dpu::scenario {
namespace {

/// Small, fast base spec for targeted runner tests.
ScenarioSpec small_spec(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.n = 3;
  spec.duration = 3 * kSecond;
  spec.drain = 20 * kSecond;
  spec.workload.rate_per_stack = 15.0;
  return spec;
}

TEST(ScenarioRunner, InvalidSpecThrows) {
  ScenarioSpec spec = small_spec("broken");
  spec.crashes = {{kSecond, 9}};
  EXPECT_THROW((void)run_scenario(spec, 1), std::invalid_argument);
}

TEST(ScenarioRunner, CleanSwitchDeliversEverythingEverywhere) {
  ScenarioSpec spec = small_spec("clean");
  spec.updates = {{1500 * kMillisecond, 0, "abcast.seq"}};
  const ScenarioResult result = run_scenario(spec, 7);
  EXPECT_TRUE(result.ok()) << result.abcast_report.summary() << "\n"
                           << result.generic_report.summary();
  EXPECT_GT(result.messages_sent, 0u);
  // Every message reaches every stack exactly once.
  EXPECT_EQ(result.deliveries, result.messages_sent * spec.n);
  ASSERT_EQ(result.switch_windows.size(), 1u);
  EXPECT_GE(result.switch_windows[0].second, result.switch_windows[0].first);
  EXPECT_GT(result.max_switch_downtime(), 0);
  for (const std::string& protocol : result.final_protocol) {
    EXPECT_EQ(protocol, "abcast.seq");
  }
}

TEST(ScenarioRunner, CrashDuringReplacementKeepsAuditClean) {
  // The curated scenario of the same name: a stack dies 5 ms after the
  // switch is requested; survivors must complete it and stay audit-clean.
  const std::optional<ScenarioSpec> spec =
      find_scenario("crash-during-replacement");
  ASSERT_TRUE(spec.has_value());
  const ScenarioResult result = run_scenario(*spec, 11);
  EXPECT_TRUE(result.abcast_report.ok) << result.abcast_report.summary();
  EXPECT_TRUE(result.generic_report.ok) << result.generic_report.summary();
  EXPECT_EQ(result.crashed, std::set<NodeId>{3});
  EXPECT_TRUE(result.final_protocol[3].empty());
  for (NodeId i = 0; i < spec->n; ++i) {
    if (i == 3) continue;
    EXPECT_EQ(result.final_protocol[i], "abcast.ct") << "stack " << i;
  }
}

TEST(ScenarioRunner, LossWindowDropsPackets) {
  ScenarioSpec lossless = small_spec("control");
  ScenarioSpec lossy = lossless;
  lossy.name = "lossy";
  lossy.loss_windows = {{kSecond, 2 * kSecond, 0.3, 0.0}};
  const ScenarioResult a = run_scenario(lossless, 5);
  const ScenarioResult b = run_scenario(lossy, 5);
  EXPECT_EQ(a.packets_dropped, 0u);
  EXPECT_GT(b.packets_dropped, 0u);
  // The loss is transient, so the audit still passes.
  EXPECT_TRUE(b.ok()) << b.abcast_report.summary();
}

TEST(ScenarioRunner, PartitionBlocksAndHeals) {
  ScenarioSpec spec = small_spec("partitioned");
  spec.partitions = {{kSecond, 2 * kSecond, {2}}};
  const ScenarioResult result = run_scenario(spec, 9);
  // Cross-partition packets were dropped...
  EXPECT_GT(result.packets_dropped, 0u);
  // ...but the partition healed, so agreement holds for everyone.
  EXPECT_TRUE(result.ok()) << result.abcast_report.summary();
  EXPECT_EQ(result.deliveries, result.messages_sent * spec.n);
}

TEST(ScenarioRunner, CrashRecoveryConvergesToNewProtocol) {
  // Curated crash-recovery-switch: node 3 dies 5 ms into a real CT->SEQ
  // replacement and restarts 2.5 s later with fresh protocol state.  The
  // facade state transfer must replay the missed history (including the
  // switch marker) so the new incarnation re-performs the switch and the
  // audit holds across the restart — the recovered node is a *correct*
  // stack again.
  const std::optional<ScenarioSpec> spec =
      find_scenario("crash-recovery-switch");
  ASSERT_TRUE(spec.has_value());
  const ScenarioResult result = run_scenario(*spec, 17);
  EXPECT_TRUE(result.abcast_report.ok) << result.abcast_report.summary();
  EXPECT_TRUE(result.generic_report.ok) << result.generic_report.summary();
  EXPECT_TRUE(result.crashed.empty());
  EXPECT_EQ(result.recovered, std::set<NodeId>{3});
  for (NodeId i = 0; i < spec->n; ++i) {
    EXPECT_EQ(result.final_protocol[i], "abcast.seq") << "stack " << i;
  }
  // The recovered stack completed the switch too: the switch window closes
  // only when the *last* stack finishes, which after a recovery is the
  // replayed switch on the new incarnation (well after the request).
  ASSERT_EQ(result.switch_windows.size(), 1u);
  EXPECT_GE(result.switch_windows[0].second, spec->recoveries[0].at);
}

TEST(ScenarioRunner, CrashRecoveryWithoutUpdatesStaysClean) {
  ScenarioSpec spec = small_spec("recover-plain");
  spec.n = 3;
  spec.crashes = {{kSecond, 2}};
  spec.recoveries = {{2 * kSecond, 2}};
  const ScenarioResult result = run_scenario(spec, 23);
  EXPECT_TRUE(result.ok()) << result.abcast_report.summary() << "\n"
                           << result.generic_report.summary();
  EXPECT_TRUE(result.crashed.empty());
  EXPECT_EQ(result.recovered, std::set<NodeId>{2});
  // The recovered node's replay resurfaces the full history: its live
  // incarnation delivers everything any correct stack delivered (checked by
  // the audit), and the per-node delivery totals stay exactly n per sent
  // message *plus* the dead incarnation's deliveries.
  EXPECT_GE(result.deliveries, result.messages_sent * spec.n);
}

TEST(ScenarioRunner, RecoveryIntoQuietGroupStillConverges) {
  // The workload ends before the node recovers, so no new decisions ever
  // arrive to reveal the gap: convergence rests entirely on the recovered
  // incarnation's proactive start-time consensus_sync.  Agreement demands
  // its live incarnation still deliver the full history.
  ScenarioSpec spec = small_spec("recover-quiet");
  spec.workload.stop_after = 1500 * kMillisecond;
  spec.crashes = {{kSecond, 2}};
  spec.recoveries = {{2500 * kMillisecond, 2}};
  const ScenarioResult result = run_scenario(spec, 37);
  EXPECT_TRUE(result.ok()) << result.abcast_report.summary() << "\n"
                           << result.generic_report.summary();
  EXPECT_EQ(result.recovered, std::set<NodeId>{2});
}

TEST(ScenarioRunner, UpdateScheduledOnRecoveredInitiatorStillFires) {
  // The update plan belongs to the scenario driver, not to a stack
  // incarnation: a node that crashes and recovers *before* its scheduled
  // update must still initiate it (the engine's recovery purge discards
  // the dead incarnation's events, never driver control events).
  ScenarioSpec spec = small_spec("recover-then-update");
  spec.crashes = {{kSecond, 0}};
  spec.recoveries = {{1500 * kMillisecond, 0}};
  spec.updates = {{2500 * kMillisecond, 0, "abcast.ct"}};
  const ScenarioResult result = run_scenario(spec, 31);
  EXPECT_TRUE(result.ok()) << result.abcast_report.summary() << "\n"
                           << result.generic_report.summary();
  EXPECT_EQ(result.recovered, std::set<NodeId>{0});
  ASSERT_EQ(result.switch_windows.size(), 1u)
      << "the update initiated by the recovered node never fired";
  for (const std::string& protocol : result.final_protocol) {
    EXPECT_EQ(protocol, "abcast.ct");
  }
}

TEST(ScenarioRunner, LinkOverridesAreDirectional) {
  // A window where only the 0 -> 1 direction is fully lossy.  Traffic still
  // converges (rp2p retransmits after the window; 1 -> 0 stays clean), and
  // the directional drop shows up in the packet counters.
  ScenarioSpec spec = small_spec("asymmetric");
  spec.loss_windows = {
      {kSecond, 1500 * kMillisecond, 0.0, 0.0, {{0, 1, 1.0, 0.0, 0}}}};
  const ScenarioResult result = run_scenario(spec, 29);
  EXPECT_GT(result.packets_dropped, 0u);
  EXPECT_TRUE(result.ok()) << result.abcast_report.summary();

  // Same window with zero drop but extra one-way latency: nothing dropped.
  ScenarioSpec slow = small_spec("slow-link");
  slow.loss_windows = {
      {kSecond, 1500 * kMillisecond, 0.0, 0.0,
       {{0, 1, 0.0, 0.0, 5 * kMillisecond}}}};
  const ScenarioResult slow_result = run_scenario(slow, 29);
  EXPECT_EQ(slow_result.packets_dropped, 0u);
  EXPECT_TRUE(slow_result.ok()) << slow_result.abcast_report.summary();
}

TEST(ScenarioRunner, SameSeedReplaysToIdenticalJson) {
  const std::optional<ScenarioSpec> spec = find_scenario("lossy-link-switch");
  ASSERT_TRUE(spec.has_value());
  const std::string a = run_scenario(*spec, 3).to_json().dump(2);
  const std::string b = run_scenario(*spec, 3).to_json().dump(2);
  EXPECT_EQ(a, b);
  // A different seed perturbs at least the latency samples.
  const std::string c = run_scenario(*spec, 4).to_json().dump(2);
  EXPECT_NE(a, c);
}

TEST(ScenarioRunner, ConsensusMechanismSwitchesLive) {
  ScenarioSpec spec = small_spec("consensus-live");
  spec.mechanism = Mechanism::kReplConsensus;
  spec.initial_protocol = "consensus.ct";
  spec.updates = {{1500 * kMillisecond, 0, "consensus.mr"}};
  const ScenarioResult result = run_scenario(spec, 21);
  EXPECT_TRUE(result.ok()) << result.abcast_report.summary() << "\n"
                           << result.generic_report.summary();
  EXPECT_GT(result.decisions_delivered, 0u);
  ASSERT_EQ(result.switch_windows.size(), 1u);
  for (const std::string& protocol : result.final_protocol) {
    EXPECT_EQ(protocol, "consensus.mr");
  }
}

TEST(ScenarioRunner, BaselineMechanismsRunTheSamePlan) {
  for (Mechanism m : {Mechanism::kMaestro, Mechanism::kGraceful}) {
    ScenarioSpec spec = small_spec(std::string("baseline-") +
                                   mechanism_name(m));
    spec.mechanism = m;
    spec.updates = {{1500 * kMillisecond, 0, "abcast.ct"}};
    const ScenarioResult result = run_scenario(spec, 13);
    EXPECT_TRUE(result.abcast_report.ok)
        << mechanism_name(m) << ": " << result.abcast_report.summary();
    EXPECT_EQ(result.switch_windows.size(), 1u) << mechanism_name(m);
  }
}

TEST(ScenarioRunner, BurstAndRampPhasesShapeTheLoad) {
  // Fixed-period workload so the send count is a pure function of the rate
  // schedule.  Base 15 msg/s for 3 s; the ramp doubles the rate over the
  // first second (avg 22.5) and holds 30, with a 3x burst on top of the
  // ramped rate during the middle second (90): ~142.5 per stack against a
  // flat 45 — a ratio just above 3.
  ScenarioSpec flat = small_spec("flat");
  flat.workload.poisson = false;
  const ScenarioResult base = run_scenario(flat, 3);

  ScenarioSpec shaped = flat;
  shaped.name = "shaped";
  shaped.workload.phases = {
      {WorkloadPhase::Kind::kRamp, 0, kSecond, 30.0},
      {WorkloadPhase::Kind::kBurst, kSecond, 2 * kSecond, 3.0}};
  const ScenarioResult result = run_scenario(shaped, 3);
  EXPECT_TRUE(result.ok()) << result.abcast_report.summary();
  EXPECT_GT(result.messages_sent, base.messages_sent * 3);
  EXPECT_LT(result.messages_sent, (base.messages_sent * 7) / 2);
  EXPECT_EQ(result.deliveries, result.messages_sent * shaped.n);
}

TEST(ScenarioRunner, DualServiceSwitchThroughOneControlPlane) {
  // The tentpole end to end: one spec, two replaceable layers, every update
  // dispatched through the same UpdateApi.  Consensus switches ct -> mr
  // under a live CT-ABcast, then the abcast layer itself switches to the
  // sequencer; both converge on every stack and the audit holds.
  ScenarioSpec spec = small_spec("dual-switch");
  spec.updates = {
      {1200 * kMillisecond, 0, "consensus.mr", "consensus", "repl-consensus"},
      {2200 * kMillisecond, 1, "abcast.seq"},
  };
  const ScenarioResult result = run_scenario(spec, 19);
  EXPECT_TRUE(result.ok()) << result.abcast_report.summary() << "\n"
                           << result.generic_report.summary();
  EXPECT_EQ(result.deliveries, result.messages_sent * spec.n);
  ASSERT_EQ(result.updates.size(), 2u);
  EXPECT_EQ(result.updates[0].service, "consensus");
  EXPECT_EQ(result.updates[0].protocol, "consensus.mr");
  EXPECT_EQ(result.updates[0].completions, spec.n);
  EXPECT_EQ(result.updates[1].service, "abcast");
  EXPECT_EQ(result.updates[1].protocol, "abcast.seq");
  EXPECT_EQ(result.updates[1].completions, spec.n);
  for (const UpdateOutcome& o : result.updates) {
    EXPECT_GT(o.convergence(), 0) << o.service;
  }
  // final_protocol reports the last-updated service (abcast).
  for (const std::string& protocol : result.final_protocol) {
    EXPECT_EQ(protocol, "abcast.seq");
  }
  // The per-update records surface in the JSON document for the perf gate.
  const Json doc = result.to_json();
  EXPECT_EQ(doc.at("updates").size(), 2u);
  EXPECT_EQ(doc.at("updates").items()[0].at("service").as_string(),
            "consensus");
}

TEST(ScenarioRunner, TripleServiceSwitchThroughOneControlPlane) {
  // One substrate for any service: rbcast, consensus and abcast hot-swap in
  // a single run through the same request_update entry point.
  ScenarioSpec spec = small_spec("triple-switch");
  spec.duration = 4 * kSecond;
  spec.updates = {
      {kSecond, 0, "rbcast.norelay"},
      {2 * kSecond, 1, "consensus.mr"},
      {3 * kSecond, 2, "abcast.seq"},
  };
  const ScenarioResult result = run_scenario(spec, 23);
  EXPECT_TRUE(result.ok()) << result.abcast_report.summary() << "\n"
                           << result.generic_report.summary();
  EXPECT_EQ(result.deliveries, result.messages_sent * spec.n);
  ASSERT_EQ(result.updates.size(), 3u);
  EXPECT_EQ(result.updates[0].service, "rbcast");
  EXPECT_EQ(result.updates[0].protocol, "rbcast.norelay");
  EXPECT_EQ(result.updates[0].completions, spec.n);
  EXPECT_EQ(result.updates[1].service, "consensus");
  EXPECT_EQ(result.updates[2].service, "abcast");
  for (const UpdateOutcome& o : result.updates) {
    EXPECT_EQ(o.completions, spec.n) << o.service;
  }
}

TEST(ScenarioRunner, GmSwitchRunsThroughTheControlPlane) {
  ScenarioSpec spec = small_spec("gm-swap");
  spec.updates = {{1500 * kMillisecond, 0, "gm.abcast"}};
  const ScenarioResult result = run_scenario(spec, 29);
  EXPECT_TRUE(result.ok()) << result.abcast_report.summary() << "\n"
                           << result.generic_report.summary();
  ASSERT_EQ(result.updates.size(), 1u);
  EXPECT_EQ(result.updates[0].service, "gm");
  EXPECT_EQ(result.updates[0].completions, spec.n);
  for (const std::string& protocol : result.final_protocol) {
    EXPECT_EQ(protocol, "gm.abcast");
  }
}

TEST(ScenarioRunner, PolicyDrivesTheSwitchWithoutAScriptedUpdate) {
  // Closed-loop adaptation: no `updates` entry; a PolicyEngine rule watches
  // the SEQ sequencer and fails over to CT when a fault window isolates it.
  const std::optional<ScenarioSpec> spec =
      find_scenario("policy-failover-generic");
  ASSERT_TRUE(spec.has_value());
  EXPECT_TRUE(spec->updates.empty());
  const ScenarioResult result = run_scenario(*spec, 13);
  EXPECT_TRUE(result.ok()) << result.abcast_report.summary() << "\n"
                           << result.generic_report.summary();
  // The policy fired: a full update (request + n completions) shows up in
  // the generic convergence records, and every stack ends on the fallback.
  ASSERT_GE(result.updates.size(), 1u);
  EXPECT_EQ(result.updates[0].service, "abcast");
  EXPECT_EQ(result.updates[0].protocol, "abcast.ct");
  EXPECT_EQ(result.updates[0].completions, spec->n);
  for (const std::string& protocol : result.final_protocol) {
    EXPECT_EQ(protocol, "abcast.ct");
  }
}

}  // namespace
}  // namespace dpu::scenario
