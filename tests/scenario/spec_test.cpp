// ScenarioSpec JSON round-trip, static validation, and the curated library.
#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "scenario/json.hpp"
#include "scenario/library.hpp"

namespace dpu::scenario {
namespace {

ScenarioSpec rich_spec() {
  ScenarioSpec spec;
  spec.name = "rich";
  spec.description = "all fields populated";
  spec.n = 5;
  spec.duration = 7 * kSecond;
  spec.drain = 11 * kSecond;
  spec.mechanism = Mechanism::kRepl;
  spec.initial_protocol = "abcast.ct";
  spec.base_drop = 0.03;
  spec.base_duplicate = 0.01;
  spec.workload.rate_per_stack = 42.5;
  spec.workload.message_size = 96;
  spec.workload.poisson = false;
  spec.workload.start_after = 250 * kMillisecond;
  spec.workload.stop_after = 6 * kSecond;
  spec.workload.phases = {
      {WorkloadPhase::Kind::kRamp, kSecond, 2 * kSecond, 80.0},
      {WorkloadPhase::Kind::kBurst, 3 * kSecond, 4 * kSecond, 2.5}};
  spec.crashes = {{3 * kSecond, 4}};
  spec.recoveries = {{5 * kSecond, 4}};
  spec.late_joins = {{4 * kSecond, 2}};
  spec.partitions = {{kSecond, 2 * kSecond, {1, 2}}};
  spec.loss_windows = {{500 * kMillisecond,
                        900 * kMillisecond,
                        0.2,
                        0.05,
                        {{0, 1, 0.5, 0.0, 2 * kMillisecond},
                         {1, 0, 0.0, 0.1, 0}}}};
  spec.updates = {{2 * kSecond, 0, "abcast.seq"},
                  {4 * kSecond, 3, "abcast.ct"},
                  // Service-generic action: a consensus switch riding the
                  // same plan via its own mechanism.
                  {5 * kSecond, 1, "consensus.mr", "consensus",
                   "repl-consensus"}};
  spec.policies = {{"lat-failover", "abcast", "abcast.seq", "abcast.ct",
                    "latency", kNoNode, 25 * kMillisecond, 0.0,
                    500 * kMillisecond, kSecond},
                   {"", "consensus", "", "consensus.mr", "fd-suspect", 1, 0,
                    0.0, kSecond, 0}};
  spec.hop_cost = 5 * kMicrosecond;
  spec.module_create_cost = 15 * kMillisecond;
  spec.fd_heartbeat = 300 * kMillisecond;
  spec.fd_timeout = 1200 * kMillisecond;
  spec.rbcast_relay = false;
  spec.rt_sockets = true;
  spec.max_retransmissions = 1234;
  return spec;
}

TEST(ScenarioSpec, JsonRoundTripIsExact) {
  const ScenarioSpec spec = rich_spec();
  const ScenarioSpec back = ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(spec, back);
  // And through text, at both indentations.
  EXPECT_EQ(spec, ScenarioSpec::from_json_text(spec.to_json().dump()));
  EXPECT_EQ(spec, ScenarioSpec::from_json_text(spec.to_json().dump(2)));
}

TEST(ScenarioSpec, DefaultsSurviveSparseJson) {
  const ScenarioSpec defaults;
  const ScenarioSpec parsed =
      ScenarioSpec::from_json_text(R"({"name": "sparse"})");
  EXPECT_EQ(parsed.n, defaults.n);
  EXPECT_EQ(parsed.duration, defaults.duration);
  EXPECT_EQ(parsed.mechanism, defaults.mechanism);
  EXPECT_EQ(parsed.workload, defaults.workload);
  EXPECT_TRUE(parsed.crashes.empty());
}

TEST(ScenarioSpec, UnknownKeysAreRejected) {
  EXPECT_THROW(
      (void)ScenarioSpec::from_json_text(R"({"name": "x", "durationns": 5})"),
      std::runtime_error);
  EXPECT_THROW((void)ScenarioSpec::from_json_text(
                   R"({"name": "x", "workload": {"rate": 10}})"),
               std::runtime_error);
}

TEST(ScenarioSpec, EngineNamesRoundTrip) {
  for (Engine e : {Engine::kSim, Engine::kRt, Engine::kProc}) {
    EXPECT_EQ(engine_from_name(engine_name(e)), e);
  }
  EXPECT_THROW((void)engine_from_name("gpu"), std::runtime_error);
  // The engine field survives the JSON round trip.
  ScenarioSpec spec = rich_spec();
  spec.engine = Engine::kRt;
  EXPECT_EQ(ScenarioSpec::from_json(spec.to_json()).engine, Engine::kRt);
  spec.engine = Engine::kProc;
  EXPECT_EQ(ScenarioSpec::from_json(spec.to_json()).engine, Engine::kProc);
}

TEST(ScenarioSpec, DeploymentKnobsStayOffTheWireAtDefaults) {
  // fd tuning, relay and rt_sockets serialize only when set: existing spec
  // documents (and their campaign digests) must stay byte-stable.
  ScenarioSpec plain;
  plain.name = "plain";
  const Json j = plain.to_json();
  EXPECT_EQ(j.find("fd_heartbeat_ns"), nullptr);
  EXPECT_EQ(j.find("fd_timeout_ns"), nullptr);
  EXPECT_EQ(j.find("rbcast_relay"), nullptr);
  EXPECT_EQ(j.find("rt_sockets"), nullptr);
  EXPECT_EQ(plain, ScenarioSpec::from_json(j));

  // And each knob round-trips exactly once set.
  ScenarioSpec tuned = plain;
  tuned.fd_heartbeat = 500 * kMillisecond;
  tuned.fd_timeout = 2 * kSecond;
  tuned.rbcast_relay = false;
  tuned.rt_sockets = true;
  const Json tj = tuned.to_json();
  EXPECT_NE(tj.find("fd_heartbeat_ns"), nullptr);
  EXPECT_NE(tj.find("rbcast_relay"), nullptr);
  EXPECT_EQ(tuned, ScenarioSpec::from_json(tj));
}

TEST(ScenarioSpec, ValidationCoversFdTuning) {
  ScenarioSpec spec = rich_spec();
  spec.fd_heartbeat = kSecond;
  spec.fd_timeout = 500 * kMillisecond;  // timeout <= heartbeat: nonsense
  EXPECT_FALSE(spec.validate().empty());
  spec.fd_timeout = 0;
  spec.fd_heartbeat = -kSecond;
  EXPECT_FALSE(spec.validate().empty());
}

TEST(ScenarioSpec, MechanismNamesRoundTrip) {
  for (Mechanism m : {Mechanism::kNone, Mechanism::kRepl,
                      Mechanism::kReplConsensus, Mechanism::kReplRbcast,
                      Mechanism::kReplGm, Mechanism::kMaestro,
                      Mechanism::kGraceful}) {
    EXPECT_EQ(mechanism_from_name(mechanism_name(m)), m);
  }
  EXPECT_THROW((void)mechanism_from_name("paxos"), std::runtime_error);
}

TEST(ScenarioSpec, ValidSpecHasNoProblems) {
  EXPECT_TRUE(rich_spec().validate().empty());
}

TEST(ScenarioSpec, ValidationCatchesBadSchedules) {
  {
    ScenarioSpec s = rich_spec();
    s.crashes = {{kSecond, 7}};  // node out of range (n = 5)
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.crashes = {{kSecond, 1}, {2 * kSecond, 2}, {3 * kSecond, 3}};
    EXPECT_FALSE(s.validate().empty());  // kills the majority
  }
  {
    ScenarioSpec s = rich_spec();
    s.partitions = {{2 * kSecond, kSecond, {1}}};  // from >= until
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.partitions = {{kSecond, 2 * kSecond, {0, 1, 2, 3, 4}}};  // whole world
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.loss_windows = {{0, kSecond, 1.5, 0.0}};  // probability > 1
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.loss_windows = {{0, 2 * kSecond, 0.1, 0.0},
                      {kSecond, 3 * kSecond, 0.1, 0.0}};  // overlap
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    // A protocol whose prefix names no replaceable service has no
    // mechanism to default to.
    s.updates = {{kSecond, 0, "paxos.mr"}};
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.mechanism = Mechanism::kNone;  // update plan without a mechanism
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.updates = {{9 * kSecond, 0, "abcast.ct"}};  // after the workload window
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.recoveries = {{5 * kSecond, 2}};  // node 2 never crashed
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.recoveries = {{2 * kSecond, 4}};  // before the crash at 3 s
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.recoveries = {{4 * kSecond, 4}, {5 * kSecond, 4}};  // recovered twice
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.loss_windows[0].link_overrides = {{7, 0, 0.1, 0.0, 0}};  // src range
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.loss_windows[0].link_overrides = {{0, 1, 0.1, 0.0, -kSecond}};
    EXPECT_FALSE(s.validate().empty());  // negative extra latency
  }
}

TEST(ScenarioSpec, ValidationCoversServiceGenericUpdates) {
  {
    ScenarioSpec s = rich_spec();
    s.updates[2].mechanism = "raft";  // unknown mechanism name
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    // Mechanism manages "abcast" but the action targets "consensus".
    s.updates[2].mechanism = "maestro";
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    // Two mechanisms fighting over one service.
    s.updates.push_back({5500 * kMillisecond, 0, "abcast.ct", "", "maestro"});
    EXPECT_FALSE(s.validate().empty());
  }
  {
    // Consensus replacement composes only with the modular abcast
    // mechanism: a full-stack Maestro switch would destroy the facade.
    ScenarioSpec s = rich_spec();
    s.mechanism = Mechanism::kMaestro;
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.initial_consensus = "abcast.ct";  // not a consensus library
    EXPECT_FALSE(s.validate().empty());
  }
  {
    // target_service defaulting: the prefix rules the service.
    UpdateAction u{kSecond, 0, "consensus.mr"};
    EXPECT_EQ(u.target_service(), "consensus");
    u.service = "abcast";
    EXPECT_EQ(u.target_service(), "abcast");
  }
  {
    // Non-primary layers default to their repl-family facade, so a
    // mechanism-less consensus/rbcast/gm action is valid under kRepl.
    ScenarioSpec s = rich_spec();
    s.crashes.clear();
    s.recoveries.clear();
    s.late_joins.clear();
    s.updates = {{kSecond, 0, "consensus.mr"},
                 {2 * kSecond, 0, "rbcast.norelay"},
                 {3 * kSecond, 0, "gm.abcast"}};
    EXPECT_TRUE(s.validate().empty());
    EXPECT_EQ(s.update_mechanism(s.updates[0]), Mechanism::kReplConsensus);
    EXPECT_EQ(s.update_mechanism(s.updates[1]), Mechanism::kReplRbcast);
    EXPECT_EQ(s.update_mechanism(s.updates[2]), Mechanism::kReplGm);
    const auto managed = s.managed_services();
    EXPECT_EQ(managed.size(), 4u);  // + the spec-level abcast layer
  }
  {
    // ...but not under a stack-destroying abcast mechanism.
    ScenarioSpec s = rich_spec();
    s.policies.clear();
    s.crashes.clear();
    s.recoveries.clear();
    s.mechanism = Mechanism::kGraceful;
    s.updates = {{kSecond, 0, "abcast.seq"},
                 {2 * kSecond, 0, "rbcast.norelay"}};
    EXPECT_FALSE(s.validate().empty());
  }
  {
    // Crash-recovery now combines with every repl-family layer: the facade
    // substrate's state transfer (snapshot + replay tail, or version
    // metadata) replays/refreshes missed switches for rbcast and gm too.
    ScenarioSpec s = rich_spec();  // has a crash + recovery of node 4
    s.updates.push_back({5500 * kMillisecond, 2, "rbcast.norelay"});
    EXPECT_TRUE(s.validate().empty());
  }
  {
    // ...but the stack-rebuilding baselines have no state-transfer path, so
    // recoveries and late joins reject them.
    ScenarioSpec s = rich_spec();
    s.updates.clear();
    s.policies.clear();
    s.mechanism = Mechanism::kMaestro;
    EXPECT_FALSE(s.validate().empty());  // has a recovery and a late join
    s.crashes.clear();
    s.recoveries.clear();
    s.late_joins.clear();
    EXPECT_TRUE(s.validate().empty());
  }
}

TEST(ScenarioSpec, ValidationCoversLateJoins) {
  {
    ScenarioSpec s = rich_spec();
    s.late_joins = {{4 * kSecond, 9}};  // node out of range (n = 5)
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    // The synthetic crash lands at 1ms, so a join at or before that is
    // impossible to realize.
    s.late_joins = {{kMillisecond, 2}};
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.late_joins = {{3 * kSecond, 2}, {4 * kSecond, 2}};  // joined twice
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.late_joins = {{4 * kSecond, 4}};  // node 4 also crashes at 3 s
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.recoveries.push_back({5 * kSecond, 2});  // node 2 already late-joins
    EXPECT_FALSE(s.validate().empty());
  }
  {
    // Late joiners count as down until they join: with node 4 crashed,
    // joining nodes 1 and 2 late would leave only 2 of 5 alive.
    ScenarioSpec s = rich_spec();
    s.late_joins = {{4 * kSecond, 2}, {4500 * kMillisecond, 1}};
    EXPECT_FALSE(s.validate().empty());
  }
  {
    // late_joins stay off the JSON wire when empty (old specs unchanged).
    ScenarioSpec s = rich_spec();
    s.late_joins.clear();
    EXPECT_EQ(s.to_json().find("late_joins"), nullptr);
    EXPECT_EQ(s, ScenarioSpec::from_json(s.to_json()));
  }
}

TEST(ScenarioSpec, ValidationCoversPolicies) {
  {
    ScenarioSpec s = rich_spec();  // two well-formed policies
    EXPECT_TRUE(s.validate().empty());
    // Policies contribute their services to the composition plan.
    const auto managed = s.managed_services();
    EXPECT_EQ(managed.at("consensus"), Mechanism::kReplConsensus);
    EXPECT_EQ(managed.at("abcast"), Mechanism::kRepl);
  }
  {
    ScenarioSpec s = rich_spec();
    s.policies[0].to_protocol = "consensus.mr";  // wrong service prefix
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.policies[0].trigger = "entropy";  // unknown trigger
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.policies[0].latency_threshold = 0;  // latency trigger needs one
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.policies[1].node = 9;  // watched node out of range (n = 5)
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.policies[0].service = "rp2p";  // not a replaceable service
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.policies[0].window = 0;
    EXPECT_FALSE(s.validate().empty());
  }
}

TEST(ScenarioSpec, ValidationCoversWorkloadPhases) {
  {
    ScenarioSpec s = rich_spec();
    s.workload.phases[0].until = s.workload.phases[0].from;  // empty window
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.workload.phases[1].value = 0.0;  // burst factor must be positive
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.workload.phases[1].until = s.duration + kSecond;  // outlives workload
    EXPECT_FALSE(s.validate().empty());
  }
  {
    ScenarioSpec s = rich_spec();
    s.workload.rate_per_stack = 0.0;  // phases atop a zero base rate
    EXPECT_FALSE(s.validate().empty());
  }
}

TEST(ScenarioSpec, NegativeJsonSizesFailValidationInsteadOfWrapping) {
  // {"n": -1} wraps to 2^64-1 through size_t; without an upper bound the
  // runner would hang building stacks (or OOM on message_size).
  const ScenarioSpec bad_n = ScenarioSpec::from_json_text(
      R"({"name": "neg", "n": -1})");
  EXPECT_FALSE(bad_n.validate().empty());
  const ScenarioSpec bad_size = ScenarioSpec::from_json_text(
      R"({"name": "neg", "workload": {"message_size": -1}})");
  EXPECT_FALSE(bad_size.validate().empty());
  const ScenarioSpec too_many = ScenarioSpec::from_json_text(
      R"({"name": "big", "n": 100000})");
  EXPECT_FALSE(too_many.validate().empty());
}

TEST(ScenarioLibrary, CuratedScenariosAreValidAndDistinct) {
  const std::vector<ScenarioSpec> specs = curated_scenarios();
  ASSERT_GE(specs.size(), 8u);
  std::set<std::string> names;
  for (const ScenarioSpec& spec : specs) {
    const std::vector<std::string> problems = spec.validate();
    EXPECT_TRUE(problems.empty())
        << spec.name << ": " << (problems.empty() ? "" : problems.front());
    EXPECT_TRUE(names.insert(spec.name).second)
        << "duplicate name " << spec.name;
    // Library entries must round-trip (they are exported to CI tooling).
    EXPECT_EQ(spec, ScenarioSpec::from_json(spec.to_json())) << spec.name;
  }
  EXPECT_TRUE(find_scenario("crash-during-replacement").has_value());
  EXPECT_FALSE(find_scenario("no-such-scenario").has_value());
}

TEST(ScenarioJson, ParserHandlesEscapesAndNesting) {
  const Json v = Json::parse(
      R"({"s": "a\"b\\c\ndA", "arr": [1, -2.5, true, false, null],
          "nested": {"empty_obj": {}, "empty_arr": []}})");
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\ndA");
  EXPECT_EQ(v.at("arr").items()[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(v.at("arr").items()[1].as_double(), -2.5);
  EXPECT_TRUE(v.at("arr").items()[2].as_bool());
  EXPECT_TRUE(v.at("arr").items()[4].is_null());
  EXPECT_EQ(v.at("nested").at("empty_obj").size(), 0u);
  // dump -> parse -> dump is a fixed point.
  EXPECT_EQ(Json::parse(v.dump()).dump(), v.dump());
}

TEST(ScenarioJson, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse("{"), JsonParseError);
  EXPECT_THROW((void)Json::parse("[1,]"), JsonParseError);
  EXPECT_THROW((void)Json::parse("{\"a\" 1}"), JsonParseError);
  EXPECT_THROW((void)Json::parse("tru"), JsonParseError);
  EXPECT_THROW((void)Json::parse("1 2"), JsonParseError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), JsonParseError);
}

TEST(ScenarioJson, Int64RoundTripsExactly) {
  const std::int64_t big = 123'456'789'012'345'678LL;
  Json obj = Json::object();
  obj.set("t_ns", big);
  const Json back = Json::parse(obj.dump());
  EXPECT_EQ(back.at("t_ns").as_int(), big);
}

}  // namespace
}  // namespace dpu::scenario
