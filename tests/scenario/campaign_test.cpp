// Campaign runner: seed sweeps, JSON document shape, determinism.
#include "scenario/campaign.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/library.hpp"

namespace dpu::scenario {
namespace {

std::vector<ScenarioSpec> tiny_specs() {
  ScenarioSpec a;
  a.name = "tiny-switch";
  a.n = 3;
  a.duration = 2 * kSecond;
  a.drain = 15 * kSecond;
  a.workload.rate_per_stack = 10.0;
  a.updates = {{kSecond, 0, "abcast.seq"}};

  ScenarioSpec b = a;
  b.name = "tiny-static";
  b.mechanism = Mechanism::kNone;
  b.updates.clear();
  return {a, b};
}

TEST(Campaign, DocumentShapeAndVerdict) {
  CampaignOptions options;
  options.seeds = {1, 2};
  const CampaignOutcome outcome = run_campaign(tiny_specs(), options);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.runs, 4u);
  EXPECT_EQ(outcome.failed_runs, 0u);

  const Json& doc = outcome.document;
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("campaign").at("run_count").as_int(), 4);
  const auto& scenarios = doc.at("scenarios").items();
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].at("name").as_string(), "tiny-switch");
  EXPECT_TRUE(scenarios[0].at("ok").as_bool());
  ASSERT_EQ(scenarios[0].at("runs").size(), 2u);
  const Json& run = scenarios[0].at("runs").items()[0];
  EXPECT_TRUE(run.at("ok").as_bool());
  EXPECT_EQ(run.at("seed").as_int(), 1);
  EXPECT_GT(run.at("latency").at("samples").as_int(), 0);
  EXPECT_TRUE(run.at("audit").at("abcast_ok").as_bool());
  // The document survives a JSON round-trip (CI tooling parses it back).
  EXPECT_EQ(Json::parse(doc.dump(2)).dump(2), doc.dump(2));
}

// Byte-identity across repeats and worker-thread counts.  Runs the
// product-default stack configuration, so this also pins the batched
// packet path: batch boundaries (and therefore every datagram, ack and
// timer in the document) must fall identically run after run.
TEST(Campaign, DeterministicAcrossRepeatsAndThreadCounts) {
  CampaignOptions serial;
  serial.seeds = {1, 2};
  serial.threads = 1;
  CampaignOptions parallel = serial;
  parallel.threads = 4;
  const std::string a = run_campaign(tiny_specs(), serial).document.dump(2);
  const std::string b = run_campaign(tiny_specs(), serial).document.dump(2);
  const std::string c = run_campaign(tiny_specs(), parallel).document.dump(2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(Campaign, InvalidSpecBecomesFailedRunNotCrash) {
  ScenarioSpec bad = tiny_specs()[0];
  bad.name = "bad";
  bad.crashes = {{kSecond, 99}};  // node out of range => run_scenario throws
  CampaignOptions options;
  options.seeds = {1};
  const CampaignOutcome outcome = run_campaign({bad}, options);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.failed_runs, 1u);
  const Json& run =
      outcome.document.at("scenarios").items()[0].at("runs").items()[0];
  EXPECT_FALSE(run.at("ok").as_bool());
  EXPECT_NE(run.find("exception"), nullptr);
}

TEST(Campaign, EmptyCampaignIsNotOk) {
  const CampaignOutcome outcome = run_campaign({}, CampaignOptions{});
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.runs, 0u);
}

}  // namespace
}  // namespace dpu::scenario
