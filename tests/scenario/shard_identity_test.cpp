// Byte-identity of scenario results across simulator shard counts.
//
// The sharded engine's contract is that `sim_shards` never changes results:
// the whole JSON result document — audit verdicts, latency statistics down
// to the last float bit, counters, switch windows — must be byte-identical
// whether a scenario runs serial or on 2/4/8 shards.  This parameterizes
// over the entire curated library, so every workload shape the campaign
// exercises (churn, partitions, loss windows, policies, recoveries) pins
// the invariant.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/library.hpp"
#include "scenario/runner.hpp"

namespace dpu::scenario {
namespace {

class ShardIdentity : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardIdentity, ResultDocumentIdenticalAcrossShardCounts) {
  const std::optional<ScenarioSpec> spec = find_scenario(GetParam());
  ASSERT_TRUE(spec.has_value());
  ASSERT_EQ(spec->engine, Engine::kSim)
      << "byte-identity only holds on the deterministic engine";

  RunOptions options;
  options.sim_shards = 1;
  const std::string serial =
      run_scenario(*spec, /*seed=*/1, options).to_json().dump(2);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    options.sim_shards = shards;  // engine clamps to [1, n]
    const std::string sharded =
        run_scenario(*spec, /*seed=*/1, options).to_json().dump(2);
    EXPECT_EQ(serial, sharded)
        << "'" << spec->name << "' diverged at sim_shards=" << shards;
  }
}

std::vector<std::string> curated_names() {
  std::vector<std::string> names;
  for (const ScenarioSpec& spec : curated_scenarios()) {
    names.push_back(spec.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    CuratedLibrary, ShardIdentity, ::testing::ValuesIn(curated_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string id = info.param;
      for (char& c : id) {
        if (c == '-') c = '_';
      }
      return id;
    });

}  // namespace
}  // namespace dpu::scenario
