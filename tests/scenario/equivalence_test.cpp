// Mechanism-equivalence matrix: the same seed and the same (deterministic,
// fixed-period) workload run under each abcast update mechanism must yield
// audit-clean, specification-equivalent delivered histories.
//
// "Specification-equivalent" follows from the audited ABcast properties
// plus two cross-mechanism counters: with identical send schedules
// (poisson=false removes the only RNG draw in the workload), validity +
// uniform integrity pin the delivered multiset to exactly
// {every sent message} × {every stack}, so equal `sent` and
// deliveries == n × sent across mechanisms means every mechanism delivered
// the same messages everywhere — they differ only in switch cost, never in
// what the application observes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/runner.hpp"

namespace dpu::scenario {
namespace {

ScenarioSpec matrix_spec(Mechanism mechanism) {
  ScenarioSpec spec;
  spec.name = std::string("equivalence-") + mechanism_name(mechanism);
  spec.n = 3;
  spec.duration = 4 * kSecond;
  spec.drain = 25 * kSecond;
  spec.mechanism = mechanism;
  spec.workload.rate_per_stack = 20.0;
  spec.workload.poisson = false;  // identical send schedule per mechanism
  spec.updates = {{2 * kSecond, 0, "abcast.seq"}};
  return spec;
}

TEST(MechanismEquivalence, SameWorkloadSameHistoriesAcrossMechanisms) {
  const std::vector<Mechanism> mechanisms = {
      Mechanism::kRepl, Mechanism::kMaestro, Mechanism::kGraceful};
  std::vector<ScenarioResult> results;
  for (Mechanism m : mechanisms) {
    results.push_back(run_scenario(matrix_spec(m), /*seed=*/7));
  }

  for (std::size_t k = 0; k < results.size(); ++k) {
    const ScenarioResult& r = results[k];
    SCOPED_TRACE(r.scenario);
    EXPECT_TRUE(r.ok()) << r.abcast_report.summary() << "\n"
                        << r.generic_report.summary();
    EXPECT_GT(r.messages_sent, 0u);
    // Every sent message delivered exactly once on every stack.
    EXPECT_EQ(r.deliveries, r.messages_sent * 3);
    // Every stack finished on the switch target.
    for (const std::string& protocol : r.final_protocol) {
      EXPECT_EQ(protocol, "abcast.seq");
    }
    ASSERT_EQ(r.updates.size(), 1u);
    EXPECT_EQ(r.updates[0].service, "abcast");
    EXPECT_EQ(r.updates[0].protocol, "abcast.seq");
    EXPECT_EQ(r.updates[0].completions, 3u);
    // Identical fixed-period send schedule across mechanisms.
    EXPECT_EQ(r.messages_sent, results[0].messages_sent);
    EXPECT_EQ(r.deliveries, results[0].deliveries);
  }
}

TEST(MechanismEquivalence, BaselinesPayForTheSwitchReplDoesNot) {
  // Not an equivalence but the matrix's sanity cross-check: the histories
  // match, yet the baselines block/queue application calls during the
  // switch while Algorithm 1 never does.
  const ScenarioResult repl = run_scenario(matrix_spec(Mechanism::kRepl), 7);
  const ScenarioResult maestro =
      run_scenario(matrix_spec(Mechanism::kMaestro), 7);
  const ScenarioResult graceful =
      run_scenario(matrix_spec(Mechanism::kGraceful), 7);
  EXPECT_EQ(repl.app_blocked_total, 0);
  EXPECT_EQ(repl.calls_queued, 0u);
  EXPECT_GT(maestro.app_blocked_total, 0);
  EXPECT_GT(graceful.app_blocked_total, 0);
}

}  // namespace
}  // namespace dpu::scenario
