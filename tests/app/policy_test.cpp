// Unit tests for the failure-driven adaptation policy: trigger conditions,
// responsibility election, and debouncing.
#include "app/policy.hpp"

#include <gtest/gtest.h>

#include "app/stack_builder.hpp"
#include "sim/sim_world.hpp"

namespace dpu {
namespace {

StandardStackOptions seq_options() {
  StandardStackOptions options;
  options.abcast_protocol = "abcast.seq";
  options.fd.heartbeat_interval = 20 * kMillisecond;
  options.fd.initial_timeout = 100 * kMillisecond;
  options.with_gm = false;
  return options;
}

struct Rig {
  explicit Rig(std::uint64_t seed, std::size_t n = 3,
               StandardStackOptions options = seq_options())
      : library(make_standard_library(options)),
        world(SimConfig{.num_stacks = n, .seed = seed}, &library) {
    for (NodeId i = 0; i < n; ++i) {
      stacks.push_back(build_standard_stack(world.stack(i), options));
      FailoverPolicyConfig pc;
      pc.watched_protocol = "abcast.seq";
      pc.critical_node = 0;
      pc.fallback_protocol = "abcast.ct";
      policies.push_back(FailoverPolicyModule::create(world.stack(i),
                                                      *stacks[i].repl, pc));
      world.stack(i).start_all();
    }
  }

  ProtocolLibrary library;
  SimWorld world;
  std::vector<StandardStack> stacks;
  std::vector<FailoverPolicyModule*> policies;
};

TEST(Policy, NoTriggerOnHealthyGroup) {
  Rig rig(1);
  rig.world.run_for(5 * kSecond);
  for (auto* p : rig.policies) EXPECT_EQ(p->triggers(), 0u);
  EXPECT_EQ(rig.stacks[0].repl->current_protocol(), "abcast.seq");
}

TEST(Policy, NonCriticalSuspicionIgnored) {
  Rig rig(2);
  // Stack 2 (not the sequencer) degrades; the policy watches node 0 only.
  rig.world.at(kSecond, [&]() {
    rig.world.set_link_filter(
        [](NodeId src, NodeId dst) { return src != 2 && dst != 2; });
  });
  rig.world.run_for(3 * kSecond);
  EXPECT_EQ(rig.policies[0]->triggers(), 0u);
  EXPECT_EQ(rig.policies[1]->triggers(), 0u);
  EXPECT_EQ(rig.stacks[0].repl->current_protocol(), "abcast.seq");
}

TEST(Policy, NoTriggerWhenWatchedProtocolNotActive) {
  // Start on CT (watched protocol is SEQ): even if node 0 is suspected the
  // policy must not fire.
  StandardStackOptions options = seq_options();
  options.abcast_protocol = "abcast.ct";
  Rig rig(3, 3, options);
  rig.world.at(kSecond, [&]() { rig.world.crash(0); });
  rig.world.run_for(4 * kSecond);
  for (auto* p : rig.policies) EXPECT_EQ(p->triggers(), 0u);
}

TEST(Policy, LowestLiveStackIsResponsible) {
  // Degrade the sequencer's links (alive but suspected): only the lowest
  // live non-sequencer stack (stack 1) should fire.
  Rig rig(4, 4);
  rig.world.at(500 * kMillisecond, [&]() {
    rig.world.set_link_filter([&rig](NodeId src, NodeId dst) {
      if (src != 0 && dst != 0) return true;
      return rig.world.stack(1).host().rng().chance(0.1);
    });
  });
  rig.world.at(4 * kSecond, [&]() { rig.world.set_link_filter(nullptr); });
  rig.world.run_for(60 * kSecond);

  EXPECT_GE(rig.policies[1]->triggers(), 1u);
  EXPECT_EQ(rig.policies[2]->triggers(), 0u);
  EXPECT_EQ(rig.policies[3]->triggers(), 0u);
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.stacks[i].repl->current_protocol(), "abcast.ct")
        << "stack " << i;
  }
}

TEST(Policy, DebounceFiresOncePerSwitch) {
  Rig rig(5, 3);
  // Repeated suspicion flaps of the sequencer must not produce repeated
  // switch requests once the first fired.
  rig.world.at(500 * kMillisecond, [&]() {
    rig.world.set_link_filter([&rig](NodeId src, NodeId dst) {
      if (src != 0 && dst != 0) return true;
      return rig.world.stack(1).host().rng().chance(0.1);
    });
  });
  rig.world.at(5 * kSecond, [&]() { rig.world.set_link_filter(nullptr); });
  rig.world.run_for(60 * kSecond);
  std::uint64_t total = 0;
  for (auto* p : rig.policies) total += p->triggers();
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(rig.stacks[0].repl->seq_number(), 1u);
}

}  // namespace
}  // namespace dpu
