// PolicyEngine — rule-driven adaptation: trigger conditions (fd suspicion,
// delivery latency, delivered load), responsibility election, per-version
// debouncing, and service-genericity (the same engine adapts non-abcast
// layers through the UpdateApi).
#include "app/policy.hpp"

#include <gtest/gtest.h>

#include "app/stack_builder.hpp"
#include "app/workload.hpp"
#include "sim/sim_world.hpp"

namespace dpu {
namespace {

StandardStackOptions seq_options() {
  StandardStackOptions options;
  options.abcast_protocol = "abcast.seq";
  options.fd.heartbeat_interval = 20 * kMillisecond;
  options.fd.initial_timeout = 100 * kMillisecond;
  options.with_gm = false;
  return options;
}

PolicyRule seq_failover_rule() {
  PolicyRule rule;
  rule.name = "seq-failover";
  rule.service = kAbcastService;
  rule.when_protocol = "abcast.seq";
  rule.to_protocol = "abcast.ct";
  rule.trigger = PolicyRule::Trigger::kFdSuspect;
  rule.suspect_node = 0;
  return rule;
}

struct Rig {
  explicit Rig(std::uint64_t seed, std::size_t n = 3,
               StandardStackOptions options = seq_options(),
               PolicyRule rule = seq_failover_rule())
      : library(make_standard_library(options)),
        world(SimConfig{.num_stacks = n, .seed = seed}, &library) {
    for (NodeId i = 0; i < n; ++i) {
      stacks.push_back(build_standard_stack(world.stack(i), options));
      policies.push_back(PolicyEngineModule::create(
          world.stack(i), PolicyEngineConfig{{rule}, kAbcastService}));
      world.stack(i).start_all();
    }
  }

  [[nodiscard]] const std::string& protocol(NodeId i) {
    return stacks[i].repl->current_protocol();
  }

  ProtocolLibrary library;
  SimWorld world;
  std::vector<StandardStack> stacks;
  std::vector<PolicyEngineModule*> policies;
};

TEST(Policy, NoTriggerOnHealthyGroup) {
  Rig rig(1);
  rig.world.run_for(5 * kSecond);
  for (auto* p : rig.policies) EXPECT_EQ(p->triggers(), 0u);
  EXPECT_EQ(rig.protocol(0), "abcast.seq");
}

TEST(Policy, NonCriticalSuspicionIgnored) {
  Rig rig(2);
  // Stack 2 (not the sequencer) degrades; the rule watches node 0 only.
  rig.world.at(kSecond, [&]() {
    rig.world.set_link_filter(
        [](NodeId src, NodeId dst) { return src != 2 && dst != 2; });
  });
  rig.world.run_for(3 * kSecond);
  EXPECT_EQ(rig.policies[0]->triggers(), 0u);
  EXPECT_EQ(rig.policies[1]->triggers(), 0u);
  EXPECT_EQ(rig.protocol(0), "abcast.seq");
}

TEST(Policy, NoTriggerWhenWatchedProtocolNotActive) {
  // Start on CT (watched protocol is SEQ): even if node 0 is suspected the
  // rule must not fire.
  StandardStackOptions options = seq_options();
  options.abcast_protocol = "abcast.ct";
  Rig rig(3, 3, options);
  rig.world.at(kSecond, [&]() { rig.world.crash(0); });
  rig.world.run_for(4 * kSecond);
  for (auto* p : rig.policies) EXPECT_EQ(p->triggers(), 0u);
}

TEST(Policy, LowestLiveStackIsResponsible) {
  // Degrade the sequencer's links (alive but suspected): only the lowest
  // live non-sequencer stack (stack 1) should fire.
  Rig rig(4, 4);
  rig.world.at(500 * kMillisecond, [&]() {
    rig.world.set_link_filter([&rig](NodeId src, NodeId dst) {
      if (src != 0 && dst != 0) return true;
      return rig.world.stack(1).host().rng().chance(0.1);
    });
  });
  rig.world.at(4 * kSecond, [&]() { rig.world.set_link_filter(nullptr); });
  rig.world.run_for(60 * kSecond);

  EXPECT_GE(rig.policies[1]->triggers(), 1u);
  EXPECT_EQ(rig.policies[2]->triggers(), 0u);
  EXPECT_EQ(rig.policies[3]->triggers(), 0u);
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.protocol(i), "abcast.ct") << "stack " << i;
  }
}

TEST(Policy, DebounceFiresOncePerSwitch) {
  Rig rig(5, 3);
  // Repeated suspicion flaps of the sequencer must not produce repeated
  // switch requests once the first fired.
  rig.world.at(500 * kMillisecond, [&]() {
    rig.world.set_link_filter([&rig](NodeId src, NodeId dst) {
      if (src != 0 && dst != 0) return true;
      return rig.world.stack(1).host().rng().chance(0.1);
    });
  });
  rig.world.at(5 * kSecond, [&]() { rig.world.set_link_filter(nullptr); });
  rig.world.run_for(60 * kSecond);
  std::uint64_t total = 0;
  for (auto* p : rig.policies) total += p->triggers();
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(rig.stacks[0].repl->seq_number(), 1u);
}

TEST(Policy, LoadRuleSwitchesWhenDeliveredRateExceedsThreshold) {
  // Observed-load trigger: under heavy delivered load the rule trades the
  // sequencer protocol for CT.  Every delivery on the facade counts, so the
  // per-stack observed rate is ~ n * send rate.
  PolicyRule rule;
  rule.name = "shed-to-ct";
  rule.service = kAbcastService;
  rule.when_protocol = "abcast.seq";
  rule.to_protocol = "abcast.ct";
  rule.trigger = PolicyRule::Trigger::kDeliveryRate;
  rule.rate_threshold = 120.0;  // deliveries/sec
  rule.window = 500 * kMillisecond;
  Rig rig(6, 3, seq_options(), rule);

  // 60 msg/s per stack * 3 stacks = ~180 deliveries/sec observed.
  std::vector<WorkloadModule*> workloads;
  for (NodeId i = 0; i < 3; ++i) {
    WorkloadConfig wc;
    wc.rate_per_second = 60.0;
    wc.stop_after = 3 * kSecond;
    workloads.push_back(WorkloadModule::create(rig.world.stack(i), wc));
    rig.world.stack(i).start_all();
  }
  rig.world.run_for(30 * kSecond);

  std::uint64_t total = 0;
  for (auto* p : rig.policies) total += p->triggers();
  EXPECT_GE(total, 1u);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.protocol(i), "abcast.ct") << "stack " << i;
  }
}

TEST(Policy, LoadRuleStaysQuietBelowThreshold) {
  PolicyRule rule;
  rule.service = kAbcastService;
  rule.to_protocol = "abcast.ct";
  rule.trigger = PolicyRule::Trigger::kDeliveryRate;
  rule.rate_threshold = 500.0;
  rule.window = 500 * kMillisecond;
  Rig rig(7, 3, seq_options(), rule);
  std::vector<WorkloadModule*> workloads;
  for (NodeId i = 0; i < 3; ++i) {
    WorkloadConfig wc;
    wc.rate_per_second = 20.0;
    wc.stop_after = 3 * kSecond;
    workloads.push_back(WorkloadModule::create(rig.world.stack(i), wc));
    rig.world.stack(i).start_all();
  }
  rig.world.run_for(20 * kSecond);
  for (auto* p : rig.policies) EXPECT_EQ(p->triggers(), 0u);
  EXPECT_EQ(rig.protocol(0), "abcast.seq");
}

TEST(Policy, LatencyRuleReactsToDegradedDelivery) {
  // Delivery-latency trigger: a lossy sequencer raises the window-mean
  // latency past the threshold and the rule fails over — without the FD
  // ever suspecting anyone.
  PolicyRule rule;
  rule.name = "latency-failover";
  rule.service = kAbcastService;
  rule.when_protocol = "abcast.seq";
  rule.to_protocol = "abcast.ct";
  rule.trigger = PolicyRule::Trigger::kDeliveryLatency;
  rule.latency_threshold = 40 * kMillisecond;
  rule.window = 500 * kMillisecond;
  Rig rig(8, 3, seq_options(), rule);
  std::vector<WorkloadModule*> workloads;
  for (NodeId i = 0; i < 3; ++i) {
    WorkloadConfig wc;
    wc.rate_per_second = 30.0;
    wc.stop_after = 5 * kSecond;
    workloads.push_back(WorkloadModule::create(rig.world.stack(i), wc));
    rig.world.stack(i).start_all();
  }
  // 60% loss on the sequencer's links: deliveries keep flowing (rp2p
  // retransmits) but a large fraction eat one or more retransmission
  // round-trips, dragging the window mean far above the healthy value.
  rig.world.at(kSecond, [&]() {
    rig.world.set_link_filter([&rig](NodeId src, NodeId dst) {
      if (src != 0 && dst != 0) return true;
      return rig.world.stack(1).host().rng().chance(0.4);
    });
  });
  rig.world.at(4 * kSecond, [&]() { rig.world.set_link_filter(nullptr); });
  rig.world.run_for(60 * kSecond);

  std::uint64_t total = 0;
  for (auto* p : rig.policies) total += p->triggers();
  EXPECT_GE(total, 1u);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.protocol(i), "abcast.ct") << "stack " << i;
  }
}

TEST(Policy, GenericServiceRuleAdaptsConsensusLayer) {
  // Service-genericity: the identical engine, pointed at the consensus
  // layer, migrates consensus.ct -> consensus.mr on observed load — a
  // switch the legacy FailoverPolicy could never express.
  StandardStackOptions options;
  options.with_gm = false;
  options.with_consensus_replacement = true;
  options.fd.heartbeat_interval = 20 * kMillisecond;
  options.fd.initial_timeout = 100 * kMillisecond;
  PolicyRule rule;
  rule.name = "consensus-shed";
  rule.service = kConsensusService;
  rule.to_protocol = "consensus.mr";
  rule.trigger = PolicyRule::Trigger::kDeliveryRate;
  rule.rate_threshold = 50.0;
  rule.window = 500 * kMillisecond;
  Rig rig(9, 3, options, rule);
  std::vector<WorkloadModule*> workloads;
  for (NodeId i = 0; i < 3; ++i) {
    WorkloadConfig wc;
    wc.rate_per_second = 40.0;
    wc.stop_after = 4 * kSecond;
    workloads.push_back(WorkloadModule::create(rig.world.stack(i), wc));
    rig.world.stack(i).start_all();
  }
  rig.world.run_for(60 * kSecond);

  std::uint64_t total = 0;
  for (auto* p : rig.policies) total += p->triggers();
  EXPECT_GE(total, 1u);
  for (NodeId i = 0; i < 3; ++i) {
    const UpdateStatus s =
        rig.stacks[i].update->current_version(kConsensusService);
    EXPECT_EQ(s.protocol, "consensus.mr") << "stack " << i;
  }
}

TEST(Policy, MisconfiguredRuleCountsErrorInsteadOfThrowing) {
  // A rule for a service no mechanism manages must not crash the stack.
  PolicyRule rule;
  rule.service = "gm";  // replaceable in the registry, but no facade here
  rule.to_protocol = "gm.abcast";
  rule.trigger = PolicyRule::Trigger::kDeliveryRate;
  rule.rate_threshold = 1.0;
  rule.window = 200 * kMillisecond;
  Rig rig(10, 3, seq_options(), rule);
  std::vector<WorkloadModule*> workloads;
  for (NodeId i = 0; i < 3; ++i) {
    WorkloadConfig wc;
    wc.rate_per_second = 30.0;
    wc.stop_after = 2 * kSecond;
    workloads.push_back(WorkloadModule::create(rig.world.stack(i), wc));
    rig.world.stack(i).start_all();
  }
  rig.world.run_for(10 * kSecond);
  for (auto* p : rig.policies) {
    EXPECT_EQ(p->triggers(), 0u);
    EXPECT_GE(p->policy_errors(), 1u);
  }
  EXPECT_EQ(rig.protocol(0), "abcast.seq");
}

}  // namespace
}  // namespace dpu
