// Unit tests for the application toolkit: workload generator, latency
// probe/collector, stack builder options.
#include <gtest/gtest.h>

#include "app/probe.hpp"
#include "app/stack_builder.hpp"
#include "app/workload.hpp"
#include "sim/sim_world.hpp"

namespace dpu {
namespace {

TEST(ProbePayload, RoundTripAndSize) {
  const Bytes payload = ProbePayload::make(123456789, 3, 42, 64);
  EXPECT_EQ(payload.size(), 64u);
  const ProbePayload p = ProbePayload::parse(payload);
  EXPECT_EQ(p.send_time, 123456789);
  EXPECT_EQ(p.sender, 3u);
  EXPECT_EQ(p.seq, 42u);
}

TEST(ProbePayload, MinimumSizeWithoutFiller) {
  // Requesting a size below the header yields just the header.
  const Bytes payload = ProbePayload::make(1, 1, 1, 0);
  EXPECT_GE(payload.size(), 13u);
  EXPECT_NO_THROW((void)ProbePayload::parse(payload));
}

TEST(LatencyCollector, WindowSelectsBuckets) {
  LatencyCollector collector(100);  // 100ns-wide send-time buckets
  collector.add(50, 10 * kMicrosecond);    // bucket [0,100)
  collector.add(150, 20 * kMicrosecond);   // bucket [100,200)
  collector.add(250, 30 * kMicrosecond);   // bucket [200,300)
  // Latencies are recorded in microseconds.
  EXPECT_DOUBLE_EQ(collector.window(0, 300).mean(), 20.0);
  EXPECT_DOUBLE_EQ(collector.window(100, 200).mean(), 20.0);
  // Partially overlapping buckets are included (bucket granularity).
  EXPECT_DOUBLE_EQ(collector.window(140, 160).mean(), 20.0);
  EXPECT_EQ(collector.window(1000, 2000).count(), 0u);
}

TEST(Workload, FixedRateSendsExpectedCount) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1});
  Stack& stack = world.stack(0);

  struct Sink final : AbcastApi {
    std::uint64_t count = 0;
    std::vector<TimePoint> stamps;
    void abcast(Payload payload) override {
      ++count;
      stamps.push_back(ProbePayload::parse(payload.to_bytes()).send_time);
    }
  };
  Sink sink;
  struct SinkModule final : Module {
    using Module::Module;
  };
  auto* holder = stack.emplace_module<SinkModule>(stack, "sink");
  stack.bind<AbcastApi>(kAbcastService, &sink, holder);

  WorkloadConfig wc;
  wc.rate_per_second = 100.0;
  wc.stop_after = 2 * kSecond;
  WorkloadModule::create(stack, wc);
  stack.start_all();
  world.run_for(5 * kSecond);

  EXPECT_EQ(sink.count, 200u);  // exactly rate * window at fixed rate
  // Intended timestamps are strictly increasing with the configured gap.
  for (std::size_t i = 1; i < sink.stamps.size(); ++i) {
    EXPECT_EQ(sink.stamps[i] - sink.stamps[i - 1], 10 * kMillisecond);
  }
}

TEST(Workload, PoissonRateApproximatesTarget) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 9});
  Stack& stack = world.stack(0);
  struct Sink final : AbcastApi {
    std::uint64_t count = 0;
    void abcast(Payload) override { ++count; }
  };
  Sink sink;
  struct SinkModule final : Module {
    using Module::Module;
  };
  auto* holder = stack.emplace_module<SinkModule>(stack, "sink");
  stack.bind<AbcastApi>(kAbcastService, &sink, holder);

  WorkloadConfig wc;
  wc.rate_per_second = 500.0;
  wc.poisson = true;
  wc.stop_after = 10 * kSecond;
  WorkloadModule::create(stack, wc);
  stack.start_all();
  world.run_for(15 * kSecond);

  EXPECT_NEAR(static_cast<double>(sink.count), 5000.0, 300.0);  // ~4 sigma
}

TEST(StackBuilder, WithAndWithoutReplacementLayer) {
  StandardStackOptions with;
  ProtocolLibrary lib_with = make_standard_library(with);
  SimWorld world_with(SimConfig{.num_stacks = 1, .seed = 1}, &lib_with);
  StandardStack s1 = build_standard_stack(world_with.stack(0), with);
  EXPECT_NE(s1.repl, nullptr);
  EXPECT_TRUE(world_with.stack(0).slot(kAbcastService).bound());
  EXPECT_TRUE(world_with.stack(0).slot(kAbcastInnerService).bound());

  StandardStackOptions without;
  without.with_replacement_layer = false;
  ProtocolLibrary lib_without = make_standard_library(without);
  SimWorld world_without(SimConfig{.num_stacks = 1, .seed = 1}, &lib_without);
  StandardStack s2 = build_standard_stack(world_without.stack(0), without);
  EXPECT_EQ(s2.repl, nullptr);
  EXPECT_TRUE(world_without.stack(0).slot(kAbcastService).bound());
  EXPECT_FALSE(world_without.stack(0).slot(kAbcastInnerService).bound());
}

TEST(StackBuilder, ConsensusProviderSelectable) {
  StandardStackOptions options;
  options.consensus_protocol = "consensus.mr";
  ProtocolLibrary lib = make_standard_library(options);
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1}, &lib);
  StandardStack s = build_standard_stack(world.stack(0), options);
  EXPECT_NE(dynamic_cast<MrConsensusModule*>(s.consensus), nullptr);
}

TEST(StackBuilder, UnknownProtocolsRejected) {
  StandardStackOptions bad;
  bad.abcast_protocol = "abcast.bogus";
  ProtocolLibrary lib = make_standard_library(StandardStackOptions{});
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1}, &lib);
  bad.with_replacement_layer = false;
  EXPECT_THROW(build_standard_stack(world.stack(0), bad), std::logic_error);

  StandardStackOptions bad_consensus;
  bad_consensus.consensus_protocol = "consensus.bogus";
  SimWorld world2(SimConfig{.num_stacks = 1, .seed = 1}, &lib);
  EXPECT_THROW(build_standard_stack(world2.stack(0), bad_consensus),
               std::logic_error);
}

TEST(StackBuilder, GmOptional) {
  StandardStackOptions no_gm;
  no_gm.with_gm = false;
  ProtocolLibrary lib = make_standard_library(no_gm);
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1}, &lib);
  StandardStack s = build_standard_stack(world.stack(0), no_gm);
  EXPECT_EQ(s.gm, nullptr);
  EXPECT_EQ(s.topics, nullptr);
  EXPECT_FALSE(world.stack(0).slot(kGmService).bound());
}

}  // namespace
}  // namespace dpu
