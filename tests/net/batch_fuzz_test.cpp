// Randomized fuzz for the batch frame decoder (net/batch.hpp): the decoder
// faces bytes straight off a real UDP socket on the rt and proc engines, so
// for ANY input it must either decode cleanly or throw CodecError — never
// crash, never allocate unbounded memory, never read out of bounds.
//
// Three generators, all driven by a fixed-seed Rng (deterministic, so a
// failure reproduces): valid frames (must round-trip exactly), single-byte
// mutations/truncations/extensions of valid frames (accept-or-clean-reject),
// and unstructured random buffers (almost always clean-reject).
#include "net/batch.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace dpu {
namespace {

constexpr int kRounds = 400;

[[nodiscard]] Payload random_payload(Rng& rng, std::size_t max_size) {
  const std::size_t size = rng.uniform_u64(max_size + 1);
  BufWriter w(size);
  for (std::size_t i = 0; i < size; ++i) {
    w.put_u8(static_cast<std::uint8_t>(rng.next_u64()));
  }
  return w.take_payload();
}

[[nodiscard]] std::vector<BatchMessage> random_batch(Rng& rng) {
  const std::size_t count = 1 + rng.uniform_u64(20);
  std::vector<BatchMessage> messages;
  messages.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    messages.push_back({rng.next_u64() >> rng.uniform_u64(64),
                        random_payload(rng, 200)});
  }
  return messages;
}

[[nodiscard]] Bytes encode_bytes(const std::vector<BatchMessage>& messages) {
  BufWriter w;
  encode_batch_frame(w, messages);
  const Payload body = w.take_payload();
  return Bytes(body.data(), body.data() + body.size());
}

/// The accept-or-clean-reject contract: decode either succeeds (and every
/// decoded payload is readable in full) or throws CodecError.
void expect_clean_decode(const Bytes& bytes) {
  const Payload body{bytes};
  std::vector<BatchMessage> out;
  try {
    decode_batch_frame(body, out);
  } catch (const CodecError&) {
    return;  // clean reject
  }
  // Accepted: the decoded slices must be fully readable and in bounds.
  ASSERT_LE(out.size(), kMaxBatchMessages);
  std::uint64_t checksum = 0;
  for (const BatchMessage& m : out) {
    ASSERT_LE(m.payload.size(), bytes.size());
    for (std::size_t i = 0; i < m.payload.size(); ++i) {
      checksum += m.payload.data()[i];
    }
    checksum += m.channel;
  }
  (void)checksum;
}

TEST(BatchFuzz, ValidFramesAlwaysRoundTrip) {
  Rng rng(0xBA7C4F00D);
  for (int round = 0; round < kRounds; ++round) {
    const std::vector<BatchMessage> in = random_batch(rng);
    const Bytes bytes = encode_bytes(in);
    const Payload body{bytes};
    std::vector<BatchMessage> out;
    ASSERT_NO_THROW(decode_batch_frame(body, out));
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(out[i].channel, in[i].channel);
      EXPECT_EQ(out[i].payload, in[i].payload);
    }
  }
}

TEST(BatchFuzz, MutatedFramesAcceptOrCleanReject) {
  Rng rng(0xDEC0DE42);
  for (int round = 0; round < kRounds; ++round) {
    Bytes bytes = encode_bytes(random_batch(rng));
    // 1-4 random single-byte mutations: header, varints, lengths, payload.
    const std::size_t flips = 1 + rng.uniform_u64(4);
    for (std::size_t f = 0; f < flips && !bytes.empty(); ++f) {
      bytes[rng.uniform_u64(bytes.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    }
    expect_clean_decode(bytes);
  }
}

TEST(BatchFuzz, TruncatedAndExtendedFramesAcceptOrCleanReject) {
  Rng rng(0x7521CA7E);
  for (int round = 0; round < kRounds; ++round) {
    Bytes bytes = encode_bytes(random_batch(rng));
    if (rng.chance(0.5)) {
      bytes.resize(rng.uniform_u64(bytes.size() + 1));  // truncate
    } else {
      const std::size_t extra = 1 + rng.uniform_u64(16);
      for (std::size_t i = 0; i < extra; ++i) {  // trailing junk
        bytes.push_back(static_cast<std::uint8_t>(rng.next_u64()));
      }
    }
    expect_clean_decode(bytes);
  }
}

TEST(BatchFuzz, RandomBuffersNeverCrash) {
  Rng rng(0xF00DFACE);
  for (int round = 0; round < kRounds; ++round) {
    const std::size_t size = rng.uniform_u64(513);
    Bytes bytes(size);
    for (std::uint8_t& byte : bytes) {
      byte = static_cast<std::uint8_t>(rng.next_u64());
    }
    expect_clean_decode(bytes);
  }
}

}  // namespace
}  // namespace dpu
