// Tests for reliable broadcast: delivery to all, duplicate suppression, and
// the agreement property under origin/relayer crashes.
#include "net/rbcast.hpp"

#include <gtest/gtest.h>

#include "common/test_world.hpp"

namespace dpu {
namespace {

constexpr ChannelId kChan = 0xC0FFEE;

struct Rig {
  explicit Rig(SimConfig config, bool relay = true) : world(config) {
    RbcastModule::Config rb;
    rb.relay = relay;
    Rp2pModule::Config rc;
    rc.retransmit_interval = 5 * kMillisecond;
    handles = testing::install_substrate(world, true, true, /*with_fd=*/false,
                                         FdModule::Config{}, rc, rb);
    got.resize(world.size());
    for (NodeId i = 0; i < world.size(); ++i) {
      handles[i].rbcast->rbcast_bind_channel(
          kChan, [this, i](NodeId origin, const Payload& p) {
            got[i].emplace_back(origin, to_string(p));
          });
    }
  }

  SimWorld world;
  std::vector<testing::SubstrateHandles> handles;
  std::vector<std::vector<std::pair<NodeId, std::string>>> got;
};

TEST(Rbcast, DeliversToAllIncludingSelf) {
  Rig rig(SimConfig{.num_stacks = 4, .seed = 1});
  rig.world.at_node(0, 2,
                    [&]() { rig.handles[2].rbcast->rbcast(kChan, to_bytes("m")); });
  rig.world.run_for(kSecond);
  for (NodeId i = 0; i < 4; ++i) {
    ASSERT_EQ(rig.got[i].size(), 1u) << "stack " << i;
    EXPECT_EQ(rig.got[i][0].first, 2u);
    EXPECT_EQ(rig.got[i][0].second, "m");
  }
}

TEST(Rbcast, NoDuplicatesDespiteRelays) {
  Rig rig(SimConfig{.num_stacks = 5, .seed = 2});
  rig.world.at_node(0, 0, [&]() {
    for (int k = 0; k < 20; ++k) {
      rig.handles[0].rbcast->rbcast(kChan, to_bytes("m" + std::to_string(k)));
    }
  });
  rig.world.run_for(kSecond);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(rig.got[i].size(), 20u) << "stack " << i;
  }
  // Relays happened (n-1 receivers each relayed first receipts).
  std::uint64_t total_relays = 0;
  for (auto& h : rig.handles) total_relays += h.rbcast->relays();
  EXPECT_GT(total_relays, 0u);
}

TEST(Rbcast, ConcurrentBroadcastersAllDelivered) {
  Rig rig(SimConfig{.num_stacks = 3, .seed = 3});
  for (NodeId i = 0; i < 3; ++i) {
    rig.world.at_node(0, i, [&rig, i]() {
      rig.handles[i].rbcast->rbcast(kChan, to_bytes("from" + std::to_string(i)));
    });
  }
  rig.world.run_for(kSecond);
  for (NodeId i = 0; i < 3; ++i) {
    ASSERT_EQ(rig.got[i].size(), 3u);
    std::set<std::string> payloads;
    for (auto& [origin, payload] : rig.got[i]) payloads.insert(payload);
    EXPECT_EQ(payloads.size(), 3u);
  }
}

TEST(Rbcast, AgreementWhenOriginReachesOnlyOneStack) {
  // Origin 0's packets reach only stack 1 (link filter), then origin
  // crashes.  With relay enabled, stack 1's relay must still deliver the
  // broadcast to stacks 2 and 3: if any correct stack delivers, all do.
  Rig rig(SimConfig{.num_stacks = 4, .seed = 4});
  rig.world.set_link_filter([](NodeId src, NodeId dst) {
    if (src == 0) return dst == 1 || dst == 0;
    return true;  // everyone else unrestricted
  });
  rig.world.at_node(0, 0,
                    [&]() { rig.handles[0].rbcast->rbcast(kChan, to_bytes("m")); });
  rig.world.at(50 * kMillisecond, [&]() { rig.world.crash(0); });
  rig.world.run_for(2 * kSecond);

  for (NodeId i = 1; i < 4; ++i) {
    ASSERT_EQ(rig.got[i].size(), 1u) << "stack " << i;
    EXPECT_EQ(rig.got[i][0].second, "m");
  }
}

TEST(Rbcast, WithoutRelayOriginCrashLosesAgreement) {
  // The ablation contrast for the test above: relay disabled, same fault —
  // stacks 2 and 3 never deliver.  (This is why the default keeps relay on.)
  Rig rig(SimConfig{.num_stacks = 4, .seed = 4}, /*relay=*/false);
  rig.world.set_link_filter([](NodeId src, NodeId dst) {
    if (src == 0) return dst == 1 || dst == 0;
    return true;
  });
  rig.world.at_node(0, 0,
                    [&]() { rig.handles[0].rbcast->rbcast(kChan, to_bytes("m")); });
  rig.world.at(50 * kMillisecond, [&]() { rig.world.crash(0); });
  rig.world.run_for(2 * kSecond);

  EXPECT_EQ(rig.got[1].size(), 1u);
  EXPECT_EQ(rig.got[2].size(), 0u);
  EXPECT_EQ(rig.got[3].size(), 0u);
}

TEST(Rbcast, PendingChannelBufferReleasedOnBind) {
  Rig rig(SimConfig{.num_stacks = 2, .seed = 5});
  std::vector<std::string> late;
  rig.world.at_node(0, 0, [&]() {
    rig.handles[0].rbcast->rbcast(0xBEEF, to_bytes("early"));
  });
  rig.world.run_for(100 * kMillisecond);
  rig.handles[1].rbcast->rbcast_bind_channel(
      0xBEEF, [&](NodeId, const Payload& p) { late.push_back(to_string(p)); });
  EXPECT_EQ(late, (std::vector<std::string>{"early"}));
}

TEST(Rbcast, SurvivesHeavyLoss) {
  SimConfig config{.num_stacks = 3, .seed = 6};
  config.net.drop_probability = 0.3;
  Rig rig(config);
  rig.world.at_node(0, 0, [&]() {
    for (int k = 0; k < 10; ++k) {
      rig.handles[0].rbcast->rbcast(kChan, to_bytes("m" + std::to_string(k)));
    }
  });
  rig.world.run_for(10 * kSecond);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.got[i].size(), 10u) << "stack " << i;
  }
}

}  // namespace
}  // namespace dpu
