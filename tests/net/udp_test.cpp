// Unit tests for the UDP module: port multiplexing and UDP semantics.
#include "net/udp_module.hpp"

#include <gtest/gtest.h>

#include "sim/sim_world.hpp"

namespace dpu {
namespace {

class UdpTest : public ::testing::Test {
 protected:
  UdpTest() : world_(SimConfig{.num_stacks = 2, .seed = 11}) {
    for (NodeId i = 0; i < 2; ++i) {
      udp_[i] = UdpModule::create(world_.stack(i));
      world_.stack(i).start_all();
    }
  }

  SimWorld world_;
  UdpModule* udp_[2] = {nullptr, nullptr};
};

TEST_F(UdpTest, PortDemultiplexing) {
  std::vector<std::pair<PortId, std::string>> got;
  udp_[1]->udp_bind_port(10, [&](NodeId src, const Payload& p) {
    EXPECT_EQ(src, 0u);
    got.emplace_back(10, to_string(p));
  });
  udp_[1]->udp_bind_port(20, [&](NodeId, const Payload& p) {
    got.emplace_back(20, to_string(p));
  });

  world_.at_node(0, 0, [&]() {
    udp_[0]->udp_send(1, 10, to_bytes("ten"));
    udp_[0]->udp_send(1, 20, to_bytes("twenty"));
    udp_[0]->udp_send(1, 10, to_bytes("ten2"));
  });
  world_.run_for(kSecond);

  ASSERT_EQ(got.size(), 3u);
  int tens = 0, twenties = 0;
  for (auto& [port, payload] : got) {
    if (port == 10) ++tens;
    if (port == 20) ++twenties;
  }
  EXPECT_EQ(tens, 2);
  EXPECT_EQ(twenties, 1);
  EXPECT_EQ(udp_[0]->datagrams_sent(), 3u);
  EXPECT_EQ(udp_[1]->datagrams_received(), 3u);
}

TEST_F(UdpTest, UnknownPortDropsSilently) {
  world_.at_node(0, 0,
                 [&]() { udp_[0]->udp_send(1, 99, to_bytes("lost")); });
  world_.run_for(kSecond);
  EXPECT_EQ(udp_[1]->datagrams_received(), 0u);
  EXPECT_EQ(udp_[1]->datagrams_dropped_no_port(), 1u);
}

TEST_F(UdpTest, ReleasedPortDrops) {
  int got = 0;
  udp_[1]->udp_bind_port(10, [&](NodeId, const Payload&) { ++got; });
  world_.at_node(0, 0, [&]() { udp_[0]->udp_send(1, 10, to_bytes("a")); });
  world_.run_for(10 * kMillisecond);
  EXPECT_EQ(got, 1);

  udp_[1]->udp_release_port(10);
  world_.at_node(world_.now(), 0,
                 [&]() { udp_[0]->udp_send(1, 10, to_bytes("b")); });
  world_.run_for(10 * kMillisecond);
  EXPECT_EQ(got, 1);
}

TEST_F(UdpTest, EmptyPayloadDelivered) {
  int got = -1;
  udp_[1]->udp_bind_port(5, [&](NodeId, const Payload& p) {
    got = static_cast<int>(p.size());
  });
  world_.at_node(0, 0, [&]() { udp_[0]->udp_send(1, 5, Bytes{}); });
  world_.run_for(kSecond);
  EXPECT_EQ(got, 0);
}

TEST_F(UdpTest, MalformedDatagramIgnored) {
  // A raw 2-byte packet cannot contain the 4-byte port header.
  udp_[1]->udp_bind_port(0, [&](NodeId, const Payload&) {
    FAIL() << "malformed packet must not reach a handler";
  });
  world_.at_node(0, 0, [&]() {
    world_.stack(0).host().send_packet(1, Bytes{0xAA, 0xBB});
  });
  EXPECT_NO_THROW(world_.run_for(kSecond));
}

TEST_F(UdpTest, RebindReplacesHandler) {
  int first = 0, second = 0;
  udp_[1]->udp_bind_port(7, [&](NodeId, const Payload&) { ++first; });
  udp_[1]->udp_bind_port(7, [&](NodeId, const Payload&) { ++second; });
  world_.at_node(0, 0, [&]() { udp_[0]->udp_send(1, 7, to_bytes("x")); });
  world_.run_for(kSecond);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

}  // namespace
}  // namespace dpu
