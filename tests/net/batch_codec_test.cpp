// Tests for the multi-message batch frame codec (net/batch.hpp): round
// trips, the degenerate single-message frame, budget accounting at the
// boundary, and rejection of truncated/oversized/forged frames.
#include "net/batch.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dpu {
namespace {

[[nodiscard]] Payload make_payload(std::size_t size, std::uint8_t fill) {
  BufWriter w(size);
  for (std::size_t i = 0; i < size; ++i) {
    w.put_u8(static_cast<std::uint8_t>(fill + i));
  }
  return w.take_payload();
}

[[nodiscard]] Payload encode(const std::vector<BatchMessage>& messages) {
  BufWriter w;
  encode_batch_frame(w, messages);
  return w.take_payload();
}

TEST(BatchCodec, RoundTripsMultipleMessages) {
  std::vector<BatchMessage> in;
  in.push_back({7, make_payload(16, 1)});
  in.push_back({7, make_payload(0, 0)});  // empty payload is legal
  in.push_back({99, make_payload(300, 5)});
  const Payload body = encode(in);

  std::vector<BatchMessage> out;
  decode_batch_frame(body, out);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i].channel, in[i].channel);
    EXPECT_EQ(out[i].payload, in[i].payload);
  }
}

TEST(BatchCodec, DecodedPayloadsAreZeroCopySlices) {
  const Payload body = encode({{1, make_payload(32, 9)}});
  std::vector<BatchMessage> out;
  decode_batch_frame(body, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].payload.shares_buffer_with(body));
}

TEST(BatchCodec, SingleMessageDegenerateFrame) {
  // count = 1 is the legal degenerate frame (oversized messages travel
  // alone); it must round-trip like any other.
  const Payload message = make_payload(2000, 3);
  const Payload body = encode({{42, message}});
  std::vector<BatchMessage> out;
  decode_batch_frame(body, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].channel, 42u);
  EXPECT_EQ(out[0].payload, message);
}

TEST(BatchCodec, WireSizeAccountingMatchesEncoderAtTheBoundary) {
  // The sender's byte budget counts batch_message_wire_size per message;
  // the encoded frame must be exactly header + that sum, so a budget-exact
  // batch never overshoots the datagram it was sized for.
  for (const std::size_t payload_size : {0UL, 1UL, 127UL, 128UL, 1200UL}) {
    std::vector<BatchMessage> in;
    std::size_t accounted = 0;
    for (int i = 0; i < 3; ++i) {
      in.push_back({5, make_payload(payload_size, 1)});
      accounted += batch_message_wire_size(payload_size);
    }
    const Payload body = encode(in);
    const std::size_t header = 1 /*version*/ + 1 /*varint count (< 128)*/;
    EXPECT_EQ(body.size(), header + accounted) << "payload " << payload_size;
  }
}

TEST(BatchCodec, RejectsTruncatedFrames) {
  std::vector<BatchMessage> in;
  in.push_back({1, make_payload(40, 2)});
  in.push_back({2, make_payload(40, 7)});
  const Payload body = encode(in);
  // Any strict prefix must be rejected — header cuts, mid-channel cuts,
  // mid-payload cuts.
  std::vector<BatchMessage> out;
  for (std::size_t keep = 0; keep < body.size(); ++keep) {
    EXPECT_THROW(decode_batch_frame(body.slice(0, keep), out), CodecError)
        << "prefix " << keep;
  }
}

TEST(BatchCodec, RejectsTrailingGarbage) {
  BufWriter w;
  encode_batch_frame(w, {{1, make_payload(8, 1)}});
  w.put_u8(0xEE);  // one stray byte after the last message
  std::vector<BatchMessage> out;
  EXPECT_THROW(decode_batch_frame(w.take_payload(), out), CodecError);
}

TEST(BatchCodec, RejectsUnknownVersion) {
  BufWriter w;
  w.put_u8(kBatchFrameVersion + 1);
  w.put_varint(1);
  w.put_u64(1);
  w.put_varint(0);
  std::vector<BatchMessage> out;
  EXPECT_THROW(decode_batch_frame(w.take_payload(), out), CodecError);
}

TEST(BatchCodec, RejectsZeroCount) {
  BufWriter w;
  w.put_u8(kBatchFrameVersion);
  w.put_varint(0);
  std::vector<BatchMessage> out;
  EXPECT_THROW(decode_batch_frame(w.take_payload(), out), CodecError);
}

TEST(BatchCodec, RejectsForgedCountBeyondCeiling) {
  // A forged count must be rejected before any allocation sized from it.
  BufWriter w;
  w.put_u8(kBatchFrameVersion);
  w.put_varint(kMaxBatchMessages + 1);
  std::vector<BatchMessage> out;
  EXPECT_THROW(decode_batch_frame(w.take_payload(), out), CodecError);

  // Also a count that exceeds what the remaining bytes could possibly hold.
  BufWriter w2;
  w2.put_u8(kBatchFrameVersion);
  w2.put_varint(100);
  w2.put_u8(0);
  std::vector<BatchMessage> out2;
  EXPECT_THROW(decode_batch_frame(w2.take_payload(), out2), CodecError);
}

TEST(BatchCodec, RejectsOversizedFrame) {
  // A datagram beyond the hard frame ceiling is rejected outright, before
  // parsing (the engines never produce one; a forged length could).
  BufWriter w(kMaxBatchFrameBytes + 64);
  w.put_u8(kBatchFrameVersion);
  w.put_varint(1);
  w.put_u64(1);
  w.put_varint(kMaxBatchFrameBytes);
  for (std::size_t i = 0; i < kMaxBatchFrameBytes; ++i) w.put_u8(0);
  std::vector<BatchMessage> out;
  EXPECT_THROW(decode_batch_frame(w.take_payload(), out), CodecError);
}

}  // namespace
}  // namespace dpu
