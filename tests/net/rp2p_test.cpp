// Tests for the reliable point-to-point layer: exactly-once FIFO delivery
// under loss, duplication and reordering, plus the pending-channel buffer
// that dynamic protocol update relies on.
#include "net/rp2p.hpp"

#include <gtest/gtest.h>

#include "net/udp_module.hpp"
#include "sim/sim_world.hpp"

namespace dpu {
namespace {

constexpr ChannelId kChan = 42;

struct Rig {
  explicit Rig(SimConfig config) : world(config) {
    for (NodeId i = 0; i < world.size(); ++i) {
      udp.push_back(UdpModule::create(world.stack(i)));
      Rp2pModule::Config rc;
      rc.retransmit_interval = 5 * kMillisecond;
      rp2p.push_back(Rp2pModule::create(world.stack(i), kRp2pService, rc));
      world.stack(i).start_all();
    }
  }

  SimWorld world;
  std::vector<UdpModule*> udp;
  std::vector<Rp2pModule*> rp2p;
};

TEST(Rp2p, DeliversInOrderOnCleanNetwork) {
  Rig rig(SimConfig{.num_stacks = 2, .seed = 1});
  std::vector<int> got;
  rig.rp2p[1]->rp2p_bind_channel(kChan, [&](NodeId src, const Payload& p) {
    EXPECT_EQ(src, 0u);
    BufReader r(p);
    got.push_back(static_cast<int>(r.get_u32()));
  });
  rig.world.at_node(0, 0, [&]() {
    for (int i = 0; i < 100; ++i) {
      BufWriter w;
      w.put_u32(static_cast<std::uint32_t>(i));
      rig.rp2p[0]->rp2p_send(1, kChan, w.take());
    }
  });
  rig.world.run_for(kSecond);
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(rig.rp2p[0]->unacked_total(), 0u);  // all acked
  EXPECT_EQ(rig.rp2p[0]->retransmissions(), 0u);
}

// Property sweep: exactly-once FIFO delivery must survive any combination of
// loss and duplication the network model can produce.
struct LossyCase {
  std::uint64_t seed;
  double drop;
  double dup;
};

class Rp2pLossyTest : public ::testing::TestWithParam<LossyCase> {};

TEST_P(Rp2pLossyTest, ExactlyOnceFifoUnderLossAndDuplication) {
  const LossyCase& c = GetParam();
  SimConfig config{.num_stacks = 3, .seed = c.seed};
  config.net.drop_probability = c.drop;
  config.net.duplicate_probability = c.dup;
  Rig rig(config);

  // Every stack sends a numbered stream to every other stack.
  std::map<std::pair<NodeId, NodeId>, std::vector<int>> got;
  for (NodeId i = 0; i < 3; ++i) {
    rig.rp2p[i]->rp2p_bind_channel(kChan, [&, i](NodeId src, const Payload& p) {
      BufReader r(p);
      got[{src, i}].push_back(static_cast<int>(r.get_u32()));
    });
  }
  const int kCount = 60;
  for (NodeId i = 0; i < 3; ++i) {
    rig.world.at_node(0, i, [&rig, i]() {
      for (int k = 0; k < kCount; ++k) {
        for (NodeId j = 0; j < 3; ++j) {
          if (j == i) continue;
          BufWriter w;
          w.put_u32(static_cast<std::uint32_t>(k));
          rig.rp2p[i]->rp2p_send(j, kChan, w.take());
        }
      }
    });
  }
  rig.world.run_for(20 * kSecond);

  for (NodeId i = 0; i < 3; ++i) {
    for (NodeId j = 0; j < 3; ++j) {
      if (i == j) continue;
      const auto& stream = got[{i, j}];
      ASSERT_EQ(stream.size(), static_cast<std::size_t>(kCount))
          << "stream " << i << "->" << j;
      for (int k = 0; k < kCount; ++k) {
        ASSERT_EQ(stream[static_cast<std::size_t>(k)], k)
            << "stream " << i << "->" << j << " position " << k;
      }
    }
    EXPECT_EQ(rig.rp2p[i]->unacked_total(), 0u);
  }
  if (c.drop > 0.0) {
    EXPECT_GT(rig.rp2p[0]->retransmissions() + rig.rp2p[1]->retransmissions() +
                  rig.rp2p[2]->retransmissions(),
              0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossGrid, Rp2pLossyTest,
    ::testing::Values(LossyCase{1, 0.0, 0.0}, LossyCase{2, 0.1, 0.0},
                      LossyCase{3, 0.3, 0.0}, LossyCase{4, 0.0, 0.3},
                      LossyCase{5, 0.2, 0.2}, LossyCase{6, 0.5, 0.1},
                      LossyCase{7, 0.3, 0.3}, LossyCase{8, 0.45, 0.0}));

TEST(Rp2p, FifoAcrossChannelsOfOnePair) {
  // FIFO holds per (src,dst) pair even when messages alternate channels.
  Rig rig(SimConfig{.num_stacks = 2, .seed = 3});
  std::vector<int> order;
  rig.rp2p[1]->rp2p_bind_channel(1, [&](NodeId, const Payload& p) {
    BufReader r(p);
    order.push_back(static_cast<int>(r.get_u32()));
  });
  rig.rp2p[1]->rp2p_bind_channel(2, [&](NodeId, const Payload& p) {
    BufReader r(p);
    order.push_back(static_cast<int>(r.get_u32()));
  });
  rig.world.at_node(0, 0, [&]() {
    for (int i = 0; i < 20; ++i) {
      BufWriter w;
      w.put_u32(static_cast<std::uint32_t>(i));
      rig.rp2p[0]->rp2p_send(1, (i % 2 == 0) ? 1 : 2, w.take());
    }
  });
  rig.world.run_for(kSecond);
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Rp2p, PendingChannelBufferReleasedOnBind) {
  // Messages for a channel whose protocol instance does not exist yet must
  // be held and released on bind — the mechanism behind "the invocation is
  // completed when P_j is added to stack j" (paper §2).
  Rig rig(SimConfig{.num_stacks = 2, .seed = 4});
  rig.world.at_node(0, 0, [&]() {
    rig.rp2p[0]->rp2p_send(1, kChan, to_bytes("early-1"));
    rig.rp2p[0]->rp2p_send(1, kChan, to_bytes("early-2"));
  });
  rig.world.run_for(100 * kMillisecond);
  EXPECT_EQ(rig.rp2p[1]->pending_channel_buffered(), 2u);

  std::vector<std::string> got;
  rig.rp2p[1]->rp2p_bind_channel(
      kChan, [&](NodeId, const Payload& p) { got.push_back(to_string(p)); });
  EXPECT_EQ(got, (std::vector<std::string>{"early-1", "early-2"}));
  EXPECT_EQ(rig.rp2p[1]->pending_channel_buffered(), 0u);

  // Later traffic flows directly.
  rig.world.at_node(rig.world.now(), 0,
                    [&]() { rig.rp2p[0]->rp2p_send(1, kChan, to_bytes("late")); });
  rig.world.run_for(100 * kMillisecond);
  EXPECT_EQ(got.size(), 3u);
}

TEST(Rp2p, ReleasedChannelBuffersAgain) {
  Rig rig(SimConfig{.num_stacks = 2, .seed = 5});
  int got = 0;
  rig.rp2p[1]->rp2p_bind_channel(kChan, [&](NodeId, const Payload&) { ++got; });
  rig.world.at_node(0, 0,
                    [&]() { rig.rp2p[0]->rp2p_send(1, kChan, to_bytes("a")); });
  rig.world.run_for(100 * kMillisecond);
  EXPECT_EQ(got, 1);

  rig.rp2p[1]->rp2p_release_channel(kChan);
  rig.world.at_node(rig.world.now(), 0,
                    [&]() { rig.rp2p[0]->rp2p_send(1, kChan, to_bytes("b")); });
  rig.world.run_for(100 * kMillisecond);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(rig.rp2p[1]->pending_channel_buffered(), 1u);
}

TEST(Rp2p, SelfSendDelivered) {
  Rig rig(SimConfig{.num_stacks = 2, .seed = 6});
  std::vector<std::string> got;
  rig.rp2p[0]->rp2p_bind_channel(
      kChan, [&](NodeId src, const Payload& p) {
        EXPECT_EQ(src, 0u);
        got.push_back(to_string(p));
      });
  rig.world.at_node(0, 0,
                    [&]() { rig.rp2p[0]->rp2p_send(0, kChan, to_bytes("me")); });
  rig.world.run_for(kSecond);
  EXPECT_EQ(got, (std::vector<std::string>{"me"}));
}

TEST(Rp2p, AckCoalescingBatchesCumulativeAcks) {
  // A burst delivered inside one delayed-ack window must produce one
  // cumulative ack, not one ack datagram per in-order delivery.
  Rig rig(SimConfig{.num_stacks = 2, .seed = 11});
  int got = 0;
  rig.rp2p[1]->rp2p_bind_channel(kChan,
                                 [&](NodeId, const Payload&) { ++got; });
  rig.world.at_node(0, 0, [&]() {
    for (int i = 0; i < 50; ++i) {
      BufWriter w;
      w.put_u32(static_cast<std::uint32_t>(i));
      rig.rp2p[0]->rp2p_send(1, kChan, w.take_payload());
    }
  });
  rig.world.run_for(kSecond);
  EXPECT_EQ(got, 50);
  EXPECT_EQ(rig.rp2p[0]->unacked_total(), 0u);  // cumulative ack landed
  EXPECT_GE(rig.rp2p[1]->acks_sent(), 1u);
  EXPECT_LT(rig.rp2p[1]->acks_sent(), 25u);  // far fewer than deliveries
}

TEST(Rp2p, ImmediateAckModeAcksEveryDatagram) {
  SimConfig config{.num_stacks = 2, .seed = 12};
  SimWorld world(config);
  std::vector<Rp2pModule*> rp2p;
  for (NodeId i = 0; i < 2; ++i) {
    UdpModule::create(world.stack(i));
    Rp2pModule::Config rc;
    rc.ack_delay = 0;   // coalescing off
    rc.batching = false;  // ack-per-datagram ablation: 20 sends = 20 datagrams
    rp2p.push_back(Rp2pModule::create(world.stack(i), kRp2pService, rc));
    world.stack(i).start_all();
  }
  int got = 0;
  rp2p[1]->rp2p_bind_channel(kChan, [&](NodeId, const Payload&) { ++got; });
  world.at_node(0, 0, [&]() {
    for (int i = 0; i < 20; ++i) {
      rp2p[0]->rp2p_send(1, kChan, Payload(std::string_view("x")));
    }
  });
  world.run_for(kSecond);
  EXPECT_EQ(got, 20);
  EXPECT_GE(rp2p[1]->acks_sent(), 20u);
}

TEST(Rp2p, BackoffBoundsRetransmissionsIntoABlackHole) {
  // A destination behind a long-lived partition must not be hammered at
  // the base retransmit interval: exponential backoff caps the rate.
  Rig rig(SimConfig{.num_stacks = 2, .seed = 13});
  rig.world.set_link_filter([](NodeId, NodeId) { return false; });
  rig.world.at_node(0, 0, [&]() {
    rig.rp2p[0]->rp2p_send(1, kChan, Payload(std::string_view("stuck")));
  });
  rig.world.run_for(10 * kSecond);
  // 10 s at the 5 ms test interval would be ~2000 linear retransmissions;
  // doubling up to the 640 ms cap keeps it around twenty.
  EXPECT_GT(rig.rp2p[0]->retransmissions(), 3u);
  EXPECT_LT(rig.rp2p[0]->retransmissions(), 60u);
  EXPECT_EQ(rig.rp2p[0]->unacked_total(), 1u);  // still queued, not dropped
}

TEST(Rp2p, SuspectedPeerStopsAttractingRetransmissions) {
  // With a failure detector in the stack, a crashed destination attracts
  // retransmissions only until it is suspected — not for the whole run.
  SimConfig config{.num_stacks = 3, .seed = 14};
  SimWorld world(config);
  std::vector<Rp2pModule*> rp2p;
  for (NodeId i = 0; i < 3; ++i) {
    UdpModule::create(world.stack(i));
    Rp2pModule::Config rc;
    rc.retransmit_interval = 5 * kMillisecond;
    rc.max_retransmit_backoff = 5 * kMillisecond;  // isolate the FD effect
    rp2p.push_back(Rp2pModule::create(world.stack(i), kRp2pService, rc));
    FdModule::create(world.stack(i));
    world.stack(i).start_all();
  }
  world.at(100 * kMillisecond, [&world]() { world.crash(1); });
  world.at_node(200 * kMillisecond, 0, [&]() {
    rp2p[0]->rp2p_send(1, kChan, Payload(std::string_view("to-the-dead")));
  });
  world.run_for(30 * kSecond);
  // Retransmissions happen only between the send and the FD suspecting the
  // crashed stack (sub-second); 30 s of linear 5 ms retries would be ~6000.
  EXPECT_LT(rp2p[0]->retransmissions(), 200u);
  EXPECT_GT(rp2p[0]->suspected_skips(), 0u);
}

TEST(Rp2p, FalseSuspicionOnlyPausesTheStream) {
  // A partition long enough for the FD to suspect a *correct* peer must
  // not lose traffic: retransmissions resume after trust is restored.
  SimConfig config{.num_stacks = 2, .seed = 15};
  SimWorld world(config);
  std::vector<Rp2pModule*> rp2p;
  for (NodeId i = 0; i < 2; ++i) {
    UdpModule::create(world.stack(i));
    Rp2pModule::Config rc;
    rc.retransmit_interval = 5 * kMillisecond;
    rp2p.push_back(Rp2pModule::create(world.stack(i), kRp2pService, rc));
    FdModule::create(world.stack(i));
    world.stack(i).start_all();
  }
  std::vector<std::string> got;
  rp2p[1]->rp2p_bind_channel(
      kChan, [&](NodeId, const Payload& p) { got.push_back(to_string(p)); });
  world.set_link_filter([](NodeId, NodeId) { return false; });
  world.at_node(100 * kMillisecond, 0, [&]() {
    rp2p[0]->rp2p_send(1, kChan, Payload(std::string_view("delayed")));
  });
  // Heal after 2 s — well past the 200 ms initial FD timeout, so both
  // sides falsely suspected each other in the meantime.
  world.at(2 * kSecond, [&world]() { world.set_link_filter(nullptr); });
  world.run_for(30 * kSecond);
  EXPECT_EQ(got, (std::vector<std::string>{"delayed"}));
  EXPECT_EQ(rp2p[0]->unacked_total(), 0u);
}

TEST(Rp2p, RetransmissionRecoversFromTotalBlackoutWindow) {
  // Drop everything for the first 200ms, then heal: all messages sent during
  // the blackout must still arrive, in order.
  Rig rig(SimConfig{.num_stacks = 2, .seed = 7});
  rig.world.set_link_filter([](NodeId, NodeId) { return false; });
  std::vector<int> got;
  rig.rp2p[1]->rp2p_bind_channel(kChan, [&](NodeId, const Payload& p) {
    BufReader r(p);
    got.push_back(static_cast<int>(r.get_u32()));
  });
  rig.world.at_node(0, 0, [&]() {
    for (int i = 0; i < 10; ++i) {
      BufWriter w;
      w.put_u32(static_cast<std::uint32_t>(i));
      rig.rp2p[0]->rp2p_send(1, kChan, w.take());
    }
  });
  rig.world.at(200 * kMillisecond,
               [&]() { rig.world.set_link_filter(nullptr); });
  rig.world.run_for(2 * kSecond);
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

// ---------------------------------------------------------------------------
// Batched packet path (ROADMAP 2(a); net/batch.hpp frame inside kBatch
// datagrams).
// ---------------------------------------------------------------------------

TEST(Rp2pBatch, BurstPacksIntoFewDatagramsAndStaysFifo) {
  Rig rig(SimConfig{.num_stacks = 2, .seed = 21});
  std::vector<int> got;
  rig.rp2p[1]->rp2p_bind_channel(kChan, [&](NodeId, const Payload& p) {
    BufReader r(p);
    got.push_back(static_cast<int>(r.get_u32()));
  });
  rig.world.at_node(0, 0, [&]() {
    for (int i = 0; i < 100; ++i) {
      BufWriter w;
      w.put_u32(static_cast<std::uint32_t>(i));
      rig.rp2p[0]->rp2p_send(1, kChan, w.take());
    }
  });
  rig.world.run_for(kSecond);
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(rig.rp2p[0]->messages_sent(), 100u);
  // 100 x ~16-byte messages under the 1200-byte budget: the whole burst
  // fits in a couple of datagrams.  The engine charges (and counts) per
  // datagram, so world-level packet counts shrink identically.
  EXPECT_LE(rig.rp2p[0]->data_datagrams_sent(), 4u);
  EXPECT_GE(rig.rp2p[0]->data_datagrams_sent(), 1u);
}

TEST(Rp2pBatch, ByteBudgetSplitsAndOversizedMessageTravelsAlone) {
  Rig rig(SimConfig{.num_stacks = 2, .seed = 22});
  std::vector<std::size_t> sizes;
  rig.rp2p[1]->rp2p_bind_channel(kChan, [&](NodeId, const Payload& p) {
    sizes.push_back(p.size());
  });
  rig.world.at_node(0, 0, [&]() {
    // Six 500-byte messages: two per 1200-byte budget, so three datagrams.
    for (int i = 0; i < 6; ++i) {
      BufWriter w(500);
      for (int b = 0; b < 500; ++b) w.put_u8(static_cast<std::uint8_t>(i));
      rig.rp2p[0]->rp2p_send(1, kChan, w.take_payload());
    }
    // One 5000-byte message: over budget, goes out alone and intact.
    BufWriter big(5000);
    for (int b = 0; b < 5000; ++b) big.put_u8(0xAB);
    rig.rp2p[0]->rp2p_send(1, kChan, big.take_payload());
  });
  rig.world.run_for(kSecond);
  ASSERT_EQ(sizes.size(), 7u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(sizes[static_cast<std::size_t>(i)], 500u);
  EXPECT_EQ(sizes[6], 5000u);
  EXPECT_EQ(rig.rp2p[0]->data_datagrams_sent(), 4u);  // 3 full + 1 solo
}

TEST(Rp2pBatch, FlushTimerSendsLoneMessageWithoutCompany) {
  // A single message with no follow-up must still leave within the flush
  // window — batching trades bounded latency, never liveness.
  Rig rig(SimConfig{.num_stacks = 2, .seed = 23});
  std::vector<std::string> got;
  rig.rp2p[1]->rp2p_bind_channel(kChan, [&](NodeId, const Payload& p) {
    got.push_back(to_string(p));
  });
  rig.world.at_node(0, 0, [&]() {
    rig.rp2p[0]->rp2p_send(1, kChan, Payload(std::string_view("lone")));
  });
  // Flush window (100us) + network latency (<100us) + slack.
  rig.world.run_for(5 * kMillisecond);
  EXPECT_EQ(got, (std::vector<std::string>{"lone"}));
  EXPECT_EQ(rig.rp2p[0]->retransmissions(), 0u);
}

TEST(Rp2pBatch, NackFastRetransmitResendsHoleDatagramNotPerMessageDuplicates) {
  // Regression (ISSUE 6 satellite): the NACK gap-check works in datagram
  // sequence numbers, so a lost batch is one hole and its fast retransmit
  // is the cached batch frame — resent once as a unit.  If the sender ever
  // re-sent the batch's messages individually they would take fresh
  // sequence numbers and arrive as duplicates; exactly-once FIFO delivery
  // at 10% loss is the observable guarantee.
  SimConfig config{.num_stacks = 2, .seed = 24};
  config.net.drop_probability = 0.10;
  Rig rig(config);
  std::vector<int> got;
  rig.rp2p[1]->rp2p_bind_channel(kChan, [&](NodeId, const Payload& p) {
    BufReader r(p);
    got.push_back(static_cast<int>(r.get_u32()));
  });
  // 40 bursts of 25 messages, spread out so many distinct batch datagrams
  // (and therefore many distinct loss opportunities) exist.
  constexpr int kBursts = 40;
  constexpr int kPerBurst = 25;
  for (int burst = 0; burst < kBursts; ++burst) {
    rig.world.at_node(burst * 5 * kMillisecond, 0, [&, burst]() {
      for (int i = 0; i < kPerBurst; ++i) {
        BufWriter w;
        w.put_u32(static_cast<std::uint32_t>(burst * kPerBurst + i));
        rig.rp2p[0]->rp2p_send(1, kChan, w.take());
      }
    });
  }
  rig.world.run_for(5 * kSecond);
  // Exactly-once, in order — no per-message duplicates from loss recovery.
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kBursts * kPerBurst));
  for (int i = 0; i < kBursts * kPerBurst; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  }
  // The holes were repaired by NACK-triggered fast retransmits of whole
  // datagrams: retransmission count is bounded by datagrams (tens), not
  // messages (a thousand).
  EXPECT_GT(rig.rp2p[0]->fast_retransmits(), 0u);
  EXPECT_LT(rig.rp2p[0]->retransmissions(),
            rig.rp2p[0]->data_datagrams_sent());
  EXPECT_LE(rig.rp2p[0]->data_datagrams_sent(), 120u);  // ~2-3 per burst
}

TEST(Rp2pBatch, AblationFlagRestoresOneDatagramPerMessage) {
  SimConfig config{.num_stacks = 2, .seed = 25};
  SimWorld world(config);
  std::vector<Rp2pModule*> rp2p;
  for (NodeId i = 0; i < 2; ++i) {
    UdpModule::create(world.stack(i));
    Rp2pModule::Config rc;
    rc.batching = false;
    rp2p.push_back(Rp2pModule::create(world.stack(i), kRp2pService, rc));
    world.stack(i).start_all();
  }
  int got = 0;
  rp2p[1]->rp2p_bind_channel(kChan, [&](NodeId, const Payload&) { ++got; });
  world.at_node(0, 0, [&]() {
    for (int i = 0; i < 30; ++i) {
      rp2p[0]->rp2p_send(1, kChan, Payload(std::string_view("x")));
    }
  });
  world.run_for(kSecond);
  EXPECT_EQ(got, 30);
  EXPECT_EQ(rp2p[0]->messages_sent(), 30u);
  EXPECT_EQ(rp2p[0]->data_datagrams_sent(), 30u);
}

}  // namespace
}  // namespace dpu
