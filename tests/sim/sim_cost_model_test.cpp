// Tests pinning the simulator's processor/cost-model semantics that the
// benchmark calibration (DESIGN.md §8) depends on: busy-time accounting,
// store-and-forward packet departure, busy_now(), and module-creation cost.
#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "sim/sim_world.hpp"

namespace dpu {
namespace {

TEST(SimCostModel, PacketDepartsAfterChargedWork) {
  // A handler charges 10ms of CPU and then sends: the packet must leave
  // after the charged work, so its arrival reflects the sender's CPU time.
  SimConfig config{.num_stacks = 2, .seed = 1};
  config.net.min_latency = 100 * kMicrosecond;
  config.net.max_latency = 100 * kMicrosecond;
  config.net.send_cost_fixed = 0;
  config.net.send_cost_per_byte_ns = 0;
  config.net.recv_cost_fixed = 0;
  config.net.recv_cost_per_byte_ns = 0;
  SimWorld world(config);

  TimePoint arrival = -1;
  world.stack(1).host().set_packet_handler(
      [&](NodeId, const Payload&) { arrival = world.now(); });
  world.at_node(kMillisecond, 0, [&]() {
    world.stack(0).host().charge(10 * kMillisecond);
    world.stack(0).host().send_packet(1, to_bytes("x"));
  });
  world.run_for(kSecond);
  // 1ms event time + 10ms charged CPU + 100us link.
  EXPECT_EQ(arrival, kMillisecond + 10 * kMillisecond + 100 * kMicrosecond);
}

TEST(SimCostModel, SendCostItselfDelaysDeparture) {
  SimConfig config{.num_stacks = 2, .seed = 2};
  config.net.min_latency = 100 * kMicrosecond;
  config.net.max_latency = 100 * kMicrosecond;
  config.net.send_cost_fixed = 5 * kMicrosecond;
  config.net.send_cost_per_byte_ns = 0;
  config.net.recv_cost_fixed = 0;
  config.net.recv_cost_per_byte_ns = 0;
  SimWorld world(config);
  TimePoint arrival = -1;
  world.stack(1).host().set_packet_handler(
      [&](NodeId, const Payload&) { arrival = world.now(); });
  world.at_node(0, 0,
                [&]() { world.stack(0).host().send_packet(1, to_bytes("x")); });
  world.run_for(kSecond);
  EXPECT_EQ(arrival, 5 * kMicrosecond + 100 * kMicrosecond);
}

TEST(SimCostModel, PerByteCostsChargeNanosecondsPerPayloadByte) {
  // The per-byte knobs are NanosPerByte (ns of CPU per byte), applied by
  // the send_cost()/recv_cost() accessors: a 100-byte packet with 10 ns/B
  // on both sides shifts arrival by send work and busy-time by recv work.
  SimConfig config{.num_stacks = 2, .seed = 21};
  config.net.min_latency = 100 * kMicrosecond;
  config.net.max_latency = 100 * kMicrosecond;
  config.net.send_cost_fixed = 0;
  config.net.send_cost_per_byte_ns = 10;
  config.net.recv_cost_fixed = 0;
  config.net.recv_cost_per_byte_ns = 7;
  EXPECT_EQ(config.net.send_cost(100), 1000);  // 100 B * 10 ns/B
  EXPECT_EQ(config.net.recv_cost(100), 700);
  SimWorld world(config);

  const std::size_t kBytes = 100;
  TimePoint arrival = -1;
  TimePoint recv_busy = -1;
  world.stack(1).host().set_packet_handler(
      [&](NodeId, const Payload& p) {
        EXPECT_EQ(p.size(), kBytes);
        arrival = world.now();
        recv_busy = world.stack(1).host().busy_now();
      });
  world.at_node(0, 0, [&]() {
    world.stack(0).host().send_packet(1, Payload(Bytes(kBytes, 0xAB)));
  });
  world.run_for(kSecond);
  // Departure is delayed by the sender's per-byte work (store-and-forward).
  EXPECT_EQ(arrival, 100 * 10 + 100 * kMicrosecond);
  // The receiver is charged its per-byte work before the handler runs.
  EXPECT_EQ(recv_busy, arrival + 100 * 7);
}

TEST(SimCostModel, BusyNowIncludesChargesWithinEvent) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 3});
  HostEnv& host = world.stack(0).host();
  TimePoint plain = -1, busy = -1;
  world.at_node(kMillisecond, 0, [&]() {
    host.charge(7 * kMillisecond);
    plain = host.now();
    busy = host.busy_now();
  });
  world.run_for(kSecond);
  EXPECT_EQ(plain, kMillisecond);
  EXPECT_EQ(busy, 8 * kMillisecond);
}

TEST(SimCostModel, ServiceHopCostChargedPerCall) {
  SimConfig config{.num_stacks = 1, .seed = 4};
  config.stack_cost.service_hop_cost = 3 * kMicrosecond;
  SimWorld world(config);
  Stack& stack = world.stack(0);

  struct NopApi {
    virtual ~NopApi() = default;
    virtual void nop() = 0;
  };
  struct NopModule final : Module, NopApi {
    using Module::Module;
    void nop() override {}
  };
  auto* mod = stack.emplace_module<NopModule>(stack, "nop");
  stack.bind<NopApi>("nop", mod, mod);

  TimePoint busy = -1;
  world.at_node(0, 0, [&]() {
    auto ref = stack.require<NopApi>("nop");
    for (int i = 0; i < 5; ++i) ref.call([](NopApi& api) { api.nop(); });
    busy = stack.host().busy_now();
  });
  world.run_for(kSecond);
  EXPECT_EQ(busy, 5 * 3 * kMicrosecond);
}

TEST(SimCostModel, ModuleCreateCostCharged) {
  SimConfig config{.num_stacks = 1, .seed = 5};
  config.stack_cost.module_create_cost = 20 * kMillisecond;
  SimWorld world(config);
  Stack& stack = world.stack(0);
  struct Dummy final : Module {
    using Module::Module;
  };
  world.at_node(0, 0, [&]() {
    stack.emplace_module<Dummy>(stack, "dummy");
    EXPECT_EQ(stack.host().busy_now(), 20 * kMillisecond);
  });
  world.run_for(kSecond);
}

TEST(SimCostModel, ZeroCostModelAddsNothing) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 6});
  Stack& stack = world.stack(0);
  struct Dummy final : Module {
    using Module::Module;
  };
  world.at_node(kMillisecond, 0, [&]() {
    stack.emplace_module<Dummy>(stack, "dummy");
    EXPECT_EQ(stack.host().busy_now(), kMillisecond);
  });
  world.run_for(kSecond);
}

TEST(SimCostModel, DeterministicWithCostsEnabled) {
  auto run = [](std::uint64_t seed) {
    SimConfig config{.num_stacks = 3, .seed = seed};
    config.stack_cost.service_hop_cost = 8 * kMicrosecond;
    SimWorld world(config);
    std::vector<TimePoint> arrivals;
    for (NodeId i = 0; i < 3; ++i) {
      world.stack(i).host().set_packet_handler(
          [&arrivals, &world](NodeId, const Payload&) {
            arrivals.push_back(world.now());
          });
    }
    for (int k = 0; k < 30; ++k) {
      world.at_node(k * kMillisecond, static_cast<NodeId>(k % 3),
                    [&world, k]() {
                      world.stack(static_cast<NodeId>(k % 3))
                          .host()
                          .charge(50 * kMicrosecond);
                      world.stack(static_cast<NodeId>(k % 3))
                          .host()
                          .send_packet(static_cast<NodeId>((k + 1) % 3),
                                       to_bytes("m"));
                    });
    }
    world.run_for(kSecond);
    return arrivals;
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

}  // namespace
}  // namespace dpu
