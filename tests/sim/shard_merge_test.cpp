// Sharded engine: cross-shard mailbox merge ordering and byte-identity of
// execution across shard counts.
//
// The engine's contract (sim_world.hpp header comment) is that the shard
// count is *purely* a throughput knob: every observable — delivery order,
// virtual timestamps, RNG draws, counters that enter result documents —
// must be a pure function of (workload, seed).  These tests attack the
// two spots where that can break: equal-time arrivals produced by
// different shards in different windows (merge ordering), and state that
// straddles shards (crash purges, busy-time, duplicates).
#include "sim/sim_world.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <vector>

namespace dpu {
namespace {

/// One observed delivery: (receiver, sender, virtual time, payload).
using Delivery = std::tuple<NodeId, NodeId, TimePoint, std::string>;

/// Runs `drive(world)` on a fresh world with `shards` and records every
/// delivery on every node in that node's arrival order, then merges the
/// per-node logs in node-major order (per-node order is the engine's
/// guarantee; a global log would also have to fix an inter-node order,
/// which no engine promises).
std::vector<Delivery> run_and_log(
    SimConfig config, std::size_t shards,
    const std::function<void(SimWorld&)>& drive) {
  config.shards = shards;
  SimWorld world(config);
  std::vector<std::vector<Delivery>> per_node(world.size());
  for (NodeId i = 0; i < world.size(); ++i) {
    world.stack(i).host().set_packet_handler(
        [&per_node, &world, i](NodeId src, const Payload& data) {
          per_node[i].emplace_back(i, src, world.now(), to_string(data));
        });
  }
  drive(world);
  world.run_for(10 * kSecond);
  std::vector<Delivery> all;
  for (const auto& log : per_node) {
    all.insert(all.end(), log.begin(), log.end());
  }
  return all;
}

/// Adversarial interleaving: zero latency jitter and zero receive cost make
/// every packet of a salvo arrive at node 0 at the *same* virtual instant,
/// from senders that live on different shards at every shard count > 1.
/// The merge key (deliver_time, src, dst, link_seq) — never thread arrival
/// order — must therefore fully decide the delivery order.
TEST(ShardMerge, EqualTimeArrivalsOrderIdenticallyAcrossShardCounts) {
  SimConfig config{.num_stacks = 8, .seed = 42};
  config.net.min_latency = 50 * kMicrosecond;
  config.net.max_latency = 50 * kMicrosecond;  // no jitter: forced collisions
  config.net.recv_cost_fixed = 0;
  config.net.recv_cost_per_byte_ns = 0;
  config.net.send_cost_per_byte_ns = 0;

  const auto drive = [](SimWorld& world) {
    // Three salvos; within each, every node (node 0 included — self-sends
    // take the mailbox path too) fires several packets at node 0 at the
    // same instant.  Decreasing sender order makes "sorted by src" a real
    // assertion rather than an accident of scheduling.
    for (int salvo = 0; salvo < 3; ++salvo) {
      const TimePoint t = (salvo + 1) * kMillisecond;
      for (int s = 7; s >= 0; --s) {
        const NodeId src = static_cast<NodeId>(s);
        world.at_node(t, src, [&world, src, salvo]() {
          for (int k = 0; k < 4; ++k) {
            world.stack(src).host().send_packet(
                0, to_bytes("s" + std::to_string(salvo) + "k" +
                            std::to_string(k)));
          }
        });
      }
    }
  };

  const std::vector<Delivery> serial = run_and_log(config, 1, drive);
  ASSERT_EQ(serial.size(), 3u * 8u * 4u);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    EXPECT_EQ(serial, run_and_log(config, shards, drive))
        << "delivery order diverged at shards=" << shards;
  }
}

/// Same collision setup plus certain duplication: the two copies of one
/// send share (time, src, dst) and are ordered by link_seq alone.
TEST(ShardMerge, DuplicateCopiesKeepLinkSequenceOrder) {
  SimConfig config{.num_stacks = 4, .seed = 11};
  config.net.min_latency = 50 * kMicrosecond;
  config.net.max_latency = 50 * kMicrosecond;
  config.net.duplicate_probability = 1.0;
  config.net.recv_cost_fixed = 0;
  config.net.recv_cost_per_byte_ns = 0;

  const auto drive = [](SimWorld& world) {
    for (NodeId src = 0; src < 4; ++src) {
      world.at_node(kMillisecond, src, [&world, src]() {
        world.stack(src).host().send_packet(1, to_bytes("dup"));
        world.stack(src).host().send_packet(1, to_bytes("dup2"));
      });
    }
  };

  const std::vector<Delivery> serial = run_and_log(config, 1, drive);
  ASSERT_EQ(serial.size(), 4u * 2u * 2u);  // every send delivered twice
  for (const std::size_t shards : {2u, 4u}) {
    EXPECT_EQ(serial, run_and_log(config, shards, drive));
  }
}

/// A lossy all-to-all workload with per-link RNG draws, driver-scheduled
/// crash and recovery: the full observable surface (deliveries, RNG-driven
/// drops, purge scope, counters that enter result documents) must match the
/// serial run at every shard count.
TEST(ShardMerge, LossyChurnWorkloadIsShardCountInvariant) {
  SimConfig config{.num_stacks = 6, .seed = 7};
  config.net.drop_probability = 0.15;
  config.net.duplicate_probability = 0.05;

  const auto drive = [](SimWorld& world) {
    for (int k = 0; k < 120; ++k) {
      const NodeId src = static_cast<NodeId>(k % 6);
      const NodeId dst = static_cast<NodeId>((k * 5 + 1) % 6);
      world.at_node(k * 100 * kMicrosecond, src, [&world, src, dst, k]() {
        world.stack(src).host().send_packet(
            dst, to_bytes("m" + std::to_string(k)));
      });
    }
    world.at(4 * kMillisecond, [&world]() { world.crash(3); });
    world.at(8 * kMillisecond, [&world]() {
      world.recover(3);
      world.stack(3).host().set_packet_handler([](NodeId, const Payload&) {});
    });
  };

  struct Observed {
    std::vector<Delivery> deliveries;
    std::uint64_t packets_sent;
    std::uint64_t packets_dropped;
    std::uint64_t window_barriers;
    std::uint64_t merge_batches;
  };
  const auto observe = [&](std::size_t shards) {
    SimConfig c = config;
    c.shards = shards;
    SimWorld world(c);
    std::vector<std::vector<Delivery>> per_node(world.size());
    for (NodeId i = 0; i < world.size(); ++i) {
      world.stack(i).host().set_packet_handler(
          [&per_node, &world, i](NodeId src, const Payload& data) {
            per_node[i].emplace_back(i, src, world.now(), to_string(data));
          });
    }
    drive(world);
    world.run_for(10 * kSecond);
    Observed o;
    for (const auto& log : per_node) {
      o.deliveries.insert(o.deliveries.end(), log.begin(), log.end());
    }
    o.packets_sent = world.packets_sent();
    o.packets_dropped = world.packets_dropped();
    o.window_barriers = world.window_barriers();
    o.merge_batches = world.merge_batches();
    return o;
  };

  const Observed serial = observe(1);
  EXPECT_GT(serial.deliveries.size(), 0u);
  for (const std::size_t shards : {2u, 3u, 6u}) {
    const Observed sharded = observe(shards);
    EXPECT_EQ(serial.deliveries, sharded.deliveries)
        << "deliveries diverged at shards=" << shards;
    EXPECT_EQ(serial.packets_sent, sharded.packets_sent);
    EXPECT_EQ(serial.packets_dropped, sharded.packets_dropped);
    // These two enter byte-compared result documents, so grouping
    // independence is part of their contract, not a nice-to-have.
    EXPECT_EQ(serial.window_barriers, sharded.window_barriers)
        << "window_barriers diverged at shards=" << shards;
    EXPECT_EQ(serial.merge_batches, sharded.merge_batches)
        << "merge_batches diverged at shards=" << shards;
  }
}

/// Shard count is clamped to the node count and exposed back.
TEST(ShardMerge, ShardCountClampedToNodes) {
  SimConfig config{.num_stacks = 3, .seed = 1};
  config.shards = 16;
  SimWorld world(config);
  EXPECT_EQ(world.num_shards(), 3u);
  SimConfig zero{.num_stacks = 3, .seed = 1};
  zero.shards = 0;
  SimWorld world2(zero);
  EXPECT_EQ(world2.num_shards(), 1u);
}

}  // namespace
}  // namespace dpu
