// Tests for the discrete-event engine: virtual time, timers, the network
// model, the processor (busy-time) model, determinism, and fault injection.
#include "sim/sim_world.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dpu {
namespace {

TEST(SimWorld, TimerFiresAtRequestedVirtualTime) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1});
  HostEnv& host = world.stack(0).host();

  TimePoint fired_at = -1;
  host.set_timer(100 * kMillisecond, [&]() { fired_at = host.now(); });
  world.run_for(kSecond);
  EXPECT_EQ(fired_at, 100 * kMillisecond);
  EXPECT_EQ(world.now(), kSecond);
}

TEST(SimWorld, TimerWithZeroAndNegativeDelayFiresImmediately) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1});
  HostEnv& host = world.stack(0).host();
  int fired = 0;
  host.set_timer(0, [&]() { ++fired; });
  host.set_timer(-5, [&]() { ++fired; });  // clamped to 0
  world.run_for(1);
  EXPECT_EQ(fired, 2);
}

TEST(SimWorld, CancelledTimerDoesNotFire) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1});
  HostEnv& host = world.stack(0).host();
  bool fired = false;
  const TimerId id = host.set_timer(10 * kMillisecond, [&]() { fired = true; });
  host.cancel_timer(id);
  world.run_for(kSecond);
  EXPECT_FALSE(fired);
}

TEST(SimWorld, CancelIsIdempotentAndSafeAfterFire) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1});
  HostEnv& host = world.stack(0).host();
  int fired = 0;
  const TimerId id = host.set_timer(kMillisecond, [&]() { ++fired; });
  world.run_for(kSecond);
  EXPECT_EQ(fired, 1);
  host.cancel_timer(id);  // already fired: must be a no-op
  host.cancel_timer(id);
  world.run_for(kSecond);
  EXPECT_EQ(fired, 1);
}

TEST(SimWorld, SameDeadlineEventsRunInInsertionOrder) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1});
  HostEnv& host = world.stack(0).host();
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    host.set_timer(kMillisecond, [&order, i]() { order.push_back(i); });
  }
  world.run_for(kSecond);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimWorld, PostRunsAfterCurrentEvent) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1});
  HostEnv& host = world.stack(0).host();
  std::vector<int> order;
  host.set_timer(kMillisecond, [&]() {
    order.push_back(1);
    host.post([&]() { order.push_back(3); });
    order.push_back(2);
  });
  world.run_for(kSecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimWorld, PacketDeliveredWithinLatencyBounds) {
  SimConfig config{.num_stacks = 2, .seed = 7};
  config.net.min_latency = 50 * kMicrosecond;
  config.net.max_latency = 80 * kMicrosecond;
  SimWorld world(config);

  TimePoint sent_at = -1, recv_at = -1;
  NodeId from = kNoNode;
  world.stack(1).host().set_packet_handler(
      [&](NodeId src, const Payload& data) {
        recv_at = world.now();
        from = src;
        EXPECT_EQ(to_string(data), "hi");
      });
  world.at_node(kMillisecond, 0, [&]() {
    sent_at = world.now();
    world.stack(0).host().send_packet(1, to_bytes("hi"));
  });
  world.run_for(kSecond);

  ASSERT_GE(recv_at, 0);
  EXPECT_EQ(from, 0u);
  EXPECT_GE(recv_at - sent_at, 50 * kMicrosecond);
  // Upper bound plus receive-side CPU cost.
  EXPECT_LE(recv_at - sent_at, 90 * kMicrosecond);
}

TEST(SimWorld, SelfSendDelivered) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 3});
  int got = 0;
  world.stack(0).host().set_packet_handler(
      [&](NodeId src, const Payload&) {
        EXPECT_EQ(src, 0u);
        ++got;
      });
  world.at_node(0, 0,
                [&]() { world.stack(0).host().send_packet(0, to_bytes("x")); });
  world.run_for(kSecond);
  EXPECT_EQ(got, 1);
}

TEST(SimWorld, DropAllLosesEveryPacket) {
  SimConfig config{.num_stacks = 2, .seed = 5};
  config.net.drop_probability = 1.0;
  SimWorld world(config);
  int got = 0;
  world.stack(1).host().set_packet_handler(
      [&](NodeId, const Payload&) { ++got; });
  world.at_node(0, 0, [&]() {
    for (int i = 0; i < 10; ++i) {
      world.stack(0).host().send_packet(1, to_bytes("x"));
    }
  });
  world.run_for(kSecond);
  EXPECT_EQ(got, 0);
  EXPECT_EQ(world.packets_dropped(), 10u);
}

TEST(SimWorld, DuplicationDeliversTwice) {
  SimConfig config{.num_stacks = 2, .seed = 5};
  config.net.duplicate_probability = 1.0;
  SimWorld world(config);
  int got = 0;
  world.stack(1).host().set_packet_handler(
      [&](NodeId, const Payload&) { ++got; });
  world.at_node(0, 0,
                [&]() { world.stack(0).host().send_packet(1, to_bytes("x")); });
  world.run_for(kSecond);
  EXPECT_EQ(got, 2);
}

TEST(SimWorld, LinkFilterPartitionsTraffic) {
  SimWorld world(SimConfig{.num_stacks = 3, .seed = 2});
  std::vector<int> got(3, 0);
  for (NodeId i = 0; i < 3; ++i) {
    world.stack(i).host().set_packet_handler(
        [&got, i](NodeId, const Payload&) { ++got[i]; });
  }
  // Partition {0} vs {1,2}.
  world.set_link_filter([](NodeId src, NodeId dst) {
    const bool src_side = src == 0;
    const bool dst_side = dst == 0;
    return src_side == dst_side;
  });
  world.at_node(0, 0, [&]() {
    world.stack(0).host().send_packet(1, to_bytes("x"));
    world.stack(0).host().send_packet(0, to_bytes("x"));
  });
  world.at_node(0, 1, [&]() {
    world.stack(1).host().send_packet(2, to_bytes("x"));
    world.stack(1).host().send_packet(0, to_bytes("x"));
  });
  world.run_for(kSecond);
  EXPECT_EQ(got[0], 1);  // only its own loopback
  EXPECT_EQ(got[1], 0);
  EXPECT_EQ(got[2], 1);

  // Heal and verify traffic flows again.
  world.set_link_filter(nullptr);
  world.at_node(world.now(), 0,
                [&]() { world.stack(0).host().send_packet(1, to_bytes("x")); });
  world.run_for(kSecond);
  EXPECT_EQ(got[1], 1);
}

TEST(SimWorld, CrashedStackReceivesNothingAndRunsNothing) {
  SimWorld world(SimConfig{.num_stacks = 2, .seed = 9});
  int timer_fired = 0, packets = 0;
  world.stack(1).host().set_packet_handler(
      [&](NodeId, const Payload&) { ++packets; });
  world.stack(1).host().set_timer(10 * kMillisecond,
                                  [&]() { ++timer_fired; });
  world.at(5 * kMillisecond, [&]() { world.crash(1); });
  world.at_node(6 * kMillisecond, 0, [&]() {
    world.stack(0).host().send_packet(1, to_bytes("x"));
  });
  world.run_for(kSecond);
  EXPECT_EQ(timer_fired, 0);
  EXPECT_EQ(packets, 0);
  EXPECT_TRUE(world.crashed(1));
  EXPECT_EQ(world.crashed_set(), std::set<NodeId>{1});
}

TEST(SimWorld, ChargeDelaysSubsequentEventsOnSameStack) {
  // The processor model: a handler that charges 10ms of CPU pushes the
  // stack's next event to t+10ms, modelling queueing under load.
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1});
  HostEnv& host = world.stack(0).host();
  std::vector<TimePoint> at;
  host.set_timer(kMillisecond, [&]() {
    at.push_back(host.now());
    host.charge(10 * kMillisecond);
  });
  host.set_timer(2 * kMillisecond, [&]() { at.push_back(host.now()); });
  world.run_for(kSecond);
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], kMillisecond);
  EXPECT_EQ(at[1], 11 * kMillisecond);
}

TEST(SimWorld, ChargeDoesNotAffectOtherStacks) {
  SimWorld world(SimConfig{.num_stacks = 2, .seed = 1});
  std::vector<TimePoint> at;
  world.stack(0).host().set_timer(kMillisecond, [&]() {
    world.stack(0).host().charge(50 * kMillisecond);
  });
  world.stack(1).host().set_timer(2 * kMillisecond, [&]() {
    at.push_back(world.now());
  });
  world.run_for(kSecond);
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], 2 * kMillisecond);
}

TEST(SimWorld, DeterministicAcrossRunsWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    SimConfig config{.num_stacks = 3, .seed = seed};
    config.net.drop_probability = 0.1;
    SimWorld world(config);
    std::vector<std::pair<NodeId, TimePoint>> deliveries;
    for (NodeId i = 0; i < 3; ++i) {
      world.stack(i).host().set_packet_handler(
          [&deliveries, &world, i](NodeId, const Payload&) {
            deliveries.emplace_back(i, world.now());
          });
    }
    for (int k = 0; k < 50; ++k) {
      world.at_node(k * kMillisecond, static_cast<NodeId>(k % 3), [&world, k]() {
        const NodeId src = static_cast<NodeId>(k % 3);
        const NodeId dst = static_cast<NodeId>((k + 1) % 3);
        world.stack(src).host().send_packet(dst, to_bytes("ping"));
      });
    }
    world.run_for(kSecond);
    return deliveries;
  };
  auto a = run(1234);
  auto b = run(1234);
  auto c = run(4321);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(SimWorld, EventBudgetGuardStopsRunaway) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1});
  HostEnv& host = world.stack(0).host();
  // A self-perpetuating zero-delay loop.
  std::function<void()> loop = [&]() { host.post(loop); };
  host.post(loop);
  EXPECT_FALSE(world.run_until(kSecond, /*max_events=*/1000));
  EXPECT_GE(world.processed_events(), 1000u);
}

TEST(SimWorld, PacketToStackWithoutHandlerIsDropped) {
  SimWorld world(SimConfig{.num_stacks = 2, .seed = 1});
  world.at_node(0, 0,
                [&]() { world.stack(0).host().send_packet(1, to_bytes("x")); });
  EXPECT_NO_THROW(world.run_for(kSecond));
}

}  // namespace
}  // namespace dpu
