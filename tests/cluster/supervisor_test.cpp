// End-to-end proc engine: a real ClusterSupervisor run over fork/exec'd
// dpu_node agents on loopback UDP.  Small n, short duration — this is the
// smoke test proving the whole deployment path (spawn, hello, fault
// broadcast, SIGKILL crash, respawn recovery, drain, harvest, journal
// replay, merge) holds together; scale runs live in the proc campaign.
//
// Needs the dpu_node binary next to the build dir (DPU_BIN_DIR, injected
// by CMake); skips when benches were not built.
#include "cluster/supervisor.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <stdexcept>
#include <string>

#include "scenario/spec.hpp"

namespace dpu::cluster {
namespace {

using scenario::Engine;
using scenario::Json;
using scenario::ScenarioResult;
using scenario::ScenarioSpec;

std::string node_binary() { return std::string(DPU_BIN_DIR) + "/dpu_node"; }

bool have_node_binary() { return ::access(node_binary().c_str(), X_OK) == 0; }

/// Three processes, short run — the smallest spec that exercises a real
/// protocol replacement over real sockets.
ScenarioSpec mini_spec(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.engine = Engine::kProc;
  spec.n = 3;
  spec.duration = 2500 * kMillisecond;
  spec.drain = 30 * kSecond;
  spec.workload.rate_per_stack = 5.0;
  spec.workload.message_size = 48;
  spec.updates = {{1200 * kMillisecond, 0, "abcast.seq"}};
  return spec;
}

SupervisorOptions options_for(const std::string& scratch,
                              std::uint16_t base_port) {
  SupervisorOptions options;
  options.node_binary = node_binary();
  options.results_dir = testing::TempDir() + scratch;
  options.base_port = base_port;
  return options;
}

TEST(ClusterSupervisor, RejectsInvalidSpec) {
  ClusterSupervisor supervisor(options_for("cluster-sup-invalid", 23100));
  ScenarioSpec spec;  // no name, n = 0: invalid on several counts
  EXPECT_THROW((void)supervisor.run(spec, 1), std::invalid_argument);
}

TEST(ClusterSupervisor, RunsSwitchOverRealProcesses) {
  if (!have_node_binary()) {
    GTEST_SKIP() << "dpu_node not built (DPU_BUILD_BENCH=OFF)";
  }
  ClusterSupervisor supervisor(options_for("cluster-sup-switch", 23110));
  const ScenarioResult result =
      supervisor.run(mini_spec("sup-test-switch"), 1);

  EXPECT_TRUE(result.ok()) << result.abcast_report.summary() << "\n"
                           << result.generic_report.summary();
  EXPECT_GT(result.deliveries, 0u);
  EXPECT_GT(result.messages_sent, 0u);
  // Real sockets carried the run: the batching counters must be live.
  EXPECT_GT(result.socket_tx_syscalls, 0u);
  EXPECT_GT(result.socket_tx_datagrams, 0u);
  EXPECT_GT(result.socket_rx_datagrams, 0u);
  // Every stack converged to the replacement protocol.
  ASSERT_EQ(result.final_protocol.size(), 3u);
  for (const std::string& protocol : result.final_protocol) {
    EXPECT_EQ(protocol, "abcast.seq");
  }
  EXPECT_EQ(result.switch_windows.size(), 1u);
  // One harvested report per node, each carrying its socket counters.
  ASSERT_EQ(result.node_reports.size(), 3u);
  for (const Json& report : result.node_reports) {
    EXPECT_NE(report.find("socket_tx_syscalls"), nullptr);
    EXPECT_NE(report.find("counts"), nullptr);
  }
}

TEST(ClusterSupervisor, CrashAndRespawnRecovery) {
  if (!have_node_binary()) {
    GTEST_SKIP() << "dpu_node not built (DPU_BUILD_BENCH=OFF)";
  }
  ClusterSupervisor supervisor(options_for("cluster-sup-churn", 23120));
  ScenarioSpec spec = mini_spec("sup-test-churn");
  spec.crashes = {{800 * kMillisecond, 2}};
  spec.recoveries = {{1600 * kMillisecond, 2}};
  const ScenarioResult result = supervisor.run(spec, 1);

  EXPECT_TRUE(result.ok()) << result.abcast_report.summary() << "\n"
                           << result.generic_report.summary();
  EXPECT_TRUE(result.crashed.empty());
  EXPECT_EQ(result.recovered, (std::set<NodeId>{2}));
  // The respawned incarnation converged with everyone else.
  ASSERT_EQ(result.final_protocol.size(), 3u);
  EXPECT_EQ(result.final_protocol[2], "abcast.seq");
}

}  // namespace
}  // namespace dpu::cluster
