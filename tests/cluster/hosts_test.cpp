// Hosts-file parsing edge cases and per-node spec slicing — the proc
// engine's plumbing that supervisor and agent must agree on byte-for-byte.
#include "cluster/hosts.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cluster/slice.hpp"
#include "scenario/library.hpp"

namespace dpu::cluster {
namespace {

TEST(HostsFile, ParsesCommentsBlanksAndEntries) {
  const HostsFile file = HostsFile::parse(
      "# header comment\n"
      "\n"
      "0 127.0.0.1 38000\n"
      "2 10.0.0.7 40000   # inline comment\n"
      "1 127.0.0.1 38001\n");
  ASSERT_EQ(file.entries.size(), 3u);
  EXPECT_EQ(file.at(0).port, 38000);
  EXPECT_EQ(file.at(2).host, "10.0.0.7");
  EXPECT_EQ(file.at(1).port, 38001);
}

TEST(HostsFile, GenerateFormatParseRoundTrip) {
  const HostsFile file = HostsFile::generate(5, "127.0.0.1", 38000);
  const HostsFile again = HostsFile::parse(file.format());
  ASSERT_EQ(again.entries.size(), 5u);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(again.at(i).host, "127.0.0.1");
    EXPECT_EQ(again.at(i).port, 38000 + i);
  }
}

TEST(HostsFile, RejectsDuplicateNodeId) {
  EXPECT_THROW(HostsFile::parse("0 127.0.0.1 38000\n"
                                "0 127.0.0.1 38001\n"),
               std::invalid_argument);
}

TEST(HostsFile, RejectsBadPorts) {
  EXPECT_THROW(HostsFile::parse("0 127.0.0.1 0\n"), std::invalid_argument);
  EXPECT_THROW(HostsFile::parse("0 127.0.0.1 70000\n"), std::invalid_argument);
  EXPECT_THROW(HostsFile::parse("0 127.0.0.1 -5\n"), std::invalid_argument);
  EXPECT_THROW(HostsFile::parse("0 127.0.0.1 port\n"), std::invalid_argument);
}

TEST(HostsFile, RejectsMalformedLines) {
  EXPECT_THROW(HostsFile::parse("0 127.0.0.1\n"), std::invalid_argument);
  EXPECT_THROW(HostsFile::parse("-1 127.0.0.1 38000\n"),
               std::invalid_argument);
  EXPECT_THROW(HostsFile::parse("0 127.0.0.1 38000 extra\n"),
               std::invalid_argument);
}

TEST(HostsFile, AtThrowsOnMissingNode) {
  const HostsFile file = HostsFile::parse("0 127.0.0.1 38000\n");
  EXPECT_THROW(file.at(3), std::invalid_argument);
}

TEST(HostsFile, PeersRequireExactCoverage) {
  // Hole in 0..n-1: node 1 missing.
  const HostsFile holey = HostsFile::parse("0 127.0.0.1 38000\n"
                                           "2 127.0.0.1 38002\n");
  EXPECT_THROW(holey.peers(3), std::invalid_argument);

  // Surplus node outside the range.
  const HostsFile surplus = HostsFile::parse("0 127.0.0.1 38000\n"
                                             "1 127.0.0.1 38001\n"
                                             "7 127.0.0.1 38007\n");
  EXPECT_THROW(surplus.peers(2), std::invalid_argument);

  const std::vector<RtPeer> peers =
      HostsFile::generate(3, "127.0.0.1", 38000).peers(3);
  ASSERT_EQ(peers.size(), 3u);
  EXPECT_EQ(peers[2].port, 38002);
}

// ---------------------------------------------------------------------------
// Per-node slicing
// ---------------------------------------------------------------------------

TEST(NodeSlice, SplitsUpdatesByInitiatorInTimeOrder) {
  scenario::ScenarioSpec spec;
  spec.n = 4;
  spec.updates = {
      {5 * kSecond, 1, "abcast.ct"},
      {2 * kSecond, 0, "abcast.seq"},
      {3 * kSecond, 1, "abcast.token"},
  };
  const NodeSlice zero = slice_for_node(spec, 0);
  ASSERT_EQ(zero.updates.size(), 1u);
  EXPECT_EQ(zero.updates[0].protocol, "abcast.seq");
  EXPECT_FALSE(zero.late_join);

  const NodeSlice one = slice_for_node(spec, 1);
  ASSERT_EQ(one.updates.size(), 2u);
  EXPECT_EQ(one.updates[0].protocol, "abcast.token");  // sorted by time
  EXPECT_EQ(one.updates[1].protocol, "abcast.ct");

  EXPECT_TRUE(slice_for_node(spec, 2).updates.empty());
}

TEST(NodeSlice, MarksLateJoiners) {
  scenario::ScenarioSpec spec;
  spec.n = 3;
  spec.late_joins = {{2500 * kMillisecond, 2}};
  const NodeSlice late = slice_for_node(spec, 2);
  EXPECT_TRUE(late.late_join);
  EXPECT_EQ(late.join_at, 2500 * kMillisecond);
  EXPECT_FALSE(slice_for_node(spec, 1).late_join);
}

TEST(NodeSlice, CuratedProcScenariosSliceConsistently) {
  // Every curated proc scenario validates, and its slices partition the
  // update plan exactly (each update appears in exactly one slice).
  for (const scenario::ScenarioSpec& spec :
       scenario::curated_proc_scenarios()) {
    EXPECT_TRUE(spec.validate().empty()) << spec.name;
    EXPECT_EQ(spec.engine, scenario::Engine::kProc) << spec.name;
    std::size_t sliced = 0;
    for (NodeId i = 0; i < spec.n; ++i) {
      sliced += slice_for_node(spec, i).updates.size();
    }
    EXPECT_EQ(sliced, spec.updates.size()) << spec.name;
  }
}

}  // namespace
}  // namespace dpu::cluster
