// Orphan safety and interrupt handling for the process-per-node runner.
//
// Drives the real cluster_campaign binary mid-run and then kills it two
// ways: SIGKILL (nothing in userspace gets to clean up — the agents must
// die via PR_SET_PDEATHSIG) and SIGTERM (the campaign must kill its
// children, flush a partial results document marked "interrupted", and
// exit with code 3).  Both paths must leave zero dpu_node processes.
#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <chrono>
#include <thread>
#include <vector>

namespace dpu::cluster {
namespace {

std::string bin(const std::string& name) {
  return std::string(DPU_BIN_DIR) + "/" + name;
}

bool have_binaries() {
  return ::access(bin("cluster_campaign").c_str(), X_OK) == 0 &&
         ::access(bin("dpu_node").c_str(), X_OK) == 0;
}

/// All live processes whose parent is `parent` and whose comm is dpu_node,
/// by walking /proc (the supervisor forks agents directly, so agents are
/// immediate children of the campaign process).
std::vector<pid_t> agent_children_of(pid_t parent) {
  std::vector<pid_t> agents;
  DIR* proc = ::opendir("/proc");
  if (proc == nullptr) return agents;
  while (dirent* entry = ::readdir(proc)) {
    const std::string name = entry->d_name;
    if (name.empty() || !std::isdigit(static_cast<unsigned char>(name[0]))) {
      continue;
    }
    std::ifstream stat("/proc/" + name + "/stat");
    std::string line;
    if (!std::getline(stat, line)) continue;
    // pid (comm) state ppid ... — comm may contain spaces, so parse from
    // the closing parenthesis.
    const std::size_t open = line.find('(');
    const std::size_t close = line.rfind(')');
    if (open == std::string::npos || close == std::string::npos) continue;
    const std::string comm = line.substr(open + 1, close - open - 1);
    if (comm != "dpu_node") continue;
    std::istringstream rest(line.substr(close + 1));
    char state = 0;
    pid_t ppid = 0;
    rest >> state >> ppid;
    if (ppid == parent && state != 'Z') {
      agents.push_back(static_cast<pid_t>(std::stol(name)));
    }
  }
  ::closedir(proc);
  return agents;
}

pid_t spawn_campaign(const std::string& out_path,
                     const std::string& results_dir,
                     const std::string& base_port) {
  const std::string campaign = bin("cluster_campaign");
  const std::string node = bin("dpu_node");
  const pid_t pid = ::fork();
  if (pid == 0) {
    std::vector<std::string> args = {
        campaign,     "--scenario",    "proc-orphan-mini",
        "--seeds",    "1",             "--node-binary", node,
        "--results-dir", results_dir,  "--base-port",   base_port,
        "--out",      out_path};
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(campaign.c_str(), argv.data());
    ::_exit(126);
  }
  return pid;
}

std::vector<pid_t> wait_for_agents(pid_t campaign, std::size_t expect) {
  for (int i = 0; i < 400; ++i) {  // up to 20 s for spawn + hello
    const std::vector<pid_t> agents = agent_children_of(campaign);
    if (agents.size() >= expect) return agents;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return {};
}

bool all_gone(const std::vector<pid_t>& pids) {
  for (const pid_t pid : pids) {
    if (::kill(pid, 0) == 0 || errno != ESRCH) return false;
  }
  return true;
}

bool wait_all_gone(const std::vector<pid_t>& pids) {
  for (int i = 0; i < 100; ++i) {  // up to 5 s
    if (all_gone(pids)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

TEST(OrphanSafety, SigkilledSupervisorLeavesNoAgents) {
  if (!have_binaries()) {
    GTEST_SKIP() << "cluster binaries not built (DPU_BUILD_BENCH=OFF)";
  }
  const std::string scratch = testing::TempDir() + "orphan-sigkill";
  const pid_t campaign = spawn_campaign(scratch + "-out.json", scratch,
                                        "23200");
  ASSERT_GT(campaign, 0);
  const std::vector<pid_t> agents = wait_for_agents(campaign, 3);
  ASSERT_EQ(agents.size(), 3u) << "agents never appeared";

  // SIGKILL: the campaign gets no chance to clean up.  The agents must
  // die anyway, via the PR_SET_PDEATHSIG they installed before exec.
  ASSERT_EQ(::kill(campaign, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(campaign, &status, 0), campaign);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_TRUE(wait_all_gone(agents)) << "orphaned dpu_node processes";
}

TEST(OrphanSafety, SigtermFlushesInterruptedDocumentAndExits3) {
  if (!have_binaries()) {
    GTEST_SKIP() << "cluster binaries not built (DPU_BUILD_BENCH=OFF)";
  }
  const std::string scratch = testing::TempDir() + "orphan-sigterm";
  const std::string out_path = scratch + "-out.json";
  std::remove(out_path.c_str());
  const pid_t campaign = spawn_campaign(out_path, scratch, "23230");
  ASSERT_GT(campaign, 0);
  const std::vector<pid_t> agents = wait_for_agents(campaign, 3);
  ASSERT_EQ(agents.size(), 3u) << "agents never appeared";

  ASSERT_EQ(::kill(campaign, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(campaign, &status, 0), campaign);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 3);
  EXPECT_TRUE(wait_all_gone(agents)) << "agents outlived the interrupt";

  // The partial document was flushed and marked.
  std::ifstream in(out_path);
  ASSERT_TRUE(in.good()) << "no partial results document at " << out_path;
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("\"interrupted\": true"), std::string::npos)
      << text.str().substr(0, 400);
}

}  // namespace
}  // namespace dpu::cluster
