// Crash-durable audit journal: hex round trips, append/parse round trips,
// and tolerance of the torn lines a SIGKILL can leave behind.
#include "cluster/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dpu::cluster {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(Journal, HexRoundTrips) {
  const Bytes data = {0x00, 0x01, 0xDE, 0xAD, 0xBE, 0xEF, 0xFF};
  EXPECT_EQ(encode_hex(data), "0001deadbeefff");
  EXPECT_EQ(decode_hex("0001deadbeefff"), data);
  EXPECT_EQ(decode_hex("0001DEADBEEFFF"), data);  // upper-case tolerated
  EXPECT_TRUE(decode_hex("").empty());
}

TEST(Journal, DecodeHexRejectsMalformedInput) {
  EXPECT_THROW(decode_hex("abc"), std::invalid_argument);    // odd length
  EXPECT_THROW(decode_hex("zz"), std::invalid_argument);     // non-hex
}

TEST(Journal, WriteParseRoundTrip) {
  const std::string path =
      testing::TempDir() + "journal_roundtrip.log";
  std::remove(path.c_str());
  {
    JournalWriter journal(path);
    journal.record_send({1, 2, 3});
    journal.record_delivery({1, 2, 3});
    journal.record_delivery({0xFF});
    journal.record_send({});  // empty payload is legal
  }
  const std::vector<JournalRecord> records = parse_journal(slurp(path));
  ASSERT_EQ(records.size(), 4u);
  EXPECT_TRUE(records[0].is_send);
  EXPECT_EQ(records[0].payload, (Bytes{1, 2, 3}));
  EXPECT_FALSE(records[1].is_send);
  EXPECT_EQ(records[1].payload, (Bytes{1, 2, 3}));
  EXPECT_EQ(records[2].payload, Bytes{0xFF});
  EXPECT_TRUE(records[3].is_send);
  EXPECT_TRUE(records[3].payload.empty());
  std::remove(path.c_str());
}

TEST(Journal, AppendsAcrossWriters) {
  // A respawned incarnation opens its own file, but O_APPEND also makes
  // reopening the same path safe (nothing is truncated).
  const std::string path = testing::TempDir() + "journal_append.log";
  std::remove(path.c_str());
  {
    JournalWriter journal(path);
    journal.record_send({1});
  }
  {
    JournalWriter journal(path);
    journal.record_send({2});
  }
  const std::vector<JournalRecord> records = parse_journal(slurp(path));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].payload, Bytes{2});
  std::remove(path.c_str());
}

TEST(Journal, ParserSkipsTornAndForeignLines) {
  // A SIGKILL can tear the final line mid-write; earlier lines stay whole.
  const std::vector<JournalRecord> records = parse_journal(
      "S 010203\n"
      "garbage line\n"
      "X 0405\n"      // unknown tag
      "D 0q\n"        // non-hex after a kill landed mid-buffer
      "D 0405\n"
      "S 0ab");       // torn tail: odd-length hex, no newline
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].is_send);
  EXPECT_EQ(records[1].payload, (Bytes{0x04, 0x05}));
}

TEST(Journal, FilenameEncodesNodeAndIncarnation) {
  EXPECT_EQ(journal_filename(7, 0), "audit-n7-i0.log");
  EXPECT_EQ(journal_filename(49, 3), "audit-n49-i3.log");
}

}  // namespace
}  // namespace dpu::cluster
