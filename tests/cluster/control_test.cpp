// Control channel: loopback JSON datagram round trips, timeout behavior,
// and resilience against malformed datagrams.
#include "cluster/control.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>

namespace dpu::cluster {
namespace {

TEST(ControlSocket, RoundTripsJsonOnLoopback) {
  ControlSocket a;
  ControlSocket b;
  ASSERT_NE(a.local_port(), 0);
  ASSERT_NE(b.local_port(), 0);

  Json msg = Json::object();
  msg.set("type", "hello");
  msg.set("node", 7);
  a.send(make_address("127.0.0.1", b.local_port()), msg);

  Json got;
  sockaddr_in from{};
  ASSERT_TRUE(b.receive(got, from, kSecond));
  EXPECT_EQ(got.at("type").as_string(), "hello");
  EXPECT_EQ(got.at("node").as_int(), 7);
  // The receiver learns the sender's address — replying there must work.
  Json reply = Json::object();
  reply.set("type", "hello_ack");
  b.send(from, reply);
  ASSERT_TRUE(a.receive(got, from, kSecond));
  EXPECT_EQ(got.at("type").as_string(), "hello_ack");
}

TEST(ControlSocket, ReceiveTimesOutWhenSilent) {
  ControlSocket sock;
  Json msg;
  sockaddr_in from{};
  EXPECT_FALSE(sock.receive(msg, from, 50 * kMillisecond));
}

TEST(ControlSocket, SkipsMalformedDatagrams) {
  ControlSocket rx;
  ControlSocket tx;
  const sockaddr_in to = make_address("127.0.0.1", rx.local_port());

  // Raw garbage straight through a plain socket: not JSON.
  const int raw = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(raw, 0);
  const char garbage[] = "{not json";
  ::sendto(raw, garbage, sizeof(garbage), 0,
           reinterpret_cast<const sockaddr*>(&to), sizeof(to));
  Json good = Json::object();
  good.set("type", "fault");
  tx.send(to, good);

  Json got;
  sockaddr_in from{};
  ASSERT_TRUE(rx.receive(got, from, kSecond));
  EXPECT_EQ(got.at("type").as_string(), "fault");
  ::close(raw);
}

TEST(ControlSocket, MakeAddressRejectsBadHosts) {
  EXPECT_THROW(make_address("not-a-dotted-quad", 1234),
               std::invalid_argument);
}

}  // namespace
}  // namespace dpu::cluster
