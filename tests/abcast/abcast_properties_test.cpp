// Property tests common to all three ABcast providers: the four properties
// of paper §5.1 under concurrent senders, bursts and message loss.
#include <gtest/gtest.h>

#include "common/abcast_rig.hpp"

namespace dpu {
namespace {

using testing::AbcastKind;
using testing::AbcastRig;
using testing::abcast_kind_name;

struct PropertyCase {
  AbcastKind kind;
  std::uint64_t seed;
  double drop;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  return std::string(abcast_kind_name(info.param.kind)) + "_seed" +
         std::to_string(info.param.seed) + "_drop" +
         std::to_string(static_cast<int>(info.param.drop * 100));
}

class AbcastPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(AbcastPropertyTest, FourPropertiesUnderConcurrentLoad) {
  const PropertyCase& c = GetParam();
  SimConfig config{.num_stacks = 3, .seed = c.seed};
  config.net.drop_probability = c.drop;
  AbcastRig rig(config, c.kind);

  // Every stack sends 30 messages spread over 3 simulated seconds.
  const int kPerNode = 30;
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < kPerNode; ++k) {
      rig.send_at(k * 100 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.world.run_for(30 * kSecond);

  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.audit.deliveries_at(i), 3u * kPerNode) << "stack " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AbcastPropertyTest,
    ::testing::Values(
        PropertyCase{AbcastKind::kCt, 1, 0.0},
        PropertyCase{AbcastKind::kCt, 2, 0.0},
        PropertyCase{AbcastKind::kCt, 3, 0.05},
        PropertyCase{AbcastKind::kCt, 4, 0.15},
        PropertyCase{AbcastKind::kSeq, 1, 0.0},
        PropertyCase{AbcastKind::kSeq, 2, 0.0},
        PropertyCase{AbcastKind::kSeq, 3, 0.05},
        PropertyCase{AbcastKind::kSeq, 4, 0.15},
        PropertyCase{AbcastKind::kToken, 1, 0.0},
        PropertyCase{AbcastKind::kToken, 2, 0.0},
        PropertyCase{AbcastKind::kToken, 3, 0.05},
        PropertyCase{AbcastKind::kToken, 4, 0.15}),
    case_name);

class AbcastBurstTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(AbcastBurstTest, SimultaneousBurstKeepsTotalOrder) {
  const PropertyCase& c = GetParam();
  SimConfig config{.num_stacks = 5, .seed = c.seed};
  config.net.drop_probability = c.drop;
  AbcastRig rig(config, c.kind);

  // All five stacks fire 20 messages at the same instant: maximal
  // contention for the ordering layer.
  for (NodeId i = 0; i < 5; ++i) {
    for (int k = 0; k < 20; ++k) {
      rig.send_at(kMillisecond, i,
                  "burst-n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.world.run_for(30 * kSecond);

  auto report = rig.audit.check(5);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(0), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AbcastBurstTest,
    ::testing::Values(PropertyCase{AbcastKind::kCt, 21, 0.0},
                      PropertyCase{AbcastKind::kCt, 22, 0.1},
                      PropertyCase{AbcastKind::kSeq, 21, 0.0},
                      PropertyCase{AbcastKind::kSeq, 22, 0.1},
                      PropertyCase{AbcastKind::kToken, 21, 0.0},
                      PropertyCase{AbcastKind::kToken, 22, 0.1}),
    case_name);

TEST(CtAbcast, UniformPropertiesSurviveMinorityCrash) {
  // CT-ABcast is the fault-tolerant provider: crash one of five stacks
  // mid-burst and audit the survivors (paper §5.1 uniform properties).
  SimConfig config{.num_stacks = 5, .seed = 31};
  AbcastRig rig(config, AbcastKind::kCt);
  for (NodeId i = 0; i < 5; ++i) {
    for (int k = 0; k < 40; ++k) {
      rig.send_at(k * 20 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.world.at(350 * kMillisecond, [&]() { rig.world.crash(4); });
  rig.world.run_for(30 * kSecond);

  auto report = rig.audit.check(5, {4});
  EXPECT_TRUE(report.ok) << report.summary();
  // The survivors delivered identical sequences, including every message
  // stack 4 managed to deliver before dying.
  EXPECT_EQ(rig.audit.deliveries_at(0), rig.audit.deliveries_at(1));
  EXPECT_EQ(rig.audit.deliveries_at(0), rig.audit.deliveries_at(2));
}

TEST(CtAbcast, SenderCrashRightAfterAbcastIsAllOrNothing) {
  // Uniform agreement edge: the sender crashes immediately after abcast.
  // The message must be delivered by all correct stacks or by none.
  SimConfig config{.num_stacks = 3, .seed = 32};
  AbcastRig rig(config, AbcastKind::kCt);
  rig.send_at(kMillisecond, 2, "doomed");
  rig.world.at(kMillisecond + 200 * kMicrosecond, [&]() { rig.world.crash(2); });
  // Background traffic so the protocol keeps running.
  for (int k = 0; k < 10; ++k) {
    rig.send_at(10 * kMillisecond + k * 10 * kMillisecond, 0,
                "bg-" + std::to_string(k));
  }
  rig.world.run_for(20 * kSecond);

  auto report = rig.audit.check(3, {2});
  EXPECT_TRUE(report.ok) << report.summary();
  const bool at0 = rig.audit.deliveries_at(0) == 11;  // bg + doomed
  const bool at1 = rig.audit.deliveries_at(1) == 11;
  const bool none = rig.audit.deliveries_at(0) == 10 &&
                    rig.audit.deliveries_at(1) == 10;
  EXPECT_TRUE((at0 && at1) || none)
      << "deliveries: " << rig.audit.deliveries_at(0) << ", "
      << rig.audit.deliveries_at(1);
}

TEST(SeqAbcast, SequencerCountsMatchDeliveries) {
  SimConfig config{.num_stacks = 3, .seed = 33};
  AbcastRig rig(config, AbcastKind::kSeq);
  for (NodeId i = 0; i < 3; ++i) {
    rig.send_at(kMillisecond, i, "m" + std::to_string(i));
  }
  rig.world.run_for(kSecond);
  EXPECT_TRUE(rig.audit.check(3).ok);
  // Only the sequencer stamped messages.
  auto* seq0 = dynamic_cast<SeqAbcastModule*>(
      rig.world.stack(0).find_module(kAbcastService));
  ASSERT_NE(seq0, nullptr);
  EXPECT_EQ(seq0->sequenced(), 3u);
}

TEST(TokenAbcast, TokenRotatesAndIdleHoldBoundsTraffic) {
  SimConfig config{.num_stacks = 3, .seed = 34};
  AbcastRig rig(config, AbcastKind::kToken);
  rig.world.run_for(kSecond);  // idle run
  auto* tok0 = dynamic_cast<TokenAbcastModule*>(
      rig.world.stack(0).find_module(kAbcastService));
  ASSERT_NE(tok0, nullptr);
  // With a 1ms idle hold, a 3-stack ring does at most ~1000/(3*1) ≈ 330
  // visits per stack per second (plus hop latency slack).
  EXPECT_GT(tok0->token_visits(), 50u);
  EXPECT_LT(tok0->token_visits(), 500u);
}

TEST(CtAbcast, BatchingKeepsUpUnderPressure) {
  // More senders than batch slots: deliveries must still complete and stay
  // ordered (messages spill into later instances).
  SimConfig config{.num_stacks = 3, .seed = 35};
  AbcastRig rig(config, AbcastKind::kCt);
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 200; ++k) {
      rig.send_at(kMillisecond, i,
                  "p" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.world.run_for(60 * kSecond);
  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(1), 600u);
  auto* ct0 = dynamic_cast<CtAbcastModule*>(
      rig.world.stack(0).find_module(kAbcastService));
  ASSERT_NE(ct0, nullptr);
  EXPECT_GE(ct0->instances_settled(), 600u / 128u);  // needed > 1 instance
  EXPECT_EQ(ct0->pending_count(), 0u);
}

}  // namespace
}  // namespace dpu
