// Unit tests for the AbcastAudit checker itself: it must flag violations of
// each of the four properties (a checker that cannot fail is no checker).
#include "abcast/audit.hpp"

#include <gtest/gtest.h>

namespace dpu {
namespace {

TEST(AbcastAudit, CleanRunPasses) {
  AbcastAudit audit;
  for (NodeId n = 0; n < 3; ++n) {
    audit.record_sent(n, to_bytes("m" + std::to_string(n)));
  }
  for (NodeId n = 0; n < 3; ++n) {
    audit.record_delivery(n, to_bytes("m0"));
    audit.record_delivery(n, to_bytes("m1"));
    audit.record_delivery(n, to_bytes("m2"));
  }
  EXPECT_TRUE(audit.check(3).ok);
}

TEST(AbcastAudit, DetectsDuplicateDelivery) {
  AbcastAudit audit;
  audit.record_sent(0, to_bytes("m"));
  audit.record_delivery(0, to_bytes("m"));
  audit.record_delivery(0, to_bytes("m"));
  audit.record_delivery(1, to_bytes("m"));
  auto report = audit.check(2);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("integrity"), std::string::npos);
}

TEST(AbcastAudit, DetectsDeliveryOfUnsentMessage) {
  AbcastAudit audit;
  audit.record_delivery(0, to_bytes("ghost"));
  audit.record_delivery(1, to_bytes("ghost"));
  auto report = audit.check(2);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("never abcast"), std::string::npos);
}

TEST(AbcastAudit, DetectsValidityViolation) {
  AbcastAudit audit;
  audit.record_sent(0, to_bytes("m"));
  // Nobody delivers it; sender 0 is correct.
  auto report = audit.check(2);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("validity"), std::string::npos);
}

TEST(AbcastAudit, CrashedSenderExcusedFromValidity) {
  AbcastAudit audit;
  audit.record_sent(0, to_bytes("m"));
  EXPECT_TRUE(audit.check(2, {0}).ok);
}

TEST(AbcastAudit, DetectsAgreementViolation) {
  AbcastAudit audit;
  audit.record_sent(0, to_bytes("m"));
  audit.record_delivery(0, to_bytes("m"));
  // Stack 1 (correct) never delivers it.
  auto report = audit.check(2);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("agreement"), std::string::npos);
}

TEST(AbcastAudit, AgreementAppliesToCrashedStackDeliveries) {
  // Uniform agreement: even a delivery made by a stack that later crashed
  // obligates all correct stacks.
  AbcastAudit audit;
  audit.record_sent(0, to_bytes("m"));
  audit.record_delivery(2, to_bytes("m"));  // stack 2 delivered, then crashed
  auto report = audit.check(3, {2});
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("agreement"), std::string::npos);
}

TEST(AbcastAudit, DetectsTotalOrderViolation) {
  AbcastAudit audit;
  audit.record_sent(0, to_bytes("a"));
  audit.record_sent(0, to_bytes("b"));
  audit.record_delivery(0, to_bytes("a"));
  audit.record_delivery(0, to_bytes("b"));
  audit.record_delivery(1, to_bytes("b"));
  audit.record_delivery(1, to_bytes("a"));
  auto report = audit.check(2);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("total order"), std::string::npos);
}

TEST(AbcastAudit, CrashedStackPrefixOrderChecked) {
  AbcastAudit audit;
  audit.record_sent(0, to_bytes("a"));
  audit.record_sent(0, to_bytes("b"));
  audit.record_sent(0, to_bytes("c"));
  for (NodeId n = 0; n < 2; ++n) {
    audit.record_delivery(n, to_bytes("a"));
    audit.record_delivery(n, to_bytes("b"));
    audit.record_delivery(n, to_bytes("c"));
  }
  // Crashed stack delivered a subset in consistent order: fine.
  audit.record_delivery(2, to_bytes("a"));
  audit.record_delivery(2, to_bytes("c"));
  EXPECT_TRUE(audit.check(3, {2}).ok);

  // A second crashed stack delivered out of order: flagged.
  audit.record_delivery(3, to_bytes("b"));
  audit.record_delivery(3, to_bytes("a"));
  auto report = audit.check(4, {2, 3});
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("total order"), std::string::npos);
}

TEST(AbcastAudit, CountersWork) {
  AbcastAudit audit;
  audit.record_sent(0, to_bytes("x"));
  audit.record_sent(1, to_bytes("y"));
  audit.record_delivery(0, to_bytes("x"));
  EXPECT_EQ(audit.total_sent(), 2u);
  EXPECT_EQ(audit.deliveries_at(0), 1u);
  EXPECT_EQ(audit.deliveries_at(1), 0u);
}

}  // namespace
}  // namespace dpu
