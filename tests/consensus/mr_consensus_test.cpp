// Tests for the Mostéfaoui-Raynal-style consensus module — the alternate
// provider behind the consensus-replacement extension.
#include "consensus/mr_consensus.hpp"

#include <gtest/gtest.h>

#include "common/consensus_rig.hpp"

namespace dpu {
namespace {

using testing::ConsensusRig;
using testing::kStream;

ConsensusRig::ProviderFactory mr_factory(
    MrConsensusConfig config = MrConsensusConfig{}) {
  return [config](Stack& stack, const std::string& service) -> ConsensusBase* {
    return MrConsensusModule::create(stack, service, config);
  };
}

TEST(MrConsensus, FailureFreeDecides) {
  ConsensusRig rig(SimConfig{.num_stacks = 3, .seed = 1}, mr_factory());
  rig.propose(0, 1, "a");
  rig.propose(1, 1, "b");
  rig.propose(2, 1, "c");
  rig.world.run_for(500 * kMillisecond);
  rig.check_decided(1, {"a", "b", "c"});
  // One round suffices without failures.
  for (auto* p : rig.providers) {
    EXPECT_LE(static_cast<MrConsensusModule*>(p)->rounds_completed(), 2u);
  }
}

TEST(MrConsensus, SevenStacksDecide) {
  ConsensusRig rig(SimConfig{.num_stacks = 7, .seed = 2}, mr_factory());
  for (NodeId i = 0; i < 7; ++i) {
    rig.propose(i, 1, "v" + std::to_string(i));
  }
  rig.world.run_for(kSecond);
  rig.check_decided(1, {"v0", "v1", "v2", "v3", "v4", "v5", "v6"});
}

TEST(MrConsensus, SequentialInstances) {
  ConsensusRig rig(SimConfig{.num_stacks = 3, .seed = 3}, mr_factory());
  for (InstanceId k = 1; k <= 15; ++k) {
    for (NodeId i = 0; i < 3; ++i) {
      rig.propose(i, k, "k" + std::to_string(k) + "-" + std::to_string(i));
    }
    rig.world.run_for(100 * kMillisecond);
  }
  rig.world.run_for(kSecond);
  for (InstanceId k = 1; k <= 15; ++k) {
    std::set<std::string> proposed;
    for (NodeId i = 0; i < 3; ++i) {
      proposed.insert("k" + std::to_string(k) + "-" + std::to_string(i));
    }
    rig.check_decided(k, proposed);
  }
}

TEST(MrConsensus, CoordinatorCrashBeforeEstStillDecides) {
  ConsensusRig rig(SimConfig{.num_stacks = 3, .seed = 4}, mr_factory());
  rig.world.at(10 * kMillisecond, [&]() { rig.world.crash(0); });
  rig.world.at(50 * kMillisecond, [&]() {
    for (NodeId i = 1; i < 3; ++i) {
      rig.providers[i]->propose(kStream, 1, to_bytes("v" + std::to_string(i)));
    }
  });
  rig.world.run_for(5 * kSecond);
  rig.check_decided(1, {"v1", "v2"});
}

TEST(MrConsensus, PassiveStackCatchesUpThroughStoredVotes) {
  // Stack 0 is partitioned away while 1 and 2 run the instance; when the
  // partition heals, rp2p re-delivers the round traffic and stack 0 must
  // converge on the same decision.
  ConsensusRig rig(SimConfig{.num_stacks = 3, .seed = 5}, mr_factory());
  rig.world.set_link_filter(
      [](NodeId src, NodeId dst) { return src != 0 && dst != 0; });
  rig.propose(1, 1, "b");
  rig.propose(2, 1, "c");
  rig.world.run_for(2 * kSecond);
  rig.world.set_link_filter(nullptr);
  rig.world.run_for(3 * kSecond);
  rig.check_decided(1, {"b", "c"});
}

TEST(MrConsensus, LateProposerGetsSettledDecision) {
  ConsensusRig rig(SimConfig{.num_stacks = 3, .seed = 6}, mr_factory());
  rig.propose(0, 1, "early");
  rig.propose(1, 1, "early2");
  rig.world.run_for(kSecond);
  rig.propose(2, 1, "late");
  rig.world.run_for(kSecond);
  const std::string v = rig.check_decided(1, {"early", "early2"});
  EXPECT_NE(v, "late");
}

class MrConsensusChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MrConsensusChaosTest, SafeUnderLossAndCrash) {
  SimConfig config{.num_stacks = 5, .seed = GetParam()};
  config.net.drop_probability = 0.10;
  ConsensusRig rig(config, mr_factory());
  const NodeId victim = static_cast<NodeId>(GetParam() % 5);
  rig.world.at(300 * kMillisecond, [&]() { rig.world.crash(victim); });

  for (InstanceId k = 1; k <= 10; ++k) {
    for (NodeId i = 0; i < 5; ++i) {
      if (!rig.world.crashed(i)) {
        rig.propose(i, k, "k" + std::to_string(k) + "n" + std::to_string(i));
      }
    }
    rig.world.run_for(150 * kMillisecond);
  }
  rig.world.run_for(20 * kSecond);

  for (InstanceId k = 1; k <= 10; ++k) {
    std::set<std::string> proposed;
    for (NodeId i = 0; i < 5; ++i) {
      proposed.insert("k" + std::to_string(k) + "n" + std::to_string(i));
    }
    rig.check_decided(k, proposed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrConsensusChaosTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace dpu
