// Tests for the Chandra-Toueg consensus module: agreement, validity,
// integrity and termination under crashes, false suspicions and message
// loss.
#include "consensus/ct_consensus.hpp"

#include <gtest/gtest.h>

#include "common/consensus_rig.hpp"

namespace dpu {
namespace {

using testing::ConsensusRig;
using testing::kStream;

ConsensusRig::ProviderFactory ct_factory(
    CtConsensusConfig config = CtConsensusConfig{}) {
  return [config](Stack& stack, const std::string& service) -> ConsensusBase* {
    return CtConsensusModule::create(stack, service, config);
  };
}

TEST(CtConsensus, FailureFreeDecidesQuickly) {
  ConsensusRig rig(SimConfig{.num_stacks = 3, .seed = 1}, ct_factory());
  rig.propose(0, 1, "a");
  rig.propose(1, 1, "b");
  rig.propose(2, 1, "c");
  rig.world.run_for(200 * kMillisecond);
  const std::string v = rig.check_decided(1, {"a", "b", "c"});
  EXPECT_FALSE(v.empty());
  // With the round-0 optimization and no failures the decision needs no
  // round changes.
  for (auto* p : rig.providers) {
    EXPECT_EQ(static_cast<CtConsensusModule*>(p)->rounds_aborted(), 0u);
  }
}

TEST(CtConsensus, SevenStacksDecide) {
  ConsensusRig rig(SimConfig{.num_stacks = 7, .seed = 2}, ct_factory());
  for (NodeId i = 0; i < 7; ++i) {
    rig.propose(i, 1, "v" + std::to_string(i));
  }
  rig.world.run_for(kSecond);
  rig.check_decided(1, {"v0", "v1", "v2", "v3", "v4", "v5", "v6"});
}

TEST(CtConsensus, SequentialInstancesAllDecide) {
  ConsensusRig rig(SimConfig{.num_stacks = 3, .seed = 3}, ct_factory());
  // Drive instances 1..20 sequentially from all nodes.
  for (InstanceId k = 1; k <= 20; ++k) {
    for (NodeId i = 0; i < 3; ++i) {
      rig.propose(i, k, "k" + std::to_string(k) + "-from" + std::to_string(i));
    }
    rig.world.run_for(100 * kMillisecond);
  }
  rig.world.run_for(kSecond);
  for (InstanceId k = 1; k <= 20; ++k) {
    std::set<std::string> proposed;
    for (NodeId i = 0; i < 3; ++i) {
      proposed.insert("k" + std::to_string(k) + "-from" + std::to_string(i));
    }
    rig.check_decided(k, proposed);
  }
}

TEST(CtConsensus, StreamsAreIsolated) {
  ConsensusRig rig(SimConfig{.num_stacks = 3, .seed = 4}, ct_factory());
  std::map<InstanceId, std::string> other_stream;
  rig.providers[0]->consensus_bind_stream(
      99, [&](InstanceId k, const Bytes& v) { other_stream[k] = to_string(v); });
  rig.world.at_node(0, 0, [&]() {
    for (NodeId i = 0; i < 3; ++i) {
      rig.providers[i]->propose(kStream, 1, to_bytes("main"));
      rig.providers[i]->propose(99, 1, to_bytes("side"));
    }
  });
  rig.world.run_for(kSecond);
  EXPECT_EQ(rig.check_decided(1, {"main"}), "main");
  ASSERT_EQ(other_stream.count(1), 1u);
  EXPECT_EQ(other_stream[1], "side");
}

TEST(CtConsensus, PassiveMinorityLearnsDecision) {
  // Only a majority proposes; the remaining stack must still decide (via
  // adopted proposals / rbcast decision).
  ConsensusRig rig(SimConfig{.num_stacks = 3, .seed = 5}, ct_factory());
  rig.propose(1, 1, "b");
  rig.propose(2, 1, "c");
  rig.world.run_for(3 * kSecond);  // round 0 (coord s0, passive) may time out
  rig.check_decided(1, {"b", "c"});
}

TEST(CtConsensus, RoundZeroCoordinatorCrashStillDecides) {
  ConsensusRig rig(SimConfig{.num_stacks = 3, .seed = 6}, ct_factory());
  rig.world.at(10 * kMillisecond, [&]() { rig.world.crash(0); });
  rig.world.at(50 * kMillisecond, [&]() {
    for (NodeId i = 1; i < 3; ++i) {
      rig.providers[i]->propose(kStream, 1, to_bytes("v" + std::to_string(i)));
    }
  });
  rig.world.run_for(5 * kSecond);
  rig.check_decided(1, {"v1", "v2"});
}

TEST(CtConsensus, CoordinatorCrashMidInstanceSafe) {
  // Crash the round-0 coordinator shortly after proposals start; survivors
  // must converge on one value without duplicates.
  ConsensusRig rig(SimConfig{.num_stacks = 5, .seed = 7}, ct_factory());
  for (NodeId i = 0; i < 5; ++i) {
    rig.propose(i, 1, "v" + std::to_string(i));
  }
  rig.world.at(kMillisecond / 4, [&]() { rig.world.crash(0); });
  rig.world.run_for(5 * kSecond);
  rig.check_decided(1, {"v0", "v1", "v2", "v3", "v4"});
}

TEST(CtConsensus, LateProposerStillGetsExactlyOneDecision) {
  ConsensusRig rig(SimConfig{.num_stacks = 3, .seed = 8}, ct_factory());
  rig.propose(0, 1, "early");
  rig.propose(1, 1, "early2");
  rig.world.run_for(kSecond);  // decision settled
  rig.propose(2, 1, "late");
  rig.world.run_for(kSecond);
  const std::string v = rig.check_decided(1, {"early", "early2"});
  EXPECT_NE(v, "late");  // validity: late value cannot win a settled instance
}

TEST(CtConsensus, DecisionBufferedUntilStreamBinds) {
  ConsensusRig rig(SimConfig{.num_stacks = 3, .seed = 9}, ct_factory());
  std::map<InstanceId, std::string> late;
  rig.world.at_node(0, 0, [&]() {
    for (NodeId i = 0; i < 3; ++i) {
      rig.providers[i]->propose(7, 1, to_bytes("x"));
    }
  });
  rig.world.run_for(kSecond);
  // Stream 7 had no handler; binding now must replay the decision.
  rig.providers[0]->consensus_bind_stream(
      7, [&](InstanceId k, const Bytes& v) { late[k] = to_string(v); });
  ASSERT_EQ(late.count(1), 1u);
  EXPECT_EQ(late[1], "x");
}

// Property sweep: agreement/validity/integrity under loss + crashes across
// seeds.  Each case runs 10 sequential instances on 5 stacks with 10% loss
// and one crash mid-run.
class CtConsensusChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CtConsensusChaosTest, SafeUnderLossAndCrash) {
  SimConfig config{.num_stacks = 5, .seed = GetParam()};
  config.net.drop_probability = 0.10;
  ConsensusRig rig(config, ct_factory());
  const NodeId victim = static_cast<NodeId>(GetParam() % 5);
  rig.world.at(300 * kMillisecond, [&]() { rig.world.crash(victim); });

  for (InstanceId k = 1; k <= 10; ++k) {
    for (NodeId i = 0; i < 5; ++i) {
      if (!rig.world.crashed(i)) {
        rig.propose(i, k, "k" + std::to_string(k) + "n" + std::to_string(i));
      }
    }
    rig.world.run_for(150 * kMillisecond);
  }
  rig.world.run_for(20 * kSecond);

  for (InstanceId k = 1; k <= 10; ++k) {
    std::set<std::string> proposed;
    for (NodeId i = 0; i < 5; ++i) {
      proposed.insert("k" + std::to_string(k) + "n" + std::to_string(i));
    }
    rig.check_decided(k, proposed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CtConsensusChaosTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace dpu
