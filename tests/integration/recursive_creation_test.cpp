// The ultimate exercise of Algorithm 1's create_module recursion (lines
// 22-28): starting from COMPLETELY EMPTY stacks, one create_module call for
// the top-level GM protocol must build the entire Figure-4 stack bottom-up
// — gm -> topics -> abcast -> consensus -> rbcast -> rp2p -> fd -> udp —
// and the resulting world must actually work.
#include <gtest/gtest.h>

#include "app/stack_builder.hpp"
#include "gm/gm.hpp"
#include "sim/sim_world.hpp"

namespace dpu {
namespace {

TEST(RecursiveCreation, WholeFigure4StackFromOneCall) {
  StandardStackOptions options;
  ProtocolLibrary library = make_standard_library(options);
  SimWorld world(SimConfig{.num_stacks = 3, .seed = 1}, &library);

  for (NodeId i = 0; i < 3; ++i) {
    Stack& stack = world.stack(i);
    EXPECT_EQ(stack.module_count(), 0u);
    stack.create_module(GmModule::kProtocolName, kGmService);
    // Every service of the composed middleware is now bound.
    for (const char* service :
         {kGmService, kTopicsService, kAbcastService, kConsensusService,
          kRbcastService, kRp2pService, kFdService, kUdpService}) {
      EXPECT_TRUE(stack.slot(service).bound())
          << "stack " << i << " service " << service;
    }
    EXPECT_EQ(stack.module_count(), 8u);
  }

  // The recursively created world is functional: GM ops reach agreement.
  world.at_node(10 * kMillisecond, 0, [&]() {
    world.stack(0).require<GmApi>(kGmService).call(
        [](GmApi& gm) { gm.gm_leave(2); });
  });
  world.run_for(10 * kSecond);
  for (NodeId i = 0; i < 3; ++i) {
    GmApi* gm = world.stack(i).slot(kGmService).try_get<GmApi>();
    ASSERT_NE(gm, nullptr);
    EXPECT_EQ(gm->gm_view().members, (std::vector<NodeId>{0, 1}))
        << "stack " << i;
  }
}

TEST(RecursiveCreation, SharedDependenciesCreatedOnce) {
  // Creating two protocols with overlapping requirements must not duplicate
  // the shared substrate.
  StandardStackOptions options;
  ProtocolLibrary library = make_standard_library(options);
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 2}, &library);
  Stack& stack = world.stack(0);

  stack.create_module("abcast.ct", kAbcastService);
  const std::size_t after_first = stack.module_count();
  // fd was created as a consensus dependency; creating a second consumer of
  // rp2p/udp must reuse everything.
  stack.create_module("abcast.seq", "abcast.alt");
  EXPECT_EQ(stack.module_count(), after_first + 1);
}

TEST(RecursiveCreation, DefaultProviderOverrideRespected) {
  StandardStackOptions options;
  options.consensus_protocol = "consensus.mr";
  ProtocolLibrary library = make_standard_library(options);
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 3}, &library);
  Stack& stack = world.stack(0);
  stack.create_module("abcast.ct", kAbcastService);
  // The consensus service was satisfied by the configured MR provider.
  EXPECT_NE(stack.find_module(kConsensusService), nullptr);
  EXPECT_NE(dynamic_cast<MrConsensusModule*>(
                stack.find_module(kConsensusService)),
            nullptr);
}

}  // namespace
}  // namespace dpu
