// Reproducibility guarantee: the entire composed middleware — substrate,
// consensus, ABcast, replacement layer, GM, KV — run under the simulator is
// bit-for-bit deterministic in the world seed.  Every benchmark number and
// every chaos-test failure in this repository is reproducible from a seed;
// this test pins that property for the full stack, not just the engine.
#include <gtest/gtest.h>

#include "abcast/audit.hpp"
#include "app/kv_store.hpp"
#include "app/stack_builder.hpp"
#include "core/trace.hpp"
#include "sim/sim_world.hpp"

namespace dpu {
namespace {

struct RunResult {
  std::vector<std::string> deliveries;  // stack 0's delivery sequence
  std::uint64_t kv_fingerprint = 0;
  std::uint64_t trace_digest = 0;
  std::uint64_t packets = 0;
};

RunResult run_world(std::uint64_t seed) {
  StandardStackOptions options;
  options.fd.heartbeat_interval = 20 * kMillisecond;
  ProtocolLibrary library = make_standard_library(options);
  TraceRecorder trace;
  SimConfig config{.num_stacks = 3, .seed = seed};
  config.net.drop_probability = 0.05;
  config.stack_cost.service_hop_cost = 8 * kMicrosecond;
  SimWorld world(config, &library, &trace);

  std::vector<StandardStack> stacks;
  std::vector<KvStoreModule*> kv;
  RunResult result;
  struct Recorder final : AbcastListener {
    std::vector<std::string>* out;
    void adeliver(NodeId sender, const Bytes& payload) override {
      out->push_back(std::to_string(sender) + ":" + to_string(payload));
    }
  };
  Recorder recorder;
  recorder.out = &result.deliveries;
  for (NodeId i = 0; i < 3; ++i) {
    stacks.push_back(build_standard_stack(world.stack(i), options));
    kv.push_back(KvStoreModule::create(world.stack(i)));
    world.stack(i).start_all();
  }
  world.stack(0).listen<AbcastListener>(kAbcastService, &recorder, nullptr);

  for (int k = 0; k < 60; ++k) {
    const auto node = static_cast<NodeId>(k % 3);
    world.at_node((10 + k * 25) * kMillisecond, node, [&world, node, k]() {
      world.stack(node).require<AbcastApi>(kAbcastService)
          .call([k](AbcastApi& api) {
            api.abcast(to_bytes("m" + std::to_string(k)));
          });
    });
    world.at_node((15 + k * 25) * kMillisecond, node, [&kv, node, k]() {
      kv[node]->kv_put("k" + std::to_string(k % 8), std::to_string(k));
    });
  }
  world.at_node(700 * kMillisecond, 1, [&]() {
    stacks[1].repl->change_abcast("abcast.seq");
  });
  world.at_node(1200 * kMillisecond, 2, [&]() {
    stacks[2].gm->gm_leave(0);
  });
  world.run_for(30 * kSecond);

  result.kv_fingerprint = kv[0]->fingerprint();
  result.packets = world.packets_sent();
  std::uint64_t digest = 1469598103934665603ULL;
  for (const TraceEvent& e : trace.events()) {
    digest ^= fnv1a64(e.str());
    digest *= 1099511628211ULL;
  }
  result.trace_digest = digest;
  return result;
}

TEST(Determinism, FullStackRunIsBitReproducible) {
  const RunResult a = run_world(20260611);
  const RunResult b = run_world(20260611);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.kv_fingerprint, b.kv_fingerprint);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_FALSE(a.deliveries.empty());
}

TEST(Determinism, DifferentSeedsDiverge) {
  const RunResult a = run_world(1);
  const RunResult b = run_world(2);
  // Same logical outcome is possible, but the packet schedule must differ.
  EXPECT_NE(a.trace_digest, b.trace_digest);
}

}  // namespace
}  // namespace dpu
