// End-to-end integration scenarios combining the whole middleware: the
// Figure-4 stack with GM and the KV store on top, live protocol switches,
// failure-driven adaptation policies, crashes and partitions — the paper's
// "adaptive group communication middleware" working as a system.
#include <gtest/gtest.h>

#include "abcast/audit.hpp"
#include "app/kv_store.hpp"
#include "app/policy.hpp"
#include "app/stack_builder.hpp"
#include "core/properties.hpp"
#include "sim/sim_world.hpp"

namespace dpu {
namespace {

StandardStackOptions tuned_options() {
  StandardStackOptions options;
  options.fd.heartbeat_interval = 20 * kMillisecond;
  options.fd.initial_timeout = 120 * kMillisecond;
  options.rp2p.retransmit_interval = 10 * kMillisecond;
  return options;
}

struct Rig {
  explicit Rig(SimConfig config, StandardStackOptions options = tuned_options())
      : opts(options), library(make_standard_library(options)),
        world(config, &library, &trace) {
    for (NodeId i = 0; i < world.size(); ++i) {
      stacks.push_back(build_standard_stack(world.stack(i), options));
      kv.push_back(KvStoreModule::create(world.stack(i)));
      // Audited application traffic rides its own topic so the audit does
      // not see GM/KV envelopes it never recorded as sent.  The TopicMux
      // preserves the global total order within the topic.
      stacks.back().topics->subscribe(
          "audit", [this, i](NodeId, const Bytes& payload) {
            audit.record_delivery(i, payload);
          });
      world.stack(i).start_all();
    }
  }

  void app_send(TimePoint t, NodeId node, const std::string& tag) {
    world.at_node(t, node, [this, node, tag]() {
      if (world.crashed(node)) return;
      const Bytes payload = to_bytes(tag);
      audit.record_sent(node, payload);
      world.stack(node).require<TopicsApi>(kTopicsService)
          .call([payload](TopicsApi& api) { api.publish("audit", payload); });
    });
  }

  StandardStackOptions opts;
  ProtocolLibrary library;
  TraceRecorder trace;
  SimWorld world;
  std::vector<StandardStack> stacks;
  std::vector<KvStoreModule*> kv;
  AbcastAudit audit;
};

TEST(FullStack, EverythingAtOnceStaysConsistent) {
  // KV writes + GM membership ops + raw abcast traffic, a protocol switch
  // in the middle, one crash after it; every surviving layer must agree.
  Rig rig(SimConfig{.num_stacks = 5, .seed = 1});
  for (NodeId i = 0; i < 5; ++i) {
    for (int k = 0; k < 25; ++k) {
      rig.app_send((20 + k * 40) * kMillisecond, i,
                   "raw-n" + std::to_string(i) + "-" + std::to_string(k));
      rig.world.at_node((30 + k * 40) * kMillisecond, i, [&rig, i, k]() {
        if (rig.world.crashed(i)) return;
        rig.kv[i]->kv_put("k" + std::to_string((i + k) % 16),
                          "v" + std::to_string(k));
      });
    }
  }
  rig.world.at_node(400 * kMillisecond, 0,
                    [&]() { rig.stacks[0].gm->gm_leave(4); });
  rig.world.at_node(500 * kMillisecond, 2, [&]() {
    rig.stacks[2].repl->change_abcast("abcast.seq");
  });
  rig.world.at(700 * kMillisecond, [&]() { rig.world.crash(4); });
  rig.world.at_node(900 * kMillisecond, 1,
                    [&]() { rig.stacks[1].gm->gm_exclude(4); });
  rig.world.run_for(60 * kSecond);

  auto report = rig.audit.check(5, {4});
  EXPECT_TRUE(report.ok) << report.summary();
  // KV replicas identical on survivors.
  for (NodeId i = 1; i < 4; ++i) {
    EXPECT_EQ(rig.kv[i]->fingerprint(), rig.kv[0]->fingerprint())
        << "replica " << i;
  }
  // GM view histories identical on survivors; final view excludes 4.
  const auto& h0 = rig.stacks[0].gm->history();
  EXPECT_EQ(h0.back().members, (std::vector<NodeId>{0, 1, 2, 3}));
  for (NodeId i = 1; i < 4; ++i) {
    const auto& hi = rig.stacks[i].gm->history();
    ASSERT_EQ(hi.size(), h0.size()) << "stack " << i;
    for (std::size_t k = 0; k < h0.size(); ++k) {
      EXPECT_EQ(hi[k].members, h0[k].members);
    }
  }
  // Everyone finished on the sequencer protocol.
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.stacks[i].repl->current_protocol(), "abcast.seq");
  }
  auto swf = check_weak_stack_well_formedness(rig.trace.events());
  EXPECT_TRUE(swf.ok) << swf.summary();
}

TEST(FullStack, PolicyFailsOverWhenSequencerDegrades) {
  // The adaptive-middleware loop: SEQ-ABcast is in use; the sequencer's
  // links degrade badly enough for the FD to suspect it; a PolicyEngine
  // rule switches the group to CT-ABcast through the UpdateApi
  // automatically.  Messages held up at the degraded sequencer are
  // re-issued by Algorithm 1, so nothing is lost.
  StandardStackOptions options = tuned_options();
  options.abcast_protocol = "abcast.seq";
  Rig rig(SimConfig{.num_stacks = 4, .seed = 2}, options);
  std::vector<PolicyEngineModule*> policies;
  for (NodeId i = 0; i < 4; ++i) {
    PolicyRule rule;
    rule.name = "seq-failover";
    rule.service = kAbcastService;
    rule.when_protocol = "abcast.seq";
    rule.to_protocol = "abcast.ct";
    rule.trigger = PolicyRule::Trigger::kFdSuspect;
    rule.suspect_node = 0;  // the sequencer
    policies.push_back(PolicyEngineModule::create(
        rig.world.stack(i), PolicyEngineConfig{{rule}, kAbcastService}));
    rig.world.stack(i).start_all();
  }

  for (NodeId i = 0; i < 4; ++i) {
    for (int k = 0; k < 30; ++k) {
      rig.app_send((20 + k * 50) * kMillisecond, i,
                   "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  // Degrade the sequencer: most of its traffic is lost for a while (it is
  // NOT dead — Algorithm 1 needs the old protocol live to order the change
  // message; retransmissions get it through).
  rig.world.at(400 * kMillisecond, [&]() {
    rig.world.set_link_filter([&rig](NodeId src, NodeId dst) {
      if (src != 0 && dst != 0) return true;
      // 85% loss on all sequencer links.
      return rig.world.stack(0).host().rng().chance(0.15);
    });
  });
  rig.world.at(3 * kSecond, [&]() { rig.world.set_link_filter(nullptr); });
  rig.world.run_for(120 * kSecond);

  // The policy fired (exactly one effective switch to CT).
  std::uint64_t triggers = 0;
  for (auto* p : policies) triggers += p->triggers();
  EXPECT_GE(triggers, 1u);
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.stacks[i].repl->current_protocol(), "abcast.ct")
        << "stack " << i;
  }
  // No message lost across the degradation + failover.
  auto report = rig.audit.check(4);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(0), 120u);
}

TEST(FullStack, RepeatedSwitchStressUnderContinuousLoad) {
  Rig rig(SimConfig{.num_stacks = 3, .seed = 3});
  const char* cycle[] = {"abcast.seq", "abcast.token", "abcast.ct"};
  for (int s = 0; s < 9; ++s) {
    rig.world.at_node((500 + s * 700) * kMillisecond,
                      static_cast<NodeId>(s % 3), [&rig, s, &cycle]() {
                        rig.stacks[static_cast<std::size_t>(s % 3)]
                            .repl->change_abcast(cycle[s % 3]);
                      });
  }
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 140; ++k) {
      rig.app_send((10 + k * 50) * kMillisecond, i,
                   "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.world.run_for(120 * kSecond);

  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(0), 420u);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.stacks[i].repl->seq_number(), 9u) << "stack " << i;
  }
  auto op = check_protocol_operationability(rig.trace.events(), 3);
  EXPECT_TRUE(op.ok) << op.summary();
}

TEST(FullStack, RetirementBoundsModuleCountUnderRepeatedSwitches) {
  StandardStackOptions options = tuned_options();
  options.retire_after = kSecond;
  Rig rig(SimConfig{.num_stacks = 3, .seed = 4}, options);
  for (int s = 0; s < 6; ++s) {
    rig.world.at_node((500 + s * 2000) * kMillisecond, 0, [&rig]() {
      rig.stacks[0].repl->change_abcast("abcast.ct");
    });
  }
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 100; ++k) {
      rig.app_send((10 + k * 120) * kMillisecond, i,
                   "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.world.run_for(60 * kSecond);

  EXPECT_TRUE(rig.audit.check(3).ok);
  EXPECT_EQ(rig.stacks[0].repl->seq_number(), 6u);
  // With retirement on, old protocol instances are destroyed: the stack
  // holds the fixed composition plus at most the latest protocol version
  // (9 standard modules + kv + 1 live abcast instance + slack).
  EXPECT_LE(rig.world.stack(0).module_count(), 13u)
      << "old modules must be retired";
}

TEST(FullStack, MixedSizesSweep) {
  // The same composed system works across group sizes (the paper measures
  // n=3 and n=7).
  for (std::size_t n : {2ul, 3ul, 4ul, 7ul}) {
    Rig rig(SimConfig{.num_stacks = n, .seed = 50 + n});
    for (NodeId i = 0; i < n; ++i) {
      for (int k = 0; k < 10; ++k) {
        rig.app_send((10 + k * 50) * kMillisecond, i,
                     "n" + std::to_string(i) + "-" + std::to_string(k));
      }
    }
    rig.world.at_node(250 * kMillisecond, 0, [&rig]() {
      rig.stacks[0].repl->change_abcast("abcast.seq");
    });
    rig.world.run_for(30 * kSecond);
    auto report = rig.audit.check(n);
    EXPECT_TRUE(report.ok) << "n=" << n << ": " << report.summary();
    EXPECT_EQ(rig.audit.deliveries_at(0), n * 10u) << "n=" << n;
  }
}

}  // namespace
}  // namespace dpu
