// Unit tests for the statistics helpers that back all benchmark outputs.
#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace dpu {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(Samples, AddAfterPercentileQuery) {
  Samples s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(20.0);
  s.add(30.0);
  EXPECT_DOUBLE_EQ(s.median(), 20.0);  // resorts after mutation
}

TEST(TimeSeries, Bucketing) {
  TimeSeries ts(100);
  ts.add(0, 1.0);
  ts.add(99, 3.0);
  ts.add(100, 10.0);
  ts.add(250, 7.0);
  ASSERT_EQ(ts.bucket_count(), 3u);
  EXPECT_EQ(ts.bucket(0).count(), 2u);
  EXPECT_DOUBLE_EQ(ts.bucket(0).mean(), 2.0);
  EXPECT_EQ(ts.bucket(1).count(), 1u);
  EXPECT_EQ(ts.bucket(2).count(), 1u);
  EXPECT_EQ(ts.bucket_start(2), 200);
}

TEST(TimeSeries, SparseBucketsEmpty) {
  TimeSeries ts(10);
  ts.add(95, 5.0);
  ASSERT_EQ(ts.bucket_count(), 10u);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(ts.bucket(i).count(), 0u);
  EXPECT_EQ(ts.bucket(9).count(), 1u);
}

TEST(FmtFixed, Formats) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(1000.0, 0), "1000");
  EXPECT_EQ(fmt_fixed(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace dpu
