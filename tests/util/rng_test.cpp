// Determinism and distribution sanity for the simulation RNG.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dpu {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SubstreamsIndependentAndDeterministic) {
  Rng a = Rng::substream(7, 0);
  Rng b = Rng::substream(7, 1);
  Rng a2 = Rng::substream(7, 0);
  EXPECT_NE(a.next_u64(), b.next_u64());
  Rng a3 = Rng::substream(7, 0);
  EXPECT_EQ(a2.next_u64(), a3.next_u64());
}

TEST(Rng, UniformBoundRespected) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
  // bound 1 always yields 0
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_u64(1), 0u);
}

TEST(Rng, UniformIntRange) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_i64(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 10k draws
}

TEST(Rng, Uniform01InRangeAndCoversSpread) {
  Rng rng(5);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(7);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.25, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(5.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(10);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // probability of identity is astronomically small
}

}  // namespace
}  // namespace dpu
