// Unit tests for the byte codec: round trips, bounds checking, and malformed
// input rejection.  Every protocol header in the repo rides on these
// primitives, so failures here would corrupt all wire formats.
#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace dpu {
namespace {

TEST(Bytes, FixedWidthRoundTrip) {
  BufWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_i64(-42);
  w.put_bool(true);
  w.put_bool(false);

  Bytes buf = w.take();
  BufReader r(buf);
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0xBEEF);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Bytes, BigEndianLayout) {
  BufWriter w;
  w.put_u32(0x01020304);
  Bytes buf = w.take();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
  EXPECT_EQ(buf[2], 0x03);
  EXPECT_EQ(buf[3], 0x04);
}

TEST(Bytes, VarintBoundaries) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ULL << 32) - 1,
                                 1ULL << 32,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : cases) {
    BufWriter w;
    w.put_varint(v);
    Bytes buf = w.take();
    BufReader r(buf);
    EXPECT_EQ(r.get_varint(), v) << "value " << v;
    EXPECT_TRUE(r.done());
  }
}

TEST(Bytes, VarintSizes) {
  auto size_of = [](std::uint64_t v) {
    BufWriter w;
    w.put_varint(v);
    return w.size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(std::numeric_limits<std::uint64_t>::max()), 10u);
}

TEST(Bytes, BlobAndStringRoundTrip) {
  BufWriter w;
  w.put_blob(to_bytes("payload"));
  w.put_string("hello world");
  w.put_blob(Bytes{});  // empty blob is legal
  Bytes buf = w.take();
  BufReader r(buf);
  EXPECT_EQ(to_string(r.get_blob()), "payload");
  EXPECT_EQ(r.get_string(), "hello world");
  EXPECT_TRUE(r.get_blob().empty());
  EXPECT_TRUE(r.done());
}

TEST(Bytes, TruncatedReadsThrow) {
  BufWriter w;
  w.put_u32(7);
  Bytes buf = w.take();
  {
    BufReader r(buf);
    EXPECT_THROW((void)r.get_u64(), CodecError);
  }
  {
    BufReader r(buf);
    (void)r.get_u16();
    EXPECT_THROW((void)r.get_u32(), CodecError);
  }
}

TEST(Bytes, BlobLengthBeyondPacketThrows) {
  BufWriter w;
  w.put_varint(1000);  // claims 1000 bytes
  w.put_u8(1);         // ...but only 1 follows
  Bytes buf = w.take();
  BufReader r(buf);
  EXPECT_THROW((void)r.get_blob(), CodecError);
}

TEST(Bytes, StringLengthBeyondPacketThrows) {
  BufWriter w;
  w.put_varint(50);
  Bytes buf = w.take();
  BufReader r(buf);
  EXPECT_THROW((void)r.get_string(), CodecError);
}

TEST(Bytes, MalformedVarintThrows) {
  // Eleven continuation bytes: longer than any valid 64-bit varint.
  Bytes buf(11, 0x80);
  BufReader r(buf);
  EXPECT_THROW((void)r.get_varint(), CodecError);
}

TEST(Bytes, VarintOverflowThrows) {
  // 10-byte varint whose top group carries bits beyond 2^64.
  Bytes buf = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  BufReader r(buf);
  EXPECT_THROW((void)r.get_varint(), CodecError);
}

TEST(Bytes, TrailingBytesDetected) {
  BufWriter w;
  w.put_u8(1);
  w.put_u8(2);
  Bytes buf = w.take();
  BufReader r(buf);
  (void)r.get_u8();
  EXPECT_THROW(r.expect_done(), CodecError);
}

TEST(Bytes, RawSpanBorrow) {
  BufWriter w;
  w.put_raw(to_bytes("abcdef"));
  Bytes buf = w.take();
  BufReader r(buf);
  auto first = r.get_raw(3);
  auto second = r.get_raw(3);
  EXPECT_EQ(std::string(first.begin(), first.end()), "abc");
  EXPECT_EQ(std::string(second.begin(), second.end()), "def");
  EXPECT_THROW((void)r.get_raw(1), CodecError);
}

TEST(Bytes, HexDump) {
  Bytes buf = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(hex_dump(buf), "de:ad:be:ef");
  EXPECT_EQ(hex_dump(buf, 2), "de:ad...");
  EXPECT_EQ(hex_dump({}), "");
}

TEST(Bytes, Fnv1aStableAndDistinct) {
  // Values must be stable across runs (they become wire channel ids).
  EXPECT_EQ(fnv1a64("rp2p"), fnv1a64("rp2p"));
  EXPECT_NE(fnv1a64("rp2p"), fnv1a64("rbcast"));
  EXPECT_NE(fnv1a64("abcast.ct@1"), fnv1a64("abcast.ct@2"));
}

TEST(Bytes, MsgIdRoundTripAndOrdering) {
  MsgId a{2, 10};
  MsgId b{2, 11};
  MsgId c{3, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);

  BufWriter w;
  a.encode(w);
  c.encode(w);
  Bytes buf = w.take();
  BufReader r(buf);
  EXPECT_EQ(MsgId::decode(r), a);
  EXPECT_EQ(MsgId::decode(r), c);
  EXPECT_TRUE(r.done());
}

// Property sweep: random writer/reader round trips with mixed field types.
class CodecFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzzTest, MixedFieldRoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    // Build a random schema: sequence of (tag, value) fields.
    std::vector<std::pair<int, std::uint64_t>> fields;
    BufWriter w;
    const int n_fields = static_cast<int>(rng.uniform_u64(20)) + 1;
    for (int i = 0; i < n_fields; ++i) {
      const int tag = static_cast<int>(rng.uniform_u64(4));
      const std::uint64_t value = rng.next_u64();
      fields.emplace_back(tag, value);
      switch (tag) {
        case 0: w.put_u8(static_cast<std::uint8_t>(value)); break;
        case 1: w.put_u32(static_cast<std::uint32_t>(value)); break;
        case 2: w.put_u64(value); break;
        case 3: w.put_varint(value); break;
      }
    }
    Bytes buf = w.take();
    BufReader r(buf);
    for (const auto& [tag, value] : fields) {
      switch (tag) {
        case 0: EXPECT_EQ(r.get_u8(), static_cast<std::uint8_t>(value)); break;
        case 1: EXPECT_EQ(r.get_u32(), static_cast<std::uint32_t>(value)); break;
        case 2: EXPECT_EQ(r.get_u64(), value); break;
        case 3: EXPECT_EQ(r.get_varint(), value); break;
      }
    }
    EXPECT_TRUE(r.done());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999));

// Truncation property: every proper prefix of a valid message must either
// decode fewer fields or throw — never read out of bounds (ASAN-checked).
TEST(Bytes, EveryPrefixSafe) {
  BufWriter w;
  w.put_u32(123);
  w.put_string("abcdefgh");
  w.put_varint(1ULL << 40);
  w.put_blob(to_bytes("xyz"));
  Bytes buf = w.take();
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    Bytes prefix(buf.begin(), buf.begin() + static_cast<long>(cut));
    BufReader r(prefix);
    try {
      (void)r.get_u32();
      (void)r.get_string();
      (void)r.get_varint();
      (void)r.get_blob();
      FAIL() << "prefix of length " << cut << " decoded fully";
    } catch (const CodecError&) {
      // expected
    }
  }
}

}  // namespace
}  // namespace dpu
