// Payload — the ref-counted immutable zero-copy buffer of the packet path:
// aliasing/slicing semantics, the COW escape hatches, BufWriter handoff,
// and cross-thread sharing as the rt engine performs it.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/bytes.hpp"

namespace dpu {
namespace {

Payload make_payload(std::string_view s) { return Payload(s); }

TEST(Payload, EmptyByDefault) {
  const Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_EQ(p.data(), nullptr);
  EXPECT_EQ(p.ref_count(), 0);
}

TEST(Payload, CopiesShareOneBuffer) {
  const Payload a = make_payload("hello world");
  const Payload b = a;           // NOLINT: the copy is the point
  const Payload c(b);
  EXPECT_TRUE(a.shares_buffer_with(b));
  EXPECT_TRUE(b.shares_buffer_with(c));
  EXPECT_EQ(a.ref_count(), 3);
  EXPECT_EQ(a.data(), b.data());  // literally the same bytes in memory
  EXPECT_EQ(to_string(c), "hello world");
}

TEST(Payload, MoveTransfersWithoutRefcountChange) {
  Payload a = make_payload("abc");
  const Payload b = std::move(a);
  EXPECT_EQ(b.ref_count(), 1);
  EXPECT_TRUE(a.empty());  // NOLINT: moved-from state is documented empty
  EXPECT_EQ(to_string(b), "abc");
}

TEST(Payload, SliceAliasesTheSameBuffer) {
  const Payload whole = make_payload("0123456789");
  const Payload mid = whole.slice(2, 5);
  EXPECT_EQ(to_string(mid), "23456");
  EXPECT_TRUE(mid.shares_buffer_with(whole));
  EXPECT_EQ(mid.data(), whole.data() + 2);  // no copy: pointer into parent
  // Slices of slices compose offsets.
  const Payload inner = mid.slice(1, 2);
  EXPECT_EQ(to_string(inner), "34");
  EXPECT_TRUE(inner.shares_buffer_with(whole));
}

TEST(Payload, SliceClampsAndHandlesOutOfRange) {
  const Payload p = make_payload("abcd");
  EXPECT_EQ(to_string(p.slice(0)), "abcd");
  EXPECT_EQ(to_string(p.slice(2)), "cd");
  EXPECT_EQ(to_string(p.slice(2, 100)), "cd");
  EXPECT_TRUE(p.slice(4).empty());
  EXPECT_TRUE(p.slice(100).empty());
}

TEST(Payload, SliceKeepsBufferAliveAfterParentDies) {
  Payload tail;
  {
    Payload whole = make_payload("live-beyond-parent");
    tail = whole.slice(5);
  }
  EXPECT_EQ(to_string(tail), "beyond-parent");
  EXPECT_EQ(tail.ref_count(), 1);
}

TEST(Payload, ToBytesAndDetachCopyOut) {
  Payload p = make_payload("mutate-me");
  Bytes copy = p.to_bytes();
  copy[0] = 'M';
  EXPECT_EQ(to_string(p), "mutate-me");  // original is immutable
  EXPECT_EQ(to_string(copy), "Mutate-me");

  Bytes detached = p.detach();
  EXPECT_EQ(to_string(detached), "mutate-me");
  EXPECT_TRUE(p.empty());  // detach drops the view
}

TEST(Payload, EqualityComparesContentsNotIdentity) {
  const Payload a = make_payload("same");
  const Payload b = make_payload("same");
  EXPECT_FALSE(a.shares_buffer_with(b));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == make_payload("diff"));
  EXPECT_EQ(Payload(), Payload());
  // A slice equals an independently built payload with the same bytes.
  EXPECT_EQ(make_payload("xsamex").slice(1, 4), a);
}

TEST(Payload, WriterHandoffIsZeroCopy) {
  BufWriter w(16);
  w.put_u32(0xDEADBEEF);
  w.put_string("payload");
  const std::size_t written = w.size();
  const std::uint8_t* bytes_before = w.span().data();
  const Payload p = w.take_payload();
  EXPECT_EQ(p.size(), written);
  EXPECT_EQ(p.data(), bytes_before);  // same allocation, no copy
  EXPECT_TRUE(w.empty());             // writer handed its buffer over

  BufReader r(p);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_string(), "payload");
  r.expect_done();
}

TEST(Payload, WriterGrowsAcrossReserveBoundary) {
  BufWriter w(4);  // force several growth steps
  std::string expect;
  for (int i = 0; i < 100; ++i) {
    w.put_u8(static_cast<std::uint8_t>('a' + i % 26));
    expect.push_back(static_cast<char>('a' + i % 26));
  }
  EXPECT_EQ(to_string(w.take_payload()), expect);
}

TEST(Payload, WriterClearKeepsAllocationForScratchReuse) {
  BufWriter w(64);
  w.put_string("first");
  const std::uint8_t* storage = w.span().data();
  w.clear();
  EXPECT_TRUE(w.empty());
  w.put_string("second");
  EXPECT_EQ(w.span().data(), storage);  // same buffer reused
}

TEST(Payload, ReaderBlobSliceIsZeroCopy) {
  BufWriter w;
  w.put_u8(7);
  w.put_blob(Payload(std::string_view("inner-bytes")));
  const Payload frame = w.take_payload();

  BufReader r(frame);
  EXPECT_EQ(r.get_u8(), 7);
  const Payload inner = r.get_blob_payload();
  r.expect_done();
  EXPECT_EQ(to_string(inner), "inner-bytes");
  EXPECT_TRUE(inner.shares_buffer_with(frame));  // slice, not copy

  // Span-backed readers cannot slice; they fall back to a copy.
  const Bytes flat = frame.to_bytes();
  BufReader r2(flat);
  EXPECT_EQ(r2.get_u8(), 7);
  const Payload copied = r2.get_blob_payload();
  EXPECT_EQ(to_string(copied), "inner-bytes");
  EXPECT_FALSE(copied.shares_buffer_with(frame));
}

// The rt engine's sharing pattern: one thread serializes, hands refcounted
// views to N peer threads, each slices/copies/drops concurrently.  Run
// under TSan/ASan this pins down that the refcount is genuinely atomic and
// that the last release (wherever it happens) frees exactly once.
TEST(Payload, CrossThreadSharingAndRelease) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  const Payload shared = make_payload("cross-thread-buffer-contents");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, t]() {
      for (int i = 0; i < kRounds; ++i) {
        Payload view = shared;  // retain on this thread
        Payload part = view.slice(static_cast<std::size_t>(t), 6);
        ASSERT_EQ(part.size(), 6u);
        ASSERT_TRUE(part.shares_buffer_with(shared));
        Bytes copy = part.to_bytes();
        ASSERT_EQ(copy.size(), 6u);
      }  // releases happen on this thread
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(shared.ref_count(), 1);
  EXPECT_EQ(to_string(shared), "cross-thread-buffer-contents");
}

}  // namespace
}  // namespace dpu
