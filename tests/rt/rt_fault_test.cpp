// Real-time engine fault injection through the ScenarioSpec path.
//
// The point of the WorldControl refactor is that a curated-style scenario —
// workload, crash, *recovery*, update plan — executes on real threads via
// the identical spec/runner code the simulator uses.  These tests are
// timing-tolerant by design: rt runs are audited for the paper's properties
// (zero violations) and for convergence facts (who recovered, which
// protocol every live stack ends on), never for byte-deterministic output
// or exact counters.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "scenario/runner.hpp"

namespace dpu::scenario {
namespace {

ScenarioSpec rt_spec(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.engine = Engine::kRt;
  spec.n = 3;
  spec.duration = 3 * kSecond;
  // Wall-clock drain cap lives in RunOptions; the spec drain only bounds it.
  spec.drain = 10 * kSecond;
  spec.workload.rate_per_stack = 30.0;
  return spec;
}

TEST(RtScenario, CrashAndRecoveryUnderLoadStaysAuditClean) {
  // A stack crashes under load, recovers 1.2 s later with fresh protocol
  // state, and must be re-admitted: FD re-trusts it on its first
  // heartbeats, the consensus catch-up replays the decisions it missed, and
  // by quiescence the four ABcast properties hold with the recovered stack
  // counted as *correct* again.
  ScenarioSpec spec = rt_spec("rt-crash-recovery");
  spec.crashes = {{1 * kSecond, 2}};
  spec.recoveries = {{2200 * kMillisecond, 2}};
  spec.updates = {{1500 * kMillisecond, 0, "abcast.ct"}};

  const ScenarioResult result = run_scenario(spec, 5);
  EXPECT_TRUE(result.abcast_report.ok) << result.abcast_report.summary();
  EXPECT_TRUE(result.generic_report.ok) << result.generic_report.summary();
  EXPECT_TRUE(result.crashed.empty());
  EXPECT_EQ(result.recovered, std::set<NodeId>{2});
  EXPECT_GT(result.messages_sent, 0u);
  EXPECT_GT(result.deliveries, 0u);
  for (NodeId i = 0; i < spec.n; ++i) {
    EXPECT_EQ(result.final_protocol[i], "abcast.ct") << "stack " << i;
  }
}

TEST(RtScenario, CrashStopKeepsSurvivorsCorrect) {
  ScenarioSpec spec = rt_spec("rt-crash-stop");
  spec.crashes = {{1500 * kMillisecond, 1}};
  const ScenarioResult result = run_scenario(spec, 7);
  EXPECT_TRUE(result.abcast_report.ok) << result.abcast_report.summary();
  EXPECT_TRUE(result.generic_report.ok) << result.generic_report.summary();
  EXPECT_EQ(result.crashed, std::set<NodeId>{1});
  EXPECT_TRUE(result.recovered.empty());
  EXPECT_TRUE(result.final_protocol[1].empty());
}

}  // namespace
}  // namespace dpu::scenario
