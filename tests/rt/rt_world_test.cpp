// Integration tests for the real-time engine: the identical protocol code
// that the simulator runs must also work under real threads, on both the
// in-process and the UDP-socket transports — including a live protocol
// switch (the paper's experiment, on a real multi-threaded runtime).
//
// These tests use real time; generous deadlines keep them robust on loaded
// CI machines.
#include "rt/rt_world.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "abcast/audit.hpp"
#include "app/stack_builder.hpp"
#include "core/properties.hpp"

namespace dpu {
namespace {

StandardStackOptions fast_options() {
  StandardStackOptions options;
  options.fd.heartbeat_interval = 20 * kMillisecond;
  options.fd.initial_timeout = 200 * kMillisecond;
  options.rp2p.retransmit_interval = 20 * kMillisecond;
  options.with_gm = false;
  return options;
}

/// Polls `done` until it returns true or the deadline expires.
bool wait_until(const std::function<bool()>& done, Duration deadline) {
  const auto end = std::chrono::steady_clock::now() +
                   std::chrono::nanoseconds(deadline);
  while (std::chrono::steady_clock::now() < end) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

struct RtRig {
  explicit RtRig(RtConfig config, StandardStackOptions options = fast_options())
      : opts(options), library(make_standard_library(options)),
        world(config, &library, &trace) {
    for (NodeId i = 0; i < world.size(); ++i) {
      stacks.push_back(build_standard_stack(world.stack(i), options));
      listeners.push_back(std::make_unique<AbcastAudit::Listener>(audit, i));
      world.stack(i).listen<AbcastListener>(kAbcastService,
                                            listeners.back().get(), nullptr);
    }
    world.start();
  }

  void send(NodeId node, const std::string& tag) {
    const Bytes payload = to_bytes(tag);
    audit.record_sent(node, payload);
    world.post_to(node, [this, node, payload]() {
      world.stack(node).require<AbcastApi>(kAbcastService)
          .call([payload](AbcastApi& api) { api.abcast(payload); });
    });
  }

  StandardStackOptions opts;
  ProtocolLibrary library;
  TraceRecorder trace;
  RtWorld world;
  std::vector<StandardStack> stacks;
  std::vector<std::unique_ptr<AbcastAudit::Listener>> listeners;
  AbcastAudit audit;
};

TEST(RtWorld, AbcastDeliversOnRealThreads) {
  RtRig rig(RtConfig{.num_stacks = 3, .seed = 1});
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 10; ++k) {
      rig.send(i, "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  ASSERT_TRUE(wait_until(
      [&]() {
        for (NodeId i = 0; i < 3; ++i) {
          if (rig.audit.deliveries_at(i) < 30) return false;
        }
        return true;
      },
      20 * kSecond))
      << "deliveries: " << rig.audit.deliveries_at(0) << ", "
      << rig.audit.deliveries_at(1) << ", " << rig.audit.deliveries_at(2);
  rig.world.stop();
  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(RtWorld, ProtocolSwitchOnRealThreads) {
  // The paper's experiment on the threaded runtime: replace the ABcast
  // protocol while load is flowing.
  RtRig rig(RtConfig{.num_stacks = 3, .seed = 2});
  std::atomic<bool> stop_load{false};
  std::thread loader([&]() {
    int k = 0;
    while (!stop_load.load()) {
      for (NodeId i = 0; i < 3; ++i) {
        rig.send(i, "load-n" + std::to_string(i) + "-" + std::to_string(k));
      }
      ++k;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  rig.world.call_on(0, [&]() { rig.stacks[0].repl->change_abcast("abcast.seq"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop_load.store(true);
  loader.join();

  // Wait for every sent message to arrive everywhere.
  const std::size_t expected = rig.audit.total_sent();
  ASSERT_TRUE(wait_until(
      [&]() {
        for (NodeId i = 0; i < 3; ++i) {
          if (rig.audit.deliveries_at(i) < expected) return false;
        }
        return true;
      },
      30 * kSecond));
  rig.world.stop();

  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.stacks[i].repl->seq_number(), 1u) << "stack " << i;
    EXPECT_EQ(rig.stacks[i].repl->current_protocol(), "abcast.seq");
  }
  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  auto swf = check_weak_stack_well_formedness(rig.trace.events());
  EXPECT_TRUE(swf.ok) << swf.summary();
}

TEST(RtWorld, UdpSocketTransportDelivers) {
  RtConfig config{.num_stacks = 3, .seed = 3};
  config.transport = RtTransport::kUdpSockets;
  config.udp_base_port = 38911;
  RtRig rig(config);
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 5; ++k) {
      rig.send(i, "udp-n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  ASSERT_TRUE(wait_until(
      [&]() {
        for (NodeId i = 0; i < 3; ++i) {
          if (rig.audit.deliveries_at(i) < 15) return false;
        }
        return true;
      },
      30 * kSecond));
  rig.world.stop();
  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(RtWorld, LossyInprocTransportStillReliable) {
  RtConfig config{.num_stacks = 3, .seed = 4};
  config.drop_probability = 0.05;
  RtRig rig(config);
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 10; ++k) {
      rig.send(i, "lossy-n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  ASSERT_TRUE(wait_until(
      [&]() {
        for (NodeId i = 0; i < 3; ++i) {
          if (rig.audit.deliveries_at(i) < 30) return false;
        }
        return true;
      },
      30 * kSecond));
  rig.world.stop();
  EXPECT_TRUE(rig.audit.check(3).ok);
}

TEST(RtWorld, CrashStopsAStackAndSurvivorsContinue) {
  RtRig rig(RtConfig{.num_stacks = 5, .seed = 5});
  for (NodeId i = 0; i < 5; ++i) rig.send(i, "pre-" + std::to_string(i));
  ASSERT_TRUE(wait_until(
      [&]() { return rig.audit.deliveries_at(0) >= 5; }, 20 * kSecond));

  rig.world.crash(4);
  for (NodeId i = 0; i < 4; ++i) rig.send(i, "post-" + std::to_string(i));
  ASSERT_TRUE(wait_until(
      [&]() {
        for (NodeId i = 0; i < 4; ++i) {
          if (rig.audit.deliveries_at(i) < 9) return false;
        }
        return true;
      },
      30 * kSecond));
  rig.world.stop();
  auto report = rig.audit.check(5, rig.world.crashed_set());
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(RtWorld, CallOnRunsOnStackThreadAndBlocks) {
  RtRig rig(RtConfig{.num_stacks = 2, .seed = 6});
  std::atomic<int> value{0};
  rig.world.call_on(1, [&]() { value.store(42); });
  EXPECT_EQ(value.load(), 42);  // call_on is synchronous
  rig.world.stop();
}

}  // namespace
}  // namespace dpu
