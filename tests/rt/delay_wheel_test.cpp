// The rt engine's slow-link delay wheel: ordering, stop semantics, and the
// end-to-end extra_latency fault it implements.
//
// These tests use real time; generous margins keep them robust on loaded
// CI machines (a sleep asserts a *lower* bound only — the wheel must not
// deliver early — and upper bounds are multi-second).
#include "rt/delay_wheel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "rt/rt_world.hpp"

namespace dpu {
namespace {

TEST(DelayWheel, RunsClosuresInDueOrderNotScheduleOrder) {
  DelayWheel wheel;
  std::mutex mu;
  std::vector<int> order;
  std::atomic<int> done{0};
  const auto note = [&](int id) {
    const std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
    done.fetch_add(1);
  };
  // Scheduled longest-first: the wheel must reorder by due time.
  wheel.schedule(120 * kMillisecond, [&] { note(3); });
  wheel.schedule(60 * kMillisecond, [&] { note(2); });
  wheel.schedule(10 * kMillisecond, [&] { note(1); });
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (done.load() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(DelayWheel, StopDropsPendingAndIsIdempotent) {
  std::atomic<bool> ran{false};
  DelayWheel wheel;
  wheel.schedule(10 * kSecond, [&] { ran.store(true); });
  wheel.stop();
  wheel.stop();  // second stop must be a no-op, not a double-join
  EXPECT_FALSE(ran.load());
}

TEST(DelayWheel, DelaysDeliveryByAtLeastTheScheduledAmount) {
  DelayWheel wheel;
  const auto start = std::chrono::steady_clock::now();
  std::atomic<bool> fired{false};
  std::chrono::steady_clock::duration elapsed{};
  wheel.schedule(80 * kMillisecond, [&] {
    elapsed = std::chrono::steady_clock::now() - start;
    fired.store(true);
  });
  const auto deadline = start + std::chrono::seconds(5);
  while (!fired.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(fired.load());
  EXPECT_GE(elapsed, std::chrono::milliseconds(80));
}

/// End-to-end: an extra_latency link fault on the rt engine routes packets
/// through the wheel; the delayed copy must still arrive, and not before
/// the configured delay.
TEST(DelayWheel, RtExtraLatencyFaultDelaysButDelivers) {
  RtWorld world(RtConfig{.num_stacks = 2, .seed = 1});
  std::atomic<int> got{0};
  std::chrono::steady_clock::time_point recv_at;
  world.stack(1).host().set_packet_handler(
      [&](NodeId, const Payload&) {
        recv_at = std::chrono::steady_clock::now();
        got.fetch_add(1);
      });
  world.start();

  LinkFault fault;
  fault.extra_latency = 100 * kMillisecond;
  world.set_link_fault(0, 1, fault);

  const auto sent_at = std::chrono::steady_clock::now();
  world.post_to(0, [&world]() {
    world.stack(0).host().send_packet(1, to_bytes("slow"));
  });
  const auto deadline = sent_at + std::chrono::seconds(5);
  while (got.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(got.load(), 1);
  EXPECT_GE(recv_at - sent_at, std::chrono::milliseconds(100));
  world.stop();
}

}  // namespace
}  // namespace dpu
