// Shared ABcast test rig: substrate + consensus + one ABcast provider per
// stack + the property audit.
#pragma once

#include <string>
#include <vector>

#include "abcast/audit.hpp"
#include "abcast/ct_abcast.hpp"
#include "abcast/seq_abcast.hpp"
#include "abcast/token_abcast.hpp"
#include "common/consensus_rig.hpp"
#include "common/test_world.hpp"
#include "consensus/ct_consensus.hpp"

namespace dpu::testing {

enum class AbcastKind { kCt, kSeq, kToken };

inline const char* abcast_kind_name(AbcastKind kind) {
  switch (kind) {
    case AbcastKind::kCt: return "ct";
    case AbcastKind::kSeq: return "seq";
    case AbcastKind::kToken: return "token";
  }
  return "?";
}

struct AbcastRig {
  AbcastRig(SimConfig config, AbcastKind kind) : world(config) {
    Rp2pModule::Config rc;
    rc.retransmit_interval = 5 * kMillisecond;
    handles = install_substrate(world, true, true, true,
                                ConsensusRig::FastFd(), rc);
    for (NodeId i = 0; i < world.size(); ++i) {
      Stack& stack = world.stack(i);
      CtConsensusModule::create(stack);  // harmless for seq/token
      switch (kind) {
        case AbcastKind::kCt:
          CtAbcastModule::create(stack);
          break;
        case AbcastKind::kSeq:
          SeqAbcastModule::create(stack);
          break;
        case AbcastKind::kToken:
          TokenAbcastModule::create(stack);
          break;
      }
      listeners.push_back(
          std::make_unique<AbcastAudit::Listener>(audit, i));
      stack.listen<AbcastListener>(kAbcastService, listeners.back().get(),
                                   nullptr);
      stack.start_all();
    }
  }

  /// Schedules stack `node` to abcast a uniquely tagged payload at time `t`.
  void send_at(TimePoint t, NodeId node, const std::string& tag) {
    world.at_node(t, node, [this, node, tag]() {
      if (world.crashed(node)) return;
      const Bytes payload = to_bytes(tag);
      audit.record_sent(node, payload);
      world.stack(node).require<AbcastApi>(kAbcastService)
          .call([payload](AbcastApi& api) { api.abcast(payload); });
    });
  }

  SimWorld world;
  std::vector<SubstrateHandles> handles;
  std::vector<std::unique_ptr<AbcastAudit::Listener>> listeners;
  AbcastAudit audit;
};

}  // namespace dpu::testing
