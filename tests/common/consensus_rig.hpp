// Shared consensus test rig: full substrate + one consensus provider per
// stack, decision recording, and safety checkers reused by the CT and MR
// test suites.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/test_world.hpp"
#include "consensus/consensus.hpp"

namespace dpu::testing {

constexpr StreamId kStream = 1;

struct ConsensusRig {
  using ProviderFactory =
      std::function<ConsensusBase*(Stack&, const std::string&)>;

  ConsensusRig(SimConfig config, const ProviderFactory& factory,
               FdConfig fd_config = FastFd())
      : world(config) {
    Rp2pModule::Config rc;
    rc.retransmit_interval = 5 * kMillisecond;
    handles = install_substrate(world, true, true, true, fd_config, rc);
    decisions.resize(world.size());
    for (NodeId i = 0; i < world.size(); ++i) {
      providers.push_back(factory(world.stack(i), kConsensusService));
      world.stack(i).start_all();
      providers[i]->consensus_bind_stream(
          kStream, [this, i](InstanceId instance, const Bytes& value) {
            decisions[i][instance].push_back(to_string(value));
          });
    }
  }

  static FdConfig FastFd() {
    FdConfig fc;
    fc.heartbeat_interval = 20 * kMillisecond;
    fc.initial_timeout = 100 * kMillisecond;
    fc.timeout_increment = 100 * kMillisecond;
    return fc;
  }

  void propose(NodeId node, InstanceId instance, const std::string& value) {
    world.at_node(world.now(), node, [this, node, instance, value]() {
      providers[node]->propose(kStream, instance, to_bytes(value));
    });
  }

  /// Asserts uniform agreement + integrity + validity for `instance` across
  /// non-crashed stacks; returns the decided value.
  std::string check_decided(InstanceId instance,
                            const std::set<std::string>& proposed) {
    std::string value;
    for (NodeId i = 0; i < world.size(); ++i) {
      if (world.crashed(i)) continue;
      auto it = decisions[i].find(instance);
      EXPECT_TRUE(it != decisions[i].end())
          << "stack " << i << " never decided instance " << instance;
      if (it == decisions[i].end()) continue;
      // Integrity: exactly one decision per instance.
      EXPECT_EQ(it->second.size(), 1u) << "stack " << i;
      if (value.empty()) {
        value = it->second[0];
      } else {
        // Agreement.
        EXPECT_EQ(it->second[0], value) << "stack " << i;
      }
    }
    // Validity.
    EXPECT_TRUE(proposed.count(value) != 0)
        << "decided value '" << value << "' was never proposed";
    return value;
  }

  SimWorld world;
  std::vector<SubstrateHandles> handles;
  std::vector<ConsensusBase*> providers;
  /// decisions[node][instance] -> list of decided values (should be size 1).
  std::vector<std::map<InstanceId, std::vector<std::string>>> decisions;
};

}  // namespace dpu::testing
