// Shared rig for dynamic-protocol-update tests: full Figure-4 substrate,
// a protocol library with every ABcast/consensus provider registered, the
// Repl-ABcast module on each stack, the ABcast audit, and a trace recorder
// for the generic DPU properties.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "abcast/audit.hpp"
#include "abcast/ct_abcast.hpp"
#include "abcast/seq_abcast.hpp"
#include "abcast/token_abcast.hpp"
#include "common/consensus_rig.hpp"
#include "common/test_world.hpp"
#include "consensus/ct_consensus.hpp"
#include "consensus/mr_consensus.hpp"
#include "core/properties.hpp"
#include "repl/repl_abcast.hpp"

namespace dpu::testing {

/// Builds a library with every protocol this repo ships.
inline ProtocolLibrary make_full_library() {
  ProtocolLibrary lib;
  UdpModule::register_protocol(lib);
  Rp2pModule::Config rc;
  rc.retransmit_interval = 5 * kMillisecond;
  Rp2pModule::register_protocol(lib, rc);
  RbcastModule::register_protocol(lib);
  FdModule::register_protocol(lib, ConsensusRig::FastFd());
  CtConsensusModule::register_protocol(lib);
  MrConsensusModule::register_protocol(lib);
  CtAbcastModule::register_protocol(lib);
  SeqAbcastModule::register_protocol(lib);
  TokenAbcastModule::register_protocol(lib);
  lib.declare_replaceable(kAbcastService);
  lib.declare_replaceable(kConsensusService);
  lib.declare_replaceable(kRbcastService);
  return lib;
}

struct ReplRig {
  explicit ReplRig(SimConfig config,
                   const std::string& initial_protocol = "abcast.ct",
                   bool with_consensus = true,
                   Duration retire_after = 0)
      : library(make_full_library()),
        world(config, &library, &trace) {
    Rp2pModule::Config rc;
    rc.retransmit_interval = 5 * kMillisecond;
    handles = install_substrate(world, true, true, true,
                                ConsensusRig::FastFd(), rc);
    for (NodeId i = 0; i < world.size(); ++i) {
      Stack& stack = world.stack(i);
      if (with_consensus) CtConsensusModule::create(stack);
      ReplAbcastModule::Config cfg;
      cfg.initial_protocol = initial_protocol;
      cfg.retire_after = retire_after;
      repl.push_back(ReplAbcastModule::create(stack, cfg));
      listeners.push_back(std::make_unique<AbcastAudit::Listener>(audit, i));
      stack.listen<AbcastListener>(kAbcastService, listeners.back().get(),
                                   nullptr);
      stack.start_all();
    }
  }

  /// Application send through the facade.
  void send_at(TimePoint t, NodeId node, const std::string& tag) {
    world.at_node(t, node, [this, node, tag]() {
      if (world.crashed(node)) return;
      const Bytes payload = to_bytes(tag);
      audit.record_sent(node, payload);
      repl[node]->abcast(payload);
    });
  }

  /// Requests a protocol switch from `node` at time `t`.
  void switch_at(TimePoint t, NodeId node, const std::string& protocol,
                 const ModuleParams& params = ModuleParams()) {
    world.at_node(t, node, [this, node, protocol, params]() {
      if (world.crashed(node)) return;
      repl[node]->change_abcast(protocol, params);
    });
  }

  /// Collected generic-property checks (paper §3) over the recorded trace.
  void expect_generic_properties_ok() {
    auto events = trace.events();
    auto swf = check_weak_stack_well_formedness(events);
    EXPECT_TRUE(swf.ok) << swf.summary();
    auto op = check_protocol_operationability(events, world.size(),
                                              world.crashed_set());
    EXPECT_TRUE(op.ok) << op.summary();
    for (NodeId i = 0; i < world.size(); ++i) {
      if (!world.crashed(i)) {
        EXPECT_EQ(world.stack(i).pending_call_count(), 0u) << "stack " << i;
      }
    }
  }

  ProtocolLibrary library;
  TraceRecorder trace;
  SimWorld world;
  std::vector<SubstrateHandles> handles;
  std::vector<ReplAbcastModule*> repl;
  std::vector<std::unique_ptr<AbcastAudit::Listener>> listeners;
  AbcastAudit audit;
};

}  // namespace dpu::testing
