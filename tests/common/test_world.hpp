// Shared test helpers: composing the communication substrate on every stack
// of a SimWorld.
#pragma once

#include <vector>

#include "fd/fd.hpp"
#include "net/rbcast.hpp"
#include "net/rp2p.hpp"
#include "net/udp_module.hpp"
#include "sim/sim_world.hpp"

namespace dpu::testing {

/// Handles to the substrate modules of one stack.
struct SubstrateHandles {
  UdpModule* udp = nullptr;
  Rp2pModule* rp2p = nullptr;
  RbcastModule* rbcast = nullptr;
  FdModule* fd = nullptr;
};

/// Installs udp (+rp2p (+rbcast (+fd))) on every stack and starts them.
inline std::vector<SubstrateHandles> install_substrate(
    SimWorld& world, bool with_rp2p = true, bool with_rbcast = true,
    bool with_fd = true,
    FdModule::Config fd_config = FdModule::Config{},
    Rp2pModule::Config rp2p_config = Rp2pModule::Config{},
    RbcastModule::Config rbcast_config = RbcastModule::Config{}) {
  std::vector<SubstrateHandles> handles(world.size());
  for (NodeId i = 0; i < world.size(); ++i) {
    Stack& stack = world.stack(i);
    handles[i].udp = UdpModule::create(stack);
    if (with_rp2p) handles[i].rp2p = Rp2pModule::create(stack, kRp2pService, rp2p_config);
    if (with_rbcast) {
      handles[i].rbcast =
          RbcastModule::create(stack, kRbcastService, rbcast_config);
    }
    if (with_fd) handles[i].fd = FdModule::create(stack, kFdService, fd_config);
    stack.start_all();
  }
  return handles;
}

}  // namespace dpu::testing
