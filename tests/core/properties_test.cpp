// Tests for the generic DPU property checkers (paper §3) over both
// synthetic traces and real framework runs.
#include "core/properties.hpp"

#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "sim/sim_world.hpp"

namespace dpu {
namespace {

TraceEvent ev(TimePoint t, NodeId node, TraceKind kind,
              const std::string& service = "", const std::string& module = "") {
  TraceEvent e;
  e.time = t;
  e.node = node;
  e.kind = kind;
  e.service = service;
  e.module = module;
  return e;
}

TEST(WeakSwf, CleanTracePasses) {
  std::vector<TraceEvent> events{
      ev(1, 0, TraceKind::kCallQueued, "abcast"),
      ev(2, 0, TraceKind::kServiceBound, "abcast", "m"),
      ev(2, 0, TraceKind::kCallFlushed, "abcast"),
  };
  EXPECT_TRUE(check_weak_stack_well_formedness(events).ok);
}

TEST(WeakSwf, BlockedCallFails) {
  std::vector<TraceEvent> events{
      ev(1, 0, TraceKind::kCallQueued, "abcast"),
      ev(1, 1, TraceKind::kCallQueued, "abcast"),
      ev(2, 1, TraceKind::kCallFlushed, "abcast"),
  };
  auto report = check_weak_stack_well_formedness(events);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("stack 0"), std::string::npos);
}

TEST(WeakSwf, PerServiceAccounting) {
  std::vector<TraceEvent> events{
      ev(1, 0, TraceKind::kCallQueued, "a"),
      ev(2, 0, TraceKind::kCallFlushed, "a"),
      ev(3, 0, TraceKind::kCallQueued, "b"),
  };
  auto report = check_weak_stack_well_formedness(events);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violations[0].find("'b'"), std::string::npos);
}

TEST(StrongSwf, AnyQueueFails) {
  std::vector<TraceEvent> events{
      ev(1, 0, TraceKind::kCallQueued, "abcast"),
      ev(2, 0, TraceKind::kCallFlushed, "abcast"),
  };
  EXPECT_TRUE(check_weak_stack_well_formedness(events).ok);
  EXPECT_FALSE(check_strong_stack_well_formedness(events).ok);
}

TEST(StrongSwf, NoQueuePasses) {
  std::vector<TraceEvent> events{
      ev(1, 0, TraceKind::kServiceBound, "abcast", "m"),
  };
  EXPECT_TRUE(check_strong_stack_well_formedness(events).ok);
}

TEST(Operationability, AllStacksCreatedPasses) {
  std::vector<TraceEvent> events{
      ev(1, 0, TraceKind::kModuleCreated, "", "abcast.ct@1"),
      ev(1, 0, TraceKind::kServiceBound, "abcast.inner", "abcast.ct@1"),
      ev(2, 1, TraceKind::kModuleCreated, "", "abcast.ct@1"),
      ev(3, 2, TraceKind::kModuleCreated, "", "abcast.ct@1"),
  };
  EXPECT_TRUE(check_protocol_operationability(events, 3).ok);
}

TEST(Operationability, MissingStackFails) {
  std::vector<TraceEvent> events{
      ev(1, 0, TraceKind::kModuleCreated, "", "abcast.ct@1"),
      ev(1, 0, TraceKind::kServiceBound, "abcast.inner", "abcast.ct@1"),
      ev(2, 1, TraceKind::kModuleCreated, "", "abcast.ct@1"),
  };
  auto report = check_protocol_operationability(events, 3);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violations[0].find("stack 2"), std::string::npos);
}

TEST(Operationability, CrashedStackExcused) {
  std::vector<TraceEvent> events{
      ev(1, 0, TraceKind::kModuleCreated, "", "abcast.ct@1"),
      ev(1, 0, TraceKind::kServiceBound, "abcast.inner", "abcast.ct@1"),
      ev(2, 1, TraceKind::kModuleCreated, "", "abcast.ct@1"),
  };
  EXPECT_TRUE(check_protocol_operationability(events, 3, {2}).ok);
}

TEST(Operationability, NonVersionedModulesIgnored) {
  // Plain local modules (no '@' in the name) are not distributed protocol
  // instances; their presence on a single stack is fine.
  std::vector<TraceEvent> events{
      ev(1, 0, TraceKind::kModuleCreated, "", "udp"),
      ev(1, 0, TraceKind::kServiceBound, "udp", "udp"),
  };
  EXPECT_TRUE(check_protocol_operationability(events, 3).ok);
}

TEST(Operationability, NeverBoundInstanceNotRequired) {
  // An instance created somewhere but never bound imposes no obligation.
  std::vector<TraceEvent> events{
      ev(1, 0, TraceKind::kModuleCreated, "", "abcast.ct@9"),
  };
  EXPECT_TRUE(check_protocol_operationability(events, 3).ok);
}

TEST(PropertyReport, SummaryFormats) {
  PropertyReport report;
  EXPECT_EQ(report.summary(), "OK");
  report.fail("first");
  report.fail("second");
  EXPECT_NE(report.summary().find("2 violation(s)"), std::string::npos);
  EXPECT_NE(report.summary().find("first"), std::string::npos);
}

// End-to-end: a real run in which a call is made before the provider binds
// satisfies weak but not strong stack-well-formedness.
struct PingApi {
  virtual ~PingApi() = default;
  virtual void ping() = 0;
};

class PingModule final : public Module, public PingApi {
 public:
  using Module::Module;
  void ping() override { ++pings; }
  int pings = 0;
};

TEST(PropertiesIntegration, LateBindIsWeakButNotStrongWellFormed) {
  TraceRecorder recorder;
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1}, nullptr, &recorder);
  Stack& stack = world.stack(0);

  stack.require<PingApi>("ping").call([](PingApi& api) { api.ping(); });
  auto* mod = stack.emplace_module<PingModule>(stack, "ping-mod");
  stack.bind<PingApi>("ping", mod, mod);

  EXPECT_EQ(mod->pings, 1);
  auto events = recorder.events();
  EXPECT_TRUE(check_weak_stack_well_formedness(events).ok);
  EXPECT_FALSE(check_strong_stack_well_formedness(events).ok);
}

TEST(PropertiesIntegration, AlwaysBoundIsStronglyWellFormed) {
  TraceRecorder recorder;
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1}, nullptr, &recorder);
  Stack& stack = world.stack(0);

  auto* mod = stack.emplace_module<PingModule>(stack, "ping-mod");
  stack.bind<PingApi>("ping", mod, mod);
  stack.require<PingApi>("ping").call([](PingApi& api) { api.ping(); });

  EXPECT_TRUE(check_strong_stack_well_formedness(recorder.events()).ok);
}

}  // namespace
}  // namespace dpu
