// Unit tests for the trace subsystem: event formatting, recorder snapshot
// semantics, and kind names.
#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dpu {
namespace {

TEST(Trace, KindNamesComplete) {
  EXPECT_STREQ(trace_kind_name(TraceKind::kModuleCreated), "module-created");
  EXPECT_STREQ(trace_kind_name(TraceKind::kModuleStopped), "module-stopped");
  EXPECT_STREQ(trace_kind_name(TraceKind::kModuleDestroyed),
               "module-destroyed");
  EXPECT_STREQ(trace_kind_name(TraceKind::kServiceBound), "service-bound");
  EXPECT_STREQ(trace_kind_name(TraceKind::kServiceUnbound), "service-unbound");
  EXPECT_STREQ(trace_kind_name(TraceKind::kCallQueued), "call-queued");
  EXPECT_STREQ(trace_kind_name(TraceKind::kCallFlushed), "call-flushed");
  EXPECT_STREQ(trace_kind_name(TraceKind::kStackCrashed), "stack-crashed");
  EXPECT_STREQ(trace_kind_name(TraceKind::kCustom), "custom");
}

TEST(Trace, EventFormatting) {
  TraceEvent e;
  e.time = 1234;
  e.node = 2;
  e.kind = TraceKind::kServiceBound;
  e.service = "abcast";
  e.module = "abcast.ct@1";
  e.detail = "note";
  const std::string s = e.str();
  EXPECT_NE(s.find("t=1234"), std::string::npos);
  EXPECT_NE(s.find("s2"), std::string::npos);
  EXPECT_NE(s.find("service-bound"), std::string::npos);
  EXPECT_NE(s.find("service=abcast"), std::string::npos);
  EXPECT_NE(s.find("module=abcast.ct@1"), std::string::npos);
  EXPECT_NE(s.find("(note)"), std::string::npos);
}

TEST(Trace, EventFormattingOmitsEmptyFields) {
  TraceEvent e;
  e.kind = TraceKind::kCallQueued;
  const std::string s = e.str();
  EXPECT_EQ(s.find("service="), std::string::npos);
  EXPECT_EQ(s.find("module="), std::string::npos);
  EXPECT_EQ(s.find("("), std::string::npos);
}

TEST(Trace, RecorderSnapshotAndClear) {
  TraceRecorder recorder;
  TraceEvent e;
  e.kind = TraceKind::kCustom;
  e.detail = "one";
  recorder.on_trace(e);
  e.detail = "two";
  recorder.on_trace(e);

  auto snapshot = recorder.events();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].detail, "one");
  EXPECT_EQ(snapshot[1].detail, "two");

  // The snapshot is a copy: later events do not mutate it.
  e.detail = "three";
  recorder.on_trace(e);
  EXPECT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(recorder.events().size(), 3u);

  recorder.clear();
  EXPECT_TRUE(recorder.events().empty());
}

TEST(Trace, RecorderIsThreadSafe) {
  TraceRecorder recorder;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t]() {
      TraceEvent e;
      e.kind = TraceKind::kCustom;
      e.node = static_cast<NodeId>(t);
      for (int i = 0; i < kPerThread; ++i) recorder.on_trace(e);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(recorder.events().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace dpu
