// Tests for the service model of paper §2: bind/unbind, blocked-call
// queueing, response listeners, and the invariants the Repl module relies on
// (listeners survive rebinds; unbound modules can still respond).
#include "core/service.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/stack.hpp"
#include "sim/sim_world.hpp"

namespace dpu {
namespace {

// A trivial service: callers push ints; the provider records them and may
// respond on the same service.
struct EchoApi {
  virtual ~EchoApi() = default;
  virtual void echo(int value) = 0;
};

struct EchoListener {
  virtual ~EchoListener() = default;
  virtual void on_echo(int value) = 0;
};

// A second, incompatible interface to exercise type checking.
struct OtherApi {
  virtual ~OtherApi() = default;
  virtual void other() = 0;
};

class EchoModule final : public Module, public EchoApi {
 public:
  EchoModule(Stack& stack, std::string name)
      : Module(stack, std::move(name)),
        up_(stack.upcalls<EchoListener>("echo")) {}

  void echo(int value) override {
    received.push_back(value);
    up_.notify([&](EchoListener& l) { l.on_echo(value); });
  }

  std::vector<int> received;

 private:
  UpcallRef<EchoListener> up_;
};

class RecordingListener final : public EchoListener {
 public:
  void on_echo(int value) override { heard.push_back(value); }
  std::vector<int> heard;
};

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : world_(SimConfig{.num_stacks = 1, .seed = 1}) {}

  Stack& stack() { return world_.stack(0); }

  SimWorld world_;
};

TEST_F(ServiceTest, CallDispatchesToBoundModule) {
  auto* mod = stack().emplace_module<EchoModule>(stack(), "echo-a");
  stack().bind<EchoApi>("echo", mod, mod);

  auto ref = stack().require<EchoApi>("echo");
  ref.call([](EchoApi& api) { api.echo(7); });

  ASSERT_EQ(mod->received.size(), 1u);
  EXPECT_EQ(mod->received[0], 7);
}

TEST_F(ServiceTest, CallWhileUnboundQueuesAndFlushesInOrder) {
  auto ref = stack().require<EchoApi>("echo");
  ref.call([](EchoApi& api) { api.echo(1); });
  ref.call([](EchoApi& api) { api.echo(2); });
  ref.call([](EchoApi& api) { api.echo(3); });
  EXPECT_EQ(stack().slot("echo").pending_calls(), 3u);

  auto* mod = stack().emplace_module<EchoModule>(stack(), "echo-a");
  stack().bind<EchoApi>("echo", mod, mod);

  EXPECT_EQ(stack().slot("echo").pending_calls(), 0u);
  EXPECT_EQ(mod->received, (std::vector<int>{1, 2, 3}));
}

TEST_F(ServiceTest, CallAfterBindRunsAfterFlushedCalls) {
  auto ref = stack().require<EchoApi>("echo");
  ref.call([](EchoApi& api) { api.echo(1); });

  auto* mod = stack().emplace_module<EchoModule>(stack(), "echo-a");
  stack().bind<EchoApi>("echo", mod, mod);
  ref.call([](EchoApi& api) { api.echo(2); });

  EXPECT_EQ(mod->received, (std::vector<int>{1, 2}));
}

TEST_F(ServiceTest, UnbindKeepsModuleAndAllowsRebind) {
  auto* a = stack().emplace_module<EchoModule>(stack(), "echo-a");
  auto* b = stack().emplace_module<EchoModule>(stack(), "echo-b");
  stack().bind<EchoApi>("echo", a, a);
  stack().unbind("echo");
  EXPECT_NE(stack().find_module("echo-a"), nullptr);  // unbind != remove (§2)
  stack().bind<EchoApi>("echo", b, b);

  auto ref = stack().require<EchoApi>("echo");
  ref.call([](EchoApi& api) { api.echo(9); });
  EXPECT_TRUE(a->received.empty());
  EXPECT_EQ(b->received, (std::vector<int>{9}));
  EXPECT_EQ(stack().slot("echo").bind_epoch(), 2u);
}

TEST_F(ServiceTest, DoubleBindThrows) {
  auto* a = stack().emplace_module<EchoModule>(stack(), "echo-a");
  auto* b = stack().emplace_module<EchoModule>(stack(), "echo-b");
  stack().bind<EchoApi>("echo", a, a);
  EXPECT_THROW(stack().bind<EchoApi>("echo", b, b), std::logic_error);
}

TEST_F(ServiceTest, InterfaceTypeMismatchThrows) {
  auto* a = stack().emplace_module<EchoModule>(stack(), "echo-a");
  stack().bind<EchoApi>("echo", a, a);
  auto wrong = stack().require<OtherApi>("echo");
  EXPECT_THROW(wrong.call([](OtherApi& api) { api.other(); }),
               std::logic_error);
  EXPECT_THROW((void)wrong.try_get(), std::logic_error);
}

TEST_F(ServiceTest, TryGetReturnsNullWhileUnbound) {
  auto ref = stack().require<EchoApi>("echo");
  EXPECT_EQ(ref.try_get(), nullptr);
  auto* a = stack().emplace_module<EchoModule>(stack(), "echo-a");
  stack().bind<EchoApi>("echo", a, a);
  EXPECT_EQ(ref.try_get(), a);
  stack().unbind("echo");
  EXPECT_EQ(ref.try_get(), nullptr);
}

TEST_F(ServiceTest, ListenersReceiveResponses) {
  auto* a = stack().emplace_module<EchoModule>(stack(), "echo-a");
  stack().bind<EchoApi>("echo", a, a);
  RecordingListener l1, l2;
  stack().listen<EchoListener>("echo", &l1, nullptr);
  stack().listen<EchoListener>("echo", &l2, nullptr);

  stack().require<EchoApi>("echo").call([](EchoApi& api) { api.echo(5); });
  EXPECT_EQ(l1.heard, (std::vector<int>{5}));
  EXPECT_EQ(l2.heard, (std::vector<int>{5}));
}

TEST_F(ServiceTest, ListenersSurviveRebind) {
  // The structural property the Repl module depends on: when the provider is
  // swapped, response listeners registered on the service keep working.
  RecordingListener l;
  stack().listen<EchoListener>("echo", &l, nullptr);

  auto* a = stack().emplace_module<EchoModule>(stack(), "echo-a");
  stack().bind<EchoApi>("echo", a, a);
  stack().require<EchoApi>("echo").call([](EchoApi& api) { api.echo(1); });

  stack().unbind("echo");
  auto* b = stack().emplace_module<EchoModule>(stack(), "echo-b");
  stack().bind<EchoApi>("echo", b, b);
  stack().require<EchoApi>("echo").call([](EchoApi& api) { api.echo(2); });

  EXPECT_EQ(l.heard, (std::vector<int>{1, 2}));
}

TEST_F(ServiceTest, UnboundModuleCanStillRespond) {
  // Paper §2: "a module Q_i can respond to a service call even if Q_i has
  // been unbound."
  auto* a = stack().emplace_module<EchoModule>(stack(), "echo-a");
  stack().bind<EchoApi>("echo", a, a);
  RecordingListener l;
  stack().listen<EchoListener>("echo", &l, nullptr);
  stack().unbind("echo");

  // Module a issues a late response after being unbound.
  a->echo(77);
  EXPECT_EQ(l.heard, (std::vector<int>{77}));
}

TEST_F(ServiceTest, ListenerRemovedDuringNotifyIsSkipped) {
  auto* a = stack().emplace_module<EchoModule>(stack(), "echo-a");
  stack().bind<EchoApi>("echo", a, a);

  struct SelfRemovingListener final : EchoListener {
    Stack* stack = nullptr;
    RecordingListener* victim = nullptr;
    int calls = 0;
    void on_echo(int) override {
      ++calls;
      stack->unlisten<EchoListener>("echo", victim);
    }
  };

  SelfRemovingListener first;
  RecordingListener second;
  first.stack = &stack();
  first.victim = &second;
  stack().listen<EchoListener>("echo", &first, nullptr);
  stack().listen<EchoListener>("echo", &second, nullptr);

  stack().require<EchoApi>("echo").call([](EchoApi& api) { api.echo(1); });
  EXPECT_EQ(first.calls, 1);
  EXPECT_TRUE(second.heard.empty());  // removed before its turn
}

TEST_F(ServiceTest, UnbindDuringFlushKeepsRemainderQueued) {
  // A queued call that unbinds the service must stop the flush; the rest of
  // the queue is released on the next bind.
  auto ref = stack().require<EchoApi>("echo");
  ref.call([this](EchoApi& api) {
    api.echo(1);
    stack().unbind("echo");
  });
  ref.call([](EchoApi& api) { api.echo(2); });

  auto* a = stack().emplace_module<EchoModule>(stack(), "echo-a");
  stack().bind<EchoApi>("echo", a, a);
  EXPECT_EQ(a->received, (std::vector<int>{1}));
  EXPECT_EQ(stack().slot("echo").pending_calls(), 1u);

  auto* b = stack().emplace_module<EchoModule>(stack(), "echo-b");
  stack().bind<EchoApi>("echo", b, b);
  EXPECT_EQ(b->received, (std::vector<int>{2}));
  EXPECT_EQ(stack().pending_call_count(), 0u);
}

TEST_F(ServiceTest, PendingCallCountAggregatesServices) {
  stack().require<EchoApi>("echo").call([](EchoApi& api) { api.echo(1); });
  stack().require<OtherApi>("other").call([](OtherApi& api) { api.other(); });
  EXPECT_EQ(stack().pending_call_count(), 2u);
}

TEST_F(ServiceTest, NotifyWithoutListenersIsNoop) {
  auto* a = stack().emplace_module<EchoModule>(stack(), "echo-a");
  stack().bind<EchoApi>("echo", a, a);
  EXPECT_NO_THROW(
      stack().require<EchoApi>("echo").call([](EchoApi& api) { api.echo(1); }));
}

}  // namespace
}  // namespace dpu
