// Tests for Stack: module lifecycle and the create_module recursion of
// Algorithm 1 lines 22-28.
#include "core/stack.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/sim_world.hpp"

namespace dpu {
namespace {

// Minimal three-layer service chain used to exercise recursive creation:
// "top" requires "mid", "mid" requires "low".
struct TopApi {
  virtual ~TopApi() = default;
  virtual void poke() = 0;
};
struct MidApi {
  virtual ~MidApi() = default;
  virtual void poke() = 0;
};
struct LowApi {
  virtual ~LowApi() = default;
  virtual void poke() = 0;
};

std::vector<std::string>* g_start_order = nullptr;

template <class Iface, class DownIface>
class ChainModule final : public Module, public Iface {
 public:
  ChainModule(Stack& stack, std::string name, std::string down_service)
      : Module(stack, std::move(name)), down_service_(std::move(down_service)) {}

  void start() override {
    if (g_start_order != nullptr) g_start_order->push_back(instance_name());
  }

  void poke() override {
    pokes++;
    if (!down_service_.empty()) {
      stack().require<DownIface>(down_service_).call(
          [](DownIface& api) { api.poke(); });
    }
  }

  int pokes = 0;

 private:
  std::string down_service_;
};

struct Unpokable {};  // placeholder down-interface for the lowest layer

using TopModule = ChainModule<TopApi, MidApi>;
using MidModule = ChainModule<MidApi, LowApi>;
using LowModule = ChainModule<LowApi, LowApi>;

ProtocolLibrary make_chain_library(const std::string& param_probe = "") {
  ProtocolLibrary lib;
  lib.register_protocol(ProtocolInfo{
      .protocol = "top.v1",
      .default_service = "top",
      .requires_services = {"mid"},
      .factory = [param_probe](Stack& s, const std::string& provide_as,
                               const ModuleParams& params) -> Module* {
        auto* m = s.emplace_module<TopModule>(s, "top.v1@" + provide_as, "mid");
        if (!param_probe.empty()) {
          EXPECT_EQ(params.get("probe"), param_probe);
        }
        s.bind<TopApi>(provide_as, m, m);
        return m;
      }});
  lib.register_protocol(ProtocolInfo{
      .protocol = "mid.v1",
      .default_service = "mid",
      .requires_services = {"low"},
      .factory = [](Stack& s, const std::string& provide_as,
                    const ModuleParams&) -> Module* {
        auto* m = s.emplace_module<MidModule>(s, "mid.v1@" + provide_as, "low");
        s.bind<MidApi>(provide_as, m, m);
        return m;
      }});
  lib.register_protocol(ProtocolInfo{
      .protocol = "low.v1",
      .default_service = "low",
      .requires_services = {},
      .factory = [](Stack& s, const std::string& provide_as,
                    const ModuleParams&) -> Module* {
        auto* m = s.emplace_module<LowModule>(s, "low.v1@" + provide_as, "");
        s.bind<LowApi>(provide_as, m, m);
        return m;
      }});
  return lib;
}

TEST(StackTest, CreateModuleRecursivelyCreatesRequiredServices) {
  ProtocolLibrary lib = make_chain_library();
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1}, &lib);
  Stack& stack = world.stack(0);

  std::vector<std::string> start_order;
  g_start_order = &start_order;
  Module* top = stack.create_module("top.v1", "top");
  g_start_order = nullptr;

  ASSERT_NE(top, nullptr);
  EXPECT_TRUE(stack.slot("top").bound());
  EXPECT_TRUE(stack.slot("mid").bound());
  EXPECT_TRUE(stack.slot("low").bound());
  EXPECT_EQ(stack.module_count(), 3u);

  // Calls flow through the whole dynamically created chain.
  stack.require<TopApi>("top").call([](TopApi& api) { api.poke(); });
  auto* low = dynamic_cast<LowModule*>(stack.find_module("low.v1@low"));
  ASSERT_NE(low, nullptr);
  EXPECT_EQ(low->pokes, 1);
}

TEST(StackTest, CreateModuleSkipsAlreadyBoundServices) {
  ProtocolLibrary lib = make_chain_library();
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1}, &lib);
  Stack& stack = world.stack(0);

  stack.create_module("low.v1", "low");
  EXPECT_EQ(stack.module_count(), 1u);
  stack.create_module("top.v1", "top");
  // "low" was already bound: only top + mid added.
  EXPECT_EQ(stack.module_count(), 3u);
}

TEST(StackTest, CreateModuleUnknownProtocolThrows) {
  ProtocolLibrary lib = make_chain_library();
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1}, &lib);
  EXPECT_THROW(world.stack(0).create_module("nope.v9", "top"),
               std::logic_error);
}

TEST(StackTest, CreateModuleMissingProviderThrows) {
  // A library where "top" requires "mid" but nothing provides "mid".
  ProtocolLibrary lib;
  lib.register_protocol(ProtocolInfo{
      .protocol = "top.v1",
      .default_service = "top",
      .requires_services = {"mid"},
      .factory = [](Stack& s, const std::string& provide_as,
                    const ModuleParams&) -> Module* {
        auto* m = s.emplace_module<TopModule>(s, "top.v1@" + provide_as, "mid");
        s.bind<TopApi>(provide_as, m, m);
        return m;
      }});
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1}, &lib);
  EXPECT_THROW(world.stack(0).create_module("top.v1", "top"),
               std::logic_error);
}

TEST(StackTest, CreateModuleSurvivesDependencyCycles) {
  // "a" requires "b", "b" requires "a": the in-flight creation of "a" must
  // satisfy b's requirement instead of recursing forever.
  ProtocolLibrary lib;
  lib.register_protocol(ProtocolInfo{
      .protocol = "a.v1",
      .default_service = "a",
      .requires_services = {"b"},
      .factory = [](Stack& s, const std::string& provide_as,
                    const ModuleParams&) -> Module* {
        auto* m = s.emplace_module<ChainModule<TopApi, MidApi>>(
            s, "a.v1@" + provide_as, "");
        s.bind<TopApi>(provide_as, m, m);
        return m;
      }});
  lib.register_protocol(ProtocolInfo{
      .protocol = "b.v1",
      .default_service = "b",
      .requires_services = {"a"},
      .factory = [](Stack& s, const std::string& provide_as,
                    const ModuleParams&) -> Module* {
        auto* m = s.emplace_module<ChainModule<MidApi, LowApi>>(
            s, "b.v1@" + provide_as, "");
        s.bind<MidApi>(provide_as, m, m);
        return m;
      }});
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1}, &lib);
  Stack& stack = world.stack(0);
  EXPECT_NO_THROW(stack.create_module("a.v1", "a"));
  EXPECT_EQ(stack.module_count(), 2u);
  EXPECT_TRUE(stack.slot("a").bound());
  EXPECT_TRUE(stack.slot("b").bound());
}

TEST(StackTest, CreateModulePassesParams) {
  ProtocolLibrary lib = make_chain_library("xyzzy");
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1}, &lib);
  ModuleParams params;
  params.set("probe", "xyzzy");
  world.stack(0).create_module("top.v1", "top", params);
}

TEST(StackTest, DestroyModuleUnbindsAndRemovesListeners) {
  ProtocolLibrary lib = make_chain_library();
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1}, &lib);
  Stack& stack = world.stack(0);
  Module* top = stack.create_module("top.v1", "top");

  stack.destroy_module(top);
  EXPECT_FALSE(stack.slot("top").bound());
  EXPECT_TRUE(stack.slot("mid").bound());  // dependency untouched

  // Deletion is deferred until the event loop turns.
  EXPECT_NE(stack.find_module("top.v1@top"), nullptr);
  world.run_for(1);
  EXPECT_EQ(stack.find_module("top.v1@top"), nullptr);
  EXPECT_EQ(stack.module_count(), 2u);
}

TEST(StackTest, StartAllIsIdempotent) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1});
  Stack& stack = world.stack(0);
  std::vector<std::string> start_order;
  g_start_order = &start_order;
  auto* a = stack.emplace_module<LowModule>(stack, "low-a", "");
  auto* b = stack.emplace_module<LowModule>(stack, "low-b", "");
  (void)a;
  (void)b;
  stack.start_all();
  stack.start_all();
  g_start_order = nullptr;
  EXPECT_EQ(start_order, (std::vector<std::string>{"low-a", "low-b"}));
}

TEST(StackTest, ModuleParamsAccessors) {
  ModuleParams p;
  p.set("k", "v").set("n", "42");
  EXPECT_EQ(p.get("k"), "v");
  EXPECT_EQ(p.get("missing", "d"), "d");
  EXPECT_EQ(p.get_int("n", 0), 42);
  EXPECT_EQ(p.get_int("missing", 7), 7);
  EXPECT_TRUE(p.has("k"));
  EXPECT_FALSE(p.has("missing"));
}

TEST(StackTest, ModuleParamsGetIntFallsBackOnMalformedValues) {
  // Params ride inside replacement messages from other stacks; malformed
  // values must degrade to the fallback instead of throwing mid-switch.
  ModuleParams p;
  p.set("empty", "");
  p.set("text", "not-a-number");
  p.set("trailing", "12abc");
  p.set("overflow", "99999999999999999999999999");
  p.set("negative", "-17");
  p.set("spaced", " 8");
  EXPECT_EQ(p.get_int("empty", 3), 3);
  EXPECT_EQ(p.get_int("text", 3), 3);
  EXPECT_EQ(p.get_int("trailing", 3), 3);
  EXPECT_EQ(p.get_int("overflow", 3), 3);
  EXPECT_EQ(p.get_int("negative", 3), -17);
  // std::stoll skips leading whitespace; full-string consumption still holds.
  EXPECT_EQ(p.get_int("spaced", 3), 8);
}

TEST(StackTest, TracesModuleAndBindEvents) {
  ProtocolLibrary lib = make_chain_library();
  TraceRecorder recorder;
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1}, &lib, &recorder);
  world.stack(0).create_module("top.v1", "top");

  int created = 0, bound = 0;
  for (const auto& e : recorder.events()) {
    if (e.kind == TraceKind::kModuleCreated) ++created;
    if (e.kind == TraceKind::kServiceBound) ++bound;
  }
  EXPECT_EQ(created, 3);
  EXPECT_EQ(bound, 3);
}

}  // namespace
}  // namespace dpu
