// Tests for Algorithm 1 — the replacement of atomic broadcast.  These are
// the central tests of the reproduction: the four ABcast properties must
// hold *across* protocol switches (paper §5.2.2 proof obligations), the
// generic DPU properties of §3 must hold, and the structural claims of §4
// (application never blocked; modules unaware) must be observable.
#include "repl/repl_abcast.hpp"

#include <gtest/gtest.h>

#include "common/repl_rig.hpp"

namespace dpu {
namespace {

using testing::ReplRig;

TEST(ReplAbcast, DeliversNormallyWithoutSwitch) {
  ReplRig rig(SimConfig{.num_stacks = 3, .seed = 1});
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 10; ++k) {
      rig.send_at(k * 10 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.world.run_for(10 * kSecond);
  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(0), 30u);
  EXPECT_EQ(rig.repl[0]->seq_number(), 0u);
  EXPECT_EQ(rig.repl[0]->undelivered_count(), 0u);
}

TEST(ReplAbcast, SameProtocolSwitchUnderLoad) {
  // The paper's own experiment (§6.2): replace Chandra-Toueg ABcast by the
  // same protocol mid-run, performing all steps of the algorithm.
  ReplRig rig(SimConfig{.num_stacks = 7, .seed = 2});
  for (NodeId i = 0; i < 7; ++i) {
    for (int k = 0; k < 40; ++k) {
      rig.send_at(k * 25 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.switch_at(500 * kMillisecond, 3, "abcast.ct");
  rig.world.run_for(30 * kSecond);

  auto report = rig.audit.check(7);
  EXPECT_TRUE(report.ok) << report.summary();
  for (NodeId i = 0; i < 7; ++i) {
    EXPECT_EQ(rig.audit.deliveries_at(i), 7u * 40u) << "stack " << i;
    EXPECT_EQ(rig.repl[i]->seq_number(), 1u) << "stack " << i;
    EXPECT_EQ(rig.repl[i]->switches_completed(), 1u) << "stack " << i;
    EXPECT_EQ(rig.repl[i]->undelivered_count(), 0u) << "stack " << i;
  }
  rig.expect_generic_properties_ok();
}

TEST(ReplAbcast, HeterogeneousSwitchCtToSeq) {
  ReplRig rig(SimConfig{.num_stacks = 3, .seed = 3});
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 30; ++k) {
      rig.send_at(k * 20 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.switch_at(300 * kMillisecond, 0, "abcast.seq");
  rig.world.run_for(20 * kSecond);

  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(0), 90u);
  EXPECT_EQ(rig.repl[1]->current_protocol(), "abcast.seq");
  rig.expect_generic_properties_ok();
}

TEST(ReplAbcast, SwitchToCtCreatesConsensusRecursively) {
  // Start on SEQ-ABcast with NO consensus module in any stack.  Switching
  // to CT-ABcast forces Algorithm 1 lines 25-28: the stack must find and
  // create a provider for the (unbound) consensus service.
  ReplRig rig(SimConfig{.num_stacks = 3, .seed = 4},
              /*initial_protocol=*/"abcast.seq",
              /*with_consensus=*/false);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_FALSE(rig.world.stack(i).slot(kConsensusService).bound());
  }
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 30; ++k) {
      rig.send_at(k * 20 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.switch_at(300 * kMillisecond, 1, "abcast.ct");
  rig.world.run_for(20 * kSecond);

  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(2), 90u);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_TRUE(rig.world.stack(i).slot(kConsensusService).bound())
        << "stack " << i << " should have created a consensus provider";
  }
  rig.expect_generic_properties_ok();
}

TEST(ReplAbcast, ChainedSwitchesAcrossAllProtocols) {
  ReplRig rig(SimConfig{.num_stacks = 3, .seed = 5});
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 60; ++k) {
      rig.send_at(k * 25 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.switch_at(300 * kMillisecond, 0, "abcast.seq");
  rig.switch_at(600 * kMillisecond, 1, "abcast.token");
  rig.switch_at(900 * kMillisecond, 2, "abcast.ct");
  rig.world.run_for(30 * kSecond);

  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(0), 180u);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.repl[i]->seq_number(), 3u);
    EXPECT_EQ(rig.repl[i]->current_protocol(), "abcast.ct");
  }
  rig.expect_generic_properties_ok();
}

TEST(ReplAbcast, ConcurrentChangeRequestsAreTotallyOrdered) {
  // Two stacks request a switch at the same instant.  Both change messages
  // are ABcast, hence totally ordered: every stack performs both switches
  // in the same order and ends at the same version.
  ReplRig rig(SimConfig{.num_stacks = 5, .seed = 6});
  for (NodeId i = 0; i < 5; ++i) {
    for (int k = 0; k < 30; ++k) {
      rig.send_at(k * 20 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.switch_at(300 * kMillisecond, 0, "abcast.seq");
  rig.switch_at(300 * kMillisecond, 4, "abcast.token");
  rig.world.run_for(30 * kSecond);

  auto report = rig.audit.check(5);
  EXPECT_TRUE(report.ok) << report.summary();
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(rig.repl[i]->seq_number(), 2u) << "stack " << i;
    EXPECT_EQ(rig.repl[i]->current_protocol(), rig.repl[0]->current_protocol());
  }
  rig.expect_generic_properties_ok();
}

TEST(ReplAbcast, MessagesInFlightAtSwitchAreReissuedNotLost) {
  ReplRig rig(SimConfig{.num_stacks = 3, .seed = 7});
  // Fire a burst and request the switch immediately after: many messages
  // will be ordered after the change message and discarded as stale, so the
  // re-issue path (lines 15-16) must carry them.
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 50; ++k) {
      rig.send_at(100 * kMillisecond, i,
                  "burst-n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.switch_at(100 * kMillisecond, 0, "abcast.ct");
  rig.world.run_for(30 * kSecond);

  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(1), 150u);
  std::uint64_t reissued = 0, stale = 0;
  for (auto* r : rig.repl) {
    reissued += r->reissued_total();
    stale += r->stale_discarded();
  }
  EXPECT_GT(reissued, 0u) << "switch under burst must exercise re-issue";
  EXPECT_GT(stale, 0u) << "switch under burst must discard stale deliveries";
  rig.expect_generic_properties_ok();
}

TEST(ReplAbcast, CrashDuringSwitchPreservesUniformProperties) {
  ReplRig rig(SimConfig{.num_stacks = 5, .seed = 8});
  for (NodeId i = 0; i < 5; ++i) {
    for (int k = 0; k < 40; ++k) {
      rig.send_at(k * 25 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.switch_at(500 * kMillisecond, 1, "abcast.ct");
  // Crash a stack right in the middle of the switch window.
  rig.world.at(501 * kMillisecond, [&]() { rig.world.crash(3); });
  rig.world.run_for(40 * kSecond);

  auto report = rig.audit.check(5, {3});
  EXPECT_TRUE(report.ok) << report.summary();
  for (NodeId i = 0; i < 5; ++i) {
    if (i == 3) continue;
    EXPECT_EQ(rig.repl[i]->seq_number(), 1u) << "stack " << i;
  }
  rig.expect_generic_properties_ok();
}

TEST(ReplAbcast, SwitchInitiatorCrashRightAfterRequest) {
  // The initiator dies immediately after calling changeABcast.  Either the
  // change message was ABcast-delivered (all survivors switch) or it never
  // enters the total order (nobody switches) — never a partial switch.
  ReplRig rig(SimConfig{.num_stacks = 5, .seed = 9});
  for (NodeId i = 0; i < 5; ++i) {
    for (int k = 0; k < 30; ++k) {
      rig.send_at(k * 30 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.switch_at(400 * kMillisecond, 2, "abcast.seq");
  rig.world.at(400 * kMillisecond + 150 * kMicrosecond,
               [&]() { rig.world.crash(2); });
  rig.world.run_for(40 * kSecond);

  auto report = rig.audit.check(5, {2});
  EXPECT_TRUE(report.ok) << report.summary();
  const std::uint64_t sn0 = rig.repl[0]->seq_number();
  for (NodeId i = 0; i < 5; ++i) {
    if (i == 2) continue;
    EXPECT_EQ(rig.repl[i]->seq_number(), sn0) << "stack " << i;
  }
  rig.expect_generic_properties_ok();
}

TEST(ReplAbcast, ApplicationFacadeNeverBlocks) {
  // §5.3: "the application on top of the stack is never blocked".  In model
  // terms: the facade service satisfies *strong* stack-well-formedness —
  // no application call ever finds the facade unbound, even mid-switch.
  ReplRig rig(SimConfig{.num_stacks = 3, .seed = 10});
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 50; ++k) {
      rig.send_at(k * 10 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.switch_at(250 * kMillisecond, 0, "abcast.seq");
  rig.world.run_for(20 * kSecond);

  // Filter the trace to facade-service call events only.
  int facade_queued = 0;
  for (const auto& e : rig.trace.events()) {
    if (e.kind == TraceKind::kCallQueued && e.service == kAbcastService) {
      ++facade_queued;
    }
  }
  EXPECT_EQ(facade_queued, 0)
      << "application calls must never block on the facade";
  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(ReplAbcast, RetireDestroysOldModuleAfterQuiescence) {
  ReplRig rig(SimConfig{.num_stacks = 3, .seed = 11}, "abcast.ct", true,
              /*retire_after=*/2 * kSecond);
  rig.send_at(50 * kMillisecond, 0, "before");
  rig.switch_at(200 * kMillisecond, 0, "abcast.seq");
  rig.world.run_for(kSecond);
  // Old module (version 0) still present right after the switch...
  const std::string old_instance = "abcast.ct@abcast.inner#0";
  EXPECT_NE(rig.world.stack(0).find_module(old_instance), nullptr);
  rig.world.run_for(5 * kSecond);
  // ...and gone after the retirement delay.
  EXPECT_EQ(rig.world.stack(0).find_module(old_instance), nullptr);
  EXPECT_TRUE(rig.audit.check(3).ok);
}

TEST(ReplAbcast, UnknownProtocolRejectedLocally) {
  ReplRig rig(SimConfig{.num_stacks = 3, .seed = 12});
  rig.world.run_for(10 * kMillisecond);
  EXPECT_THROW(rig.repl[0]->change_abcast("abcast.nonexistent"),
               std::logic_error);
  // The rejected request must not have poisoned the group.
  rig.send_at(rig.world.now() + kMillisecond, 1, "still-works");
  rig.world.run_for(kSecond);
  EXPECT_TRUE(rig.audit.check(3).ok);
  EXPECT_EQ(rig.audit.deliveries_at(0), 1u);
}

// Seed sweep of the paper experiment: same-protocol replacement under load,
// all four ABcast properties plus both generic DPU properties.
class ReplSwitchSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplSwitchSweepTest, PropertiesHoldAcrossSwitch) {
  SimConfig config{.num_stacks = 3, .seed = GetParam()};
  config.net.drop_probability = 0.05;
  ReplRig rig(config);
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 40; ++k) {
      rig.send_at(k * 20 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  // Switch target alternates by seed; switch initiated mid-run.
  const char* target = (GetParam() % 2 == 0) ? "abcast.seq" : "abcast.ct";
  rig.switch_at(400 * kMillisecond, static_cast<NodeId>(GetParam() % 3),
                target);
  rig.world.run_for(40 * kSecond);

  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(0), 120u);
  rig.expect_generic_properties_ok();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplSwitchSweepTest,
                         ::testing::Values(100, 101, 102, 103, 104, 105, 106,
                                           107));

}  // namespace
}  // namespace dpu
