// Universal state transfer: every replaceable layer survives a node that
// crashes *mid-switch* and recovers with fresh protocol state.  One
// parameterized schedule runs against each layer's replacement facade
// (repl-abcast, repl-rbcast, repl-gm, repl-consensus); the recovered stack
// must converge to the switched protocol and the full property audit —
// including exactly-once delivery across the restart — must hold.
#include <gtest/gtest.h>

#include <string>

#include "scenario/runner.hpp"

namespace dpu::scenario {
namespace {

struct LayerCase {
  const char* label;          ///< test name suffix
  Mechanism mechanism;        ///< spec-level mechanism (primary layer)
  const char* initial;        ///< spec.initial_protocol
  const char* update;         ///< protocol switched to mid-run
  const char* final_expected; ///< what every stack must end on
};

class StateTransferTest : public ::testing::TestWithParam<LayerCase> {};

/// Five stacks; the switch is requested at 2 s, node 3 crashes 5 ms later
/// (inside the switch window) and recovers at 4 s with a fresh stack.
ScenarioSpec mid_switch_crash_spec(const LayerCase& c) {
  ScenarioSpec spec;
  spec.name = std::string("state-transfer-") + c.label;
  spec.n = 5;
  spec.duration = 6 * kSecond;
  spec.drain = 30 * kSecond;
  spec.workload.rate_per_stack = 20.0;
  spec.mechanism = c.mechanism;
  spec.initial_protocol = c.initial;
  spec.updates = {{2 * kSecond, 0, c.update}};
  spec.crashes = {{2 * kSecond + 5 * kMillisecond, 3}};
  spec.recoveries = {{4 * kSecond, 3}};
  return spec;
}

TEST_P(StateTransferTest, CrashMidSwitchRecoversAndConverges) {
  const LayerCase& c = GetParam();
  const ScenarioSpec spec = mid_switch_crash_spec(c);
  const ScenarioResult result = run_scenario(spec, 41);
  // The audit is the exactly-once witness: uniform agreement + integrity
  // over the union of live incarnations, with the recovered node held to
  // the full history like any correct stack.
  EXPECT_TRUE(result.abcast_report.ok)
      << c.label << ": " << result.abcast_report.summary();
  EXPECT_TRUE(result.generic_report.ok)
      << c.label << ": " << result.generic_report.summary();
  EXPECT_TRUE(result.crashed.empty()) << c.label;
  EXPECT_EQ(result.recovered, std::set<NodeId>{3}) << c.label;
  for (NodeId i = 0; i < spec.n; ++i) {
    EXPECT_EQ(result.final_protocol[i], c.final_expected)
        << c.label << ": stack " << i;
  }
  EXPECT_GT(result.messages_sent, 0u) << c.label;
  EXPECT_GT(result.deliveries, 0u) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    AllLayers, StateTransferTest,
    ::testing::Values(
        LayerCase{"abcast", Mechanism::kRepl, "abcast.ct", "abcast.seq",
                  "abcast.seq"},
        LayerCase{"rbcast", Mechanism::kReplRbcast, "rbcast.eager",
                  "rbcast.norelay", "rbcast.norelay"},
        LayerCase{"gm", Mechanism::kReplGm, "gm.abcast", "gm.abcast",
                  "gm.abcast"},
        LayerCase{"consensus", Mechanism::kReplConsensus, "consensus.ct",
                  "consensus.mr", "consensus.mr"}),
    [](const ::testing::TestParamInfo<LayerCase>& info) {
      return std::string(info.param.label);
    });

TEST(StateTransfer, LateJoinConvergesLikeARecovery) {
  // A node that was never part of the run joins at 3 s — after a switch it
  // never saw — and must converge through the same state-transfer path.
  ScenarioSpec spec;
  spec.name = "state-transfer-late-join";
  spec.n = 5;
  spec.duration = 6 * kSecond;
  spec.drain = 30 * kSecond;
  spec.workload.rate_per_stack = 20.0;
  spec.updates = {{2 * kSecond, 0, "abcast.seq"}};
  spec.late_joins = {{3 * kSecond, 4}};
  const ScenarioResult result = run_scenario(spec, 43);
  EXPECT_TRUE(result.ok()) << result.abcast_report.summary() << "\n"
                           << result.generic_report.summary();
  EXPECT_TRUE(result.crashed.empty());
  EXPECT_EQ(result.recovered, std::set<NodeId>{4});
  for (NodeId i = 0; i < spec.n; ++i) {
    EXPECT_EQ(result.final_protocol[i], "abcast.seq") << "stack " << i;
  }
  // The joiner pulled a snapshot from a peer and replayed it.
  EXPECT_GT(result.snapshots_served, 0u);
  EXPECT_GT(result.state_replayed, 0u);
}

TEST(StateTransfer, RecoveryWithoutStateTransferCapabilityIsRejected) {
  // The runner enforces the registry capability: a maestro-managed abcast
  // cannot host recoveries (validate() already rejects it, proving the
  // spec-level rule; the runner's registry check backs it for file-loaded
  // specs that skip curation).
  ScenarioSpec spec;
  spec.name = "no-state-transfer";
  spec.n = 5;
  spec.duration = 4 * kSecond;
  spec.mechanism = Mechanism::kMaestro;
  spec.crashes = {{kSecond, 3}};
  spec.recoveries = {{2 * kSecond, 3}};
  EXPECT_THROW((void)run_scenario(spec, 1), std::invalid_argument);
}

}  // namespace
}  // namespace dpu::scenario
