// Repl-RBcast — the replacement substrate instantiated for reliable
// broadcast: transparency at steady state, hot swap under load with
// exactly-once delivery across versions, UpdateApi integration, and the
// one-switch-at-a-time discipline.
#include "repl/repl_rbcast.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/repl_rig.hpp"
#include "repl/update.hpp"

namespace dpu {
namespace {

constexpr ChannelId kAppChannel = 0xA11CE;

/// n stacks: transport substrate + UpdateManager + the rbcast facade; a
/// per-stack delivery log on one client channel.
struct RbcastRig {
  explicit RbcastRig(std::size_t n, std::uint64_t seed,
                     const std::string& initial = "rbcast.eager")
      : library(testing::make_full_library()),
        world(SimConfig{.num_stacks = n, .seed = seed}, &library) {
    delivered.resize(n);
    for (NodeId i = 0; i < n; ++i) {
      Stack& stack = world.stack(i);
      UdpModule::create(stack);
      Rp2pModule::Config rc;
      rc.retransmit_interval = 5 * kMillisecond;
      Rp2pModule::create(stack, kRp2pService, rc);
      update.push_back(UpdateManagerModule::create(stack));
      ReplRbcastModule::Config cfg;
      cfg.initial_protocol = initial;
      facades.push_back(ReplRbcastModule::create(stack, cfg));
      facades.back()->rbcast_bind_channel(
          kAppChannel, [this, i](NodeId origin, const Payload& payload) {
            ++delivered[i][to_string(payload) + "@" + std::to_string(origin)];
          });
      stack.start_all();
    }
  }

  void bcast_at(TimePoint t, NodeId node, const std::string& tag) {
    world.at_node(t, node, [this, node, tag]() {
      facades[node]->rbcast(kAppChannel, Payload(to_bytes(tag)));
    });
  }

  /// Every stack delivered every sent tag exactly once.
  void expect_exactly_once(const std::vector<std::string>& keys) {
    for (NodeId i = 0; i < world.size(); ++i) {
      EXPECT_EQ(delivered[i].size(), keys.size()) << "stack " << i;
      for (const std::string& key : keys) {
        EXPECT_EQ(delivered[i][key], 1u) << "stack " << i << " key " << key;
      }
    }
  }

  ProtocolLibrary library;
  SimWorld world;
  std::vector<UpdateManagerModule*> update;
  std::vector<ReplRbcastModule*> facades;
  std::vector<std::map<std::string, std::uint64_t>> delivered;
};

TEST(ReplRbcast, TransparentAtSteadyState) {
  RbcastRig rig(3, 21);
  std::vector<std::string> keys;
  for (int k = 0; k < 12; ++k) {
    const NodeId origin = static_cast<NodeId>(k % 3);
    const std::string tag = "m" + std::to_string(k);
    rig.bcast_at((50 + k * 40) * kMillisecond, origin, tag);
    keys.push_back(tag + "@" + std::to_string(origin));
  }
  rig.world.run_for(10 * kSecond);
  rig.expect_exactly_once(keys);
  for (auto* f : rig.facades) {
    EXPECT_EQ(f->current_protocol(), "rbcast.eager");
    EXPECT_EQ(f->seq_number(), 0u);
    EXPECT_EQ(f->undelivered_count(), 0u);
  }
}

TEST(ReplRbcast, HotSwapUnderLoadDeliversExactlyOnce) {
  RbcastRig rig(3, 22);
  rig.world.set_loss(0.10, 0.0);  // loss + retransmission across the switch
  std::vector<std::string> keys;
  for (int k = 0; k < 60; ++k) {
    const NodeId origin = static_cast<NodeId>(k % 3);
    const std::string tag = "m" + std::to_string(k);
    rig.bcast_at((50 + k * 25) * kMillisecond, origin, tag);
    keys.push_back(tag + "@" + std::to_string(origin));
  }
  // The switch lands mid-stream, straight through the UpdateApi.
  rig.world.at_node(800 * kMillisecond, 0, [&]() {
    rig.update[0]->request_update(kRbcastService, "rbcast.norelay");
  });
  rig.world.run_for(30 * kSecond);

  rig.expect_exactly_once(keys);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.facades[i]->current_protocol(), "rbcast.norelay")
        << "stack " << i;
    EXPECT_EQ(rig.facades[i]->switches_completed(), 1u) << "stack " << i;
    EXPECT_EQ(rig.facades[i]->undelivered_count(), 0u) << "stack " << i;
    const UpdateStatus s = rig.update[i]->current_version(kRbcastService);
    EXPECT_EQ(s.protocol, "rbcast.norelay");
    EXPECT_EQ(s.version, 1u);
  }
}

TEST(ReplRbcast, ChannelsBoundAfterSwitchStillWork) {
  RbcastRig rig(3, 23);
  rig.world.at_node(200 * kMillisecond, 1, [&]() {
    rig.facades[1]->change_rbcast("rbcast.norelay");
  });
  // A channel bound only after the switch completed (on every version that
  // is still alive) must receive traffic sent through the new version.
  constexpr ChannelId kLate = 0xBEEF;
  std::vector<std::uint64_t> late(3, 0);
  rig.world.at(kSecond, [&]() {
    for (NodeId i = 0; i < 3; ++i) {
      rig.facades[i]->rbcast_bind_channel(
          kLate, [&late, i](NodeId, const Payload&) { ++late[i]; });
    }
  });
  rig.world.at_node(1500 * kMillisecond, 2, [&]() {
    rig.facades[2]->rbcast(kLate, Payload(to_bytes("late")));
  });
  rig.world.run_for(10 * kSecond);
  for (NodeId i = 0; i < 3; ++i) EXPECT_EQ(late[i], 1u) << "stack " << i;
}

TEST(ReplRbcast, ConcurrentChangesCollapseToOneSwitch) {
  RbcastRig rig(3, 24);
  // Two stacks request the same target at the same instant: each stack
  // performs the first change it receives and drops the second (stale sn) —
  // the documented one-switch-at-a-time discipline.
  rig.world.at_node(500 * kMillisecond, 0, [&]() {
    rig.facades[0]->change_rbcast("rbcast.norelay");
  });
  rig.world.at_node(500 * kMillisecond, 1, [&]() {
    rig.facades[1]->change_rbcast("rbcast.norelay");
  });
  rig.world.run_for(10 * kSecond);
  std::uint64_t dropped = 0;
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.facades[i]->switches_completed(), 1u) << "stack " << i;
    EXPECT_EQ(rig.facades[i]->current_protocol(), "rbcast.norelay");
    dropped += rig.facades[i]->changes_dropped();
  }
  EXPECT_GE(dropped, 1u);
}

TEST(ReplRbcast, RegistryRejectsWrongServiceLibraries) {
  RbcastRig rig(1, 25);
  EXPECT_THROW(rig.update[0]->request_update(kRbcastService, "abcast.ct"),
               std::invalid_argument);
  EXPECT_THROW(rig.update[0]->request_update(kRbcastService, "rbcast.nope"),
               std::invalid_argument);
  EXPECT_EQ(rig.update[0]->current_version(kRbcastService).protocol,
            "rbcast.eager");
}

TEST(ReplRbcast, WholeStackRidesTheFacadeAcrossASwitch) {
  // The real composition: consensus + CT-ABcast broadcast through the
  // facade, which is hot-swapped mid-run — the layers above keep the four
  // ABcast properties without knowing anything changed underneath them.
  ProtocolLibrary library = testing::make_full_library();
  SimWorld world(SimConfig{.num_stacks = 3, .seed = 26}, &library);
  AbcastAudit audit;
  std::vector<std::unique_ptr<AbcastAudit::Listener>> listeners;
  std::vector<UpdateManagerModule*> update;
  std::vector<AbcastApi*> abcast;
  for (NodeId i = 0; i < 3; ++i) {
    Stack& stack = world.stack(i);
    UdpModule::create(stack);
    Rp2pModule::Config rc;
    rc.retransmit_interval = 5 * kMillisecond;
    Rp2pModule::create(stack, kRp2pService, rc);
    FdModule::create(stack, kFdService, testing::ConsensusRig::FastFd());
    update.push_back(UpdateManagerModule::create(stack));
    ReplRbcastModule::create(stack, ReplRbcastModule::Config{});
    CtConsensusModule::create(stack);
    CtAbcastModule::create(stack, kAbcastService);
    listeners.push_back(std::make_unique<AbcastAudit::Listener>(audit, i));
    stack.listen<AbcastListener>(kAbcastService, listeners.back().get(),
                                 nullptr);
    stack.start_all();
    abcast.push_back(stack.slot(kAbcastService).try_get<AbcastApi>());
    ASSERT_NE(abcast.back(), nullptr);
  }

  for (int k = 0; k < 40; ++k) {
    const NodeId origin = static_cast<NodeId>(k % 3);
    world.at_node((50 + k * 30) * kMillisecond, origin, [&, origin, k]() {
      const Bytes payload = to_bytes("app-" + std::to_string(k));
      audit.record_sent(origin, payload);
      abcast[origin]->abcast(Payload(payload));
    });
  }
  world.at_node(700 * kMillisecond, 0, [&]() {
    update[0]->request_update(kRbcastService, "rbcast.norelay");
  });
  world.run_for(30 * kSecond);

  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(update[i]->current_version(kRbcastService).protocol,
              "rbcast.norelay")
        << "stack " << i;
  }
  auto report = audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(audit.deliveries_at(i), 40u) << "stack " << i;  // all 40 msgs
  }
}

}  // namespace
}  // namespace dpu
