// Repl-GM — the replacement substrate instantiated for the dependent GM
// layer: views stay consistent across stacks through a hot swap, membership
// state survives via the continuity replay, facade view ids stay
// monotonic, and the switch drives through the UpdateApi.
#include "repl/repl_gm.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "app/stack_builder.hpp"
#include "sim/sim_world.hpp"

namespace dpu {
namespace {

struct GmRig {
  explicit GmRig(std::size_t n, std::uint64_t seed) {
    options.with_gm = true;
    options.with_gm_replacement = true;
    options.fd.heartbeat_interval = 20 * kMillisecond;
    options.fd.initial_timeout = 100 * kMillisecond;
    library = make_standard_library(options);
    world.emplace(SimConfig{.num_stacks = n, .seed = seed}, &library);
    for (NodeId i = 0; i < n; ++i) {
      stacks.push_back(build_standard_stack(world->stack(i), options));
    }
  }

  [[nodiscard]] ReplGmModule& gm(NodeId i) { return *stacks[i].repl_gm; }

  StandardStackOptions options;
  ProtocolLibrary library;
  std::optional<SimWorld> world;
  std::vector<StandardStack> stacks;
};

TEST(ReplGm, ViewsConsistentAcrossStacksAtSteadyState) {
  GmRig rig(3, 31);
  rig.world->at_node(500 * kMillisecond, 0,
                     [&]() { rig.gm(0).gm_exclude(2); });
  rig.world->at_node(1500 * kMillisecond, 1,
                     [&]() { rig.gm(1).gm_join(2); });
  rig.world->run_for(10 * kSecond);

  const auto& h0 = rig.gm(0).history();
  ASSERT_GE(h0.size(), 3u);
  EXPECT_EQ(h0.back().members, (std::vector<NodeId>{0, 1, 2}));
  for (NodeId i = 1; i < 3; ++i) {
    const auto& hi = rig.gm(i).history();
    ASSERT_EQ(hi.size(), h0.size()) << "stack " << i;
    for (std::size_t k = 0; k < h0.size(); ++k) {
      EXPECT_EQ(hi[k].id, h0[k].id);
      EXPECT_EQ(hi[k].members, h0[k].members);
    }
  }
}

TEST(ReplGm, HotSwapPreservesMembershipAndViewConsistency) {
  GmRig rig(4, 32);
  // Shrink the group first so the continuity replay has real state to
  // carry: exclude node 3 before the switch.
  rig.world->at_node(500 * kMillisecond, 0,
                     [&]() { rig.gm(0).gm_exclude(3); });
  rig.world->at_node(1500 * kMillisecond, 1, [&]() {
    rig.stacks[1].update->request_update(kGmService, "gm.abcast");
  });
  // Post-switch op through the new instance.
  rig.world->at_node(3 * kSecond, 2, [&]() { rig.gm(2).gm_exclude(1); });
  rig.world->run_for(15 * kSecond);

  for (NodeId i = 0; i < 4; ++i) {
    // Membership carried across the swap: node 3 stays excluded, node 1's
    // post-switch exclusion applied.
    EXPECT_EQ(rig.gm(i).gm_view().members, (std::vector<NodeId>{0, 2}))
        << "stack " << i;
    EXPECT_EQ(rig.gm(i).current_protocol(), "gm.abcast");
    EXPECT_EQ(rig.gm(i).seq_number(), 1u);
    const UpdateStatus s = rig.stacks[i].update->current_version(kGmService);
    EXPECT_EQ(s.protocol, "gm.abcast");
    EXPECT_EQ(s.version, 1u);
  }

  // Identical view sequence everywhere, with monotonically increasing
  // facade ids (no restart at the version boundary).
  const auto& h0 = rig.gm(0).history();
  for (std::size_t k = 0; k < h0.size(); ++k) {
    EXPECT_EQ(h0[k].id, k);
  }
  for (NodeId i = 1; i < 4; ++i) {
    const auto& hi = rig.gm(i).history();
    ASSERT_EQ(hi.size(), h0.size()) << "stack " << i;
    for (std::size_t k = 0; k < h0.size(); ++k) {
      EXPECT_EQ(hi[k].members, h0[k].members)
          << "stack " << i << " view " << k;
    }
  }
}

TEST(ReplGm, OpsKeepFlowingThroughTheNewVersion) {
  GmRig rig(3, 33);
  rig.world->at_node(500 * kMillisecond, 0, [&]() {
    rig.gm(0).change_gm("gm.abcast");
  });
  rig.world->at_node(2 * kSecond, 1, [&]() { rig.gm(1).gm_leave(2); });
  rig.world->at_node(3 * kSecond, 0, [&]() { rig.gm(0).gm_join(2); });
  rig.world->run_for(12 * kSecond);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.gm(i).gm_view().members, (std::vector<NodeId>{0, 1, 2}))
        << "stack " << i;
    EXPECT_EQ(rig.gm(i).switches_completed(), 1u);
  }
}

TEST(ReplGm, ListenersSeeTheRenumberedFacadeViews) {
  GmRig rig(3, 34);
  struct Log final : GmListener {
    std::vector<View> views;
    void on_view(const View& v) override { views.push_back(v); }
  };
  std::vector<Log> logs(3);
  for (NodeId i = 0; i < 3; ++i) {
    rig.world->stack(i).listen<GmListener>(kGmService, &logs[i], nullptr);
  }
  rig.world->at_node(500 * kMillisecond, 0,
                     [&]() { rig.gm(0).gm_exclude(2); });
  rig.world->at_node(1500 * kMillisecond, 0, [&]() {
    rig.stacks[0].update->request_update(kGmService, "gm.abcast");
  });
  rig.world->run_for(12 * kSecond);
  for (NodeId i = 0; i < 3; ++i) {
    ASSERT_GE(logs[i].views.size(), 2u) << "stack " << i;
    // Monotonic ids across the version boundary; final membership carried.
    for (std::size_t k = 1; k < logs[i].views.size(); ++k) {
      EXPECT_EQ(logs[i].views[k].id, logs[i].views[k - 1].id + 1);
    }
    EXPECT_EQ(logs[i].views.back().members, (std::vector<NodeId>{0, 1}));
  }
}

}  // namespace
}  // namespace dpu
