// The extracted replacement substrate (repl/facade.hpp): wire-format pins
// (the post-extraction Repl-ABcast bytes must equal the pre-extraction
// format), cross-version dedup semantics, and behavior pins for the
// refactored Repl-ABcast — same trace markers, same counters, same switch
// sequencing as before the extraction.
#include "repl/facade.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/repl_rig.hpp"
#include "repl/repl_abcast.hpp"

namespace dpu {
namespace {

using testing::ReplRig;

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

TEST(FacadeCodec, DataWrapperRoundTrip) {
  const MsgId id{3, 41};
  const Bytes payload = to_bytes("hello");
  const Payload wire =
      ReplacementFacadeBase::wrap_data(7, id, Payload(payload));

  const auto m = ReplacementFacadeBase::unwrap(wire);
  EXPECT_EQ(m.tag, ReplacementFacadeBase::kNil);
  EXPECT_EQ(m.sn, 7u);
  EXPECT_EQ(m.id, id);
  EXPECT_EQ(m.payload, payload);

  // Zero-copy variant parses identically.
  const auto d = ReplacementFacadeBase::unwrap_data(wire);
  EXPECT_EQ(d.sn, 7u);
  EXPECT_EQ(d.id, id);
  EXPECT_EQ(d.payload.to_bytes(), payload);
}

TEST(FacadeCodec, DataWrapperBytesArePinned) {
  // The pre-extraction Repl-ABcast layout, byte for byte:
  //   u8 tag (0) | varint sn | u32 origin | varint seq | varint len | bytes
  const MsgId id{0x01020304, 5};
  const Bytes payload = to_bytes("ab");
  const Payload wire =
      ReplacementFacadeBase::wrap_data(2, id, Payload(payload));
  const Bytes expected = {0x00,                    // tag kNil
                          0x02,                    // sn = 2
                          0x01, 0x02, 0x03, 0x04,  // origin (u32, BE)
                          0x05,                    // seq = 5
                          0x02, 'a', 'b'};         // blob
  EXPECT_EQ(wire.to_bytes(), expected);
}

TEST(FacadeCodec, MalformedWireThrows) {
  Bytes junk = {0x07, 0x00};
  EXPECT_THROW((void)ReplacementFacadeBase::unwrap(junk), CodecError);
  Bytes truncated = {0x00, 0x01, 0x00};
  EXPECT_THROW((void)ReplacementFacadeBase::unwrap(truncated), CodecError);
}

TEST(FacadeCodec, ModuleParamsRoundTrip) {
  ModuleParams params;
  params.set("batch_max", "32").set("instance", "abcast.ct@abcast.inner#1");
  BufWriter w(64);
  encode_module_params(w, params);
  const Bytes bytes = w.take();
  BufReader r(bytes);
  const ModuleParams back = decode_module_params(r);
  EXPECT_EQ(back.entries(), params.entries());
}

// ---------------------------------------------------------------------------
// CrossVersionDedup
// ---------------------------------------------------------------------------

TEST(CrossVersionDedup, FirstSightingOnlyPerId) {
  CrossVersionDedup dedup;
  dedup.reset(3);
  EXPECT_TRUE(dedup.mark_seen({0, 1}));
  EXPECT_FALSE(dedup.mark_seen({0, 1}));
  EXPECT_TRUE(dedup.mark_seen({1, 1}));  // other origin is independent
}

TEST(CrossVersionDedup, OutOfOrderArrivalAcrossVersionsIsHandled) {
  // Ids 1..4 from one origin arrive 2, 4, 1, 3 (two inner transports can
  // interleave arbitrarily): every id is accepted exactly once, including
  // an id below the highest seen.
  CrossVersionDedup dedup;
  dedup.reset(1);
  EXPECT_TRUE(dedup.mark_seen({0, 2}));
  EXPECT_TRUE(dedup.mark_seen({0, 4}));
  EXPECT_TRUE(dedup.mark_seen({0, 1}));
  EXPECT_TRUE(dedup.mark_seen({0, 3}));
  for (std::uint64_t s = 1; s <= 4; ++s) {
    EXPECT_FALSE(dedup.mark_seen({0, s})) << "id " << s;
  }
}

TEST(CrossVersionDedup, ReissuedCopyOfDeliveredMessageIsSuppressed) {
  CrossVersionDedup dedup;
  dedup.reset(1);
  // Contiguous prefix delivered, then a reissue of id 2 (e.g. the origin
  // reissued under a new version while the old copy already arrived).
  EXPECT_TRUE(dedup.mark_seen({0, 1}));
  EXPECT_TRUE(dedup.mark_seen({0, 2}));
  EXPECT_TRUE(dedup.mark_seen({0, 3}));
  EXPECT_FALSE(dedup.mark_seen({0, 2}));
}

TEST(CrossVersionDedup, IncarnationEpochsStayIndependent) {
  CrossVersionDedup dedup;
  dedup.reset(1);
  const std::uint64_t e1 = incarnation_seq_base(1);
  EXPECT_TRUE(dedup.mark_seen({0, 1}));           // epoch 0
  EXPECT_TRUE(dedup.mark_seen({0, e1 + 1}));      // epoch 1 opens
  EXPECT_FALSE(dedup.mark_seen({0, e1 + 1}));
  // A late relay of the dead incarnation's id 2 still delivers once.
  EXPECT_TRUE(dedup.mark_seen({0, 2}));
  EXPECT_FALSE(dedup.mark_seen({0, 2}));
}

TEST(CrossVersionDedup, MalformedOriginIsRejected) {
  CrossVersionDedup dedup;
  dedup.reset(2);
  EXPECT_FALSE(dedup.mark_seen({7, 1}));
}

// ---------------------------------------------------------------------------
// Repl-ABcast behavior pins (post-extraction == pre-extraction)
// ---------------------------------------------------------------------------

TEST(FacadeExtraction, ReplAbcastTraceMarkersUnchanged) {
  ReplRig rig(SimConfig{.num_stacks = 3, .seed = 11});
  for (int k = 0; k < 10; ++k) {
    rig.send_at((100 + k * 100) * kMillisecond, k % 3, "m" + std::to_string(k));
  }
  rig.switch_at(500 * kMillisecond, 0, "abcast.seq");
  rig.world.run_for(20 * kSecond);

  // The pre-extraction marker strings, verbatim.
  EXPECT_STREQ(ReplAbcastModule::kTraceChangeRequested,
               "repl-change-requested");
  EXPECT_STREQ(ReplAbcastModule::kTraceSwitchDone, "repl-switch-done");
  bool saw_request = false;
  std::size_t saw_done = 0;
  for (const TraceEvent& e : rig.trace.events()) {
    if (e.kind != TraceKind::kCustom) continue;
    if (e.detail == "repl-change-requested:abcast.seq") saw_request = true;
    if (e.detail == "repl-switch-done:abcast.seq:sn=1") ++saw_done;
  }
  EXPECT_TRUE(saw_request);
  EXPECT_EQ(saw_done, 3u);  // one completion marker per stack

  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.repl[i]->current_protocol(), "abcast.seq");
    EXPECT_EQ(rig.repl[i]->seq_number(), 1u);
    EXPECT_EQ(rig.repl[i]->switches_completed(), 1u);
    EXPECT_EQ(rig.repl[i]->undelivered_count(), 0u);
  }
  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  rig.expect_generic_properties_ok();
}

TEST(FacadeExtraction, UnknownProtocolStillThrowsBeforeAnyTraffic) {
  ReplRig rig(SimConfig{.num_stacks = 3, .seed = 12});
  rig.world.run_for(100 * kMillisecond);
  EXPECT_THROW(rig.repl[0]->change_abcast("abcast.nope"), std::logic_error);
  EXPECT_EQ(rig.repl[0]->seq_number(), 0u);
}

}  // namespace
}  // namespace dpu
