// Tests for the Maestro-style and Graceful-Adaptation-style baselines: both
// must switch correctly (no lost/duplicated/misordered messages), and both
// must exhibit the structural drawbacks the paper attributes to them —
// application blocking (Maestro) and barrier/queueing windows plus the
// no-new-services restriction (Graceful).
#include "repl/baseline_graceful.hpp"
#include "repl/baseline_maestro.hpp"

#include <gtest/gtest.h>

#include "abcast/audit.hpp"
#include "common/repl_rig.hpp"

namespace dpu {
namespace {

using testing::make_full_library;

enum class BaselineKind { kMaestro, kGraceful };

struct BaselineRig {
  BaselineRig(SimConfig config, BaselineKind kind_in)
      : kind(kind_in), library(make_full_library()),
        world(config, &library, &trace) {
    Rp2pModule::Config rc;
    rc.retransmit_interval = 5 * kMillisecond;
    handles = testing::install_substrate(world, true, true, true,
                                         testing::ConsensusRig::FastFd(), rc);
    for (NodeId i = 0; i < world.size(); ++i) {
      Stack& stack = world.stack(i);
      if (kind == BaselineKind::kMaestro) {
        maestro.push_back(MaestroSwitchModule::create(stack));
      } else {
        CtConsensusModule::create(stack);  // graceful AACs share consensus
        graceful.push_back(GracefulSwitchModule::create(stack));
      }
      listeners.push_back(std::make_unique<AbcastAudit::Listener>(audit, i));
      stack.listen<AbcastListener>(kAbcastService, listeners.back().get(),
                                   nullptr);
      stack.start_all();
    }
  }

  void send_at(TimePoint t, NodeId node, const std::string& tag) {
    world.at_node(t, node, [this, node, tag]() {
      if (world.crashed(node)) return;
      const Bytes payload = to_bytes(tag);
      audit.record_sent(node, payload);
      world.stack(node).require<AbcastApi>(kAbcastService)
          .call([payload](AbcastApi& api) { api.abcast(payload); });
    });
  }

  void switch_at(TimePoint t, NodeId node, const std::string& protocol) {
    world.at_node(t, node, [this, node, protocol]() {
      if (kind == BaselineKind::kMaestro) {
        maestro[node]->change_stack(protocol);
      } else {
        graceful[node]->change_adaptation(protocol);
      }
    });
  }

  BaselineKind kind;
  ProtocolLibrary library;
  TraceRecorder trace;
  SimWorld world;
  std::vector<testing::SubstrateHandles> handles;
  std::vector<MaestroSwitchModule*> maestro;
  std::vector<GracefulSwitchModule*> graceful;
  std::vector<std::unique_ptr<AbcastAudit::Listener>> listeners;
  AbcastAudit audit;
};

TEST(MaestroBaseline, DeliversNormallyWithoutSwitch) {
  BaselineRig rig(SimConfig{.num_stacks = 3, .seed = 1}, BaselineKind::kMaestro);
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 10; ++k) {
      rig.send_at(k * 20 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.world.run_for(10 * kSecond);
  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(0), 30u);
}

TEST(MaestroBaseline, SwitchIsCorrectButBlocksTheApplication) {
  BaselineRig rig(SimConfig{.num_stacks = 3, .seed = 2}, BaselineKind::kMaestro);
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 40; ++k) {
      rig.send_at(k * 20 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.switch_at(400 * kMillisecond, 0, "abcast.ct");
  rig.world.run_for(30 * kSecond);

  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(0), 120u);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.maestro[i]->switches_completed(), 1u);
    EXPECT_FALSE(rig.maestro[i]->blocked());
    // The defining drawback: a strictly positive app-blocked window.
    EXPECT_GT(rig.maestro[i]->total_blocked_time(), 0) << "stack " << i;
  }
}

TEST(MaestroBaseline, QueuedCallsSurviveTheSwitch) {
  BaselineRig rig(SimConfig{.num_stacks = 3, .seed = 3}, BaselineKind::kMaestro);
  // A sustained burst across the whole switch window: the marker queues
  // behind the burst backlog, so the app-blocked window opens several
  // milliseconds after the request; keep sending well past it.
  rig.switch_at(100 * kMillisecond, 1, "abcast.ct");
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 300; ++k) {
      // Staggered per stack so sends cover every phase of the ~100us
      // blocked window instead of all landing on the same boundaries.
      rig.send_at(100 * kMillisecond + k * 100 * kMicrosecond +
                      i * 33 * kMicrosecond,
                  i, "b" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.world.run_for(30 * kSecond);
  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(2), 900u);
  std::uint64_t queued = 0;
  for (auto* m : rig.maestro) queued += m->calls_queued_while_blocked();
  EXPECT_GT(queued, 0u);
}

TEST(GracefulBaseline, DeliversNormallyWithoutSwitch) {
  BaselineRig rig(SimConfig{.num_stacks = 3, .seed = 4},
                  BaselineKind::kGraceful);
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 10; ++k) {
      rig.send_at(k * 20 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.world.run_for(10 * kSecond);
  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(1), 30u);
}

TEST(GracefulBaseline, BarrierSwitchIsCorrect) {
  BaselineRig rig(SimConfig{.num_stacks = 3, .seed = 5},
                  BaselineKind::kGraceful);
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 40; ++k) {
      rig.send_at(k * 20 * kMillisecond, i,
                  "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.switch_at(400 * kMillisecond, 2, "abcast.seq");
  rig.world.run_for(30 * kSecond);

  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(0), 120u);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.graceful[i]->switches_completed(), 1u) << "stack " << i;
    EXPECT_FALSE(rig.graceful[i]->switching());
    // Deactivate->activate is a real window: queueing time is positive.
    EXPECT_GT(rig.graceful[i]->total_queueing_window(), 0);
  }
}

TEST(GracefulBaseline, CallsDuringDrainAreQueuedNotLost) {
  BaselineRig rig(SimConfig{.num_stacks = 3, .seed = 6},
                  BaselineKind::kGraceful);
  rig.switch_at(100 * kMillisecond, 0, "abcast.seq");
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 200; ++k) {
      // Dense burst across the drain/marker window.
      rig.send_at(100 * kMillisecond + k * 20 * kMicrosecond, i,
                  "b" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  rig.world.run_for(30 * kSecond);
  auto report = rig.audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(rig.audit.deliveries_at(0), 600u);
  std::uint64_t queued = 0;
  for (auto* g : rig.graceful) queued += g->calls_queued_during_switch();
  EXPECT_GT(queued, 0u);
}

TEST(GracefulBaseline, RejectsProtocolNeedingUnboundService) {
  // The flexibility restriction of §4.2: AACs may only use the services the
  // module already requires.  With no consensus module bound, adapting to
  // the consensus-based protocol must be rejected...
  ProtocolLibrary library = make_full_library();
  SimConfig config{.num_stacks = 3, .seed = 7};
  SimWorld world(config, &library);
  std::vector<GracefulSwitchModule*> graceful;
  Rp2pModule::Config rc;
  rc.retransmit_interval = 5 * kMillisecond;
  testing::install_substrate(world, true, true, true,
                             testing::ConsensusRig::FastFd(), rc);
  for (NodeId i = 0; i < 3; ++i) {
    GracefulSwitchModule::Config cfg;
    cfg.initial_protocol = "abcast.seq";
    graceful.push_back(GracefulSwitchModule::create(world.stack(i), cfg));
    world.stack(i).start_all();
  }
  world.run_for(100 * kMillisecond);
  EXPECT_THROW(graceful[0]->change_adaptation("abcast.ct"), std::logic_error);
  // ...while a same-requirements target is fine.
  EXPECT_NO_THROW(graceful[0]->change_adaptation("abcast.token"));
  world.run_for(10 * kSecond);
  EXPECT_EQ(graceful[1]->switches_completed(), 1u);
}

TEST(GracefulBaseline, ConcurrentSwitchRejectedLocally) {
  BaselineRig rig(SimConfig{.num_stacks = 3, .seed = 8},
                  BaselineKind::kGraceful);
  rig.world.at_node(10 * kMillisecond, 0, [&]() {
    rig.graceful[0]->change_adaptation("abcast.seq");
    EXPECT_THROW(rig.graceful[0]->change_adaptation("abcast.token"),
                 std::logic_error);
  });
  rig.world.run_for(20 * kSecond);
  EXPECT_EQ(rig.graceful[0]->switches_completed(), 1u);
}

}  // namespace
}  // namespace dpu
