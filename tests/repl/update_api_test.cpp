// UpdateApi — the service-generic dynamic-update control plane: registry
// declarations, end-to-end switches of both replaceable layers through one
// API, completion listeners, and the negative paths (unknown library,
// non-replaceable service, unmanaged service).
#include "repl/update.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/stack_builder.hpp"
#include "app/workload.hpp"
#include "common/consensus_rig.hpp"
#include "sim/sim_world.hpp"

namespace dpu {
namespace {

/// Collects UpdateListener upcalls of one stack.
struct EventLog final : UpdateListener {
  std::vector<UpdateEvent> events;
  void on_update_complete(const UpdateEvent& event) override {
    events.push_back(event);
  }
};

/// n stacks, each the full standard composition (substrate + update manager
/// + Repl-ABcast, optionally the Repl-Consensus facade underneath).
struct UpdateRig {
  explicit UpdateRig(std::size_t n, bool consensus_replaceable) {
    options.with_gm = false;
    options.with_consensus_replacement = consensus_replaceable;
    options.fd = testing::ConsensusRig::FastFd();
    options.rp2p.retransmit_interval = 5 * kMillisecond;
    library = make_standard_library(options);
    world.emplace(SimConfig{.num_stacks = n, .seed = 42}, &library);
    for (NodeId i = 0; i < world->size(); ++i) {
      built.push_back(build_standard_stack(world->stack(i), options));
      logs.push_back(std::make_unique<EventLog>());
      world->stack(i).listen<UpdateListener>(kUpdateService, logs[i].get(),
                                             nullptr);
    }
  }

  [[nodiscard]] UpdateApi& api(NodeId i) { return *built[i].update; }

  StandardStackOptions options;
  ProtocolRegistry library;
  std::optional<SimWorld> world;
  std::vector<StandardStack> built;
  std::vector<std::unique_ptr<EventLog>> logs;
};

TEST(ProtocolRegistry, DeclaresReplaceableServicesAndTheirLibraries) {
  const ProtocolRegistry registry = make_standard_library();
  EXPECT_TRUE(registry.replaceable(kAbcastService));
  EXPECT_TRUE(registry.replaceable(kConsensusService));
  EXPECT_TRUE(registry.replaceable(kRbcastService));
  EXPECT_TRUE(registry.replaceable(kGmService));
  EXPECT_FALSE(registry.replaceable(kRp2pService));
  EXPECT_FALSE(registry.replaceable("no-such-service"));

  const std::vector<std::string> abcast = registry.libraries_for(kAbcastService);
  EXPECT_EQ(abcast, (std::vector<std::string>{"abcast.ct", "abcast.seq",
                                              "abcast.token"}));
  const std::vector<std::string> consensus =
      registry.libraries_for(kConsensusService);
  EXPECT_EQ(consensus,
            (std::vector<std::string>{"consensus.ct", "consensus.mr"}));
  const std::vector<std::string> rbcast =
      registry.libraries_for(kRbcastService);
  EXPECT_EQ(rbcast,
            (std::vector<std::string>{"rbcast.eager", "rbcast.norelay"}));
  EXPECT_EQ(registry.libraries_for(kGmService),
            (std::vector<std::string>{"gm.abcast"}));
}

TEST(UpdateApi, RejectsInvalidRequests) {
  UpdateRig rig(3, /*consensus_replaceable=*/false);
  // Unknown library name.
  EXPECT_THROW(rig.api(0).request_update(kAbcastService, "abcast.nope"),
               std::invalid_argument);
  // Known library, but the service was never declared replaceable.
  EXPECT_THROW(rig.api(0).request_update(kRp2pService, "rp2p"),
               std::invalid_argument);
  // Replaceable service, but the library provides a different one.
  EXPECT_THROW(rig.api(0).request_update(kAbcastService, "consensus.mr"),
               std::invalid_argument);
  // Replaceable in the registry, but no mechanism manages it on this stack
  // (consensus is a plain module here, not a facade) — and likewise the
  // rbcast and gm layers, composed directly in this rig.
  EXPECT_THROW(rig.api(0).request_update(kConsensusService, "consensus.mr"),
               std::invalid_argument);
  EXPECT_THROW((void)rig.api(0).current_version(kConsensusService),
               std::invalid_argument);
  EXPECT_THROW(rig.api(0).request_update(kRbcastService, "rbcast.norelay"),
               std::invalid_argument);
  EXPECT_THROW((void)rig.api(0).current_version(kRbcastService),
               std::invalid_argument);
  EXPECT_THROW(rig.api(0).request_update(kGmService, "gm.abcast"),
               std::invalid_argument);
  // A library that provides a different service than the one requested.
  EXPECT_THROW(rig.api(0).request_update(kRbcastService, "gm.abcast"),
               std::invalid_argument);
  // Nothing above may have left a half-performed switch behind.
  EXPECT_EQ(rig.api(0).current_version(kAbcastService).protocol, "abcast.ct");
  EXPECT_EQ(rig.api(0).current_version(kAbcastService).version, 0u);
}

TEST(UpdateApi, SwitchesTheAbcastLayerEverywhere) {
  UpdateRig rig(3, /*consensus_replaceable=*/false);
  SimWorld& world = *rig.world;
  world.at_node(kSecond, 0, [&]() {
    rig.api(0).request_update(kAbcastService, "abcast.seq");
  });
  world.run_for(10 * kSecond);

  for (NodeId i = 0; i < world.size(); ++i) {
    const UpdateStatus status = rig.api(i).current_version(kAbcastService);
    EXPECT_EQ(status.protocol, "abcast.seq") << "stack " << i;
    EXPECT_EQ(status.version, 1u) << "stack " << i;
    ASSERT_EQ(rig.logs[i]->events.size(), 1u) << "stack " << i;
    const UpdateEvent& event = rig.logs[i]->events[0];
    EXPECT_EQ(event.service, kAbcastService);
    EXPECT_EQ(event.protocol, "abcast.seq");
    EXPECT_EQ(event.mechanism, "repl");
    EXPECT_EQ(event.version, 1u);
    EXPECT_GE(event.at, kSecond);
  }
}

TEST(UpdateApi, SwitchesTheConsensusLayerThroughTheSameApi) {
  // The non-abcast hot swap: consensus.ct -> consensus.mr underneath an
  // unmodified (and itself replaceable) Repl-ABcast, via the same
  // request_update call — only the service argument differs.
  UpdateRig rig(3, /*consensus_replaceable=*/true);
  SimWorld& world = *rig.world;

  // Live traffic across the switch keeps the consensus streams deciding,
  // which is what carries every stream across its migration boundary.
  std::vector<WorkloadModule*> workloads;
  for (NodeId i = 0; i < world.size(); ++i) {
    WorkloadConfig wc;
    wc.rate_per_second = 25.0;
    wc.stop_after = 4 * kSecond;
    workloads.push_back(WorkloadModule::create(world.stack(i), wc));
    world.stack(i).start_all();
  }

  world.at_node(2 * kSecond, 1, [&]() {
    rig.api(1).request_update(kConsensusService, "consensus.mr");
  });
  world.run_for(40 * kSecond);

  std::uint64_t delivered_after = 0;
  for (NodeId i = 0; i < world.size(); ++i) {
    const UpdateStatus status = rig.api(i).current_version(kConsensusService);
    EXPECT_EQ(status.protocol, "consensus.mr") << "stack " << i;
    EXPECT_EQ(status.version, 1u) << "stack " << i;
    // The abcast layer is still at its initial version, untouched.
    EXPECT_EQ(rig.api(i).current_version(kAbcastService).protocol,
              "abcast.ct");
    ASSERT_EQ(rig.logs[i]->events.size(), 1u) << "stack " << i;
    EXPECT_EQ(rig.logs[i]->events[0].mechanism, "repl-consensus");
    EXPECT_EQ(rig.logs[i]->events[0].service, kConsensusService);
    delivered_after += rig.built[i].repl_consensus->decisions_delivered();
  }
  EXPECT_GT(delivered_after, 0u);
  std::uint64_t sent = 0;
  for (const WorkloadModule* w : workloads) sent += w->sent();
  EXPECT_GT(sent, 0u);
}

TEST(UpdateApi, OneMechanismPerServiceIsEnforced) {
  UpdateRig rig(1, /*consensus_replaceable=*/false);
  // The standard stack already registered Repl-ABcast for "abcast"; a
  // second machinery claiming the same service is a composition bug the
  // manager rejects at registration.
  struct FakeMechanism final : UpdateMechanism {
    std::string service = kAbcastService;
    [[nodiscard]] const std::string& update_service() const override {
      return service;
    }
    [[nodiscard]] const char* update_mechanism_name() const override {
      return "fake";
    }
    void request_update(const std::string&, const ModuleParams&) override {}
    [[nodiscard]] UpdateStatus update_status() const override { return {}; }
  } fake;
  EXPECT_THROW(rig.built[0].update->register_mechanism(&fake),
               std::logic_error);
}

}  // namespace
}  // namespace dpu
