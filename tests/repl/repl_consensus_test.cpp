// Tests for the consensus-replacement extension: the consensus service is
// switched between the CT and MR providers while clients keep proposing.
// Safety requirements: per-(stream,instance) agreement/integrity across the
// switch, consistent per-stream boundaries, and an unmodified CT-ABcast
// keeps total order while its consensus substrate is swapped underneath it.
#include "repl/repl_consensus.hpp"

#include <gtest/gtest.h>

#include "abcast/audit.hpp"
#include "abcast/ct_abcast.hpp"
#include "common/repl_rig.hpp"

namespace dpu {
namespace {

using testing::make_full_library;

struct Rig {
  explicit Rig(SimConfig config)
      : library(make_full_library()), world(config, &library) {
    Rp2pModule::Config rc;
    rc.retransmit_interval = 5 * kMillisecond;
    handles = testing::install_substrate(world, true, true, true,
                                         testing::ConsensusRig::FastFd(), rc);
    decisions.resize(world.size());
    for (NodeId i = 0; i < world.size(); ++i) {
      facade.push_back(ReplConsensusModule::create(world.stack(i)));
      world.stack(i).start_all();
      facade[i]->consensus_bind_stream(
          1, [this, i](InstanceId instance, const Bytes& value) {
            decisions[i][instance].push_back(to_string(value));
          });
    }
  }

  void propose(NodeId node, InstanceId instance, const std::string& value) {
    world.at_node(world.now(), node, [this, node, instance, value]() {
      facade[node]->propose(1, instance, to_bytes(value));
    });
  }

  /// Agreement + integrity + validity for one instance.
  std::string check_instance(InstanceId instance,
                             const std::set<std::string>& proposed) {
    std::string value;
    for (NodeId i = 0; i < world.size(); ++i) {
      if (world.crashed(i)) continue;
      auto it = decisions[i].find(instance);
      EXPECT_TRUE(it != decisions[i].end())
          << "stack " << i << " missing instance " << instance;
      if (it == decisions[i].end()) continue;
      EXPECT_EQ(it->second.size(), 1u)
          << "stack " << i << " instance " << instance;
      if (value.empty()) value = it->second[0];
      EXPECT_EQ(it->second[0], value) << "stack " << i;
    }
    EXPECT_TRUE(proposed.count(value) != 0) << "'" << value << "' not proposed";
    return value;
  }

  ProtocolLibrary library;
  SimWorld world;
  std::vector<testing::SubstrateHandles> handles;
  std::vector<ReplConsensusModule*> facade;
  std::vector<std::map<InstanceId, std::vector<std::string>>> decisions;
};

TEST(ReplConsensus, DecidesNormallyWithoutSwitch) {
  Rig rig(SimConfig{.num_stacks = 3, .seed = 1});
  for (InstanceId k = 1; k <= 10; ++k) {
    for (NodeId i = 0; i < 3; ++i) {
      rig.propose(i, k, "k" + std::to_string(k) + "n" + std::to_string(i));
    }
    rig.world.run_for(100 * kMillisecond);
  }
  rig.world.run_for(kSecond);
  for (InstanceId k = 1; k <= 10; ++k) {
    std::set<std::string> proposed;
    for (NodeId i = 0; i < 3; ++i) {
      proposed.insert("k" + std::to_string(k) + "n" + std::to_string(i));
    }
    rig.check_instance(k, proposed);
  }
  EXPECT_EQ(rig.facade[0]->version_count(), 1u);
}

TEST(ReplConsensus, SwitchCtToMrMidStream) {
  Rig rig(SimConfig{.num_stacks = 3, .seed = 2});
  for (InstanceId k = 1; k <= 20; ++k) {
    for (NodeId i = 0; i < 3; ++i) {
      rig.propose(i, k, "k" + std::to_string(k) + "n" + std::to_string(i));
    }
    if (k == 8) {
      rig.world.at_node(rig.world.now(), 0, [&]() {
        rig.facade[0]->change_consensus("consensus.mr");
      });
    }
    rig.world.run_for(150 * kMillisecond);
  }
  rig.world.run_for(5 * kSecond);

  for (InstanceId k = 1; k <= 20; ++k) {
    std::set<std::string> proposed;
    for (NodeId i = 0; i < 3; ++i) {
      proposed.insert("k" + std::to_string(k) + "n" + std::to_string(i));
    }
    rig.check_instance(k, proposed);
  }
  // Every stack migrated the stream to the MR version at the same boundary.
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.facade[i]->version_count(), 2u) << "stack " << i;
    EXPECT_EQ(rig.facade[i]->stream_version(1), 1u) << "stack " << i;
    EXPECT_EQ(rig.facade[i]->protocol_of(1), "consensus.mr");
  }
}

TEST(ReplConsensus, ChainedSwitchesCtMrCt) {
  Rig rig(SimConfig{.num_stacks = 3, .seed = 3});
  for (InstanceId k = 1; k <= 30; ++k) {
    for (NodeId i = 0; i < 3; ++i) {
      rig.propose(i, k, "k" + std::to_string(k) + "n" + std::to_string(i));
    }
    if (k == 8) {
      rig.world.at_node(rig.world.now(), 1, [&]() {
        rig.facade[1]->change_consensus("consensus.mr");
      });
    }
    rig.world.run_for(200 * kMillisecond);
    if (k == 20) {
      // Second switch only after the first completed on the stream.
      rig.world.at_node(rig.world.now(), 2, [&]() {
        rig.facade[2]->change_consensus("consensus.ct");
      });
    }
  }
  rig.world.run_for(5 * kSecond);

  for (InstanceId k = 1; k <= 30; ++k) {
    std::set<std::string> proposed;
    for (NodeId i = 0; i < 3; ++i) {
      proposed.insert("k" + std::to_string(k) + "n" + std::to_string(i));
    }
    rig.check_instance(k, proposed);
  }
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.facade[i]->version_count(), 3u);
    EXPECT_EQ(rig.facade[i]->stream_version(1), 2u);
  }
}

TEST(ReplConsensus, IdleStreamMigratesLazilyOnNextProposal) {
  Rig rig(SimConfig{.num_stacks = 3, .seed = 4});
  for (NodeId i = 0; i < 3; ++i) rig.propose(i, 1, "pre" + std::to_string(i));
  rig.world.run_for(kSecond);
  // Switch while the stream is idle.
  rig.world.at_node(rig.world.now(), 0, [&]() {
    rig.facade[0]->change_consensus("consensus.mr");
  });
  rig.world.run_for(kSecond);
  EXPECT_EQ(rig.facade[1]->stream_version(1), 0u);  // not yet migrated

  // Next proposal carries the vote; the stream crosses its boundary.
  for (NodeId i = 0; i < 3; ++i) rig.propose(i, 2, "post" + std::to_string(i));
  rig.world.run_for(3 * kSecond);
  rig.check_instance(2, {"post0", "post1", "post2"});
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.facade[i]->stream_version(1), 1u) << "stack " << i;
  }
  // Instances after the boundary run on MR.
  for (NodeId i = 0; i < 3; ++i) rig.propose(i, 3, "mr" + std::to_string(i));
  rig.world.run_for(3 * kSecond);
  rig.check_instance(3, {"mr0", "mr1", "mr2"});
}

TEST(ReplConsensus, UnknownProtocolRejected) {
  Rig rig(SimConfig{.num_stacks = 3, .seed = 5});
  rig.world.run_for(10 * kMillisecond);
  EXPECT_THROW(rig.facade[0]->change_consensus("consensus.bogus"),
               std::logic_error);
}

TEST(ReplConsensus, AbcastSurvivesConsensusSwitchUnderLoad) {
  // The integration that matters: an unmodified CT-ABcast runs on the
  // consensus facade while CT is live-replaced by MR underneath it.  Total
  // order must hold across the whole run.
  ProtocolLibrary library = make_full_library();
  SimConfig config{.num_stacks = 3, .seed = 6};
  SimWorld world(config, &library);
  Rp2pModule::Config rc;
  rc.retransmit_interval = 5 * kMillisecond;
  testing::install_substrate(world, true, true, true,
                             testing::ConsensusRig::FastFd(), rc);
  std::vector<ReplConsensusModule*> facade;
  AbcastAudit audit;
  std::vector<std::unique_ptr<AbcastAudit::Listener>> listeners;
  for (NodeId i = 0; i < 3; ++i) {
    Stack& stack = world.stack(i);
    facade.push_back(ReplConsensusModule::create(stack));
    CtAbcastModule::create(stack);  // binds "abcast", requires "consensus"
    listeners.push_back(std::make_unique<AbcastAudit::Listener>(audit, i));
    stack.listen<AbcastListener>(kAbcastService, listeners.back().get(),
                                 nullptr);
    stack.start_all();
  }
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 60; ++k) {
      world.at_node((10 + k * 25) * kMillisecond, i, [&world, &audit, i, k]() {
        const Bytes payload =
            to_bytes("n" + std::to_string(i) + "-" + std::to_string(k));
        audit.record_sent(i, payload);
        world.stack(i).require<AbcastApi>(kAbcastService)
            .call([payload](AbcastApi& api) { api.abcast(payload); });
      });
    }
  }
  world.at_node(700 * kMillisecond, 1, [&]() {
    facade[1]->change_consensus("consensus.mr");
  });
  world.run_for(60 * kSecond);

  auto report = audit.check(3);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(audit.deliveries_at(0), 180u);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(facade[i]->version_count(), 2u) << "stack " << i;
    EXPECT_GE(facade[i]->stream_version(fnv1a64(std::string(kAbcastService) +
                                                "/stream")),
              1u)
        << "stack " << i << " abcast stream did not migrate";
  }
}

}  // namespace
}  // namespace dpu
