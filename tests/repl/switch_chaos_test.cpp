// Chaos sweep for Algorithm 1: randomized switch schedules, protocol
// targets, crash schedules and message loss, all driven from a single seed
// per case.  Every case must preserve the four ABcast properties and the
// generic DPU properties for the surviving stacks.
//
// This is the adversarial companion to the targeted scenarios in
// repl_abcast_test.cpp: instead of hand-picked corner cases it samples the
// schedule space, so regressions in rare interleavings show up as a seed
// number that reproduces them deterministically.
#include <gtest/gtest.h>

#include "common/repl_rig.hpp"

namespace dpu {
namespace {

using testing::ReplRig;

struct ChaosCase {
  std::uint64_t seed;
  std::size_t n;
  double drop;
  int switches;
  bool crash_one;
};

std::string chaos_name(const ::testing::TestParamInfo<ChaosCase>& info) {
  const ChaosCase& c = info.param;
  return "seed" + std::to_string(c.seed) + "_n" + std::to_string(c.n) +
         "_drop" + std::to_string(static_cast<int>(c.drop * 100)) + "_sw" +
         std::to_string(c.switches) + (c.crash_one ? "_crash" : "");
}

class SwitchChaosTest : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(SwitchChaosTest, PropertiesSurviveRandomSchedules) {
  const ChaosCase& c = GetParam();
  SimConfig config{.num_stacks = c.n, .seed = c.seed};
  config.net.drop_probability = c.drop;
  ReplRig rig(config);

  Rng schedule_rng(c.seed * 7919);
  const char* protocols[] = {"abcast.ct", "abcast.seq", "abcast.token"};

  // Load: each stack sends 40 messages at randomized times in [0, 4s).
  for (NodeId i = 0; i < c.n; ++i) {
    for (int k = 0; k < 40; ++k) {
      const TimePoint at = static_cast<TimePoint>(
          schedule_rng.uniform_u64(4ull * kSecond));
      rig.send_at(at, i, "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }
  // Random switch schedule in [0.5s, 3.5s).  Runs with a crash stick to the
  // fault-tolerant target: SEQ/TOKEN are failure-free demo protocols (their
  // critical node dying stalls them — see seq_abcast.hpp), so scheduling
  // them together with a crash would test outside their fault model.
  const std::uint64_t target_choices = c.crash_one ? 1 : 3;
  for (int s = 0; s < c.switches; ++s) {
    const TimePoint at =
        500 * kMillisecond +
        static_cast<TimePoint>(schedule_rng.uniform_u64(3ull * kSecond));
    const NodeId initiator =
        static_cast<NodeId>(schedule_rng.uniform_u64(c.n));
    const char* target = protocols[schedule_rng.uniform_u64(target_choices)];
    rig.switch_at(at, initiator, target);
  }
  // Optional crash of a random non-zero stack (keep a majority alive).
  std::set<NodeId> crashed;
  if (c.crash_one && c.n >= 4) {
    const NodeId victim =
        1 + static_cast<NodeId>(schedule_rng.uniform_u64(c.n - 1));
    const TimePoint at =
        kSecond + static_cast<TimePoint>(
                      schedule_rng.uniform_u64(2ull * kSecond));
    crashed.insert(victim);
    rig.world.at(at, [&rig, victim]() { rig.world.crash(victim); });
  }

  rig.world.run_for(120 * kSecond);

  auto report = rig.audit.check(c.n, crashed);
  EXPECT_TRUE(report.ok) << "seed " << c.seed << ": " << report.summary();
  // All surviving stacks converged on the same protocol & version.
  NodeId ref = kNoNode;
  for (NodeId i = 0; i < c.n; ++i) {
    if (crashed.count(i) != 0) continue;
    if (ref == kNoNode) {
      ref = i;
      continue;
    }
    EXPECT_EQ(rig.repl[i]->seq_number(), rig.repl[ref]->seq_number())
        << "stacks " << ref << "/" << i;
    EXPECT_EQ(rig.repl[i]->current_protocol(),
              rig.repl[ref]->current_protocol());
  }
  rig.expect_generic_properties_ok();
}

std::vector<ChaosCase> make_cases() {
  std::vector<ChaosCase> cases;
  // Failure-free, lossless sweep.
  for (std::uint64_t seed : {1001, 1002, 1003, 1004}) {
    cases.push_back({seed, 3, 0.0, 2, false});
  }
  // Lossy sweep.
  for (std::uint64_t seed : {2001, 2002, 2003}) {
    cases.push_back({seed, 3, 0.08, 2, false});
  }
  // Larger groups with a crash.
  for (std::uint64_t seed : {3001, 3002, 3003}) {
    cases.push_back({seed, 5, 0.03, 2, true});
  }
  // Many switches back to back.
  for (std::uint64_t seed : {4001, 4002}) {
    cases.push_back({seed, 3, 0.0, 5, false});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Schedules, SwitchChaosTest,
                         ::testing::ValuesIn(make_cases()), chaos_name);

}  // namespace
}  // namespace dpu
