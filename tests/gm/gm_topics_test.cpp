// Tests for the TopicMux and GM modules, including the paper's headline
// dependent-protocol claim: GM (which requires the abcast service) keeps
// delivering consistent views while the ABcast protocol underneath it is
// replaced on-the-fly.
#include "gm/gm.hpp"

#include <gtest/gtest.h>

#include "app/kv_store.hpp"
#include "app/stack_builder.hpp"
#include "sim/sim_world.hpp"

namespace dpu {
namespace {

struct Rig {
  explicit Rig(SimConfig config,
               StandardStackOptions options = StandardStackOptions{})
      : library(make_standard_library(options)), world(config, &library) {
    for (NodeId i = 0; i < world.size(); ++i) {
      stacks.push_back(build_standard_stack(world.stack(i), options));
    }
  }

  ProtocolLibrary library;
  SimWorld world;
  std::vector<StandardStack> stacks;
};

class RecordingGmListener final : public GmListener {
 public:
  void on_view(const View& view) override { views.push_back(view); }
  std::vector<View> views;
};

TEST(Topics, PublishSubscribeRoundTrip) {
  Rig rig(SimConfig{.num_stacks = 3, .seed = 1});
  std::vector<std::vector<std::string>> got(3);
  for (NodeId i = 0; i < 3; ++i) {
    rig.stacks[i].topics->subscribe(
        "chat", [&got, i](NodeId, const Bytes& p) {
          got[i].push_back(to_string(p));
        });
  }
  rig.world.at_node(kMillisecond, 0, [&]() {
    rig.stacks[0].topics->publish("chat", to_bytes("hello"));
    rig.stacks[0].topics->publish("other", to_bytes("noise"));
    rig.stacks[0].topics->publish("chat", to_bytes("world"));
  });
  rig.world.run_for(kSecond);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(got[i], (std::vector<std::string>{"hello", "world"}))
        << "stack " << i;
  }
}

TEST(Topics, TopicsIsolateSubscribers) {
  Rig rig(SimConfig{.num_stacks = 2, .seed = 2});
  int chat = 0, kv = 0;
  rig.stacks[1].topics->subscribe("a", [&](NodeId, const Bytes&) { ++chat; });
  rig.stacks[1].topics->subscribe("b", [&](NodeId, const Bytes&) { ++kv; });
  rig.world.at_node(0, 0, [&]() {
    rig.stacks[0].topics->publish("a", to_bytes("1"));
    rig.stacks[0].topics->publish("b", to_bytes("2"));
    rig.stacks[0].topics->publish("a", to_bytes("3"));
  });
  rig.world.run_for(kSecond);
  EXPECT_EQ(chat, 2);
  EXPECT_EQ(kv, 1);
}

TEST(Topics, LateSubscriberReceivesBufferedInOrder) {
  Rig rig(SimConfig{.num_stacks = 2, .seed = 3});
  rig.world.at_node(0, 0, [&]() {
    rig.stacks[0].topics->publish("late", to_bytes("m1"));
    rig.stacks[0].topics->publish("late", to_bytes("m2"));
  });
  rig.world.run_for(kSecond);
  std::vector<std::string> got;
  rig.stacks[1].topics->subscribe(
      "late", [&](NodeId, const Bytes& p) { got.push_back(to_string(p)); });
  EXPECT_EQ(got, (std::vector<std::string>{"m1", "m2"}));
}

TEST(Gm, InitialViewIsFullWorld) {
  Rig rig(SimConfig{.num_stacks = 4, .seed = 4});
  rig.world.run_for(100 * kMillisecond);
  for (NodeId i = 0; i < 4; ++i) {
    const View& v = rig.stacks[i].gm->gm_view();
    EXPECT_EQ(v.id, 0u);
    EXPECT_EQ(v.members, (std::vector<NodeId>{0, 1, 2, 3}));
  }
}

TEST(Gm, MembershipOpsInstallConsistentViews) {
  Rig rig(SimConfig{.num_stacks = 4, .seed = 5});
  RecordingGmListener listener;
  rig.world.stack(2).listen<GmListener>(kGmService, &listener, nullptr);

  rig.world.at_node(10 * kMillisecond, 0,
                    [&]() { rig.stacks[0].gm->gm_leave(3); });
  rig.world.at_node(20 * kMillisecond, 1,
                    [&]() { rig.stacks[1].gm->gm_exclude(2); });
  rig.world.at_node(30 * kMillisecond, 0,
                    [&]() { rig.stacks[0].gm->gm_join(3); });
  rig.world.run_for(2 * kSecond);

  // All stacks installed the same view history.
  const auto& h0 = rig.stacks[0].gm->history();
  ASSERT_EQ(h0.size(), 4u);  // v0..v3
  EXPECT_EQ(h0.back().members, (std::vector<NodeId>{0, 1, 3}));
  for (NodeId i = 1; i < 4; ++i) {
    const auto& hi = rig.stacks[i].gm->history();
    ASSERT_EQ(hi.size(), h0.size()) << "stack " << i;
    for (std::size_t k = 0; k < h0.size(); ++k) {
      EXPECT_EQ(hi[k].id, h0[k].id);
      EXPECT_EQ(hi[k].members, h0[k].members) << "stack " << i << " view " << k;
    }
  }
  EXPECT_EQ(listener.views.size(), 3u);  // three changes after v0
}

TEST(Gm, RedundantOpsDoNotCreateViews) {
  Rig rig(SimConfig{.num_stacks = 3, .seed = 6});
  rig.world.at_node(10 * kMillisecond, 0, [&]() {
    rig.stacks[0].gm->gm_join(1);     // already a member: no-op
    rig.stacks[0].gm->gm_exclude(9);  // not a member: no-op
  });
  rig.world.run_for(kSecond);
  EXPECT_EQ(rig.stacks[0].gm->history().size(), 1u);
}

TEST(Gm, ConcurrentOpsTotallyOrdered) {
  Rig rig(SimConfig{.num_stacks = 5, .seed = 7});
  // All five stacks mutate membership at the same instant.
  for (NodeId i = 0; i < 5; ++i) {
    rig.world.at_node(kMillisecond, i, [&rig, i]() {
      if (i % 2 == 0) {
        rig.stacks[i].gm->gm_leave((i + 1) % 5);
      } else {
        rig.stacks[i].gm->gm_exclude((i + 2) % 5);
      }
    });
  }
  rig.world.run_for(3 * kSecond);
  const auto& h0 = rig.stacks[0].gm->history();
  for (NodeId i = 1; i < 5; ++i) {
    const auto& hi = rig.stacks[i].gm->history();
    ASSERT_EQ(hi.size(), h0.size()) << "stack " << i;
    for (std::size_t k = 0; k < h0.size(); ++k) {
      EXPECT_EQ(hi[k].members, h0[k].members) << "stack " << i;
    }
  }
}

TEST(Gm, KeepsWorkingDuringAbcastReplacement) {
  // The paper's abstract claim: protocols that depend on the updated
  // protocol provide service correctly while the update takes place.  GM
  // ops straddle a CT->SEQ switch; view histories must stay identical.
  Rig rig(SimConfig{.num_stacks = 3, .seed = 8});
  for (int k = 0; k < 10; ++k) {
    rig.world.at_node((50 + k * 100) * kMillisecond, static_cast<NodeId>(k % 3),
                      [&rig, k]() {
                        NodeId target = static_cast<NodeId>((k * 7 + 1) % 3);
                        if (k % 2 == 0) {
                          rig.stacks[0].gm->gm_leave(target);
                        } else {
                          rig.stacks[1].gm->gm_join(target);
                        }
                      });
  }
  rig.world.at_node(500 * kMillisecond, 2, [&]() {
    rig.stacks[2].repl->change_abcast("abcast.seq");
  });
  rig.world.run_for(20 * kSecond);

  ASSERT_EQ(rig.stacks[0].repl->seq_number(), 1u);
  const auto& h0 = rig.stacks[0].gm->history();
  EXPECT_GT(h0.size(), 1u);
  for (NodeId i = 1; i < 3; ++i) {
    const auto& hi = rig.stacks[i].gm->history();
    ASSERT_EQ(hi.size(), h0.size()) << "stack " << i;
    for (std::size_t k = 0; k < h0.size(); ++k) {
      EXPECT_EQ(hi[k].members, h0[k].members)
          << "stack " << i << " diverged at view " << k
          << " across the protocol switch";
    }
  }
}

TEST(KvStore, ReplicasConvergeAndFingerprintsMatch) {
  Rig rig(SimConfig{.num_stacks = 3, .seed = 9});
  std::vector<KvStoreModule*> kv;
  for (NodeId i = 0; i < 3; ++i) {
    kv.push_back(KvStoreModule::create(rig.world.stack(i)));
    rig.world.stack(i).start_all();
  }
  for (int k = 0; k < 20; ++k) {
    rig.world.at_node((10 + k * 10) * kMillisecond,
                      static_cast<NodeId>(k % 3), [&kv, k]() {
                        kv[static_cast<std::size_t>(k % 3)]->kv_put(
                            "key" + std::to_string(k % 7),
                            "val" + std::to_string(k));
                      });
  }
  rig.world.at_node(300 * kMillisecond, 0, [&]() { kv[0]->kv_del("key3"); });
  rig.world.run_for(5 * kSecond);

  EXPECT_EQ(kv[0]->ops_applied(), 21u);
  EXPECT_EQ(kv[0]->kv_get("key3"), std::nullopt);
  for (NodeId i = 1; i < 3; ++i) {
    EXPECT_EQ(kv[i]->fingerprint(), kv[0]->fingerprint()) << "stack " << i;
    EXPECT_EQ(kv[i]->size(), kv[0]->size());
  }
}

TEST(KvStore, ConsistentAcrossProtocolSwitch) {
  Rig rig(SimConfig{.num_stacks = 3, .seed = 10});
  std::vector<KvStoreModule*> kv;
  for (NodeId i = 0; i < 3; ++i) {
    kv.push_back(KvStoreModule::create(rig.world.stack(i)));
    rig.world.stack(i).start_all();
  }
  for (int k = 0; k < 60; ++k) {
    rig.world.at_node((10 + k * 20) * kMillisecond,
                      static_cast<NodeId>(k % 3), [&kv, k]() {
                        kv[static_cast<std::size_t>(k % 3)]->kv_put(
                            "k" + std::to_string(k), "v" + std::to_string(k));
                      });
  }
  rig.world.at_node(600 * kMillisecond, 1, [&]() {
    rig.stacks[1].repl->change_abcast("abcast.token");
  });
  rig.world.run_for(30 * kSecond);

  EXPECT_EQ(kv[0]->ops_applied(), 60u);
  for (NodeId i = 1; i < 3; ++i) {
    EXPECT_EQ(kv[i]->fingerprint(), kv[0]->fingerprint())
        << "replica " << i << " diverged across the switch";
  }
}

}  // namespace
}  // namespace dpu
