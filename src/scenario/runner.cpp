#include "scenario/runner.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "abcast/audit.hpp"
#include "app/stack_builder.hpp"
#include "app/workload.hpp"
#include "repl/baseline_graceful.hpp"
#include "repl/baseline_maestro.hpp"
#include "repl/repl_abcast.hpp"
#include "repl/repl_consensus.hpp"
#include "sim/sim_world.hpp"

namespace dpu::scenario {

Duration ScenarioResult::max_switch_downtime() const {
  Duration worst = 0;
  for (const auto& [from, to] : switch_windows) {
    worst = std::max(worst, to - from);
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Switch-window extraction
// ---------------------------------------------------------------------------

std::vector<std::pair<TimePoint, TimePoint>> extract_switch_windows(
    const std::vector<TraceEvent>& events, std::size_t n) {
  auto has_prefix = [](const std::string& s, const char* prefix) {
    return s.rfind(prefix, 0) == 0;
  };
  std::vector<TimePoint> requests;
  std::vector<std::vector<TimePoint>> done_times;  // per request, per stack
  for (const TraceEvent& e : events) {
    if (e.kind != TraceKind::kCustom) continue;
    if (has_prefix(e.detail, ReplAbcastModule::kTraceChangeRequested) ||
        has_prefix(e.detail, ReplConsensusModule::kTraceChangeRequested)) {
      requests.push_back(e.time);
      done_times.emplace_back();
    } else if (has_prefix(e.detail, ReplAbcastModule::kTraceSwitchDone) ||
               has_prefix(e.detail,
                          ReplConsensusModule::kTraceVersionCreated) ||
               e.detail == MaestroSwitchModule::kTraceUnblocked ||
               e.detail == GracefulSwitchModule::kTraceActivated) {
      if (!done_times.empty()) done_times.back().push_back(e.time);
    } else if (e.detail == MaestroSwitchModule::kTraceBlocked ||
               e.detail == GracefulSwitchModule::kTraceDeactivated) {
      // Baseline runs have no explicit request marker; open a window at the
      // first per-switch event.
      if (done_times.empty() || done_times.back().size() >= n) {
        requests.push_back(e.time);
        done_times.emplace_back();
      }
    }
  }
  std::vector<std::pair<TimePoint, TimePoint>> windows;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    TimePoint end = requests[i];
    for (TimePoint t : done_times[i]) end = std::max(end, t);
    windows.emplace_back(requests[i], end);
  }
  return windows;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

namespace {

void append(PropertyReport& into, const PropertyReport& from) {
  for (const std::string& v : from.violations) into.fail(v);
}

/// The communication substrate shared by every mechanism that composes its
/// own replaceable layer (build_standard_stack covers kNone/kRepl).
/// Returns the rp2p module so the runner can harvest transport counters.
Rp2pModule* install_substrate(Stack& stack,
                              const StandardStackOptions& options) {
  UdpModule::create(stack);
  Rp2pModule* rp2p = Rp2pModule::create(stack, kRp2pService, options.rp2p);
  RbcastModule::create(stack, kRbcastService, options.rbcast);
  FdModule::create(stack, kFdService, options.fd);
  return rp2p;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec, std::uint64_t seed,
                            const RunOptions& options) {
  const std::vector<std::string> problems = spec.validate();
  if (!problems.empty()) {
    std::string what = "scenario '" + spec.name + "' is invalid:";
    for (const std::string& p : problems) what += "\n  - " + p;
    throw std::invalid_argument(what);
  }

  // ---- World assembly -----------------------------------------------------

  StandardStackOptions stack_options;
  stack_options.with_gm = false;
  stack_options.with_replacement_layer = spec.mechanism == Mechanism::kRepl;
  if (spec.mechanism == Mechanism::kReplConsensus) {
    // The replaceable layer is consensus; CT-ABcast rides on the facade.
    stack_options.abcast_protocol = CtAbcastModule::kProtocolName;
  } else {
    stack_options.abcast_protocol = spec.initial_protocol;
  }
  ProtocolLibrary library = make_standard_library(stack_options);

  TraceRecorder trace_recorder;
  SimConfig sim;
  sim.num_stacks = spec.n;
  sim.seed = seed;
  sim.net.drop_probability = spec.base_drop;
  sim.net.duplicate_probability = spec.base_duplicate;
  sim.stack_cost.service_hop_cost = spec.hop_cost;
  sim.stack_cost.module_create_cost = spec.module_create_cost;
  SimWorld world(sim, &library, &trace_recorder);

  ScenarioResult result;
  result.scenario = spec.name;
  result.seed = seed;
  result.collector = std::make_unique<LatencyCollector>(options.bucket_width);

  AbcastAudit audit;
  std::vector<std::unique_ptr<AbcastAudit::Listener>> audit_listeners;
  std::vector<std::unique_ptr<LatencyProbe>> probes;
  std::vector<WorkloadModule*> workloads;
  std::vector<ReplAbcastModule*> repl(spec.n, nullptr);
  std::vector<ReplConsensusModule*> repl_cons(spec.n, nullptr);
  std::vector<MaestroSwitchModule*> maestro(spec.n, nullptr);
  std::vector<GracefulSwitchModule*> graceful(spec.n, nullptr);
  std::vector<Rp2pModule*> rp2p(spec.n, nullptr);

  for (NodeId i = 0; i < spec.n; ++i) {
    Stack& stack = world.stack(i);
    switch (spec.mechanism) {
      case Mechanism::kNone:
      case Mechanism::kRepl: {
        StandardStack built = build_standard_stack(stack, stack_options);
        repl[i] = built.repl;
        rp2p[i] = built.rp2p;
        break;
      }
      case Mechanism::kReplConsensus: {
        rp2p[i] = install_substrate(stack, stack_options);
        ReplConsensusModule::Config rc;
        rc.initial_protocol = spec.initial_protocol;
        repl_cons[i] = ReplConsensusModule::create(stack, rc);
        CtAbcastModule::create(stack);
        break;
      }
      case Mechanism::kMaestro: {
        rp2p[i] = install_substrate(stack, stack_options);
        MaestroSwitchModule::Config mc;
        mc.initial_protocol = spec.initial_protocol;
        maestro[i] = MaestroSwitchModule::create(stack, mc);
        break;
      }
      case Mechanism::kGraceful: {
        rp2p[i] = install_substrate(stack, stack_options);
        CtConsensusModule::create(stack);
        GracefulSwitchModule::Config gc;
        gc.initial_protocol = spec.initial_protocol;
        graceful[i] = GracefulSwitchModule::create(stack, gc);
        break;
      }
    }

    probes.push_back(
        std::make_unique<LatencyProbe>(*result.collector, stack.host()));
    stack.listen<AbcastListener>(kAbcastService, probes.back().get(), nullptr);
    if (options.with_audit) {
      audit_listeners.push_back(
          std::make_unique<AbcastAudit::Listener>(audit, i));
      stack.listen<AbcastListener>(kAbcastService, audit_listeners.back().get(),
                                   nullptr);
    }

    WorkloadConfig wc;
    wc.rate_per_second = spec.workload.rate_per_stack;
    wc.message_size = spec.workload.message_size;
    wc.poisson = spec.workload.poisson;
    wc.start_after = spec.workload.start_after;
    wc.stop_after = spec.workload.stop_after > 0 ? spec.workload.stop_after
                                                 : spec.duration;
    if (options.with_audit) {
      wc.on_send = [&audit, i](const Bytes& payload) {
        audit.record_sent(i, payload);
      };
    }
    workloads.push_back(WorkloadModule::create(stack, wc));
    stack.start_all();
  }

  // ---- Fault schedule -----------------------------------------------------

  for (const CrashFault& c : spec.crashes) {
    world.at(c.at, [&world, c]() { world.crash(c.node); });
  }

  if (!spec.partitions.empty()) {
    // Active partitions as isolated-side masks; a packet passes when no
    // active partition separates its endpoints.  Shared state lives on the
    // heap because the filter closure outlives this scope's loop variables.
    auto active = std::make_shared<std::vector<std::vector<bool>>>();
    world.set_link_filter([active](NodeId src, NodeId dst) {
      for (const std::vector<bool>& side : *active) {
        if (side[src] != side[dst]) return false;
      }
      return true;
    });
    for (const PartitionFault& p : spec.partitions) {
      std::vector<bool> mask(spec.n, false);
      for (NodeId node : p.isolated) mask[node] = true;
      world.at(p.from, [active, mask]() { active->push_back(mask); });
      world.at(p.until, [active, mask]() {
        auto it = std::find(active->begin(), active->end(), mask);
        if (it != active->end()) active->erase(it);
      });
    }
  }

  for (const LossWindow& w : spec.loss_windows) {
    world.at(w.from, [&world, w]() { world.set_loss(w.drop, w.duplicate); });
    world.at(w.until,
             [&world, drop = spec.base_drop, dup = spec.base_duplicate]() {
               world.set_loss(drop, dup);
             });
  }

  // ---- Update plan --------------------------------------------------------

  for (const UpdateAction& u : spec.updates) {
    world.at_node(u.at, u.initiator, [&, u]() {
      if (world.crashed(u.initiator)) return;
      switch (spec.mechanism) {
        case Mechanism::kRepl:
          repl[u.initiator]->change_abcast(u.protocol);
          break;
        case Mechanism::kReplConsensus:
          repl_cons[u.initiator]->change_consensus(u.protocol);
          break;
        case Mechanism::kMaestro:
          maestro[u.initiator]->change_stack(u.protocol);
          break;
        case Mechanism::kGraceful:
          graceful[u.initiator]->change_adaptation(u.protocol);
          break;
        case Mechanism::kNone:
          break;  // validate() rejects update plans without a mechanism
      }
    });
  }

  // ---- Run ----------------------------------------------------------------

  if (!world.run_until(spec.duration + spec.drain, options.max_events)) {
    result.generic_report.fail("event budget exhausted before quiescence");
  }
  result.total_virtual_time = world.now();

  // ---- Harvest ------------------------------------------------------------

  result.crashed = world.crashed_set();
  result.packets_sent = world.packets_sent();
  result.packets_dropped = world.packets_dropped();
  for (NodeId i = 0; i < spec.n; ++i) {
    result.messages_sent += workloads[i]->sent();
    result.deliveries += probes[i]->deliveries();
    if (rp2p[i] != nullptr) {
      result.retransmissions += rp2p[i]->retransmissions();
      result.acks_sent += rp2p[i]->acks_sent();
    }
    if (repl[i] != nullptr) {
      result.reissued += repl[i]->reissued_total();
      result.stale_discarded += repl[i]->stale_discarded();
    }
    if (repl_cons[i] != nullptr) {
      result.decisions_delivered += repl_cons[i]->decisions_delivered();
    }
    if (maestro[i] != nullptr) {
      result.app_blocked_total += maestro[i]->total_blocked_time();
      result.calls_queued += maestro[i]->calls_queued_while_blocked();
    }
    if (graceful[i] != nullptr) {
      result.app_blocked_total += graceful[i]->total_queueing_window();
      result.calls_queued += graceful[i]->calls_queued_during_switch();
    }
  }

  const StreamId abcast_stream =
      fnv1a64(std::string(kAbcastService) + "/stream");
  const std::string planned_final =
      spec.updates.empty() ? spec.initial_protocol
                           : spec.updates.back().protocol;
  for (NodeId i = 0; i < spec.n; ++i) {
    if (result.crashed.count(i) != 0) {
      result.final_protocol.emplace_back();
    } else if (repl[i] != nullptr) {
      result.final_protocol.push_back(repl[i]->current_protocol());
    } else if (repl_cons[i] != nullptr) {
      result.final_protocol.push_back(repl_cons[i]->protocol_of(
          repl_cons[i]->stream_version(abcast_stream)));
    } else {
      // Baselines expose no "current protocol" getter; report the plan's
      // last target.
      result.final_protocol.push_back(planned_final);
    }
  }

  result.trace = trace_recorder.events();
  result.switch_windows = extract_switch_windows(result.trace, spec.n);

  // Retransmission regression gate (crash-storm scenarios): a bounded
  // count proves crashed stacks stop attracting retransmissions.
  if (spec.max_retransmissions > 0 &&
      result.retransmissions > spec.max_retransmissions) {
    result.generic_report.fail(
        "retransmissions " + std::to_string(result.retransmissions) +
        " exceed the spec bound " +
        std::to_string(spec.max_retransmissions));
  }

  // ---- Verdicts -----------------------------------------------------------

  if (options.with_audit) {
    result.abcast_report = audit.check(spec.n, result.crashed);

    // Generic DPU properties (§3), evaluated for the correct stacks: events
    // of crashed stacks are excluded from well-formedness (a crash may
    // legitimately strand a queued call forever).
    std::vector<TraceEvent> correct_events;
    correct_events.reserve(result.trace.size());
    for (const TraceEvent& e : result.trace) {
      if (result.crashed.count(e.node) == 0) correct_events.push_back(e);
    }
    append(result.generic_report,
           check_weak_stack_well_formedness(correct_events));
    if (spec.mechanism != Mechanism::kNone) {
      append(result.generic_report,
             check_protocol_operationability(result.trace, spec.n,
                                             result.crashed));
    }
    for (NodeId i = 0; i < spec.n; ++i) {
      if (result.crashed.count(i) != 0) continue;
      const std::size_t pending = world.stack(i).pending_call_count();
      if (pending != 0) {
        result.generic_report.fail(
            "stack " + std::to_string(i) + ": " + std::to_string(pending) +
            " service call(s) still pending at end of run");
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// JSON result record
// ---------------------------------------------------------------------------

Json ScenarioResult::to_json() const {
  Json j = Json::object();
  j.set("scenario", scenario);
  j.set("seed", seed);
  j.set("ok", ok());

  Json verdicts = Json::object();
  verdicts.set("abcast_ok", abcast_report.ok);
  verdicts.set("generic_ok", generic_report.ok);
  Json violations = Json::array();
  for (const std::string& v : abcast_report.violations) violations.push(v);
  for (const std::string& v : generic_report.violations) violations.push(v);
  verdicts.set("violations", std::move(violations));
  j.set("audit", std::move(verdicts));

  Json latency = Json::object();
  Samples& samples = collector->all();
  latency.set("samples", samples.count());
  latency.set("mean_us", samples.mean());
  latency.set("p50_us", samples.percentile(50.0));
  latency.set("p90_us", samples.percentile(90.0));
  latency.set("p99_us", samples.percentile(99.0));
  latency.set("max_us", samples.max());
  j.set("latency", std::move(latency));

  Json sw = Json::object();
  sw.set("count", switch_windows.size());
  Json windows = Json::array();
  for (const auto& [from, to] : switch_windows) {
    Json w = Json::object();
    w.set("requested_ns", from);
    w.set("completed_ns", to);
    w.set("downtime_ms", to_millis(to - from));
    windows.push(std::move(w));
  }
  sw.set("windows", std::move(windows));
  sw.set("max_downtime_ms", to_millis(max_switch_downtime()));
  j.set("switch", std::move(sw));

  Json counts = Json::object();
  counts.set("sent", messages_sent);
  counts.set("delivered", deliveries);
  counts.set("reissued", reissued);
  counts.set("stale_discarded", stale_discarded);
  counts.set("decisions_delivered", decisions_delivered);
  counts.set("app_blocked_ms", to_millis(app_blocked_total));
  counts.set("calls_queued", calls_queued);
  counts.set("packets_sent", packets_sent);
  counts.set("packets_dropped", packets_dropped);
  counts.set("retransmissions", retransmissions);
  counts.set("acks_sent", acks_sent);
  counts.set("virtual_time_ns", total_virtual_time);
  j.set("counts", std::move(counts));

  Json crashed_list = Json::array();
  for (NodeId node : crashed) crashed_list.push(node);
  j.set("crashed", std::move(crashed_list));

  Json finals = Json::array();
  for (const std::string& p : final_protocol) finals.push(p);
  j.set("final_protocol", std::move(finals));
  return j;
}

}  // namespace dpu::scenario
