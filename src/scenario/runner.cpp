#include "scenario/runner.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "abcast/audit.hpp"
#include "app/policy.hpp"
#include "app/stack_builder.hpp"
#include "app/workload.hpp"
#include "repl/baseline_graceful.hpp"
#include "repl/baseline_maestro.hpp"
#include "repl/repl_abcast.hpp"
#include "repl/repl_consensus.hpp"
#include "repl/repl_gm.hpp"
#include "repl/repl_rbcast.hpp"
#include "repl/update.hpp"
#include "rt/rt_world.hpp"
#include "runtime/world.hpp"
#include "scenario/compose.hpp"
#include "sim/sim_world.hpp"

namespace dpu::scenario {

Duration ScenarioResult::max_switch_downtime() const {
  Duration worst = 0;
  for (const auto& [from, to] : switch_windows) {
    worst = std::max(worst, to - from);
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Switch-window extraction
// ---------------------------------------------------------------------------

namespace {

/// Splits an "update-requested:<service>:<protocol>[:...]" detail string
/// after `marker`; false when the detail is some other marker.
bool parse_update_marker(const std::string& detail, const char* marker,
                         std::string& service, std::string& protocol) {
  const std::string prefix = std::string(marker) + ":";
  if (detail.rfind(prefix, 0) != 0) return false;
  const std::size_t service_end = detail.find(':', prefix.size());
  if (service_end == std::string::npos) return false;
  service = detail.substr(prefix.size(), service_end - prefix.size());
  const std::size_t protocol_end = detail.find(':', service_end + 1);
  protocol = detail.substr(service_end + 1,
                           protocol_end == std::string::npos
                               ? std::string::npos
                               : protocol_end - service_end - 1);
  return true;
}

}  // namespace

std::vector<UpdateOutcome> extract_update_outcomes(
    const std::vector<TraceEvent>& events) {
  std::vector<UpdateOutcome> outcomes;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceKind::kCustom) continue;
    std::string service;
    std::string protocol;
    if (parse_update_marker(e.detail, UpdateManagerModule::kTraceRequested,
                            service, protocol)) {
      UpdateOutcome o;
      o.service = std::move(service);
      o.protocol = std::move(protocol);
      o.requested = e.time;
      o.converged = e.time;
      outcomes.push_back(std::move(o));
    } else if (parse_update_marker(e.detail, UpdateManagerModule::kTraceDone,
                                   service, protocol)) {
      // Attribute to the latest not-younger request of the same service;
      // completions that replay before any request (a recovered stack
      // catching up on a pre-crash switch) have no window to extend.
      for (auto it = outcomes.rbegin(); it != outcomes.rend(); ++it) {
        if (it->service != service || it->requested > e.time) continue;
        it->converged = std::max(it->converged, e.time);
        ++it->completions;
        break;
      }
    }
  }
  return outcomes;
}

std::vector<std::pair<TimePoint, TimePoint>> extract_switch_windows(
    const std::vector<TraceEvent>& events, std::size_t n) {
  // Generic control-plane markers rule when present (every mechanism emits
  // them through the UpdateManagerModule).
  const std::vector<UpdateOutcome> outcomes = extract_update_outcomes(events);
  if (!outcomes.empty()) {
    std::vector<std::pair<TimePoint, TimePoint>> windows;
    windows.reserve(outcomes.size());
    for (const UpdateOutcome& o : outcomes) {
      windows.emplace_back(o.requested, o.converged);
    }
    return windows;
  }

  // Legacy per-mechanism markers (stacks composed without a manager).
  auto has_prefix = [](const std::string& s, const char* prefix) {
    return s.rfind(prefix, 0) == 0;
  };
  std::vector<TimePoint> requests;
  std::vector<std::vector<TimePoint>> done_times;  // per request, per stack
  for (const TraceEvent& e : events) {
    if (e.kind != TraceKind::kCustom) continue;
    if (has_prefix(e.detail, ReplAbcastModule::kTraceChangeRequested) ||
        has_prefix(e.detail, ReplConsensusModule::kTraceChangeRequested)) {
      requests.push_back(e.time);
      done_times.emplace_back();
    } else if (has_prefix(e.detail, ReplAbcastModule::kTraceSwitchDone) ||
               has_prefix(e.detail,
                          ReplConsensusModule::kTraceVersionCreated) ||
               e.detail == MaestroSwitchModule::kTraceUnblocked ||
               e.detail == GracefulSwitchModule::kTraceActivated) {
      if (!done_times.empty()) done_times.back().push_back(e.time);
    } else if (e.detail == MaestroSwitchModule::kTraceBlocked ||
               e.detail == GracefulSwitchModule::kTraceDeactivated) {
      // Baseline runs have no explicit request marker; open a window at the
      // first per-switch event.
      if (done_times.empty() || done_times.back().size() >= n) {
        requests.push_back(e.time);
        done_times.emplace_back();
      }
    }
  }
  std::vector<std::pair<TimePoint, TimePoint>> windows;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    TimePoint end = requests[i];
    for (TimePoint t : done_times[i]) end = std::max(end, t);
    windows.emplace_back(requests[i], end);
  }
  return windows;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

namespace {

void append(PropertyReport& into, const PropertyReport& from) {
  for (const std::string& v : from.violations) into.fail(v);
}

/// Audit tap on the abcast facade.  Records only workload (probe-stamped)
/// deliveries: with a GM layer composed, topic frames ride the same facade
/// but were never record_sent — auditing them would report phantom
/// delivered-never-sent violations.
struct ProbeAuditListener final : AbcastListener {
  AbcastAudit* audit = nullptr;
  NodeId node = 0;
  ProbeAuditListener(AbcastAudit& a, NodeId n) : audit(&a), node(n) {}
  void adeliver(NodeId /*sender*/, const Bytes& payload) override {
    if (ProbePayload::is_probe(payload)) audit->record_delivery(node, payload);
  }
};

/// Drives one scenario on an already-constructed world.  Everything here
/// speaks WorldControl; engine differences (determinism, drain style) are
/// confined to run_scenario below.
ScenarioResult run_on_world(WorldControl& world, const ScenarioSpec& spec,
                            std::uint64_t seed, const RunOptions& options,
                            const StandardStackOptions& stack_options,
                            TraceRecorder& trace_recorder) {
  ScenarioResult result;
  result.scenario = spec.name;
  result.seed = seed;
  result.collector = std::make_unique<LatencyCollector>(options.bucket_width);

  // One collector per node, merged into result.collector post-run in node
  // order: probes then write single-writer state on the sharded simulator,
  // and the fixed merge order keeps the float accumulation — and therefore
  // the result document — byte-identical at every shard count.
  std::vector<std::unique_ptr<LatencyCollector>> node_collectors;
  node_collectors.reserve(spec.n);
  for (NodeId i = 0; i < spec.n; ++i) {
    node_collectors.push_back(
        std::make_unique<LatencyCollector>(options.bucket_width));
  }

  AbcastAudit audit;
  std::vector<std::unique_ptr<ProbeAuditListener>> audit_listeners;
  std::vector<std::unique_ptr<LatencyProbe>> probes;
  std::vector<NodeModules> nodes(spec.n);
  std::vector<NodeAccum> accum(spec.n);
  std::vector<TimePoint> recovery_time(spec.n, -1);

  // ---- Composition ---------------------------------------------------------
  // The composition plan and the stack assembly live in scenario/compose.*:
  // the process-per-node agent (src/cluster) composes the very same stack
  // from the same spec, so the three engines cannot drift apart.
  const CompositionPlan plan = CompositionPlan::from_spec(spec);

  // One closure builds (and re-builds, after recovery) a stack.  `since` is
  // 0 at setup and the recovery time afterwards — it shifts the workload
  // window, which is configured relative to module start.
  auto compose = [&](NodeId i, TimePoint since) {
    Stack& stack = world.stack(i);
    ComposeHooks hooks;
    hooks.collector = node_collectors[i].get();
    if (options.with_audit) {
      audit_listeners.push_back(std::make_unique<ProbeAuditListener>(audit, i));
      hooks.extra_listener = audit_listeners.back().get();
      hooks.on_send = [&audit, i](const Bytes& payload) {
        audit.record_sent(i, payload);
      };
    }
    ComposedStack composed =
        compose_stack(stack, spec, plan, stack_options, since, hooks);
    nodes[i] = composed.modules;
    probes.push_back(std::move(composed.probe));
  };

  // Initial composition runs on the driver thread: on the simulator that is
  // the only thread; on rt the stack threads have not started yet, which is
  // exactly the window the engine documents as composition-safe.
  for (NodeId i = 0; i < spec.n; ++i) compose(i, 0);

  // ---- Fault schedule -----------------------------------------------------

  // A late join expands to a synthetic crash at 1ms plus the scheduled
  // recovery: the node's incarnation 0 dies (effectively) at the start and
  // the join rides the standard recovery path — same re-composition, same
  // state transfer, same audit treatment.
  std::vector<CrashFault> crashes = spec.crashes;
  std::vector<RecoverFault> recoveries = spec.recoveries;
  for (const LateJoin& lj : spec.late_joins) {
    crashes.push_back(CrashFault{kMillisecond, lj.node});
    recoveries.push_back(RecoverFault{lj.at, lj.node});
  }

  for (const CrashFault& c : crashes) {
    world.at(c.at, [&world, c]() { world.crash(c.node); });
  }

  for (const RecoverFault& rec : recoveries) {
    world.at(rec.at, [&, rec]() {
      if (!world.crashed(rec.node)) return;
      // Quiesce first: on rt this joins the dying loop thread, giving this
      // control thread a happens-before edge with its final counter writes
      // and delivery records (no-op on the simulator).  Only then harvest
      // the dead incarnation's counters and archive its audit log.
      world.quiesce_node(rec.node);
      harvest_modules(accum[rec.node], nodes[rec.node]);
      audit.record_recovered(rec.node);
      world.recover(rec.node);
      // Re-compose on the fresh stack — on the node's own executor, which
      // is where module code must run once the world is live.
      world.run_on_node(rec.node, [&, rec]() { compose(rec.node, rec.at); });
      recovery_time[rec.node] = rec.at;
    });
  }

  if (!spec.partitions.empty()) {
    // Active partitions as isolated-side masks; a packet passes when no
    // active partition separates its endpoints.  Shared state lives on the
    // heap because the filter closure outlives this scope's loop variables.
    auto active = std::make_shared<std::vector<std::vector<bool>>>();
    world.set_link_filter([active](NodeId src, NodeId dst) {
      for (const std::vector<bool>& side : *active) {
        if (side[src] != side[dst]) return false;
      }
      return true;
    });
    for (const PartitionFault& p : spec.partitions) {
      std::vector<bool> mask(spec.n, false);
      for (NodeId node : p.isolated) mask[node] = true;
      world.at(p.from, [active, mask]() { active->push_back(mask); });
      world.at(p.until, [active, mask]() {
        auto it = std::find(active->begin(), active->end(), mask);
        if (it != active->end()) active->erase(it);
      });
    }
  }

  for (const LossWindow& w : spec.loss_windows) {
    world.at(w.from, [&world, w]() {
      world.set_loss(w.drop, w.duplicate);
      for (const LinkOverride& o : w.link_overrides) {
        world.set_link_fault(
            o.src, o.dst,
            LinkFault{o.drop, o.duplicate, o.extra_latency});
      }
    });
    world.at(w.until, [&world, w, drop = spec.base_drop,
                       dup = spec.base_duplicate]() {
      world.set_loss(drop, dup);
      for (const LinkOverride& o : w.link_overrides) {
        world.set_link_fault(o.src, o.dst, std::nullopt);
      }
    });
  }

  // ---- Update plan --------------------------------------------------------

  // Every mechanism behind one call: the service-generic control plane.
  for (const UpdateAction& u : spec.updates) {
    world.at_node(u.at, u.initiator, [&, u]() {
      if (world.crashed(u.initiator)) return;
      nodes[u.initiator].update->request_update(u.target_service(),
                                                u.protocol);
    });
  }

  // ---- Run ----------------------------------------------------------------

  // rt quiescence probe: deliveries stable and no unacked reliable traffic
  // for a window longer than any silent catch-up stall.  State lives in the
  // closure; the engine polls it from the control thread during the drain.
  std::uint64_t last_deliveries = ~0ULL;
  TimePoint stable_since = -1;
  auto quiesced = [&]() -> bool {
    std::uint64_t deliveries = 0;
    std::size_t unacked = 0;
    // Traffic addressed to permanently crashed peers never acks (rp2p only
    // abandons it on recovery), so it must not block quiescence.
    const std::set<NodeId> crashed_now = world.crashed_set();
    for (NodeId i = 0; i < spec.n; ++i) {
      if (crashed_now.count(i) != 0) continue;
      world.run_on_node(i, [&]() {
        if (nodes[i].probe != nullptr) deliveries += nodes[i].probe->deliveries();
        if (nodes[i].rp2p != nullptr) {
          unacked += nodes[i].rp2p->unacked_excluding(crashed_now);
        }
      });
    }
    const TimePoint now = world.now();
    if (unacked != 0 || deliveries != last_deliveries) {
      last_deliveries = deliveries;
      stable_since = now;
      return false;
    }
    return now - stable_since >= options.rt_quiesce_window;
  };

  const bool is_rt = spec.engine == Engine::kRt;
  const TimePoint deadline =
      spec.duration + (is_rt ? std::min(spec.drain, options.rt_drain_cap)
                             : spec.drain);
  if (!world.run(spec.duration, deadline, options.max_events,
                 is_rt ? std::function<bool()>(quiesced)
                       : std::function<bool()>())) {
    result.generic_report.fail("event budget exhausted before quiescence");
  }
  result.total_virtual_time = world.now();

  // ---- Harvest ------------------------------------------------------------

  for (NodeId i = 0; i < spec.n; ++i) {
    result.collector->merge(*node_collectors[i]);
  }

  result.crashed = world.crashed_set();
  for (NodeId i = 0; i < spec.n; ++i) {
    if (recovery_time[i] >= 0 && result.crashed.count(i) == 0) {
      result.recovered.insert(i);
    }
  }
  result.packets_sent = world.packets_sent();
  result.packets_dropped = world.packets_dropped();
  for (NodeId i = 0; i < spec.n; ++i) {
    NodeAccum& acc = accum[i];
    harvest_modules(acc, nodes[i]);  // live incarnation joins the totals
    result.messages_sent += acc.sent;
    result.deliveries += acc.deliveries;
    result.retransmissions += acc.retransmissions;
    result.acks_sent += acc.acks_sent;
    result.reissued += acc.reissued;
    result.stale_discarded += acc.stale_discarded;
    result.decisions_delivered += acc.decisions_delivered;
    result.snapshots_served += acc.snapshots_served;
    result.state_replayed += acc.state_replayed;
    result.app_blocked_total += acc.app_blocked;
    result.calls_queued += acc.calls_queued;
    // Retained dedup state is a gauge, not a counter: only the live
    // incarnation's interval runs still occupy memory.
    if (result.crashed.count(i) == 0 && nodes[i].repl_rbcast != nullptr) {
      result.dedup_entries += nodes[i].repl_rbcast->dedup_entries();
    }
  }

  // The convergence witness: what the last-updated service actually runs on
  // each stack at end of run, as reported by its update mechanism.
  const std::string report_service =
      spec.updates.empty()
          ? (plan.managed.empty() ? std::string()
                                  : plan.managed.begin()->first)
          : spec.updates.back().target_service();
  const std::string planned_final =
      spec.updates.empty() ? spec.initial_protocol
                           : spec.updates.back().protocol;
  for (NodeId i = 0; i < spec.n; ++i) {
    const NodeModules& m = nodes[i];
    if (result.crashed.count(i) != 0) {
      result.final_protocol.emplace_back();
    } else if (!report_service.empty() && m.update != nullptr) {
      result.final_protocol.push_back(
          m.update->current_version(report_service).protocol);
    } else {
      // Nothing replaceable in this run: the composition's initial protocol
      // is, by construction, still running.
      result.final_protocol.push_back(planned_final);
    }
  }

  result.trace = trace_recorder.events();
  result.updates = extract_update_outcomes(result.trace);
  if (!result.updates.empty()) {
    // switch_windows is the outcomes projected to [request, converged] —
    // no second trace scan needed.
    result.switch_windows.reserve(result.updates.size());
    for (const UpdateOutcome& o : result.updates) {
      result.switch_windows.emplace_back(o.requested, o.converged);
    }
  } else {
    // Legacy per-mechanism markers (no manager-driven update ran).
    result.switch_windows = extract_switch_windows(result.trace, spec.n);
  }

  // Retransmission regression gate (crash-storm scenarios): a bounded
  // count proves crashed stacks stop attracting retransmissions.
  if (spec.max_retransmissions > 0 &&
      result.retransmissions > spec.max_retransmissions) {
    result.generic_report.fail(
        "retransmissions " + std::to_string(result.retransmissions) +
        " exceed the spec bound " +
        std::to_string(spec.max_retransmissions));
  }

  // ---- Verdicts -----------------------------------------------------------

  if (options.with_audit) {
    result.abcast_report = audit.check(spec.n, result.crashed);

    // Generic DPU properties (§3), evaluated for the correct stacks: events
    // of crashed stacks are excluded from well-formedness (a crash may
    // legitimately strand a queued call forever), and so are a recovered
    // stack's pre-recovery events (they belong to an incarnation the crash
    // killed mid-flight).
    std::vector<TraceEvent> correct_events;
    correct_events.reserve(result.trace.size());
    for (const TraceEvent& e : result.trace) {
      if (result.crashed.count(e.node) != 0) continue;
      if (e.node < spec.n && recovery_time[e.node] >= 0 &&
          e.time < recovery_time[e.node]) {
        continue;
      }
      correct_events.push_back(e);
    }
    append(result.generic_report,
           check_weak_stack_well_formedness(correct_events));
    if (spec.mechanism != Mechanism::kNone) {
      append(result.generic_report,
             check_protocol_operationability(result.trace, spec.n,
                                             result.crashed, recovery_time));
    }
    for (NodeId i = 0; i < spec.n; ++i) {
      if (result.crashed.count(i) != 0) continue;
      const std::size_t pending = world.stack(i).pending_call_count();
      if (pending != 0) {
        result.generic_report.fail(
            "stack " + std::to_string(i) + ": " + std::to_string(pending) +
            " service call(s) still pending at end of run");
      }
    }
  }
  return result;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec, std::uint64_t seed,
                            const RunOptions& options) {
  const std::vector<std::string> problems = spec.validate();
  if (!problems.empty()) {
    std::string what = "scenario '" + spec.name + "' is invalid:";
    for (const std::string& p : problems) what += "\n  - " + p;
    throw std::invalid_argument(what);
  }

  // A proc spec is executed by real OS processes: the supervisor/agent pair
  // in src/cluster owns the lifecycle (spawn, SIGKILL, respawn, harvest).
  // run_scenario stays the in-process entry point.
  if (spec.engine == Engine::kProc) {
    throw std::invalid_argument(
        "scenario '" + spec.name + "': engine \"proc\" runs as real "
        "processes; use cluster_campaign (ClusterSupervisor), or override "
        "the engine with --engine sim|rt");
  }

  // The runner composes stacks itself (run_on_world); stack_options only
  // carries the substrate tuning and the registry registration inputs.
  const StandardStackOptions stack_options = stack_options_for_spec(spec);
  ProtocolRegistry library = make_standard_library(stack_options);

  // Recovery/late-join scenarios need every managed layer to declare the
  // state-transfer capability: validate() enforces the mechanism-level
  // rules it can see, but whether a layer's replacement facade answers
  // state requests is a composition fact only the registry records.
  if (!spec.recoveries.empty() || !spec.late_joins.empty()) {
    for (const auto& [svc, m] : spec.managed_services()) {
      (void)m;
      if (!library.state_transfer(svc)) {
        throw std::invalid_argument(
            "scenario '" + spec.name + "': recoveries/late joins require "
            "the state_transfer capability on replaceable service '" + svc +
            "'");
      }
    }
  }
  TraceRecorder trace_recorder;

  if (spec.engine == Engine::kRt) {
    RtConfig rt;
    rt.num_stacks = spec.n;
    rt.seed = seed;
    rt.transport =
        spec.rt_sockets ? RtTransport::kUdpSockets : RtTransport::kInproc;
    rt.drop_probability = spec.base_drop;
    rt.duplicate_probability = spec.base_duplicate;
    RtWorld world(rt, &library, &trace_recorder);
    ScenarioResult result = run_on_world(world, spec, seed, options,
                                         stack_options, trace_recorder);
    result.socket_tx_syscalls = world.socket_tx_syscalls();
    result.socket_tx_datagrams = world.socket_tx_datagrams();
    result.socket_rx_syscalls = world.socket_rx_syscalls();
    result.socket_rx_datagrams = world.socket_rx_datagrams();
    return result;
  }

  SimConfig sim;
  sim.num_stacks = spec.n;
  sim.seed = seed;
  sim.shards = options.sim_shards != 0 ? options.sim_shards : spec.sim_shards;
  sim.net.drop_probability = spec.base_drop;
  sim.net.duplicate_probability = spec.base_duplicate;
  sim.stack_cost.service_hop_cost = spec.hop_cost;
  sim.stack_cost.module_create_cost = spec.module_create_cost;
  SimWorld world(sim, &library, &trace_recorder);
  ScenarioResult result = run_on_world(world, spec, seed, options,
                                       stack_options, trace_recorder);
  result.sim_window_barriers = world.window_barriers();
  result.sim_merge_batches = world.merge_batches();
  return result;
}

// ---------------------------------------------------------------------------
// JSON result record
// ---------------------------------------------------------------------------

Json ScenarioResult::to_json() const {
  Json j = Json::object();
  j.set("scenario", scenario);
  j.set("seed", seed);
  j.set("ok", ok());

  Json verdicts = Json::object();
  verdicts.set("abcast_ok", abcast_report.ok);
  verdicts.set("generic_ok", generic_report.ok);
  Json violations = Json::array();
  for (const std::string& v : abcast_report.violations) violations.push(v);
  for (const std::string& v : generic_report.violations) violations.push(v);
  verdicts.set("violations", std::move(violations));
  j.set("audit", std::move(verdicts));

  Json latency = Json::object();
  Samples& samples = collector->all();
  latency.set("samples", samples.count());
  latency.set("mean_us", samples.mean());
  latency.set("p50_us", samples.percentile(50.0));
  latency.set("p90_us", samples.percentile(90.0));
  latency.set("p99_us", samples.percentile(99.0));
  latency.set("max_us", samples.max());
  j.set("latency", std::move(latency));

  Json sw = Json::object();
  sw.set("count", switch_windows.size());
  Json windows = Json::array();
  for (const auto& [from, to] : switch_windows) {
    Json w = Json::object();
    w.set("requested_ns", from);
    w.set("completed_ns", to);
    w.set("downtime_ms", to_millis(to - from));
    windows.push(std::move(w));
  }
  sw.set("windows", std::move(windows));
  sw.set("max_downtime_ms", to_millis(max_switch_downtime()));
  j.set("switch", std::move(sw));

  // Per-update convergence: request -> last stack running the new version
  // (the perf gate tracks convergence_ms drift per update).
  Json update_list = Json::array();
  for (const UpdateOutcome& o : updates) {
    Json u = Json::object();
    u.set("service", o.service);
    u.set("protocol", o.protocol);
    u.set("requested_ns", o.requested);
    u.set("converged_ns", o.converged);
    u.set("convergence_ms", to_millis(o.convergence()));
    u.set("completions", o.completions);
    update_list.push(std::move(u));
  }
  j.set("updates", std::move(update_list));

  Json counts = Json::object();
  counts.set("sent", messages_sent);
  counts.set("delivered", deliveries);
  counts.set("reissued", reissued);
  counts.set("stale_discarded", stale_discarded);
  counts.set("decisions_delivered", decisions_delivered);
  counts.set("snapshots_served", snapshots_served);
  counts.set("state_replayed", state_replayed);
  counts.set("dedup_entries", dedup_entries);
  counts.set("app_blocked_ms", to_millis(app_blocked_total));
  counts.set("calls_queued", calls_queued);
  counts.set("packets_sent", packets_sent);
  counts.set("packets_dropped", packets_dropped);
  counts.set("retransmissions", retransmissions);
  counts.set("acks_sent", acks_sent);
  counts.set("socket_tx_syscalls", socket_tx_syscalls);
  counts.set("socket_tx_datagrams", socket_tx_datagrams);
  counts.set("socket_rx_syscalls", socket_rx_syscalls);
  counts.set("socket_rx_datagrams", socket_rx_datagrams);
  counts.set("sim_window_barriers", sim_window_barriers);
  counts.set("sim_merge_batches", sim_merge_batches);
  counts.set("virtual_time_ns", total_virtual_time);
  j.set("counts", std::move(counts));

  Json crashed_list = Json::array();
  for (NodeId node : crashed) crashed_list.push(node);
  j.set("crashed", std::move(crashed_list));

  Json recovered_list = Json::array();
  for (NodeId node : recovered) recovered_list.push(node);
  j.set("recovered", std::move(recovered_list));

  Json finals = Json::array();
  for (const std::string& p : final_protocol) finals.push(p);
  j.set("final_protocol", std::move(finals));

  if (!node_reports.empty()) {
    // Per-node agent reports (proc engine only): absent otherwise, so the
    // sim/rt documents stay byte-identical to the pre-cluster format.
    Json nodes = Json::array();
    for (const Json& report : node_reports) nodes.push(report);
    j.set("nodes", std::move(nodes));
  }
  return j;
}

}  // namespace dpu::scenario
