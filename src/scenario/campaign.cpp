#include "scenario/campaign.hpp"

#include <atomic>
#include <exception>
#include <thread>

namespace dpu::scenario {

CampaignOutcome run_campaign(const std::vector<ScenarioSpec>& specs,
                             const CampaignOptions& options) {
  struct Cell {
    Json result;
    bool ok = false;
    bool ran = false;
  };
  const std::size_t per_spec = options.seeds.size();
  std::vector<Cell> cells(specs.size() * per_spec);

  auto canceled = [&options]() {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };

  // Work queue over the (spec, seed) cross product.
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      if (canceled()) return;
      const std::size_t idx = next.fetch_add(1);
      if (idx >= cells.size()) return;
      const ScenarioSpec& spec = specs[idx / per_spec];
      const std::uint64_t seed = options.seeds[idx % per_spec];
      Cell& cell = cells[idx];
      cell.ran = true;
      try {
        const ScenarioResult result =
            options.run_fn ? options.run_fn(spec, seed)
                           : run_scenario(spec, seed, options.run);
        cell.result = result.to_json();
        cell.ok = result.ok();
      } catch (const std::exception& e) {
        Json j = Json::object();
        j.set("scenario", spec.name);
        j.set("seed", seed);
        j.set("ok", false);
        j.set("exception", std::string(e.what()));
        cell.result = std::move(j);
        cell.ok = false;
      }
    }
  };

  std::size_t workers = options.threads != 0
                            ? options.threads
                            : std::thread::hardware_concurrency();
  workers = std::max<std::size_t>(1, std::min(workers, cells.size()));
  if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Deterministic assembly in (spec, seed) order.
  CampaignOutcome outcome;
  Json seeds = Json::array();
  for (const std::uint64_t seed : options.seeds) seeds.push(seed);

  Json scenarios = Json::array();
  for (std::size_t s = 0; s < specs.size(); ++s) {
    Json entry = Json::object();
    entry.set("name", specs[s].name);
    entry.set("spec", specs[s].to_json());
    bool spec_ok = true;
    std::size_t ran = 0;
    Json runs = Json::array();
    for (std::size_t k = 0; k < per_spec; ++k) {
      Cell& cell = cells[s * per_spec + k];
      if (!cell.ran) continue;  // canceled before this cell started
      ++ran;
      spec_ok = spec_ok && cell.ok;
      if (!cell.ok) ++outcome.failed_runs;
      runs.push(std::move(cell.result));
    }
    entry.set("ok", spec_ok && ran == per_spec);
    entry.set("runs", std::move(runs));
    scenarios.push(std::move(entry));
    outcome.runs += ran;
  }

  const bool interrupted = canceled();
  outcome.ok =
      outcome.failed_runs == 0 && outcome.runs == cells.size() && !cells.empty();

  Json doc = Json::object();
  Json meta = Json::object();
  meta.set("scenario_count", specs.size());
  meta.set("seeds", std::move(seeds));
  meta.set("run_count", outcome.runs);
  doc.set("campaign", std::move(meta));
  doc.set("scenarios", std::move(scenarios));
  doc.set("failed_runs", outcome.failed_runs);
  if (interrupted) doc.set("interrupted", true);
  doc.set("ok", outcome.ok);
  outcome.document = std::move(doc);
  return outcome;
}

}  // namespace dpu::scenario
