#include "scenario/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dpu::scenario {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; null is the conventional degradation.
    out += "null";
    return;
  }
  char buf[32];
  // %.17g is the shortest format guaranteed to round-trip a double.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
  // Ensure the token reads back as a double, not an integer.
  if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
      std::string::npos) {
    out += ".0";
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(int_);
      break;
    case Type::kDouble:
      write_double(out, double_);
      break;
    case Type::kString:
      write_escaped(out, string_);
      break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        write_escaped(out, members_[i].first);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        members_[i].second.write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("json: " + what, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return number();
    }
  }

  Json object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out.set(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  Json array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (specs are ASCII in practice; be correct anyway).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("bad number");
    if (is_double) return Json(std::strtod(token.c_str(), nullptr));
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(token.c_str(), &end, 10);
    if (errno == ERANGE || end == nullptr || *end != '\0') {
      // Out-of-int64-range integers degrade to double.
      return Json(std::strtod(token.c_str(), nullptr));
    }
    return Json(static_cast<std::int64_t>(v));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace dpu::scenario
