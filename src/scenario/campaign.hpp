// Campaign runner: seed sweeps of scenario specs, aggregated to one JSON
// document CI can gate on.
//
// A campaign is the cross product (specs × seeds).  Runs execute in
// parallel across hardware threads — each simulation is single-threaded and
// independent — but the output document is assembled in (spec, seed) order,
// so a campaign's JSON is a pure function of its inputs: byte-identical
// across repeats, machines and thread counts.  CI uploads the document as
// an artifact and fails the build when any run reports an audit violation.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace dpu::scenario {

struct CampaignOptions {
  /// Every spec runs once per seed.
  std::vector<std::uint64_t> seeds = {1, 2, 3};
  RunOptions run;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Executes one (spec, seed) cell.  Null = run_scenario with `run` — the
  /// in-process engines.  cluster_campaign injects the ClusterSupervisor
  /// here, so the proc engine reuses the whole campaign pipeline (sweep,
  /// document assembly, verdict roll-up) unchanged.
  std::function<ScenarioResult(const ScenarioSpec&, std::uint64_t)> run_fn;
  /// Cooperative cancellation (signal handlers flip it): workers stop
  /// claiming cells, the document marks itself "interrupted" and unrun
  /// cells are omitted.
  const std::atomic<bool>* cancel = nullptr;
};

struct CampaignOutcome {
  /// Full results document (see README "Scenario campaigns").
  Json document;
  bool ok = false;
  std::size_t runs = 0;
  std::size_t failed_runs = 0;
};

[[nodiscard]] CampaignOutcome run_campaign(
    const std::vector<ScenarioSpec>& specs,
    const CampaignOptions& options = {});

}  // namespace dpu::scenario
