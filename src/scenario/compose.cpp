#include "scenario/compose.hpp"

#include <algorithm>
#include <utility>

#include "net/rbcast.hpp"
#include "net/udp_module.hpp"

namespace dpu::scenario {

void harvest_modules(NodeAccum& acc, const NodeModules& m) {
  if (m.workload != nullptr) acc.sent += m.workload->sent();
  if (m.probe != nullptr) acc.deliveries += m.probe->deliveries();
  if (m.rp2p != nullptr) {
    acc.retransmissions += m.rp2p->retransmissions();
    acc.acks_sent += m.rp2p->acks_sent();
  }
  if (m.repl != nullptr) {
    acc.reissued += m.repl->reissued_total();
    acc.stale_discarded += m.repl->stale_discarded();
    acc.snapshots_served += m.repl->snapshots_served();
    acc.state_replayed += m.repl->replayed_from_snapshot();
  }
  if (m.repl_rbcast != nullptr) {
    acc.reissued += m.repl_rbcast->reissued_total();
    acc.stale_discarded += m.repl_rbcast->stale_discarded();
    acc.snapshots_served += m.repl_rbcast->snapshots_served();
    acc.state_replayed += m.repl_rbcast->replayed_from_snapshot();
  }
  if (m.repl_gm != nullptr) {
    acc.snapshots_served += m.repl_gm->snapshots_served();
    acc.state_replayed += m.repl_gm->replayed_from_snapshot();
  }
  if (m.repl_cons != nullptr) {
    acc.decisions_delivered += m.repl_cons->decisions_delivered();
  }
  if (m.maestro != nullptr) {
    acc.app_blocked += m.maestro->total_blocked_time();
    acc.calls_queued += m.maestro->calls_queued_while_blocked();
  }
  if (m.graceful != nullptr) {
    acc.app_blocked += m.graceful->total_queueing_window();
    acc.calls_queued += m.graceful->calls_queued_during_switch();
  }
}

CompositionPlan CompositionPlan::from_spec(const ScenarioSpec& spec) {
  CompositionPlan plan;
  // The managed-service plan drives composition: every replaceable service
  // of the spec gets its mechanism's facade, all behind one
  // UpdateManagerModule per stack — there is no per-mechanism special case
  // left, and one run may make several layers hot-swappable at once.
  plan.managed = spec.managed_services();
  const auto abcast_managed = plan.managed.find(kAbcastService);
  plan.abcast_mech = abcast_managed == plan.managed.end()
                         ? Mechanism::kNone
                         : abcast_managed->second;
  plan.consensus_managed = plan.managed.count(kConsensusService) != 0;
  plan.rbcast_managed = plan.managed.count(kRbcastService) != 0;
  plan.gm_managed = plan.managed.count(kGmService) != 0;
  // The spec-level mechanism's own layer starts on initial_protocol; every
  // other layer starts on its standard default.
  const bool consensus_layer = spec.mechanism == Mechanism::kReplConsensus;
  const bool rbcast_layer = spec.mechanism == Mechanism::kReplRbcast;
  const bool gm_layer = spec.mechanism == Mechanism::kReplGm;
  plan.consensus_initial =
      consensus_layer ? spec.initial_protocol : spec.initial_consensus;
  plan.rbcast_initial = rbcast_layer
                            ? spec.initial_protocol
                            : std::string(RbcastModule::kProtocolName);
  plan.gm_initial =
      gm_layer ? spec.initial_protocol : std::string(GmModule::kProtocolName);
  plan.abcast_initial = (consensus_layer || rbcast_layer || gm_layer)
                            ? std::string(CtAbcastModule::kProtocolName)
                            : spec.initial_protocol;
  return plan;
}

namespace {

/// The packet transport every composition shares.  Returns the rp2p module
/// so the callers can harvest transport counters.  The rbcast layer and the
/// failure detector are installed afterwards, in the standard order (rbcast
/// may be a replacement facade).
Rp2pModule* install_transport(Stack& stack,
                              const StandardStackOptions& options) {
  UdpModule::create(stack);
  return Rp2pModule::create(stack, kRp2pService, options.rp2p);
}

}  // namespace

ComposedStack compose_stack(Stack& stack, const ScenarioSpec& spec,
                            const CompositionPlan& plan,
                            const StandardStackOptions& options,
                            TimePoint since, const ComposeHooks& hooks) {
  ComposedStack out;
  NodeModules& m = out.modules;
  m.rp2p = install_transport(stack, options);
  if (plan.rbcast_managed) {
    // Rbcast facade below everything that broadcasts: consensus and the
    // abcast protocols call "rbcast" and get the hot-swappable layer.
    ReplRbcastModule::Config rb;
    rb.initial_protocol = plan.rbcast_initial;
    m.repl_rbcast = ReplRbcastModule::create(stack, rb);
  } else {
    RbcastModule::create(stack, kRbcastService, options.rbcast);
  }
  FdModule::create(stack, kFdService, options.fd);
  m.update = UpdateManagerModule::create(stack);
  if (plan.consensus_managed) {
    // Consensus facade first: anything above that requires "consensus"
    // binds against it instead of creating a pinned implementation.
    ReplConsensusModule::Config rc;
    rc.initial_protocol = plan.consensus_initial;
    m.repl_cons = ReplConsensusModule::create(stack, rc);
  }
  switch (plan.abcast_mech) {
    case Mechanism::kRepl: {
      ReplAbcastModule::Config cfg;
      cfg.initial_protocol = plan.abcast_initial;
      m.repl = ReplAbcastModule::create(stack, cfg);
      break;
    }
    case Mechanism::kMaestro: {
      MaestroSwitchModule::Config mc;
      mc.initial_protocol = plan.abcast_initial;
      mc.consensus_protocol = plan.consensus_initial;
      m.maestro = MaestroSwitchModule::create(stack, mc);
      break;
    }
    case Mechanism::kGraceful: {
      // The Graceful Adaptation restriction forbids recursive creation,
      // so its consensus substrate must exist before the first AAC.
      stack.create_module(plan.consensus_initial, kConsensusService);
      GracefulSwitchModule::Config gc;
      gc.initial_protocol = plan.abcast_initial;
      m.graceful = GracefulSwitchModule::create(stack, gc);
      break;
    }
    default: {
      // ABcast is not replaceable in this run (mechanism "none", or only
      // other layers are managed): bind the protocol directly.  Recursive
      // creation supplies consensus when the protocol needs it and no
      // facade is bound.
      stack.create_module(plan.abcast_initial, kAbcastService);
      break;
    }
  }

  if (plan.gm_managed) {
    // The dependent layer of the paper's Figure 4, behind its own facade:
    // the topic mux multiplexes the ordered channel, the GM facade makes
    // the membership protocol hot-swappable.
    TopicMuxModule::create(stack, kTopicsService, options.topics);
    ReplGmModule::Config gc;
    gc.initial_protocol = plan.gm_initial;
    m.repl_gm = ReplGmModule::create(stack, gc);
  }

  if (!spec.policies.empty()) {
    // Closed-loop adaptation: the PolicyEngine observes this stack and
    // issues request_update through the same control plane the scripted
    // update plan uses.
    PolicyEngineConfig pc;
    for (const PolicySpec& p : spec.policies) {
      PolicyRule rule;
      rule.name = p.name.empty() ? "policy-" + std::to_string(pc.rules.size())
                                 : p.name;
      rule.service = p.service;
      rule.when_protocol = p.when_protocol;
      rule.to_protocol = p.to_protocol;
      if (p.trigger == "latency") {
        rule.trigger = PolicyRule::Trigger::kDeliveryLatency;
      } else if (p.trigger == "load") {
        rule.trigger = PolicyRule::Trigger::kDeliveryRate;
      } else {
        rule.trigger = PolicyRule::Trigger::kFdSuspect;
      }
      rule.suspect_node = p.node;
      rule.latency_threshold = p.latency_threshold;
      rule.rate_threshold = p.rate_threshold;
      rule.window = p.window;
      rule.cooldown = p.cooldown;
      pc.rules.push_back(std::move(rule));
    }
    m.policy = PolicyEngineModule::create(stack, std::move(pc));
  }

  out.probe = std::make_unique<LatencyProbe>(*hooks.collector, stack.host());
  m.probe = out.probe.get();
  stack.listen<AbcastListener>(kAbcastService, m.probe, nullptr);
  if (hooks.extra_listener != nullptr) {
    stack.listen<AbcastListener>(kAbcastService, hooks.extra_listener,
                                 nullptr);
  }

  // Workload window, shifted for recovered incarnations: the module
  // interprets start_after/stop_after relative to its own start.
  const Duration stop_abs = spec.workload.stop_after > 0
                                ? spec.workload.stop_after
                                : spec.duration;
  const Duration start_rel =
      std::max<Duration>(spec.workload.start_after - since, 0);
  const Duration stop_rel = stop_abs - since;
  if (stop_rel > start_rel) {
    WorkloadConfig wc;
    wc.rate_per_second = spec.workload.rate_per_stack;
    wc.message_size = spec.workload.message_size;
    wc.poisson = spec.workload.poisson;
    wc.start_after = start_rel;
    wc.stop_after = stop_rel;
    // Ramp/burst phases, shifted like the window for recovered
    // incarnations; a phase fully in the pre-recovery past is dropped
    // (ramps keep their target by clamping into a zero-length window).
    for (const WorkloadPhase& p : spec.workload.phases) {
      WorkloadRatePhase rp;
      rp.ramp = p.kind == WorkloadPhase::Kind::kRamp;
      rp.from = std::max<Duration>(p.from - since, 0);
      rp.until = p.until - since;
      rp.value = p.value;
      if (rp.ramp) {
        // A ramp that finished before the recovery still holds its
        // target; clamp it into a zero-length window at start.
        if (rp.until < 0) rp.until = 0;
        if (rp.from > rp.until) rp.from = rp.until;
      } else if (rp.until <= rp.from) {
        continue;  // burst fully in the pre-recovery past
      }
      wc.phases.push_back(rp);
    }
    wc.on_send = hooks.on_send;
    m.workload = WorkloadModule::create(stack, wc);
  }
  stack.start_all();
  return out;
}

StandardStackOptions stack_options_for_spec(const ScenarioSpec& spec) {
  StandardStackOptions stack_options;
  stack_options.with_gm = false;
  switch (spec.mechanism) {
    case Mechanism::kReplConsensus:
      // The primary replaceable layer is consensus; CT-ABcast rides on top.
      stack_options.consensus_protocol = spec.initial_protocol;
      break;
    case Mechanism::kReplRbcast:
      stack_options.rbcast_protocol = spec.initial_protocol;
      stack_options.consensus_protocol = spec.initial_consensus;
      break;
    case Mechanism::kReplGm:
      stack_options.consensus_protocol = spec.initial_consensus;
      break;
    default:
      stack_options.abcast_protocol = spec.initial_protocol;
      stack_options.consensus_protocol = spec.initial_consensus;
      break;
  }
  // Deployment-scale knobs (defaults leave the options untouched, so
  // pre-cluster specs produce byte-identical compositions).
  if (spec.fd_heartbeat > 0) {
    stack_options.fd.heartbeat_interval = spec.fd_heartbeat;
  }
  if (spec.fd_timeout > 0) stack_options.fd.initial_timeout = spec.fd_timeout;
  stack_options.rbcast.relay = spec.rbcast_relay;
  return stack_options;
}

}  // namespace dpu::scenario
