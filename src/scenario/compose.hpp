// Shared stack composition for scenario execution.
//
// One ScenarioSpec describes one composition; three engines execute it: the
// deterministic simulator, the real-thread engine (both world-in-one-process,
// driven by runner.cpp) and the process-per-node cluster runner (one agent
// process per stack, src/cluster).  This header is the single place that
// turns a spec into a live stack — module choice, creation order, workload
// window shifting for recovered incarnations — so an agent process composes
// byte-for-byte the same stack the in-process engines do.
//
// The creation order below is load-bearing: the simulator campaign baseline
// (ci/campaign_baseline.json) pins results that depend on it, and several
// modules resolve their dependencies positionally (the update manager must
// exist before any mechanism facade; the consensus facade must exist before
// an abcast protocol that recursively requires consensus).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "abcast/abcast.hpp"
#include "app/policy.hpp"
#include "app/probe.hpp"
#include "app/stack_builder.hpp"
#include "app/workload.hpp"
#include "core/stack.hpp"
#include "net/rp2p.hpp"
#include "repl/baseline_graceful.hpp"
#include "repl/baseline_maestro.hpp"
#include "repl/repl_abcast.hpp"
#include "repl/repl_consensus.hpp"
#include "repl/repl_gm.hpp"
#include "repl/repl_rbcast.hpp"
#include "repl/update.hpp"
#include "scenario/spec.hpp"

namespace dpu::scenario {

/// Live module handles of one stack's current incarnation.  Recovery
/// replaces every pointer (the old modules die with the old Stack).
struct NodeModules {
  UpdateManagerModule* update = nullptr;
  ReplAbcastModule* repl = nullptr;
  ReplConsensusModule* repl_cons = nullptr;
  ReplRbcastModule* repl_rbcast = nullptr;
  ReplGmModule* repl_gm = nullptr;
  MaestroSwitchModule* maestro = nullptr;
  GracefulSwitchModule* graceful = nullptr;
  PolicyEngineModule* policy = nullptr;
  Rp2pModule* rp2p = nullptr;
  WorkloadModule* workload = nullptr;
  LatencyProbe* probe = nullptr;
};

/// Counters harvested from incarnations that died (crash-recovery): the
/// final tallies are accumulated-over-incarnations plus the live modules.
struct NodeAccum {
  std::uint64_t sent = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t reissued = 0;
  std::uint64_t stale_discarded = 0;
  std::uint64_t decisions_delivered = 0;
  std::uint64_t snapshots_served = 0;
  std::uint64_t state_replayed = 0;
  Duration app_blocked = 0;
  std::uint64_t calls_queued = 0;
};

/// Folds one incarnation's module counters into the accumulator — used
/// both when an incarnation dies (recovery) and at end of run for the live
/// one, so a counter added here is counted across recoveries by
/// construction.
void harvest_modules(NodeAccum& acc, const NodeModules& m);

/// The composition shape derived from a spec: which layers are replaceable
/// (and by which mechanism) and what every layer's initial protocol is.
/// Pure data — identical in every process that executes the spec.
struct CompositionPlan {
  std::map<std::string, Mechanism> managed;
  Mechanism abcast_mech = Mechanism::kNone;
  bool consensus_managed = false;
  bool rbcast_managed = false;
  bool gm_managed = false;
  std::string consensus_initial;
  std::string rbcast_initial;
  std::string gm_initial;
  std::string abcast_initial;

  [[nodiscard]] static CompositionPlan from_spec(const ScenarioSpec& spec);
};

/// Per-stack instrumentation the engine-side driver wires in: the latency
/// collector the probe feeds, an optional extra abcast listener (the audit
/// tap in-process; the delivery journal in an agent) and an optional
/// pre-abcast send hook (audit record_sent / the send journal).
struct ComposeHooks {
  LatencyCollector* collector = nullptr;
  AbcastListener* extra_listener = nullptr;
  std::function<void(const Bytes&)> on_send;
};

/// One composed stack: the module handles plus the probe the caller must
/// keep alive for the incarnation's lifetime (modules.probe points at it).
struct ComposedStack {
  NodeModules modules;
  std::unique_ptr<LatencyProbe> probe;
};

/// Composes (or re-composes, after recovery) one stack from the spec:
/// transport, substrate, control plane, mechanism facades, policies, the
/// latency probe, the hook listener and the workload — then start_all().
/// `since` is 0 at setup and the recovery time afterwards: it shifts the
/// workload window, which the module interprets relative to its own start.
[[nodiscard]] ComposedStack compose_stack(Stack& stack,
                                          const ScenarioSpec& spec,
                                          const CompositionPlan& plan,
                                          const StandardStackOptions& options,
                                          TimePoint since,
                                          const ComposeHooks& hooks);

/// Substrate tuning + registry registration inputs for a spec: the
/// spec-level mechanism's own layer gets initial_protocol, the fd and
/// rbcast deployment knobs are applied, everything else keeps its standard
/// default.
[[nodiscard]] StandardStackOptions stack_options_for_spec(
    const ScenarioSpec& spec);

}  // namespace dpu::scenario
