// Scenario runner: executes one ScenarioSpec on either engine.
//
// The runner owns the whole lifecycle of a run: it assembles the stacks
// from the spec's managed-service plan (every replaceable service gets its
// declared mechanism's facade, behind one UpdateManagerModule per stack),
// installs the workload and the instrumentation (latency probes, the ABcast
// property audit, the trace recorder), schedules every fault and update of
// the spec — including crash-recoveries, which re-compose the recovered
// node's stack exactly like at setup — runs the world to quiescence, and
// distills a ScenarioResult: audit verdicts, latency percentiles, switch
// windows/downtime, per-update convergence, and raw counters.
//
// Updates are dispatched uniformly through the UpdateApi control plane
// (repl/update.hpp): `request_update(service, protocol)` on the initiator's
// stack, whatever the mechanism — the runner has no per-mechanism dispatch.
//
// Everything below the spec goes through WorldControl (runtime/world.hpp),
// so the same code path drives the deterministic simulator (spec.engine ==
// kSim: same spec + same seed => byte-identical output) and the real-thread
// engine (kRt: wall-clock execution, quiescence-polled drain, audited for
// properties — never for byte identity).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "app/probe.hpp"
#include "core/properties.hpp"
#include "core/trace.hpp"
#include "scenario/spec.hpp"

namespace dpu::scenario {

struct RunOptions {
  Duration bucket_width = 100 * kMillisecond;
  /// Record sends/deliveries and check the §5.1 ABcast properties plus the
  /// §3 generic DPU properties.  Off for pure latency benches (the audit
  /// retains every payload).
  bool with_audit = true;
  std::uint64_t max_events = 500'000'000ULL;
  /// Real-time engine only: cap on the wall-clock drain after the activity
  /// window.  The spec's `drain` is virtual time tuned for the simulator
  /// (typically 30 s); rt runs finish at quiescence — deliveries stable and
  /// no unacked rp2p traffic for `rt_quiesce_window` — long before that,
  /// so the cap only bounds pathological runs.  The quiesce window must
  /// exceed the consensus round timeout (500 ms): a recovering node's
  /// catch-up includes a silent round-timeout stall that must not be
  /// mistaken for quiescence.
  Duration rt_drain_cap = 10 * kSecond;
  Duration rt_quiesce_window = 1500 * kMillisecond;
  /// Simulator event-engine shards.  0 defers to the spec's `sim_shards`;
  /// any other value overrides it without touching the spec — campaign
  /// documents embed the spec verbatim, so an override (CLI `--sim-shards`,
  /// the byte-identity tests) keeps whole documents comparable across
  /// shard counts.  Results are byte-identical at every value.
  std::size_t sim_shards = 0;
};

/// One executed update, reconstructed from the generic control-plane trace
/// markers: when it was requested and when the last stack (including late
/// crash-recovery replays) finished running the new version.
struct UpdateOutcome {
  std::string service;
  std::string protocol;
  TimePoint requested = 0;
  TimePoint converged = 0;     ///< last per-stack completion observed
  std::size_t completions = 0;  ///< per-stack completion events counted

  /// Convergence latency: request -> last stack running the new version.
  [[nodiscard]] Duration convergence() const { return converged - requested; }
};

struct ScenarioResult {
  std::string scenario;
  std::uint64_t seed = 0;

  // Verdicts.
  PropertyReport abcast_report;   ///< §5.1 four ABcast properties
  PropertyReport generic_report;  ///< §3 well-formedness/operationability
  [[nodiscard]] bool ok() const {
    return abcast_report.ok && generic_report.ok;
  }

  // Latency (µs, over all post-start samples).
  std::unique_ptr<LatencyCollector> collector;

  // Counters.
  std::uint64_t messages_sent = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t reissued = 0;         ///< Repl-ABcast
  std::uint64_t stale_discarded = 0;  ///< Repl-ABcast
  std::uint64_t decisions_delivered = 0;  ///< Repl-Consensus
  std::uint64_t snapshots_served = 0;   ///< facade state transfers answered
  std::uint64_t state_replayed = 0;     ///< entries replayed from snapshots
  /// Rbcast cross-version dedup state retained at end of run (interval runs
  /// over live incarnations) — the memory bound under sustained churn.
  std::uint64_t dedup_entries = 0;
  Duration app_blocked_total = 0;     ///< Maestro/Graceful
  std::uint64_t calls_queued = 0;     ///< Maestro/Graceful
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t retransmissions = 0;  ///< rp2p, summed over stacks
  std::uint64_t acks_sent = 0;        ///< rp2p coalesced cumulative acks
  /// Real-socket transport counters (rt with rt_sockets, and the proc
  /// engine; 0 on the simulator and in-proc rt).  Syscalls vs datagrams
  /// exposes the sendmmsg/recvmmsg batching ratio — the congestion story.
  std::uint64_t socket_tx_syscalls = 0;
  std::uint64_t socket_tx_datagrams = 0;
  std::uint64_t socket_rx_syscalls = 0;
  std::uint64_t socket_rx_datagrams = 0;
  /// Sharded-simulator round counters (0 on rt runs).  Both are pure
  /// functions of event timings — identical at every shard count — which
  /// is why they may live in the byte-compared result document.
  std::uint64_t sim_window_barriers = 0;
  std::uint64_t sim_merge_batches = 0;
  Duration total_virtual_time = 0;
  std::set<NodeId> crashed;     ///< crashed and not recovered by run end
  std::set<NodeId> recovered;   ///< crash-recovered during the run

  /// Final protocol of the replaceable layer per stack (empty string on
  /// crashed stacks; only filled for mechanisms that can switch).  For a
  /// recovered stack this is the *new incarnation's* protocol — the
  /// convergence witness of crash-recovery scenarios.
  std::vector<std::string> final_protocol;

  /// Per executed update: [request time, time the last stack finished].
  std::vector<std::pair<TimePoint, TimePoint>> switch_windows;

  /// Per executed update, with service/protocol identity and convergence
  /// latency (the switch_windows data plus what the generic markers add).
  std::vector<UpdateOutcome> updates;

  /// Longest single switch window ("switch downtime").
  [[nodiscard]] Duration max_switch_downtime() const;

  std::vector<TraceEvent> trace;

  /// Proc engine only: one report object per node (socket counters, packet
  /// tallies, incarnation) as harvested from the agent processes.  Empty on
  /// sim/rt, and then absent from the JSON document.
  std::vector<Json> node_reports;

  /// Structured result record (see README "Scenario campaigns").  Contains
  /// only deterministic data — no wall-clock timestamps.
  [[nodiscard]] Json to_json() const;
};

/// Reconstructs per-update outcomes from the UpdateManagerModule's generic
/// "update-requested"/"update-done" markers.  Completions pair with the
/// latest not-younger request of the same service, so back-to-back updates
/// and crash-recovery replays attribute like the legacy extraction did.
[[nodiscard]] std::vector<UpdateOutcome> extract_update_outcomes(
    const std::vector<TraceEvent>& events);

/// Extracts [request, last-stack-done] switch windows.  Prefers the generic
/// control-plane markers; traces recorded without an UpdateManagerModule
/// (mechanisms driven directly through their legacy entry points) fall back
/// to the per-mechanism markers.
[[nodiscard]] std::vector<std::pair<TimePoint, TimePoint>>
extract_switch_windows(const std::vector<TraceEvent>& events, std::size_t n);

/// Runs `spec` under `seed`.  The spec must validate; throws
/// std::invalid_argument listing the problems otherwise.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec,
                                          std::uint64_t seed,
                                          const RunOptions& options = {});

}  // namespace dpu::scenario
