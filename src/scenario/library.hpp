// Curated scenario library — the named fault/upgrade campaigns CI runs.
//
// Each entry is a ScenarioSpec exercising one adverse schedule from the
// paper's evaluation space: clean switches, switches under load, crashes
// landing inside a replacement window, partitions that heal before an
// update, back-to-back reissue storms, protocol matrices, lossy links and
// large-group churn.  `scenario_campaign --list` prints them;
// tests/scenario asserts they all validate and stay audit-clean.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace dpu::scenario {

/// All curated scenarios, in stable order (the campaign JSON lists them in
/// this order).
[[nodiscard]] std::vector<ScenarioSpec> curated_scenarios();

/// Curated process-per-node deployments (engine "proc"): 50-to-200-stack
/// campaigns sized for real OS processes over UDP sockets.  Kept separate
/// from curated_scenarios() so the sim campaign baseline (byte-compared in
/// CI) is untouched; cluster_campaign runs these by default, and the same
/// specs run unchanged on sim/rt via --engine.
[[nodiscard]] std::vector<ScenarioSpec> curated_proc_scenarios();

/// Looks a curated scenario up by name (both libraries).
[[nodiscard]] std::optional<ScenarioSpec> find_scenario(
    const std::string& name);

}  // namespace dpu::scenario
