// Curated scenario library — the named fault/upgrade campaigns CI runs.
//
// Each entry is a ScenarioSpec exercising one adverse schedule from the
// paper's evaluation space: clean switches, switches under load, crashes
// landing inside a replacement window, partitions that heal before an
// update, back-to-back reissue storms, protocol matrices, lossy links and
// large-group churn.  `scenario_campaign --list` prints them;
// tests/scenario asserts they all validate and stay audit-clean.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace dpu::scenario {

/// All curated scenarios, in stable order (the campaign JSON lists them in
/// this order).
[[nodiscard]] std::vector<ScenarioSpec> curated_scenarios();

/// Looks a curated scenario up by name.
[[nodiscard]] std::optional<ScenarioSpec> find_scenario(
    const std::string& name);

}  // namespace dpu::scenario
