// Declarative scenario specifications for fault/upgrade campaigns.
//
// A ScenarioSpec describes one adversarial schedule against a world of n
// protocol stacks: the workload shape, the fault schedule (crash-stop
// failures, transient partitions, windows of message loss/duplication) and
// the protocol-update plan (which replacement mechanism performs which
// switch at which virtual time).  Specs are plain data: they serialize to
// JSON (round-trip exact), validate statically, and are executed by the
// campaign runner in src/scenario/runner.hpp.
//
// This echoes how consistent-network-update work evaluates update
// mechanisms against *families* of adversarial schedules instead of one
// hand-rolled script per experiment: the same spec runs under seed sweeps,
// is audited for the paper's §5.1 ABcast properties and §3 generic DPU
// properties, and produces machine-readable results CI can gate on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runtime/time.hpp"
#include "scenario/json.hpp"
#include "util/ids.hpp"

namespace dpu::scenario {

/// Which execution engine runs the scenario.  The simulator is the default:
/// deterministic, byte-reproducible output, CI-gateable against baselines.
/// The real-time engine runs the identical protocol code on one OS thread
/// per stack; its runs are audited for the paper's properties but are never
/// byte-reproducible (see README "Scenario campaigns").
enum class Engine {
  kSim,   ///< deterministic discrete-event simulator (src/sim)
  kRt,    ///< real-thread engine, in-process transport (src/rt)
  kProc,  ///< process-per-node cluster runner over UDP sockets (src/cluster)
};

[[nodiscard]] const char* engine_name(Engine e);
/// Inverse of engine_name; throws std::runtime_error on unknown names.
[[nodiscard]] Engine engine_from_name(const std::string& name);

/// Which machinery executes the protocol-update plan (cf. bench::Mode).
enum class Mechanism {
  kNone,           ///< static stack; the update plan must be empty
  kRepl,           ///< the paper's Repl-ABcast (Algorithm 1, "DPU")
  kReplConsensus,  ///< Repl-Consensus facade (the paper's future-work ext.)
  kReplRbcast,     ///< Repl-RBcast facade (reliable broadcast, substrate)
  kReplGm,         ///< Repl-GM facade (group membership, substrate)
  kMaestro,        ///< full-stack switch baseline
  kGraceful,       ///< barrier-switch baseline (Graceful Adaptation)
};

[[nodiscard]] const char* mechanism_name(Mechanism m);
/// Inverse of mechanism_name; throws std::runtime_error on unknown names.
[[nodiscard]] Mechanism mechanism_from_name(const std::string& name);

/// The mechanism that manages `service` when none is named explicitly
/// ("abcast" -> kRepl, "consensus" -> kReplConsensus, "rbcast" ->
/// kReplRbcast, "gm" -> kReplGm); kNone for unknown services.
[[nodiscard]] Mechanism default_mechanism_for_service(
    const std::string& service);

/// Time-varying load shaping: one phase modifies the workload rate inside
/// (or from) its window.  Two kinds:
///  * burst — multiply the current rate by `value` during [from, until);
///  * ramp  — interpolate the rate linearly toward `value` (an absolute
///    rate per stack) across [from, until), then hold it.
/// Phases apply in list order, so a ramp's target can itself be burst.
struct WorkloadPhase {
  enum class Kind { kBurst, kRamp };
  Kind kind = Kind::kBurst;
  TimePoint from = 0;
  TimePoint until = 0;
  double value = 1.0;  ///< burst: rate multiplier; ramp: target rate/stack

  friend bool operator==(const WorkloadPhase&, const WorkloadPhase&) = default;
};

/// Open-loop workload applied by every stack (see app/workload.hpp).
struct WorkloadShape {
  double rate_per_stack = 50.0;  ///< messages per second per stack
  std::size_t message_size = 64;
  bool poisson = true;
  Duration start_after = 0;
  Duration stop_after = 0;  ///< 0 = the spec's duration
  /// Ramp/burst schedule (empty = constant rate).
  std::vector<WorkloadPhase> phases;

  friend bool operator==(const WorkloadShape&, const WorkloadShape&) = default;
};

/// Crash-stop failure of one stack.
struct CrashFault {
  TimePoint at = 0;
  NodeId node = 0;

  friend bool operator==(const CrashFault&, const CrashFault&) = default;
};

/// Crash-recovery: restarts a previously crashed stack with a fresh
/// protocol state (same node id, bumped incarnation).  The runner
/// recomposes the stack's modules exactly like at world setup; the GM/FD
/// layers re-admit the node (heartbeats rescind the suspicion) and the
/// consensus catch-up resends the decisions the node missed, so it
/// converges to the group's current protocol version.
struct RecoverFault {
  TimePoint at = 0;
  NodeId node = 0;

  friend bool operator==(const RecoverFault&, const RecoverFault&) = default;
};

/// Late join: `node` sits out the run's beginning and boots fresh at `at`
/// (incarnation 1, empty protocol state), catching up through the same
/// state-transfer path as a crash-recovery.  The runner realizes it as a
/// crash at t=1ms plus a recovery at `at`, so the node is down from
/// (effectively) the start; the majority rule counts late joiners as down
/// until they join.
struct LateJoin {
  TimePoint at = 0;
  NodeId node = 0;

  friend bool operator==(const LateJoin&, const LateJoin&) = default;
};

/// Directional per-link override inside a loss window: link (src -> dst)
/// uses these probabilities instead of the window's, plus extra one-way
/// latency.  Lets partitions and lossy links be asymmetric.
struct LinkOverride {
  NodeId src = 0;
  NodeId dst = 0;
  double drop = 0.0;
  double duplicate = 0.0;
  Duration extra_latency = 0;

  friend bool operator==(const LinkOverride&, const LinkOverride&) = default;
};

/// Transient partition: `isolated` forms one side, everyone else the other;
/// cross-side packets are dropped during [from, until).
struct PartitionFault {
  TimePoint from = 0;
  TimePoint until = 0;
  std::vector<NodeId> isolated;

  friend bool operator==(const PartitionFault&,
                         const PartitionFault&) = default;
};

/// Window of elevated message loss/duplication on every link, optionally
/// with directional per-link overrides.
struct LossWindow {
  TimePoint from = 0;
  TimePoint until = 0;
  double drop = 0.0;
  double duplicate = 0.0;
  std::vector<LinkOverride> link_overrides;

  friend bool operator==(const LossWindow&, const LossWindow&) = default;
};

/// One step of the protocol-update plan: switch `service` to library
/// `protocol` via `mechanism`.  Service and mechanism are optional —
/// `service` defaults to the library-name prefix ("abcast.seq" -> "abcast")
/// and `mechanism` to the spec-level default — which is exactly the shape
/// pre-UpdateApi specs had, so old JSON parses unchanged.
struct UpdateAction {
  TimePoint at = 0;
  NodeId initiator = 0;
  /// Library name of the target, e.g. "abcast.seq", "consensus.mr".
  std::string protocol;
  /// Replaceable service to switch ("" = derive from the protocol prefix).
  std::string service;
  /// Mechanism executing this update ("" = the spec's `mechanism`).
  std::string mechanism;

  /// The service this update targets, after defaulting.
  [[nodiscard]] std::string target_service() const {
    if (!service.empty()) return service;
    const std::size_t dot = protocol.find('.');
    return dot == std::string::npos ? protocol : protocol.substr(0, dot);
  }

  friend bool operator==(const UpdateAction&, const UpdateAction&) = default;
};

/// One adaptation policy rule, instantiated as a PolicyEngine rule on every
/// stack (app/policy.hpp): when `trigger` holds — the failure detector
/// suspects `node` ("fd-suspect"), window-mean delivery latency reaches
/// `latency_threshold` ("latency"), or the observed delivery rate reaches
/// `rate_threshold` ("load") — and the service currently runs
/// `when_protocol` (if set), the engine issues
/// `request_update(service, to_protocol)`.  Closed-loop adaptation: no
/// scripted `updates` entry needed.
struct PolicySpec {
  std::string name;            ///< trace/log label ("" = "policy-<index>")
  std::string service = "abcast";
  std::string when_protocol;   ///< fire only while this runs ("" = any)
  std::string to_protocol;
  std::string trigger = "fd-suspect";  ///< "fd-suspect" | "latency" | "load"
  NodeId node = kNoNode;       ///< fd-suspect: watched node (kNoNode = any)
  Duration latency_threshold = 0;      ///< latency: window-mean bound
  double rate_threshold = 0.0;         ///< load: deliveries/sec bound
  Duration window = kSecond;           ///< latency/load observation window
  Duration cooldown = 0;               ///< re-arm delay after firing

  friend bool operator==(const PolicySpec&, const PolicySpec&) = default;
};

/// Sanity ceilings enforced by ScenarioSpec::validate().  Generous for any
/// realistic simulation; their real job is rejecting nonsense (including
/// negative JSON integers wrapped through size_t) before it OOMs a run.
inline constexpr std::size_t kMaxStacks = 512;
inline constexpr std::size_t kMaxMessageSize = 1 << 20;

struct ScenarioSpec {
  std::string name;
  std::string description;
  std::size_t n = 3;
  /// Workload window; faults and updates must be scheduled inside it.
  Duration duration = 8 * kSecond;
  /// Extra virtual time after `duration` for in-flight traffic to settle.
  Duration drain = 30 * kSecond;

  /// Execution engine ("sim" | "rt" in JSON).  Every curated scenario runs
  /// on the simulator by default; campaigns flip this (or the CLI's
  /// --engine does) to exercise the same spec on real threads.
  Engine engine = Engine::kSim;

  /// Default mechanism of update actions that do not name their own; also
  /// declares the primary replaceable layer of the composition (kRepl /
  /// kMaestro / kGraceful manage "abcast", kReplConsensus manages
  /// "consensus").  Update actions may add further managed services, e.g. a
  /// "repl-consensus" update under a kRepl spec makes *both* layers
  /// hot-swappable in one run.
  Mechanism mechanism = Mechanism::kRepl;
  /// Initial protocol of the primary replaceable layer ("abcast.*", or
  /// "consensus.*" for kReplConsensus).
  std::string initial_protocol = "abcast.ct";
  /// Initial consensus implementation, wherever the consensus layer comes
  /// from (directly composed, recursively created, or the Repl-Consensus
  /// facade's first version).  Ignored under kReplConsensus, where
  /// `initial_protocol` plays this role.
  std::string initial_consensus = "consensus.ct";

  /// Baseline network adversity, active for the whole run.
  double base_drop = 0.0;
  double base_duplicate = 0.0;

  WorkloadShape workload;
  std::vector<CrashFault> crashes;
  std::vector<RecoverFault> recoveries;
  /// Nodes that join the run late instead of being present from the start.
  std::vector<LateJoin> late_joins;
  std::vector<PartitionFault> partitions;
  std::vector<LossWindow> loss_windows;
  std::vector<UpdateAction> updates;
  /// Closed-loop adaptation rules (PolicyEngine on every stack).  A policy's
  /// service is composed with its replacement facade like an update target.
  std::vector<PolicySpec> policies;

  /// DESIGN.md §8 cost-model knobs.
  Duration hop_cost = 8 * kMicrosecond;
  Duration module_create_cost = 20 * kMillisecond;

  /// Failure-detector tuning (0 = the library default, 50ms/200ms).  Large
  /// deployments must stretch both: heartbeats are all-to-all, so at n=200
  /// the default 50ms interval alone is ~800k datagrams/sec.  Off the wire
  /// when 0 to keep existing spec documents byte-stable.
  Duration fd_heartbeat = 0;
  Duration fd_timeout = 0;

  /// Relay-on-first-receipt in the directly-composed rbcast substrate
  /// (ignored when the rbcast layer is a replacement facade — its protocol
  /// name selects the variant).  Disabling drops broadcast complexity from
  /// O(n^2) to O(n), which is what makes 200+ stack floods feasible.  Off
  /// the wire when true (the default) to keep existing documents stable.
  bool rbcast_relay = true;

  /// Real-thread engine transport: real UDP sockets on loopback instead of
  /// in-process queues.  Makes the rt socket counters meaningful, so rt and
  /// proc runs report comparable transport stats.  Off the wire when false.
  bool rt_sockets = false;

  /// Simulator event-engine shards (kSim only; rt ignores it).  Results are
  /// byte-identical at every value, so this is purely a throughput knob; the
  /// engine clamps it to [1, n].  Off the wire when 1 to keep existing spec
  /// documents and their digests unchanged.
  std::size_t sim_shards = 1;

  /// Regression gate: fail the run when total rp2p retransmissions exceed
  /// this bound (0 = no gate).  Crash-heavy scenarios use it to pin down
  /// that crashed stacks stop attracting retransmissions (FD-aware give-up
  /// + capped backoff) instead of storming for the whole drain window.
  std::uint64_t max_retransmissions = 0;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;

  /// Mechanism executing `u`.  An explicit per-update name wins; otherwise
  /// an update of the spec-level mechanism's own service uses that
  /// mechanism, and an update of any *other* service defaults to the
  /// service's repl-family facade ("consensus" -> repl-consensus, "rbcast"
  /// -> repl-rbcast, "gm" -> repl-gm) — so multi-layer plans need no
  /// per-update mechanism boilerplate.  Throws std::runtime_error on an
  /// unknown per-update mechanism name (validate() reports the same
  /// condition as a problem instead).
  [[nodiscard]] Mechanism update_mechanism(const UpdateAction& u) const;

  /// The composition plan: which services this spec makes replaceable and
  /// by which mechanism (spec-level default layer, every update's target,
  /// and every policy's target).  Only meaningful on a spec that validates.
  [[nodiscard]] std::map<std::string, Mechanism> managed_services() const;

  /// Static well-formedness: node ids in range, windows ordered,
  /// probabilities in [0,1], a majority surviving all crashes, update
  /// targets consistent with their mechanisms (one mechanism per service),
  /// loss windows non-overlapping, workload phases ordered and positive.
  /// Returns human-readable problems; empty = valid.
  [[nodiscard]] std::vector<std::string> validate() const;

  [[nodiscard]] Json to_json() const;
  /// Inverse of to_json.  Unknown keys are rejected (they are almost always
  /// typos in hand-written specs); missing keys keep their defaults.
  /// Throws std::runtime_error / JsonParseError on malformed input.
  [[nodiscard]] static ScenarioSpec from_json(const Json& j);
  [[nodiscard]] static ScenarioSpec from_json_text(std::string_view text) {
    return from_json(Json::parse(text));
  }
};

}  // namespace dpu::scenario
