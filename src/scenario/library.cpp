#include "scenario/library.hpp"

namespace dpu::scenario {

namespace {

/// Common base: CI-sized runs (a few virtual seconds, modest load) with the
/// DESIGN.md §8 calibrated cost model inherited from ScenarioSpec defaults.
ScenarioSpec base(std::string name, std::string description) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.duration = 6 * kSecond;
  spec.drain = 30 * kSecond;
  spec.workload.rate_per_stack = 25.0;
  return spec;
}

}  // namespace

std::vector<ScenarioSpec> curated_scenarios() {
  std::vector<ScenarioSpec> out;

  {
    ScenarioSpec s = base("clean-switch",
                          "Fault-free CT -> SEQ replacement under light "
                          "load: the paper's baseline Figure-5 shape.");
    s.n = 3;
    s.updates = {{3 * kSecond, 0, "abcast.seq"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("switch-under-load",
                          "CT -> CT replacement while every stack applies "
                          "heavy open-loop load (switch perturbation must "
                          "stay bounded).");
    s.n = 5;
    s.duration = 8 * kSecond;
    s.workload.rate_per_stack = 100.0;
    s.updates = {{4 * kSecond, 0, "abcast.ct"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("crash-during-replacement",
                          "A stack crashes 5 ms after a replacement is "
                          "requested, i.e. inside the switch window; the "
                          "survivors must finish the switch and keep all "
                          "four ABcast properties.");
    s.n = 5;
    s.updates = {{2 * kSecond, 0, "abcast.ct"}};
    s.crashes = {{2 * kSecond + 5 * kMillisecond, 3}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("partition-heal-then-switch",
                          "One stack is partitioned away for 1.5 s; after "
                          "the partition heals, the group replaces the "
                          "protocol while the rejoined stack is still "
                          "catching up.");
    s.n = 5;
    s.partitions = {{kSecond, 2500 * kMillisecond, {2}}};
    s.updates = {{3500 * kMillisecond, 0, "abcast.ct"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("back-to-back-reissue",
                          "Three replacements requested within 100 ms by "
                          "different initiators: the totally-ordered switch "
                          "points must serialize and every undelivered "
                          "message must be reissued across versions.");
    s.n = 3;
    s.updates = {{2 * kSecond, 0, "abcast.seq"},
                 {2 * kSecond + 50 * kMillisecond, 1, "abcast.token"},
                 {2 * kSecond + 100 * kMillisecond, 2, "abcast.ct"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("mixed-abcast-matrix",
                          "Walks the whole ABcast protocol matrix in one "
                          "run: CT -> SEQ -> TOKEN -> CT under constant "
                          "load.");
    s.n = 3;
    s.duration = 8 * kSecond;
    s.updates = {{2 * kSecond, 0, "abcast.seq"},
                 {4 * kSecond, 1, "abcast.token"},
                 {6 * kSecond, 2, "abcast.ct"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("lossy-link-switch",
                          "5% baseline message loss, tripled to 15% around "
                          "the replacement window: retransmission and "
                          "reissue logic under sustained loss.");
    s.n = 3;
    s.base_drop = 0.05;
    s.loss_windows = {{1800 * kMillisecond, 2600 * kMillisecond, 0.15, 0.02}};
    s.updates = {{2 * kSecond, 0, "abcast.ct"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("large-n-churn",
                          "Seven stacks, two staggered crashes and two "
                          "replacements: group churn at the largest size "
                          "the paper benchmarks.");
    s.n = 7;
    s.duration = 8 * kSecond;
    s.workload.rate_per_stack = 15.0;
    s.updates = {{2 * kSecond, 0, "abcast.ct"},
                 {5 * kSecond, 1, "abcast.ct"}};
    s.crashes = {{3 * kSecond, 5}, {6 * kSecond, 6}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("crash-storm",
                          "Two of five stacks crash mid-run under sustained "
                          "load; gates that crashed stacks stop attracting "
                          "rp2p retransmissions (FD-aware give-up + capped "
                          "backoff) for the whole drain window.");
    s.n = 5;
    s.workload.rate_per_stack = 50.0;
    s.crashes = {{2 * kSecond, 3}, {2500 * kMillisecond, 4}};
    // Without the give-up policy this count is in the millions (every
    // undelivered packet retransmitted every 20 ms for the 30 s drain);
    // with it, only packets in flight before the FD suspects the crashed
    // stacks are ever retransmitted.
    s.max_retransmissions = 2000;
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("crash-recovery-switch",
                          "A stack crashes 5 ms after a replacement is "
                          "requested and recovers 2.5 s later with fresh "
                          "protocol state: the facade state transfer must "
                          "replay the missed history — including the switch "
                          "marker — so the recovered stack converges to the "
                          "new protocol version (a real CT -> SEQ change, "
                          "not a same-protocol refresh) and the four ABcast "
                          "properties hold across the restart.");
    s.n = 5;
    s.duration = 8 * kSecond;
    s.updates = {{2 * kSecond, 0, "abcast.seq"}};
    s.crashes = {{2 * kSecond + 5 * kMillisecond, 3}};
    s.recoveries = {{4500 * kMillisecond, 3}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("burst-under-switch",
                          "Workload ramps from 20 to 60 msg/s per stack, "
                          "then a 3x burst lands exactly across the "
                          "replacement window: reissue and switch "
                          "perturbation at peak load instead of the steady "
                          "state.");
    s.n = 5;
    s.duration = 7 * kSecond;
    s.workload.rate_per_stack = 20.0;
    s.workload.phases = {
        {WorkloadPhase::Kind::kRamp, kSecond, 3 * kSecond, 60.0},
        {WorkloadPhase::Kind::kBurst, 3500 * kMillisecond, 5 * kSecond, 3.0},
    };
    s.updates = {{4 * kSecond, 0, "abcast.ct"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("consensus-switch-generic",
                          "Service-generic control plane showcase: the same "
                          "UpdateApi switches the consensus implementation "
                          "(ct -> mr) underneath a replaceable Repl-ABcast, "
                          "then the abcast protocol itself (ct -> seq), in "
                          "one run — two hot-swappable layers, one API.");
    s.n = 3;
    s.duration = 8 * kSecond;
    s.updates = {
        {3 * kSecond, 0, "consensus.mr", "consensus", "repl-consensus"},
        {5500 * kMillisecond, 1, "abcast.seq"},
    };
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("rbcast-switch-under-load",
                          "The replacement substrate on the transport tier: "
                          "reliable broadcast is hot-swapped (eager relay -> "
                          "no-relay) through the UpdateApi while consensus "
                          "and abcast traffic rides on it at full rate.");
    s.n = 3;
    s.workload.rate_per_stack = 60.0;
    s.updates = {{3 * kSecond, 0, "rbcast.norelay"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("policy-failover-generic",
                          "Closed-loop adaptation with no scripted updates: "
                          "a PolicyEngine rule watches the SEQ sequencer via "
                          "the failure detector; when a fault window "
                          "isolates it, the policy requests the switch to "
                          "the fault-tolerant CT protocol through the "
                          "service-generic UpdateApi, and the switch "
                          "completes once the window heals.");
    s.n = 4;
    s.initial_protocol = "abcast.seq";
    s.workload.rate_per_stack = 15.0;
    // Isolate the sequencer (node 0) in both directions for 1.5 s: long
    // enough for the FD (200 ms initial timeout) to suspect it and the
    // policy to fire, short enough that the switch completes after heal.
    {
      LossWindow w;
      w.from = 1500 * kMillisecond;
      w.until = 3 * kSecond;
      for (NodeId peer = 1; peer < 4; ++peer) {
        w.link_overrides.push_back({0, peer, 1.0, 0.0, 0});
        w.link_overrides.push_back({peer, 0, 1.0, 0.0, 0});
      }
      s.loss_windows = {std::move(w)};
    }
    s.policies = {{"seq-failover", "abcast", "abcast.seq", "abcast.ct",
                   "fd-suspect", 0, 0, 0.0, kSecond, 0}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("gm-switch",
                          "The dependent layer itself is replaced: group "
                          "membership is hot-swapped through the same "
                          "facade/inner pattern, coordinated through the "
                          "totally-ordered channel GM is built on, while "
                          "the abcast workload continues underneath.");
    s.n = 3;
    s.updates = {{3 * kSecond, 0, "gm.abcast"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("triple-switch-generic",
                          "One substrate for any service: a single run "
                          "hot-swaps reliable broadcast (eager -> "
                          "no-relay), consensus (ct -> mr) and atomic "
                          "broadcast (ct -> seq) through the one "
                          "request_update entry point — three distinct "
                          "services, three facades, zero mechanism-specific "
                          "driver code.");
    s.n = 3;
    s.duration = 8 * kSecond;
    s.updates = {
        {2500 * kMillisecond, 0, "rbcast.norelay"},
        {4500 * kMillisecond, 1, "consensus.mr"},
        {6500 * kMillisecond, 2, "abcast.seq"},
    };
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("consensus-switch-live",
                          "The paper's future-work extension: the consensus "
                          "protocol under an unmodified CT-ABcast is "
                          "switched from Chandra-Toueg to "
                          "Mostefaoui-Raynal mid-run.");
    s.n = 3;
    s.mechanism = Mechanism::kReplConsensus;
    s.initial_protocol = "consensus.ct";
    s.updates = {{3 * kSecond, 0, "consensus.mr"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("failure-drill",
                          "Kitchen sink: 5% loss throughout, a live "
                          "consensus switch, a crash shortly after it and a "
                          "transient partition — the examples/failure_drill "
                          "schedule as a reusable spec.");
    s.n = 5;
    s.duration = 8 * kSecond;
    s.drain = 45 * kSecond;
    s.mechanism = Mechanism::kReplConsensus;
    s.initial_protocol = "consensus.ct";
    s.base_drop = 0.05;
    s.workload.rate_per_stack = 5.0;
    s.updates = {{2 * kSecond, 0, "consensus.mr"}};
    s.crashes = {{3 * kSecond, 4}};
    s.partitions = {{4500 * kMillisecond, 6 * kSecond, {2}}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("churn-abcast",
                          "Churn campaign on the abcast layer: one stack "
                          "crashes and recovers, another joins the run late, "
                          "and the group hot-swaps CT -> SEQ -> CT through "
                          "it all.  The recovering and late-joining stacks "
                          "catch up through the facade's snapshot + replay "
                          "log (full-history state transfer) and must "
                          "converge to the final protocol audit-clean.");
    s.n = 5;
    s.duration = 8 * kSecond;
    s.crashes = {{1500 * kMillisecond, 3}};
    s.recoveries = {{3500 * kMillisecond, 3}};
    s.late_joins = {{2500 * kMillisecond, 4}};
    s.updates = {{3 * kSecond, 0, "abcast.seq"},
                 {5 * kSecond, 1, "abcast.ct"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("churn-rbcast",
                          "Churn campaign on the reliable-broadcast tier: "
                          "crash-recovery and a late join while rbcast is "
                          "hot-swapped eager -> no-relay -> eager under a "
                          "plain CT-ABcast.  Recovery rides the substrate's "
                          "kMetadata state transfer (version metadata only; "
                          "upper layers re-sync through their own catch-up) "
                          "plus the refresh switch that re-anchors every "
                          "stack at a fresh inner instance.");
    s.n = 5;
    s.duration = 8 * kSecond;
    s.mechanism = Mechanism::kReplRbcast;
    s.initial_protocol = "rbcast.eager";
    s.crashes = {{1500 * kMillisecond, 2}};
    s.recoveries = {{3500 * kMillisecond, 2}};
    s.late_joins = {{2500 * kMillisecond, 4}};
    s.updates = {{3 * kSecond, 0, "rbcast.norelay"},
                 {5 * kSecond, 1, "rbcast.eager"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("churn-double-layer",
                          "Churn with two managed layers at once: rbcast and "
                          "abcast are both behind replacement facades while "
                          "a stack crash-recovers and another joins late — "
                          "each recovery state-syncs both facades (metadata "
                          "for rbcast, full history for abcast) before the "
                          "next hot-swap lands.");
    s.n = 5;
    s.duration = 8 * kSecond;
    s.crashes = {{1500 * kMillisecond, 3}};
    s.recoveries = {{4 * kSecond, 3}};
    s.late_joins = {{2500 * kMillisecond, 4}};
    s.updates = {{3 * kSecond, 0, "rbcast.norelay"},
                 {5500 * kMillisecond, 1, "abcast.seq"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("churn-gm",
                          "Churn on the dependent layer: group membership is "
                          "hot-swapped while a stack crash-recovers and "
                          "another joins late.  GM recovers organically "
                          "(state_sync none): its switch topic rides the "
                          "abcast facade, so the recovered stack's replayed "
                          "abcast history re-performs every gm switch in "
                          "order.");
    s.n = 5;
    s.duration = 8 * kSecond;
    s.crashes = {{1500 * kMillisecond, 3}};
    s.recoveries = {{4 * kSecond, 3}};
    s.late_joins = {{2500 * kMillisecond, 4}};
    s.updates = {{3 * kSecond, 0, "gm.abcast"}};
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

/// Common base of the process-per-node deployments: real-process scale
/// needs a stretched failure detector (heartbeats are all-to-all) and the
/// O(n) no-relay broadcast, and the workload is per-stack — 50 stacks at
/// 2 msg/s are already 100 aggregated sends/s, every one delivered n times.
ScenarioSpec proc_base(std::string name, std::string description,
                       std::size_t n) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.engine = Engine::kProc;
  spec.n = n;
  spec.duration = 5 * kSecond;
  spec.drain = 30 * kSecond;  // proc/rt drains stop at quiescence anyway
  spec.workload.rate_per_stack = 2.0;
  spec.workload.message_size = 48;
  spec.fd_heartbeat = 500 * kMillisecond;
  spec.fd_timeout = 2 * kSecond;
  spec.rbcast_relay = false;
  return spec;
}

}  // namespace

std::vector<ScenarioSpec> curated_proc_scenarios() {
  std::vector<ScenarioSpec> out;

  {
    ScenarioSpec s = proc_base(
        "proc-flood-50",
        "Fifty OS processes on UDP sockets under steady load, one CT -> SEQ "
        "replacement mid-run: the baseline deployment shape.",
        50);
    s.updates = {{2500 * kMillisecond, 0, "abcast.seq"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = proc_base(
        "proc-churn-50",
        "Fifty processes with the full churn repertoire executed for real: "
        "a mid-run SIGKILL crash, a respawn recovery with state transfer, a "
        "late-joining process, a two-node partition installed in the socket "
        "receive path, and a CT -> SEQ switch through it all.",
        50);
    s.crashes = {{1500 * kMillisecond, 7}};
    s.recoveries = {{3500 * kMillisecond, 7}};
    s.late_joins = {{2500 * kMillisecond, 49}};
    s.partitions = {{1800 * kMillisecond, 2600 * kMillisecond, {3, 4}}};
    s.updates = {{3 * kSecond, 0, "abcast.seq"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = proc_base(
        "proc-switch-partition-50",
        "A replacement is requested while one process is partitioned away "
        "at the socket layer; the partition heals mid-window and the "
        "isolated process must still converge to the new version.",
        50);
    s.partitions = {{2 * kSecond, 3200 * kMillisecond, {11}}};
    s.updates = {{2500 * kMillisecond, 0, "abcast.seq"}};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = proc_base(
        "proc-flood-200",
        "Two hundred processes, static SEQ stack at minimum per-stack load: "
        "the scale ceiling run (not in CI; heartbeats stretched to 2 s, "
        "no-relay broadcast, ~200 aggregated sends/s).",
        200);
    s.mechanism = Mechanism::kNone;
    s.initial_protocol = "abcast.seq";
    s.duration = 4 * kSecond;
    s.workload.rate_per_stack = 1.0;
    s.fd_heartbeat = 2 * kSecond;
    s.fd_timeout = 5 * kSecond;
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = proc_base(
        "proc-orphan-mini",
        "Three processes, a few seconds of load and one switch: the "
        "smoke-sized deployment the orphan/interrupt tests drive.",
        3);
    s.duration = 3 * kSecond;
    s.workload.rate_per_stack = 5.0;
    s.fd_heartbeat = 0;  // library defaults are fine at n=3
    s.fd_timeout = 0;
    s.rbcast_relay = true;
    s.updates = {{1500 * kMillisecond, 0, "abcast.seq"}};
    out.push_back(std::move(s));
  }
  return out;
}

std::optional<ScenarioSpec> find_scenario(const std::string& name) {
  for (ScenarioSpec& spec : curated_scenarios()) {
    if (spec.name == name) return std::move(spec);
  }
  for (ScenarioSpec& spec : curated_proc_scenarios()) {
    if (spec.name == name) return std::move(spec);
  }
  return std::nullopt;
}

}  // namespace dpu::scenario
