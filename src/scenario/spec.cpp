#include "scenario/spec.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace dpu::scenario {

const char* engine_name(Engine e) {
  switch (e) {
    case Engine::kSim: return "sim";
    case Engine::kRt: return "rt";
    case Engine::kProc: return "proc";
  }
  return "?";
}

Engine engine_from_name(const std::string& name) {
  for (Engine e : {Engine::kSim, Engine::kRt, Engine::kProc}) {
    if (name == engine_name(e)) return e;
  }
  throw std::runtime_error("scenario: unknown engine '" + name + "'");
}

const char* mechanism_name(Mechanism m) {
  switch (m) {
    case Mechanism::kNone: return "none";
    case Mechanism::kRepl: return "repl";
    case Mechanism::kReplConsensus: return "repl-consensus";
    case Mechanism::kReplRbcast: return "repl-rbcast";
    case Mechanism::kReplGm: return "repl-gm";
    case Mechanism::kMaestro: return "maestro";
    case Mechanism::kGraceful: return "graceful";
  }
  return "?";
}

Mechanism mechanism_from_name(const std::string& name) {
  for (Mechanism m : {Mechanism::kNone, Mechanism::kRepl,
                      Mechanism::kReplConsensus, Mechanism::kReplRbcast,
                      Mechanism::kReplGm, Mechanism::kMaestro,
                      Mechanism::kGraceful}) {
    if (name == mechanism_name(m)) return m;
  }
  throw std::runtime_error("scenario: unknown mechanism '" + name + "'");
}

Mechanism default_mechanism_for_service(const std::string& service) {
  if (service == "abcast") return Mechanism::kRepl;
  if (service == "consensus") return Mechanism::kReplConsensus;
  if (service == "rbcast") return Mechanism::kReplRbcast;
  if (service == "gm") return Mechanism::kReplGm;
  return Mechanism::kNone;
}

// ---------------------------------------------------------------------------
// Managed-service plan
// ---------------------------------------------------------------------------

namespace {

/// Service the spec-level mechanism manages ("" for kNone).
const char* primary_service(Mechanism m) {
  switch (m) {
    case Mechanism::kRepl:
    case Mechanism::kMaestro:
    case Mechanism::kGraceful:
      return "abcast";
    case Mechanism::kReplConsensus:
      return "consensus";
    case Mechanism::kReplRbcast:
      return "rbcast";
    case Mechanism::kReplGm:
      return "gm";
    case Mechanism::kNone:
      return "";
  }
  return "";
}

}  // namespace

Mechanism ScenarioSpec::update_mechanism(const UpdateAction& u) const {
  if (!u.mechanism.empty()) return mechanism_from_name(u.mechanism);
  // A "none" spec stays none (validate() rejects its update plan outright).
  if (mechanism == Mechanism::kNone) return mechanism;
  const std::string svc = u.target_service();
  if (svc == primary_service(mechanism)) return mechanism;
  // A non-primary layer defaults to its repl-family facade; unknown services
  // fall through to kNone, which validate() rejects.
  return default_mechanism_for_service(svc);
}

std::map<std::string, Mechanism> ScenarioSpec::managed_services() const {
  std::map<std::string, Mechanism> managed;
  const std::string primary = primary_service(mechanism);
  if (!primary.empty()) managed[primary] = mechanism;
  for (const UpdateAction& u : updates) {
    try {
      managed.emplace(u.target_service(), update_mechanism(u));
    } catch (const std::runtime_error&) {
      // Unknown mechanism name; validate() reports it.
    }
  }
  for (const PolicySpec& p : policies) {
    managed.emplace(p.service, default_mechanism_for_service(p.service));
  }
  return managed;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

std::vector<std::string> ScenarioSpec::validate() const {
  std::vector<std::string> problems;
  auto problem = [&problems](std::string why) {
    problems.push_back(std::move(why));
  };

  if (name.empty()) problem("name must not be empty");
  // Upper bounds also catch negative JSON values wrapped through size_t:
  // without them a {"n": -1} spec would pass and hang the runner.
  if (n == 0 || n > kMaxStacks) {
    problem("n must be in [1, " + std::to_string(kMaxStacks) + "]");
  }
  if (duration <= 0) problem("duration must be positive");
  if (drain < 0) problem("drain must be non-negative");
  const TimePoint horizon = duration + drain;

  if (workload.rate_per_stack < 0) problem("workload rate must be >= 0");
  // ProbePayload::make needs room for its header (<= 26 bytes); the upper
  // bound rejects size_t-wrapped negatives from JSON.
  if (workload.message_size < 32 || workload.message_size > kMaxMessageSize) {
    problem("message_size must be in [32, " +
            std::to_string(kMaxMessageSize) + "]");
  }
  if (workload.start_after < 0 || workload.stop_after < 0) {
    problem("workload window must be non-negative");
  }
  if (workload.stop_after > duration) {
    problem("workload stop_after exceeds duration");
  }
  if (!workload.phases.empty() && workload.rate_per_stack <= 0) {
    problem("workload phases require a positive base rate");
  }
  for (const WorkloadPhase& p : workload.phases) {
    if (p.from < 0 || p.from >= p.until) {
      problem("workload phase must satisfy 0 <= from < until");
    }
    if (p.until > duration) problem("workload phase outlives the workload");
    if (p.value <= 0) {
      problem(p.kind == WorkloadPhase::Kind::kBurst
                  ? "burst factor must be positive"
                  : "ramp target rate must be positive");
    }
  }

  auto check_prob = [&problem](double p, const char* what) {
    if (p < 0.0 || p > 1.0) {
      problem(std::string(what) + " must be in [0,1]");
    }
  };
  check_prob(base_drop, "base_drop");
  check_prob(base_duplicate, "base_duplicate");

  std::set<NodeId> crashed;
  for (const CrashFault& c : crashes) {
    if (c.node >= n) problem("crash node out of range");
    if (c.at < 0 || c.at > horizon) problem("crash time outside the run");
    if (!crashed.insert(c.node).second) problem("node crashed twice");
  }
  std::set<NodeId> joining;
  for (const LateJoin& lj : late_joins) {
    if (lj.node >= n) {
      problem("late-join node out of range");
      continue;
    }
    // The runner realizes a late join as a crash at 1ms + a recovery at
    // `at`, so the join must leave room for that synthetic crash.
    if (lj.at <= kMillisecond || lj.at > horizon) {
      problem("late-join time must be in (1ms, duration+drain]");
    }
    if (!joining.insert(lj.node).second) problem("node late-joins twice");
    if (crashed.count(lj.node) != 0) {
      problem("late-join node " + std::to_string(lj.node) +
              " also appears in crashes (a late joiner is down from the "
              "start already)");
    }
  }
  // The consensus substrate (and therefore every update mechanism) assumes
  // a correct majority; scenarios that kill one are specification bugs.
  // Recoveries do not relax the rule: between crash and recovery the
  // crashed set must still leave a live majority.  Late joiners count as
  // down until they join, so they add to the crashed set here.
  if ((crashed.size() + joining.size()) * 2 >= n) {
    problem("crashes and late joins must leave a strict majority of "
            "stacks alive");
  }

  std::set<NodeId> recovered;
  for (const RecoverFault& rec : recoveries) {
    if (rec.node >= n) {
      problem("recovery node out of range");
      continue;
    }
    if (!recovered.insert(rec.node).second) problem("node recovered twice");
    if (rec.at < 0 || rec.at > horizon) {
      problem("recovery time outside the run");
    }
    if (joining.count(rec.node) != 0) {
      problem("node " + std::to_string(rec.node) +
              " both late-joins and recovers (a late join already expands "
              "to crash + recovery)");
      continue;
    }
    bool found = false;
    for (const CrashFault& c : crashes) {
      if (c.node != rec.node) continue;
      found = true;
      if (rec.at <= c.at) {
        problem("recovery of node " + std::to_string(rec.node) +
                " must be after its crash");
      }
    }
    if (!found) {
      problem("recovery of node " + std::to_string(rec.node) +
              " has no matching crash");
    }
  }

  for (const PartitionFault& p : partitions) {
    if (p.from < 0 || p.from >= p.until) {
      problem("partition window must satisfy 0 <= from < until");
    }
    if (p.until > horizon) {
      problem("partition outlives the run (it would never heal)");
    }
    if (p.isolated.empty() || p.isolated.size() >= n) {
      problem("partition must isolate a proper non-empty subset");
    }
    for (NodeId node : p.isolated) {
      if (node >= n) problem("partitioned node out of range");
    }
  }

  std::vector<std::pair<TimePoint, TimePoint>> windows;
  for (const LossWindow& w : loss_windows) {
    if (w.from < 0 || w.from >= w.until) {
      problem("loss window must satisfy 0 <= from < until");
    }
    check_prob(w.drop, "loss window drop");
    check_prob(w.duplicate, "loss window duplicate");
    for (const LinkOverride& o : w.link_overrides) {
      if (o.src >= n || o.dst >= n) problem("link override node out of range");
      check_prob(o.drop, "link override drop");
      check_prob(o.duplicate, "link override duplicate");
      if (o.extra_latency < 0) {
        problem("link override extra latency must be non-negative");
      }
    }
    windows.emplace_back(w.from, w.until);
  }
  std::sort(windows.begin(), windows.end());
  for (std::size_t i = 1; i < windows.size(); ++i) {
    if (windows[i].first < windows[i - 1].second) {
      problem("loss windows must not overlap");
      break;
    }
  }

  // The spec-level mechanism's own layer takes initial_protocol; a "none"
  // composition still binds an abcast protocol directly.
  const std::string primary_svc = primary_service(mechanism);
  const std::string expected_prefix =
      (primary_svc.empty() ? std::string("abcast") : primary_svc) + ".";
  if (initial_protocol.rfind(expected_prefix, 0) != 0) {
    problem("initial_protocol '" + initial_protocol + "' does not match " +
            mechanism_name(mechanism) + " (expected " + expected_prefix +
            "*)");
  }
  if (initial_consensus.rfind("consensus.", 0) != 0) {
    problem("initial_consensus '" + initial_consensus +
            "' must be a consensus.* library");
  }

  // Update plan: every action resolves to a (service, mechanism) pair; one
  // mechanism per service across the run.
  std::map<std::string, Mechanism> managed;
  const std::string primary = primary_service(mechanism);
  if (!primary.empty()) managed[primary] = mechanism;
  for (const UpdateAction& u : updates) {
    if (u.initiator >= n) problem("update initiator out of range");
    if (u.at < 0 || u.at > duration) {
      problem("update time outside the workload window");
    }
    Mechanism m = Mechanism::kNone;
    try {
      m = update_mechanism(u);
    } catch (const std::runtime_error&) {
      problem("update mechanism '" + u.mechanism + "' is unknown");
      continue;
    }
    if (m == Mechanism::kNone) {
      problem("update of '" + u.protocol +
              "' has no mechanism (mechanism 'none' cannot execute an "
              "update plan)");
      continue;
    }
    const std::string svc = u.target_service();
    const std::string mech_service = primary_service(m);
    const std::string mech_prefix = mech_service + ".";
    if (svc != mech_service) {
      problem("update of service '" + svc + "' cannot use mechanism '" +
              std::string(mechanism_name(m)) + "' (it manages '" +
              mech_service + "')");
    }
    if (u.protocol.rfind(mech_prefix, 0) != 0) {
      problem("update target '" + u.protocol + "' does not match " +
              mechanism_name(m) + " (expected " + mech_prefix + "*)");
    }
    auto [it, inserted] = managed.emplace(svc, m);
    if (!inserted && it->second != m) {
      problem("service '" + svc + "' is updated by both '" +
              mechanism_name(it->second) + "' and '" + mechanism_name(m) +
              "' — one mechanism per service");
    }
  }
  // Adaptation policies: each rule resolves like an update target — the
  // service gets its repl-family facade, one mechanism per service.
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const PolicySpec& p = policies[i];
    const std::string label =
        "policy " + (p.name.empty() ? std::to_string(i) : "'" + p.name + "'");
    const Mechanism m = default_mechanism_for_service(p.service);
    if (m == Mechanism::kNone) {
      problem(label + ": service '" + p.service + "' is not replaceable");
      continue;
    }
    const std::string svc_prefix = p.service + ".";
    if (p.to_protocol.rfind(svc_prefix, 0) != 0) {
      problem(label + ": target '" + p.to_protocol + "' does not provide '" +
              p.service + "' (expected " + svc_prefix + "*)");
    }
    if (!p.when_protocol.empty() &&
        p.when_protocol.rfind(svc_prefix, 0) != 0) {
      problem(label + ": watched protocol '" + p.when_protocol +
              "' does not provide '" + p.service + "'");
    }
    if (p.trigger == "fd-suspect") {
      if (p.node != kNoNode && p.node >= n) {
        problem(label + ": watched node out of range");
      }
    } else if (p.trigger == "latency") {
      if (p.latency_threshold <= 0) {
        problem(label + ": latency trigger needs a positive threshold");
      }
    } else if (p.trigger == "load") {
      if (p.rate_threshold <= 0) {
        problem(label + ": load trigger needs a positive rate threshold");
      }
    } else {
      problem(label + ": unknown trigger '" + p.trigger + "'");
    }
    if (p.window <= 0) problem(label + ": window must be positive");
    if (p.cooldown < 0) problem(label + ": cooldown must be non-negative");
    auto [it, inserted] = managed.emplace(p.service, m);
    if (!inserted && it->second != m) {
      problem(label + ": service '" + p.service + "' is already managed by '" +
              std::string(mechanism_name(it->second)) +
              "' — one mechanism per service");
    }
  }

  // Recovery and late join need a state-transfer path back into the group:
  // every repl-family facade provides one through the substrate (snapshot +
  // replay tail, or the consensus decided-history resend), but the maestro
  // and graceful baselines rebuild whole stacks with no such protocol.  The
  // runner additionally checks the registry's state_transfer capability for
  // each managed service (ProtocolRegistry::state_transfer) — a composition
  // fact validate() has no access to.
  if (!recoveries.empty() || !late_joins.empty()) {
    for (const auto& [svc, m] : managed) {
      if (m == Mechanism::kMaestro || m == Mechanism::kGraceful) {
        problem("recoveries/late joins cannot combine with mechanism '" +
                std::string(mechanism_name(m)) + "' on '" + svc +
                "' (no state-transfer path)");
      }
    }
  }

  {
    // Maestro finalizes the whole protocol layer and Graceful Adaptation
    // rebuilds its AAC's substrate expectations; both would destroy a
    // replacement facade composed for another layer.  Only the paper's
    // modular mechanism composes with additional replaceable services.
    auto abcast_it = managed.find("abcast");
    if (abcast_it != managed.end() && abcast_it->second != Mechanism::kRepl) {
      for (const auto& [svc, m] : managed) {
        (void)m;
        if (svc == "abcast") continue;
        problem("replacement of '" + svc +
                "' combines only with abcast mechanism 'repl' (not '" +
                std::string(mechanism_name(abcast_it->second)) + "')");
      }
    }
  }

  if (hop_cost < 0 || module_create_cost < 0) {
    problem("cost-model durations must be non-negative");
  }

  if (fd_heartbeat < 0 || fd_timeout < 0) {
    problem("fd_heartbeat/fd_timeout must be non-negative (0 = default)");
  }
  if (fd_heartbeat > 0 && fd_timeout > 0 && fd_timeout <= fd_heartbeat) {
    problem("fd_timeout must exceed fd_heartbeat (a timeout shorter than "
            "one heartbeat interval suspects every correct peer)");
  }

  if (sim_shards == 0) problem("sim_shards must be >= 1 (use 1 for serial)");
  if (sim_shards > n) {
    problem("sim_shards exceeds n (shards own node subsets; extras would "
            "idle)");
  }
  return problems;
}

// ---------------------------------------------------------------------------
// JSON round-trip.  Durations travel as int64 nanoseconds ("_ns" suffix) so
// that to_json/from_json is exact.
// ---------------------------------------------------------------------------

Json ScenarioSpec::to_json() const {
  Json j = Json::object();
  j.set("name", name);
  j.set("description", description);
  j.set("n", n);
  j.set("duration_ns", duration);
  j.set("drain_ns", drain);
  j.set("engine", engine_name(engine));
  j.set("mechanism", mechanism_name(mechanism));
  j.set("initial_protocol", initial_protocol);
  j.set("initial_consensus", initial_consensus);

  Json net = Json::object();
  net.set("drop", base_drop);
  net.set("duplicate", base_duplicate);
  j.set("net", std::move(net));

  Json w = Json::object();
  w.set("rate_per_stack", workload.rate_per_stack);
  w.set("message_size", workload.message_size);
  w.set("poisson", workload.poisson);
  w.set("start_after_ns", workload.start_after);
  w.set("stop_after_ns", workload.stop_after);
  Json phase_list = Json::array();
  for (const WorkloadPhase& p : workload.phases) {
    Json e = Json::object();
    e.set("kind",
          p.kind == WorkloadPhase::Kind::kBurst ? "burst" : "ramp");
    e.set("from_ns", p.from);
    e.set("until_ns", p.until);
    e.set(p.kind == WorkloadPhase::Kind::kBurst ? "factor" : "to_rate",
          p.value);
    phase_list.push(std::move(e));
  }
  w.set("phases", std::move(phase_list));
  j.set("workload", std::move(w));

  Json crash_list = Json::array();
  for (const CrashFault& c : crashes) {
    Json e = Json::object();
    e.set("at_ns", c.at);
    e.set("node", c.node);
    crash_list.push(std::move(e));
  }
  j.set("crashes", std::move(crash_list));

  Json recover_list = Json::array();
  for (const RecoverFault& rec : recoveries) {
    Json e = Json::object();
    e.set("at_ns", rec.at);
    e.set("node", rec.node);
    recover_list.push(std::move(e));
  }
  j.set("recoveries", std::move(recover_list));

  // Off the wire when empty, so pre-late-join specs serialize unchanged.
  if (!late_joins.empty()) {
    Json join_list = Json::array();
    for (const LateJoin& lj : late_joins) {
      Json e = Json::object();
      e.set("at_ns", lj.at);
      e.set("node", lj.node);
      join_list.push(std::move(e));
    }
    j.set("late_joins", std::move(join_list));
  }

  Json partition_list = Json::array();
  for (const PartitionFault& p : partitions) {
    Json e = Json::object();
    e.set("from_ns", p.from);
    e.set("until_ns", p.until);
    Json nodes = Json::array();
    for (NodeId node : p.isolated) nodes.push(node);
    e.set("isolated", std::move(nodes));
    partition_list.push(std::move(e));
  }
  j.set("partitions", std::move(partition_list));

  Json loss_list = Json::array();
  for (const LossWindow& w2 : loss_windows) {
    Json e = Json::object();
    e.set("from_ns", w2.from);
    e.set("until_ns", w2.until);
    e.set("drop", w2.drop);
    e.set("duplicate", w2.duplicate);
    Json overrides = Json::array();
    for (const LinkOverride& o : w2.link_overrides) {
      Json oe = Json::object();
      oe.set("src", o.src);
      oe.set("dst", o.dst);
      oe.set("drop", o.drop);
      oe.set("duplicate", o.duplicate);
      oe.set("extra_latency_ns", o.extra_latency);
      overrides.push(std::move(oe));
    }
    e.set("link_overrides", std::move(overrides));
    loss_list.push(std::move(e));
  }
  j.set("loss_windows", std::move(loss_list));

  Json update_list = Json::array();
  for (const UpdateAction& u : updates) {
    Json e = Json::object();
    e.set("at_ns", u.at);
    e.set("initiator", u.initiator);
    e.set("protocol", u.protocol);
    // Defaulted fields stay off the wire, so pre-UpdateApi specs serialize
    // exactly as they used to.
    if (!u.service.empty()) e.set("service", u.service);
    if (!u.mechanism.empty()) e.set("mechanism", u.mechanism);
    update_list.push(std::move(e));
  }
  j.set("updates", std::move(update_list));

  Json policy_list = Json::array();
  for (const PolicySpec& p : policies) {
    Json e = Json::object();
    if (!p.name.empty()) e.set("name", p.name);
    e.set("service", p.service);
    if (!p.when_protocol.empty()) e.set("when", p.when_protocol);
    e.set("to", p.to_protocol);
    e.set("trigger", p.trigger);
    if (p.trigger == "fd-suspect") {
      if (p.node != kNoNode) e.set("node", p.node);
    } else if (p.trigger == "latency") {
      e.set("latency_threshold_ns", p.latency_threshold);
      e.set("window_ns", p.window);
    } else {
      e.set("rate", p.rate_threshold);
      e.set("window_ns", p.window);
    }
    if (p.cooldown != 0) e.set("cooldown_ns", p.cooldown);
    policy_list.push(std::move(e));
  }
  j.set("policies", std::move(policy_list));

  Json cost = Json::object();
  cost.set("hop_cost_ns", hop_cost);
  cost.set("module_create_cost_ns", module_create_cost);
  j.set("cost", std::move(cost));

  // Deployment-scale knobs: off the wire at their defaults, so pre-cluster
  // spec documents (and their digests) stay byte-stable.
  if (fd_heartbeat != 0) j.set("fd_heartbeat_ns", fd_heartbeat);
  if (fd_timeout != 0) j.set("fd_timeout_ns", fd_timeout);
  if (!rbcast_relay) j.set("rbcast_relay", rbcast_relay);
  if (rt_sockets) j.set("rt_sockets", rt_sockets);

  // Off the wire at the default: sharding does not change results, and
  // leaving it out keeps pre-existing spec documents byte-stable.
  if (sim_shards != 1) j.set("sim_shards", sim_shards);

  j.set("max_retransmissions", max_retransmissions);
  return j;
}

namespace {

/// Rejects keys outside `allowed` — catches typos in hand-written specs
/// that would otherwise silently fall back to defaults.
void check_keys(const Json& obj, const char* where,
                std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw std::runtime_error(std::string("scenario: unknown key '") + key +
                               "' in " + where);
    }
  }
}

NodeId node_from(const Json& j) {
  const std::int64_t v = j.as_int();
  if (v < 0 || v >= static_cast<std::int64_t>(kNoNode)) {
    throw std::runtime_error("scenario: node id out of range");
  }
  return static_cast<NodeId>(v);
}

}  // namespace

ScenarioSpec ScenarioSpec::from_json(const Json& j) {
  check_keys(j, "spec",
             {"name", "description", "n", "duration_ns", "drain_ns",
              "engine", "mechanism", "initial_protocol", "initial_consensus",
              "net", "workload", "crashes", "recoveries", "late_joins",
              "partitions", "loss_windows", "updates", "policies", "cost",
              "fd_heartbeat_ns", "fd_timeout_ns", "rbcast_relay",
              "rt_sockets", "sim_shards", "max_retransmissions"});
  ScenarioSpec spec;
  if (const Json* v = j.find("name")) spec.name = v->as_string();
  if (const Json* v = j.find("description")) spec.description = v->as_string();
  if (const Json* v = j.find("n")) {
    spec.n = static_cast<std::size_t>(v->as_int());
  }
  if (const Json* v = j.find("duration_ns")) spec.duration = v->as_int();
  if (const Json* v = j.find("drain_ns")) spec.drain = v->as_int();
  if (const Json* v = j.find("engine")) {
    spec.engine = engine_from_name(v->as_string());
  }
  if (const Json* v = j.find("mechanism")) {
    spec.mechanism = mechanism_from_name(v->as_string());
  }
  if (const Json* v = j.find("initial_protocol")) {
    spec.initial_protocol = v->as_string();
  }
  if (const Json* v = j.find("initial_consensus")) {
    spec.initial_consensus = v->as_string();
  }
  if (const Json* net = j.find("net")) {
    check_keys(*net, "net", {"drop", "duplicate"});
    if (const Json* v = net->find("drop")) spec.base_drop = v->as_double();
    if (const Json* v = net->find("duplicate")) {
      spec.base_duplicate = v->as_double();
    }
  }
  if (const Json* w = j.find("workload")) {
    check_keys(*w, "workload",
               {"rate_per_stack", "message_size", "poisson", "start_after_ns",
                "stop_after_ns", "phases"});
    if (const Json* v = w->find("rate_per_stack")) {
      spec.workload.rate_per_stack = v->as_double();
    }
    if (const Json* v = w->find("message_size")) {
      spec.workload.message_size = static_cast<std::size_t>(v->as_int());
    }
    if (const Json* v = w->find("poisson")) {
      spec.workload.poisson = v->as_bool();
    }
    if (const Json* v = w->find("start_after_ns")) {
      spec.workload.start_after = v->as_int();
    }
    if (const Json* v = w->find("stop_after_ns")) {
      spec.workload.stop_after = v->as_int();
    }
    if (const Json* list = w->find("phases")) {
      for (const Json& e : list->items()) {
        check_keys(e, "workload phase",
                   {"kind", "from_ns", "until_ns", "factor", "to_rate"});
        WorkloadPhase p;
        const std::string kind = e.at("kind").as_string();
        if (kind == "burst") {
          p.kind = WorkloadPhase::Kind::kBurst;
        } else if (kind == "ramp") {
          p.kind = WorkloadPhase::Kind::kRamp;
        } else {
          throw std::runtime_error("scenario: unknown workload phase kind '" +
                                   kind + "'");
        }
        p.from = e.at("from_ns").as_int();
        p.until = e.at("until_ns").as_int();
        const char* value_key =
            p.kind == WorkloadPhase::Kind::kBurst ? "factor" : "to_rate";
        p.value = e.at(value_key).as_double();
        spec.workload.phases.push_back(p);
      }
    }
  }
  if (const Json* list = j.find("crashes")) {
    for (const Json& e : list->items()) {
      check_keys(e, "crash", {"at_ns", "node"});
      CrashFault c;
      c.at = e.at("at_ns").as_int();
      c.node = node_from(e.at("node"));
      spec.crashes.push_back(c);
    }
  }
  if (const Json* list = j.find("recoveries")) {
    for (const Json& e : list->items()) {
      check_keys(e, "recovery", {"at_ns", "node"});
      RecoverFault rec;
      rec.at = e.at("at_ns").as_int();
      rec.node = node_from(e.at("node"));
      spec.recoveries.push_back(rec);
    }
  }
  if (const Json* list = j.find("late_joins")) {
    for (const Json& e : list->items()) {
      check_keys(e, "late join", {"at_ns", "node"});
      LateJoin lj;
      lj.at = e.at("at_ns").as_int();
      lj.node = node_from(e.at("node"));
      spec.late_joins.push_back(lj);
    }
  }
  if (const Json* list = j.find("partitions")) {
    for (const Json& e : list->items()) {
      check_keys(e, "partition", {"from_ns", "until_ns", "isolated"});
      PartitionFault p;
      p.from = e.at("from_ns").as_int();
      p.until = e.at("until_ns").as_int();
      for (const Json& node : e.at("isolated").items()) {
        p.isolated.push_back(node_from(node));
      }
      spec.partitions.push_back(std::move(p));
    }
  }
  if (const Json* list = j.find("loss_windows")) {
    for (const Json& e : list->items()) {
      check_keys(e, "loss window",
                 {"from_ns", "until_ns", "drop", "duplicate",
                  "link_overrides"});
      LossWindow w;
      w.from = e.at("from_ns").as_int();
      w.until = e.at("until_ns").as_int();
      if (const Json* v = e.find("drop")) w.drop = v->as_double();
      if (const Json* v = e.find("duplicate")) w.duplicate = v->as_double();
      if (const Json* list2 = e.find("link_overrides")) {
        for (const Json& oe : list2->items()) {
          check_keys(oe, "link override",
                     {"src", "dst", "drop", "duplicate", "extra_latency_ns"});
          LinkOverride o;
          o.src = node_from(oe.at("src"));
          o.dst = node_from(oe.at("dst"));
          if (const Json* v = oe.find("drop")) o.drop = v->as_double();
          if (const Json* v = oe.find("duplicate")) {
            o.duplicate = v->as_double();
          }
          if (const Json* v = oe.find("extra_latency_ns")) {
            o.extra_latency = v->as_int();
          }
          w.link_overrides.push_back(o);
        }
      }
      spec.loss_windows.push_back(std::move(w));
    }
  }
  if (const Json* list = j.find("updates")) {
    for (const Json& e : list->items()) {
      check_keys(e, "update",
                 {"at_ns", "initiator", "protocol", "service", "mechanism"});
      UpdateAction u;
      u.at = e.at("at_ns").as_int();
      u.initiator = node_from(e.at("initiator"));
      u.protocol = e.at("protocol").as_string();
      if (const Json* v = e.find("service")) u.service = v->as_string();
      if (const Json* v = e.find("mechanism")) u.mechanism = v->as_string();
      spec.updates.push_back(std::move(u));
    }
  }
  if (const Json* list = j.find("policies")) {
    for (const Json& e : list->items()) {
      check_keys(e, "policy",
                 {"name", "service", "when", "to", "trigger", "node",
                  "latency_threshold_ns", "rate", "window_ns", "cooldown_ns"});
      PolicySpec p;
      if (const Json* v = e.find("name")) p.name = v->as_string();
      if (const Json* v = e.find("service")) p.service = v->as_string();
      if (const Json* v = e.find("when")) p.when_protocol = v->as_string();
      p.to_protocol = e.at("to").as_string();
      if (const Json* v = e.find("trigger")) p.trigger = v->as_string();
      if (const Json* v = e.find("node")) p.node = node_from(*v);
      if (const Json* v = e.find("latency_threshold_ns")) {
        p.latency_threshold = v->as_int();
      }
      if (const Json* v = e.find("rate")) p.rate_threshold = v->as_double();
      if (const Json* v = e.find("window_ns")) p.window = v->as_int();
      if (const Json* v = e.find("cooldown_ns")) p.cooldown = v->as_int();
      spec.policies.push_back(std::move(p));
    }
  }
  if (const Json* cost = j.find("cost")) {
    check_keys(*cost, "cost", {"hop_cost_ns", "module_create_cost_ns"});
    if (const Json* v = cost->find("hop_cost_ns")) spec.hop_cost = v->as_int();
    if (const Json* v = cost->find("module_create_cost_ns")) {
      spec.module_create_cost = v->as_int();
    }
  }
  if (const Json* v = j.find("fd_heartbeat_ns")) {
    spec.fd_heartbeat = v->as_int();
  }
  if (const Json* v = j.find("fd_timeout_ns")) spec.fd_timeout = v->as_int();
  if (const Json* v = j.find("rbcast_relay")) {
    spec.rbcast_relay = v->as_bool();
  }
  if (const Json* v = j.find("rt_sockets")) spec.rt_sockets = v->as_bool();
  if (const Json* v = j.find("sim_shards")) {
    const std::int64_t raw = v->as_int();
    if (raw < 1) throw std::runtime_error("scenario: sim_shards < 1");
    spec.sim_shards = static_cast<std::size_t>(raw);
  }
  if (const Json* v = j.find("max_retransmissions")) {
    const std::int64_t raw = v->as_int();
    if (raw < 0) throw std::runtime_error("scenario: max_retransmissions < 0");
    spec.max_retransmissions = static_cast<std::uint64_t>(raw);
  }
  return spec;
}

}  // namespace dpu::scenario
