// Minimal JSON value type for the scenario subsystem.
//
// Scenario specs and campaign results are exchanged as JSON so that CI can
// gate on them and external tooling can generate scenarios.  The repo has no
// third-party dependencies, so this is a small self-contained
// writer/parser: objects preserve insertion order (deterministic output —
// the campaign's "same seed => identical JSON" guarantee depends on it),
// integers survive round-trips exactly (virtual times are int64
// nanoseconds), and parse errors throw with a byte offset.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dpu::scenario {

class Json;

/// Thrown by Json::parse on malformed input.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(std::int64_t v) : type_(Type::kInt), int_(v) {}
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}
  Json(unsigned int v) : Json(static_cast<std::int64_t>(v)) {}
  Json(std::uint64_t v) : Json(static_cast<std::int64_t>(v)) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }

  // ---- Readers (throw std::runtime_error on type mismatch) ----------------

  [[nodiscard]] bool as_bool() const {
    expect(Type::kBool, "bool");
    return bool_;
  }

  [[nodiscard]] std::int64_t as_int() const {
    if (type_ == Type::kDouble) return static_cast<std::int64_t>(double_);
    expect(Type::kInt, "integer");
    return int_;
  }

  [[nodiscard]] double as_double() const {
    if (type_ == Type::kInt) return static_cast<double>(int_);
    expect(Type::kDouble, "number");
    return double_;
  }

  [[nodiscard]] const std::string& as_string() const {
    expect(Type::kString, "string");
    return string_;
  }

  /// Array elements (empty for non-arrays is NOT tolerated: throws).
  [[nodiscard]] const std::vector<Json>& items() const {
    expect(Type::kArray, "array");
    return items_;
  }

  /// Object members in insertion order.
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const {
    expect(Type::kObject, "object");
    return members_;
  }

  [[nodiscard]] std::size_t size() const {
    return type_ == Type::kArray ? items_.size() : members_.size();
  }

  /// Object lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const {
    if (type_ != Type::kObject) return nullptr;
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Object lookup; throws when absent.
  [[nodiscard]] const Json& at(std::string_view key) const {
    const Json* v = find(key);
    if (v == nullptr) {
      throw std::runtime_error("json: missing key '" + std::string(key) + "'");
    }
    return *v;
  }

  // ---- Builders -----------------------------------------------------------

  Json& set(std::string key, Json value) {
    expect(Type::kObject, "object");
    for (auto& [k, v] : members_) {
      if (k == key) {
        v = std::move(value);
        return *this;
      }
    }
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  Json& push(Json value) {
    expect(Type::kArray, "array");
    items_.push_back(std::move(value));
    return *this;
  }

  // ---- Serialization ------------------------------------------------------

  /// Compact when `indent` < 0; pretty-printed with `indent` spaces per
  /// level otherwise.  Output is deterministic for a given value.
  [[nodiscard]] std::string dump(int indent = -1) const;

  [[nodiscard]] static Json parse(std::string_view text);

 private:
  void expect(Type t, const char* what) const {
    if (type_ != t) {
      throw std::runtime_error(std::string("json: value is not a ") + what);
    }
  }

  void write(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace dpu::scenario
