// WorldControl — the boundary between scenario/bench drivers and an
// execution engine.
//
// HostEnv (runtime/host.hpp) is the per-stack half of the engine contract:
// protocol modules are written against it and nothing else.  WorldControl is
// the *driver* half: everything the scenario runner, the campaign engine and
// the benches need in order to compose stacks, schedule faults and updates,
// run a world to quiescence and harvest counters — without naming a concrete
// engine.  The deterministic simulator (src/sim) and the real-thread engine
// (src/rt) both implement it, so one ScenarioSpec executes on either engine
// through the same code path.
//
// Semantics differ where the engines fundamentally differ, and the interface
// is explicit about it:
//
//  * Time is virtual on the simulator and a shared monotonic clock on rt;
//    control events (`at`, `at_node`) are exact on the simulator and
//    best-effort (scheduler jitter) on rt.
//  * `run` is deterministic replay on the simulator (it returns when the
//    event heap drains or `deadline` passes) and wall-clock execution on rt
//    (it returns when `quiesced` reports stability after `active_until`, or
//    at `deadline`).  Simulator output is byte-reproducible; rt output is
//    audited for properties, never for byte identity.
//  * `recover` only resets *engine-level* stack state (fresh Stack object,
//    bumped incarnation, purged events).  Module composition is the
//    driver's job: call `run_on_node` afterwards and rebuild the stack
//    there, exactly like initial composition.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "runtime/time.hpp"
#include "util/ids.hpp"
#include "util/link_table.hpp"

namespace dpu {

class Stack;

/// Directional per-link fault: replaces the world's drop/duplicate
/// probabilities on one (src, dst) link and adds `extra_latency` to every
/// delivered packet.  Installed/cleared by the scenario runner for the
/// spec's `link_overrides` windows (asymmetric lossy links, slow links).
struct LinkFault {
  double drop = 0.0;
  double duplicate = 0.0;
  Duration extra_latency = 0;
};

/// Dense (src, dst) -> fault table shared by both engines, on the shared
/// LinkTable layout.  Lazily allocated: stays empty (zero per-packet cost)
/// until the first install; clearing against an empty table is a no-op.
class LinkFaultTable {
 public:
  void set(std::size_t world_size, NodeId src, NodeId dst,
           std::optional<LinkFault> fault) {
    if (faults_.empty()) {
      if (!fault.has_value()) return;
      faults_.reset(world_size);
    }
    faults_.at(src, dst) = std::move(fault);
  }

  /// The fault installed on (src, dst), or nullptr.
  [[nodiscard]] const LinkFault* find(std::size_t /*world_size*/, NodeId src,
                                      NodeId dst) const {
    if (faults_.empty()) return nullptr;
    const auto& slot = faults_.at(src, dst);
    return slot.has_value() ? &*slot : nullptr;
  }

  [[nodiscard]] bool empty() const { return faults_.empty(); }

 private:
  LinkTable<std::optional<LinkFault>> faults_;
};

/// Driver-side control surface of an execution engine.
class WorldControl {
 public:
  virtual ~WorldControl() = default;

  // ---- Topology ------------------------------------------------------------

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual Stack& stack(NodeId node) = 0;

  /// Engine time: virtual on the simulator, monotonic-since-construction on
  /// rt.  Comparable with the times handed to at()/at_node().
  [[nodiscard]] virtual TimePoint now() const = 0;

  // ---- Scheduled control events ---------------------------------------------

  /// Schedules a driver closure at absolute time `t` (no CPU accounting).
  /// On rt the closure runs on the control thread driving run().  Must be
  /// called before run().
  virtual void at(TimePoint t, std::function<void()> fn) = 0;

  /// Schedules a closure on `node`'s executor at time `t`, as if triggered
  /// by a local event.  Must be called before run().
  virtual void at_node(TimePoint t, NodeId node, std::function<void()> fn) = 0;

  /// Runs `fn` on `node`'s executor, synchronously from the caller's point
  /// of view.  Direct call on the simulator; call-and-wait marshalling on
  /// rt.  The scenario runner uses this for composition (initial and
  /// post-recovery), which must happen on the stack's own thread.
  virtual void run_on_node(NodeId node, std::function<void()> fn) = 0;

  // ---- Fault injection ------------------------------------------------------

  /// Crashes a stack: its pending and future events are discarded and
  /// packets addressed to it vanish.
  virtual void crash(NodeId node) = 0;

  /// Quiesces a *crashed* stack: after this returns, nothing of the dead
  /// incarnation executes anymore and its module state is safe to read
  /// from the calling (driver/control) thread.  No-op on the simulator
  /// (single-threaded); on rt it joins the crashed stack's threads.  Call
  /// before harvesting counters from a stack that is about to recover().
  virtual void quiesce_node(NodeId /*node*/) {}

  /// Restarts a crashed stack at the engine level: a fresh Stack object on
  /// the same node id, a bumped incarnation (HostEnv::incarnation), no
  /// surviving events, timers or packets of the old incarnation.  The
  /// caller re-composes protocol modules afterwards via run_on_node.
  virtual void recover(NodeId node) = 0;

  [[nodiscard]] virtual bool crashed(NodeId node) const = 0;
  [[nodiscard]] virtual std::set<NodeId> crashed_set() const = 0;

  /// Installs a link filter: packets with filter(src,dst)==false are
  /// dropped.  Used for partitions; pass nullptr to heal.
  virtual void set_link_filter(
      std::function<bool(NodeId, NodeId)> deliverable) = 0;

  /// Adjusts the world-wide per-packet loss/duplication probabilities
  /// (applies to packets sent from now on).
  virtual void set_loss(double drop_probability,
                        double duplicate_probability) = 0;

  /// Installs (or clears, with nullopt) a directional per-link fault that
  /// overrides the world-wide probabilities on (src, dst) only.
  virtual void set_link_fault(NodeId src, NodeId dst,
                              std::optional<LinkFault> fault) = 0;

  // ---- Execution ------------------------------------------------------------

  /// Runs the world.  `active_until` is the end of the scheduled activity
  /// window (workload + faults + updates); `deadline` caps the drain that
  /// follows.  The simulator replays events deterministically until
  /// `deadline` (returning early when the heap empties) and ignores
  /// `quiesced`.  rt runs wall-clock until `active_until`, then polls
  /// `quiesced` (from the control thread; it may inspect stacks via
  /// run_on_node) and returns at the first true, or at `deadline`; rt also
  /// stops all stack threads before returning so the caller can harvest
  /// module state without racing.  Returns false if `max_events` was
  /// exhausted first (simulator runaway guard).
  virtual bool run(TimePoint active_until, TimePoint deadline,
                   std::uint64_t max_events,
                   const std::function<bool()>& quiesced = nullptr) = 0;

  // ---- Counters -------------------------------------------------------------

  [[nodiscard]] virtual std::uint64_t packets_sent() const = 0;
  [[nodiscard]] virtual std::uint64_t packets_dropped() const = 0;
};

}  // namespace dpu
