// Time representation shared by the simulated and real-time engines.
//
// Both engines express time as signed 64-bit nanoseconds from an arbitrary
// epoch (world start).  Using a plain integer instead of std::chrono keeps
// virtual timestamps trivially serializable and arithmetic explicit.
#pragma once

#include <cstdint>

namespace dpu {

/// Nanoseconds since world start.
using TimePoint = std::int64_t;

/// Nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

[[nodiscard]] constexpr double to_micros(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

[[nodiscard]] constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

[[nodiscard]] constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace dpu
