// HostEnv — the boundary between a protocol stack and its execution engine.
//
// Every protocol module in this repository is written against this interface
// only; the discrete-event simulator (src/sim) and the real-thread engine
// (src/rt) both implement it, so the same protocol binaries run deterministic
// experiments and real multi-threaded deployments (DESIGN.md §2).
//
// Threading model: a stack is a single-threaded event processor.  The engine
// guarantees that timer callbacks, packet deliveries and post()ed closures
// for one stack never run concurrently, so modules need no locks (Core
// Guidelines CP.3: minimize explicit sharing).
#pragma once

#include <cstdint>
#include <functional>

#include "runtime/time.hpp"
#include "util/bytes.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace dpu {

/// Handle for a pending timer; 0 is never a valid id.
using TimerId = std::uint64_t;
inline constexpr TimerId kNoTimer = 0;

/// Per-origin sequence counters start at (incarnation << shift) + 1, so the
/// sequence space is partitioned into per-incarnation epochs: receivers
/// recognize a restarted peer by a sequence from a higher epoch and reset
/// their per-peer state, and a recovered stack can never replay sequence
/// numbers of its previous life.  48 bits leave room for ~2.8e14 messages
/// per incarnation and 65535 restarts.
inline constexpr int kIncarnationSeqShift = 48;

[[nodiscard]] inline std::uint64_t incarnation_seq_base(
    std::uint32_t incarnation) {
  return static_cast<std::uint64_t>(incarnation) << kIncarnationSeqShift;
}

[[nodiscard]] inline std::uint64_t seq_epoch(std::uint64_t seq) {
  return seq >> kIncarnationSeqShift;
}

/// RNG substream index for a recovered stack's new incarnation — the new
/// life must not replay the old one's randomness.  Shared by both engines
/// so they cannot drift.  The 2^32 base keeps every incarnation substream
/// clear of the other substream families (per-node 0..n, per-link
/// 1'000'000 + n*n) for any node count and incarnation.
[[nodiscard]] inline std::uint64_t incarnation_rng_substream(
    NodeId node, std::uint32_t incarnation) {
  return (1ULL << 32) + (static_cast<std::uint64_t>(incarnation) << 8) + node;
}

/// Engine services available to one stack.
class HostEnv {
 public:
  virtual ~HostEnv() = default;

  /// This stack's node id (0..world_size-1).
  [[nodiscard]] virtual NodeId node_id() const = 0;

  /// Number of stacks in the world.  Static membership; the GM protocol
  /// layers dynamic views on top.
  [[nodiscard]] virtual std::size_t world_size() const = 0;

  /// Current time.  Virtual in the simulator, monotonic clock in rt.
  [[nodiscard]] virtual TimePoint now() const = 0;

  /// Current time *including* CPU work charged during the running event.
  /// The simulator returns max(now, busy-until); the real-time engine
  /// returns now() (real cycles already advanced the clock).  Latency
  /// probes use this so that processing costs on the delivery path count.
  [[nodiscard]] virtual TimePoint busy_now() const { return now(); }

  /// One-shot timer; the callback runs on this stack's executor.  Returns a
  /// handle usable with cancel_timer.  `after` is clamped to >= 0.
  virtual TimerId set_timer(Duration after, std::function<void()> cb) = 0;

  /// Cancels a pending timer; no-op if it already fired or was cancelled.
  virtual void cancel_timer(TimerId id) = 0;

  /// Sends an unreliable datagram to `dst` (may be dropped, duplicated or
  /// reordered by the network).  Sending to self is delivered like any other
  /// packet.  This is the engine half of the paper's `Net` service; the UDP
  /// module adapts it into a composable service.  The Payload is shared, not
  /// copied: duplication and multi-link fan-out bump a refcount only.
  virtual void send_packet(NodeId dst, Payload data) = 0;

  /// Schedules a closure on this stack's executor, after currently queued
  /// work.  Used to break call cycles and defer work out of upcalls.
  virtual void post(std::function<void()> fn) = 0;

  /// Per-stack deterministic RNG stream (seeded from the world seed).
  [[nodiscard]] virtual Rng& rng() = 0;

  /// Accounts `cost` of CPU work to this stack.  The simulator advances the
  /// stack's busy-time (creating queueing under load, DESIGN.md §8); the
  /// real-time engine ignores it because real cycles are already spent.
  virtual void charge(Duration cost) = 0;

  /// True once the engine has crashed this stack (fault injection).  Modules
  /// don't normally consult this; the engine stops delivering events to
  /// crashed stacks.
  [[nodiscard]] virtual bool crashed() const = 0;

  /// Incarnation stamp of this stack: 0 for the original boot; every
  /// crash-recovery (WorldControl::recover) assigns a fresh, world-globally
  /// increasing stamp.  Modules that assign per-origin sequence numbers
  /// fold this into the high bits of their counters (see
  /// kIncarnationSeqShift) so a recovered stack's fresh streams never
  /// collide with sequences its previous incarnation already used — which
  /// is what lets peers tell "restarted" from "duplicate" without any
  /// wire-format change.  Global (not per-node) growth matters: a stream
  /// epoch adopted from some restarted peer must also be outgrown by the
  /// adopter's own next restart.
  [[nodiscard]] virtual std::uint32_t incarnation() const { return 0; }

  /// Registers the single ingress handler for packets addressed to this
  /// stack (the UDP module).  Replacing the handler is allowed (Maestro-style
  /// full-stack rebuilds re-register); packets arriving while no handler is
  /// installed are dropped, matching UDP semantics.
  virtual void set_packet_handler(
      std::function<void(NodeId src, const Payload& data)> handler) = 0;
};

/// Engine-side hook for delivering received packets into a stack.  The UDP
/// module registers itself here.
using PacketHandler = std::function<void(NodeId src, const Payload& data)>;

}  // namespace dpu
