#include "net/batch.hpp"

namespace dpu {

namespace {

/// LEB128 length of `v` (mirrors BufWriter::put_varint byte count).
[[nodiscard]] std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

std::size_t batch_message_wire_size(std::size_t payload_size) {
  return sizeof(std::uint64_t) + varint_size(payload_size) + payload_size;
}

void encode_batch_frame(BufWriter& w,
                        const std::vector<BatchMessage>& messages) {
  w.put_u8(kBatchFrameVersion);
  w.put_varint(messages.size());
  for (const BatchMessage& m : messages) {
    w.put_u64(m.channel);
    w.put_blob(m.payload);
  }
}

void decode_batch_frame(const Payload& body, std::vector<BatchMessage>& out) {
  out.clear();
  if (body.size() > kMaxBatchFrameBytes) {
    throw CodecError("batch frame exceeds size ceiling");
  }
  BufReader r(body);
  const std::uint8_t version = r.get_u8();
  if (version != kBatchFrameVersion) {
    throw CodecError("unknown batch frame version");
  }
  const std::uint64_t count = r.get_varint();
  if (count == 0) throw CodecError("empty batch frame");
  if (count > kMaxBatchMessages || count > r.remaining()) {
    // Every message costs at least one byte on the wire, so a count larger
    // than the remaining bytes is forged/corrupt — reject before reserving.
    throw CodecError("batch frame count exceeds ceiling");
  }
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    BatchMessage m;
    m.channel = r.get_u64();
    m.payload = r.get_blob_payload();
    out.push_back(std::move(m));
  }
  r.expect_done();
}

}  // namespace dpu
