// RBcast — eager reliable broadcast over RP2P.
//
// Algorithm (classic eager/"Lamport" reliable broadcast): the origin sends
// (origin, seq, payload) to every stack including itself; on the *first*
// receipt of a given (origin, seq), a stack relays the message to all other
// stacks and delivers it.  The relay guarantees: if any stack delivers m,
// every correct stack eventually delivers m, even if the origin crashed
// mid-broadcast — the agreement property consensus (DECIDE dissemination)
// and the ABcast protocols build on.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "core/module.hpp"
#include "core/stack.hpp"
#include "net/services.hpp"

namespace dpu {

struct RbcastConfig {
  /// Relay on first receipt.  Disabling reduces the message complexity
  /// from O(n^2) to O(n) but forfeits agreement when the origin crashes
  /// mid-broadcast; the ablation bench measures the difference.
  bool relay = true;
  std::size_t max_pending_per_channel = 100'000;
};

class RbcastModule final : public Module, public RbcastApi {
 public:
  using Config = RbcastConfig;

  static constexpr char kProtocolName[] = "net.rbcast";

  static RbcastModule* create(Stack& stack,
                              const std::string& service = kRbcastService,
                              Config config = Config{});

  /// Registers "net.rbcast": requires rp2p.
  static void register_protocol(ProtocolLibrary& library,
                                Config config = Config{});

  RbcastModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // RbcastApi
  void rbcast(ChannelId channel, const Bytes& payload) override;
  void rbcast_bind_channel(ChannelId channel, BroadcastHandler handler) override;
  void rbcast_release_channel(ChannelId channel) override;

  [[nodiscard]] std::uint64_t broadcasts_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t deliveries() const { return delivered_; }
  [[nodiscard]] std::uint64_t relays() const { return relays_; }

 private:
  void on_message(NodeId from, const Bytes& data);
  void deliver(ChannelId channel, NodeId origin, const Bytes& payload);
  void send_to(NodeId dst, const Bytes& wire);

  Config config_;
  ServiceRef<Rp2pApi> rp2p_;
  std::uint64_t next_seq_ = 1;
  /// Delivered (origin, seq) pairs, for duplicate suppression.
  std::unordered_set<MsgId, MsgIdHash> seen_;
  std::unordered_map<ChannelId, BroadcastHandler> channels_;
  std::unordered_map<ChannelId, std::deque<std::pair<NodeId, Bytes>>>
      pending_channel_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t relays_ = 0;
};

}  // namespace dpu
