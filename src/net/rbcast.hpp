// RBcast — eager reliable broadcast over RP2P.
//
// Algorithm (classic eager/"Lamport" reliable broadcast): the origin sends
// (origin, seq, payload) to every stack including itself; on the *first*
// receipt of a given (origin, seq), a stack relays the message to all other
// stacks and delivers it.  The relay guarantees: if any stack delivers m,
// every correct stack eventually delivers m, even if the origin crashed
// mid-broadcast — the agreement property consensus (DECIDE dissemination)
// and the ABcast protocols build on.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <unordered_map>

#include "core/module.hpp"
#include "core/stack.hpp"
#include "net/services.hpp"

namespace dpu {

struct RbcastConfig {
  /// Relay on first receipt.  Disabling reduces the message complexity
  /// from O(n^2) to O(n) but forfeits agreement when the origin crashes
  /// mid-broadcast; the ablation bench measures the difference, and the
  /// "rbcast.norelay" library exposes it as a switchable protocol variant.
  bool relay = true;
  std::size_t max_pending_per_channel = 100'000;
  /// RP2P channel this instance sends and receives on.  The default is the
  /// singleton substrate channel; dynamically created instances (replacement
  /// versions) derive a channel from their cross-stack-identical instance
  /// name so two coexisting versions never share one.
  ChannelId rp2p_channel = kRbcastChannel;
};

class RbcastModule final : public Module, public RbcastApi {
 public:
  using Config = RbcastConfig;

  static constexpr char kProtocolName[] = "rbcast.eager";
  static constexpr char kProtocolNameNoRelay[] = "rbcast.norelay";

  /// `instance_name` defaults to the service name; dynamic instances pass
  /// their cross-stack-identical versioned name for trace correlation.
  static RbcastModule* create(Stack& stack,
                              const std::string& service = kRbcastService,
                              Config config = Config{},
                              const std::string& instance_name = "");

  /// Registers "rbcast.eager" (relay-on-first-receipt) and "rbcast.norelay"
  /// (O(n) messages, no crash agreement): both require rp2p.  Dynamic
  /// instances take their rp2p channel from the "instance" param.
  static void register_protocol(ProtocolLibrary& library,
                                Config config = Config{});

  RbcastModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // RbcastApi
  void rbcast(ChannelId channel, Payload payload) override;
  void rbcast_bind_channel(ChannelId channel, BroadcastHandler handler) override;
  void rbcast_release_channel(ChannelId channel) override;

  [[nodiscard]] std::uint64_t broadcasts_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t deliveries() const { return delivered_; }
  [[nodiscard]] std::uint64_t relays() const { return relays_; }

 private:
  void on_message(NodeId from, const Payload& data);
  void deliver(ChannelId channel, NodeId origin, const Payload& payload);
  void send_to(NodeId dst, const Payload& wire);

  /// Duplicate suppression per origin.  Broadcast seqs from one origin are
  /// contiguous from base+1 within one incarnation epoch (base = epoch <<
  /// kIncarnationSeqShift), so the common case is a watermark bump — O(1),
  /// no allocation, and bounded memory even over arbitrarily long runs (the
  /// old per-message hash set grew forever).  `ahead` only holds seqs that
  /// arrived past a gap, which rp2p's FIFO guarantee makes rare.
  struct EpochDedup {
    std::uint64_t next = 1;         ///< lowest seq not yet seen contiguously
    std::set<std::uint64_t> ahead;  ///< seen seqs beyond `next`
  };

  /// Per-origin dedup across incarnations.  The current epoch's watermark
  /// sits inline (hot path: one compare); watermarks of earlier epochs are
  /// archived so late relays of a dead incarnation's messages still dedup
  /// *and still deliver* — agreement must hold for a message delivered
  /// somewhere even if its origin restarted before every stack saw it.
  struct OriginDedup {
    std::uint64_t epoch = 0;
    EpochDedup cur;
    std::map<std::uint64_t, EpochDedup> old_epochs;
  };

  /// Returns true on first receipt of (origin, seq).
  [[nodiscard]] bool mark_seen(const MsgId& id);

  Config config_;
  ServiceRef<Rp2pApi> rp2p_;
  std::uint64_t next_seq_ = 1;  ///< re-based onto the incarnation in start()
  std::vector<OriginDedup> seen_;  ///< indexed by origin
  /// Bound channels (reference-stable dispatch; see HandlerTable).
  HandlerTable<ChannelId, BroadcastHandler> channels_;
  std::unordered_map<ChannelId, std::deque<std::pair<NodeId, Payload>>>
      pending_channel_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t relays_ = 0;
};

}  // namespace dpu
