// Service interfaces of the communication substrate (paper Figure 4, lower
// layers): unreliable datagrams (UDP), reliable point-to-point channels
// (RP2P) and reliable broadcast (RBcast).
//
// Multiplexing model: several modules share one transport module, addressed
// by port (UDP) or channel (RP2P/RBcast).  Dynamically created protocol
// instances derive their channel ids from their instance name via fnv1a64,
// so the two versions of a protocol coexisting during a replacement never
// share a channel.
//
// RP2P and RBcast buffer deliveries for channels that have no handler *yet*:
// during a dynamic protocol update, stack i may start sending on the new
// protocol's channel before stack j has created the new module.  The paper's
// model calls this a response completed "when P_j is added to stack j"; the
// pending-channel buffer is the mechanism.
//
// Zero-copy contract: payloads travel as dpu::Payload — shared immutable
// buffers.  A module may retain the Payload handed to its handler (or a
// slice of it) indefinitely without copying; senders hand ownership of
// freshly serialized buffers in and must not assume the bytes are copied.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace dpu {

/// Dispatch-safe handler table for port/channel demultiplexing.
///
/// A tiny linear table (a handful of ports/channels exist at a time, and
/// the lookup is on the per-packet hot path) with one crucial property:
/// the handler object a dispatcher is executing stays alive no matter what
/// that handler does to the table — protocol modules re-entrantly bind new
/// channels (create_module inside a delivery binds the new instance's
/// channel), and a module may even release its own channel from inside its
/// handler when it destroys itself.  Handlers are held by shared_ptr:
/// find() hands the dispatcher a strong reference (one atomic bump, no
/// allocation), so release()/rebind() only detach the table's reference
/// while any in-flight invocation keeps the closure alive.
template <class Key, class Handler>
class HandlerTable {
 public:
  using Ref = std::shared_ptr<const Handler>;

  /// Binds (or rebinds) `key`.
  void bind(Key key, Handler handler) {
    auto h = std::make_shared<const Handler>(std::move(handler));
    for (auto& [k, slot] : entries_) {
      if (k == key) {
        slot = std::move(h);
        return;
      }
    }
    entries_.emplace_back(key, std::move(h));
  }

  /// Unbinds `key`.  In-flight invocations of the old handler (holding a
  /// Ref) finish safely.
  void release(Key key) {
    for (auto& [k, slot] : entries_) {
      if (k == key) slot.reset();
    }
  }

  /// Strong reference to the bound handler for `key`, or nullptr.  Keeps
  /// the handler alive for the duration of the call even if the handler
  /// releases or rebinds its own key.
  [[nodiscard]] Ref find(Key key) const {
    for (const auto& [k, slot] : entries_) {
      if (k == key && slot != nullptr && *slot) return slot;
    }
    return nullptr;
  }

  /// Drops every entry (module stop()).
  void clear() { entries_.clear(); }

  /// Visits the key of every bound entry (replacement facades re-attach all
  /// client channels on a fresh inner version).
  template <class Fn>
  void for_each_key(Fn&& fn) const {
    for (const auto& [k, slot] : entries_) {
      if (slot != nullptr && *slot) fn(k);
    }
  }

 private:
  std::vector<std::pair<Key, Ref>> entries_;
};

// ---------------------------------------------------------------------------
// UDP — unreliable, unordered datagrams (service "udp")
// ---------------------------------------------------------------------------

inline constexpr char kUdpService[] = "udp";

/// Well-known UDP ports of the singleton substrate modules.
using PortId = std::uint32_t;
inline constexpr PortId kRp2pPort = 1;
inline constexpr PortId kFdPort = 2;

using DatagramHandler =
    std::function<void(NodeId src, const Payload& payload)>;

/// Call interface of the UDP service.  Datagrams may be lost, duplicated or
/// reordered; packets for ports with no registered handler are dropped.
struct UdpApi {
  virtual ~UdpApi() = default;
  virtual void udp_send(NodeId dst, PortId port, Payload payload) = 0;

  /// Zero-copy fast path for clients that resend (rp2p retransmissions):
  /// returns a writer with the UDP header for `port` already encoded.
  /// Append the body, then hand take_payload() to udp_send_frame() any
  /// number of times — the whole datagram is serialized exactly once.
  [[nodiscard]] virtual BufWriter udp_frame(PortId port,
                                            std::size_t reserve) const = 0;

  /// Sends a frame previously built with udp_frame() (no re-encoding).
  virtual void udp_send_frame(NodeId dst, Payload frame) = 0;

  virtual void udp_bind_port(PortId port, DatagramHandler handler) = 0;
  virtual void udp_release_port(PortId port) = 0;
};

// ---------------------------------------------------------------------------
// RP2P — reliable FIFO point-to-point channels (service "rp2p")
// ---------------------------------------------------------------------------

inline constexpr char kRp2pService[] = "rp2p";

/// Channel ids partition RP2P traffic between client modules.  Fixed ids for
/// singletons; instance-name hashes for dynamic protocol instances.
using ChannelId = std::uint64_t;
inline constexpr ChannelId kRbcastChannel = 0x7262636173740001ULL;
inline constexpr ChannelId kConsensusChannel = 0x636f6e7300000001ULL;

/// Reliable FIFO per (src,dst) pair: every message sent to a correct
/// destination is eventually delivered exactly once, in send order (across
/// all channels of that pair).
struct Rp2pApi {
  virtual ~Rp2pApi() = default;
  virtual void rp2p_send(NodeId dst, ChannelId channel,
                         Payload payload) = 0;
  virtual void rp2p_bind_channel(ChannelId channel,
                                 DatagramHandler handler) = 0;
  virtual void rp2p_release_channel(ChannelId channel) = 0;
  /// Out-of-band notice that `peer` restarted into incarnation `epoch`
  /// (its streams now ride (epoch << kIncarnationSeqShift) sequence bases).
  /// Implementations re-base their outgoing stream to the peer so its fresh
  /// receive state accepts them in order; without the notice a sender only
  /// learns of the restart from the peer's own datagrams, and everything it
  /// sends before then is addressed to the dead incarnation.  The facade
  /// state-transfer substrate (repl/facade.hpp) delivers this notice at the
  /// totally-ordered refresh-switch point, making the switch the epoch-sync
  /// barrier for a recovering stack.  Default: no-op (transports without
  /// incarnation epochs need none).
  virtual void rp2p_note_peer_epoch(NodeId peer, std::uint64_t epoch) {
    (void)peer;
    (void)epoch;
  }
};

// ---------------------------------------------------------------------------
// RBcast — (uniform) reliable broadcast (service "rbcast")
// ---------------------------------------------------------------------------

inline constexpr char kRbcastService[] = "rbcast";

using BroadcastHandler =
    std::function<void(NodeId origin, const Payload& payload)>;

/// Eager reliable broadcast: if any stack delivers a payload, every correct
/// stack eventually delivers it (relay-on-first-receipt); no duplication, no
/// ordering guarantee.  Used by consensus to disseminate decisions and by
/// the ABcast protocols to disseminate message payloads.
struct RbcastApi {
  virtual ~RbcastApi() = default;
  virtual void rbcast(ChannelId channel, Payload payload) = 0;
  virtual void rbcast_bind_channel(ChannelId channel,
                                   BroadcastHandler handler) = 0;
  virtual void rbcast_release_channel(ChannelId channel) = 0;
};

}  // namespace dpu
