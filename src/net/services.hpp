// Service interfaces of the communication substrate (paper Figure 4, lower
// layers): unreliable datagrams (UDP), reliable point-to-point channels
// (RP2P) and reliable broadcast (RBcast).
//
// Multiplexing model: several modules share one transport module, addressed
// by port (UDP) or channel (RP2P/RBcast).  Dynamically created protocol
// instances derive their channel ids from their instance name via fnv1a64,
// so the two versions of a protocol coexisting during a replacement never
// share a channel.
//
// RP2P and RBcast buffer deliveries for channels that have no handler *yet*:
// during a dynamic protocol update, stack i may start sending on the new
// protocol's channel before stack j has created the new module.  The paper's
// model calls this a response completed "when P_j is added to stack j"; the
// pending-channel buffer is the mechanism.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace dpu {

// ---------------------------------------------------------------------------
// UDP — unreliable, unordered datagrams (service "udp")
// ---------------------------------------------------------------------------

inline constexpr char kUdpService[] = "udp";

/// Well-known UDP ports of the singleton substrate modules.
using PortId = std::uint32_t;
inline constexpr PortId kRp2pPort = 1;
inline constexpr PortId kFdPort = 2;

using DatagramHandler = std::function<void(NodeId src, const Bytes& payload)>;

/// Call interface of the UDP service.  Datagrams may be lost, duplicated or
/// reordered; packets for ports with no registered handler are dropped.
struct UdpApi {
  virtual ~UdpApi() = default;
  virtual void udp_send(NodeId dst, PortId port, const Bytes& payload) = 0;
  virtual void udp_bind_port(PortId port, DatagramHandler handler) = 0;
  virtual void udp_release_port(PortId port) = 0;
};

// ---------------------------------------------------------------------------
// RP2P — reliable FIFO point-to-point channels (service "rp2p")
// ---------------------------------------------------------------------------

inline constexpr char kRp2pService[] = "rp2p";

/// Channel ids partition RP2P traffic between client modules.  Fixed ids for
/// singletons; instance-name hashes for dynamic protocol instances.
using ChannelId = std::uint64_t;
inline constexpr ChannelId kRbcastChannel = 0x7262636173740001ULL;
inline constexpr ChannelId kConsensusChannel = 0x636f6e7300000001ULL;

/// Reliable FIFO per (src,dst) pair: every message sent to a correct
/// destination is eventually delivered exactly once, in send order (across
/// all channels of that pair).
struct Rp2pApi {
  virtual ~Rp2pApi() = default;
  virtual void rp2p_send(NodeId dst, ChannelId channel, const Bytes& payload) = 0;
  virtual void rp2p_bind_channel(ChannelId channel, DatagramHandler handler) = 0;
  virtual void rp2p_release_channel(ChannelId channel) = 0;
};

// ---------------------------------------------------------------------------
// RBcast — (uniform) reliable broadcast (service "rbcast")
// ---------------------------------------------------------------------------

inline constexpr char kRbcastService[] = "rbcast";

using BroadcastHandler =
    std::function<void(NodeId origin, const Bytes& payload)>;

/// Eager reliable broadcast: if any stack delivers a payload, every correct
/// stack eventually delivers it (relay-on-first-receipt); no duplication, no
/// ordering guarantee.  Used by consensus to disseminate decisions and by
/// the ABcast protocols to disseminate message payloads.
struct RbcastApi {
  virtual ~RbcastApi() = default;
  virtual void rbcast(ChannelId channel, const Bytes& payload) = 0;
  virtual void rbcast_bind_channel(ChannelId channel,
                                   BroadcastHandler handler) = 0;
  virtual void rbcast_release_channel(ChannelId channel) = 0;
};

}  // namespace dpu
