// UDP module — adapts the engine's raw packet port into the composable
// "udp" service (paper Figure 4: "the UDP module provides an interface to
// the UDP (unreliable) protocol").
#pragma once

#include "core/module.hpp"
#include "core/stack.hpp"
#include "net/services.hpp"

namespace dpu {

class UdpModule final : public Module, public UdpApi {
 public:
  static constexpr char kProtocolName[] = "net.udp";

  /// Creates the module and binds it to `service` (default "udp").
  static UdpModule* create(Stack& stack, const std::string& service = kUdpService);

  /// Registers "net.udp" (no requirements — it sits on the engine port).
  static void register_protocol(ProtocolLibrary& library);

  UdpModule(Stack& stack, std::string instance_name);

  void start() override;
  void stop() override;

  // UdpApi
  void udp_send(NodeId dst, PortId port, Payload payload) override;
  [[nodiscard]] BufWriter udp_frame(PortId port,
                                    std::size_t reserve) const override;
  void udp_send_frame(NodeId dst, Payload frame) override;
  void udp_bind_port(PortId port, DatagramHandler handler) override;
  void udp_release_port(PortId port) override;

  // Counters for tests and benches.
  [[nodiscard]] std::uint64_t datagrams_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t datagrams_received() const { return received_; }
  [[nodiscard]] std::uint64_t datagrams_dropped_no_port() const {
    return dropped_no_port_;
  }

 private:
  void on_packet(NodeId src, const Payload& data);

  /// Bound ports (reference-stable dispatch; see HandlerTable).
  HandlerTable<PortId, DatagramHandler> ports_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t dropped_no_port_ = 0;
};

}  // namespace dpu
