#include "net/rbcast.hpp"

#include "util/log.hpp"

namespace dpu {

RbcastModule* RbcastModule::create(Stack& stack, const std::string& service,
                                   Config config,
                                   const std::string& instance_name) {
  auto* m = stack.emplace_module<RbcastModule>(
      stack, instance_name.empty() ? service : instance_name, config);
  stack.bind<RbcastApi>(service, m, m);
  return m;
}

void RbcastModule::register_protocol(ProtocolLibrary& library, Config config) {
  // Dynamically created instances (replacement versions) derive their rp2p
  // channel from the cross-stack-identical "instance" param, so coexisting
  // versions never share a channel (net/services.hpp multiplexing model).
  auto factory_with = [config](bool relay) {
    return [config, relay](Stack& stack, const std::string& provide_as,
                           const ModuleParams& params) -> Module* {
      Config c = config;
      c.relay = relay;
      const std::string instance = params.get("instance");
      if (!instance.empty()) c.rp2p_channel = fnv1a64(instance + "/bcast");
      return create(stack, provide_as, c, instance);
    };
  };
  library.register_protocol(ProtocolInfo{
      .protocol = kProtocolName,
      .default_service = kRbcastService,
      .requires_services = {kRp2pService},
      .factory = factory_with(/*relay=*/true)});
  library.register_protocol(ProtocolInfo{
      .protocol = kProtocolNameNoRelay,
      .default_service = kRbcastService,
      .requires_services = {kRp2pService},
      .factory = factory_with(/*relay=*/false)});
}

RbcastModule::RbcastModule(Stack& stack, std::string instance_name,
                           Config config)
    : Module(stack, std::move(instance_name)),
      config_(config),
      rp2p_(stack.require<Rp2pApi>(kRp2pService)) {}

void RbcastModule::start() {
  next_seq_ = incarnation_seq_base(env().incarnation()) + 1;
  seen_.assign(env().world_size(), OriginDedup{});
  rp2p_.call([this](Rp2pApi& rp2p) {
    rp2p.rp2p_bind_channel(config_.rp2p_channel,
                           [this](NodeId from, const Payload& data) {
                             on_message(from, data);
                           });
  });
}

void RbcastModule::stop() {
  rp2p_.call([this](Rp2pApi& rp2p) {
    rp2p.rp2p_release_channel(config_.rp2p_channel);
  });
  channels_.clear();
  pending_channel_.clear();
}

void RbcastModule::rbcast(ChannelId channel, Payload payload) {
  const MsgId id{env().node_id(), next_seq_++};
  BufWriter w(payload.size() + 32);
  id.encode(w);
  w.put_u64(channel);
  w.put_blob(payload);
  // Serialize once; all N destinations (and any later relays) share this
  // one immutable buffer.
  const Payload wire = w.take_payload();
  ++sent_;
  // Send to everyone, self included: self-delivery takes the same code path
  // (and the same latency/cost accounting) as remote delivery.
  for (NodeId dst = 0; dst < env().world_size(); ++dst) {
    send_to(dst, wire);
  }
}

void RbcastModule::rbcast_bind_channel(ChannelId channel,
                                       BroadcastHandler handler) {
  channels_.bind(channel, std::move(handler));
  auto it = pending_channel_.find(channel);
  if (it == pending_channel_.end()) return;
  auto queued = std::move(it->second);
  pending_channel_.erase(it);
  // Routed through deliver(), which re-fetches the handler per message
  // (see Rp2pModule::rp2p_bind_channel).
  for (auto& [origin, payload] : queued) {
    deliver(channel, origin, payload);
  }
}

void RbcastModule::rbcast_release_channel(ChannelId channel) {
  channels_.release(channel);
}

void RbcastModule::send_to(NodeId dst, const Payload& wire) {
  rp2p_.call([dst, wire, channel = config_.rp2p_channel](Rp2pApi& rp2p) mutable {
    rp2p.rp2p_send(dst, channel, std::move(wire));
  });
}

void RbcastModule::on_message(NodeId from, const Payload& data) {
  MsgId id;
  ChannelId channel = 0;
  Payload payload;
  try {
    BufReader r(data);
    id = MsgId::decode(r);
    channel = r.get_u64();
    payload = r.get_blob_payload();  // zero-copy slice of the wire message
    r.expect_done();
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "rbcast") << "s" << env().node_id()
                             << " malformed message from s" << from << ": "
                             << e.what();
    return;
  }
  if (!mark_seen(id)) return;  // duplicate (relay echo)

  if (config_.relay && id.origin != env().node_id()) {
    // Relay on first receipt — unconditionally, not only when the message
    // came straight from the origin.  With chained crashes (origin crashes
    // mid-broadcast, then the stack it reached crashes mid-relay) a weaker
    // rule would let one stack deliver while another never hears of m.
    // The relay shares the received buffer; no re-serialization.
    ++relays_;
    for (NodeId dst = 0; dst < env().world_size(); ++dst) {
      if (dst == env().node_id() || dst == id.origin || dst == from) continue;
      send_to(dst, data);
    }
  }
  deliver(channel, id.origin, payload);
}

bool RbcastModule::mark_seen(const MsgId& id) {
  // Watermark update within one epoch's contiguous sequence range.
  auto mark_seen_in_epoch = [](EpochDedup& d, std::uint64_t seq) {
    if (seq < d.next) return false;
    if (seq > d.next) return d.ahead.insert(seq).second;
    ++d.next;
    while (!d.ahead.empty() && *d.ahead.begin() == d.next) {
      d.ahead.erase(d.ahead.begin());
      ++d.next;
    }
    return true;
  };
  if (id.origin >= seen_.size()) return false;  // malformed origin
  OriginDedup& d = seen_[id.origin];
  const std::uint64_t epoch = seq_epoch(id.seq);
  if (epoch == d.epoch) return mark_seen_in_epoch(d.cur, id.seq);
  if (epoch > d.epoch) {
    // The origin restarted: archive the old incarnation's watermark (late
    // relays of its messages must still dedup and deliver) and open the new
    // epoch's.
    d.old_epochs.emplace(d.epoch, std::move(d.cur));
    d.epoch = epoch;
    d.cur = EpochDedup{(epoch << kIncarnationSeqShift) + 1, {}};
    return mark_seen_in_epoch(d.cur, id.seq);
  }
  // A relay of an earlier incarnation's message, arriving after we already
  // saw the new incarnation (or, on a freshly recovered stack, before we
  // ever saw that epoch): dedup in that epoch's own watermark.
  auto [it, inserted] = d.old_epochs.try_emplace(
      epoch, EpochDedup{(epoch << kIncarnationSeqShift) + 1, {}});
  (void)inserted;
  return mark_seen_in_epoch(it->second, id.seq);
}

void RbcastModule::deliver(ChannelId channel, NodeId origin,
                           const Payload& payload) {
  if (const auto handler = channels_.find(channel)) {
    ++delivered_;
    (*handler)(origin, payload);
    return;
  }
  auto& queue = pending_channel_[channel];
  if (queue.size() >= config_.max_pending_per_channel) {
    DPU_LOG(kWarn, "rbcast") << "s" << env().node_id()
                             << " pending buffer overflow on channel "
                             << channel;
    return;
  }
  queue.emplace_back(origin, payload);
}

}  // namespace dpu
