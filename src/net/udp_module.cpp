#include "net/udp_module.hpp"

#include "util/log.hpp"

namespace dpu {

UdpModule* UdpModule::create(Stack& stack, const std::string& service) {
  auto* m = stack.emplace_module<UdpModule>(stack, service);
  stack.bind<UdpApi>(service, m, m);
  return m;
}

void UdpModule::register_protocol(ProtocolLibrary& library) {
  library.register_protocol(ProtocolInfo{
      .protocol = kProtocolName,
      .default_service = kUdpService,
      .requires_services = {},
      .factory = [](Stack& stack, const std::string& provide_as,
                    const ModuleParams&) -> Module* {
        return create(stack, provide_as);
      }});
}

UdpModule::UdpModule(Stack& stack, std::string instance_name)
    : Module(stack, std::move(instance_name)) {}

void UdpModule::start() {
  env().set_packet_handler(
      [this](NodeId src, const Bytes& data) { on_packet(src, data); });
}

void UdpModule::stop() {
  env().set_packet_handler(nullptr);
  ports_.clear();
}

void UdpModule::udp_send(NodeId dst, PortId port, const Bytes& payload) {
  BufWriter w(payload.size() + 4);
  w.put_u32(port);
  w.put_raw(std::span<const std::uint8_t>(payload.data(), payload.size()));
  ++sent_;
  env().send_packet(dst, w.take());
}

void UdpModule::udp_bind_port(PortId port, DatagramHandler handler) {
  ports_[port] = std::move(handler);
}

void UdpModule::udp_release_port(PortId port) { ports_.erase(port); }

void UdpModule::on_packet(NodeId src, const Bytes& data) {
  PortId port = 0;
  Bytes payload;
  try {
    BufReader r(data);
    port = r.get_u32();
    auto raw = r.get_raw(r.remaining());
    payload.assign(raw.begin(), raw.end());
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "udp") << "s" << env().node_id()
                          << " malformed datagram from s" << src << ": "
                          << e.what();
    return;
  }
  auto it = ports_.find(port);
  if (it == ports_.end()) {
    // UDP semantics: no listener, packet vanishes.
    ++dropped_no_port_;
    return;
  }
  ++received_;
  it->second(src, payload);
}

}  // namespace dpu
