#include "net/udp_module.hpp"

#include "util/log.hpp"

namespace dpu {

UdpModule* UdpModule::create(Stack& stack, const std::string& service) {
  auto* m = stack.emplace_module<UdpModule>(stack, service);
  stack.bind<UdpApi>(service, m, m);
  return m;
}

void UdpModule::register_protocol(ProtocolLibrary& library) {
  library.register_protocol(ProtocolInfo{
      .protocol = kProtocolName,
      .default_service = kUdpService,
      .requires_services = {},
      .factory = [](Stack& stack, const std::string& provide_as,
                    const ModuleParams&) -> Module* {
        return create(stack, provide_as);
      }});
}

UdpModule::UdpModule(Stack& stack, std::string instance_name)
    : Module(stack, std::move(instance_name)) {}

void UdpModule::start() {
  env().set_packet_handler(
      [this](NodeId src, const Payload& data) { on_packet(src, data); });
}

void UdpModule::stop() {
  env().set_packet_handler(nullptr);
  ports_.clear();
}

void UdpModule::udp_send(NodeId dst, PortId port, Payload payload) {
  // The engine datagram is port header + payload in one owned buffer; this
  // is the single copy of the send path (headers differ per hop, payloads
  // are shared above).
  BufWriter w = udp_frame(port, payload.size());
  w.put_raw(payload.span());
  udp_send_frame(dst, w.take_payload());
}

BufWriter UdpModule::udp_frame(PortId port, std::size_t reserve) const {
  BufWriter w(reserve + 4);
  w.put_u32(port);
  return w;
}

void UdpModule::udp_send_frame(NodeId dst, Payload frame) {
  ++sent_;
  env().send_packet(dst, std::move(frame));
}

void UdpModule::udp_bind_port(PortId port, DatagramHandler handler) {
  ports_.bind(port, std::move(handler));
}

void UdpModule::udp_release_port(PortId port) { ports_.release(port); }

void UdpModule::on_packet(NodeId src, const Payload& data) {
  PortId port = 0;
  try {
    BufReader r(data);
    port = r.get_u32();
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "udp") << "s" << env().node_id()
                          << " malformed datagram from s" << src << ": "
                          << e.what();
    return;
  }
  if (const auto handler = ports_.find(port)) {
    ++received_;
    // Zero-copy demultiplex: the handler sees a slice of the engine buffer.
    (*handler)(src, data.slice(4));
    return;
  }
  // UDP semantics: no listener, packet vanishes.
  ++dropped_no_port_;
}

}  // namespace dpu
