#include "net/rp2p.hpp"

#include "util/log.hpp"

namespace dpu {

Rp2pModule* Rp2pModule::create(Stack& stack, const std::string& service,
                               Config config) {
  auto* m = stack.emplace_module<Rp2pModule>(stack, service, config);
  stack.bind<Rp2pApi>(service, m, m);
  return m;
}

void Rp2pModule::register_protocol(ProtocolLibrary& library, Config config) {
  library.register_protocol(ProtocolInfo{
      .protocol = kProtocolName,
      .default_service = kRp2pService,
      .requires_services = {kUdpService},
      .factory = [config](Stack& stack, const std::string& provide_as,
                          const ModuleParams&) -> Module* {
        return create(stack, provide_as, config);
      }});
}

Rp2pModule::Rp2pModule(Stack& stack, std::string instance_name, Config config)
    : Module(stack, std::move(instance_name)),
      config_(config),
      udp_(stack.require<UdpApi>(kUdpService)),
      fd_(stack.require<FdApi>(kFdService)),
      ack_timer_(stack.host()),
      nack_timer_(stack.host()),
      batch_timer_(stack.host()),
      retransmit_timer_(stack.host()) {}

void Rp2pModule::start() {
  seq_base_ = incarnation_seq_base(env().incarnation());
  out_.resize(env().world_size());
  for (PeerOut& peer : out_) peer.next_seq = seq_base_ + 1;
  in_.resize(env().world_size());
  udp_.call([this](UdpApi& udp) {
    udp.udp_bind_port(kRp2pPort, [this](NodeId src, const Payload& data) {
      on_datagram(src, data);
    });
  });
  on_retransmit_tick();  // arms the periodic retransmission timer
}

void Rp2pModule::stop() {
  // Seal parked batches first (udp is still bound here): a message accepted
  // by rp2p_send must have been transmitted at least once, exactly as on
  // the unbatched path.
  flush_batches();
  retransmit_timer_.cancel();
  ack_timer_.cancel();
  nack_timer_.cancel();
  batch_timer_.cancel();
  nack_queue_.clear();
  udp_.call([](UdpApi& udp) { udp.udp_release_port(kRp2pPort); });
  channels_.clear();
  pending_channel_.clear();
  ack_queue_.clear();
  for (PeerIn& peer : in_) peer.ack_due = false;
}

void Rp2pModule::rp2p_send(NodeId dst, ChannelId channel, Payload payload) {
  UdpApi* udp = udp_.try_get();
  if (udp == nullptr) {
    // udp momentarily unbound (e.g. a transport replacement window): queue
    // the whole send on the service's blocked-call queue; it re-runs — and
    // then takes the bound fast path — when a provider binds.
    udp_.call([this, dst, channel,
               payload = std::move(payload)](UdpApi&) mutable {
      rp2p_send(dst, channel, std::move(payload));
    });
    return;
  }
  if (dst >= out_.size()) {
    const std::size_t old_size = out_.size();
    out_.resize(dst + 1);
    for (std::size_t i = old_size; i < out_.size(); ++i) {
      out_[i].next_seq = seq_base_ + 1;
    }
  }
  PeerOut& peer = out_[dst];
  ++messages_sent_;
  if (!config_.batching) {
    // Ablation path: one datagram per message, serialized exactly once;
    // every (re)transmission re-sends this shared buffer.  This is the
    // only copy of the payload below rbcast.
    const std::uint64_t seq = peer.next_seq++;
    BufWriter w = udp->udp_frame(kRp2pPort, payload.size() + 24);
    w.put_u8(kData);
    w.put_varint(seq);
    w.put_u64(channel);
    w.put_blob(payload);
    ++data_datagrams_;
    auto [it, inserted] =
        peer.unacked.emplace(seq, OutPacket{w.take_payload()});
    assert(inserted);
    (void)inserted;
    transmit(dst, it->second);
    return;
  }
  // Batched path: park the message (no copy — the Payload moves into the
  // batch) and flush when the byte budget fills or the flush timer fires.
  // The sealed datagram gets the sequence number, so reliability stays
  // per-datagram and a retransmission resends the whole batch once.
  const std::size_t wire = batch_message_wire_size(payload.size());
  if (!peer.pending.empty() &&
      peer.pending_bytes + wire > config_.batch_max_bytes) {
    flush_batch(dst, peer);  // would overflow: seal what is parked first
  }
  peer.pending.push_back(BatchMessage{channel, std::move(payload)});
  peer.pending_bytes += wire;
  if (peer.pending_bytes >= config_.batch_max_bytes ||
      config_.batch_flush_ns <= 0) {
    flush_batch(dst, peer);  // budget full (or an oversized single): go now
  } else {
    note_batch_due(dst, peer);
  }
}

void Rp2pModule::note_batch_due(NodeId dst, PeerOut& peer) {
  if (!peer.batch_queued) {
    peer.batch_queued = true;
    batch_queue_.push_back(dst);
  }
  if (!batch_timer_.pending()) {
    batch_timer_.schedule(config_.batch_flush_ns,
                          [this]() { flush_batches(); });
  }
}

void Rp2pModule::flush_batches() {
  // Swap out: handlers running under deliver() during a self-send flush (or
  // a blocked-call replay) may park new batches while we iterate.
  std::vector<NodeId> due;
  due.swap(batch_queue_);
  for (const NodeId dst : due) {
    PeerOut& peer = out_[dst];
    peer.batch_queued = false;
    flush_batch(dst, peer);
  }
}

void Rp2pModule::flush_batch(NodeId dst, PeerOut& peer) {
  if (peer.pending.empty()) return;  // already sealed by a size flush
  UdpApi* udp = udp_.try_get();
  if (udp == nullptr) {
    // Transport replacement window: keep the batch parked and re-flush via
    // the blocked-call queue the moment a provider binds.
    if (!peer.batch_queued) {
      peer.batch_queued = true;
      batch_queue_.push_back(dst);
    }
    udp_.call([this](UdpApi&) { flush_batches(); });
    return;
  }
  const std::uint64_t seq = peer.next_seq++;
  BufWriter w = udp->udp_frame(kRp2pPort, peer.pending_bytes + 16);
  w.put_u8(kBatch);
  w.put_varint(seq);
  encode_batch_frame(w, peer.pending);
  peer.pending.clear();
  peer.pending_bytes = 0;
  ++data_datagrams_;
  auto [it, inserted] = peer.unacked.emplace(seq, OutPacket{w.take_payload()});
  assert(inserted);
  (void)inserted;
  transmit(dst, it->second);
}

void Rp2pModule::rp2p_bind_channel(ChannelId channel,
                                   DatagramHandler handler) {
  channels_.bind(channel, std::move(handler));
  // Release deliveries that arrived before this protocol instance existed.
  auto it = pending_channel_.find(channel);
  if (it == pending_channel_.end()) return;
  auto queued = std::move(it->second);
  pending_channel_.erase(it);
  DPU_LOG(kDebug, "rp2p") << "s" << env().node_id() << " channel " << channel
                          << " bound; releasing " << queued.size()
                          << " buffered message(s)";
  // Routed through deliver(), which re-fetches the handler per message: a
  // released delivery may rebind or release the channel, and remaining
  // messages then reach the new handler or go back to the pending buffer.
  for (auto& [src, payload] : queued) {
    deliver(src, channel, payload);
  }
}

void Rp2pModule::rp2p_release_channel(ChannelId channel) {
  channels_.release(channel);
}

std::size_t Rp2pModule::unacked_total() const {
  std::size_t n = 0;
  for (const PeerOut& peer : out_) {
    n += peer.unacked.size();
    // A parked batch is a datagram-to-be: quiescence probes must not call
    // the link drained while messages wait out the flush window.
    if (!peer.pending.empty()) ++n;
  }
  return n;
}

std::size_t Rp2pModule::unacked_excluding(
    const std::set<NodeId>& excluded) const {
  std::size_t n = 0;
  for (NodeId dst = 0; dst < out_.size(); ++dst) {
    if (excluded.count(dst) != 0) continue;
    n += out_[dst].unacked.size();
    if (!out_[dst].pending.empty()) ++n;
  }
  return n;
}

Duration Rp2pModule::backoff_after(std::uint32_t attempts) const {
  Duration b = config_.retransmit_interval;
  for (std::uint32_t i = 0;
       i < attempts && b < config_.max_retransmit_backoff; ++i) {
    b *= 2;
  }
  return std::min(b, config_.max_retransmit_backoff);
}

void Rp2pModule::transmit(NodeId dst, OutPacket& pkt) {
  // Attempts/backoff advance only when a frame actually goes out; if udp
  // is momentarily unbound the retransmit tick simply retries later,
  // without accruing phantom backoff against a peer that never saw a send.
  UdpApi* udp = udp_.try_get();
  if (udp == nullptr) return;
  pkt.next_due = env().now() + backoff_after(pkt.attempts);
  ++pkt.attempts;
  // Direct dispatch on the pre-built frame; charge the same service-hop
  // cost a udp_.call() would have.
  stack().charge_hop();
  udp->udp_send_frame(dst, pkt.frame);
}

void Rp2pModule::note_ack_due(NodeId src, PeerIn& peer) {
  if (!peer.ack_due) {
    peer.ack_due = true;
    ack_queue_.push_back(src);
  }
  if (config_.ack_delay <= 0) {
    flush_acks();  // coalescing disabled: ack immediately
    return;
  }
  if (!ack_timer_.pending()) {
    // Delayed ack: every delivery inside the window (and, on a saturated
    // stack, everything processed before the deferred timer runs) folds
    // into one cumulative ack per peer.
    ack_timer_.schedule(config_.ack_delay, [this]() { flush_acks(); });
  }
}

void Rp2pModule::flush_acks() {
  for (const NodeId src : ack_queue_) {
    PeerIn& peer = in_[src];
    if (!peer.ack_due) continue;
    peer.ack_due = false;
    ++acks_sent_;
    udp_.call([src, next = peer.next_expected](UdpApi& udp) {
      BufWriter w = udp.udp_frame(kRp2pPort, 10);
      w.put_u8(kAck);
      w.put_varint(next);
      udp.udp_send_frame(src, w.take_payload());
    });
  }
  ack_queue_.clear();
}

void Rp2pModule::note_gap(NodeId src, PeerIn& peer) {
  if (!config_.nack || peer.nack_pending) return;
  peer.nack_pending = true;
  nack_queue_.push_back(src);
  if (!nack_timer_.pending()) {
    nack_timer_.schedule(config_.nack_delay, [this]() { flush_nacks(); });
  }
}

void Rp2pModule::flush_nacks() {
  // Swap out: a still-open hole re-queues itself below, and in-order
  // deliveries triggered by the NACKed retransmission may queue new gaps.
  std::vector<NodeId> due;
  due.swap(nack_queue_);
  const TimePoint now = env().now();
  for (const NodeId src : due) {
    PeerIn& peer = in_[src];
    peer.nack_pending = false;
    if (peer.reorder.empty()) continue;  // hole closed by in-flight packets
    const std::uint64_t gap_from = peer.next_expected;
    const std::uint64_t gap_to = peer.reorder.begin()->first;
    if (gap_to <= gap_from) continue;  // defensive
    // Debounce per gap front: relays and duplicates re-detect the same gap
    // many times within one round trip.
    if (peer.last_nacked == gap_from && peer.last_nack_time >= 0 &&
        now - peer.last_nack_time < config_.nack_min_interval) {
      // Re-check later: the front may still be lost (NACK or retransmit
      // dropped); the retransmission timer remains the backstop.
      note_gap(src, peer);
      continue;
    }
    peer.last_nacked = gap_from;
    peer.last_nack_time = now;
    ++nacks_sent_;
    udp_.call([src, gap_from, gap_to](UdpApi& udp) {
      BufWriter w = udp.udp_frame(kRp2pPort, 20);
      w.put_u8(kNack);
      w.put_varint(gap_from);
      w.put_varint(gap_to);
      udp.udp_send_frame(src, w.take_payload());
    });
  }
  if (!nack_queue_.empty() && !nack_timer_.pending()) {
    nack_timer_.schedule(config_.nack_delay, [this]() { flush_nacks(); });
  }
}

void Rp2pModule::on_nack(NodeId src, std::uint64_t from, std::uint64_t to) {
  if (src >= out_.size() || to <= from) return;
  PeerOut& peer = out_[src];
  // Retransmit exactly the reported hole, now: the receiver knows which
  // packets it is missing, so no timer guesswork and no backoff wait.  The
  // range is bounded by the receiver's reorder gap, so a forged/garbled
  // range cannot trigger more sends than there are unacked packets.
  for (auto it = peer.unacked.lower_bound(from);
       it != peer.unacked.end() && it->first < to; ++it) {
    ++retransmissions_;
    ++fast_retransmits_;
    transmit(src, it->second);
  }
}

void Rp2pModule::deliver(NodeId src, ChannelId channel,
                         const Payload& payload) {
  if (const auto handler = channels_.find(channel)) {
    ++delivered_;
    (*handler)(src, payload);
    return;
  }
  auto& queue = pending_channel_[channel];
  if (queue.size() >= config_.max_pending_per_channel) {
    DPU_LOG(kWarn, "rp2p") << "s" << env().node_id()
                           << " pending buffer overflow on channel "
                           << channel << "; dropping";
    return;
  }
  queue.emplace_back(src, payload);
}

void Rp2pModule::deliver_frame(NodeId src, const ReorderEntry& entry) {
  if (!entry.batch) {
    deliver(src, entry.channel, entry.payload);
    return;
  }
  // Swap the scratch out for the duration of the delivery loop: a handler
  // may re-enter this module (bind a channel and drain its pending queue,
  // send messages, ...) and must not clobber the list being delivered.
  std::vector<BatchMessage> messages;
  messages.swap(batch_scratch_);
  try {
    decode_batch_frame(entry.payload, messages);
  } catch (const CodecError& e) {
    // Unreachable for frames accepted by on_datagram (validated eagerly);
    // kept as a guard so a logic slip degrades to a dropped frame.
    DPU_LOG(kWarn, "rp2p") << "s" << env().node_id()
                           << " malformed batch from s" << src << ": "
                           << e.what();
    messages.clear();
    batch_scratch_.swap(messages);
    return;
  }
  for (const BatchMessage& m : messages) {
    deliver(src, m.channel, m.payload);
  }
  messages.clear();
  batch_scratch_.swap(messages);
}

void Rp2pModule::on_datagram(NodeId src, const Payload& data) {
  try {
    BufReader r(data);
    const auto type = static_cast<MsgType>(r.get_u8());
    if (type == kAck) {
      const std::uint64_t cumulative = r.get_varint();
      r.expect_done();
      if (src >= out_.size()) return;
      PeerOut& peer = out_[src];
      peer.unacked.erase(peer.unacked.begin(),
                         peer.unacked.lower_bound(cumulative));
      return;
    }
    if (type == kNack) {
      const std::uint64_t from = r.get_varint();
      const std::uint64_t to = r.get_varint();
      r.expect_done();
      on_nack(src, from, to);
      return;
    }
    if (type != kData && type != kBatch) {
      throw CodecError("unknown rp2p message type");
    }
    const std::uint64_t seq = r.get_varint();
    ReorderEntry entry;
    entry.batch = (type == kBatch);
    if (entry.batch) {
      // Batch body = everything after the seq, as a zero-copy slice.
      // Validate it eagerly (before the seq is consumed): a malformed batch
      // is dropped like any other garbled datagram, and the normal loss
      // machinery — NACK plus retransmission of the cached frame — can
      // still repair the stream with an intact copy.
      entry.payload = data.slice(data.size() - r.remaining());
      decode_batch_frame(entry.payload, batch_scratch_);
      batch_scratch_.clear();
    } else {
      entry.channel = r.get_u64();
      entry.payload = r.get_blob_payload();  // zero-copy slice of the frame
      r.expect_done();
    }

    if (src >= in_.size()) in_.resize(src + 1);
    const std::uint64_t epoch = seq_epoch(seq);
    const std::uint64_t tracked = seq_epoch(in_[src].next_expected);
    if (epoch < tracked) return;  // frame from a dead incarnation: discard
    if (epoch > tracked) adopt_peer_epoch(src, epoch);
    PeerIn& peer = in_[src];
    if (seq < peer.next_expected) {
      // Duplicate of an already-delivered packet: our ack was lost; re-ack.
      note_ack_due(src, peer);
      return;
    }
    if (seq > peer.next_expected) {
      // Out of order: hold for reassembly (duplicates overwrite harmlessly)
      // and queue a delayed gap check so the sender fast-retransmits real
      // losses instead of waiting out its backed-off timer.  The gap is in
      // datagram sequence numbers, so a missing batch is one hole and its
      // fast retransmission is one datagram — never per-message duplicates.
      peer.reorder.emplace(seq, std::move(entry));
      note_gap(src, peer);
      note_ack_due(src, peer);
      return;
    }
    // In-order: deliver, then drain the reorder buffer.
    ++peer.next_expected;
    deliver_frame(src, entry);
    while (!peer.reorder.empty() &&
           peer.reorder.begin()->first == peer.next_expected) {
      auto node = peer.reorder.extract(peer.reorder.begin());
      ++peer.next_expected;
      deliver_frame(src, node.mapped());
    }
    note_ack_due(src, peer);
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "rp2p") << "s" << env().node_id()
                           << " malformed packet from s" << src << ": "
                           << e.what();
  }
}

void Rp2pModule::rp2p_note_peer_epoch(NodeId peer, std::uint64_t epoch) {
  // Out-of-band restart notice (facade state transfer delivers it at the
  // totally-ordered refresh-switch point).  Same state reset as observing a
  // new-epoch datagram from the peer; stale notices (an epoch we already
  // track or passed) are ignored so replayed markers cannot regress a link.
  if (peer >= in_.size()) in_.resize(peer + 1);
  if (epoch <= seq_epoch(in_[peer].next_expected)) return;
  ++epoch_notes_;
  adopt_peer_epoch(peer, epoch);
}

void Rp2pModule::adopt_peer_epoch(NodeId src, std::uint64_t epoch) {
  DPU_LOG(kInfo, "rp2p") << "s" << env().node_id() << " peer s" << src
                         << " entered stream epoch " << epoch
                         << " (restart observed); resetting link state";
  // Receive side: the old incarnation's stream is dead — anything parked in
  // its reorder buffer can never complete.
  PeerIn& in = in_[src];
  in.reorder.clear();
  in.next_expected = (epoch << kIncarnationSeqShift) + 1;
  in.last_nacked = 0;
  in.last_nack_time = -1;
  // Send side: packets addressed to the dead incarnation are abandoned (a
  // restarted receiver is a fresh endpoint; reliability is owed to the new
  // incarnation only — upper layers re-converge via consensus catch-up).
  // Our own stream jumps to the observed epoch so the restarted peer's
  // fresh receive state accepts it as in-order from the start.
  if (src < out_.size()) {
    PeerOut& out = out_[src];
    if (seq_epoch(out.next_seq) < epoch) {
      out.unacked.clear();
      // Parked batch messages were owed to the dead incarnation too.
      out.pending.clear();
      out.pending_bytes = 0;
      out.next_seq = (epoch << kIncarnationSeqShift) + 1;
    }
  }
}

void Rp2pModule::on_retransmit_tick() {
  const TimePoint now = env().now();
  const FdApi* fd = config_.respect_fd ? fd_.try_get() : nullptr;
  for (NodeId dst = 0; dst < out_.size(); ++dst) {
    PeerOut& peer = out_[dst];
    if (peer.unacked.empty()) continue;
    if (fd != nullptr && fd->fd_suspects(dst)) {
      // Suspected peer: stop pushing packets at it.  If the suspicion was
      // false the FD will rescind it and the stream resumes; if the peer
      // really crashed this is what keeps a crash from attracting an
      // unbounded retransmission storm for the whole drain window.
      ++suspected_skips_;
      continue;
    }
    for (auto& [seq, pkt] : peer.unacked) {
      if (pkt.next_due > now) continue;  // backoff not expired
      ++retransmissions_;
      transmit(dst, pkt);
    }
  }
  retransmit_timer_.schedule(config_.retransmit_interval,
                             [this]() { on_retransmit_tick(); });
}

}  // namespace dpu
