#include "net/rp2p.hpp"

#include "util/log.hpp"

namespace dpu {

Rp2pModule* Rp2pModule::create(Stack& stack, const std::string& service,
                               Config config) {
  auto* m = stack.emplace_module<Rp2pModule>(stack, service, config);
  stack.bind<Rp2pApi>(service, m, m);
  return m;
}

void Rp2pModule::register_protocol(ProtocolLibrary& library, Config config) {
  library.register_protocol(ProtocolInfo{
      .protocol = kProtocolName,
      .default_service = kRp2pService,
      .requires_services = {kUdpService},
      .factory = [config](Stack& stack, const std::string& provide_as,
                          const ModuleParams&) -> Module* {
        return create(stack, provide_as, config);
      }});
}

Rp2pModule::Rp2pModule(Stack& stack, std::string instance_name, Config config)
    : Module(stack, std::move(instance_name)),
      config_(config),
      udp_(stack.require<UdpApi>(kUdpService)),
      retransmit_timer_(stack.host()) {}

void Rp2pModule::start() {
  udp_.call([this](UdpApi& udp) {
    udp.udp_bind_port(kRp2pPort, [this](NodeId src, const Bytes& data) {
      on_datagram(src, data);
    });
  });
  on_retransmit_tick();  // arms the periodic retransmission timer
}

void Rp2pModule::stop() {
  retransmit_timer_.cancel();
  udp_.call([](UdpApi& udp) { udp.udp_release_port(kRp2pPort); });
  channels_.clear();
  pending_channel_.clear();
}

void Rp2pModule::rp2p_send(NodeId dst, ChannelId channel,
                           const Bytes& payload) {
  PeerOut& peer = out_[dst];
  const std::uint64_t seq = peer.next_seq++;
  auto [it, inserted] =
      peer.unacked.emplace(seq, OutPacket{channel, payload});
  assert(inserted);
  (void)inserted;
  transmit(dst, seq, it->second);
}

void Rp2pModule::rp2p_bind_channel(ChannelId channel, DatagramHandler handler) {
  channels_[channel] = std::move(handler);
  // Release deliveries that arrived before this protocol instance existed.
  auto it = pending_channel_.find(channel);
  if (it == pending_channel_.end()) return;
  auto queued = std::move(it->second);
  pending_channel_.erase(it);
  DPU_LOG(kDebug, "rp2p") << "s" << env().node_id() << " channel " << channel
                          << " bound; releasing " << queued.size()
                          << " buffered message(s)";
  for (auto& [src, payload] : queued) {
    ++delivered_;
    channels_[channel](src, payload);
  }
}

void Rp2pModule::rp2p_release_channel(ChannelId channel) {
  channels_.erase(channel);
}

std::size_t Rp2pModule::unacked_total() const {
  std::size_t n = 0;
  for (const auto& [dst, peer] : out_) n += peer.unacked.size();
  return n;
}

void Rp2pModule::transmit(NodeId dst, std::uint64_t seq, OutPacket& pkt) {
  pkt.last_sent = env().now();
  BufWriter w(pkt.payload.size() + 24);
  w.put_u8(kData);
  w.put_varint(seq);
  w.put_u64(pkt.channel);
  w.put_blob(pkt.payload);
  udp_.call([dst, bytes = w.take()](UdpApi& udp) {
    udp.udp_send(dst, kRp2pPort, bytes);
  });
}

void Rp2pModule::send_ack(NodeId dst, std::uint64_t cumulative) {
  BufWriter w(12);
  w.put_u8(kAck);
  w.put_varint(cumulative);
  udp_.call([dst, bytes = w.take()](UdpApi& udp) {
    udp.udp_send(dst, kRp2pPort, bytes);
  });
}

void Rp2pModule::deliver(NodeId src, ChannelId channel, const Bytes& payload) {
  auto it = channels_.find(channel);
  if (it == channels_.end()) {
    auto& queue = pending_channel_[channel];
    if (queue.size() >= config_.max_pending_per_channel) {
      DPU_LOG(kWarn, "rp2p") << "s" << env().node_id()
                             << " pending buffer overflow on channel "
                             << channel << "; dropping";
      return;
    }
    queue.emplace_back(src, payload);
    return;
  }
  ++delivered_;
  it->second(src, payload);
}

void Rp2pModule::on_datagram(NodeId src, const Bytes& data) {
  try {
    BufReader r(data);
    const auto type = static_cast<MsgType>(r.get_u8());
    if (type == kAck) {
      const std::uint64_t cumulative = r.get_varint();
      r.expect_done();
      PeerOut& peer = out_[src];
      peer.unacked.erase(peer.unacked.begin(),
                         peer.unacked.lower_bound(cumulative));
      return;
    }
    if (type != kData) throw CodecError("unknown rp2p message type");
    const std::uint64_t seq = r.get_varint();
    const ChannelId channel = r.get_u64();
    Bytes payload = r.get_blob();
    r.expect_done();

    PeerIn& peer = in_[src];
    if (seq < peer.next_expected) {
      // Duplicate of an already-delivered packet: our ack was lost; re-ack.
      send_ack(src, peer.next_expected);
      return;
    }
    if (seq > peer.next_expected) {
      // Out of order: hold for reassembly (duplicates overwrite harmlessly).
      peer.reorder.emplace(seq, std::make_pair(channel, std::move(payload)));
      send_ack(src, peer.next_expected);
      return;
    }
    // In-order: deliver, then drain the reorder buffer.
    ++peer.next_expected;
    deliver(src, channel, payload);
    while (!peer.reorder.empty() &&
           peer.reorder.begin()->first == peer.next_expected) {
      auto node = peer.reorder.extract(peer.reorder.begin());
      ++peer.next_expected;
      deliver(src, node.mapped().first, node.mapped().second);
    }
    send_ack(src, peer.next_expected);
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "rp2p") << "s" << env().node_id()
                           << " malformed packet from s" << src << ": "
                           << e.what();
  }
}

void Rp2pModule::on_retransmit_tick() {
  const TimePoint cutoff = env().now() - config_.retransmit_interval;
  for (auto& [dst, peer] : out_) {
    for (auto& [seq, pkt] : peer.unacked) {
      if (pkt.last_sent > cutoff) continue;  // too fresh; ack may be en route
      ++retransmissions_;
      transmit(dst, seq, pkt);
    }
  }
  retransmit_timer_.schedule(config_.retransmit_interval,
                             [this]() { on_retransmit_tick(); });
}

}  // namespace dpu
