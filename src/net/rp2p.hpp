// RP2P — reliable FIFO point-to-point channels over UDP (paper Figure 4:
// "the RP2P module implements reliable point-to-point communication").
//
// Classic positive-ack protocol: per-destination sequence numbers, cumulative
// acknowledgements, periodic retransmission, receive-side reordering buffer
// and duplicate suppression.  FIFO order holds per (src,dst) pair across all
// channels; channels only demultiplex payloads to client modules.
//
// Hot-path behaviour (engine perf work, see bench_engine_throughput):
//
//  * The full DATA frame is serialized once per (packet, destination) and
//    cached as a shared Payload, so retransmissions re-send the same buffer
//    instead of re-encoding it.
//  * Cumulative acks are coalesced: deliveries mark the peer ack-due and a
//    delayed-ack timer flushes one cumulative ack per dirty peer per
//    window, instead of one ack datagram per in-order delivery.
//  * Retransmissions back off exponentially per packet (capped), and peers
//    currently suspected by the failure detector stop attracting
//    retransmissions entirely until trusted again — so a crashed stack
//    costs a bounded number of packets instead of a retransmission storm
//    for the whole drain window.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <unordered_map>

#include "core/module.hpp"
#include "core/stack.hpp"
#include "fd/fd.hpp"
#include "net/services.hpp"

namespace dpu {

struct Rp2pConfig {
  Duration retransmit_interval = 20 * kMillisecond;
  /// Delayed-ack window: cumulative acks flush at most this long after the
  /// delivery that made them due, so every packet delivered inside the
  /// window folds into one ack per peer.  Must stay well below the
  /// retransmit interval or delayed acks would masquerade as losses.
  /// <= 0 disables coalescing: one ack datagram per received DATA packet
  /// (the pre-coalescing behaviour; benches use it for apples-to-apples
  /// engine comparisons).
  Duration ack_delay = 1 * kMillisecond;
  /// Retransmission k of a packet waits retransmit_interval * 2^k, capped
  /// here.  Bounds the per-packet send rate into black holes (partitions,
  /// not-yet-suspected crashes) while keeping first recovery fast.
  Duration max_retransmit_backoff = 640 * kMillisecond;
  /// NACK / fast retransmit: when the receive side detects a reorder gap (a
  /// sequence beyond next_expected arrives), it reports the missing range to
  /// the sender, which retransmits those packets immediately instead of
  /// waiting out the (exponentially backed-off) retransmission timer.  This
  /// claws back the loss-recovery latency that delayed acks + backoff cost,
  /// without giving up ack coalescing.
  bool nack = true;
  /// Grace delay between detecting a gap and reporting it: benign network
  /// reordering (in-flight packets with jittered latency) closes holes
  /// within the jitter bound, so a NACK goes out only for holes that
  /// persist — real losses.  Must exceed the network's reorder skew and
  /// stay well below retransmit_interval.
  Duration nack_delay = 2 * kMillisecond;
  /// Debounce: the same gap front is re-NACKed at most once per interval
  /// (relays/duplicates would otherwise turn one loss into a NACK burst).
  Duration nack_min_interval = 5 * kMillisecond;
  /// Consult the "fd" service when one is bound: packets to a currently
  /// suspected peer are not retransmitted until the peer is trusted again.
  /// Safe for correct peers — a false suspicion only pauses (never drops)
  /// the retransmission stream, and <>S accuracy rescinds it eventually.
  bool respect_fd = true;
  /// Max buffered deliveries for a channel nobody has bound yet.
  std::size_t max_pending_per_channel = 100'000;
};

class Rp2pModule final : public Module, public Rp2pApi {
 public:
  using Config = Rp2pConfig;

  static constexpr char kProtocolName[] = "net.rp2p";

  /// Creates the module, binds it to `service`, wires it to the "udp"
  /// service.
  static Rp2pModule* create(Stack& stack,
                            const std::string& service = kRp2pService,
                            Config config = Config{});

  /// Registers "net.rp2p": requires udp.
  static void register_protocol(ProtocolLibrary& library,
                                Config config = Config{});

  Rp2pModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // Rp2pApi
  void rp2p_send(NodeId dst, ChannelId channel, Payload payload) override;
  void rp2p_bind_channel(ChannelId channel, DatagramHandler handler) override;
  void rp2p_release_channel(ChannelId channel) override;

  // Introspection for tests/benches.
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  [[nodiscard]] std::uint64_t nacks_sent() const { return nacks_sent_; }
  /// Retransmissions triggered by received NACKs (subset of
  /// retransmissions()).
  [[nodiscard]] std::uint64_t fast_retransmits() const {
    return fast_retransmits_;
  }
  /// Retransmit-tick skips of whole peers because the FD suspected them.
  [[nodiscard]] std::uint64_t suspected_skips() const {
    return suspected_skips_;
  }
  [[nodiscard]] std::size_t unacked_total() const;
  /// Unacked packets, ignoring destinations in `excluded`.  A permanently
  /// crashed peer never acks (its entries are only abandoned on recovery),
  /// so quiescence probes must not count traffic addressed to it.
  [[nodiscard]] std::size_t unacked_excluding(
      const std::set<NodeId>& excluded) const;
  [[nodiscard]] std::size_t pending_channel_buffered() const {
    std::size_t n = 0;
    for (const auto& [ch, q] : pending_channel_) n += q.size();
    return n;
  }

 private:
  enum MsgType : std::uint8_t { kData = 0, kAck = 1, kNack = 2 };

  struct OutPacket {
    /// Full engine-level datagram (UDP header + DATA frame), serialized
    /// exactly once; every (re)transmission re-sends this shared buffer.
    Payload frame;
    TimePoint next_due = 0;   ///< earliest next (re)transmission
    std::uint32_t attempts = 0;
  };

  /// Sequence numbers carry a *stream epoch* in their high bits (see
  /// kIncarnationSeqShift): a stack's streams start at its own incarnation's
  /// epoch base, and jump forward to a peer's epoch when that peer is
  /// observed to have restarted.  Epochs only grow; FIFO/exactly-once hold
  /// within an epoch, and an epoch jump is the crash-recovery reset — the
  /// receiver discards the dead incarnation's state, the sender discards
  /// packets addressed to the dead incarnation.  No wire-format change:
  /// epochs ride inside the existing varint sequence numbers.
  struct PeerOut {
    std::uint64_t next_seq = 1;  // re-based onto the epoch in start()
    std::map<std::uint64_t, OutPacket> unacked;  // seq -> packet
  };

  struct PeerIn {
    std::uint64_t next_expected = 1;  // its epoch = the peer's stream epoch
    bool ack_due = false;
    std::map<std::uint64_t, std::pair<ChannelId, Payload>> reorder;
    /// NACK state: whether a gap check is queued, the gap front last
    /// reported, and when.
    bool nack_pending = false;
    std::uint64_t last_nacked = 0;
    TimePoint last_nack_time = -1;
  };

  void on_datagram(NodeId src, const Payload& data);
  /// Handles a DATA frame whose sequence belongs to a newer epoch than the
  /// (src) streams we track: the peer restarted (or learned of our own
  /// restart).  Resets receive state to the new epoch and abandons packets
  /// addressed to the peer's dead incarnation.
  void adopt_peer_epoch(NodeId src, std::uint64_t epoch);
  void transmit(NodeId dst, OutPacket& pkt);
  [[nodiscard]] Duration backoff_after(std::uint32_t attempts) const;
  void note_ack_due(NodeId src, PeerIn& peer);
  void flush_acks();
  /// Queues a delayed gap check for `src` (sends nothing yet: benign
  /// reordering closes most holes within the jitter bound).
  void note_gap(NodeId src, PeerIn& peer);
  /// Runs the queued gap checks; reports each still-open hole
  /// [next_expected, first-buffered) to its sender, debounced per front.
  void flush_nacks();
  /// Sender side of a NACK: immediately retransmits the unacked packets of
  /// [from, to).
  void on_nack(NodeId src, std::uint64_t from, std::uint64_t to);
  void deliver(NodeId src, ChannelId channel, const Payload& payload);
  void on_retransmit_tick();

  Config config_;
  ServiceRef<UdpApi> udp_;
  ServiceRef<FdApi> fd_;  ///< unbound in worlds without a failure detector
  /// Epoch base of this stack's outgoing streams ((incarnation << 48); new
  /// peers start at base+1).  Fixed at start() from HostEnv::incarnation.
  std::uint64_t seq_base_ = 0;
  /// Peer state, densely indexed by node id: O(1) lookup on every datagram
  /// and a deterministic iteration order for the retransmit scan.
  std::vector<PeerOut> out_;
  std::vector<PeerIn> in_;
  /// Bound channels (reference-stable dispatch; see HandlerTable).
  HandlerTable<ChannelId, DatagramHandler> channels_;
  /// Deliveries waiting for a channel handler (protocol instance not yet
  /// created on this stack, DESIGN.md §3 / weak protocol-operationability).
  std::unordered_map<ChannelId, std::deque<std::pair<NodeId, Payload>>>
      pending_channel_;
  /// Peers with a coalesced cumulative ack outstanding, in mark order (a
  /// vector, not map iteration, so ack emission order is deterministic
  /// across standard libraries).
  std::vector<NodeId> ack_queue_;
  /// Peers with a queued gap check, in detection order (deterministic).
  std::vector<NodeId> nack_queue_;
  TimerSlot ack_timer_;
  TimerSlot nack_timer_;
  TimerSlot retransmit_timer_;
  std::uint64_t delivered_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t nacks_sent_ = 0;
  std::uint64_t fast_retransmits_ = 0;
  std::uint64_t suspected_skips_ = 0;
};

}  // namespace dpu
