// RP2P — reliable FIFO point-to-point channels over UDP (paper Figure 4:
// "the RP2P module implements reliable point-to-point communication").
//
// Classic positive-ack protocol: per-destination sequence numbers, cumulative
// acknowledgements, periodic retransmission, receive-side reordering buffer
// and duplicate suppression.  FIFO order holds per (src,dst) pair across all
// channels; channels only demultiplex payloads to client modules.
#pragma once

#include <deque>
#include <map>
#include <unordered_map>

#include "core/module.hpp"
#include "core/stack.hpp"
#include "net/services.hpp"

namespace dpu {

struct Rp2pConfig {
  Duration retransmit_interval = 20 * kMillisecond;
  /// Max buffered deliveries for a channel nobody has bound yet.
  std::size_t max_pending_per_channel = 100'000;
};

class Rp2pModule final : public Module, public Rp2pApi {
 public:
  using Config = Rp2pConfig;

  static constexpr char kProtocolName[] = "net.rp2p";

  /// Creates the module, binds it to `service`, wires it to the "udp"
  /// service.
  static Rp2pModule* create(Stack& stack,
                            const std::string& service = kRp2pService,
                            Config config = Config{});

  /// Registers "net.rp2p": requires udp.
  static void register_protocol(ProtocolLibrary& library,
                                Config config = Config{});

  Rp2pModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // Rp2pApi
  void rp2p_send(NodeId dst, ChannelId channel, const Bytes& payload) override;
  void rp2p_bind_channel(ChannelId channel, DatagramHandler handler) override;
  void rp2p_release_channel(ChannelId channel) override;

  // Introspection for tests/benches.
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] std::size_t unacked_total() const;
  [[nodiscard]] std::size_t pending_channel_buffered() const {
    std::size_t n = 0;
    for (const auto& [ch, q] : pending_channel_) n += q.size();
    return n;
  }

 private:
  enum MsgType : std::uint8_t { kData = 0, kAck = 1 };

  struct OutPacket {
    ChannelId channel;
    Bytes payload;
    TimePoint last_sent = 0;
  };

  struct PeerOut {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, OutPacket> unacked;  // seq -> packet
  };

  struct PeerIn {
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, std::pair<ChannelId, Bytes>> reorder;  // seq -> msg
  };

  void on_datagram(NodeId src, const Bytes& data);
  void transmit(NodeId dst, std::uint64_t seq, OutPacket& pkt);
  void send_ack(NodeId dst, std::uint64_t cumulative);
  void deliver(NodeId src, ChannelId channel, const Bytes& payload);
  void on_retransmit_tick();

  Config config_;
  ServiceRef<UdpApi> udp_;
  std::unordered_map<NodeId, PeerOut> out_;
  std::unordered_map<NodeId, PeerIn> in_;
  std::unordered_map<ChannelId, DatagramHandler> channels_;
  /// Deliveries waiting for a channel handler (protocol instance not yet
  /// created on this stack, DESIGN.md §3 / weak protocol-operationability).
  std::unordered_map<ChannelId, std::deque<std::pair<NodeId, Bytes>>>
      pending_channel_;
  TimerSlot retransmit_timer_;
  std::uint64_t delivered_ = 0;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace dpu
