// RP2P — reliable FIFO point-to-point channels over UDP (paper Figure 4:
// "the RP2P module implements reliable point-to-point communication").
//
// Classic positive-ack protocol: per-destination sequence numbers, cumulative
// acknowledgements, periodic retransmission, receive-side reordering buffer
// and duplicate suppression.  FIFO order holds per (src,dst) pair across all
// channels; channels only demultiplex payloads to client modules.
//
// Hot-path behaviour (engine perf work, see bench_engine_throughput):
//
//  * The full DATA frame is serialized once per (packet, destination) and
//    cached as a shared Payload, so retransmissions re-send the same buffer
//    instead of re-encoding it.
//  * Sends are batched (ROADMAP 2(a)): messages to the same destination
//    pack into one datagram under a byte budget, flushed by size overflow
//    or a short timer.  The *datagram* is the sequencing unit — one seq,
//    one ack, one NACK hole, one retransmission per batch — so datagram,
//    syscall and engine-event counts stop scaling with message count.
//    See net/batch.hpp for the shared frame codec.
//  * Cumulative acks are coalesced: deliveries mark the peer ack-due and a
//    delayed-ack timer flushes one cumulative ack per dirty peer per
//    window, instead of one ack datagram per in-order delivery.
//  * Retransmissions back off exponentially per packet (capped), and peers
//    currently suspected by the failure detector stop attracting
//    retransmissions entirely until trusted again — so a crashed stack
//    costs a bounded number of packets instead of a retransmission storm
//    for the whole drain window.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <unordered_map>

#include "core/module.hpp"
#include "core/stack.hpp"
#include "fd/fd.hpp"
#include "net/batch.hpp"
#include "net/services.hpp"

namespace dpu {

struct Rp2pConfig {
  Duration retransmit_interval = 20 * kMillisecond;
  /// Delayed-ack window: cumulative acks flush at most this long after the
  /// delivery that made them due, so every packet delivered inside the
  /// window folds into one ack per peer.  Must stay well below the
  /// retransmit interval or delayed acks would masquerade as losses.
  /// <= 0 disables coalescing: one ack datagram per received DATA packet
  /// (the pre-coalescing behaviour; benches use it for apples-to-apples
  /// engine comparisons).
  Duration ack_delay = 1 * kMillisecond;
  /// Retransmission k of a packet waits retransmit_interval * 2^k, capped
  /// here.  Bounds the per-packet send rate into black holes (partitions,
  /// not-yet-suspected crashes) while keeping first recovery fast.
  Duration max_retransmit_backoff = 640 * kMillisecond;
  /// NACK / fast retransmit: when the receive side detects a reorder gap (a
  /// sequence beyond next_expected arrives), it reports the missing range to
  /// the sender, which retransmits those packets immediately instead of
  /// waiting out the (exponentially backed-off) retransmission timer.  This
  /// claws back the loss-recovery latency that delayed acks + backoff cost,
  /// without giving up ack coalescing.
  bool nack = true;
  /// Grace delay between detecting a gap and reporting it: benign network
  /// reordering (in-flight packets with jittered latency) closes holes
  /// within the jitter bound, so a NACK goes out only for holes that
  /// persist — real losses.  Must exceed the network's reorder skew and
  /// stay well below retransmit_interval.
  Duration nack_delay = 2 * kMillisecond;
  /// Debounce: the same gap front is re-NACKed at most once per interval
  /// (relays/duplicates would otherwise turn one loss into a NACK burst).
  Duration nack_min_interval = 5 * kMillisecond;
  /// Consult the "fd" service when one is bound: packets to a currently
  /// suspected peer are not retransmitted until the peer is trusted again.
  /// Safe for correct peers — a false suspicion only pauses (never drops)
  /// the retransmission stream, and <>S accuracy rescinds it eventually.
  bool respect_fd = true;
  /// Max buffered deliveries for a channel nobody has bound yet.
  std::size_t max_pending_per_channel = 100'000;
  /// Batched packet path: pack messages to the same destination into one
  /// datagram (net/batch.hpp frame) under batch_max_bytes, flushing when
  /// the budget fills or batch_flush_ns elapses.  Off = the pre-batching
  /// one-datagram-per-message path (kept as an ablation for benches and
  /// apples-to-apples comparisons).
  bool batching = true;
  /// Byte budget for the message section of one batch frame.  A single
  /// message larger than the budget still goes out, alone, as an oversized
  /// degenerate batch (the codec cannot split messages).
  std::size_t batch_max_bytes = 1200;
  /// How long the first message parked in an empty batch may wait for
  /// company before the batch is flushed anyway.  Trades a bounded latency
  /// bump for fewer datagrams; must stay well below ack_delay and the
  /// network RTT so batching never masquerades as loss.  <= 0 flushes
  /// every send immediately (batch framing without coalescing).
  Duration batch_flush_ns = 100 * kMicrosecond;
};

class Rp2pModule final : public Module, public Rp2pApi {
 public:
  using Config = Rp2pConfig;

  static constexpr char kProtocolName[] = "net.rp2p";

  /// Creates the module, binds it to `service`, wires it to the "udp"
  /// service.
  static Rp2pModule* create(Stack& stack,
                            const std::string& service = kRp2pService,
                            Config config = Config{});

  /// Registers "net.rp2p": requires udp.
  static void register_protocol(ProtocolLibrary& library,
                                Config config = Config{});

  Rp2pModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // Rp2pApi
  void rp2p_send(NodeId dst, ChannelId channel, Payload payload) override;
  void rp2p_bind_channel(ChannelId channel, DatagramHandler handler) override;
  void rp2p_release_channel(ChannelId channel) override;
  void rp2p_note_peer_epoch(NodeId peer, std::uint64_t epoch) override;

  // Introspection for tests/benches.
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  /// App messages accepted by rp2p_send (before batching).
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  /// DATA datagrams serialized (each carries >= 1 message when batching;
  /// exactly 1 otherwise).  messages_sent / data_datagrams_sent is the
  /// achieved batching factor.
  [[nodiscard]] std::uint64_t data_datagrams_sent() const {
    return data_datagrams_;
  }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  [[nodiscard]] std::uint64_t nacks_sent() const { return nacks_sent_; }
  /// Retransmissions triggered by received NACKs (subset of
  /// retransmissions()).
  [[nodiscard]] std::uint64_t fast_retransmits() const {
    return fast_retransmits_;
  }
  /// Retransmit-tick skips of whole peers because the FD suspected them.
  [[nodiscard]] std::uint64_t suspected_skips() const {
    return suspected_skips_;
  }
  /// Link resets triggered by out-of-band rp2p_note_peer_epoch notices
  /// (subset of all epoch adoptions).
  [[nodiscard]] std::uint64_t epoch_notes() const { return epoch_notes_; }
  [[nodiscard]] std::size_t unacked_total() const;
  /// Unacked packets, ignoring destinations in `excluded`.  A permanently
  /// crashed peer never acks (its entries are only abandoned on recovery),
  /// so quiescence probes must not count traffic addressed to it.
  [[nodiscard]] std::size_t unacked_excluding(
      const std::set<NodeId>& excluded) const;
  [[nodiscard]] std::size_t pending_channel_buffered() const {
    std::size_t n = 0;
    for (const auto& [ch, q] : pending_channel_) n += q.size();
    return n;
  }

 private:
  enum MsgType : std::uint8_t { kData = 0, kAck = 1, kNack = 2, kBatch = 3 };

  struct OutPacket {
    /// Full engine-level datagram (UDP header + DATA frame), serialized
    /// exactly once; every (re)transmission re-sends this shared buffer.
    Payload frame;
    TimePoint next_due = 0;   ///< earliest next (re)transmission
    std::uint32_t attempts = 0;
  };

  /// Sequence numbers carry a *stream epoch* in their high bits (see
  /// kIncarnationSeqShift): a stack's streams start at its own incarnation's
  /// epoch base, and jump forward to a peer's epoch when that peer is
  /// observed to have restarted.  Epochs only grow; FIFO/exactly-once hold
  /// within an epoch, and an epoch jump is the crash-recovery reset — the
  /// receiver discards the dead incarnation's state, the sender discards
  /// packets addressed to the dead incarnation.  No wire-format change:
  /// epochs ride inside the existing varint sequence numbers.
  struct PeerOut {
    std::uint64_t next_seq = 1;  // re-based onto the epoch in start()
    std::map<std::uint64_t, OutPacket> unacked;  // seq -> packet
    /// Messages parked for the next batch datagram (send order), their
    /// accumulated wire size, and whether this peer is in batch_queue_.
    /// No sequence number is assigned until the batch flushes.
    std::vector<BatchMessage> pending;
    std::size_t pending_bytes = 0;
    bool batch_queued = false;
  };

  /// One buffered receive-side frame: either a single message (legacy kData)
  /// or an encoded batch body, decoded only when it becomes deliverable.
  struct ReorderEntry {
    bool batch = false;
    ChannelId channel = 0;  ///< unused for batch frames
    Payload payload;        ///< message payload, or encoded batch body
  };

  struct PeerIn {
    std::uint64_t next_expected = 1;  // its epoch = the peer's stream epoch
    bool ack_due = false;
    std::map<std::uint64_t, ReorderEntry> reorder;
    /// NACK state: whether a gap check is queued, the gap front last
    /// reported, and when.
    bool nack_pending = false;
    std::uint64_t last_nacked = 0;
    TimePoint last_nack_time = -1;
  };

  void on_datagram(NodeId src, const Payload& data);
  /// Handles a DATA frame whose sequence belongs to a newer epoch than the
  /// (src) streams we track: the peer restarted (or learned of our own
  /// restart).  Resets receive state to the new epoch and abandons packets
  /// addressed to the peer's dead incarnation.
  void adopt_peer_epoch(NodeId src, std::uint64_t epoch);
  void transmit(NodeId dst, OutPacket& pkt);
  [[nodiscard]] Duration backoff_after(std::uint32_t attempts) const;
  void note_ack_due(NodeId src, PeerIn& peer);
  void flush_acks();
  /// Queues a delayed gap check for `src` (sends nothing yet: benign
  /// reordering closes most holes within the jitter bound).
  void note_gap(NodeId src, PeerIn& peer);
  /// Runs the queued gap checks; reports each still-open hole
  /// [next_expected, first-buffered) to its sender, debounced per front.
  void flush_nacks();
  /// Sender side of a NACK: immediately retransmits the unacked packets of
  /// [from, to).
  void on_nack(NodeId src, std::uint64_t from, std::uint64_t to);
  void deliver(NodeId src, ChannelId channel, const Payload& payload);
  /// Delivers one in-order frame: a single message directly, a batch by
  /// decoding its body and delivering each message in pack order.
  void deliver_frame(NodeId src, const ReorderEntry& entry);
  /// Queues `dst` for the next batch-flush tick (arming the timer if idle).
  void note_batch_due(NodeId dst, PeerOut& peer);
  /// Flushes the parked batches of every queued destination.
  void flush_batches();
  /// Seals `peer`'s parked batch into one DATA datagram and transmits it.
  void flush_batch(NodeId dst, PeerOut& peer);
  void on_retransmit_tick();

  Config config_;
  ServiceRef<UdpApi> udp_;
  ServiceRef<FdApi> fd_;  ///< unbound in worlds without a failure detector
  /// Epoch base of this stack's outgoing streams ((incarnation << 48); new
  /// peers start at base+1).  Fixed at start() from HostEnv::incarnation.
  std::uint64_t seq_base_ = 0;
  /// Peer state, densely indexed by node id: O(1) lookup on every datagram
  /// and a deterministic iteration order for the retransmit scan.
  std::vector<PeerOut> out_;
  std::vector<PeerIn> in_;
  /// Bound channels (reference-stable dispatch; see HandlerTable).
  HandlerTable<ChannelId, DatagramHandler> channels_;
  /// Deliveries waiting for a channel handler (protocol instance not yet
  /// created on this stack, DESIGN.md §3 / weak protocol-operationability).
  std::unordered_map<ChannelId, std::deque<std::pair<NodeId, Payload>>>
      pending_channel_;
  /// Peers with a coalesced cumulative ack outstanding, in mark order (a
  /// vector, not map iteration, so ack emission order is deterministic
  /// across standard libraries).
  std::vector<NodeId> ack_queue_;
  /// Peers with a queued gap check, in detection order (deterministic).
  std::vector<NodeId> nack_queue_;
  /// Peers with a parked batch awaiting the flush tick, in first-message
  /// order (deterministic flush order, like ack_queue_).
  std::vector<NodeId> batch_queue_;
  /// Decode scratch reused across batch deliveries (swapped out during the
  /// delivery loop so re-entrant handlers cannot alias it).
  std::vector<BatchMessage> batch_scratch_;
  TimerSlot ack_timer_;
  TimerSlot nack_timer_;
  TimerSlot batch_timer_;
  TimerSlot retransmit_timer_;
  std::uint64_t delivered_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t data_datagrams_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t nacks_sent_ = 0;
  std::uint64_t fast_retransmits_ = 0;
  std::uint64_t suspected_skips_ = 0;
  std::uint64_t epoch_notes_ = 0;
};

}  // namespace dpu
