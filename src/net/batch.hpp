// Multi-message batch frame codec — the wire format that lets one datagram
// carry many app messages (ROADMAP open item 2(a): amortize per-datagram
// syscall/event costs; the shilangyu listen_batch idiom generalized to a
// byte budget instead of a fixed 8-per-packet count).
//
// A batch frame is the *body* of an rp2p DATA datagram (the rp2p header —
// message type and datagram sequence number — stays outside, because
// reliability is per datagram: one seq, one ack, one NACK hole, one
// retransmission for the whole batch).  Layout, all integers in the repo's
// standard codec (big-endian fixed width, LEB128 varints):
//
//   u8 version | varint count | count x (u64 channel | blob payload)
//
// The codec is engine-agnostic: the same bytes travel through the simulator
// and through real UDP sockets on the rt engine, so both engines share this
// one encoder/decoder.  Versioning: a decoder rejects frames whose version
// it does not know; adding fields means bumping kBatchFrameVersion and
// teaching the decoder both layouts during the rollout window.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace dpu {

/// Current (and only) batch frame layout version.
inline constexpr std::uint8_t kBatchFrameVersion = 1;

/// Hard decode ceilings, independent of any sender-side budget: a forged or
/// corrupted header must not make the decoder allocate unbounded memory.
/// kMaxBatchFrameBytes comfortably exceeds every sane batch_max_bytes while
/// still rejecting nonsense (the engines carry at most 64 KiB datagrams).
inline constexpr std::size_t kMaxBatchFrameBytes = 64 * 1024;
inline constexpr std::size_t kMaxBatchMessages = 4096;

/// One message inside a batch: the rp2p channel it is addressed to (a
/// ChannelId; spelled as its underlying integer so this header does not
/// drag in the service layer) and its payload (a zero-copy slice of the
/// datagram buffer on the decode side).
struct BatchMessage {
  std::uint64_t channel = 0;
  Payload payload;
};

/// Encoded size of one message inside a batch frame (channel + length
/// prefix + payload bytes) — what the sender's byte budget accounts.
[[nodiscard]] std::size_t batch_message_wire_size(std::size_t payload_size);

/// Appends a version-1 batch frame (version, count, messages) to `w`.
/// `messages` must be non-empty; a single message is the legal degenerate
/// frame (count = 1).
void encode_batch_frame(BufWriter& w, const std::vector<BatchMessage>& messages);

/// Decodes the batch frame in `body` (everything after the rp2p seq) into
/// `out`, replacing its contents.  Payloads are zero-copy slices of `body`.
/// Throws CodecError on: unknown version, zero count, count/size beyond the
/// hard ceilings, truncation, or trailing bytes — the caller treats all of
/// them as a malformed datagram and drops it.
void decode_batch_frame(const Payload& body, std::vector<BatchMessage>& out);

}  // namespace dpu
