// FD — heartbeat failure detector (paper Figure 4: "the FD module
// implements a failure detector; we assume that it ensures the properties of
// the <>S failure detector").
//
// Every stack broadcasts heartbeats over UDP; a peer silent for longer than
// its current timeout is suspected.  A heartbeat from a suspected peer
// rescinds the suspicion and *increases* that peer's timeout, so in a run
// that eventually stops losing/delaying messages every false suspicion
// raises the bar until false suspicions cease — the standard way an
// eventually-strong (<>S-style) detector is approximated in practice.
#pragma once

#include <vector>

#include "core/module.hpp"
#include "core/stack.hpp"
#include "net/services.hpp"

namespace dpu {

inline constexpr char kFdService[] = "fd";

/// Query interface of the failure-detector service.
struct FdApi {
  virtual ~FdApi() = default;
  [[nodiscard]] virtual bool fd_suspects(NodeId node) const = 0;
  [[nodiscard]] virtual std::vector<NodeId> fd_suspected() const = 0;
};

/// Response interface: edge-triggered suspicion changes.
struct FdListener {
  virtual ~FdListener() = default;
  virtual void on_suspect(NodeId node) = 0;
  virtual void on_trust(NodeId node) = 0;
};

struct FdConfig {
  Duration heartbeat_interval = 50 * kMillisecond;
  Duration initial_timeout = 200 * kMillisecond;
  /// Added to a peer's timeout after each false suspicion.
  Duration timeout_increment = 100 * kMillisecond;
};

class FdModule final : public Module, public FdApi {
 public:
  using Config = FdConfig;

  static constexpr char kProtocolName[] = "fd.heartbeat";

  static FdModule* create(Stack& stack, const std::string& service = kFdService,
                          Config config = Config{});

  /// Registers "fd.heartbeat": requires udp.
  static void register_protocol(ProtocolLibrary& library,
                                Config config = Config{});

  FdModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // FdApi
  [[nodiscard]] bool fd_suspects(NodeId node) const override;
  [[nodiscard]] std::vector<NodeId> fd_suspected() const override;

  [[nodiscard]] std::uint64_t false_suspicions() const {
    return false_suspicions_;
  }

 private:
  struct PeerState {
    TimePoint last_heartbeat = 0;
    Duration timeout = 0;
    bool suspected = false;
  };

  void on_heartbeat(NodeId src, const Payload& data);
  void on_tick();

  Config config_;
  ServiceRef<UdpApi> udp_;
  UpcallRef<FdListener> up_;
  std::vector<PeerState> peers_;
  TimerSlot tick_timer_;
  std::uint64_t false_suspicions_ = 0;
};

}  // namespace dpu
