#include "fd/fd.hpp"

#include "util/log.hpp"

namespace dpu {

FdModule* FdModule::create(Stack& stack, const std::string& service,
                           Config config) {
  auto* m = stack.emplace_module<FdModule>(stack, service, config);
  stack.bind<FdApi>(service, m, m);
  return m;
}

void FdModule::register_protocol(ProtocolLibrary& library, Config config) {
  library.register_protocol(ProtocolInfo{
      .protocol = kProtocolName,
      .default_service = kFdService,
      .requires_services = {kUdpService},
      .factory = [config](Stack& stack, const std::string& provide_as,
                          const ModuleParams&) -> Module* {
        return create(stack, provide_as, config);
      }});
}

FdModule::FdModule(Stack& stack, std::string instance_name, Config config)
    : Module(stack, std::move(instance_name)),
      config_(config),
      udp_(stack.require<UdpApi>(kUdpService)),
      // Responses go out on the service this instance provides (== its
      // instance name under the create() convention).
      up_(stack.upcalls<FdListener>(Module::instance_name())),
      tick_timer_(stack.host()) {}

void FdModule::start() {
  peers_.assign(env().world_size(), PeerState{});
  for (auto& p : peers_) {
    p.last_heartbeat = env().now();
    p.timeout = config_.initial_timeout;
  }
  udp_.call([this](UdpApi& udp) {
    udp.udp_bind_port(kFdPort, [this](NodeId src, const Payload& data) {
      on_heartbeat(src, data);
    });
  });
  on_tick();
}

void FdModule::stop() {
  tick_timer_.cancel();
  udp_.call([](UdpApi& udp) { udp.udp_release_port(kFdPort); });
}

bool FdModule::fd_suspects(NodeId node) const {
  if (node >= peers_.size()) return false;
  return peers_[node].suspected;
}

std::vector<NodeId> FdModule::fd_suspected() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < peers_.size(); ++i) {
    if (peers_[i].suspected) out.push_back(i);
  }
  return out;
}

void FdModule::on_heartbeat(NodeId src, const Payload& data) {
  (void)data;  // heartbeats carry no payload
  if (src >= peers_.size() || src == env().node_id()) return;
  PeerState& peer = peers_[src];
  peer.last_heartbeat = env().now();
  if (peer.suspected) {
    // False suspicion: rescind it and raise this peer's bar so the same
    // delay does not fool us twice (eventual accuracy).
    peer.suspected = false;
    peer.timeout += config_.timeout_increment;
    ++false_suspicions_;
    DPU_LOG(kDebug, "fd") << "s" << env().node_id() << " trusts s" << src
                          << " again (timeout now "
                          << to_millis(peer.timeout) << "ms)";
    up_.notify([src](FdListener& l) { l.on_trust(src); });
  }
}

void FdModule::on_tick() {
  const NodeId self = env().node_id();
  // Broadcast a heartbeat to all peers.  Captured by value: if udp is
  // momentarily unbound the closure is queued past this scope (a Payload
  // copy is a refcount bump, and an empty one is free).
  const Payload empty;
  for (NodeId dst = 0; dst < peers_.size(); ++dst) {
    if (dst == self) continue;
    udp_.call([dst, empty](UdpApi& udp) { udp.udp_send(dst, kFdPort, empty); });
  }
  // Check for silent peers.
  const TimePoint now = env().now();
  for (NodeId i = 0; i < peers_.size(); ++i) {
    if (i == self) continue;
    PeerState& peer = peers_[i];
    if (!peer.suspected && now - peer.last_heartbeat > peer.timeout) {
      peer.suspected = true;
      DPU_LOG(kDebug, "fd") << "s" << self << " suspects s" << i;
      up_.notify([i](FdListener& l) { l.on_suspect(i); });
    }
  }
  tick_timer_.schedule(config_.heartbeat_interval, [this]() { on_tick(); });
}

}  // namespace dpu
