// Per-node slice of a ScenarioSpec for the process-per-node runner.
//
// Agents receive the *full* spec (they need n, the workload shape and the
// protocol plan to compose their stack), but responsibility for the fault
// and update plan splits: the supervisor owns everything that manipulates
// processes or links (crashes = SIGKILL, recoveries/late joins = respawn,
// partitions/loss = control-channel fault state), while each agent fires
// the update actions *it* initiates — request_update must run on the
// initiator's own stack, which lives in the agent's process.
#pragma once

#include "scenario/spec.hpp"
#include "util/ids.hpp"

namespace dpu::cluster {

struct NodeSlice {
  NodeId node = 0;
  /// True when this node late-joins: the supervisor does not spawn it at
  /// boot; it first appears as a respawn at join_at.
  bool late_join = false;
  TimePoint join_at = 0;
  /// Update actions this node initiates, in time order.
  std::vector<scenario::UpdateAction> updates;
};

/// The slice for `node`.  Pure function of the spec — supervisor and agent
/// compute it independently and agree.
[[nodiscard]] NodeSlice slice_for_node(const scenario::ScenarioSpec& spec,
                                       NodeId node);

}  // namespace dpu::cluster
