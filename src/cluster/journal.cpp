#include "cluster/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <sstream>
#include <stdexcept>

namespace dpu::cluster {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string encode_hex(const Bytes& data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0F]);
  }
  return out;
}

Bytes decode_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("decode_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("decode_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

JournalWriter::JournalWriter(const std::string& path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("journal: cannot open '" + path + "'");
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::append(char tag, const Bytes& payload) {
  std::string line;
  line.reserve(payload.size() * 2 + 3);
  line.push_back(tag);
  line.push_back(' ');
  line += encode_hex(payload);
  line.push_back('\n');
  // One write per line: O_APPEND makes it a single atomic append, and the
  // page cache keeps it when this process is SIGKILLed an instant later.
  (void)::write(fd_, line.data(), line.size());
}

std::vector<JournalRecord> parse_journal(const std::string& text) {
  std::vector<JournalRecord> records;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    // "S " with no hex is legal: an empty payload.
    if (line.size() < 2 || line[1] != ' ') continue;
    if (line[0] != 'S' && line[0] != 'D') continue;
    try {
      records.push_back(
          JournalRecord{line[0] == 'S', decode_hex(line.substr(2))});
    } catch (const std::invalid_argument&) {
      // Torn tail of a killed writer: drop the fragment.
    }
  }
  return records;
}

std::string journal_filename(std::uint32_t node, std::uint32_t incarnation) {
  return "audit-n" + std::to_string(node) + "-i" +
         std::to_string(incarnation) + ".log";
}

}  // namespace dpu::cluster
