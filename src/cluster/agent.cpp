#include "cluster/agent.hpp"

#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "app/stack_builder.hpp"
#include "cluster/control.hpp"
#include "cluster/journal.hpp"
#include "cluster/slice.hpp"
#include "rt/rt_world.hpp"
#include "scenario/compose.hpp"
#include "util/log.hpp"

namespace dpu::cluster {

namespace {

using scenario::ComposeHooks;
using scenario::ComposedStack;
using scenario::CompositionPlan;
using scenario::Json;
using scenario::NodeAccum;
using scenario::ScenarioSpec;

/// Journals probe deliveries and keeps the raw (send_time, latency) pairs
/// for the supervisor-side collector rebuild.  Runs on the stack thread;
/// the mutex covers the harvest read from the control thread.
class JournalListener final : public AbcastListener {
 public:
  JournalListener(JournalWriter& journal, HostEnv& host)
      : journal_(&journal), host_(&host) {}

  void adeliver(NodeId /*sender*/, const Bytes& payload) override {
    // Probe traffic only — same filter as the in-process audit tap: topic
    // frames on the facade were never record_sent.
    if (!ProbePayload::is_probe(payload)) return;
    journal_->record_delivery(payload);
    const ProbePayload p = ProbePayload::parse(payload);
    const std::lock_guard<std::mutex> lock(mutex_);
    pairs_.emplace_back(p.send_time, host_->busy_now() - p.send_time);
  }

  [[nodiscard]] std::vector<std::pair<TimePoint, Duration>> pairs() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return pairs_;
  }

 private:
  JournalWriter* journal_;
  HostEnv* host_;
  mutable std::mutex mutex_;
  std::vector<std::pair<TimePoint, Duration>> pairs_;
};

/// Applies one full fault-state message.  The message always carries the
/// *entire* current state (base loss, active partition masks, link
/// overrides), so applying a duplicate or stale resend is harmless.
void apply_fault_state(RtWorld& world, const Json& msg, std::size_t n,
                       std::set<std::pair<NodeId, NodeId>>& applied_links) {
  const Json* drop = msg.find("drop");
  const Json* dup = msg.find("duplicate");
  world.set_loss(drop != nullptr ? drop->as_double() : 0.0,
                 dup != nullptr ? dup->as_double() : 0.0);

  // Partition masks: a packet passes when no active mask separates the
  // endpoints — the same shared-active-mask filter the in-process runner
  // installs, rebuilt from the wire.
  std::vector<std::vector<bool>> masks;
  if (const Json* parts = msg.find("isolated")) {
    for (const Json& part : parts->items()) {
      std::vector<bool> mask(n, false);
      for (const Json& id : part.items()) {
        const auto node = static_cast<std::size_t>(id.as_int());
        if (node < n) mask[node] = true;
      }
      masks.push_back(std::move(mask));
    }
  }
  if (masks.empty()) {
    world.set_link_filter(nullptr);
  } else {
    world.set_link_filter([masks](NodeId src, NodeId dst) {
      for (const std::vector<bool>& side : masks) {
        if (side[src] != side[dst]) return false;
      }
      return true;
    });
  }

  std::set<std::pair<NodeId, NodeId>> now_active;
  if (const Json* links = msg.find("link_overrides")) {
    for (const Json& link : links->items()) {
      const auto src = static_cast<NodeId>(link.at("src").as_int());
      const auto dst = static_cast<NodeId>(link.at("dst").as_int());
      LinkFault fault;
      fault.drop = link.at("drop").as_double();
      fault.duplicate = link.at("duplicate").as_double();
      fault.extra_latency = link.at("extra_latency_ns").as_int();
      world.set_link_fault(src, dst, fault);
      now_active.insert({src, dst});
    }
  }
  for (const auto& link : applied_links) {
    if (now_active.count(link) == 0) {
      world.set_link_fault(link.first, link.second, std::nullopt);
    }
  }
  applied_links = std::move(now_active);
}

}  // namespace

int run_agent(const AgentConfig& config) {
  const ScenarioSpec& spec = config.spec;
  const NodeSlice slice = slice_for_node(spec, config.node);

  // ---- World --------------------------------------------------------------
  const StandardStackOptions stack_options =
      scenario::stack_options_for_spec(spec);
  ProtocolRegistry library = make_standard_library(stack_options);
  TraceRecorder trace_recorder;

  RtConfig rt;
  rt.num_stacks = spec.n;
  rt.seed = config.seed;
  rt.local_node = config.node;
  rt.peers = config.hosts.peers(spec.n);
  rt.initial_incarnation = config.incarnation;
  rt.epoch_ns = config.epoch_ns;
  RtWorld world(rt, &library, &trace_recorder);

  // ---- Composition + journal ----------------------------------------------
  JournalWriter journal(config.results_dir + "/" +
                        journal_filename(config.node, config.incarnation));
  Stack& stack = world.stack(config.node);
  JournalListener delivery_journal(journal, stack.host());

  LatencyCollector collector;
  ComposeHooks hooks;
  hooks.collector = &collector;
  hooks.extra_listener = &delivery_journal;
  hooks.on_send = [&journal](const Bytes& payload) {
    journal.record_send(payload);
  };

  // `since` = now on the shared timebase: negative during the boot grace
  // (first spawns compose before the epoch), the respawn time afterwards.
  // compose_stack shifts the workload window by it, so sends land in the
  // spec's absolute window whatever this process's start time was.
  const CompositionPlan plan = CompositionPlan::from_spec(spec);
  ComposedStack composed = scenario::compose_stack(
      stack, spec, plan, stack_options, world.now(), hooks);
  world.start();

  // ---- Control loop -------------------------------------------------------
  ControlSocket ctrl;
  const sockaddr_in supervisor =
      make_address(config.supervisor_host, config.supervisor_port);

  // Register: retry hello until acked (the supervisor learns our control
  // address from the datagram's source).  rp2p retransmissions absorb any
  // data-plane traffic sent at us before everyone is up.
  {
    Json hello = Json::object();
    hello.set("type", "hello");
    hello.set("node", config.node);
    hello.set("incarnation", config.incarnation);
    hello.set("pid", static_cast<std::int64_t>(::getpid()));
    bool acked = false;
    for (int attempt = 0; attempt < 100 && !acked; ++attempt) {
      ctrl.send(supervisor, hello);
      Json msg;
      sockaddr_in from{};
      if (ctrl.receive(msg, from, 200 * kMillisecond)) {
        const Json* type = msg.find("type");
        if (type != nullptr && type->as_string() == "hello_ack") acked = true;
      }
    }
    if (!acked) {
      DPU_LOG(kWarn, "cluster") << "agent n" << config.node
                                << ": no hello ack; giving up";
      return 2;
    }
  }

  std::set<std::pair<NodeId, NodeId>> applied_links;
  std::int64_t last_fault_seq = -1;
  std::size_t next_update = 0;
  TimePoint last_heard = world.now();

  for (;;) {
    // Fire this node's own update actions when their time comes (the
    // initiator's stack lives here; the supervisor never proxies these).
    while (next_update < slice.updates.size() &&
           world.now() >= slice.updates[next_update].at) {
      const scenario::UpdateAction u = slice.updates[next_update++];
      auto* update = composed.modules.update;
      if (update != nullptr) {
        world.post_to(config.node, [update, u]() {
          update->request_update(u.target_service(), u.protocol);
        });
      }
    }

    Json msg;
    sockaddr_in from{};
    if (!ctrl.receive(msg, from, 100 * kMillisecond)) {
      if (world.now() - last_heard > config.supervisor_silence_limit) {
        DPU_LOG(kWarn, "cluster") << "agent n" << config.node
                                  << ": supervisor silent; exiting";
        return 2;
      }
      continue;
    }
    last_heard = world.now();
    const Json* type_field = msg.find("type");
    if (type_field == nullptr) continue;
    const std::string& type = type_field->as_string();
    const Json* seq_field = msg.find("seq");
    const std::int64_t seq = seq_field != nullptr ? seq_field->as_int() : 0;

    if (type == "fault") {
      if (seq > last_fault_seq) {
        apply_fault_state(world, msg, spec.n, applied_links);
        last_fault_seq = seq;
      }
      Json ack = Json::object();
      ack.set("type", "fault_ack");
      ack.set("seq", seq);
      ack.set("node", config.node);
      ctrl.send(supervisor, ack);
    } else if (type == "status") {
      std::set<NodeId> crashed;
      if (const Json* list = msg.find("crashed")) {
        for (const Json& id : list->items()) {
          crashed.insert(static_cast<NodeId>(id.as_int()));
        }
      }
      std::uint64_t deliveries = 0;
      std::uint64_t unacked = 0;
      std::uint64_t pending = 0;
      world.call_on(config.node, [&]() {
        if (composed.modules.probe != nullptr) {
          deliveries = composed.modules.probe->deliveries();
        }
        if (composed.modules.rp2p != nullptr) {
          unacked = composed.modules.rp2p->unacked_excluding(crashed);
        }
        pending = stack.pending_call_count();
      });
      Json report = Json::object();
      report.set("type", "report");
      report.set("seq", seq);
      report.set("node", config.node);
      report.set("deliveries", deliveries);
      report.set("unacked", unacked);
      report.set("pending_calls", pending);
      ctrl.send(supervisor, report);
    } else if (type == "harvest") {
      break;
    }
  }

  // ---- Harvest ------------------------------------------------------------
  world.stop();

  NodeAccum acc;
  scenario::harvest_modules(acc, composed.modules);

  Json report = Json::object();
  report.set("node", config.node);
  report.set("incarnation", config.incarnation);
  Json counts = Json::object();
  counts.set("sent", acc.sent);
  counts.set("delivered", acc.deliveries);
  counts.set("reissued", acc.reissued);
  counts.set("stale_discarded", acc.stale_discarded);
  counts.set("decisions_delivered", acc.decisions_delivered);
  counts.set("snapshots_served", acc.snapshots_served);
  counts.set("state_replayed", acc.state_replayed);
  counts.set("app_blocked_ns", acc.app_blocked);
  counts.set("calls_queued", acc.calls_queued);
  counts.set("retransmissions", acc.retransmissions);
  counts.set("acks_sent", acc.acks_sent);
  if (composed.modules.repl_rbcast != nullptr) {
    counts.set("dedup_entries", composed.modules.repl_rbcast->dedup_entries());
  }
  report.set("counts", std::move(counts));
  report.set("packets_sent", world.packets_sent());
  report.set("packets_dropped", world.packets_dropped());
  report.set("socket_tx_syscalls", world.socket_tx_syscalls());
  report.set("socket_tx_datagrams", world.socket_tx_datagrams());
  report.set("socket_rx_syscalls", world.socket_rx_syscalls());
  report.set("socket_rx_datagrams", world.socket_rx_datagrams());
  report.set("pending_calls", stack.pending_call_count());

  // Convergence witness, like the in-process harvest: the last update's
  // target service (or the first managed one) as this stack reports it.
  std::string report_service =
      spec.updates.empty()
          ? (plan.managed.empty() ? std::string()
                                  : plan.managed.begin()->first)
          : spec.updates.back().target_service();
  std::string final_protocol;
  if (!report_service.empty() && composed.modules.update != nullptr) {
    try {
      final_protocol =
          composed.modules.update->current_version(report_service).protocol;
    } catch (const std::invalid_argument&) {
      // Service not managed on this composition: leave empty.
    }
  } else {
    final_protocol = spec.updates.empty() ? spec.initial_protocol
                                          : spec.updates.back().protocol;
  }
  report.set("final_protocol", final_protocol);

  Json pairs = Json::array();
  for (const auto& [send_time, latency] : delivery_journal.pairs()) {
    pairs.push(send_time);
    pairs.push(latency);
  }
  report.set("latency_pairs", std::move(pairs));

  Json trace = Json::array();
  for (const TraceEvent& e : trace_recorder.events()) {
    Json ev = Json::object();
    ev.set("t", e.time);
    ev.set("node", e.node);
    ev.set("kind", static_cast<int>(e.kind));
    ev.set("service", e.service);
    ev.set("module", e.module);
    ev.set("detail", e.detail);
    trace.push(std::move(ev));
  }
  report.set("trace", std::move(trace));

  const std::string path =
      config.results_dir + "/node-" + std::to_string(config.node) + ".json";
  {
    std::ofstream out(path);
    out << report.dump(2) << "\n";
  }

  Json ack = Json::object();
  ack.set("type", "harvest_ack");
  ack.set("node", config.node);
  ctrl.send(supervisor, ack);
  return 0;
}

}  // namespace dpu::cluster
