// Supervisor <-> agent control channel: JSON datagrams over a dedicated
// UDP socket, one message per datagram.
//
// The channel is deliberately primitive — UDP on the same network the data
// plane uses, with sender-side retry and receiver-side idempotent handling
// instead of a reliability layer.  Message flow:
//
//   agent -> supervisor   hello   {type, node, incarnation, pid}
//   supervisor -> agent   fault   {type, seq, drop, duplicate, isolated,
//                                  link_overrides}     (full current state)
//   supervisor -> agent   status  {type, seq}
//   agent -> supervisor   report  {type, seq, node, deliveries, unacked,
//                                  pending_calls}
//   supervisor -> agent   harvest {type, seq}
//   agent -> supervisor   ack     {type, seq, node}
//
// Every supervisor->agent message carries a seq the agent echoes; resends
// are filtered by seq, and `fault` carries the *entire* current fault
// state, so applying a stale resend twice is harmless.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <string>

#include "runtime/time.hpp"
#include "scenario/json.hpp"

namespace dpu::cluster {

using scenario::Json;

/// IPv4 address helper; throws std::invalid_argument on a bad dotted quad.
[[nodiscard]] sockaddr_in make_address(const std::string& host,
                                       std::uint16_t port);

/// One bound UDP socket speaking newline-free JSON datagrams.
class ControlSocket {
 public:
  /// Binds 0.0.0.0:`port`; port 0 picks an ephemeral port.  Throws
  /// std::runtime_error when the bind fails.
  explicit ControlSocket(std::uint16_t port = 0);
  ~ControlSocket();

  ControlSocket(const ControlSocket&) = delete;
  ControlSocket& operator=(const ControlSocket&) = delete;

  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }

  /// Fire-and-forget datagram send (compact JSON encoding).
  void send(const sockaddr_in& to, const Json& message) const;

  /// Blocks up to `timeout` for one well-formed JSON datagram; malformed
  /// datagrams are skipped without consuming the remaining budget being
  /// reset.  Returns false on timeout.
  [[nodiscard]] bool receive(Json& message, sockaddr_in& from,
                             Duration timeout) const;

 private:
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
};

}  // namespace dpu::cluster
