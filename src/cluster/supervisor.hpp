// Campaign supervisor for the process-per-node runner.
//
// ClusterSupervisor::run executes one ScenarioSpec as N real OS processes:
// it writes the spec and a hosts file to a per-run scratch directory,
// fork/execs one dpu_node agent per (initially-present) node, and then
// executes the spec's fault plan against reality — crashes by SIGKILL,
// recoveries and late joins by respawning with a bumped incarnation,
// partitions and loss windows as full fault-state broadcasts each agent
// installs in its socket receive path.  After the activity window it polls
// the agents for quiescence (deliveries stable, no unacked rp2p traffic),
// harvests their result JSON, replays their crash-durable audit journals
// into the §5.1 AbcastAudit, and merges everything into the same
// ScenarioResult the in-process engines produce — so campaign tooling,
// perf_gate and the property audits run unchanged.
//
// Orphan safety is layered: every agent sets PR_SET_PDEATHSIG(SIGKILL)
// before exec (dies with the supervisor, even on SIGKILL), the supervisor
// kills and reaps every child on destruction and on cancellation, and the
// agents additionally exit on their own after a long supervisor silence.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace dpu::cluster {

struct SupervisorOptions {
  /// Path to the dpu_node agent binary.
  std::string node_binary;
  /// Scratch root: each run writes to <results_dir>/<scenario>-s<seed>/.
  std::string results_dir = "cluster-results";
  /// First data-plane UDP port (node i binds base_port + i).  Defaults
  /// below the kernel's ephemeral range (32768+): an ephemerally-bound
  /// socket — including the agents' own control sockets — must never be
  /// able to squat on a node's data port.
  std::uint16_t base_port = 21000;
  /// Control-channel port (0 = ephemeral).
  std::uint16_t control_port = 0;
  /// Lead time between spawning and the shared epoch: agents booted within
  /// it compose before world time 0.
  Duration boot_grace = 500 * kMillisecond;
  /// Drain policy, mirroring RunOptions for the rt engine.
  Duration drain_cap = 10 * kSecond;
  Duration quiesce_window = 1500 * kMillisecond;
  Duration bucket_width = 100 * kMillisecond;
  /// Checked between steps: when it flips true, every child is killed and
  /// run() throws std::runtime_error (the CLI flushes partial results).
  const std::atomic<bool>* cancel = nullptr;
  /// Keep the per-node scratch files (journals, node JSON) after a run.
  bool keep_artifacts = false;
};

class ClusterSupervisor {
 public:
  explicit ClusterSupervisor(SupervisorOptions options);
  ~ClusterSupervisor();

  ClusterSupervisor(const ClusterSupervisor&) = delete;
  ClusterSupervisor& operator=(const ClusterSupervisor&) = delete;

  /// Runs `spec` (engine proc) under `seed` to a merged ScenarioResult.
  /// Throws std::invalid_argument on an invalid spec and
  /// std::runtime_error on cancellation or unrecoverable setup failure.
  [[nodiscard]] scenario::ScenarioResult run(
      const scenario::ScenarioSpec& spec, std::uint64_t seed);

 private:
  class Run;
  SupervisorOptions options_;
};

}  // namespace dpu::cluster
