#include "cluster/control.hpp"

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <vector>

namespace dpu::cluster {

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("cluster: bad IPv4 address '" + host + "'");
  }
  return addr;
}

ControlSocket::ControlSocket(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("cluster: control socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    throw std::runtime_error("cluster: control bind() failed on port " +
                             std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    local_port_ = ntohs(bound.sin_port);
  }
}

ControlSocket::~ControlSocket() {
  if (fd_ >= 0) ::close(fd_);
}

void ControlSocket::send(const sockaddr_in& to, const Json& message) const {
  const std::string wire = message.dump(-1);
  ::sendto(fd_, wire.data(), wire.size(), 0,
           reinterpret_cast<const sockaddr*>(&to), sizeof(to));
}

bool ControlSocket::receive(Json& message, sockaddr_in& from,
                            Duration timeout) const {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeout);
  std::vector<char> buf(65536);
  for (;;) {
    const auto remaining = deadline - std::chrono::steady_clock::now();
    if (remaining.count() <= 0) return false;
    timeval tv{};
    const auto usec = std::chrono::duration_cast<std::chrono::microseconds>(
                          remaining)
                          .count();
    tv.tv_sec = static_cast<time_t>(usec / 1'000'000);
    tv.tv_usec = static_cast<suseconds_t>(usec % 1'000'000);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const ssize_t n =
        ::recvfrom(fd_, buf.data(), buf.size(), 0,
                   reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (n < 0) continue;  // timeout or EINTR: re-check the deadline
    try {
      message = Json::parse(std::string(buf.data(), static_cast<size_t>(n)));
    } catch (const scenario::JsonParseError&) {
      continue;  // garbage datagram: keep waiting
    }
    from = peer;
    return true;
  }
}

}  // namespace dpu::cluster
