// Crash-durable audit journal for the process-per-node runner.
//
// The in-process engines feed the AbcastAudit live; an agent process can be
// SIGKILLed mid-run, so it journals instead: every workload send (before
// the payload enters abcast) and every probe delivery append one line —
//
//     S <hex payload>
//     D <hex payload>
//
// — via one unbuffered ::write() to an O_APPEND fd.  The bytes live in the
// page cache from that moment on, so they survive process death (the whole
// point: a SIGKILL "crash" must not lose the evidence the §5.1 audit needs
// about what the dead incarnation sent and delivered).  One file per
// (node, incarnation); the supervisor replays them in node order,
// incarnations ascending, with AbcastAudit::record_recovered between
// incarnations — exactly the order the in-process runner would have fed it.
#pragma once

#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace dpu::cluster {

/// Plain lowercase hex (no separators), round-tripping payload bytes.
[[nodiscard]] std::string encode_hex(const Bytes& data);
/// Throws std::invalid_argument on odd length or non-hex characters.
[[nodiscard]] Bytes decode_hex(const std::string& hex);

/// One replayed journal record.
struct JournalRecord {
  bool is_send = false;  ///< S line (else D)
  Bytes payload;
};

/// Append-only journal writer (unbuffered, O_APPEND).
class JournalWriter {
 public:
  /// Opens (creating if needed) `path`.  Throws std::runtime_error.
  explicit JournalWriter(const std::string& path);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  void record_send(const Bytes& payload) { append('S', payload); }
  void record_delivery(const Bytes& payload) { append('D', payload); }

 private:
  void append(char tag, const Bytes& payload);
  int fd_ = -1;
};

/// Parses a journal file's text.  Unknown/torn lines are skipped (a kill
/// can tear the final line; everything before it is intact by O_APPEND
/// write atomicity for our line sizes).
[[nodiscard]] std::vector<JournalRecord> parse_journal(
    const std::string& text);

/// The journal filename for (node, incarnation):
/// "audit-n<node>-i<incarnation>.log".
[[nodiscard]] std::string journal_filename(std::uint32_t node,
                                           std::uint32_t incarnation);

}  // namespace dpu::cluster
