// Cluster hosts file: the node-id -> UDP endpoint map every agent and the
// supervisor share.
//
// Plain text, one node per line:
//
//     # comments and blank lines are ignored
//     0 127.0.0.1 21000
//     1 127.0.0.1 38001
//
// Every node of the scenario must appear exactly once; parse() rejects
// duplicate ids, malformed lines and out-of-range ports, and ordered()
// rejects a file that does not cover 0..n-1 — an agent booting with a hole
// in its peer table would silently blackhole traffic to the missing node.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/rt_world.hpp"
#include "util/ids.hpp"

namespace dpu::cluster {

struct HostEntry {
  NodeId node = 0;
  std::string host;
  std::uint16_t port = 0;
};

struct HostsFile {
  std::vector<HostEntry> entries;  ///< file order (not necessarily by id)

  /// Parses the text format above.  Throws std::invalid_argument naming
  /// the offending line on malformed input, bad ports (0, > 65535,
  /// non-numeric) and duplicate node ids.
  [[nodiscard]] static HostsFile parse(const std::string& text);

  /// All-loopback table for n nodes on consecutive ports from base_port.
  [[nodiscard]] static HostsFile generate(std::size_t n,
                                          const std::string& host,
                                          std::uint16_t base_port);

  /// Renders back to the text format (stable: one line per entry).
  [[nodiscard]] std::string format() const;

  /// The entry for `node`; throws std::invalid_argument when missing.
  [[nodiscard]] const HostEntry& at(NodeId node) const;

  /// The full peer table in node-id order, validated to cover exactly
  /// 0..n-1; throws std::invalid_argument on a missing or surplus node.
  [[nodiscard]] std::vector<RtPeer> peers(std::size_t n) const;
};

}  // namespace dpu::cluster
