#include "cluster/supervisor.hpp"

#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "abcast/audit.hpp"
#include "app/stack_builder.hpp"
#include "cluster/control.hpp"
#include "cluster/hosts.hpp"
#include "cluster/journal.hpp"
#include "scenario/compose.hpp"
#include "util/log.hpp"

namespace dpu::cluster {

namespace {

using scenario::Json;
using scenario::ScenarioResult;
using scenario::ScenarioSpec;
using scenario::UpdateOutcome;

namespace fs = std::filesystem;

[[nodiscard]] std::int64_t mono_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void append(PropertyReport& into, PropertyReport from) {
  for (std::string& v : from.violations) into.fail(std::move(v));
}

/// What the campaign timeline does at one instant.
struct TimelineEvent {
  enum class Kind { kKill, kRespawn, kFaultChange };
  TimePoint at = 0;
  Kind kind = Kind::kFaultChange;
  NodeId node = kNoNode;
  bool late_join = false;  ///< respawn realizing a late join (first boot)
};

[[nodiscard]] std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// One run's full state, so helpers share it without a parameter caravan.
// ---------------------------------------------------------------------------

class ClusterSupervisor::Run {
 public:
  Run(const SupervisorOptions& options, const ScenarioSpec& spec,
      std::uint64_t seed)
      : options_(options), spec_(spec), seed_(seed), ctrl_(options.control_port) {}

  ~Run() { kill_all(); }

  ScenarioResult execute();

 private:
  struct Agent {
    pid_t pid = -1;
    std::uint32_t incarnation = 0;
    bool helloed = false;
    sockaddr_in addr{};  ///< control address, learned from the hello
    /// Every incarnation this node ever ran, ascending — the journal replay
    /// order.  Present nodes start at {0}; late joiners start empty.
    std::vector<std::uint32_t> incarnations;
  };

  [[nodiscard]] TimePoint world_now() const {
    return mono_now_ns() - epoch_ns_;
  }

  void check_cancel() {
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      kill_all();
      throw std::runtime_error("cluster run canceled");
    }
  }

  void setup_run_dir();
  void spawn(NodeId node, std::uint32_t incarnation);
  void kill_all();
  /// Reaps `pid`, SIGKILLing it after `patience` if it will not exit.
  void reap(pid_t pid, Duration patience);

  /// Handles one inbound control message (hello or an ack/report).
  void handle_message(const Json& msg, const sockaddr_in& from);
  /// Pumps inbound messages for up to `budget`.
  void pump(Duration budget);
  /// Sleeps until world time `t`, pumping the control channel meanwhile.
  void sleep_until(TimePoint t);

  [[nodiscard]] Json fault_state_at(TimePoint t) const;
  void broadcast_fault_state(TimePoint t);
  void send_fault_state_to(NodeId node);
  void await_hellos(const std::vector<NodeId>& nodes, Duration timeout);

  void run_timeline();
  void drain();
  void harvest();
  ScenarioResult merge();
  void replay_audit(AbcastAudit& audit) const;

  const SupervisorOptions& options_;
  const ScenarioSpec& spec_;
  std::uint64_t seed_ = 0;
  ControlSocket ctrl_;

  fs::path run_dir_;
  fs::path spec_path_;
  fs::path hosts_path_;
  std::int64_t epoch_ns_ = 0;

  std::vector<Agent> agents_;
  std::set<NodeId> crashed_now_;  ///< down at this instant
  /// Mirrors RtWorld::next_incarnation_: the first respawn (or late join)
  /// anywhere gets 1, globally increasing.
  std::uint32_t next_incarnation_ = 1;
  std::int64_t fault_seq_ = 0;
  Json current_fault_state_;  ///< last broadcast state (without type/seq)
  std::set<NodeId> fault_acked_;

  /// Quiescence reports for the in-flight status seq.
  std::int64_t status_seq_ = 0;
  std::map<NodeId, std::pair<std::uint64_t, std::uint64_t>> status_reports_;
  std::set<NodeId> harvest_acked_;

  /// Synthesized crash/recovery markers and join times for the merge.
  std::vector<TraceEvent> fault_markers_;
  std::vector<TimePoint> recovery_time_;
};

// ---------------------------------------------------------------------------
// Setup and process control
// ---------------------------------------------------------------------------

void ClusterSupervisor::Run::setup_run_dir() {
  run_dir_ = fs::path(options_.results_dir) /
             (spec_.name + "-s" + std::to_string(seed_));
  std::error_code ec;
  fs::remove_all(run_dir_, ec);  // stale journals would pollute the replay
  fs::create_directories(run_dir_);

  spec_path_ = run_dir_ / "spec.json";
  {
    std::ofstream out(spec_path_);
    out << spec_.to_json().dump(2) << "\n";
  }
  hosts_path_ = run_dir_ / "hosts.txt";
  {
    std::ofstream out(hosts_path_);
    out << HostsFile::generate(spec_.n, "127.0.0.1", options_.base_port)
               .format();
  }
}

void ClusterSupervisor::Run::spawn(NodeId node, std::uint32_t incarnation) {
  const std::vector<std::string> args = {
      options_.node_binary,
      "--spec", spec_path_.string(),
      "--hosts", hosts_path_.string(),
      "--node", std::to_string(node),
      "--incarnation", std::to_string(incarnation),
      "--epoch-ns", std::to_string(epoch_ns_),
      "--seed", std::to_string(seed_),
      "--supervisor-port", std::to_string(ctrl_.local_port()),
      "--results-dir", run_dir_.string(),
  };
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t parent = ::getpid();
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("cluster: fork failed");
  if (pid == 0) {
    // Child (async-signal-safe territory until exec).  Die with the
    // supervisor, whatever kills it; re-check the parent to close the race
    // where it died before prctl took effect.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() != parent) ::_exit(127);
    ::execv(options_.node_binary.c_str(), argv.data());
    ::_exit(126);
  }

  Agent& agent = agents_[node];
  agent.pid = pid;
  agent.incarnation = incarnation;
  agent.helloed = false;
  agent.incarnations.push_back(incarnation);
}

void ClusterSupervisor::Run::kill_all() {
  for (Agent& agent : agents_) {
    if (agent.pid <= 0) continue;
    ::kill(agent.pid, SIGKILL);
    ::waitpid(agent.pid, nullptr, 0);
    agent.pid = -1;
  }
}

void ClusterSupervisor::Run::reap(pid_t pid, Duration patience) {
  const std::int64_t deadline = mono_now_ns() + patience;
  for (;;) {
    int status = 0;
    const pid_t got = ::waitpid(pid, &status, WNOHANG);
    if (got == pid || (got < 0 && errno == ECHILD)) return;
    if (mono_now_ns() >= deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

// ---------------------------------------------------------------------------
// Control channel
// ---------------------------------------------------------------------------

void ClusterSupervisor::Run::handle_message(const Json& msg,
                                            const sockaddr_in& from) {
  const Json* type_field = msg.find("type");
  if (type_field == nullptr) return;
  const std::string& type = type_field->as_string();

  if (type == "hello") {
    const auto node = static_cast<std::size_t>(msg.at("node").as_int());
    const auto inc = static_cast<std::uint32_t>(msg.at("incarnation").as_int());
    if (node >= agents_.size()) return;
    Agent& agent = agents_[node];
    // Ack every hello (resends included), but only the current incarnation
    // registers — a zombie predecessor's late hello must not hijack the
    // control address.
    Json ack = Json::object();
    ack.set("type", "hello_ack");
    ack.set("node", static_cast<NodeId>(node));
    ctrl_.send(from, ack);
    if (inc == agent.incarnation && agent.pid > 0) {
      const bool first = !agent.helloed;
      agent.helloed = true;
      agent.addr = from;
      // A respawned agent boots with no fault state: re-install the current
      // one (idempotent on the agent side).
      if (first && fault_seq_ > 0) send_fault_state_to(static_cast<NodeId>(node));
    }
    return;
  }

  const Json* node_field = msg.find("node");
  if (node_field == nullptr) return;
  const auto node = static_cast<std::size_t>(node_field->as_int());
  if (node >= agents_.size()) return;
  const Json* seq_field = msg.find("seq");
  const std::int64_t seq = seq_field != nullptr ? seq_field->as_int() : -1;

  if (type == "fault_ack") {
    if (seq == fault_seq_) fault_acked_.insert(static_cast<NodeId>(node));
  } else if (type == "report") {
    if (seq == status_seq_) {
      status_reports_[static_cast<NodeId>(node)] = {
          static_cast<std::uint64_t>(msg.at("deliveries").as_int()),
          static_cast<std::uint64_t>(msg.at("unacked").as_int())};
    }
  } else if (type == "harvest_ack") {
    harvest_acked_.insert(static_cast<NodeId>(node));
  }
}

void ClusterSupervisor::Run::pump(Duration budget) {
  const std::int64_t deadline = mono_now_ns() + budget;
  do {
    check_cancel();
    Json msg;
    sockaddr_in from{};
    const Duration left = deadline - mono_now_ns();
    if (left <= 0) break;
    if (ctrl_.receive(msg, from, std::min(left, 50 * kMillisecond))) {
      handle_message(msg, from);
    }
  } while (mono_now_ns() < deadline);
}

void ClusterSupervisor::Run::sleep_until(TimePoint t) {
  while (world_now() < t) {
    pump(std::min<Duration>(t - world_now(), 50 * kMillisecond));
  }
}

Json ClusterSupervisor::Run::fault_state_at(TimePoint t) const {
  double drop = spec_.base_drop;
  double duplicate = spec_.base_duplicate;
  Json links = Json::array();
  for (const scenario::LossWindow& w : spec_.loss_windows) {
    if (t < w.from || t >= w.until) continue;
    drop = w.drop;
    duplicate = w.duplicate;
    for (const scenario::LinkOverride& o : w.link_overrides) {
      Json link = Json::object();
      link.set("src", o.src);
      link.set("dst", o.dst);
      link.set("drop", o.drop);
      link.set("duplicate", o.duplicate);
      link.set("extra_latency_ns", o.extra_latency);
      links.push(std::move(link));
    }
  }
  Json isolated = Json::array();
  for (const scenario::PartitionFault& p : spec_.partitions) {
    if (t < p.from || t >= p.until) continue;
    Json side = Json::array();
    for (const NodeId id : p.isolated) side.push(id);
    isolated.push(std::move(side));
  }
  Json state = Json::object();
  state.set("drop", drop);
  state.set("duplicate", duplicate);
  state.set("isolated", std::move(isolated));
  state.set("link_overrides", std::move(links));
  return state;
}

void ClusterSupervisor::Run::broadcast_fault_state(TimePoint t) {
  current_fault_state_ = fault_state_at(t);
  ++fault_seq_;
  fault_acked_.clear();
  // Retry until every live agent acked this seq (the channel is lossy UDP);
  // give up after a bounded number of rounds — the state is re-sent on the
  // next change anyway, and a dying agent must not wedge the timeline.
  for (int round = 0; round < 20; ++round) {
    bool all = true;
    for (NodeId i = 0; i < spec_.n; ++i) {
      const Agent& agent = agents_[i];
      if (agent.pid <= 0 || !agent.helloed) continue;
      if (fault_acked_.count(i) != 0) continue;
      all = false;
      Json msg = current_fault_state_;
      msg.set("type", "fault");
      msg.set("seq", fault_seq_);
      ctrl_.send(agent.addr, msg);
    }
    if (all) return;
    pump(50 * kMillisecond);
  }
  DPU_LOG(kWarn, "cluster") << "fault state seq " << fault_seq_
                            << " not fully acked";
}

void ClusterSupervisor::Run::send_fault_state_to(NodeId node) {
  Json msg = current_fault_state_;
  msg.set("type", "fault");
  msg.set("seq", fault_seq_);
  ctrl_.send(agents_[node].addr, msg);
}

void ClusterSupervisor::Run::await_hellos(const std::vector<NodeId>& nodes,
                                          Duration timeout) {
  const std::int64_t deadline = mono_now_ns() + timeout;
  for (;;) {
    bool all = true;
    for (const NodeId i : nodes) {
      if (!agents_[i].helloed) all = false;
    }
    if (all) return;
    if (mono_now_ns() >= deadline) {
      std::string missing;
      for (const NodeId i : nodes) {
        if (!agents_[i].helloed) missing += " " + std::to_string(i);
      }
      throw std::runtime_error("cluster: agents never registered:" + missing);
    }
    pump(100 * kMillisecond);
  }
}

// ---------------------------------------------------------------------------
// The campaign timeline
// ---------------------------------------------------------------------------

void ClusterSupervisor::Run::run_timeline() {
  std::vector<TimelineEvent> timeline;
  for (const scenario::CrashFault& c : spec_.crashes) {
    timeline.push_back({c.at, TimelineEvent::Kind::kKill, c.node, false});
  }
  for (const scenario::RecoverFault& r : spec_.recoveries) {
    timeline.push_back({r.at, TimelineEvent::Kind::kRespawn, r.node, false});
  }
  for (const scenario::LateJoin& l : spec_.late_joins) {
    timeline.push_back({l.at, TimelineEvent::Kind::kRespawn, l.node, true});
  }
  for (const scenario::PartitionFault& p : spec_.partitions) {
    timeline.push_back({p.from, TimelineEvent::Kind::kFaultChange});
    timeline.push_back({p.until, TimelineEvent::Kind::kFaultChange});
  }
  for (const scenario::LossWindow& w : spec_.loss_windows) {
    timeline.push_back({w.from, TimelineEvent::Kind::kFaultChange});
    timeline.push_back({w.until, TimelineEvent::Kind::kFaultChange});
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const TimelineEvent& a, const TimelineEvent& b) {
                     return a.at < b.at;
                   });

  for (const TimelineEvent& ev : timeline) {
    sleep_until(ev.at);
    check_cancel();
    switch (ev.kind) {
      case TimelineEvent::Kind::kKill: {
        Agent& agent = agents_[ev.node];
        if (agent.pid > 0) {
          ::kill(agent.pid, SIGKILL);
          ::waitpid(agent.pid, nullptr, 0);
          agent.pid = -1;
          agent.helloed = false;
        }
        crashed_now_.insert(ev.node);
        fault_markers_.push_back({world_now(), ev.node,
                                  TraceKind::kStackCrashed, "", "",
                                  "killed by supervisor"});
        break;
      }
      case TimelineEvent::Kind::kRespawn: {
        const std::uint32_t inc = next_incarnation_++;
        spawn(ev.node, inc);
        crashed_now_.erase(ev.node);
        const TimePoint at = world_now();
        recovery_time_[ev.node] = at;
        fault_markers_.push_back({at, ev.node, TraceKind::kStackRecovered, "",
                                  "", "incarnation=" + std::to_string(inc)});
        // The fresh process hellos on its own schedule; the hello handler
        // installs the current fault state once it does.  Wait here so a
        // failed exec surfaces as a run error, not a silent absent node.
        await_hellos({ev.node}, 15 * kSecond);
        break;
      }
      case TimelineEvent::Kind::kFaultChange:
        // Compute from the *event's* nominal time: wall clock may run a
        // hair late, and [from, until) boundaries must use the spec's time.
        broadcast_fault_state(ev.at);
        break;
    }
  }
  sleep_until(spec_.duration);
}

void ClusterSupervisor::Run::drain() {
  const TimePoint cap =
      spec_.duration + std::min(spec_.drain, options_.drain_cap);
  std::uint64_t last_deliveries = ~0ULL;
  TimePoint stable_since = world_now();

  while (world_now() < cap) {
    check_cancel();
    ++status_seq_;
    status_reports_.clear();
    Json status = Json::object();
    status.set("type", "status");
    status.set("seq", status_seq_);
    Json crashed = Json::array();
    for (const NodeId id : crashed_now_) crashed.push(id);
    status.set("crashed", std::move(crashed));

    std::size_t live = 0;
    for (NodeId i = 0; i < spec_.n; ++i) {
      const Agent& agent = agents_[i];
      if (agent.pid <= 0 || !agent.helloed) continue;
      ++live;
      ctrl_.send(agent.addr, status);
    }
    if (live == 0) return;
    const std::int64_t round_deadline = mono_now_ns() + 150 * kMillisecond;
    while (status_reports_.size() < live && mono_now_ns() < round_deadline) {
      pump(20 * kMillisecond);
    }
    if (status_reports_.size() < live) continue;  // round lost; no verdict

    std::uint64_t deliveries = 0;
    std::uint64_t unacked = 0;
    for (const auto& [node, counts] : status_reports_) {
      deliveries += counts.first;
      unacked += counts.second;
    }
    if (unacked != 0 || deliveries != last_deliveries) {
      last_deliveries = deliveries;
      stable_since = world_now();
    } else if (world_now() - stable_since >= options_.quiesce_window) {
      return;
    }
  }
  DPU_LOG(kWarn, "cluster") << "drain cap reached before quiescence";
}

void ClusterSupervisor::Run::harvest() {
  harvest_acked_.clear();
  Json msg = Json::object();
  msg.set("type", "harvest");
  msg.set("seq", ++status_seq_);
  const std::int64_t deadline = mono_now_ns() + 15 * kSecond;
  for (;;) {
    bool all = true;
    for (NodeId i = 0; i < spec_.n; ++i) {
      const Agent& agent = agents_[i];
      if (agent.pid <= 0 || !agent.helloed) continue;
      if (harvest_acked_.count(i) != 0) continue;
      all = false;
      ctrl_.send(agent.addr, msg);
    }
    if (all || mono_now_ns() >= deadline) break;
    pump(200 * kMillisecond);
  }
  // Reap everything; an agent that never acked gets the SIGKILL treatment
  // and shows up as a missing report in the merge.
  for (Agent& agent : agents_) {
    if (agent.pid <= 0) continue;
    reap(agent.pid, 5 * kSecond);
    agent.pid = -1;
  }
}

// ---------------------------------------------------------------------------
// Merge: per-node files -> one ScenarioResult
// ---------------------------------------------------------------------------

void ClusterSupervisor::Run::replay_audit(AbcastAudit& audit) const {
  const std::set<NodeId> late_joiners = [&] {
    std::set<NodeId> s;
    for (const scenario::LateJoin& l : spec_.late_joins) s.insert(l.node);
    return s;
  }();
  for (NodeId i = 0; i < spec_.n; ++i) {
    // A late joiner "recovers" into existence before its only incarnation,
    // mirroring the in-process realization (crash at t~0 + recovery).
    bool first = true;
    if (late_joiners.count(i) != 0) audit.record_recovered(i);
    for (const std::uint32_t inc : agents_[i].incarnations) {
      if (!first) audit.record_recovered(i);
      first = false;
      const fs::path path = run_dir_ / journal_filename(i, inc);
      std::error_code ec;
      if (!fs::exists(path, ec)) continue;  // died before its first write
      for (const JournalRecord& rec : parse_journal(read_file(path))) {
        if (rec.is_send) {
          audit.record_sent(i, rec.payload);
        } else {
          audit.record_delivery(i, rec.payload);
        }
      }
    }
  }
}

ScenarioResult ClusterSupervisor::Run::merge() {
  ScenarioResult result;
  result.scenario = spec_.name;
  result.seed = seed_;
  result.collector = std::make_unique<LatencyCollector>(options_.bucket_width);
  result.crashed = crashed_now_;
  for (NodeId i = 0; i < spec_.n; ++i) {
    if (recovery_time_[i] >= 0 && result.crashed.count(i) == 0) {
      result.recovered.insert(i);
    }
  }
  result.total_virtual_time = world_now();

  std::vector<Json> reports(spec_.n);
  for (NodeId i = 0; i < spec_.n; ++i) {
    if (result.crashed.count(i) != 0) {
      result.final_protocol.emplace_back();
      continue;
    }
    const fs::path path = run_dir_ / ("node-" + std::to_string(i) + ".json");
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      result.generic_report.fail("node " + std::to_string(i) +
                                 ": no result report harvested");
      result.final_protocol.emplace_back();
      continue;
    }
    reports[i] = Json::parse(read_file(path));
    const Json& r = reports[i];

    const Json& counts = r.at("counts");
    auto count = [&counts](const char* key) -> std::uint64_t {
      const Json* v = counts.find(key);
      return v != nullptr ? static_cast<std::uint64_t>(v->as_int()) : 0;
    };
    result.messages_sent += count("sent");
    result.deliveries += count("delivered");
    result.reissued += count("reissued");
    result.stale_discarded += count("stale_discarded");
    result.decisions_delivered += count("decisions_delivered");
    result.snapshots_served += count("snapshots_served");
    result.state_replayed += count("state_replayed");
    result.app_blocked_total += static_cast<Duration>(count("app_blocked_ns"));
    result.calls_queued += count("calls_queued");
    result.retransmissions += count("retransmissions");
    result.acks_sent += count("acks_sent");
    result.dedup_entries += count("dedup_entries");
    auto top = [&r](const char* key) -> std::uint64_t {
      const Json* v = r.find(key);
      return v != nullptr ? static_cast<std::uint64_t>(v->as_int()) : 0;
    };
    result.packets_sent += top("packets_sent");
    result.packets_dropped += top("packets_dropped");
    result.socket_tx_syscalls += top("socket_tx_syscalls");
    result.socket_tx_datagrams += top("socket_tx_datagrams");
    result.socket_rx_syscalls += top("socket_rx_syscalls");
    result.socket_rx_datagrams += top("socket_rx_datagrams");
    result.final_protocol.push_back(r.at("final_protocol").as_string());

    const std::vector<Json>& pairs = r.at("latency_pairs").items();
    for (std::size_t p = 0; p + 1 < pairs.size(); p += 2) {
      result.collector->add(pairs[p].as_int(), pairs[p + 1].as_int());
    }

    const std::size_t pending = top("pending_calls");
    if (pending != 0) {
      result.generic_report.fail(
          "stack " + std::to_string(i) + ": " + std::to_string(pending) +
          " service call(s) still pending at end of run");
    }

    for (const Json& ev : r.at("trace").items()) {
      result.trace.push_back(
          {ev.at("t").as_int(), static_cast<NodeId>(ev.at("node").as_int()),
           static_cast<TraceKind>(ev.at("kind").as_int()),
           ev.at("service").as_string(), ev.at("module").as_string(),
           ev.at("detail").as_string()});
    }

    // Slim per-node record for the campaign document: identity, counters,
    // transport stats — not the bulk latency/trace arrays.
    Json slim = Json::object();
    slim.set("node", i);
    slim.set("incarnation", r.at("incarnation").as_int());
    slim.set("counts", counts);
    slim.set("packets_sent", top("packets_sent"));
    slim.set("packets_dropped", top("packets_dropped"));
    slim.set("socket_tx_syscalls", top("socket_tx_syscalls"));
    slim.set("socket_tx_datagrams", top("socket_tx_datagrams"));
    slim.set("socket_rx_syscalls", top("socket_rx_syscalls"));
    slim.set("socket_rx_datagrams", top("socket_rx_datagrams"));
    slim.set("final_protocol", r.at("final_protocol").as_string());
    result.node_reports.push_back(std::move(slim));
  }

  // The supervisor is the only witness of crash/recovery times: agents die
  // by SIGKILL and are born ignorant, so their traces carry no markers.
  result.trace.insert(result.trace.end(), fault_markers_.begin(),
                      fault_markers_.end());
  std::stable_sort(result.trace.begin(), result.trace.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.time < b.time;
                   });

  result.updates = scenario::extract_update_outcomes(result.trace);
  if (!result.updates.empty()) {
    result.switch_windows.reserve(result.updates.size());
    for (const UpdateOutcome& o : result.updates) {
      result.switch_windows.emplace_back(o.requested, o.converged);
    }
  } else {
    result.switch_windows =
        scenario::extract_switch_windows(result.trace, spec_.n);
  }

  if (spec_.max_retransmissions > 0 &&
      result.retransmissions > spec_.max_retransmissions) {
    result.generic_report.fail(
        "retransmissions " + std::to_string(result.retransmissions) +
        " exceed the spec bound " + std::to_string(spec_.max_retransmissions));
  }

  // ---- Verdicts (mirrors run_on_world) ------------------------------------
  AbcastAudit audit;
  replay_audit(audit);
  result.abcast_report = audit.check(spec_.n, result.crashed);

  std::vector<TraceEvent> correct_events;
  correct_events.reserve(result.trace.size());
  for (const TraceEvent& e : result.trace) {
    if (result.crashed.count(e.node) != 0) continue;
    if (e.node < spec_.n && recovery_time_[e.node] >= 0 &&
        e.time < recovery_time_[e.node]) {
      continue;
    }
    correct_events.push_back(e);
  }
  append(result.generic_report,
         check_weak_stack_well_formedness(correct_events));
  if (spec_.mechanism != scenario::Mechanism::kNone) {
    append(result.generic_report,
           check_protocol_operationability(result.trace, spec_.n,
                                           result.crashed, recovery_time_));
  }
  return result;
}

// ---------------------------------------------------------------------------
// The whole run
// ---------------------------------------------------------------------------

ScenarioResult ClusterSupervisor::Run::execute() {
  setup_run_dir();
  agents_.resize(spec_.n);
  recovery_time_.assign(spec_.n, -1);

  std::set<NodeId> late;
  for (const scenario::LateJoin& l : spec_.late_joins) {
    late.insert(l.node);
    crashed_now_.insert(l.node);  // counted as down until they join
  }

  epoch_ns_ = mono_now_ns() + options_.boot_grace;
  std::vector<NodeId> initial;
  for (NodeId i = 0; i < spec_.n; ++i) {
    if (late.count(i) != 0) continue;
    spawn(i, 0);
    initial.push_back(i);
  }
  await_hellos(initial, 15 * kSecond);

  // Install the baseline adversity (agents boot fault-free).
  broadcast_fault_state(0);

  run_timeline();
  drain();
  harvest();
  ScenarioResult result = merge();

  if (!options_.keep_artifacts) {
    std::error_code ec;
    fs::remove_all(run_dir_, ec);
  }
  return result;
}

// ---------------------------------------------------------------------------

ClusterSupervisor::ClusterSupervisor(SupervisorOptions options)
    : options_(std::move(options)) {}

ClusterSupervisor::~ClusterSupervisor() = default;

ScenarioResult ClusterSupervisor::run(const ScenarioSpec& spec,
                                      std::uint64_t seed) {
  const std::vector<std::string> problems = spec.validate();
  if (!problems.empty()) {
    std::string what = "scenario '" + spec.name + "' is invalid:";
    for (const std::string& p : problems) what += "\n  - " + p;
    throw std::invalid_argument(what);
  }
  // Same composition-level gate as run_scenario: recovery and late join
  // need every managed layer to answer state requests.
  if (!spec.recoveries.empty() || !spec.late_joins.empty()) {
    const StandardStackOptions stack_options =
        scenario::stack_options_for_spec(spec);
    ProtocolRegistry library = make_standard_library(stack_options);
    for (const auto& [svc, m] : spec.managed_services()) {
      (void)m;
      if (!library.state_transfer(svc)) {
        throw std::invalid_argument(
            "scenario '" + spec.name + "': recoveries/late joins require "
            "the state_transfer capability on replaceable service '" + svc +
            "'");
      }
    }
  }
  Run run(options_, spec, seed);
  return run.execute();
}

}  // namespace dpu::cluster
