// Node agent: one full protocol stack as one OS process.
//
// The agent is what dpu_node (bench/dpu_node.cpp) runs: it boots the stack
// of exactly one node of a ScenarioSpec on a real UDP port (RtWorld agent
// mode), journals audit evidence crash-durably (cluster/journal.hpp),
// registers with the supervisor over the control channel and then obeys it:
// fault-state installs, status probes, the final harvest.  Crashes are not
// the agent's business — the supervisor SIGKILLs it and later respawns a
// fresh process with a bumped incarnation; the dead incarnation's journal
// survives in the page cache.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/hosts.hpp"
#include "scenario/spec.hpp"

namespace dpu::cluster {

struct AgentConfig {
  scenario::ScenarioSpec spec;
  HostsFile hosts;
  NodeId node = 0;
  /// 0 on first spawn; the supervisor's global incarnation counter value on
  /// a respawn (and for the first spawn of a late joiner).
  std::uint32_t incarnation = 0;
  /// Shared campaign timebase (see RtConfig::epoch_ns).
  std::int64_t epoch_ns = 0;
  std::uint64_t seed = 1;
  std::string supervisor_host = "127.0.0.1";
  std::uint16_t supervisor_port = 0;
  /// Directory for the audit journal and the node result JSON.
  std::string results_dir = ".";
  /// Give up when the supervisor stays silent this long (belt and braces
  /// under PR_SET_PDEATHSIG).
  Duration supervisor_silence_limit = 60 * kSecond;
};

/// Runs the agent to completion.  Returns the process exit code: 0 after a
/// clean harvest, 1 on setup failure, 2 when the supervisor vanished.
[[nodiscard]] int run_agent(const AgentConfig& config);

}  // namespace dpu::cluster
