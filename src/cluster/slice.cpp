#include "cluster/slice.hpp"

#include <algorithm>

namespace dpu::cluster {

NodeSlice slice_for_node(const scenario::ScenarioSpec& spec, NodeId node) {
  NodeSlice slice;
  slice.node = node;
  for (const scenario::LateJoin& lj : spec.late_joins) {
    if (lj.node == node) {
      slice.late_join = true;
      slice.join_at = lj.at;
    }
  }
  for (const scenario::UpdateAction& u : spec.updates) {
    if (u.initiator == node) slice.updates.push_back(u);
  }
  std::stable_sort(slice.updates.begin(), slice.updates.end(),
                   [](const scenario::UpdateAction& a,
                      const scenario::UpdateAction& b) { return a.at < b.at; });
  return slice;
}

}  // namespace dpu::cluster
