#include "cluster/hosts.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

namespace dpu::cluster {

namespace {

[[noreturn]] void bad_line(std::size_t line_no, const std::string& line,
                           const std::string& why) {
  throw std::invalid_argument("hosts file line " + std::to_string(line_no) +
                              " (\"" + line + "\"): " + why);
}

}  // namespace

HostsFile HostsFile::parse(const std::string& text) {
  HostsFile file;
  std::set<NodeId> seen;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    std::string body = hash == std::string::npos ? line : line.substr(0, hash);
    std::istringstream fields(body);
    long long node = -1;
    std::string host;
    long long port = -1;
    if (!(fields >> node)) continue;  // blank / comment-only line
    if (node < 0) bad_line(line_no, line, "negative node id");
    if (!(fields >> host >> port)) {
      bad_line(line_no, line, "expected '<node> <host> <port>'");
    }
    std::string extra;
    if (fields >> extra) bad_line(line_no, line, "trailing field");
    if (port <= 0 || port > 65535) {
      bad_line(line_no, line, "port out of range (1..65535)");
    }
    const auto id = static_cast<NodeId>(node);
    if (!seen.insert(id).second) {
      bad_line(line_no, line,
               "duplicate node id " + std::to_string(node));
    }
    file.entries.push_back(
        HostEntry{id, host, static_cast<std::uint16_t>(port)});
  }
  return file;
}

HostsFile HostsFile::generate(std::size_t n, const std::string& host,
                              std::uint16_t base_port) {
  HostsFile file;
  file.entries.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    file.entries.push_back(HostEntry{
        i, host, static_cast<std::uint16_t>(base_port + i)});
  }
  return file;
}

std::string HostsFile::format() const {
  std::string out;
  for (const HostEntry& e : entries) {
    out += std::to_string(e.node) + " " + e.host + " " +
           std::to_string(e.port) + "\n";
  }
  return out;
}

const HostEntry& HostsFile::at(NodeId node) const {
  for (const HostEntry& e : entries) {
    if (e.node == node) return e;
  }
  throw std::invalid_argument("hosts file: node " + std::to_string(node) +
                              " missing");
}

std::vector<RtPeer> HostsFile::peers(std::size_t n) const {
  std::vector<RtPeer> out(n);
  std::vector<bool> present(n, false);
  for (const HostEntry& e : entries) {
    if (e.node >= n) {
      throw std::invalid_argument(
          "hosts file: node " + std::to_string(e.node) +
          " outside the scenario's 0.." + std::to_string(n - 1) + " range");
    }
    present[e.node] = true;
    out[e.node] = RtPeer{e.host, e.port};
  }
  for (NodeId i = 0; i < n; ++i) {
    if (!present[i]) {
      throw std::invalid_argument("hosts file: node " + std::to_string(i) +
                                  " missing");
    }
  }
  return out;
}

}  // namespace dpu::cluster
