#include "app/probe.hpp"

namespace dpu {

Bytes ProbePayload::make(TimePoint now, NodeId sender, std::uint64_t seq,
                         std::size_t size) {
  BufWriter w(size);
  w.put_u32(kMagic);
  w.put_i64(now);
  w.put_u32(sender);
  w.put_varint(seq);
  if (w.size() < size) {
    // Deterministic filler up to the requested wire size (the paper's
    // workload uses fixed-size messages).
    Bytes filler(size - w.size(), 0x5A);
    w.put_raw(std::span<const std::uint8_t>(filler.data(), filler.size()));
  }
  return w.take();
}

ProbePayload ProbePayload::parse(const Bytes& payload) {
  BufReader r(payload);
  if (r.get_u32() != kMagic) throw CodecError("not a probe payload");
  ProbePayload p;
  p.send_time = r.get_i64();
  p.sender = r.get_u32();
  p.seq = r.get_varint();
  return p;  // filler ignored
}

bool ProbePayload::is_probe(const Bytes& payload) {
  if (payload.size() < 4) return false;
  const std::uint32_t head = (static_cast<std::uint32_t>(payload[0]) << 24) |
                             (static_cast<std::uint32_t>(payload[1]) << 16) |
                             (static_cast<std::uint32_t>(payload[2]) << 8) |
                             static_cast<std::uint32_t>(payload[3]);
  return head == kMagic;
}

}  // namespace dpu
