// Stack builder — the public composition API.
//
// Assembles the paper's Figure-4 group-communication stack on one Stack:
//
//     GM                     (group membership, optional)
//     TopicMux               (topic multiplexing of the ordered channel)
//     [Repl-ABcast]          (the replacement layer — the paper's subject)
//     ABcast (ct|seq|token)
//     Consensus (ct|mr)      (created for consensus-based ABcast)
//     RBcast / FD
//     RP2P
//     UDP
//
// `with_replacement_layer=false` builds the control configuration used by
// the Figure-6 series "normal, without replacement layer": the ABcast
// protocol binds the facade service directly and nothing can be replaced.
#pragma once

#include <string>

#include "abcast/ct_abcast.hpp"
#include "abcast/seq_abcast.hpp"
#include "abcast/token_abcast.hpp"
#include "app/topics.hpp"
#include "consensus/ct_consensus.hpp"
#include "consensus/mr_consensus.hpp"
#include "core/stack.hpp"
#include "fd/fd.hpp"
#include "gm/gm.hpp"
#include "net/rbcast.hpp"
#include "net/rp2p.hpp"
#include "net/udp_module.hpp"
#include "repl/repl_abcast.hpp"
#include "repl/repl_consensus.hpp"
#include "repl/repl_gm.hpp"
#include "repl/repl_rbcast.hpp"
#include "repl/update.hpp"

namespace dpu {

struct StandardStackOptions {
  /// Insert the Repl-ABcast indirection layer (paper §4).  When false, the
  /// ABcast protocol binds the "abcast" service directly.
  bool with_replacement_layer = true;
  /// Insert the Repl-Consensus indirection layer: the consensus service is
  /// provided by a facade and the real implementation ("consensus.ct" /
  /// "consensus.mr") becomes hot-swappable through the UpdateApi, exactly
  /// like the abcast layer.  Replaces the eager direct consensus module.
  bool with_consensus_replacement = false;
  /// Insert the Repl-RBcast indirection layer: reliable broadcast is
  /// provided by a facade and the real protocol ("rbcast.eager" /
  /// "rbcast.norelay") becomes hot-swappable through the UpdateApi.
  bool with_rbcast_replacement = false;
  /// Insert the Repl-GM indirection layer (requires with_gm): group
  /// membership is provided by a facade and "gm.abcast" instances become
  /// hot-swappable through the UpdateApi.
  bool with_gm_replacement = false;
  /// Provide the "update" service (UpdateManagerModule): the service-generic
  /// control plane every replacement layer of this stack registers with.
  /// On by default — it costs one module and nothing at steady state.
  bool with_update_manager = true;
  /// Initial ABcast provider: "abcast.ct", "abcast.seq" or "abcast.token".
  std::string abcast_protocol = CtAbcastModule::kProtocolName;
  /// Consensus provider backing CT-ABcast: "consensus.ct" or "consensus.mr".
  std::string consensus_protocol = CtConsensusModule::kProtocolName;
  /// Reliable-broadcast provider: "rbcast.eager" or "rbcast.norelay".
  std::string rbcast_protocol = RbcastModule::kProtocolName;
  /// Create the consensus module eagerly even for non-consensus ABcast
  /// (false exercises Algorithm 1's recursive creation on a later switch).
  bool eager_consensus = true;
  /// Compose TopicMux + GM on top (Figure 4's dependent protocol).
  bool with_gm = true;
  /// Passed to Repl-ABcast: destroy replaced modules after this delay
  /// (0 = keep them, as in the paper).
  Duration retire_after = 0;
  ModuleParams abcast_params;

  // Substrate tuning.
  Rp2pConfig rp2p;
  RbcastConfig rbcast;
  FdConfig fd;
  CtConsensusConfig ct_consensus;
  MrConsensusConfig mr_consensus;
  CtAbcastConfig ct_abcast;
  SeqAbcastConfig seq_abcast;
  TokenAbcastConfig token_abcast;
  TopicMuxConfig topics;
};

/// Handles to the modules of one composed stack (non-owning; the Stack owns
/// them).  `repl` is null when built without the replacement layer.
struct StandardStack {
  UdpModule* udp = nullptr;
  Rp2pModule* rp2p = nullptr;
  RbcastModule* rbcast = nullptr;  ///< null under with_rbcast_replacement
  FdModule* fd = nullptr;
  ConsensusBase* consensus = nullptr;
  UpdateManagerModule* update = nullptr;
  ReplAbcastModule* repl = nullptr;
  ReplConsensusModule* repl_consensus = nullptr;
  ReplRbcastModule* repl_rbcast = nullptr;
  TopicMuxModule* topics = nullptr;
  GmModule* gm = nullptr;  ///< null under with_gm_replacement
  ReplGmModule* repl_gm = nullptr;
};

/// Builds the protocol library matching `options` (used by Algorithm 1's
/// create_module for dynamically created providers).  The returned library
/// must outlive every Stack that uses it.
[[nodiscard]] ProtocolLibrary make_standard_library(
    const StandardStackOptions& options = StandardStackOptions{});

/// Composes the standard stack on `stack` and starts all modules.
StandardStack build_standard_stack(Stack& stack,
                                   const StandardStackOptions& options =
                                       StandardStackOptions{});

}  // namespace dpu
