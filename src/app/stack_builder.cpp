#include "app/stack_builder.hpp"

#include <stdexcept>

namespace dpu {

ProtocolLibrary make_standard_library(const StandardStackOptions& options) {
  ProtocolLibrary lib;
  UdpModule::register_protocol(lib);
  Rp2pModule::register_protocol(lib, options.rp2p);
  RbcastModule::register_protocol(lib, options.rbcast);
  FdModule::register_protocol(lib, options.fd);
  CtConsensusModule::register_protocol(lib, options.ct_consensus);
  MrConsensusModule::register_protocol(lib, options.mr_consensus);
  CtAbcastModule::register_protocol(lib, options.ct_abcast);
  SeqAbcastModule::register_protocol(lib, options.seq_abcast);
  TokenAbcastModule::register_protocol(lib, options.token_abcast);
  TopicMuxModule::register_protocol(lib, options.topics);
  GmModule::register_protocol(lib);
  // The configured consensus/rbcast providers answer recursive creation of
  // their services.
  lib.set_default_provider(kConsensusService, options.consensus_protocol);
  lib.set_default_provider(kRbcastService, options.rbcast_protocol);
  // The services the dynamic-update control plane may switch at runtime;
  // everything else (transport, fd, ...) is pinned for the stack's lifetime.
  // All four replacement layers support state transfer for recovering and
  // late-joining stacks: abcast replays its delivered log, rbcast transfers
  // version metadata, consensus resends decided history on demand, and gm
  // recovers organically (its switch topic rides the abcast facade, so
  // replayed history re-performs every gm switch).
  lib.declare_replaceable(kAbcastService, {.state_transfer = true});
  lib.declare_replaceable(kConsensusService, {.state_transfer = true});
  lib.declare_replaceable(kRbcastService, {.state_transfer = true});
  lib.declare_replaceable(kGmService, {.state_transfer = true});
  return lib;
}

StandardStack build_standard_stack(Stack& stack,
                                   const StandardStackOptions& options) {
  StandardStack out;
  out.udp = UdpModule::create(stack);
  out.rp2p = Rp2pModule::create(stack, kRp2pService, options.rp2p);

  // The control plane goes in before any replacement layer: mechanisms
  // self-register with it when they start.  (Creation order vs. the
  // substrate below is irrelevant — registration happens at start().)
  if (options.with_update_manager) {
    out.update = UpdateManagerModule::create(stack);
  }

  if (options.with_rbcast_replacement) {
    ReplRbcastModule::Config rb;
    rb.initial_protocol = options.rbcast_protocol;
    out.repl_rbcast = ReplRbcastModule::create(stack, rb);
  } else {
    RbcastConfig rc = options.rbcast;
    if (options.rbcast_protocol == RbcastModule::kProtocolNameNoRelay) {
      rc.relay = false;
    }
    out.rbcast = RbcastModule::create(stack, kRbcastService, rc);
  }
  out.fd = FdModule::create(stack, kFdService, options.fd);

  if (options.with_consensus_replacement) {
    ReplConsensusModule::Config rc;
    rc.initial_protocol = options.consensus_protocol;
    out.repl_consensus = ReplConsensusModule::create(stack, rc);
  } else {
    const bool needs_consensus =
        options.abcast_protocol == CtAbcastModule::kProtocolName;
    if (options.eager_consensus || needs_consensus) {
      if (options.consensus_protocol == CtConsensusModule::kProtocolName) {
        out.consensus =
            CtConsensusModule::create(stack, kConsensusService,
                                      options.ct_consensus);
      } else if (options.consensus_protocol ==
                 MrConsensusModule::kProtocolName) {
        out.consensus =
            MrConsensusModule::create(stack, kConsensusService,
                                      options.mr_consensus);
      } else {
        throw std::logic_error("unknown consensus protocol '" +
                               options.consensus_protocol + "'");
      }
    }
  }

  if (options.with_replacement_layer) {
    ReplAbcastModule::Config cfg;
    cfg.initial_protocol = options.abcast_protocol;
    cfg.initial_params = options.abcast_params;
    cfg.retire_after = options.retire_after;
    out.repl = ReplAbcastModule::create(stack, cfg);
  } else {
    // Control configuration: the real protocol provides "abcast" directly.
    if (options.abcast_protocol == CtAbcastModule::kProtocolName) {
      CtAbcastModule::create(stack, kAbcastService, options.ct_abcast);
    } else if (options.abcast_protocol == SeqAbcastModule::kProtocolName) {
      SeqAbcastModule::create(stack, kAbcastService, options.seq_abcast);
    } else if (options.abcast_protocol == TokenAbcastModule::kProtocolName) {
      TokenAbcastModule::create(stack, kAbcastService, options.token_abcast);
    } else {
      throw std::logic_error("unknown abcast protocol '" +
                             options.abcast_protocol + "'");
    }
  }

  if (options.with_gm) {
    out.topics = TopicMuxModule::create(stack, kTopicsService, options.topics);
    if (options.with_gm_replacement) {
      out.repl_gm = ReplGmModule::create(stack);
    } else {
      out.gm = GmModule::create(stack);
    }
  }
  stack.start_all();
  return out;
}

}  // namespace dpu
