// Latency instrumentation for the benchmark harnesses.
//
// The paper's metric (§6.2, after Urbán [19]): for a message m sent with
// ABcast, t_i(m) is the time between sending m and delivering m on stack i;
// the *average latency* of m is the mean of t_i(m) over all stacks.  The
// probe embeds the send timestamp in each payload, so every delivery yields
// one (send_time, latency) sample; averaging all samples in a send-time
// bucket equals the paper's metric when all stacks deliver all messages.
#pragma once

#include <mutex>

#include "abcast/abcast.hpp"
#include "runtime/host.hpp"
#include "runtime/time.hpp"
#include "util/stats.hpp"

namespace dpu {

/// Payload layout: [u32 magic][i64 send_time][u32 sender][varint seq]
/// [raw filler].  The magic makes probe traffic self-identifying: on a
/// facade that also carries other payloads (topic frames once a GM layer is
/// composed), probes and audit taps must skip what they did not send —
/// misparsing a topic frame as a timestamp once grew a latency time-series
/// by a garbage bucket index.
struct ProbePayload {
  static constexpr std::uint32_t kMagic = 0x50726F62;  // "Prob"

  TimePoint send_time = 0;
  NodeId sender = kNoNode;
  std::uint64_t seq = 0;

  /// Builds a payload of exactly `size` bytes (>= header size of 17..26).
  [[nodiscard]] static Bytes make(TimePoint now, NodeId sender,
                                  std::uint64_t seq, std::size_t size);

  /// Throws CodecError when `payload` is not probe-stamped.
  [[nodiscard]] static ProbePayload parse(const Bytes& payload);

  /// Cheap magic check (no full parse).
  [[nodiscard]] static bool is_probe(const Bytes& payload);
};

/// Aggregates latency samples from all stacks of a world.  Thread-safe so
/// the same probe works on the real-time engine.
class LatencyCollector {
 public:
  /// `bucket_width` groups samples by send time for the Figure-5 series.
  explicit LatencyCollector(Duration bucket_width = 100 * kMillisecond)
      : series_(bucket_width) {}

  void add(TimePoint send_time, Duration latency) {
    const std::lock_guard<std::mutex> lock(mutex_);
    all_.add(to_micros(latency));
    series_.add(send_time, to_micros(latency));
  }

  /// Statistics over samples of messages sent in roughly [from, to): every
  /// bucket overlapping the interval is included (bucket granularity).
  [[nodiscard]] OnlineStats window(TimePoint from, TimePoint to) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    OnlineStats out;
    for (std::size_t b = 0; b < series_.bucket_count(); ++b) {
      const TimePoint start = series_.bucket_start(b);
      const TimePoint end = start + series_.bucket_width();
      if (start < to && end > from) out.merge(series_.bucket(b));
    }
    return out;
  }

  [[nodiscard]] Samples& all() { return all_; }
  [[nodiscard]] const TimeSeries& series() const { return series_; }
  [[nodiscard]] std::uint64_t sample_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return all_.count() ? static_cast<std::uint64_t>(all_.count()) : 0;
  }

  /// Folds another collector's samples in.  The sharded simulator gives
  /// every node its own collector (single-writer) and merges them post-run
  /// in node order — OnlineStats accumulation is order-sensitive in the
  /// last float bits, so a fixed merge order is what keeps result documents
  /// byte-identical at every shard count.
  void merge(const LatencyCollector& other) {
    const std::lock_guard<std::mutex> lock(other.mutex_);
    all_.merge(other.all_);
    series_.merge(other.series_);
  }

 private:
  mutable std::mutex mutex_;
  Samples all_;
  TimeSeries series_;
};

/// AbcastListener that feeds a LatencyCollector from one stack.
class LatencyProbe final : public AbcastListener {
 public:
  LatencyProbe(LatencyCollector& collector, HostEnv& host)
      : collector_(&collector), host_(&host) {}

  void adeliver(NodeId /*sender*/, const Bytes& payload) override {
    // Probe traffic only: the facade may also carry topic frames (GM ops,
    // facade coordination) that this probe did not send.
    if (!ProbePayload::is_probe(payload)) return;
    const ProbePayload p = ProbePayload::parse(payload);
    // busy_now(): include the CPU work spent on this delivery path during
    // the current event (see HostEnv::busy_now).
    collector_->add(p.send_time, host_->busy_now() - p.send_time);
    ++deliveries_;
  }

  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }

 private:
  LatencyCollector* collector_;
  HostEnv* host_;
  std::uint64_t deliveries_ = 0;
};

}  // namespace dpu
