#include "app/policy.hpp"

#include <stdexcept>

#include "app/probe.hpp"
#include "util/log.hpp"

namespace dpu {

PolicyEngineModule* PolicyEngineModule::create(Stack& stack, Config config) {
  auto* m = stack.emplace_module<PolicyEngineModule>(stack, "policy",
                                                     std::move(config));
  return m;
}

PolicyEngineModule::PolicyEngineModule(Stack& stack, std::string instance_name,
                                       Config config)
    : Module(stack, std::move(instance_name)), config_(std::move(config)) {}

bool PolicyEngineModule::needs_observation() const {
  for (const PolicyRule& r : config_.rules) {
    if (r.trigger != PolicyRule::Trigger::kFdSuspect) return true;
  }
  return false;
}

void PolicyEngineModule::start() {
  manager_ = UpdateManagerModule::of(stack());
  if (manager_ == nullptr) {
    DPU_LOG(kError, "policy")
        << "s" << env().node_id()
        << " no update manager on this stack; rules are inert";
  }
  for (const PolicyRule& r : config_.rules) {
    rules_.emplace_back(env(), r);
  }
  stack().listen<FdListener>(kFdService, this, this);
  if (needs_observation()) {
    observing_ = true;
    stack().listen<AbcastListener>(config_.observe_service, this, this);
  }
  for (RuleState& st : rules_) {
    if (st.rule.trigger != PolicyRule::Trigger::kFdSuspect) arm_window(st);
  }
}

void PolicyEngineModule::stop() {
  stack().unlisten<FdListener>(kFdService, this);
  if (observing_) {
    stack().unlisten<AbcastListener>(config_.observe_service, this);
    observing_ = false;
  }
  for (RuleState& st : rules_) st.timer.cancel();
}

// ---------------------------------------------------------------------------
// Observations
// ---------------------------------------------------------------------------

void PolicyEngineModule::on_suspect(NodeId node) {
  for (RuleState& st : rules_) {
    if (st.rule.trigger != PolicyRule::Trigger::kFdSuspect) continue;
    if (st.rule.suspect_node != kNoNode && st.rule.suspect_node != node) {
      continue;
    }
    maybe_fire(st, "fd-suspect");
  }
}

void PolicyEngineModule::adeliver(NodeId /*sender*/, const Bytes& payload) {
  // Non-probe payloads (topic frames once a GM layer is composed) count
  // toward the delivered load but carry no timestamp, so they must not
  // dilute the latency mean — probe samples keep their own count.
  Duration latency = 0;
  bool has_latency = false;
  if (ProbePayload::is_probe(payload)) {
    try {
      const ProbePayload p = ProbePayload::parse(payload);
      latency = env().busy_now() - p.send_time;
      has_latency = true;
    } catch (const CodecError&) {
      // Magic collision on a truncated payload: treat as non-probe.
    }
  }
  for (RuleState& st : rules_) {
    if (st.rule.trigger == PolicyRule::Trigger::kFdSuspect) continue;
    ++st.window_count;
    if (has_latency) {
      st.window_latency_sum += latency;
      ++st.window_latency_samples;
    }
  }
}

void PolicyEngineModule::arm_window(RuleState& st) {
  st.timer.schedule(st.rule.window, [this, &st]() {
    evaluate_window(st);
    st.window_count = 0;
    st.window_latency_sum = 0;
    st.window_latency_samples = 0;
    arm_window(st);
  });
}

void PolicyEngineModule::evaluate_window(RuleState& st) {
  switch (st.rule.trigger) {
    case PolicyRule::Trigger::kDeliveryLatency: {
      if (st.window_latency_samples == 0) return;
      const Duration mean = st.window_latency_sum /
                            static_cast<Duration>(st.window_latency_samples);
      if (mean >= st.rule.latency_threshold) maybe_fire(st, "latency");
      return;
    }
    case PolicyRule::Trigger::kDeliveryRate: {
      const double seconds = static_cast<double>(st.rule.window) /
                             static_cast<double>(kSecond);
      const double rate = static_cast<double>(st.window_count) / seconds;
      if (rate >= st.rule.rate_threshold) maybe_fire(st, "rate");
      return;
    }
    case PolicyRule::Trigger::kFdSuspect:
      return;  // event-driven, not window-driven
  }
}

// ---------------------------------------------------------------------------
// Firing
// ---------------------------------------------------------------------------

bool PolicyEngineModule::i_am_responsible() const {
  FdApi* fd = stack().slot(kFdService).try_get<FdApi>();
  if (fd == nullptr) return env().node_id() == 0;
  for (NodeId i = 0; i < env().node_id(); ++i) {
    if (!fd->fd_suspects(i)) return false;  // a lower live stack exists
  }
  return true;
}

void PolicyEngineModule::maybe_fire(RuleState& st, const char* reason) {
  if (manager_ == nullptr) return;

  UpdateStatus status;
  try {
    status = manager_->current_version(st.rule.service);
  } catch (const std::invalid_argument& e) {
    // Rule targets a service no mechanism manages on this stack.
    ++policy_errors_;
    DPU_LOG(kWarn, "policy") << "s" << env().node_id() << " rule '"
                             << st.rule.name << "': " << e.what();
    return;
  }
  if (!st.rule.when_protocol.empty() &&
      status.protocol != st.rule.when_protocol) {
    return;
  }
  if (status.protocol == st.rule.to_protocol) return;  // already there
  // Debounce: one request per service version; re-arms when the service
  // reaches the version the request targets.
  if (st.fired_for_version == status.version + 1) return;
  if (st.rule.cooldown > 0 && st.last_fired >= 0 &&
      env().now() - st.last_fired < st.rule.cooldown) {
    return;
  }
  if (!i_am_responsible()) return;

  DPU_LOG(kInfo, "policy") << "s" << env().node_id() << " rule '"
                           << st.rule.name << "' (" << reason << ") adapting "
                           << st.rule.service << ": " << status.protocol
                           << " -> " << st.rule.to_protocol;
  try {
    manager_->request_update(st.rule.service, st.rule.to_protocol,
                             st.rule.to_params);
  } catch (const std::invalid_argument& e) {
    // A rejected request is not a firing: leave the debounce and the
    // trigger count untouched so the (persistent) misconfiguration keeps
    // surfacing as policy_errors instead of silencing the rule forever.
    ++policy_errors_;
    DPU_LOG(kWarn, "policy") << "s" << env().node_id() << " rule '"
                             << st.rule.name << "' rejected: " << e.what();
    return;
  }
  stack().trace(TraceKind::kCustom, st.rule.service, instance_name(),
                std::string(kTraceFired) + ":" + st.rule.name + ":" +
                    st.rule.service + ":" + st.rule.to_protocol);
  st.fired_for_version = status.version + 1;
  st.last_fired = env().now();
  ++st.triggers;
  ++triggers_;
}

}  // namespace dpu
