// Workload generator module: drives the abcast facade at a configured rate.
//
// A module (not a test-driver loop) so that the same workload runs on both
// engines.  The paper's benchmark applies "a constant load by all machines
// (stacks)"; `poisson=true` alternatively draws exponential gaps for
// open-loop Poisson arrivals.
#pragma once

#include <functional>
#include <vector>

#include "abcast/abcast.hpp"
#include "app/probe.hpp"
#include "core/module.hpp"
#include "core/stack.hpp"

namespace dpu {

/// One rate-shaping phase, relative to the module's start (like
/// start_after/stop_after).  `ramp=false` multiplies the current rate by
/// `value` inside [from, until); `ramp=true` interpolates the rate linearly
/// toward `value` (an absolute rate) across the window and holds it after.
struct WorkloadRatePhase {
  bool ramp = false;
  Duration from = 0;
  Duration until = 0;
  double value = 1.0;
};

struct WorkloadConfig {
  /// Messages per second issued by this stack.
  double rate_per_second = 100.0;
  /// Ramp/burst schedule applied on top of `rate_per_second`, in list
  /// order (empty = constant rate).  The effective rate is sampled at each
  /// send's *intended* time, so a phase boundary takes effect within one
  /// inter-send gap.
  std::vector<WorkloadRatePhase> phases;
  /// Total wire size of each message (the probe header plus filler).
  std::size_t message_size = 64;
  /// Exponential inter-send gaps instead of a fixed period.
  bool poisson = false;
  /// First send at `start_after`; stop issuing after `stop_after` (0 = run
  /// forever).
  Duration start_after = 0;
  Duration stop_after = 0;
  /// Observes every issued payload just before it enters abcast; the
  /// scenario engine hooks the property audit's record_sent here.
  std::function<void(const Bytes&)> on_send;
};

class WorkloadModule final : public Module {
 public:
  using Config = WorkloadConfig;

  static WorkloadModule* create(Stack& stack, Config config) {
    auto* m = stack.emplace_module<WorkloadModule>(stack, "workload", config);
    return m;
  }

  WorkloadModule(Stack& stack, std::string instance_name, Config config)
      : Module(stack, std::move(instance_name)),
        config_(config),
        abcast_(stack.require<AbcastApi>(kAbcastService)),
        timer_(stack.host()) {}

  void start() override {
    start_time_ = env().now();
    // Set the window start before drawing the first gap: gap() samples the
    // phase schedule at next_intended_, and the first sample must land at
    // elapsed start_after, not at a bogus negative elapsed.
    next_intended_ = start_time_ + config_.start_after;
    next_intended_ += gap();
    schedule_fire();
  }

  void stop() override { timer_.cancel(); }

  [[nodiscard]] std::uint64_t sent() const { return sent_; }

 private:
  /// Effective rate at `elapsed` since module start, after applying the
  /// phase schedule.  Validation guarantees the result stays positive.
  [[nodiscard]] double rate_at(Duration elapsed) const {
    double rate = config_.rate_per_second;
    for (const WorkloadRatePhase& p : config_.phases) {
      if (p.ramp) {
        if (elapsed >= p.until) {
          rate = p.value;
        } else if (elapsed >= p.from && p.until > p.from) {
          const double progress =
              static_cast<double>(elapsed - p.from) /
              static_cast<double>(p.until - p.from);
          rate += (p.value - rate) * progress;
        }
      } else if (elapsed >= p.from && elapsed < p.until) {
        rate *= p.value;
      }
    }
    return rate;
  }

  [[nodiscard]] Duration gap() {
    const double rate = rate_at(next_intended_ - start_time_);
    const double mean_gap_s = 1.0 / rate;
    const double gap_s = config_.poisson
                             ? env().rng().exponential(mean_gap_s)
                             : mean_gap_s;
    return static_cast<Duration>(gap_s * static_cast<double>(kSecond));
  }

  void schedule_fire() {
    timer_.schedule(std::max<Duration>(next_intended_ - env().now(), 0),
                    [this]() { fire(); });
  }

  void fire() {
    if (config_.stop_after > 0 &&
        next_intended_ - start_time_ > config_.stop_after) {
      return;  // workload window over (boundary instant inclusive)
    }
    // Open-loop load: the payload carries the *intended* send time, so a
    // sender stalled by a busy stack accrues that stall as latency instead
    // of silently skipping it (no coordinated omission).
    const Bytes payload = ProbePayload::make(next_intended_, env().node_id(),
                                             ++sent_, config_.message_size);
    if (config_.on_send) config_.on_send(payload);
    abcast_.call([payload](AbcastApi& api) { api.abcast(payload); });
    next_intended_ += gap();
    schedule_fire();
  }

  Config config_;
  ServiceRef<AbcastApi> abcast_;
  TimerSlot timer_;
  TimePoint start_time_ = 0;
  TimePoint next_intended_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace dpu
