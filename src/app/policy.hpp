// FailoverPolicy — automatic protocol adaptation driven by the failure
// detector.
//
// The paper's motivation is *adaptive* middleware: "systems that can be
// reconfigured and adapted to new environments or changing user
// requirements".  This module closes the loop: when the failure detector
// suspects the critical node of a non-fault-tolerant ABcast protocol (the
// sequencer of SEQ-ABcast, the ring of TOKEN-ABcast), it triggers
// changeABcast() to a fault-tolerant fallback.
//
// Two practical notes, both consequences of the paper's design:
//  * Algorithm 1 coordinates the switch *through the protocol being
//    replaced*, so the switch completes only while that protocol still
//    satisfies its specification.  The policy therefore fires on
//    *suspicion* (degradation), before the protocol is irrecoverably dead —
//    the same stance as context-adaptation systems like [15].  If the
//    critical node is already permanently crashed, the change message can
//    never be ordered and the switch stalls (documented limitation).
//  * Every stack hosts the policy; to avoid a thundering herd of change
//    requests, only the lowest-id stack that does not suspect itself fires
//    (duplicates would be harmless — totally ordered — but wasteful).
#pragma once

#include <string>

#include "core/module.hpp"
#include "core/stack.hpp"
#include "fd/fd.hpp"
#include "repl/repl_abcast.hpp"
#include "util/log.hpp"

namespace dpu {

struct FailoverPolicyConfig {
  /// Protocol under watch (e.g. "abcast.seq").
  std::string watched_protocol = "abcast.seq";
  /// The node whose failure breaks the watched protocol.
  NodeId critical_node = 0;
  /// Fault-tolerant protocol to switch to.
  std::string fallback_protocol = "abcast.ct";
  ModuleParams fallback_params;
};

class FailoverPolicyModule final : public Module, public FdListener {
 public:
  using Config = FailoverPolicyConfig;

  static FailoverPolicyModule* create(Stack& stack, ReplAbcastModule& repl,
                                      Config config) {
    auto* m = stack.emplace_module<FailoverPolicyModule>(stack, "policy", repl,
                                                         config);
    return m;
  }

  FailoverPolicyModule(Stack& stack, std::string instance_name,
                       ReplAbcastModule& repl, Config config)
      : Module(stack, std::move(instance_name)),
        repl_(&repl),
        config_(std::move(config)) {}

  void start() override {
    stack().listen<FdListener>(kFdService, this, this);
  }

  void stop() override { stack().unlisten<FdListener>(kFdService, this); }

  // FdListener
  void on_suspect(NodeId node) override {
    if (node != config_.critical_node) return;
    if (repl_->current_protocol() != config_.watched_protocol) return;
    if (fired_for_sn_ == repl_->seq_number() + 1) return;  // already requested
    if (!i_am_responsible()) return;
    DPU_LOG(kInfo, "policy") << "s" << env().node_id()
                             << " failing over from "
                             << config_.watched_protocol << " to "
                             << config_.fallback_protocol
                             << " (suspect s" << node << ")";
    fired_for_sn_ = repl_->seq_number() + 1;
    ++triggers_;
    repl_->change_abcast(config_.fallback_protocol, config_.fallback_params);
  }

  void on_trust(NodeId /*node*/) override {}

  [[nodiscard]] std::uint64_t triggers() const { return triggers_; }

 private:
  /// Leader election among the non-suspected stacks: lowest id wins.
  [[nodiscard]] bool i_am_responsible() const {
    FdApi* fd = stack().slot(kFdService).try_get<FdApi>();
    if (fd == nullptr) return env().node_id() == 0;
    for (NodeId i = 0; i < env().node_id(); ++i) {
      if (!fd->fd_suspects(i)) return false;  // a lower live stack exists
    }
    return true;
  }

  ReplAbcastModule* repl_;
  Config config_;
  std::uint64_t fired_for_sn_ = 0;
  std::uint64_t triggers_ = 0;
};

}  // namespace dpu
