// PolicyEngine — service-generic, rule-driven protocol adaptation.
//
// The paper's motivation is *adaptive* middleware: "systems that can be
// reconfigured and adapted to new environments or changing user
// requirements".  This module closes the loop for *any* replaceable layer:
// declarative rules observe the running system (failure-detector suspicions,
// delivery latency, delivered load) and issue
// `UpdateApi::request_update(service, protocol)` through the stack's update
// manager when a rule's condition holds — the adaptive-middleware stance of
// consistent-network-update work, where update decisions are computed from
// live state rather than scripted.
//
// This generalizes (and replaces) the old `FailoverPolicyModule`, whose one
// hard-wired behaviour — switch a non-fault-tolerant ABcast protocol to a
// fallback when the failure detector suspects its critical node — is now the
// one-rule special case `PolicyRule{.trigger = kFdSuspect, ...}` driving the
// service-generic control plane instead of the legacy `change_abcast` entry
// point.
//
// Practical notes inherited from the paper's design:
//  * Algorithm 1 coordinates a switch *through the protocol being
//    replaced*, so it completes only while that protocol still satisfies
//    its specification.  Failure rules therefore fire on *suspicion*
//    (degradation), before the protocol is irrecoverably dead; if the
//    critical node is already permanently crashed the change message can
//    never be ordered and the switch stalls (documented limitation).
//  * Every stack hosts the engine; to avoid a thundering herd of change
//    requests, only the lowest-id stack that does not suspect itself fires
//    (duplicates would be harmless — the mechanisms serialize or drop them
//    — but wasteful).
//  * A rule fires at most once per version of its service (debounce), plus
//    an optional wall-clock cooldown.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "abcast/abcast.hpp"
#include "core/module.hpp"
#include "core/stack.hpp"
#include "fd/fd.hpp"
#include "repl/update.hpp"

namespace dpu {

/// One adaptation rule: WHEN the trigger condition holds (and the service
/// currently runs `when_protocol`, if set), switch `service` to
/// `to_protocol` through the UpdateApi.
struct PolicyRule {
  enum class Trigger {
    kFdSuspect,        ///< the failure detector suspects `suspect_node`
    kDeliveryLatency,  ///< mean delivery latency over `window` >= threshold
    kDeliveryRate,     ///< observed deliveries/sec over `window` >= threshold
  };

  /// Identifies the rule in traces and logs.
  std::string name = "rule";
  /// Replaceable service this rule adapts (must be managed by an update
  /// mechanism on the stack).
  std::string service = kAbcastService;
  /// Fire only while the service runs this protocol ("" = any).
  std::string when_protocol;
  /// Target library of the switch.
  std::string to_protocol;
  ModuleParams to_params;

  Trigger trigger = Trigger::kFdSuspect;
  /// kFdSuspect: the node whose suspicion fires the rule (kNoNode = any).
  NodeId suspect_node = kNoNode;
  /// kDeliveryLatency: window-mean threshold.
  Duration latency_threshold = 0;
  /// kDeliveryRate: deliveries-per-second threshold.
  double rate_threshold = 0.0;
  /// Observation window of the latency/rate triggers (tumbling).
  Duration window = kSecond;
  /// Optional wall-clock re-arm delay on top of the per-version debounce.
  Duration cooldown = 0;
};

struct PolicyEngineConfig {
  std::vector<PolicyRule> rules;
  /// Service whose deliveries feed the latency/rate observations.  The
  /// payloads are expected to carry probe headers (app/probe.hpp), which is
  /// what the workload module sends.
  std::string observe_service = kAbcastService;
};

class PolicyEngineModule final : public Module,
                                 public FdListener,
                                 public AbcastListener {
 public:
  using Config = PolicyEngineConfig;

  static PolicyEngineModule* create(Stack& stack, Config config);

  PolicyEngineModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // FdListener (kFdSuspect rules)
  void on_suspect(NodeId node) override;
  void on_trust(NodeId /*node*/) override {}

  // AbcastListener (latency/rate observations)
  void adeliver(NodeId sender, const Bytes& payload) override;

  /// Total rule firings on this stack.
  [[nodiscard]] std::uint64_t triggers() const { return triggers_; }
  /// Firings of one rule (index into Config::rules).
  [[nodiscard]] std::uint64_t rule_triggers(std::size_t rule) const {
    return rules_[rule].triggers;
  }
  /// request_update rejections (misconfigured rules), counted not thrown.
  [[nodiscard]] std::uint64_t policy_errors() const { return policy_errors_; }

  /// TraceKind::kCustom marker: "policy-fired:<rule>:<service>:<protocol>".
  static constexpr char kTraceFired[] = "policy-fired";

 private:
  struct RuleState {
    PolicyRule rule;
    TimerSlot timer;  ///< tumbling-window timer of latency/rate rules
    /// All deliveries this window (the rate trigger's load measure).
    std::uint64_t window_count = 0;
    /// Probe-stamped deliveries only: the latency mean's numerator and
    /// denominator (non-probe traffic must not dilute the mean).
    Duration window_latency_sum = 0;
    std::uint64_t window_latency_samples = 0;
    /// Debounce: service version this rule's last request targets; the rule
    /// re-arms once the service reaches it.
    std::uint64_t fired_for_version = 0;
    TimePoint last_fired = -1;
    std::uint64_t triggers = 0;

    explicit RuleState(HostEnv& host, PolicyRule r)
        : rule(std::move(r)), timer(host) {}
  };

  [[nodiscard]] bool needs_observation() const;
  void arm_window(RuleState& st);
  void evaluate_window(RuleState& st);
  void maybe_fire(RuleState& st, const char* reason);
  /// Leader election among the non-suspected stacks: lowest id wins.
  [[nodiscard]] bool i_am_responsible() const;

  Config config_;
  UpdateManagerModule* manager_ = nullptr;
  /// deque: RuleState holds a TimerSlot (pinned, non-movable).
  std::deque<RuleState> rules_;
  bool observing_ = false;
  std::uint64_t triggers_ = 0;
  std::uint64_t policy_errors_ = 0;
};

}  // namespace dpu
