// TopicMux — topic-based multiplexing of the atomic broadcast facade.
//
// Several independent clients (the group-membership protocol, the replicated
// state machine, application probes) share one totally-ordered channel.  The
// mux wraps payloads with a topic header and dispatches deliveries to topic
// subscribers, preserving the global total order within and across topics.
//
// Deliveries for topics with no subscriber yet are buffered (bounded) and
// replayed on subscription, in order — the same late-joiner treatment as the
// transport layers.
#pragma once

#include <deque>
#include <map>
#include <string>

#include "abcast/abcast.hpp"
#include "core/module.hpp"
#include "core/stack.hpp"

namespace dpu {

inline constexpr char kTopicsService[] = "topics";

using TopicHandler = std::function<void(NodeId sender, const Bytes& payload)>;

struct TopicsApi {
  virtual ~TopicsApi() = default;
  /// Publishes `payload` on `topic` with uniform total order.  Payload
  /// (shared immutable buffer) so serializing callers hand wire bytes
  /// down copy-free; Bytes converts implicitly.
  virtual void publish(const std::string& topic, Payload payload) = 0;
  virtual void subscribe(const std::string& topic, TopicHandler handler) = 0;
  virtual void unsubscribe(const std::string& topic) = 0;
};

struct TopicMuxConfig {
  std::size_t max_pending_per_topic = 100'000;
};

class TopicMuxModule final : public Module,
                             public TopicsApi,
                             public AbcastListener {
 public:
  using Config = TopicMuxConfig;

  static constexpr char kProtocolName[] = "app.topics";

  /// Creates the mux over the `abcast` facade and binds it to `service`.
  static TopicMuxModule* create(Stack& stack,
                                const std::string& service = kTopicsService,
                                Config config = Config{});

  /// Registers "app.topics": requires abcast.
  static void register_protocol(ProtocolLibrary& library,
                                Config config = Config{});

  TopicMuxModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // TopicsApi
  void publish(const std::string& topic, Payload payload) override;
  void subscribe(const std::string& topic, TopicHandler handler) override;
  void unsubscribe(const std::string& topic) override;

  // AbcastListener (facade deliveries)
  void adeliver(NodeId sender, const Bytes& payload) override;

  [[nodiscard]] std::uint64_t published() const { return published_; }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

 private:
  Config config_;
  ServiceRef<AbcastApi> abcast_;
  std::map<std::string, TopicHandler> subscribers_;
  std::map<std::string, std::deque<std::pair<NodeId, Bytes>>> pending_;
  std::uint64_t published_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace dpu
