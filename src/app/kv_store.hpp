// Replicated key-value store — the reference application of the examples.
//
// State-machine replication over the totally-ordered channel: every PUT/DEL
// is published on the "kv" topic and applied in delivery order on every
// stack, so all replicas walk through identical state sequences.  The
// fingerprint() digest lets examples and tests assert replica consistency
// with one comparison — including across a live protocol upgrade.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "app/topics.hpp"
#include "core/module.hpp"
#include "core/stack.hpp"

namespace dpu {

inline constexpr char kKvService[] = "kv";

struct KvApi {
  virtual ~KvApi() = default;
  /// Replicated write (asynchronous: applied when totally ordered).
  virtual void kv_put(const std::string& key, const std::string& value) = 0;
  /// Replicated delete.
  virtual void kv_del(const std::string& key) = 0;
  /// Local read of the replicated state.
  [[nodiscard]] virtual std::optional<std::string> kv_get(
      const std::string& key) const = 0;
};

class KvStoreModule final : public Module, public KvApi {
 public:
  static constexpr char kTopic[] = "kv";

  static KvStoreModule* create(Stack& stack,
                               const std::string& service = kKvService);

  KvStoreModule(Stack& stack, std::string instance_name);

  void start() override;
  void stop() override;

  // KvApi
  void kv_put(const std::string& key, const std::string& value) override;
  void kv_del(const std::string& key) override;
  [[nodiscard]] std::optional<std::string> kv_get(
      const std::string& key) const override;

  [[nodiscard]] std::size_t size() const { return state_.size(); }
  [[nodiscard]] std::uint64_t ops_applied() const { return ops_applied_; }

  /// Order-sensitive digest of the applied-operation history; equal
  /// fingerprints across replicas certify identical state sequences.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  enum Op : std::uint8_t { kPut = 0, kDel = 1 };

  void on_op(NodeId sender, const Bytes& payload);

  ServiceRef<TopicsApi> topics_;
  std::map<std::string, std::string> state_;
  std::uint64_t ops_applied_ = 0;
  std::uint64_t fingerprint_ = 1469598103934665603ULL;
};

}  // namespace dpu
