#include "app/kv_store.hpp"

#include "util/log.hpp"

namespace dpu {

KvStoreModule* KvStoreModule::create(Stack& stack, const std::string& service) {
  auto* m = stack.emplace_module<KvStoreModule>(stack, service);
  stack.bind<KvApi>(service, m, m);
  return m;
}

KvStoreModule::KvStoreModule(Stack& stack, std::string instance_name)
    : Module(stack, std::move(instance_name)),
      topics_(stack.require<TopicsApi>(kTopicsService)) {}

void KvStoreModule::start() {
  topics_.call([this](TopicsApi& topics) {
    topics.subscribe(kTopic, [this](NodeId sender, const Bytes& payload) {
      on_op(sender, payload);
    });
  });
}

void KvStoreModule::stop() {
  topics_.call([](TopicsApi& topics) { topics.unsubscribe(kTopic); });
}

void KvStoreModule::kv_put(const std::string& key, const std::string& value) {
  BufWriter w(key.size() + value.size() + 4);
  w.put_u8(kPut);
  w.put_string(key);
  w.put_string(value);
  topics_.call([bytes = w.take_payload()](TopicsApi& topics) mutable {
    topics.publish(kTopic, std::move(bytes));
  });
}

void KvStoreModule::kv_del(const std::string& key) {
  BufWriter w(key.size() + 4);
  w.put_u8(kDel);
  w.put_string(key);
  topics_.call([bytes = w.take_payload()](TopicsApi& topics) mutable {
    topics.publish(kTopic, std::move(bytes));
  });
}

std::optional<std::string> KvStoreModule::kv_get(const std::string& key) const {
  auto it = state_.find(key);
  if (it == state_.end()) return std::nullopt;
  return it->second;
}

void KvStoreModule::on_op(NodeId sender, const Bytes& payload) {
  (void)sender;
  try {
    BufReader r(payload);
    const Op op = static_cast<Op>(r.get_u8());
    const std::string key = r.get_string();
    std::string value;
    if (op == kPut) value = r.get_string();
    r.expect_done();

    if (op == kPut) {
      state_[key] = value;
    } else {
      state_.erase(key);
    }
    ++ops_applied_;
    // Order-sensitive rolling digest (fnv1a over op bytes + counter).
    fingerprint_ ^= fnv1a64(key) + 0x9E3779B97F4A7C15ULL +
                    (fingerprint_ << 6) + (fingerprint_ >> 2);
    fingerprint_ ^= fnv1a64(value) ^ (static_cast<std::uint64_t>(op) << 40) ^
                    ops_applied_;
    fingerprint_ *= 1099511628211ULL;
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "kv") << "s" << env().node_id() << " malformed op: "
                         << e.what();
  }
}

}  // namespace dpu
