#include "app/topics.hpp"

#include "util/log.hpp"

namespace dpu {

TopicMuxModule* TopicMuxModule::create(Stack& stack, const std::string& service,
                                       Config config) {
  auto* m = stack.emplace_module<TopicMuxModule>(stack, service, config);
  stack.bind<TopicsApi>(service, m, m);
  return m;
}

void TopicMuxModule::register_protocol(ProtocolLibrary& library,
                                       Config config) {
  library.register_protocol(ProtocolInfo{
      .protocol = kProtocolName,
      .default_service = kTopicsService,
      .requires_services = {kAbcastService},
      .factory = [config](Stack& stack, const std::string& provide_as,
                          const ModuleParams&) -> Module* {
        return create(stack, provide_as, config);
      }});
}

TopicMuxModule::TopicMuxModule(Stack& stack, std::string instance_name,
                               Config config)
    : Module(stack, std::move(instance_name)),
      config_(config),
      abcast_(stack.require<AbcastApi>(kAbcastService)) {}

void TopicMuxModule::start() {
  stack().listen<AbcastListener>(kAbcastService, this, this);
}

void TopicMuxModule::stop() {
  stack().unlisten<AbcastListener>(kAbcastService, this);
  subscribers_.clear();
  pending_.clear();
}

void TopicMuxModule::publish(const std::string& topic, Payload payload) {
  BufWriter w(topic.size() + payload.size() + 8);
  w.put_string(topic);
  w.put_blob(payload);
  ++published_;
  abcast_.call([bytes = w.take_payload()](AbcastApi& api) mutable {
    api.abcast(std::move(bytes));
  });
}

void TopicMuxModule::subscribe(const std::string& topic, TopicHandler handler) {
  subscribers_[topic] = std::move(handler);
  auto it = pending_.find(topic);
  if (it == pending_.end()) return;
  auto queued = std::move(it->second);
  pending_.erase(it);
  for (auto& [sender, payload] : queued) {
    ++dispatched_;
    subscribers_[topic](sender, payload);
  }
}

void TopicMuxModule::unsubscribe(const std::string& topic) {
  subscribers_.erase(topic);
}

void TopicMuxModule::adeliver(NodeId sender, const Bytes& payload) {
  std::string topic;
  Bytes inner;
  try {
    BufReader r(payload);
    topic = r.get_string();
    inner = r.get_blob();
    r.expect_done();
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "topics") << "s" << env().node_id()
                             << " non-topic abcast payload ignored: "
                             << e.what();
    return;
  }
  auto it = subscribers_.find(topic);
  if (it == subscribers_.end()) {
    auto& queue = pending_[topic];
    if (queue.size() >= config_.max_pending_per_topic) {
      DPU_LOG(kWarn, "topics") << "s" << env().node_id()
                               << " pending overflow on topic " << topic;
      return;
    }
    queue.emplace_back(sender, inner);
    return;
  }
  ++dispatched_;
  it->second(sender, inner);
}

}  // namespace dpu
