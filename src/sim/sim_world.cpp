#include "sim/sim_world.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace dpu {

namespace {
/// Initial event-heap capacity.  Saturated runs hold tens of thousands of
/// in-flight events; reserving up front keeps the hot loop free of vector
/// growth reallocations from the first packet on.
constexpr std::size_t kHeapReserve = 1 << 14;
}  // namespace

// ---------------------------------------------------------------------------
// SimHost: the HostEnv implementation handed to each stack.
// ---------------------------------------------------------------------------

class SimWorld::SimHost final : public HostEnv {
 public:
  SimHost(SimWorld& world, NodeId node, std::uint64_t seed)
      : world_(&world), node_(node), rng_(Rng::substream(seed, node)) {}

  /// Crash-recovery reset: the host object survives (HostEnv references
  /// held by long-lived observers stay valid) but everything of the old
  /// incarnation is dropped.  The caller must already have purged this
  /// node's events from the world heap — otherwise a stale timer event
  /// could resolve against a freshly armed cell of the new incarnation.
  void reset_for_recovery(std::uint32_t incarnation, std::uint64_t seed) {
    incarnation_ = incarnation;
    timer_cells_.clear();
    timer_free_.clear();
    packet_handler_ = nullptr;
    rng_ = Rng::substream(seed,
                          incarnation_rng_substream(node_, incarnation_));
  }

  [[nodiscard]] NodeId node_id() const override { return node_; }
  [[nodiscard]] std::size_t world_size() const override {
    return world_->hosts_.size();
  }
  [[nodiscard]] TimePoint now() const override { return world_->now_; }
  [[nodiscard]] TimePoint busy_now() const override {
    return std::max(world_->now_, world_->busy_until_[node_]);
  }

  // Timer callbacks live in a free-list pool of cells; the event carries
  // only the (slot, generation) handle, so arming a timer allocates nothing
  // beyond the caller's own closure (amortized).  Generations invalidate
  // stale heap events after cancel/fire, including across slot reuse.
  TimerId set_timer(Duration after, std::function<void()> cb) override {
    std::uint32_t slot;
    if (!timer_free_.empty()) {
      slot = timer_free_.back();
      timer_free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(timer_cells_.size());
      timer_cells_.emplace_back();
    }
    TimerCell& cell = timer_cells_[slot];
    cell.cb = std::move(cb);
    cell.armed = true;
    // Slot is offset by one so a TimerId can never be kNoTimer (0).
    const TimerId id =
        (static_cast<TimerId>(cell.generation) << 32) | (slot + 1);
    world_->push_timer_event(world_->now_ + std::max<Duration>(after, 0),
                             node_, id);
    return id;
  }

  void cancel_timer(TimerId id) override {
    TimerCell* cell = resolve_timer(id);
    if (cell == nullptr) return;
    release_timer(*cell, id);
  }

  void fire_timer(TimerId id) {
    TimerCell* cell = resolve_timer(id);
    if (cell == nullptr) return;  // cancelled; stale heap event
    std::function<void()> cb = std::move(cell->cb);
    release_timer(*cell, id);  // release first: cb may re-arm timers
    cb();
  }

  void send_packet(NodeId dst, Payload data) override {
    world_->do_send_packet(node_, dst, std::move(data));
  }

  void post(std::function<void()> fn) override {
    world_->push_event(world_->now_, node_, std::move(fn));
  }

  [[nodiscard]] Rng& rng() override { return rng_; }

  void charge(Duration cost) override { world_->do_charge(node_, cost); }

  [[nodiscard]] bool crashed() const override {
    return world_->crashed_[node_];
  }

  [[nodiscard]] std::uint32_t incarnation() const override {
    return incarnation_;
  }

  void set_packet_handler(
      std::function<void(NodeId, const Payload&)> handler) override {
    packet_handler_ = std::move(handler);
  }

  void deliver(NodeId src, const Payload& data) {
    if (packet_handler_) packet_handler_(src, data);
  }

 private:
  struct TimerCell {
    std::function<void()> cb;
    std::uint32_t generation = 0;
    bool armed = false;
  };

  TimerCell* resolve_timer(TimerId id) {
    const auto slot_plus_one = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
    if (slot_plus_one == 0 || slot_plus_one > timer_cells_.size()) {
      return nullptr;
    }
    TimerCell& cell = timer_cells_[slot_plus_one - 1];
    const auto generation = static_cast<std::uint32_t>(id >> 32);
    if (!cell.armed || cell.generation != generation) return nullptr;
    return &cell;
  }

  void release_timer(TimerCell& cell, TimerId id) {
    cell.armed = false;
    cell.cb = nullptr;
    ++cell.generation;
    timer_free_.push_back(static_cast<std::uint32_t>(id & 0xFFFFFFFFu) - 1);
  }

  SimWorld* world_;
  NodeId node_;
  Rng rng_;
  std::uint32_t incarnation_ = 0;
  std::vector<TimerCell> timer_cells_;
  std::vector<std::uint32_t> timer_free_;
  std::function<void(NodeId, const Payload&)> packet_handler_;
};

// ---------------------------------------------------------------------------
// SimWorld
// ---------------------------------------------------------------------------

SimWorld::SimWorld(SimConfig config, const ProtocolLibrary* library,
                   TraceSink* trace)
    : config_(config), library_(library), trace_(trace) {
  const std::size_t n = config_.num_stacks;
  assert(n > 0);
  heap_.reserve(kHeapReserve);
  hosts_.reserve(n);
  stacks_.reserve(n);
  busy_until_.assign(n, 0);
  crashed_.assign(n, false);
  link_rngs_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    link_rngs_.push_back(Rng::substream(config_.seed, 1'000'000 + i));
  }
  for (NodeId i = 0; i < n; ++i) {
    hosts_.push_back(std::make_unique<SimHost>(*this, i, config_.seed));
    stacks_.push_back(std::make_unique<Stack>(*hosts_.back(), library, trace));
    stacks_.back()->set_cost_model(config_.stack_cost);
  }
}

SimWorld::~SimWorld() {
  // Destroy stacks while the engine state (busy_until_, link_rngs_, heap_)
  // is still alive: module stop() handlers send packets and charge CPU
  // costs through their host on the way down.
  stacks_.clear();
  hosts_.clear();
}

void SimWorld::push_heap(Event ev) {
  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
}

/// Replace-top requeue: restores the heap property after heap_[0] was
/// re-stamped in place (one sift-down instead of a pop+push pair).
void SimWorld::sift_down_root() {
  const EventAfter after{};
  const std::size_t n = heap_.size();
  const Event v = heap_[0];
  std::size_t i = 0;
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    std::size_t best = left;
    if (left + 1 < n && after(heap_[left], heap_[left + 1])) best = left + 1;
    if (!after(v, heap_[best])) break;  // v already outranks both children
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = v;
}

SimWorld::Event SimWorld::pop_heap_top() {
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
  const Event top = heap_.back();
  heap_.pop_back();
  return top;
}

void SimWorld::push_event(TimePoint t, NodeId node, std::function<void()> fn,
                          EventKind kind) {
  Event ev{};
  ev.time = t;
  ev.seq = next_seq_++;
  ev.node = node;
  ev.kind = kind;
  ev.att.pool = closures_.acquire(std::move(fn));
  push_heap(ev);
}

void SimWorld::push_packet_event(TimePoint t, NodeId dst, NodeId src,
                                 Payload payload) {
  Event ev{};
  ev.time = t;
  ev.seq = next_seq_++;
  ev.node = dst;
  ev.kind = EventKind::kPacket;
  ev.att.src = src;
  ev.att.pool = payloads_.acquire(std::move(payload));
  push_heap(ev);
}

void SimWorld::push_timer_event(TimePoint t, NodeId node, TimerId id) {
  Event ev{};
  ev.time = t;
  ev.seq = next_seq_++;
  ev.node = node;
  ev.kind = EventKind::kTimer;
  ev.timer = id;
  push_heap(ev);
}

void SimWorld::at(TimePoint t, std::function<void()> fn) {
  assert(t >= now_);
  push_event(t, kNoNode, std::move(fn), EventKind::kDriver);
}

void SimWorld::at_node(TimePoint t, NodeId node, std::function<void()> fn) {
  assert(t >= now_);
  assert(node < hosts_.size());
  push_event(t, node, std::move(fn), EventKind::kDriver);
}

void SimWorld::run_on_node(NodeId node, std::function<void()> fn) {
  assert(node < hosts_.size());
  (void)node;
  fn();  // single-threaded engine: the caller IS the executor
}

void SimWorld::crash(NodeId node) {
  assert(node < hosts_.size());
  if (crashed_[node]) return;
  crashed_[node] = true;
  stacks_[node]->trace(TraceKind::kStackCrashed, "", "");
  DPU_LOG(kInfo, "sim") << "crash s" << node << " at t=" << now_;
}

/// Removes every heap event belonging to `node`'s dying incarnation: its
/// timers and module-posted closures (their captures dangle once the Stack
/// is destroyed — and a stale timer event could collide with a (slot,
/// generation) pair the new incarnation hands out again) and packets in
/// flight to it.  Driver control events (kDriver) are deliberately kept:
/// they belong to the scenario schedule, not to the incarnation, so an
/// update planned for after the recovery still fires.  Linear scan +
/// re-heapify — recovery is a rare fault event, not a hot path.
void SimWorld::purge_node_events(NodeId node) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (heap_[i].node == node && heap_[i].kind != EventKind::kDriver) {
      discard(heap_[i]);
    } else {
      heap_[kept++] = heap_[i];
    }
  }
  heap_.resize(kept);
  std::make_heap(heap_.begin(), heap_.end(), EventAfter{});
}

void SimWorld::recover(NodeId node) {
  assert(node < hosts_.size());
  assert(crashed_[node] && "recover() requires a crashed stack");
  purge_node_events(node);
  // Destroy the old incarnation's modules while the node still counts as
  // crashed: anything a stop() handler tries to send is suppressed like the
  // rest of the dead stack's output.
  stacks_[node].reset();
  // Incarnation stamps are world-global, not per-node: a recovering stack
  // must start sequence epochs strictly above every epoch it ever *used* —
  // including epochs it adopted from other restarted peers (rp2p epoch
  // adoption) — and a world counter is the cheap way to guarantee that.
  const std::uint32_t incarnation = next_incarnation_++;
  hosts_[node]->reset_for_recovery(incarnation, config_.seed);
  stacks_[node] = std::make_unique<Stack>(*hosts_[node], library_, trace_);
  stacks_[node]->set_cost_model(config_.stack_cost);
  busy_until_[node] = now_;
  crashed_[node] = false;
  stacks_[node]->trace(TraceKind::kStackRecovered, "", "",
                       "incarnation=" + std::to_string(incarnation));
  DPU_LOG(kInfo, "sim") << "recover s" << node << " at t=" << now_
                        << " (incarnation " << incarnation << ")";
}

std::set<NodeId> SimWorld::crashed_set() const {
  std::set<NodeId> out;
  for (NodeId i = 0; i < crashed_.size(); ++i) {
    if (crashed_[i]) out.insert(i);
  }
  return out;
}

void SimWorld::set_link_fault(NodeId src, NodeId dst,
                              std::optional<LinkFault> fault) {
  assert(src < hosts_.size() && dst < hosts_.size());
  link_faults_.set(hosts_.size(), src, dst, std::move(fault));
}

void SimWorld::do_send_packet(NodeId src, NodeId dst, Payload data) {
  assert(dst < hosts_.size());
  if (src != kNoNode && crashed_[src]) return;  // dead stacks emit nothing
  ++packets_sent_;
  const auto& net = config_.net;
  // Sender-side CPU cost (serialization + syscall era-equivalent).
  do_charge(src, net.send_cost(data.size()));
  if (crashed_[dst]) {
    ++packets_dropped_;
    return;
  }
  if (link_filter_ && !link_filter_(src, dst)) {
    ++packets_dropped_;
    return;
  }
  // Directional per-link fault overrides replace the world-wide loss model
  // for this link and delay every delivered copy.
  const LinkFault* fault = link_faults_.find(hosts_.size(), src, dst);
  const double drop_p = fault != nullptr ? fault->drop : net.drop_probability;
  const double dup_p =
      fault != nullptr ? fault->duplicate : net.duplicate_probability;
  Rng& rng = link_rng(src, dst);
  if (rng.chance(drop_p)) {
    ++packets_dropped_;
    return;
  }
  const int copies = rng.chance(dup_p) ? 2 : 1;
  // The datagram leaves once the sender's CPU has finished the work charged
  // so far in this event (store-and-forward processor model): CPU costs on
  // the send path are part of the message's latency, not just of later
  // events' queueing.
  const TimePoint departure = std::max(now_, busy_until_[src]);
  const Duration extra = fault != nullptr ? fault->extra_latency : 0;
  for (int c = 0; c < copies; ++c) {
    const Duration latency =
        net.min_latency +
        static_cast<Duration>(rng.uniform_u64(static_cast<std::uint64_t>(
            net.max_latency - net.min_latency + 1)));
    // Duplicates share the same immutable buffer; no byte copy per copy.
    push_packet_event(departure + latency + extra, dst, src, data);
  }
}

void SimWorld::do_charge(NodeId node, Duration cost) {
  if (node == kNoNode || cost <= 0) return;
  busy_until_[node] = std::max(busy_until_[node], now_) + cost;
}

void SimWorld::dispatch(const Event& ev) {
  // Pool values are moved out *before* running handlers: a handler may push
  // new events, and an acquire can reallocate the pool's slot vector.
  switch (ev.kind) {
    case EventKind::kClosure:
    case EventKind::kDriver: {
      const std::function<void()> fn = closures_.release(ev.att.pool);
      fn();
      break;
    }
    case EventKind::kPacket: {
      const Payload payload = payloads_.release(ev.att.pool);
      do_charge(ev.node, config_.net.recv_cost(payload.size()));
      hosts_[ev.node]->deliver(ev.att.src, payload);
      break;
    }
    case EventKind::kTimer:
      hosts_[ev.node]->fire_timer(ev.timer);
      break;
  }
}

void SimWorld::discard(const Event& ev) {
  switch (ev.kind) {
    case EventKind::kClosure:
    case EventKind::kDriver:
      (void)closures_.release(ev.att.pool);
      break;
    case EventKind::kPacket:
      (void)payloads_.release(ev.att.pool);
      break;
    case EventKind::kTimer:
      break;  // the timer cell stays armed; crashed stacks never fire it
  }
}

bool SimWorld::run_until(TimePoint t_end, std::uint64_t max_events) {
  while (!heap_.empty()) {
    Event& top = heap_.front();
    if (top.time > t_end) break;
    if (processed_ >= max_events) {
      DPU_LOG(kError, "sim") << "event budget exhausted at t=" << now_;
      return false;
    }
    if (top.node != kNoNode && !crashed_[top.node] &&
        busy_until_[top.node] > top.time) {
      // Processor model: a busy stack defers its events.  Requeue in place
      // with a single sift-down (replace-top) instead of a pop+push pair;
      // deferrals dominate heap traffic on a saturated run.
      ++deferrals_;
      top.time = busy_until_[top.node];
      top.seq = next_seq_++;
      sift_down_root();
      continue;
    }
    const Event ev = pop_heap_top();

    if (ev.node != kNoNode && crashed_[ev.node]) {
      discard(ev);  // events of crashed stacks vanish
      continue;
    }
    now_ = ev.time;
    ++processed_;
    dispatch(ev);
  }
  now_ = std::max(now_, t_end);
  return true;
}

}  // namespace dpu
