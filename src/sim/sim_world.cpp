#include "sim/sim_world.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "util/log.hpp"

namespace dpu {

// ---------------------------------------------------------------------------
// SimHost: the HostEnv implementation handed to each stack.
// ---------------------------------------------------------------------------

class SimWorld::SimHost final : public HostEnv {
 public:
  SimHost(SimWorld& world, NodeId node, std::uint64_t seed)
      : world_(&world), node_(node), rng_(Rng::substream(seed, node)) {}

  [[nodiscard]] NodeId node_id() const override { return node_; }
  [[nodiscard]] std::size_t world_size() const override {
    return world_->hosts_.size();
  }
  [[nodiscard]] TimePoint now() const override { return world_->now_; }
  [[nodiscard]] TimePoint busy_now() const override {
    return std::max(world_->now_, world_->busy_until_[node_]);
  }

  TimerId set_timer(Duration after, std::function<void()> cb) override {
    const TimerId id = ++next_timer_id_;
    auto alive = std::make_shared<bool>(true);
    timers_[id] = alive;
    world_->push_event(world_->now_ + std::max<Duration>(after, 0), node_,
                       [this, id, alive, cb = std::move(cb)]() {
                         if (!*alive) return;
                         timers_.erase(id);
                         cb();
                       });
    return id;
  }

  void cancel_timer(TimerId id) override {
    auto it = timers_.find(id);
    if (it == timers_.end()) return;
    *it->second = false;
    timers_.erase(it);
  }

  void send_packet(NodeId dst, Bytes data) override {
    world_->do_send_packet(node_, dst, std::move(data));
  }

  void post(std::function<void()> fn) override {
    world_->push_event(world_->now_, node_, std::move(fn));
  }

  [[nodiscard]] Rng& rng() override { return rng_; }

  void charge(Duration cost) override { world_->do_charge(node_, cost); }

  [[nodiscard]] bool crashed() const override {
    return world_->crashed_[node_];
  }

  void set_packet_handler(
      std::function<void(NodeId, const Bytes&)> handler) override {
    packet_handler_ = std::move(handler);
  }

  void deliver(NodeId src, const Bytes& data) {
    if (packet_handler_) packet_handler_(src, data);
  }

 private:
  SimWorld* world_;
  NodeId node_;
  Rng rng_;
  TimerId next_timer_id_ = 0;
  std::unordered_map<TimerId, std::shared_ptr<bool>> timers_;
  std::function<void(NodeId, const Bytes&)> packet_handler_;
};

// ---------------------------------------------------------------------------
// SimWorld
// ---------------------------------------------------------------------------

SimWorld::SimWorld(SimConfig config, const ProtocolLibrary* library,
                   TraceSink* trace)
    : config_(config) {
  const std::size_t n = config_.num_stacks;
  assert(n > 0);
  hosts_.reserve(n);
  stacks_.reserve(n);
  busy_until_.assign(n, 0);
  crashed_.assign(n, false);
  link_rngs_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    link_rngs_.push_back(Rng::substream(config_.seed, 1'000'000 + i));
  }
  for (NodeId i = 0; i < n; ++i) {
    hosts_.push_back(std::make_unique<SimHost>(*this, i, config_.seed));
    stacks_.push_back(std::make_unique<Stack>(*hosts_.back(), library, trace));
    stacks_.back()->set_cost_model(config_.stack_cost);
  }
}

SimWorld::~SimWorld() {
  // Destroy stacks while the engine state (busy_until_, link_rngs_, heap_)
  // is still alive: module stop() handlers send packets and charge CPU
  // costs through their host on the way down.
  stacks_.clear();
  hosts_.clear();
}

void SimWorld::push_event(TimePoint t, NodeId node, std::function<void()> fn) {
  heap_.push_back(Event{t, next_seq_++, node, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
}

void SimWorld::at(TimePoint t, std::function<void()> fn) {
  assert(t >= now_);
  push_event(t, kNoNode, std::move(fn));
}

void SimWorld::at_node(TimePoint t, NodeId node, std::function<void()> fn) {
  assert(t >= now_);
  assert(node < hosts_.size());
  push_event(t, node, std::move(fn));
}

void SimWorld::crash(NodeId node) {
  assert(node < hosts_.size());
  if (crashed_[node]) return;
  crashed_[node] = true;
  stacks_[node]->trace(TraceKind::kStackCrashed, "", "");
  DPU_LOG(kInfo, "sim") << "crash s" << node << " at t=" << now_;
}

std::set<NodeId> SimWorld::crashed_set() const {
  std::set<NodeId> out;
  for (NodeId i = 0; i < crashed_.size(); ++i) {
    if (crashed_[i]) out.insert(i);
  }
  return out;
}

void SimWorld::do_send_packet(NodeId src, NodeId dst, Bytes data) {
  assert(dst < hosts_.size());
  ++packets_sent_;
  const auto& net = config_.net;
  // Sender-side CPU cost (serialization + syscall era-equivalent).
  do_charge(src, net.send_cost_fixed +
                     net.send_cost_per_byte *
                         static_cast<Duration>(data.size()));
  if (crashed_[dst]) {
    ++packets_dropped_;
    return;
  }
  if (link_filter_ && !link_filter_(src, dst)) {
    ++packets_dropped_;
    return;
  }
  Rng& rng = link_rng(src, dst);
  if (rng.chance(net.drop_probability)) {
    ++packets_dropped_;
    return;
  }
  const int copies = rng.chance(net.duplicate_probability) ? 2 : 1;
  // The datagram leaves once the sender's CPU has finished the work charged
  // so far in this event (store-and-forward processor model): CPU costs on
  // the send path are part of the message's latency, not just of later
  // events' queueing.
  const TimePoint departure = std::max(now_, busy_until_[src]);
  for (int c = 0; c < copies; ++c) {
    const Duration latency =
        net.min_latency +
        static_cast<Duration>(rng.uniform_u64(static_cast<std::uint64_t>(
            net.max_latency - net.min_latency + 1)));
    // Copy the payload per copy; delivery owns its bytes.
    Bytes payload = (c == copies - 1) ? std::move(data) : data;
    push_event(departure + latency, dst,
               [this, src, dst, payload = std::move(payload)]() {
                 const auto& cfg = config_.net;
                 do_charge(dst, cfg.recv_cost_fixed +
                                    cfg.recv_cost_per_byte *
                                        static_cast<Duration>(payload.size()));
                 hosts_[dst]->deliver(src, payload);
               });
  }
}

void SimWorld::do_charge(NodeId node, Duration cost) {
  if (node == kNoNode || cost <= 0) return;
  busy_until_[node] = std::max(busy_until_[node], now_) + cost;
}

bool SimWorld::run_until(TimePoint t_end, std::uint64_t max_events) {
  while (!heap_.empty()) {
    const Event& top = heap_.front();
    if (top.time > t_end) break;
    if (processed_ >= max_events) {
      DPU_LOG(kError, "sim") << "event budget exhausted at t=" << now_;
      return false;
    }
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();

    if (ev.node != kNoNode) {
      if (crashed_[ev.node]) continue;  // events of crashed stacks vanish
      // Processor model: a busy stack defers its events.
      if (busy_until_[ev.node] > ev.time) {
        push_event(busy_until_[ev.node], ev.node, std::move(ev.fn));
        continue;
      }
    }
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }
  now_ = std::max(now_, t_end);
  return true;
}

}  // namespace dpu
