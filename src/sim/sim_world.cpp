#include "sim/sim_world.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/log.hpp"

namespace dpu {

namespace {
/// Initial event-heap capacity (split across shards).  Saturated runs hold
/// tens of thousands of in-flight events; reserving up front keeps the hot
/// loop free of vector growth reallocations from the first packet on.
constexpr std::size_t kHeapReserve = 1 << 14;

constexpr TimePoint kInfTime = std::numeric_limits<TimePoint>::max();

/// The shard whose window is executing on this thread (engine-identified:
/// nested worlds or a world driven from inside another world's handler
/// resolve their own clocks, not the enclosing one's).
struct TlsShardRef {
  const void* world = nullptr;
  std::size_t index = 0;
};
thread_local TlsShardRef t_shard{};
}  // namespace

// ---------------------------------------------------------------------------
// SimHost: the HostEnv implementation handed to each stack.
// ---------------------------------------------------------------------------

class SimWorld::SimHost final : public HostEnv {
 public:
  SimHost(SimWorld& world, NodeId node, std::uint64_t seed)
      : world_(&world), node_(node), rng_(Rng::substream(seed, node)) {}

  /// Crash-recovery reset: the host object survives (HostEnv references
  /// held by long-lived observers stay valid) but everything of the old
  /// incarnation is dropped.  The caller must already have purged this
  /// node's events from its shard heap — otherwise a stale timer event
  /// could resolve against a freshly armed cell of the new incarnation.
  void reset_for_recovery(std::uint32_t incarnation, std::uint64_t seed) {
    incarnation_ = incarnation;
    timer_cells_.clear();
    timer_free_.clear();
    packet_handler_ = nullptr;
    rng_ = Rng::substream(seed,
                          incarnation_rng_substream(node_, incarnation_));
  }

  [[nodiscard]] NodeId node_id() const override { return node_; }
  [[nodiscard]] std::size_t world_size() const override {
    return world_->hosts_.size();
  }
  [[nodiscard]] TimePoint now() const override {
    return world_->current_now();
  }
  [[nodiscard]] TimePoint busy_now() const override {
    return std::max(world_->current_now(), world_->busy_until_[node_].v);
  }

  // Timer callbacks live in a free-list pool of cells; the event carries
  // only the (slot, generation) handle, so arming a timer allocates nothing
  // beyond the caller's own closure (amortized).  Generations invalidate
  // stale heap events after cancel/fire, including across slot reuse.
  TimerId set_timer(Duration after, std::function<void()> cb) override {
    std::uint32_t slot;
    if (!timer_free_.empty()) {
      slot = timer_free_.back();
      timer_free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(timer_cells_.size());
      timer_cells_.emplace_back();
    }
    TimerCell& cell = timer_cells_[slot];
    cell.cb = std::move(cb);
    cell.armed = true;
    // Slot is offset by one so a TimerId can never be kNoTimer (0).
    const TimerId id =
        (static_cast<TimerId>(cell.generation) << 32) | (slot + 1);
    world_->push_timer_event(
        world_->current_now() + std::max<Duration>(after, 0), node_, id);
    return id;
  }

  void cancel_timer(TimerId id) override {
    TimerCell* cell = resolve_timer(id);
    if (cell == nullptr) return;
    release_timer(*cell, id);
  }

  void fire_timer(TimerId id) {
    TimerCell* cell = resolve_timer(id);
    if (cell == nullptr) return;  // cancelled; stale heap event
    std::function<void()> cb = std::move(cell->cb);
    release_timer(*cell, id);  // release first: cb may re-arm timers
    cb();
  }

  void send_packet(NodeId dst, Payload data) override {
    world_->do_send_packet(node_, dst, std::move(data));
  }

  void post(std::function<void()> fn) override {
    world_->push_event(world_->current_now(), node_, std::move(fn));
  }

  [[nodiscard]] Rng& rng() override { return rng_; }

  void charge(Duration cost) override { world_->do_charge(node_, cost); }

  [[nodiscard]] bool crashed() const override {
    return world_->crashed_[node_];
  }

  [[nodiscard]] std::uint32_t incarnation() const override {
    return incarnation_;
  }

  void set_packet_handler(
      std::function<void(NodeId, const Payload&)> handler) override {
    packet_handler_ = std::move(handler);
  }

  void deliver(NodeId src, const Payload& data) {
    if (packet_handler_) packet_handler_(src, data);
  }

 private:
  struct TimerCell {
    std::function<void()> cb;
    std::uint32_t generation = 0;
    bool armed = false;
  };

  TimerCell* resolve_timer(TimerId id) {
    const auto slot_plus_one = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
    if (slot_plus_one == 0 || slot_plus_one > timer_cells_.size()) {
      return nullptr;
    }
    TimerCell& cell = timer_cells_[slot_plus_one - 1];
    const auto generation = static_cast<std::uint32_t>(id >> 32);
    if (!cell.armed || cell.generation != generation) return nullptr;
    return &cell;
  }

  void release_timer(TimerCell& cell, TimerId id) {
    cell.armed = false;
    cell.cb = nullptr;
    ++cell.generation;
    timer_free_.push_back(static_cast<std::uint32_t>(id & 0xFFFFFFFFu) - 1);
  }

  SimWorld* world_;
  NodeId node_;
  Rng rng_;
  std::uint32_t incarnation_ = 0;
  std::vector<TimerCell> timer_cells_;
  std::vector<std::uint32_t> timer_free_;
  std::function<void(NodeId, const Payload&)> packet_handler_;
};

// ---------------------------------------------------------------------------
// Per-node trace buffering (see flush_trace).
// ---------------------------------------------------------------------------

class SimWorld::NodeTraceBuf final : public TraceSink {
 public:
  /// Outside a run the buffer is transparent: events reach the real sink
  /// immediately and in emission order, so setup-time traces (module
  /// creation, binds) are observable without running the world.  During a
  /// run `direct` is null and events buffer here, single-writer, until
  /// flush_trace merges them placement-independently.
  TraceSink* direct = nullptr;
  std::vector<TraceEvent> events;

  void on_trace(const TraceEvent& event) override {
    if (direct != nullptr) {
      direct->on_trace(event);
    } else {
      events.push_back(event);
    }
  }
};

// ---------------------------------------------------------------------------
// SimWorld
// ---------------------------------------------------------------------------

SimWorld::SimWorld(SimConfig config, const ProtocolLibrary* library,
                   TraceSink* trace)
    : config_(config), library_(library), trace_(trace) {
  const std::size_t n = config_.num_stacks;
  assert(n > 0);
  num_shards_ = std::clamp<std::size_t>(config_.shards, 1, n);
  // A packet sent at time u is charged send_cost >= send_cost_fixed before
  // its departure time is computed, so it delivers no earlier than
  // u + send_cost_fixed + min_latency: that sum is a safe window width.
  // Clamped to 1ns for degenerate all-zero models — such a window still
  // yields correct (deterministic per shard count) execution, but cross-
  // shard-count byte identity is only guaranteed when the real lookahead
  // is positive.
  lookahead_ = std::max<Duration>(
      1, config_.net.min_latency + config_.net.send_cost_fixed);
  shards_.reserve(num_shards_);
  for (std::size_t q = 0; q < num_shards_; ++q) {
    auto s = std::make_unique<Shard>();
    s->owner = this;
    s->index = q;
    s->heap.reserve(kHeapReserve / num_shards_ + 1);
    s->outbox.resize(num_shards_);
    shards_.push_back(std::move(s));
  }
  driver_outbox_.resize(num_shards_);
  barrier_ = std::make_unique<std::barrier<>>(
      static_cast<std::ptrdiff_t>(num_shards_));
  busy_until_.assign(n, PaddedTime{});
  crashed_.assign(n, false);
  link_rngs_.reset(n, [&](std::size_t i) {
    return Rng::substream(config_.seed, 1'000'000 + i);
  });
  link_seqs_.reset(n);
  hosts_.reserve(n);
  stacks_.reserve(n);
  if (trace_ != nullptr) {
    trace_bufs_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      trace_bufs_.push_back(std::make_unique<NodeTraceBuf>());
      trace_bufs_.back()->direct = trace_;  // transparent until a run starts
    }
  }
  for (NodeId i = 0; i < n; ++i) {
    hosts_.push_back(std::make_unique<SimHost>(*this, i, config_.seed));
    TraceSink* sink =
        trace_ != nullptr ? static_cast<TraceSink*>(trace_bufs_[i].get())
                          : nullptr;
    stacks_.push_back(std::make_unique<Stack>(*hosts_.back(), library, sink));
    stacks_.back()->set_cost_model(config_.stack_cost);
  }
}

SimWorld::~SimWorld() {
  // Destroy stacks while the engine state (busy_until_, link tables,
  // shards) is still alive: module stop() handlers send packets and charge
  // CPU costs through their host on the way down.  Their traces flow
  // straight to the sink (the buffers are transparent between runs), but
  // flush once more in case a run was abandoned mid-job.
  stacks_.clear();
  flush_trace();
  if (!workers_.empty()) {
    shutdown_.store(true, std::memory_order_release);
    job_epoch_.fetch_add(1, std::memory_order_release);
    job_epoch_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
  }
  hosts_.clear();
}

TimePoint SimWorld::current_now() const {
  // Inside a shard's execution window this thread's clock is that shard's;
  // everywhere else (setup, at() closures, between runs) it is the driver's.
  if (t_shard.world == this) return shards_[t_shard.index]->now;
  return driver_now_;
}

TimePoint SimWorld::now() const { return current_now(); }

void SimWorld::push_heap(Shard& s, Event ev) {
  s.heap.push_back(ev);
  std::push_heap(s.heap.begin(), s.heap.end(), EventAfter{});
}

/// Replace-top requeue: restores the heap property after heap[0] was
/// re-stamped in place (one sift-down instead of a pop+push pair).
void SimWorld::sift_down_root(Shard& s) {
  const EventAfter after{};
  auto& heap = s.heap;
  const std::size_t n = heap.size();
  const Event v = heap[0];
  std::size_t i = 0;
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    std::size_t best = left;
    if (left + 1 < n && after(heap[left], heap[left + 1])) best = left + 1;
    if (!after(v, heap[best])) break;  // v already outranks both children
    heap[i] = heap[best];
    i = best;
  }
  heap[i] = v;
}

SimWorld::Event SimWorld::pop_heap_top(Shard& s) {
  std::pop_heap(s.heap.begin(), s.heap.end(), EventAfter{});
  const Event top = s.heap.back();
  s.heap.pop_back();
  return top;
}

void SimWorld::push_event(TimePoint t, NodeId node, std::function<void()> fn,
                          EventKind kind) {
  assert(node < hosts_.size());
  Shard& s = *shards_[shard_of(node)];
  Event ev{};
  ev.time = t;
  ev.seq = s.next_seq++;
  ev.node = node;
  ev.kind = kind;
  ev.att.pool = s.closures.acquire(std::move(fn));
  push_heap(s, ev);
}

void SimWorld::push_packet_event(Shard& s, TimePoint t, NodeId dst, NodeId src,
                                 Payload payload) {
  Event ev{};
  ev.time = t;
  ev.seq = s.next_seq++;
  ev.node = dst;
  ev.kind = EventKind::kPacket;
  ev.att.src = src;
  ev.att.pool = s.payloads.acquire(std::move(payload));
  push_heap(s, ev);
}

void SimWorld::push_timer_event(TimePoint t, NodeId node, TimerId id) {
  Shard& s = *shards_[shard_of(node)];
  Event ev{};
  ev.time = t;
  ev.seq = s.next_seq++;
  ev.node = node;
  ev.kind = EventKind::kTimer;
  ev.timer = id;
  push_heap(s, ev);
}

void SimWorld::at(TimePoint t, std::function<void()> fn) {
  assert(t >= current_now());
  // Driver events are coordinator state: legal from setup code, from other
  // driver closures, and from driver steps — never from a node handler
  // running inside a shard window on a worker thread.
  assert(t_shard.world != this || num_shards_ == 1);
  driver_heap_.push_back(DriverEvent{t, driver_next_seq_++, std::move(fn)});
  std::push_heap(driver_heap_.begin(), driver_heap_.end(), DriverAfter{});
}

void SimWorld::at_node(TimePoint t, NodeId node, std::function<void()> fn) {
  assert(t >= current_now());
  assert(node < hosts_.size());
  push_event(t, node, std::move(fn), EventKind::kDriver);
}

void SimWorld::run_on_node(NodeId node, std::function<void()> fn) {
  assert(node < hosts_.size());
  (void)node;
  fn();  // driver context: shards are parked at a barrier (or not running)
}

void SimWorld::crash(NodeId node) {
  assert(node < hosts_.size());
  if (crashed_[node]) return;
  crashed_[node] = true;
  stacks_[node]->trace(TraceKind::kStackCrashed, "", "");
  DPU_LOG(kInfo, "sim") << "crash s" << node << " at t=" << driver_now_;
}

/// Removes every pending event belonging to `node`'s dying incarnation: its
/// timers and module-posted closures in its shard heap (their captures
/// dangle once the Stack is destroyed — and a stale timer event could
/// collide with a (slot, generation) pair the new incarnation hands out
/// again), and packets in flight to it, both heaped and still sitting in
/// mailbox outboxes.  Driver control events (kDriver) are deliberately
/// kept: they belong to the scenario schedule, not to the incarnation, so
/// an update planned for after the recovery still fires.  Linear scan +
/// re-heapify — recovery is a rare fault event, not a hot path.
void SimWorld::purge_node_events(NodeId node) {
  Shard& s = *shards_[shard_of(node)];
  std::size_t kept = 0;
  for (std::size_t i = 0; i < s.heap.size(); ++i) {
    if (s.heap[i].node == node && s.heap[i].kind != EventKind::kDriver) {
      discard(s, s.heap[i]);
    } else {
      s.heap[kept++] = s.heap[i];
    }
  }
  s.heap.resize(kept);
  std::make_heap(s.heap.begin(), s.heap.end(), EventAfter{});
  // In-flight mailbox packets to the node can only sit in its own shard's
  // inbox rows (one per producer, plus the driver's).
  const std::size_t q = shard_of(node);
  auto drop_row = [node](std::vector<MailboxEntry>& row) {
    row.erase(std::remove_if(
                  row.begin(), row.end(),
                  [node](const MailboxEntry& e) { return e.dst == node; }),
              row.end());
  };
  for (auto& p : shards_) drop_row(p->outbox[q]);
  drop_row(driver_outbox_[q]);
}

void SimWorld::recover(NodeId node) {
  assert(node < hosts_.size());
  assert(crashed_[node] && "recover() requires a crashed stack");
  purge_node_events(node);
  // Destroy the old incarnation's modules while the node still counts as
  // crashed: anything a stop() handler tries to send is suppressed like the
  // rest of the dead stack's output.
  stacks_[node].reset();
  // Incarnation stamps are world-global, not per-node: a recovering stack
  // must start sequence epochs strictly above every epoch it ever *used* —
  // including epochs it adopted from other restarted peers (rp2p epoch
  // adoption) — and a world counter is the cheap way to guarantee that.
  const std::uint32_t incarnation = next_incarnation_++;
  hosts_[node]->reset_for_recovery(incarnation, config_.seed);
  TraceSink* sink =
      trace_ != nullptr ? static_cast<TraceSink*>(trace_bufs_[node].get())
                        : nullptr;
  stacks_[node] = std::make_unique<Stack>(*hosts_[node], library_, sink);
  stacks_[node]->set_cost_model(config_.stack_cost);
  busy_until_[node].v = driver_now_;
  crashed_[node] = false;
  stacks_[node]->trace(TraceKind::kStackRecovered, "", "",
                       "incarnation=" + std::to_string(incarnation));
  DPU_LOG(kInfo, "sim") << "recover s" << node << " at t=" << driver_now_
                        << " (incarnation " << incarnation << ")";
}

std::set<NodeId> SimWorld::crashed_set() const {
  std::set<NodeId> out;
  for (NodeId i = 0; i < crashed_.size(); ++i) {
    if (crashed_[i]) out.insert(i);
  }
  return out;
}

void SimWorld::set_link_fault(NodeId src, NodeId dst,
                              std::optional<LinkFault> fault) {
  assert(src < hosts_.size() && dst < hosts_.size());
  link_faults_.set(hosts_.size(), src, dst, std::move(fault));
}

void SimWorld::do_send_packet(NodeId src, NodeId dst, Payload data) {
  assert(src < hosts_.size() && dst < hosts_.size());
  if (crashed_[src]) return;  // dead stacks emit nothing
  Shard& ss = *shards_[shard_of(src)];
  ++ss.packets_sent;
  const auto& net = config_.net;
  // Sender-side CPU cost (serialization + syscall era-equivalent).
  do_charge(src, net.send_cost(data.size()));
  if (crashed_[dst]) {
    ++ss.packets_dropped;
    return;
  }
  if (link_filter_ && !link_filter_(src, dst)) {
    ++ss.packets_dropped;
    return;
  }
  // Directional per-link fault overrides replace the world-wide loss model
  // for this link and delay every delivered copy.
  const LinkFault* fault = link_faults_.find(hosts_.size(), src, dst);
  const double drop_p = fault != nullptr ? fault->drop : net.drop_probability;
  const double dup_p =
      fault != nullptr ? fault->duplicate : net.duplicate_probability;
  Rng& rng = link_rngs_.at(src, dst);
  if (rng.chance(drop_p)) {
    ++ss.packets_dropped;
    return;
  }
  const int copies = rng.chance(dup_p) ? 2 : 1;
  // The datagram leaves once the sender's CPU has finished the work charged
  // so far in this event (store-and-forward processor model): CPU costs on
  // the send path are part of the message's latency, not just of later
  // events' queueing.
  const TimePoint departure =
      std::max(current_now(), busy_until_[src].v);
  const Duration extra =
      fault != nullptr ? std::max<Duration>(fault->extra_latency, 0) : 0;
  // Every copy goes through the destination shard's mailbox — even a
  // self-send.  A same-shard shortcut would make per-node arrival order
  // depend on which sources happen to share the shard, which is exactly
  // the placement dependence the mailbox merge exists to eliminate.
  std::vector<MailboxEntry>& out =
      t_shard.world == this ? ss.outbox[shard_of(dst)]
                            : driver_outbox_[shard_of(dst)];
  std::uint64_t& link_seq = link_seqs_.at(src, dst);
  for (int c = 0; c < copies; ++c) {
    const Duration latency =
        net.min_latency +
        static_cast<Duration>(rng.uniform_u64(static_cast<std::uint64_t>(
            net.max_latency - net.min_latency + 1)));
    // Duplicates share the same immutable buffer; no byte copy per copy.
    out.push_back(MailboxEntry{departure + latency + extra, src, dst,
                               link_seq++, data});
  }
}

void SimWorld::do_charge(NodeId node, Duration cost) {
  if (node == kNoNode || cost <= 0) return;
  TimePoint& busy = busy_until_[node].v;
  busy = std::max(busy, current_now()) + cost;
}

void SimWorld::dispatch(Shard& s, const Event& ev) {
  // Pool values are moved out *before* running handlers: a handler may push
  // new events, and an acquire can reallocate the pool's slot vector.
  switch (ev.kind) {
    case EventKind::kClosure:
    case EventKind::kDriver: {
      const std::function<void()> fn = s.closures.release(ev.att.pool);
      fn();
      break;
    }
    case EventKind::kPacket: {
      const Payload payload = s.payloads.release(ev.att.pool);
      do_charge(ev.node, config_.net.recv_cost(payload.size()));
      hosts_[ev.node]->deliver(ev.att.src, payload);
      break;
    }
    case EventKind::kTimer:
      hosts_[ev.node]->fire_timer(ev.timer);
      break;
  }
}

void SimWorld::discard(Shard& s, const Event& ev) {
  switch (ev.kind) {
    case EventKind::kClosure:
    case EventKind::kDriver:
      (void)s.closures.release(ev.att.pool);
      break;
    case EventKind::kPacket:
      (void)s.payloads.release(ev.att.pool);
      break;
    case EventKind::kTimer:
      break;  // the timer cell stays armed; crashed stacks never fire it
  }
}

// ---------------------------------------------------------------------------
// Round engine
// ---------------------------------------------------------------------------

void SimWorld::sync() {
  if (num_shards_ > 1) barrier_->arrive_and_wait();
}

/// Merges this shard's inbox rows (one per producing shard, plus the
/// driver's) into its heap.  Ordering is `(deliver_time, src, dst,
/// link_seq)` — a pure function of the packets, independent of which shard
/// produced them when — and insertion sequence numbers are assigned in that
/// sorted order, so equal-time arrivals at one node tie-break identically
/// at every shard count.
void SimWorld::drain_inboxes(Shard& s) {
  std::vector<MailboxEntry>& scratch = s.drain_scratch;
  scratch.clear();
  for (auto& p : shards_) {
    std::vector<MailboxEntry>& row = p->outbox[s.index];
    for (MailboxEntry& e : row) scratch.push_back(std::move(e));
    row.clear();
  }
  std::vector<MailboxEntry>& drow = driver_outbox_[s.index];
  for (MailboxEntry& e : drow) scratch.push_back(std::move(e));
  drow.clear();
  s.drained = scratch.size();
  if (scratch.empty()) return;
  std::sort(scratch.begin(), scratch.end(),
            [](const MailboxEntry& a, const MailboxEntry& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.link_seq < b.link_seq;
            });
  for (MailboxEntry& e : scratch) {
    // Entries earlier than the shard clock only exist under a degenerate
    // (clamped) lookahead; deliver them now rather than in the past.
    push_packet_event(s, std::max(e.time, s.now), e.dst, e.src,
                      std::move(e.payload));
  }
  scratch.clear();
}

/// Executes this shard's events with time < `h`.  Window-local guard order
/// matches the serial engine: budget, then busy-deferral, then crash
/// discard.
void SimWorld::exec_window(Shard& s, TimePoint h, std::uint64_t budget) {
  const TlsShardRef saved = t_shard;
  t_shard = TlsShardRef{this, s.index};
  std::uint64_t executed = 0;
  while (!s.heap.empty()) {
    Event& top = s.heap.front();
    if (top.time >= h) break;
    if (executed >= budget) break;
    if (!crashed_[top.node] && busy_until_[top.node].v > top.time) {
      // Processor model: a busy stack defers its events.  Requeue in place
      // with a single sift-down (replace-top) instead of a pop+push pair;
      // deferrals dominate heap traffic on a saturated run.
      ++s.deferrals;
      top.time = busy_until_[top.node].v;
      top.seq = s.next_seq++;
      sift_down_root(s);
      continue;
    }
    const Event ev = pop_heap_top(s);
    if (crashed_[ev.node]) {
      discard(s, ev);  // events of crashed stacks vanish
      continue;
    }
    s.now = ev.time;
    ++s.processed;
    ++executed;
    dispatch(s, ev);
  }
  if (executed == 0 && !s.heap.empty()) ++s.stalls;
  t_shard = saved;
}

/// Runs every due driver event on the coordinating thread (shards are
/// parked at the barrier), including same-time events the handlers push.
void SimWorld::run_driver_step(TimePoint t) {
  driver_now_ = t;
  while (!driver_heap_.empty() && driver_heap_.front().time <= t) {
    std::pop_heap(driver_heap_.begin(), driver_heap_.end(), DriverAfter{});
    DriverEvent ev = std::move(driver_heap_.back());
    driver_heap_.pop_back();
    ++driver_processed_;
    ev.fn();
  }
  publish_driver_state();
}

/// Thread 0 only, always followed by a barrier before any other thread
/// reads the published values.
void SimWorld::publish_driver_state() {
  driver_min_pub_ =
      driver_heap_.empty() ? kInfTime : driver_heap_.front().time;
  driver_processed_pub_ = driver_processed_;
}

void SimWorld::finish_run(TimePoint t_end) {
  driver_now_ = std::max(driver_now_, t_end);
  // Pending events (if any) all lie beyond t_end, so advancing the shard
  // clocks to the horizon cannot step over work.
  for (auto& p : shards_) p->now = std::max(p->now, t_end);
}

/// One shard's view of the synchronized round loop.  Every thread computes
/// the same round decision from values published before the barrier, so no
/// decision ever needs broadcasting.
void SimWorld::round_loop(std::size_t shard_idx) {
  Shard& s = *shards_[shard_idx];
  const TimePoint t_end = job_t_end_;
  const std::uint64_t max_events = job_max_events_;
  for (;;) {
    // Phase 1 (parallel): merge mailbox traffic, publish earliest work and
    // the processed count as of this round start.
    drain_inboxes(s);
    s.local_min = s.heap.empty() ? kInfTime : s.heap.front().time;
    s.published_processed = s.processed;
    sync();
    // Phase 2 (replicated): reads only barrier-separated snapshots — the
    // live `processed` counters and the driver heap are already being
    // mutated by threads that cleared this phase first.
    TimePoint t_min = kInfTime;
    std::uint64_t total = driver_processed_pub_;
    std::uint64_t drained = 0;
    for (const auto& p : shards_) {
      t_min = std::min(t_min, p->local_min);
      total += p->published_processed;
      drained += p->drained;
    }
    const TimePoint driver_min = driver_min_pub_;
    const TimePoint t_all = std::min(t_min, driver_min);
    if (shard_idx == 0) {
      ++window_barriers_;
      if (drained > 0) ++merge_batches_;
    }
    if (t_all == kInfTime || t_all > t_end) {
      if (shard_idx == 0) finish_run(t_end);
      // Exit barrier: thread 0 hands the world back to the caller (which
      // may schedule new driver work or start the next job) only after
      // every worker has finished reading this round's decision inputs.
      sync();
      return;
    }
    if (total >= max_events) {
      if (shard_idx == 0) {
        TimePoint latest = driver_now_;
        for (const auto& p : shards_) latest = std::max(latest, p->now);
        driver_now_ = latest;  // no t_end clamp: the run did not complete
        job_ok_ = false;
        DPU_LOG(kError, "sim")
            << "event budget exhausted at t=" << driver_now_;
      }
      sync();  // exit barrier, as above
      return;
    }
    if (driver_min <= t_min) {
      // Driver events run first at their timestamp, alone on the
      // coordinating thread: they mutate cross-stack state (crash,
      // partitions, loss) that shard execution reads lock-free.  The entry
      // barrier parks every worker past its phase-2 reads before the step
      // touches the driver heap or the published snapshots — without it a
      // slow worker could read the post-step driver minimum and open a
      // window across the driver's timestamp.
      sync();
      if (shard_idx == 0) run_driver_step(driver_min);
      sync();
      continue;
    }
    const TimePoint h =
        std::min({t_min + lookahead_, driver_min,
                  t_end == kInfTime ? kInfTime : t_end + 1});
    exec_window(s, h, max_events - total);
    sync();
  }
}

void SimWorld::start_workers() {
  if (!workers_.empty()) return;
  const std::uint64_t epoch0 = job_epoch_.load(std::memory_order_relaxed);
  workers_.reserve(num_shards_ - 1);
  for (std::size_t q = 1; q < num_shards_; ++q) {
    workers_.emplace_back([this, q, epoch0] { worker_main(q, epoch0); });
  }
}

void SimWorld::worker_main(std::size_t shard_idx, std::uint64_t seen) {
  for (;;) {
    job_epoch_.wait(seen, std::memory_order_acquire);
    // The epoch only moves once per run_until (the barriers inside
    // round_loop keep this thread and the caller in lockstep until the job
    // ends), so a single re-read cannot skip a job.
    seen = job_epoch_.load(std::memory_order_acquire);
    if (shutdown_.load(std::memory_order_acquire)) return;
    round_loop(shard_idx);
  }
}

bool SimWorld::run_until(TimePoint t_end, std::uint64_t max_events) {
  job_t_end_ = t_end;
  job_max_events_ = max_events;
  job_ok_ = true;
  // Setup code between runs pushes driver events outside any barrier
  // protocol; re-publish before the workers wake.
  publish_driver_state();
  // Switch the trace buffers from transparent to buffering: handlers on
  // worker threads must never touch the shared sink directly.
  for (auto& buf : trace_bufs_) buf->direct = nullptr;
  if (num_shards_ > 1) {
    start_workers();
    job_epoch_.fetch_add(1, std::memory_order_release);
    job_epoch_.notify_all();
  }
  round_loop(0);
  flush_trace();
  return job_ok_;
}

/// Merges the per-node trace buffers into the real sink in (time, node,
/// emission order) order — the per-node buffers are single-writer under
/// sharding, and this merge key is placement-independent, so traced runs
/// stay byte-identical at every shard count.
void SimWorld::flush_trace() {
  if (trace_ == nullptr) return;
  // Back to transparent until the next run (the world is single-threaded
  // again from here).
  for (auto& buf : trace_bufs_) buf->direct = trace_;
  struct Ref {
    TimePoint time;
    NodeId node;
    std::size_t idx;
    const TraceEvent* event;
  };
  std::vector<Ref> all;
  for (NodeId node = 0; node < trace_bufs_.size(); ++node) {
    const auto& events = trace_bufs_[node]->events;
    for (std::size_t i = 0; i < events.size(); ++i) {
      all.push_back(Ref{events[i].time, node, i, &events[i]});
    }
  }
  if (all.empty()) return;
  std::sort(all.begin(), all.end(), [](const Ref& a, const Ref& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.node != b.node) return a.node < b.node;
    return a.idx < b.idx;
  });
  for (const Ref& r : all) trace_->on_trace(*r.event);
  for (auto& buf : trace_bufs_) buf->events.clear();
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

std::uint64_t SimWorld::processed_events() const {
  std::uint64_t total = driver_processed_;
  for (const auto& p : shards_) total += p->processed;
  return total;
}

std::uint64_t SimWorld::deferrals() const {
  std::uint64_t total = 0;
  for (const auto& p : shards_) total += p->deferrals;
  return total;
}

std::uint64_t SimWorld::packets_sent() const {
  std::uint64_t total = 0;
  for (const auto& p : shards_) total += p->packets_sent;
  return total;
}

std::uint64_t SimWorld::packets_dropped() const {
  std::uint64_t total = 0;
  for (const auto& p : shards_) total += p->packets_dropped;
  return total;
}

std::uint64_t SimWorld::window_stalls() const {
  std::uint64_t total = 0;
  for (const auto& p : shards_) total += p->stalls;
  return total;
}

}  // namespace dpu
