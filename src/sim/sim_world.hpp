// Deterministic discrete-event simulation engine, sharded per node.
//
// SimWorld hosts N protocol stacks in one address space with a shared
// virtual clock.  It provides, per DESIGN.md §2/§8:
//
//  * a per-shard event heap ordered by (virtual time, insertion sequence) —
//    fully deterministic given the world seed;
//  * a network model: per-link latency drawn uniformly from a configured
//    range, optional loss and duplication, a pluggable link filter for
//    partitions, and directional per-link fault overrides (asymmetric loss,
//    slow links);
//  * a processor model: every stack has a "busy-until" horizon; event
//    handlers charge CPU costs (service hops, per-byte serialization) that
//    push the horizon forward, so queueing delay — and therefore the
//    latency-vs-load saturation the paper's Figure 6 shows — emerges from
//    the model instead of being scripted;
//  * fault injection: crash(node), crash-recovery (recover(node) restarts
//    the stack with a bumped incarnation) and link filters (partitions).
//
// Execution model (conservative parallel DES).  Node `v` belongs to shard
// `v % shards`; each shard owns its nodes' timer/closure/packet events in
// its own pooled heap and advances them in synchronized windows:
//
//   round:  [drain mailboxes]  [barrier]  [agree on window]  [execute]
//
// The window is `[T, T + lookahead)` where `T` is the earliest pending
// event anywhere and the lookahead is `min_latency + send_cost_fixed`: a
// packet sent at `u` departs no earlier than `u + send_cost_fixed` (the
// sender is charged before the datagram leaves) and arrives no earlier
// than `min_latency` later, so nothing sent inside a window can be
// delivered inside the same window.  Every packet — cross-shard or not —
// is routed through the destination shard's mailbox and merged at the next
// drain in `(deliver_time, src, dst, link_seq)` order, never in thread
// arrival order.  Driver events (`at()`) run on the coordinating thread at
// window barriers, before node events at the same timestamp.  Results are
// byte-identical at every shard count: per-link RNG substreams make draws
// placement-independent, the mailbox merge key makes arrival order
// placement-independent, and each shard's clock is exact for its own
// nodes.  shards=1 (the default) runs the same windowed algorithm inline
// with no threads and no barrier traffic.
//
// All determinism derives from seeded substreams (util/rng.hpp).  The same
// protocol code also runs on the multi-threaded real-time engine in
// src/rt; drivers reach both through the WorldControl interface
// (runtime/world.hpp).
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/stack.hpp"
#include "core/trace.hpp"
#include "runtime/host.hpp"
#include "runtime/time.hpp"
#include "runtime/world.hpp"
#include "util/link_table.hpp"
#include "util/rng.hpp"

namespace dpu {

/// CPU nanoseconds charged per payload byte.  A dedicated alias (instead of
/// reusing Duration) because the value is *not* a duration: it only becomes
/// one after multiplying by a byte count, which the NetModelConfig::*_cost
/// accessors do.
using NanosPerByte = std::int64_t;

/// Network and CPU-cost model (DESIGN.md §8 calibration).
struct NetModelConfig {
  Duration min_latency = 45 * kMicrosecond;  ///< one-way latency, lower
  Duration max_latency = 75 * kMicrosecond;  ///< one-way latency, upper
  double drop_probability = 0.0;       ///< per-packet loss
  double duplicate_probability = 0.0;  ///< per-packet duplication
  Duration send_cost_fixed = 2 * kMicrosecond;  ///< sender CPU per packet
  NanosPerByte send_cost_per_byte_ns = 6;       ///< sender CPU per byte
  Duration recv_cost_fixed = 2 * kMicrosecond;  ///< receiver CPU per packet
  NanosPerByte recv_cost_per_byte_ns = 6;       ///< receiver CPU per byte

  /// Sender-side CPU cost of one `size`-byte packet (fixed + per-byte).
  [[nodiscard]] Duration send_cost(std::size_t size) const {
    return send_cost_fixed +
           send_cost_per_byte_ns * static_cast<Duration>(size);
  }

  /// Receiver-side CPU cost of one `size`-byte packet (fixed + per-byte).
  [[nodiscard]] Duration recv_cost(std::size_t size) const {
    return recv_cost_fixed +
           recv_cost_per_byte_ns * static_cast<Duration>(size);
  }
};

struct SimConfig {
  std::size_t num_stacks = 3;
  std::uint64_t seed = 1;
  /// Event-engine shards (parallel workers).  Clamped to [1, num_stacks];
  /// 1 (the default) runs the windowed engine inline with no threads.
  /// Results are byte-identical at every value — see the header comment.
  std::size_t shards = 1;
  NetModelConfig net;
  StackCostModel stack_cost;  ///< applied to every stack (service hop cost)
};

class SimWorld final : public WorldControl {
 public:
  explicit SimWorld(SimConfig config, const ProtocolLibrary* library = nullptr,
                    TraceSink* trace = nullptr);
  ~SimWorld() override;

  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  [[nodiscard]] std::size_t size() const override { return hosts_.size(); }
  [[nodiscard]] Stack& stack(NodeId node) override { return *stacks_[node]; }
  /// Engine time.  Inside a node's event handler this is that node's shard
  /// clock (the time of the event being executed); elsewhere it is the
  /// driver clock (last barrier / end of the last run).
  [[nodiscard]] TimePoint now() const override;
  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] std::size_t num_shards() const { return num_shards_; }

  // ---- Driver hooks --------------------------------------------------------

  /// Schedules a driver closure at absolute virtual time `t` (no CPU
  /// accounting; use for test/bench orchestration).  Driver closures run on
  /// the coordinating thread at a window barrier — before node events with
  /// the same timestamp — so cross-stack mutations (crash, partitions,
  /// loss) never race shard execution.
  void at(TimePoint t, std::function<void()> fn) override;

  /// Schedules a closure on `node`'s executor at time `t`; runs with that
  /// stack's busy-time accounting, as if triggered by a local event.
  void at_node(TimePoint t, NodeId node, std::function<void()> fn) override;

  /// Runs `fn` immediately in driver context (with the stack's cost
  /// accounting applying to whatever it charges).
  void run_on_node(NodeId node, std::function<void()> fn) override;

  // ---- Fault injection ------------------------------------------------------

  /// Crashes a stack: all of its pending and future events are discarded and
  /// packets addressed to it vanish.  Crash-stop until recover().
  void crash(NodeId node) override;

  /// Crash-recovery: replaces the crashed stack with a fresh Stack on the
  /// same node id.  The host keeps its identity but is reset — incarnation
  /// bumped, timers/handlers cleared, RNG reseeded on an incarnation
  /// substream — and every event of the old incarnation still pending
  /// (timers, packets in flight to the node, mailbox entries) is purged, so
  /// nothing of the old life can fire into the new one.  The caller
  /// composes modules on the fresh stack afterwards.
  void recover(NodeId node) override;

  [[nodiscard]] bool crashed(NodeId node) const override {
    return crashed_[node];
  }
  [[nodiscard]] std::set<NodeId> crashed_set() const override;

  /// Installs a link filter: packets with filter(src,dst)==false are dropped.
  /// Used for partitions; pass nullptr to heal.  Mutate only from driver
  /// context (at() closures or between runs) — shards read it lock-free.
  void set_link_filter(
      std::function<bool(NodeId, NodeId)> deliverable) override {
    link_filter_ = std::move(deliverable);
  }

  /// Adjusts the per-packet loss/duplication probabilities mid-run (applies
  /// to packets sent from now on).  The scenario engine uses this for
  /// bounded lossy-link windows; draws stay on the per-link substreams, so
  /// runs remain deterministic.  Driver context only, like set_link_filter.
  void set_loss(double drop_probability,
                double duplicate_probability) override {
    config_.net.drop_probability = drop_probability;
    config_.net.duplicate_probability = duplicate_probability;
  }

  /// Directional per-link override of the loss model; also adds the fault's
  /// extra_latency to every packet delivered on (src, dst).  Draws stay on
  /// the per-link substream, so installing/clearing overrides preserves
  /// determinism.  Driver context only.
  void set_link_fault(NodeId src, NodeId dst,
                      std::optional<LinkFault> fault) override;

  // ---- Execution ------------------------------------------------------------

  /// Processes events with time <= t_end; returns false if `max_events` was
  /// exhausted first (runaway guard for tests).
  bool run_until(TimePoint t_end,
                 std::uint64_t max_events = 500'000'000ULL);

  bool run_for(Duration d, std::uint64_t max_events = 500'000'000ULL) {
    return run_until(driver_now_ + d, max_events);
  }

  /// WorldControl::run — deterministic replay to `deadline`; `active_until`
  /// and `quiesced` are rt concepts and ignored here (the heap draining IS
  /// quiescence).
  bool run(TimePoint /*active_until*/, TimePoint deadline,
           std::uint64_t max_events,
           const std::function<bool()>& /*quiesced*/ = nullptr) override {
    return run_until(deadline, max_events);
  }

  [[nodiscard]] std::uint64_t processed_events() const;
  /// Events re-queued because their stack was busy (processor-model
  /// deferrals).  A hot-loop health metric for benches; the count depends
  /// on shard grouping (heap composition differs), so it must never enter
  /// byte-compared result documents.
  [[nodiscard]] std::uint64_t deferrals() const;
  [[nodiscard]] std::uint64_t packets_sent() const override;
  [[nodiscard]] std::uint64_t packets_dropped() const override;
  /// Synchronization rounds executed (windows + driver steps).  A pure
  /// function of event timings, so identical at every shard count.
  [[nodiscard]] std::uint64_t window_barriers() const {
    return window_barriers_;
  }
  /// Rounds that merged at least one mailbox packet.  Also
  /// grouping-independent (mailbox traffic is every packet).
  [[nodiscard]] std::uint64_t merge_batches() const { return merge_batches_; }
  /// Windows in which a shard had pending work but executed nothing (its
  /// events lay beyond the window).  Grouping-DEPENDENT — bench-only.
  [[nodiscard]] std::uint64_t window_stalls() const;

 private:
  class SimHost;
  friend class SimHost;

  /// Tagged event record.  The two dominant event classes of a saturated
  /// run — packet delivery and timer fire — carry plain data (a pool slot /
  /// a timer id) instead of a heap-allocated closure; driver events
  /// (at_node/post) keep their std::function in the closure pool.
  ///
  /// The record itself is trivially copyable on purpose: heap pushes, pops
  /// and busy-deferral requeues move 32-byte PODs instead of running
  /// shared_ptr/std::function move constructors, which is where a saturated
  /// run spends most of its time.  Payloads and closures live in free-list
  /// side pools indexed by `pool`, one pool set per shard.
  /// kClosure = module-posted closure (dies with its incarnation);
  /// kDriver = at_node() control event (owned by the test/scenario
  /// driver — survives a crash-recovery purge, so an update scheduled on a
  /// node that recovers in between still fires).
  enum class EventKind : std::uint8_t { kClosure, kDriver, kPacket, kTimer };

  struct Event {
    TimePoint time;
    std::uint64_t seq;  // shard-local insertion order; total-order tiebreak
    NodeId node;
    EventKind kind;
    union {
      TimerId timer;  // kTimer: pooled timer handle
      struct {
        NodeId src;           // kPacket: sending stack
        std::uint32_t pool;   // kPacket/kClosure: side-pool slot
      } att;
    };
  };
  static_assert(std::is_trivially_copyable_v<Event>);
  static_assert(sizeof(Event) == 32);

  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      // std::*_heap builds a max-heap; invert to pop the earliest event.
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// A packet in transit between shards (or to the sender's own shard —
  /// every packet takes this path, so arrival order is a pure function of
  /// the key below, never of which shard produced it when).  `link_seq` is
  /// the per-(src,dst) send counter: it orders same-time packets on one
  /// link (including duplicate copies) and is placement-independent.
  struct MailboxEntry {
    TimePoint time;
    NodeId src;
    NodeId dst;
    std::uint64_t link_seq;
    Payload payload;
  };

  /// Free-list side pool for event attachments (payloads, closures): O(1)
  /// acquire/release, no steady-state allocation, deterministic slot order.
  template <class T>
  struct EventPool {
    std::vector<T> slots;
    std::vector<std::uint32_t> free;

    std::uint32_t acquire(T value) {
      std::uint32_t slot;
      if (!free.empty()) {
        slot = free.back();
        free.pop_back();
        slots[slot] = std::move(value);
      } else {
        slot = static_cast<std::uint32_t>(slots.size());
        slots.push_back(std::move(value));
      }
      return slot;
    }

    /// Moves the value out and recycles the slot.
    T release(std::uint32_t slot) {
      T out = std::move(slots[slot]);
      slots[slot] = T{};
      free.push_back(slot);
      return out;
    }
  };

  /// Driver control event (at()): runs on the coordinating thread at a
  /// window barrier.  Rare (scenario schedule), so a plain heap of
  /// closures, no pooling.
  struct DriverEvent {
    TimePoint time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct DriverAfter {
    bool operator()(const DriverEvent& a, const DriverEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// One event-engine shard: owns the heaps, pools, clock and counters of
  /// its nodes.  Cache-line aligned and heap-allocated individually so
  /// concurrent shards never false-share.
  struct alignas(64) Shard {
    const SimWorld* owner = nullptr;
    std::size_t index = 0;
    std::vector<Event> heap;
    EventPool<Payload> payloads;
    EventPool<std::function<void()>> closures;
    TimePoint now = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t processed = 0;
    std::uint64_t deferrals = 0;
    std::uint64_t stalls = 0;
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_dropped = 0;
    /// Published in the drain phase, read by every thread after the
    /// barrier: earliest pending event time, entries merged this round, and
    /// the processed count as of the round start.  Phase 2 must read these
    /// snapshots, never the live fields — a shard that clears phase 2 early
    /// is already mutating `heap` and `processed` inside its window while
    /// slower threads are still deciding.
    TimePoint local_min = 0;
    std::uint64_t drained = 0;
    std::uint64_t published_processed = 0;
    /// outbox[q]: packets produced by this shard for shard q during the
    /// current window.  Drained (and cleared) by shard q at the next round
    /// start; the two phases are barrier-separated, so single buffers
    /// suffice.
    std::vector<std::vector<MailboxEntry>> outbox;
    std::vector<MailboxEntry> drain_scratch;
  };

  /// busy_until is indexed by node but written by the node's shard while
  /// neighbours (node % shards interleaves them) are written by other
  /// shards — pad to a cache line each.
  struct alignas(64) PaddedTime {
    TimePoint v = 0;
  };

  [[nodiscard]] std::size_t shard_of(NodeId node) const {
    return static_cast<std::size_t>(node) % num_shards_;
  }
  [[nodiscard]] TimePoint current_now() const;

  void push_event(TimePoint t, NodeId node, std::function<void()> fn,
                  EventKind kind = EventKind::kClosure);
  void push_packet_event(Shard& s, TimePoint t, NodeId dst, NodeId src,
                         Payload payload);
  void push_timer_event(TimePoint t, NodeId node, TimerId id);
  static void push_heap(Shard& s, Event ev);
  static void sift_down_root(Shard& s);
  static Event pop_heap_top(Shard& s);
  void dispatch(Shard& s, const Event& ev);
  static void discard(Shard& s, const Event& ev);
  void purge_node_events(NodeId node);
  void do_send_packet(NodeId src, NodeId dst, Payload data);
  void do_charge(NodeId node, Duration cost);

  // ---- Round engine ---------------------------------------------------------

  void round_loop(std::size_t shard_idx);
  void drain_inboxes(Shard& s);
  void exec_window(Shard& s, TimePoint h, std::uint64_t budget);
  void run_driver_step(TimePoint t);
  void publish_driver_state();
  void finish_run(TimePoint t_end);
  void sync();  // barrier (no-op at shards=1)
  void start_workers();
  void worker_main(std::size_t shard_idx, std::uint64_t seen_epoch);
  void flush_trace();

  SimConfig config_;
  const ProtocolLibrary* library_ = nullptr;  // kept for recover()
  TraceSink* trace_ = nullptr;                // merge target; see trace_bufs_
  std::size_t num_shards_ = 1;
  Duration lookahead_ = 1;
  /// Driver clock: advanced at driver steps and run end; the shard clocks
  /// are authoritative inside node handlers (see now()).
  TimePoint driver_now_ = 0;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<DriverEvent> driver_heap_;
  std::uint64_t driver_next_seq_ = 0;
  std::uint64_t driver_processed_ = 0;
  /// Barrier-separated snapshots of the driver heap front and processed
  /// count for the replicated phase-2 decision.  Thread 0 re-publishes them
  /// after every driver step (the step mutates the heap while workers are
  /// already parked at the round barrier) and at job start; reading the
  /// live heap in phase 2 would race with exactly those mutations.
  TimePoint driver_min_pub_ = 0;
  std::uint64_t driver_processed_pub_ = 0;
  /// Packets sent from driver context (composition, at() closures, module
  /// stop handlers): one outbox row per destination shard, merged together
  /// with the shard outboxes at the next drain.
  std::vector<std::vector<MailboxEntry>> driver_outbox_;

  std::uint64_t window_barriers_ = 0;
  std::uint64_t merge_batches_ = 0;

  // Current job (valid while round_loop runs; written before the epoch
  // bump that wakes the workers).
  TimePoint job_t_end_ = 0;
  std::uint64_t job_max_events_ = 0;
  bool job_ok_ = true;

  std::unique_ptr<std::barrier<>> barrier_;
  std::vector<std::thread> workers_;  // shards 1..S-1; lazily started
  std::atomic<std::uint64_t> job_epoch_{0};
  std::atomic<bool> shutdown_{false};

  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::vector<std::unique_ptr<Stack>> stacks_;
  /// Per-node trace buffers (only when a sink is installed): stacks write
  /// their own buffer — single-writer under sharding — and flush_trace()
  /// merge-sorts everything into the real sink in (time, node, order)
  /// order, which is placement-independent.
  class NodeTraceBuf;
  std::vector<std::unique_ptr<NodeTraceBuf>> trace_bufs_;
  std::vector<PaddedTime> busy_until_;
  std::vector<bool> crashed_;
  /// World-global incarnation stamp handed to the next recovery (see
  /// recover(): stamps must outgrow every epoch any stack ever adopted).
  std::uint32_t next_incarnation_ = 1;
  /// Per-link RNG substreams and per-link send counters.  Row `src` is
  /// only touched when `src` sends — one writer per row under sharding.
  LinkTable<Rng> link_rngs_;
  LinkTable<std::uint64_t> link_seqs_;
  std::function<bool(NodeId, NodeId)> link_filter_;
  /// Directional fault overrides (see LinkFaultTable).
  LinkFaultTable link_faults_;
};

}  // namespace dpu
