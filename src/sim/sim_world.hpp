// Deterministic discrete-event simulation engine.
//
// SimWorld hosts N protocol stacks in one address space with a shared
// virtual clock.  It provides, per DESIGN.md §2/§8:
//
//  * an event heap ordered by (virtual time, insertion sequence) — fully
//    deterministic given the world seed;
//  * a network model: per-link latency drawn uniformly from a configured
//    range, optional loss and duplication, a pluggable link filter for
//    partitions, and directional per-link fault overrides (asymmetric loss,
//    slow links);
//  * a processor model: every stack has a "busy-until" horizon; event
//    handlers charge CPU costs (service hops, per-byte serialization) that
//    push the horizon forward, so queueing delay — and therefore the
//    latency-vs-load saturation the paper's Figure 6 shows — emerges from
//    the model instead of being scripted;
//  * fault injection: crash(node), crash-recovery (recover(node) restarts
//    the stack with a bumped incarnation) and link filters (partitions).
//
// The engine runs on a single OS thread; all determinism derives from seeded
// substreams (util/rng.hpp).  The same protocol code also runs on the
// multi-threaded real-time engine in src/rt; drivers reach both through the
// WorldControl interface (runtime/world.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <type_traits>
#include <vector>

#include "core/stack.hpp"
#include "core/trace.hpp"
#include "runtime/host.hpp"
#include "runtime/time.hpp"
#include "runtime/world.hpp"
#include "util/rng.hpp"

namespace dpu {

/// CPU nanoseconds charged per payload byte.  A dedicated alias (instead of
/// reusing Duration) because the value is *not* a duration: it only becomes
/// one after multiplying by a byte count, which the NetModelConfig::*_cost
/// accessors do.
using NanosPerByte = std::int64_t;

/// Network and CPU-cost model (DESIGN.md §8 calibration).
struct NetModelConfig {
  Duration min_latency = 45 * kMicrosecond;  ///< one-way latency, lower
  Duration max_latency = 75 * kMicrosecond;  ///< one-way latency, upper
  double drop_probability = 0.0;       ///< per-packet loss
  double duplicate_probability = 0.0;  ///< per-packet duplication
  Duration send_cost_fixed = 2 * kMicrosecond;  ///< sender CPU per packet
  NanosPerByte send_cost_per_byte_ns = 6;       ///< sender CPU per byte
  Duration recv_cost_fixed = 2 * kMicrosecond;  ///< receiver CPU per packet
  NanosPerByte recv_cost_per_byte_ns = 6;       ///< receiver CPU per byte

  /// Sender-side CPU cost of one `size`-byte packet (fixed + per-byte).
  [[nodiscard]] Duration send_cost(std::size_t size) const {
    return send_cost_fixed +
           send_cost_per_byte_ns * static_cast<Duration>(size);
  }

  /// Receiver-side CPU cost of one `size`-byte packet (fixed + per-byte).
  [[nodiscard]] Duration recv_cost(std::size_t size) const {
    return recv_cost_fixed +
           recv_cost_per_byte_ns * static_cast<Duration>(size);
  }
};

struct SimConfig {
  std::size_t num_stacks = 3;
  std::uint64_t seed = 1;
  NetModelConfig net;
  StackCostModel stack_cost;  ///< applied to every stack (service hop cost)
};

class SimWorld final : public WorldControl {
 public:
  explicit SimWorld(SimConfig config, const ProtocolLibrary* library = nullptr,
                    TraceSink* trace = nullptr);
  ~SimWorld() override;

  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  [[nodiscard]] std::size_t size() const override { return hosts_.size(); }
  [[nodiscard]] Stack& stack(NodeId node) override { return *stacks_[node]; }
  [[nodiscard]] TimePoint now() const override { return now_; }
  [[nodiscard]] const SimConfig& config() const { return config_; }

  // ---- Driver hooks --------------------------------------------------------

  /// Schedules a driver closure at absolute virtual time `t` (no CPU
  /// accounting; use for test/bench orchestration).
  void at(TimePoint t, std::function<void()> fn) override;

  /// Schedules a closure on `node`'s executor at time `t`; runs with that
  /// stack's busy-time accounting, as if triggered by a local event.
  void at_node(TimePoint t, NodeId node, std::function<void()> fn) override;

  /// Single-threaded engine: runs `fn` immediately (with the stack's cost
  /// accounting applying to whatever it charges).
  void run_on_node(NodeId node, std::function<void()> fn) override;

  // ---- Fault injection ------------------------------------------------------

  /// Crashes a stack: all of its pending and future events are discarded and
  /// packets addressed to it vanish.  Crash-stop until recover().
  void crash(NodeId node) override;

  /// Crash-recovery: replaces the crashed stack with a fresh Stack on the
  /// same node id.  The host keeps its identity but is reset — incarnation
  /// bumped, timers/handlers cleared, RNG reseeded on an incarnation
  /// substream — and every event of the old incarnation still in the heap
  /// (timers, packets in flight to the node) is purged, so nothing of the
  /// old life can fire into the new one.  The caller composes modules on
  /// the fresh stack afterwards.
  void recover(NodeId node) override;

  [[nodiscard]] bool crashed(NodeId node) const override {
    return crashed_[node];
  }
  [[nodiscard]] std::set<NodeId> crashed_set() const override;

  /// Installs a link filter: packets with filter(src,dst)==false are dropped.
  /// Used for partitions; pass nullptr to heal.
  void set_link_filter(
      std::function<bool(NodeId, NodeId)> deliverable) override {
    link_filter_ = std::move(deliverable);
  }

  /// Adjusts the per-packet loss/duplication probabilities mid-run (applies
  /// to packets sent from now on).  The scenario engine uses this for
  /// bounded lossy-link windows; draws stay on the per-link substreams, so
  /// runs remain deterministic.
  void set_loss(double drop_probability,
                double duplicate_probability) override {
    config_.net.drop_probability = drop_probability;
    config_.net.duplicate_probability = duplicate_probability;
  }

  /// Directional per-link override of the loss model; also adds the fault's
  /// extra_latency to every packet delivered on (src, dst).  Draws stay on
  /// the per-link substream, so installing/clearing overrides preserves
  /// determinism.
  void set_link_fault(NodeId src, NodeId dst,
                      std::optional<LinkFault> fault) override;

  // ---- Execution ------------------------------------------------------------

  /// Processes events with time <= t_end; returns false if `max_events` was
  /// exhausted first (runaway guard for tests).
  bool run_until(TimePoint t_end,
                 std::uint64_t max_events = 500'000'000ULL);

  bool run_for(Duration d, std::uint64_t max_events = 500'000'000ULL) {
    return run_until(now_ + d, max_events);
  }

  /// WorldControl::run — deterministic replay to `deadline`; `active_until`
  /// and `quiesced` are rt concepts and ignored here (the heap draining IS
  /// quiescence).
  bool run(TimePoint /*active_until*/, TimePoint deadline,
           std::uint64_t max_events,
           const std::function<bool()>& /*quiesced*/ = nullptr) override {
    return run_until(deadline, max_events);
  }

  [[nodiscard]] std::uint64_t processed_events() const { return processed_; }
  /// Events re-queued because their stack was busy (processor-model
  /// deferrals); a hot-loop health metric for benches.
  [[nodiscard]] std::uint64_t deferrals() const { return deferrals_; }
  [[nodiscard]] std::uint64_t packets_sent() const override {
    return packets_sent_;
  }
  [[nodiscard]] std::uint64_t packets_dropped() const override {
    return packets_dropped_;
  }

 private:
  class SimHost;
  friend class SimHost;

  /// Tagged event record.  The two dominant event classes of a saturated
  /// run — packet delivery and timer fire — carry plain data (a pool slot /
  /// a timer id) instead of a heap-allocated closure; driver events
  /// (at/at_node/post) keep their std::function in the closure pool.
  ///
  /// The record itself is trivially copyable on purpose: heap pushes, pops
  /// and busy-deferral requeues move 40-byte PODs instead of running
  /// shared_ptr/std::function move constructors, which is where a saturated
  /// run spends most of its time.  Payloads and closures live in free-list
  /// side pools indexed by `pool`.
  /// kClosure = module-posted closure (dies with its incarnation);
  /// kDriver = at()/at_node() control event (owned by the test/scenario
  /// driver — survives a crash-recovery purge, so an update scheduled on a
  /// node that recovers in between still fires).
  enum class EventKind : std::uint8_t { kClosure, kDriver, kPacket, kTimer };

  struct Event {
    TimePoint time;
    std::uint64_t seq;  // insertion order; total-order tiebreaker
    NodeId node;        // kNoNode => driver event (no busy accounting)
    EventKind kind;
    union {
      TimerId timer;  // kTimer: pooled timer handle
      struct {
        NodeId src;           // kPacket: sending stack
        std::uint32_t pool;   // kPacket/kClosure: side-pool slot
      } att;
    };
  };
  static_assert(std::is_trivially_copyable_v<Event>);
  static_assert(sizeof(Event) == 32);

  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      // std::*_heap builds a max-heap; invert to pop the earliest event.
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void push_event(TimePoint t, NodeId node, std::function<void()> fn,
                  EventKind kind = EventKind::kClosure);
  void push_packet_event(TimePoint t, NodeId dst, NodeId src, Payload payload);
  void push_timer_event(TimePoint t, NodeId node, TimerId id);
  void push_heap(Event ev);
  void sift_down_root();
  Event pop_heap_top();
  void dispatch(const Event& ev);
  void discard(const Event& ev);
  void purge_node_events(NodeId node);
  void do_send_packet(NodeId src, NodeId dst, Payload data);
  void do_charge(NodeId node, Duration cost);
  Rng& link_rng(NodeId src, NodeId dst) {
    return link_rngs_[static_cast<std::size_t>(src) * hosts_.size() + dst];
  }

  /// Free-list side pool for event attachments (payloads, closures): O(1)
  /// acquire/release, no steady-state allocation, deterministic slot order.
  template <class T>
  struct EventPool {
    std::vector<T> slots;
    std::vector<std::uint32_t> free;

    std::uint32_t acquire(T value) {
      std::uint32_t slot;
      if (!free.empty()) {
        slot = free.back();
        free.pop_back();
        slots[slot] = std::move(value);
      } else {
        slot = static_cast<std::uint32_t>(slots.size());
        slots.push_back(std::move(value));
      }
      return slot;
    }

    /// Moves the value out and recycles the slot.
    T release(std::uint32_t slot) {
      T out = std::move(slots[slot]);
      slots[slot] = T{};
      free.push_back(slot);
      return out;
    }
  };

  SimConfig config_;
  const ProtocolLibrary* library_ = nullptr;  // kept for recover()
  TraceSink* trace_ = nullptr;                // kept for recover()
  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t deferrals_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::vector<Event> heap_;
  EventPool<Payload> payloads_;
  EventPool<std::function<void()>> closures_;

  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::vector<std::unique_ptr<Stack>> stacks_;
  std::vector<TimePoint> busy_until_;
  std::vector<bool> crashed_;
  /// World-global incarnation stamp handed to the next recovery (see
  /// recover(): stamps must outgrow every epoch any stack ever adopted).
  std::uint32_t next_incarnation_ = 1;
  std::vector<Rng> link_rngs_;
  std::function<bool(NodeId, NodeId)> link_filter_;
  /// Directional fault overrides (see LinkFaultTable).
  LinkFaultTable link_faults_;
};

}  // namespace dpu
