// Deterministic discrete-event simulation engine.
//
// SimWorld hosts N protocol stacks in one address space with a shared
// virtual clock.  It provides, per DESIGN.md §2/§8:
//
//  * an event heap ordered by (virtual time, insertion sequence) — fully
//    deterministic given the world seed;
//  * a network model: per-link latency drawn uniformly from a configured
//    range, optional loss and duplication, and a pluggable link filter for
//    partitions;
//  * a processor model: every stack has a "busy-until" horizon; event
//    handlers charge CPU costs (service hops, per-byte serialization) that
//    push the horizon forward, so queueing delay — and therefore the
//    latency-vs-load saturation the paper's Figure 6 shows — emerges from
//    the model instead of being scripted;
//  * fault injection: crash(node) and link filters (partitions).
//
// The engine runs on a single OS thread; all determinism derives from seeded
// substreams (util/rng.hpp).  The same protocol code also runs on the
// multi-threaded real-time engine in src/rt.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "core/stack.hpp"
#include "core/trace.hpp"
#include "runtime/host.hpp"
#include "runtime/time.hpp"
#include "util/rng.hpp"

namespace dpu {

/// Network and CPU-cost model (DESIGN.md §8 calibration).
struct NetModelConfig {
  Duration min_latency = 45 * kMicrosecond;  ///< one-way link latency, lower bound
  Duration max_latency = 75 * kMicrosecond;  ///< one-way link latency, upper bound
  double drop_probability = 0.0;       ///< per-packet loss
  double duplicate_probability = 0.0;  ///< per-packet duplication
  Duration send_cost_fixed = 2 * kMicrosecond;  ///< sender CPU per packet
  Duration send_cost_per_byte = 6;              ///< sender CPU per byte (ns)
  Duration recv_cost_fixed = 2 * kMicrosecond;  ///< receiver CPU per packet
  Duration recv_cost_per_byte = 6;              ///< receiver CPU per byte (ns)
};

struct SimConfig {
  std::size_t num_stacks = 3;
  std::uint64_t seed = 1;
  NetModelConfig net;
  StackCostModel stack_cost;  ///< applied to every stack (service hop cost)
};

class SimWorld {
 public:
  explicit SimWorld(SimConfig config, const ProtocolLibrary* library = nullptr,
                    TraceSink* trace = nullptr);
  ~SimWorld();

  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  [[nodiscard]] std::size_t size() const { return hosts_.size(); }
  [[nodiscard]] Stack& stack(NodeId node) { return *stacks_[node]; }
  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] const SimConfig& config() const { return config_; }

  // ---- Driver hooks --------------------------------------------------------

  /// Schedules a driver closure at absolute virtual time `t` (no CPU
  /// accounting; use for test/bench orchestration).
  void at(TimePoint t, std::function<void()> fn);

  /// Schedules a closure on `node`'s executor at time `t`; runs with that
  /// stack's busy-time accounting, as if triggered by a local event.
  void at_node(TimePoint t, NodeId node, std::function<void()> fn);

  // ---- Fault injection ------------------------------------------------------

  /// Crashes a stack: all of its pending and future events are discarded and
  /// packets addressed to it vanish.  Crash-stop, no recovery.
  void crash(NodeId node);

  [[nodiscard]] bool crashed(NodeId node) const { return crashed_[node]; }
  [[nodiscard]] std::set<NodeId> crashed_set() const;

  /// Installs a link filter: packets with filter(src,dst)==false are dropped.
  /// Used for partitions; pass nullptr to heal.
  void set_link_filter(std::function<bool(NodeId, NodeId)> deliverable) {
    link_filter_ = std::move(deliverable);
  }

  /// Adjusts the per-packet loss/duplication probabilities mid-run (applies
  /// to packets sent from now on).  The scenario engine uses this for
  /// bounded lossy-link windows; draws stay on the per-link substreams, so
  /// runs remain deterministic.
  void set_loss(double drop_probability, double duplicate_probability) {
    config_.net.drop_probability = drop_probability;
    config_.net.duplicate_probability = duplicate_probability;
  }

  // ---- Execution ------------------------------------------------------------

  /// Processes events with time <= t_end; returns false if `max_events` was
  /// exhausted first (runaway guard for tests).
  bool run_until(TimePoint t_end,
                 std::uint64_t max_events = 500'000'000ULL);

  bool run_for(Duration d, std::uint64_t max_events = 500'000'000ULL) {
    return run_until(now_ + d, max_events);
  }

  [[nodiscard]] std::uint64_t processed_events() const { return processed_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint64_t packets_dropped() const {
    return packets_dropped_;
  }

 private:
  class SimHost;
  friend class SimHost;

  struct Event {
    TimePoint time;
    std::uint64_t seq;   // insertion order; total-order tiebreaker
    NodeId node;         // kNoNode => driver event (no busy accounting)
    std::function<void()> fn;
  };

  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      // std::*_heap builds a max-heap; invert to pop the earliest event.
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void push_event(TimePoint t, NodeId node, std::function<void()> fn);
  void do_send_packet(NodeId src, NodeId dst, Bytes data);
  void do_charge(NodeId node, Duration cost);
  Rng& link_rng(NodeId src, NodeId dst) {
    return link_rngs_[static_cast<std::size_t>(src) * hosts_.size() + dst];
  }

  SimConfig config_;
  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::vector<Event> heap_;

  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::vector<std::unique_ptr<Stack>> stacks_;
  std::vector<TimePoint> busy_until_;
  std::vector<bool> crashed_;
  std::vector<Rng> link_rngs_;
  std::function<bool(NodeId, NodeId)> link_filter_;
};

}  // namespace dpu
