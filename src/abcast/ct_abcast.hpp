// CT-ABcast — atomic broadcast by reduction to consensus (Chandra–Toueg).
//
// This is the paper's ABcast module (Figure 4): "The ABcast module
// implements atomic broadcast ...; the module requires the consensus
// service."
//
// Algorithm:
//  1. abcast(m): assign m the unique id (self, seq), reliable-broadcast it
//     on this instance's data channel.
//  2. Every stack keeps `pending` = received-but-undelivered messages.  When
//     pending is non-empty and the previous instance is settled, it proposes
//     (batched) pending messages for the next consensus instance k.
//  3. The decision of instance k is a batch proposed by some stack; every
//     stack delivers the batch's messages (skipping already-delivered ones)
//     in the batch's canonical order.  The pair (instance, position) is the
//     uniform total order.
//  4. Messages of m not covered by the decided batch stay pending and are
//     re-proposed for k+1.
//
// Decisions can arrive out of instance order (decide dissemination is
// unordered reliable broadcast), so they are buffered and applied strictly
// in instance order.
#pragma once

#include <map>
#include <unordered_set>

#include "consensus/consensus.hpp"
#include "abcast/abcast.hpp"
#include "core/module.hpp"
#include "core/stack.hpp"
#include "net/services.hpp"

namespace dpu {

struct CtAbcastConfig {
  /// Max messages folded into one consensus proposal.
  std::size_t batch_max = 128;
};

class CtAbcastModule final : public Module, public AbcastApi {
 public:
  using Config = CtAbcastConfig;

  static constexpr char kProtocolName[] = "abcast.ct";

  /// Creates the module, binds it to `service`.  `instance_name` must be
  /// identical across stacks and unique per protocol incarnation (wire
  /// channels and the consensus stream derive from it); it defaults to the
  /// service name for statically composed stacks.
  static CtAbcastModule* create(Stack& stack,
                                const std::string& service = kAbcastService,
                                Config config = Config{},
                                const std::string& instance_name = "");

  /// Registers "abcast.ct" in the library: requires consensus + rbcast;
  /// recognized ModuleParams: "batch_max", "instance".
  static void register_protocol(ProtocolLibrary& library,
                                Config config = Config{});

  CtAbcastModule(Stack& stack, std::string instance_name, std::string service,
                 Config config);

  void start() override;
  void stop() override;

  // AbcastApi
  void abcast(Payload payload) override;

  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t instances_settled() const { return next_apply_ - 1; }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }

 private:
  void on_data(NodeId origin, const Payload& data);
  void on_decision(InstanceId instance, const Bytes& batch);
  void apply_batch(const Bytes& batch);
  void try_start_instance();

  Config config_;
  ServiceRef<ConsensusApi> consensus_;
  ServiceRef<RbcastApi> rbcast_;
  UpcallRef<AbcastListener> up_;
  StreamId stream_;
  ChannelId data_channel_;

  std::uint64_t next_local_seq_ = 1;  // re-based onto the incarnation
  InstanceId last_sync_requested_ = 0;  // gap catch-up dedup
  std::map<MsgId, Bytes> pending_;  // ordered => canonical batch order
  std::unordered_set<MsgId, MsgIdHash> delivered_;
  InstanceId next_apply_ = 1;        // next decision to apply
  bool proposed_current_ = false;    // proposed instance next_apply_ already
  std::map<InstanceId, Bytes> decision_buffer_;
  std::uint64_t deliveries_ = 0;
};

}  // namespace dpu
