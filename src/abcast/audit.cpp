#include "abcast/audit.hpp"

#include <algorithm>

namespace dpu {

void AbcastAudit::record_sent(NodeId sender, const Bytes& payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sent_[sender].insert(to_string(payload));
}

void AbcastAudit::record_delivery(NodeId stack, const Bytes& payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  deliveries_[stack].push_back(to_string(payload));
}

std::size_t AbcastAudit::deliveries_at(NodeId stack) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = deliveries_.find(stack);
  return it == deliveries_.end() ? 0 : it->second.size();
}

void AbcastAudit::record_recovered(NodeId stack) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto d = deliveries_.find(stack);
  if (d != deliveries_.end()) {
    archived_deliveries_[stack].push_back(std::move(d->second));
    deliveries_.erase(d);
  }
  auto s = sent_.find(stack);
  if (s != sent_.end()) {
    archived_sent_[stack].insert(s->second.begin(), s->second.end());
    sent_.erase(s);
  }
}

std::size_t AbcastAudit::total_sent() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [node, msgs] : sent_) n += msgs.size();
  return n;
}

PropertyReport AbcastAudit::check(std::size_t world_size,
                                  const std::set<NodeId>& crashed) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  PropertyReport report;

  auto list_of = [this](NodeId i) -> const std::vector<std::string>& {
    static const std::vector<std::string> kEmpty;
    auto it = deliveries_.find(i);
    return it == deliveries_.end() ? kEmpty : it->second;
  };
  auto is_correct = [&](NodeId i) { return crashed.count(i) == 0; };

  // All messages ever sent (for integrity) and per-stack delivery sets.
  std::set<std::string> all_sent;
  for (const auto& [node, msgs] : sent_) all_sent.insert(msgs.begin(), msgs.end());
  for (const auto& [node, msgs] : archived_sent_) {
    all_sent.insert(msgs.begin(), msgs.end());
  }
  std::map<NodeId, std::set<std::string>> delivered_set;
  for (NodeId i = 0; i < world_size; ++i) {
    const auto& list = list_of(i);
    delivered_set[i] = std::set<std::string>(list.begin(), list.end());

    // Uniform integrity (1): at most once.
    if (delivered_set[i].size() != list.size()) {
      std::map<std::string, int> counts;
      for (const auto& m : list) ++counts[m];
      for (const auto& [m, c] : counts) {
        if (c > 1) {
          report.fail("integrity: stack " + std::to_string(i) + " delivered '" +
                      m + "' " + std::to_string(c) + " times");
        }
      }
    }
    // Uniform integrity (2): only previously-sent messages.
    for (const auto& m : delivered_set[i]) {
      if (all_sent.count(m) == 0) {
        report.fail("integrity: stack " + std::to_string(i) + " delivered '" +
                    m + "' which was never abcast");
      }
    }
  }

  // Validity: correct senders deliver their own messages.
  for (const auto& [sender, msgs] : sent_) {
    if (!is_correct(sender)) continue;
    for (const auto& m : msgs) {
      if (delivered_set[sender].count(m) == 0) {
        report.fail("validity: correct stack " + std::to_string(sender) +
                    " abcast '" + m + "' but never adelivered it");
      }
    }
  }

  // Archived logs of dead incarnations: integrity per incarnation log, and
  // everything they delivered feeds the agreement obligation below.
  for (const auto& [node, logs] : archived_deliveries_) {
    for (std::size_t life = 0; life < logs.size(); ++life) {
      std::set<std::string> seen;
      for (const auto& m : logs[life]) {
        if (!seen.insert(m).second) {
          report.fail("integrity: stack " + std::to_string(node) +
                      " (incarnation " + std::to_string(life) +
                      ") delivered '" + m + "' more than once");
        }
        if (all_sent.count(m) == 0) {
          report.fail("integrity: stack " + std::to_string(node) +
                      " (incarnation " + std::to_string(life) +
                      ") delivered '" + m + "' which was never abcast");
        }
      }
    }
  }

  // Uniform agreement: delivered anywhere => delivered on every correct stack.
  std::set<std::string> delivered_anywhere;
  for (const auto& [node, s] : delivered_set) {
    delivered_anywhere.insert(s.begin(), s.end());
  }
  for (const auto& [node, logs] : archived_deliveries_) {
    for (const auto& log : logs) {
      delivered_anywhere.insert(log.begin(), log.end());
    }
  }
  for (const auto& m : delivered_anywhere) {
    for (NodeId i = 0; i < world_size; ++i) {
      if (!is_correct(i)) continue;
      if (delivered_set[i].count(m) == 0) {
        report.fail("agreement: '" + m +
                    "' was delivered somewhere but not on correct stack " +
                    std::to_string(i));
      }
    }
  }

  // Uniform total order.  Pick the first correct stack as reference; every
  // correct stack's sequence must be identical (given agreement), and every
  // crashed stack's sequence must embed order-preserving.
  NodeId ref = kNoNode;
  for (NodeId i = 0; i < world_size; ++i) {
    if (is_correct(i)) {
      ref = i;
      break;
    }
  }
  if (ref == kNoNode) return report;  // everything crashed; nothing to check
  const auto& ref_list = list_of(ref);
  std::map<std::string, std::size_t> ref_index;
  for (std::size_t k = 0; k < ref_list.size(); ++k) ref_index[ref_list[k]] = k;

  for (NodeId i = 0; i < world_size; ++i) {
    if (i == ref) continue;
    const auto& list = list_of(i);
    if (is_correct(i)) {
      if (list != ref_list) {
        report.fail("total order: correct stacks " + std::to_string(ref) +
                    " and " + std::to_string(i) +
                    " delivered different sequences (" +
                    std::to_string(ref_list.size()) + " vs " +
                    std::to_string(list.size()) + " messages)");
      }
      continue;
    }
    // Crashed stack: relative order must agree with the reference.
    std::size_t last = 0;
    bool first = true;
    for (const auto& m : list) {
      auto it = ref_index.find(m);
      if (it == ref_index.end()) continue;  // already flagged by agreement
      if (!first && it->second <= last) {
        report.fail("total order: crashed stack " + std::to_string(i) +
                    " delivered '" + m + "' out of order w.r.t. stack " +
                    std::to_string(ref));
      }
      last = it->second;
      first = false;
    }
  }

  // Dead incarnations' logs embed order-preserving, like crashed stacks.
  for (const auto& [node, logs] : archived_deliveries_) {
    for (std::size_t life = 0; life < logs.size(); ++life) {
      std::size_t last = 0;
      bool first = true;
      for (const auto& m : logs[life]) {
        auto it = ref_index.find(m);
        if (it == ref_index.end()) continue;
        if (!first && it->second <= last) {
          report.fail("total order: stack " + std::to_string(node) +
                      " (incarnation " + std::to_string(life) +
                      ") delivered '" + m + "' out of order w.r.t. stack " +
                      std::to_string(ref));
        }
        last = it->second;
        first = false;
      }
    }
  }
  return report;
}

}  // namespace dpu
