#include "abcast/token_abcast.hpp"

#include "util/log.hpp"

namespace dpu {

TokenAbcastModule* TokenAbcastModule::create(Stack& stack,
                                             const std::string& service,
                                             Config config,
                                             const std::string& instance_name) {
  const std::string instance = instance_name.empty() ? service : instance_name;
  auto* m =
      stack.emplace_module<TokenAbcastModule>(stack, instance, service, config);
  stack.bind<AbcastApi>(service, m, m);
  return m;
}

void TokenAbcastModule::register_protocol(ProtocolLibrary& library,
                                          Config config) {
  library.register_protocol(ProtocolInfo{
      .protocol = kProtocolName,
      .default_service = kAbcastService,
      .requires_services = {kRp2pService, kRbcastService},
      .factory = [config](Stack& stack, const std::string& provide_as,
                          const ModuleParams& params) -> Module* {
        Config c = config;
        c.idle_hold = params.get_int("idle_hold_us",
                                     c.idle_hold / kMicrosecond) *
                      kMicrosecond;
        c.batch_max = static_cast<std::size_t>(
            params.get_int("batch_max", static_cast<std::int64_t>(c.batch_max)));
        return create(stack, provide_as, c, params.get("instance"));
      }});
}

TokenAbcastModule::TokenAbcastModule(Stack& stack, std::string instance_name,
                                     std::string service, Config config)
    : Module(stack, std::move(instance_name)),
      config_(config),
      rp2p_(stack.require<Rp2pApi>(kRp2pService)),
      rbcast_(stack.require<RbcastApi>(kRbcastService)),
      up_(stack.upcalls<AbcastListener>(service)),
      token_channel_(fnv1a64(Module::instance_name() + "/token")),
      order_channel_(fnv1a64(Module::instance_name() + "/order")),
      idle_timer_(stack.host()) {}

void TokenAbcastModule::start() {
  rp2p_.call([this](Rp2pApi& rp2p) {
    rp2p.rp2p_bind_channel(token_channel_,
                           [this](NodeId from, const Payload& data) {
                             on_token(from, data);
                           });
  });
  rbcast_.call([this](RbcastApi& rbcast) {
    rbcast.rbcast_bind_channel(order_channel_,
                               [this](NodeId origin, const Payload& data) {
                                 on_ordered(origin, data);
                               });
  });
  // Stack 0 mints the token.  Every stack creates this module in a
  // replacement, so the mint happens exactly once per protocol instance.
  if (env().node_id() == 0) {
    use_and_pass_token(1);
  }
}

void TokenAbcastModule::stop() {
  idle_timer_.cancel();
  rp2p_.call([this](Rp2pApi& rp2p) { rp2p.rp2p_release_channel(token_channel_); });
  rbcast_.call(
      [this](RbcastApi& rbcast) { rbcast.rbcast_release_channel(order_channel_); });
}

void TokenAbcastModule::abcast(Payload payload) {
  queue_.push_back(std::move(payload));
  if (holding_token_) {
    // We are idling with the token; use it right away.
    idle_timer_.cancel();
    use_and_pass_token(held_gseq_);
  }
}

void TokenAbcastModule::on_token(NodeId from, const Payload& data) {
  std::uint64_t next_gseq = 0;
  try {
    BufReader r(data);
    next_gseq = r.get_varint();
    r.expect_done();
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "token-abcast") << "s" << env().node_id()
                                   << " malformed token from s" << from << ": "
                                   << e.what();
    return;
  }
  use_and_pass_token(next_gseq);
}

void TokenAbcastModule::use_and_pass_token(std::uint64_t next_gseq) {
  ++token_visits_;
  holding_token_ = true;
  held_gseq_ = next_gseq;

  std::size_t stamped = 0;
  while (!queue_.empty() && stamped < config_.batch_max) {
    Payload payload = std::move(queue_.front());
    queue_.pop_front();
    BufWriter w(payload.size() + 24);
    w.put_varint(held_gseq_++);
    w.put_u32(env().node_id());
    w.put_blob(payload);
    rbcast_.call([this, bytes = w.take_payload()](RbcastApi& rbcast) mutable {
      rbcast.rbcast(order_channel_, std::move(bytes));
    });
    ++stamped;
  }

  if (stamped > 0 || config_.idle_hold <= 0) {
    pass_token(held_gseq_);
    return;
  }
  // Idle: hold briefly so an idle ring does not spin at network speed.
  idle_timer_.schedule(config_.idle_hold, [this]() {
    if (holding_token_) pass_token(held_gseq_);
  });
}

void TokenAbcastModule::pass_token(std::uint64_t next_gseq) {
  holding_token_ = false;
  const NodeId next =
      static_cast<NodeId>((env().node_id() + 1) % env().world_size());
  BufWriter w(12);
  w.put_varint(next_gseq);
  rp2p_.call([this, next, bytes = w.take_payload()](Rp2pApi& rp2p) mutable {
    rp2p.rp2p_send(next, token_channel_, std::move(bytes));
  });
}

void TokenAbcastModule::on_ordered(NodeId /*origin*/, const Payload& data) {
  std::uint64_t gseq = 0;
  NodeId sender = kNoNode;
  Bytes payload;
  try {
    BufReader r(data);
    gseq = r.get_varint();
    sender = r.get_u32();
    payload = r.get_blob();
    r.expect_done();
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "token-abcast") << "s" << env().node_id()
                                   << " malformed ordered message: " << e.what();
    return;
  }
  if (gseq < next_deliver_) return;
  reorder_.emplace(gseq, std::make_pair(sender, std::move(payload)));
  while (!reorder_.empty() && reorder_.begin()->first == next_deliver_) {
    auto node = reorder_.extract(reorder_.begin());
    ++next_deliver_;
    ++deliveries_;
    up_.notify([&](AbcastListener& l) {
      l.adeliver(node.mapped().first, node.mapped().second);
    });
  }
}

}  // namespace dpu
