#include "abcast/ct_abcast.hpp"

#include "util/log.hpp"

namespace dpu {

CtAbcastModule* CtAbcastModule::create(Stack& stack, const std::string& service,
                                       Config config,
                                       const std::string& instance_name) {
  const std::string instance = instance_name.empty() ? service : instance_name;
  auto* m = stack.emplace_module<CtAbcastModule>(stack, instance, service, config);
  stack.bind<AbcastApi>(service, m, m);
  return m;
}

void CtAbcastModule::register_protocol(ProtocolLibrary& library,
                                       Config config) {
  library.register_protocol(ProtocolInfo{
      .protocol = kProtocolName,
      .default_service = kAbcastService,
      .requires_services = {kConsensusService, kRbcastService},
      .factory = [config](Stack& stack, const std::string& provide_as,
                          const ModuleParams& params) -> Module* {
        Config c = config;
        c.batch_max = static_cast<std::size_t>(
            params.get_int("batch_max", static_cast<std::int64_t>(c.batch_max)));
        return create(stack, provide_as, c, params.get("instance"));
      }});
}

CtAbcastModule::CtAbcastModule(Stack& stack, std::string instance_name,
                               std::string service, Config config)
    : Module(stack, std::move(instance_name)),
      config_(config),
      consensus_(stack.require<ConsensusApi>(kConsensusService)),
      rbcast_(stack.require<RbcastApi>(kRbcastService)),
      up_(stack.upcalls<AbcastListener>(service)),
      stream_(fnv1a64(Module::instance_name() + "/stream")),
      data_channel_(fnv1a64(Module::instance_name() + "/data")) {}

void CtAbcastModule::start() {
  next_local_seq_ = incarnation_seq_base(env().incarnation()) + 1;
  rbcast_.call([this](RbcastApi& rbcast) {
    rbcast.rbcast_bind_channel(data_channel_,
                               [this](NodeId origin, const Payload& data) {
                                 on_data(origin, data);
                               });
  });
  consensus_.call([this](ConsensusApi& consensus) {
    consensus.consensus_bind_stream(
        stream_, [this](InstanceId instance, const Bytes& batch) {
          on_decision(instance, batch);
        });
  });
  // A recovered incarnation starts with an empty history but the stream may
  // hold decided instances it can never receive again (fire-once decide
  // broadcasts).  Ask for them up front instead of waiting for live traffic
  // to reveal the gap — this is what makes a node recovering into a *quiet*
  // group (workload over, nothing being decided) converge at all, and what
  // makes a busy-group recovery start replaying immediately instead of
  // after the first round-timeout nack.
  if (env().incarnation() > 0) {
    last_sync_requested_ = next_apply_;
    consensus_.call([this](ConsensusApi& consensus) {
      consensus.consensus_sync(stream_, next_apply_);
    });
  }
}

void CtAbcastModule::stop() {
  rbcast_.call(
      [this](RbcastApi& rbcast) { rbcast.rbcast_release_channel(data_channel_); });
  consensus_.call([this](ConsensusApi& consensus) {
    consensus.consensus_release_stream(stream_);
  });
}

void CtAbcastModule::abcast(Payload payload) {
  const MsgId id{env().node_id(), next_local_seq_++};
  BufWriter w(payload.size() + 16);
  id.encode(w);
  w.put_blob(payload);
  rbcast_.call([this, bytes = w.take_payload()](RbcastApi& rbcast) mutable {
    rbcast.rbcast(data_channel_, std::move(bytes));
  });
}

void CtAbcastModule::on_data(NodeId /*origin*/, const Payload& data) {
  MsgId id;
  Bytes payload;
  try {
    BufReader r(data);
    id = MsgId::decode(r);
    payload = r.get_blob();
    r.expect_done();
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "ct-abcast") << "s" << env().node_id()
                                << " malformed data: " << e.what();
    return;
  }
  if (delivered_.count(id) != 0) return;  // already settled by a decision
  pending_.emplace(id, std::move(payload));
  try_start_instance();
}

void CtAbcastModule::try_start_instance() {
  if (proposed_current_ || pending_.empty()) return;
  proposed_current_ = true;
  BufWriter w;
  const std::size_t count = std::min(pending_.size(), config_.batch_max);
  w.put_varint(count);
  std::size_t added = 0;
  for (const auto& [id, payload] : pending_) {
    if (added == count) break;
    id.encode(w);
    w.put_blob(payload);
    ++added;
  }
  consensus_.call([this, batch = w.take()](ConsensusApi& consensus) {
    consensus.propose(stream_, next_apply_, batch);
  });
}

void CtAbcastModule::on_decision(InstanceId instance, const Bytes& batch) {
  decision_buffer_[instance] = batch;
  // Decision-gap catch-up: decisions normally arrive (nearly) in instance
  // order.  A decision far ahead of the next applicable one means the
  // in-between decisions were missed for good — their fire-once broadcasts
  // are gone (we recovered from a crash, or rejoined after a long
  // partition) — so ask the peers to resend everything from next_apply_ on.
  // One request per stall point: re-request only after progress.
  if (instance > next_apply_ + 1 && last_sync_requested_ != next_apply_) {
    last_sync_requested_ = next_apply_;
    consensus_.call([this](ConsensusApi& consensus) {
      consensus.consensus_sync(stream_, next_apply_);
    });
  }
  while (true) {
    auto it = decision_buffer_.find(next_apply_);
    if (it == decision_buffer_.end()) break;
    const Bytes current = std::move(it->second);
    decision_buffer_.erase(it);
    apply_batch(current);
    ++next_apply_;
    proposed_current_ = false;
  }
  try_start_instance();
}

void CtAbcastModule::apply_batch(const Bytes& batch) {
  try {
    BufReader r(batch);
    const std::uint64_t count = r.get_varint();
    for (std::uint64_t i = 0; i < count; ++i) {
      const MsgId id = MsgId::decode(r);
      Bytes payload = r.get_blob();
      if (!delivered_.insert(id).second) continue;  // integrity: once only
      pending_.erase(id);
      ++deliveries_;
      up_.notify([&](AbcastListener& l) { l.adeliver(id.origin, payload); });
    }
    r.expect_done();
  } catch (const CodecError& e) {
    // A malformed decided batch would be a bug in a proposer, not the
    // network (consensus ships it reliably); surface loudly.
    DPU_LOG(kError, "ct-abcast") << "s" << env().node_id()
                                 << " malformed decided batch: " << e.what();
  }
}

}  // namespace dpu
