// SEQ-ABcast — fixed-sequencer atomic broadcast.
//
// The simplest total-order protocol: every sender forwards its message to a
// designated sequencer stack, which assigns a global sequence number and
// reliable-broadcasts the ordered message; all stacks deliver in sequence
// order.
//
// Trade-offs versus CT-ABcast (measured in bench_switch_matrix):
//  + ~2 one-way hops of latency at low load (vs 4 for CT);
//  - the sequencer is a throughput bottleneck and a single point of failure:
//    the protocol does not tolerate a sequencer crash.  The adaptive
//    middleware story of the paper is to hot-swap to a fault-tolerant
//    protocol (CT) when that matters — see examples/chat_upgrade.cpp.
#pragma once

#include <map>

#include "abcast/abcast.hpp"
#include "core/module.hpp"
#include "core/stack.hpp"
#include "net/services.hpp"

namespace dpu {

struct SeqAbcastConfig {
  /// Stack acting as the sequencer.
  NodeId sequencer = 0;
};

class SeqAbcastModule final : public Module, public AbcastApi {
 public:
  using Config = SeqAbcastConfig;

  static constexpr char kProtocolName[] = "abcast.seq";

  static SeqAbcastModule* create(Stack& stack,
                                 const std::string& service = kAbcastService,
                                 Config config = Config{},
                                 const std::string& instance_name = "");

  /// Registers "abcast.seq": requires rp2p + rbcast; ModuleParams:
  /// "sequencer", "instance".
  static void register_protocol(ProtocolLibrary& library,
                                Config config = Config{});

  SeqAbcastModule(Stack& stack, std::string instance_name, std::string service,
                  Config config);

  void start() override;
  void stop() override;

  // AbcastApi
  void abcast(Payload payload) override;

  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t sequenced() const { return next_gseq_ - 1; }

 private:
  void on_submit(NodeId from, const Payload& data);
  void on_ordered(NodeId origin, const Payload& data);

  Config config_;
  ServiceRef<Rp2pApi> rp2p_;
  ServiceRef<RbcastApi> rbcast_;
  UpcallRef<AbcastListener> up_;
  ChannelId submit_channel_;
  ChannelId order_channel_;

  std::uint64_t next_local_seq_ = 1;
  std::uint64_t next_gseq_ = 1;     // sequencer only
  std::uint64_t next_deliver_ = 1;  // all stacks
  std::map<std::uint64_t, std::pair<NodeId, Bytes>> reorder_;
  std::uint64_t deliveries_ = 0;
};

}  // namespace dpu
