// Atomic broadcast service interface (paper §5.1).
//
// Properties (Hadzilacos & Toueg [7], as quoted in the paper):
//  * Validity — if a correct process ABcasts m, it eventually Adelivers m.
//  * Uniform agreement — if a process Adelivers m, all correct processes
//    eventually Adeliver m.
//  * Uniform integrity — every process Adelivers m at most once, and only
//    if m was previously ABcast.
//  * Uniform total order — if some process Adelivers m before m', every
//    process Adelivers m' only after it has Adelivered m.
//
// Three providers implement this service (DESIGN.md §3): the consensus-based
// CT-ABcast (the paper's protocol), a fixed-sequencer ABcast and a
// token-ring ABcast.  They are interchangeable behind the service name —
// which is exactly what the replacement module exploits.
#pragma once

#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace dpu {

inline constexpr char kAbcastService[] = "abcast";

/// The service name the replacement module re-binds the real provider to
/// (paper Figure 3: modules call `r-p` provided by Repl-P, which requires
/// the inner `p`).
inline constexpr char kAbcastInnerService[] = "abcast.inner";

struct AbcastApi {
  virtual ~AbcastApi() = default;
  /// Broadcasts `payload` to all stacks with uniform total order.  Takes a
  /// Payload (shared immutable buffer) so serializing callers hand their
  /// wire bytes down copy-free via BufWriter::take_payload(); a plain Bytes
  /// argument converts implicitly (one copy, as before).
  virtual void abcast(Payload payload) = 0;
};

struct AbcastListener {
  virtual ~AbcastListener() = default;
  /// Upcall: `payload` is delivered in the global total order; `sender` is
  /// the stack whose abcast() produced it.
  virtual void adeliver(NodeId sender, const Bytes& payload) = 0;
};

}  // namespace dpu
