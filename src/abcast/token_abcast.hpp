// TOKEN-ABcast — moving-sequencer (token ring) atomic broadcast.
//
// A token carrying the next global sequence number circulates on the ring
// 0 -> 1 -> ... -> n-1 -> 0.  The holder stamps its queued messages with
// consecutive sequence numbers, reliable-broadcasts them, and passes the
// token on.  All stacks deliver in sequence-number order.
//
// Trade-offs versus the other providers (measured in bench_switch_matrix):
//  + sender fairness and high throughput under symmetric load (ordering
//    work rotates; no single hot spot);
//  - latency at low load is bounded below by the token rotation time;
//  - like SEQ-ABcast this demo protocol is failure-free only: a holder
//    crash stalls the ring (the adaptive answer is to switch protocols).
#pragma once

#include <deque>
#include <map>

#include "abcast/abcast.hpp"
#include "core/module.hpp"
#include "core/stack.hpp"
#include "net/services.hpp"

namespace dpu {

struct TokenAbcastConfig {
  /// How long an idle holder keeps the token before passing it on.  Bounds
  /// the idle rotation rate (and thus the idle background traffic).
  Duration idle_hold = kMillisecond;
  /// Max messages stamped per token visit (fairness bound).
  std::size_t batch_max = 64;
};

class TokenAbcastModule final : public Module, public AbcastApi {
 public:
  using Config = TokenAbcastConfig;

  static constexpr char kProtocolName[] = "abcast.token";

  static TokenAbcastModule* create(Stack& stack,
                                   const std::string& service = kAbcastService,
                                   Config config = Config{},
                                   const std::string& instance_name = "");

  /// Registers "abcast.token": requires rp2p + rbcast; ModuleParams:
  /// "idle_hold_us", "batch_max", "instance".
  static void register_protocol(ProtocolLibrary& library,
                                Config config = Config{});

  TokenAbcastModule(Stack& stack, std::string instance_name,
                    std::string service, Config config);

  void start() override;
  void stop() override;

  // AbcastApi
  void abcast(Payload payload) override;

  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t token_visits() const { return token_visits_; }

 private:
  void on_token(NodeId from, const Payload& data);
  void on_ordered(NodeId origin, const Payload& data);
  void use_and_pass_token(std::uint64_t next_gseq);
  void pass_token(std::uint64_t next_gseq);

  Config config_;
  ServiceRef<Rp2pApi> rp2p_;
  ServiceRef<RbcastApi> rbcast_;
  UpcallRef<AbcastListener> up_;
  ChannelId token_channel_;
  ChannelId order_channel_;

  std::deque<Payload> queue_;    // locally abcast, not yet stamped
  bool holding_token_ = false;
  std::uint64_t held_gseq_ = 0;  // next gseq while holding
  TimerSlot idle_timer_;
  std::uint64_t next_deliver_ = 1;
  std::map<std::uint64_t, std::pair<NodeId, Bytes>> reorder_;
  std::uint64_t deliveries_ = 0;
  std::uint64_t token_visits_ = 0;
};

}  // namespace dpu
