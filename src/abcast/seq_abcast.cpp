#include "abcast/seq_abcast.hpp"

#include "util/log.hpp"

namespace dpu {

SeqAbcastModule* SeqAbcastModule::create(Stack& stack,
                                         const std::string& service,
                                         Config config,
                                         const std::string& instance_name) {
  const std::string instance = instance_name.empty() ? service : instance_name;
  auto* m = stack.emplace_module<SeqAbcastModule>(stack, instance, service, config);
  stack.bind<AbcastApi>(service, m, m);
  return m;
}

void SeqAbcastModule::register_protocol(ProtocolLibrary& library,
                                        Config config) {
  library.register_protocol(ProtocolInfo{
      .protocol = kProtocolName,
      .default_service = kAbcastService,
      .requires_services = {kRp2pService, kRbcastService},
      .factory = [config](Stack& stack, const std::string& provide_as,
                          const ModuleParams& params) -> Module* {
        Config c = config;
        c.sequencer = static_cast<NodeId>(
            params.get_int("sequencer", static_cast<std::int64_t>(c.sequencer)));
        return create(stack, provide_as, c, params.get("instance"));
      }});
}

SeqAbcastModule::SeqAbcastModule(Stack& stack, std::string instance_name,
                                 std::string service, Config config)
    : Module(stack, std::move(instance_name)),
      config_(config),
      rp2p_(stack.require<Rp2pApi>(kRp2pService)),
      rbcast_(stack.require<RbcastApi>(kRbcastService)),
      up_(stack.upcalls<AbcastListener>(service)),
      submit_channel_(fnv1a64(Module::instance_name() + "/submit")),
      order_channel_(fnv1a64(Module::instance_name() + "/order")) {}

void SeqAbcastModule::start() {
  next_local_seq_ = incarnation_seq_base(env().incarnation()) + 1;
  if (env().node_id() == config_.sequencer) {
    rp2p_.call([this](Rp2pApi& rp2p) {
      rp2p.rp2p_bind_channel(submit_channel_,
                             [this](NodeId from, const Payload& data) {
                               on_submit(from, data);
                             });
    });
  }
  rbcast_.call([this](RbcastApi& rbcast) {
    rbcast.rbcast_bind_channel(order_channel_,
                               [this](NodeId origin, const Payload& data) {
                                 on_ordered(origin, data);
                               });
  });
}

void SeqAbcastModule::stop() {
  if (env().node_id() == config_.sequencer) {
    rp2p_.call(
        [this](Rp2pApi& rp2p) { rp2p.rp2p_release_channel(submit_channel_); });
  }
  rbcast_.call(
      [this](RbcastApi& rbcast) { rbcast.rbcast_release_channel(order_channel_); });
}

void SeqAbcastModule::abcast(Payload payload) {
  const MsgId id{env().node_id(), next_local_seq_++};
  BufWriter w(payload.size() + 16);
  id.encode(w);
  w.put_blob(payload);
  rp2p_.call([this, bytes = w.take_payload()](Rp2pApi& rp2p) mutable {
    rp2p.rp2p_send(config_.sequencer, submit_channel_, std::move(bytes));
  });
}

void SeqAbcastModule::on_submit(NodeId from, const Payload& data) {
  MsgId id;
  Bytes payload;
  try {
    BufReader r(data);
    id = MsgId::decode(r);
    payload = r.get_blob();
    r.expect_done();
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "seq-abcast") << "s" << env().node_id()
                                 << " malformed submit from s" << from << ": "
                                 << e.what();
    return;
  }
  const std::uint64_t gseq = next_gseq_++;
  BufWriter w(payload.size() + 24);
  w.put_varint(gseq);
  w.put_u32(id.origin);
  w.put_blob(payload);
  rbcast_.call([this, bytes = w.take_payload()](RbcastApi& rbcast) mutable {
    rbcast.rbcast(order_channel_, std::move(bytes));
  });
}

void SeqAbcastModule::on_ordered(NodeId /*origin*/, const Payload& data) {
  std::uint64_t gseq = 0;
  NodeId sender = kNoNode;
  Bytes payload;
  try {
    BufReader r(data);
    gseq = r.get_varint();
    sender = r.get_u32();
    payload = r.get_blob();
    r.expect_done();
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "seq-abcast") << "s" << env().node_id()
                                 << " malformed ordered message: " << e.what();
    return;
  }
  if (gseq < next_deliver_) return;  // duplicate
  reorder_.emplace(gseq, std::make_pair(sender, std::move(payload)));
  while (!reorder_.empty() && reorder_.begin()->first == next_deliver_) {
    auto node = reorder_.extract(reorder_.begin());
    ++next_deliver_;
    ++deliveries_;
    up_.notify([&](AbcastListener& l) {
      l.adeliver(node.mapped().first, node.mapped().second);
    });
  }
}

}  // namespace dpu
