// AbcastAudit — run-time checker for the four atomic-broadcast properties
// of paper §5.1, evaluated over recorded send/delivery logs.
//
// The audit identifies messages by payload bytes, so test workloads must use
// globally unique payloads.  It is the tool used both for single-protocol
// tests and for the §5.2 proof obligations: the properties must hold *across
// a protocol replacement*, with message logs spanning multiple ABcast
// protocol versions.
//
// Thread-safe: the real-time engine records from many stack threads.
#pragma once

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "abcast/abcast.hpp"
#include "core/properties.hpp"

namespace dpu {

class AbcastAudit {
 public:
  /// Records that `sender` invoked abcast(payload).
  void record_sent(NodeId sender, const Bytes& payload);

  /// Records that `stack` adelivered `payload`.
  void record_delivery(NodeId stack, const Bytes& payload);

  /// Records that `stack` crash-recovered: its log so far becomes the
  /// archived log of a dead incarnation, and subsequent record_sent /
  /// record_delivery calls open the new incarnation's log.  Archived logs
  /// are audited like crashed stacks' logs (their deliveries must be seen
  /// everywhere and embed order-preserving); archived *sends* are exempt
  /// from validity — a send the crash swallowed is indistinguishable from a
  /// send by a crashed stack — but still count as "sent" for integrity.
  void record_recovered(NodeId stack);

  /// Verifies, for `world_size` stacks of which `crashed` stopped early:
  ///  * Validity: every message sent by a correct stack (or by the *live*
  ///    incarnation of a recovered stack) is delivered there.
  ///  * Uniform agreement: a message delivered anywhere (even on a stack
  ///    that crashed later, or by a dead incarnation) is delivered on every
  ///    correct stack — including recovered stacks, whose decision replay
  ///    must resurface the full history.
  ///  * Uniform integrity: no duplicates per incarnation log; nothing
  ///    delivered that was not sent.
  ///  * Uniform total order: all delivery sequences are mutually consistent
  ///    (a crashed stack's or dead incarnation's sequence embeds
  ///    order-preserving into a correct stack's sequence).
  [[nodiscard]] PropertyReport check(std::size_t world_size,
                                     const std::set<NodeId>& crashed = {}) const;

  [[nodiscard]] std::size_t deliveries_at(NodeId stack) const;
  [[nodiscard]] std::size_t total_sent() const;

  /// A ready-made listener that feeds deliveries for one stack.
  class Listener final : public AbcastListener {
   public:
    Listener(AbcastAudit& audit, NodeId stack) : audit_(&audit), stack_(stack) {}
    void adeliver(NodeId /*sender*/, const Bytes& payload) override {
      audit_->record_delivery(stack_, payload);
    }

   private:
    AbcastAudit* audit_;
    NodeId stack_;
  };

 private:
  mutable std::mutex mutex_;
  std::map<NodeId, std::vector<std::string>> deliveries_;
  std::map<NodeId, std::set<std::string>> sent_;
  /// Logs of dead incarnations (crash-recovered stacks), in recovery order.
  std::map<NodeId, std::vector<std::vector<std::string>>> archived_deliveries_;
  /// Sends of dead incarnations (union): integrity sources, validity-exempt.
  std::map<NodeId, std::set<std::string>> archived_sent_;
};

}  // namespace dpu
