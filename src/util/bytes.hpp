// Byte-buffer primitives and a bounds-checked binary codec.
//
// Every protocol module in this repository talks to its peers through real
// serialized packets (even on the in-process engines), so the codec is the
// lowest layer of the wire format.  Encoding is explicit big-endian for fixed
// width integers plus LEB128-style varints for counts; there is no implicit
// padding, which keeps packets identical across engines and platforms.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <new>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dpu {

/// Raw wire bytes.  A plain vector keeps ownership semantics obvious and
/// copy/move behaviour standard (Core Guidelines: prefer simple, regular
/// types at interfaces).
using Bytes = std::vector<std::uint8_t>;

namespace detail {

/// Intrusively ref-counted flat buffer: header and bytes live in one
/// allocation, and the count is atomic so buffers may cross threads on the
/// rt engine.  Payload and BufWriter are the only users.  (A custom
/// free-list was measured here and removed: glibc's per-thread tcache
/// already makes the single-allocation round trip cheap.)
struct PayloadBuf {
  std::atomic<std::uint32_t> refs{1};
  std::uint32_t capacity = 0;

  [[nodiscard]] std::uint8_t* data() {
    return reinterpret_cast<std::uint8_t*>(this + 1);
  }
  [[nodiscard]] const std::uint8_t* data() const {
    return reinterpret_cast<const std::uint8_t*>(this + 1);
  }

  [[nodiscard]] static PayloadBuf* make(std::size_t capacity) {
    if (capacity > UINT32_MAX) {
      throw std::length_error("PayloadBuf: capacity exceeds 4 GiB");
    }
    auto* b = static_cast<PayloadBuf*>(
        ::operator new(sizeof(PayloadBuf) + capacity));
    new (b) PayloadBuf;
    b->capacity = static_cast<std::uint32_t>(capacity);
    return b;
  }

  void retain() { refs.fetch_add(1, std::memory_order_relaxed); }

  void release() {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      this->~PayloadBuf();
      ::operator delete(this);
    }
  }
};

}  // namespace detail

/// Ref-counted immutable byte buffer with cheap slicing — the zero-copy
/// message type of the packet hot path.
///
/// A Payload is a (shared buffer, offset, length) view: copying or slicing
/// one never copies bytes, only bumps an atomic refcount, so a broadcast to
/// N destinations can serialize once and share one buffer across every
/// link, retransmission queue and reorder buffer.  The backing store is a
/// single flat allocation (header + bytes), normally produced without any
/// copy by BufWriter::take_payload().  The buffer is immutable for the
/// Payload's whole lifetime; the refcount is atomic, so Payloads may be
/// handed across threads on the rt engine freely as long as each individual
/// Payload object stays single-threaded — the same rule that already
/// governs every other value in a stack.
///
/// COW escape hatch: to_bytes()/detach() copy the viewed bytes out into a
/// plain mutable vector.
class Payload {
 public:
  Payload() = default;

  /// Copies `bytes` into a flat buffer.  Implicit so call sites may hand a
  /// Bytes value anywhere a Payload is expected; zero-copy producers should
  /// prefer BufWriter::take_payload().
  Payload(const Bytes& bytes)  // NOLINT(google-explicit-constructor)
      : Payload(std::span<const std::uint8_t>(bytes.data(), bytes.size())) {}

  explicit Payload(std::span<const std::uint8_t> data) {
    if (data.empty()) return;
    buf_ = detail::PayloadBuf::make(data.size());
    std::memcpy(buf_->data(), data.data(), data.size());
    len_ = data.size();
  }

  explicit Payload(std::string_view s)
      : Payload(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(s.data()), s.size())) {}

  /// Copies `data` into a fresh buffer (for callers that only have a view).
  [[nodiscard]] static Payload copy_of(std::span<const std::uint8_t> data) {
    return Payload(data);
  }

  Payload(const Payload& other)
      : buf_(other.buf_), offset_(other.offset_), len_(other.len_) {
    if (buf_ != nullptr) buf_->retain();
  }

  Payload(Payload&& other) noexcept
      : buf_(other.buf_), offset_(other.offset_), len_(other.len_) {
    other.buf_ = nullptr;
    other.offset_ = other.len_ = 0;
  }

  Payload& operator=(const Payload& other) {
    Payload copy(other);
    swap(copy);
    return *this;
  }

  Payload& operator=(Payload&& other) noexcept {
    swap(other);
    return *this;
  }

  ~Payload() {
    if (buf_ != nullptr) buf_->release();
  }

  void swap(Payload& other) noexcept {
    std::swap(buf_, other.buf_);
    std::swap(offset_, other.offset_);
    std::swap(len_, other.len_);
  }

  [[nodiscard]] const std::uint8_t* data() const {
    return buf_ != nullptr ? buf_->data() + offset_ : nullptr;
  }
  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }

  [[nodiscard]] std::span<const std::uint8_t> span() const {
    return {data(), len_};
  }

  /// Sub-view sharing the same buffer (no copy).  `length` is clamped to
  /// the view; `offset` past the end yields an empty payload.
  [[nodiscard]] Payload slice(std::size_t offset,
                              std::size_t length = SIZE_MAX) const {
    Payload out;
    if (offset >= len_) return out;
    out.buf_ = buf_;
    if (out.buf_ != nullptr) out.buf_->retain();
    out.offset_ = offset_ + offset;
    out.len_ = std::min(length, len_ - offset);
    return out;
  }

  /// Mutable copy of the viewed bytes (always copies).
  [[nodiscard]] Bytes to_bytes() const {
    return Bytes(data(), data() + len_);
  }

  /// COW escape hatch: copies the viewed bytes out and drops this view.
  [[nodiscard]] Bytes detach() {
    Bytes out = to_bytes();
    *this = Payload();
    return out;
  }

  /// True when both views alias the same underlying buffer (tests use this
  /// to assert the zero-copy property).
  [[nodiscard]] bool shares_buffer_with(const Payload& other) const {
    return buf_ != nullptr && buf_ == other.buf_;
  }

  /// Number of Payload views holding the underlying buffer alive (0 for an
  /// empty payload).  Test/diagnostic aid only.
  [[nodiscard]] long ref_count() const {
    return buf_ != nullptr
               ? static_cast<long>(buf_->refs.load(std::memory_order_relaxed))
               : 0;
  }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.len_ == b.len_ &&
           (a.len_ == 0 || std::memcmp(a.data(), b.data(), a.len_) == 0);
  }

 private:
  friend class BufWriter;

  /// Adopts an already-retained buffer (BufWriter::take_payload).
  Payload(detail::PayloadBuf* adopted, std::size_t len)
      : buf_(adopted), len_(len) {}

  detail::PayloadBuf* buf_ = nullptr;  // shared storage; logically immutable
  std::size_t offset_ = 0;
  std::size_t len_ = 0;
};

/// Thrown by BufReader when a packet is truncated or malformed.  Protocol
/// modules catch this at their ingress boundary and drop the packet; it must
/// never escape a stack's event handler.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only encoder.  All integers are written big-endian; varints use
/// little-endian base-128 groups (LEB128).  The writer builds directly into
/// a flat ref-counted buffer, so take_payload() hands the finished wire
/// bytes to the packet path with zero copies and a single allocation.
class BufWriter {
 public:
  BufWriter() = default;
  explicit BufWriter(std::size_t reserve) {
    if (reserve > 0) buf_ = detail::PayloadBuf::make(reserve);
  }

  BufWriter(const BufWriter&) = delete;
  BufWriter& operator=(const BufWriter&) = delete;

  BufWriter(BufWriter&& other) noexcept
      : buf_(other.buf_), size_(other.size_) {
    other.buf_ = nullptr;
    other.size_ = 0;
  }

  BufWriter& operator=(BufWriter&& other) noexcept {
    std::swap(buf_, other.buf_);
    std::swap(size_, other.size_);
    return *this;
  }

  ~BufWriter() {
    if (buf_ != nullptr) buf_->release();
  }

  void put_u8(std::uint8_t v) { *ensure(1) = v; }

  void put_u16(std::uint16_t v) {
    std::uint8_t* p = ensure(2);
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
  }

  void put_u32(std::uint32_t v) {
    std::uint8_t* p = ensure(4);
    for (int shift = 24; shift >= 0; shift -= 8) {
      *p++ = static_cast<std::uint8_t>(v >> shift);
    }
  }

  void put_u64(std::uint64_t v) {
    std::uint8_t* p = ensure(8);
    for (int shift = 56; shift >= 0; shift -= 8) {
      *p++ = static_cast<std::uint8_t>(v >> shift);
    }
  }

  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

  /// LEB128 unsigned varint (1 byte for values < 128).
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      put_u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    put_u8(static_cast<std::uint8_t>(v));
  }

  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  /// Raw bytes, no length prefix (caller knows the length from context).
  void put_raw(std::span<const std::uint8_t> data) {
    if (data.empty()) return;
    std::memcpy(ensure(data.size()), data.data(), data.size());
  }

  /// Length-prefixed byte string (varint length + bytes).
  void put_blob(std::span<const std::uint8_t> data) {
    put_varint(data.size());
    put_raw(data);
  }

  void put_blob(const Bytes& data) {
    put_blob(std::span<const std::uint8_t>(data.data(), data.size()));
  }

  void put_blob(const Payload& data) { put_blob(data.span()); }

  /// Length-prefixed UTF-8 string.
  void put_string(std::string_view s) {
    put_varint(s.size());
    put_raw(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// The bytes written so far (valid until the next write/take).
  [[nodiscard]] std::span<const std::uint8_t> span() const {
    return {buf_ != nullptr ? buf_->data() : nullptr, size_};
  }

  /// Copies the encoded bytes out into a plain vector; the writer is empty
  /// afterwards.  Use take_payload() on packet paths — it does not copy.
  [[nodiscard]] Bytes take() {
    Bytes out(span().begin(), span().end());
    clear_storage();
    return out;
  }

  /// Transfers ownership of the flat buffer into a shared immutable
  /// Payload (no byte copy); the writer is empty afterwards.
  [[nodiscard]] Payload take_payload() {
    Payload out(buf_, size_);
    buf_ = nullptr;
    size_ = 0;
    return out;
  }

  /// Drops the contents but keeps the allocation, so a long-lived writer
  /// can serve as a reusable scratch buffer on hot paths.
  void clear() { size_ = 0; }

 private:
  std::uint8_t* ensure(std::size_t n) {
    const std::size_t needed = size_ + n;
    if (buf_ == nullptr || needed > buf_->capacity) grow(needed);
    std::uint8_t* p = buf_->data() + size_;
    size_ += n;
    return p;
  }

  void grow(std::size_t needed) {
    std::size_t capacity = buf_ != nullptr ? buf_->capacity : 0;
    capacity = std::max<std::size_t>(capacity * 2, 64);
    capacity = std::max(capacity, needed);
    detail::PayloadBuf* bigger = detail::PayloadBuf::make(capacity);
    if (buf_ != nullptr) {
      std::memcpy(bigger->data(), buf_->data(), size_);
      buf_->release();
    }
    buf_ = bigger;
  }

  void clear_storage() {
    if (buf_ != nullptr) {
      buf_->release();
      buf_ = nullptr;
    }
    size_ = 0;
  }

  detail::PayloadBuf* buf_ = nullptr;  // sole reference until take_payload()
  std::size_t size_ = 0;
};

/// Bounds-checked decoder over a borrowed byte span.  Throws CodecError on
/// any overrun or malformed varint; never reads past the span.
class BufReader {
 public:
  explicit BufReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit BufReader(const Bytes& data)
      : data_(std::span<const std::uint8_t>(data.data(), data.size())) {}
  /// Payload-backed reader: get_blob_payload() can hand out zero-copy
  /// slices of the underlying buffer.  `data` must outlive the reader.
  explicit BufReader(const Payload& data)
      : data_(data.span()), backing_(&data) {}

  [[nodiscard]] std::uint8_t get_u8() {
    need(1);
    return data_[pos_++];
  }

  [[nodiscard]] std::uint16_t get_u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  [[nodiscard]] std::uint32_t get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_u64());
  }

  [[nodiscard]] std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      need(1);
      const std::uint8_t b = data_[pos_++];
      if (shift == 63 && (b & 0x7E) != 0) {
        throw CodecError("varint overflows 64 bits");
      }
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
      if (shift > 63) throw CodecError("varint too long");
    }
  }

  [[nodiscard]] bool get_bool() { return get_u8() != 0; }

  /// Borrow `n` raw bytes (no copy); valid while the underlying span lives.
  [[nodiscard]] std::span<const std::uint8_t> get_raw(std::size_t n) {
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Length-prefixed byte string, copied out.
  [[nodiscard]] Bytes get_blob() {
    const std::uint64_t n = get_varint();
    if (n > remaining()) throw CodecError("blob length exceeds packet");
    auto raw = get_raw(static_cast<std::size_t>(n));
    return Bytes(raw.begin(), raw.end());
  }

  /// Length-prefixed byte string as a Payload.  Zero-copy (a slice of the
  /// backing buffer) when the reader was constructed from a Payload; falls
  /// back to a copy for span/Bytes-backed readers.
  [[nodiscard]] Payload get_blob_payload() {
    const std::uint64_t n = get_varint();
    if (n > remaining()) throw CodecError("blob length exceeds packet");
    const std::size_t start = pos_;
    auto raw = get_raw(static_cast<std::size_t>(n));
    if (backing_ != nullptr) {
      return backing_->slice(start, static_cast<std::size_t>(n));
    }
    return Payload::copy_of(raw);
  }

  [[nodiscard]] std::string get_string() {
    const std::uint64_t n = get_varint();
    if (n > remaining()) throw CodecError("string length exceeds packet");
    auto raw = get_raw(static_cast<std::size_t>(n));
    return std::string(raw.begin(), raw.end());
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

  /// Asserts the whole packet was consumed; protocols call this after
  /// decoding to reject trailing garbage.
  void expect_done() const {
    if (!done()) throw CodecError("trailing bytes after message");
  }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw CodecError("packet truncated");
  }

  std::span<const std::uint8_t> data_;
  const Payload* backing_ = nullptr;
  std::size_t pos_ = 0;
};

/// Builds a Bytes value from a string literal / string payload (examples and
/// tests use this to make application payloads).
[[nodiscard]] inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Inverse of to_bytes for displaying payloads.
[[nodiscard]] inline std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

[[nodiscard]] inline std::string to_string(const Payload& p) {
  return std::string(p.span().begin(), p.span().end());
}

/// Hex dump used by log messages and test diagnostics ("de:ad:be:ef").
[[nodiscard]] std::string hex_dump(std::span<const std::uint8_t> data,
                                   std::size_t max_bytes = 32);

/// FNV-1a 64-bit hash; used to derive stable channel ids from instance names.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace dpu
