// Byte-buffer primitives and a bounds-checked binary codec.
//
// Every protocol module in this repository talks to its peers through real
// serialized packets (even on the in-process engines), so the codec is the
// lowest layer of the wire format.  Encoding is explicit big-endian for fixed
// width integers plus LEB128-style varints for counts; there is no implicit
// padding, which keeps packets identical across engines and platforms.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dpu {

/// Raw wire bytes.  A plain vector keeps ownership semantics obvious and
/// copy/move behaviour standard (Core Guidelines: prefer simple, regular
/// types at interfaces).
using Bytes = std::vector<std::uint8_t>;

/// Thrown by BufReader when a packet is truncated or malformed.  Protocol
/// modules catch this at their ingress boundary and drop the packet; it must
/// never escape a stack's event handler.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only encoder.  All integers are written big-endian; varints use
/// little-endian base-128 groups (LEB128).  The writer owns its buffer and
/// releases it via take().
class BufWriter {
 public:
  BufWriter() = default;
  explicit BufWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }

  void put_u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void put_u32(std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      buf_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }

  void put_u64(std::uint64_t v) {
    for (int shift = 56; shift >= 0; shift -= 8) {
      buf_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }

  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

  /// LEB128 unsigned varint (1 byte for values < 128).
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  /// Raw bytes, no length prefix (caller knows the length from context).
  void put_raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Length-prefixed byte string (varint length + bytes).
  void put_blob(std::span<const std::uint8_t> data) {
    put_varint(data.size());
    put_raw(data);
  }

  void put_blob(const Bytes& data) {
    put_blob(std::span<const std::uint8_t>(data.data(), data.size()));
  }

  /// Length-prefixed UTF-8 string.
  void put_string(std::string_view s) {
    put_varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] bool empty() const { return buf_.empty(); }

  /// Transfers ownership of the encoded buffer out of the writer.
  [[nodiscard]] Bytes take() { return std::move(buf_); }

  [[nodiscard]] const Bytes& bytes() const { return buf_; }

 private:
  Bytes buf_;
};

/// Bounds-checked decoder over a borrowed byte span.  Throws CodecError on
/// any overrun or malformed varint; never reads past the span.
class BufReader {
 public:
  explicit BufReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit BufReader(const Bytes& data)
      : data_(std::span<const std::uint8_t>(data.data(), data.size())) {}

  [[nodiscard]] std::uint8_t get_u8() {
    need(1);
    return data_[pos_++];
  }

  [[nodiscard]] std::uint16_t get_u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  [[nodiscard]] std::uint32_t get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_u64());
  }

  [[nodiscard]] std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      need(1);
      const std::uint8_t b = data_[pos_++];
      if (shift == 63 && (b & 0x7E) != 0) {
        throw CodecError("varint overflows 64 bits");
      }
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
      if (shift > 63) throw CodecError("varint too long");
    }
  }

  [[nodiscard]] bool get_bool() { return get_u8() != 0; }

  /// Borrow `n` raw bytes (no copy); valid while the underlying span lives.
  [[nodiscard]] std::span<const std::uint8_t> get_raw(std::size_t n) {
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Length-prefixed byte string, copied out.
  [[nodiscard]] Bytes get_blob() {
    const std::uint64_t n = get_varint();
    if (n > remaining()) throw CodecError("blob length exceeds packet");
    auto raw = get_raw(static_cast<std::size_t>(n));
    return Bytes(raw.begin(), raw.end());
  }

  [[nodiscard]] std::string get_string() {
    const std::uint64_t n = get_varint();
    if (n > remaining()) throw CodecError("string length exceeds packet");
    auto raw = get_raw(static_cast<std::size_t>(n));
    return std::string(raw.begin(), raw.end());
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

  /// Asserts the whole packet was consumed; protocols call this after
  /// decoding to reject trailing garbage.
  void expect_done() const {
    if (!done()) throw CodecError("trailing bytes after message");
  }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw CodecError("packet truncated");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Builds a Bytes value from a string literal / string payload (examples and
/// tests use this to make application payloads).
[[nodiscard]] inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Inverse of to_bytes for displaying payloads.
[[nodiscard]] inline std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

/// Hex dump used by log messages and test diagnostics ("de:ad:be:ef").
[[nodiscard]] std::string hex_dump(std::span<const std::uint8_t> data,
                                   std::size_t max_bytes = 32);

/// FNV-1a 64-bit hash; used to derive stable channel ids from instance names.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace dpu
