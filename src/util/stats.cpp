#include "util/stats.hpp"

#include <cstdio>

namespace dpu {

std::string fmt_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace dpu
