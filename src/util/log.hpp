// Minimal leveled logger.
//
// Protocol modules log through a per-stack tag ("s3/rp2p") so interleaved
// output from simulated stacks stays readable.  The logger is thread-safe
// (the real-time engine logs from many threads) and costs a single relaxed
// atomic load when the level is disabled, so it can stay in hot paths.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace dpu {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

namespace log_detail {
/// Global minimum level; default Warn keeps tests and benches quiet.
extern std::atomic<int> g_level;
/// Sink for a fully formatted line (terminated, without trailing newline).
void emit(LogLevel level, const std::string& line);
}  // namespace log_detail

inline void set_log_level(LogLevel level) {
  log_detail::g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

[[nodiscard]] inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >=
         log_detail::g_level.load(std::memory_order_relaxed);
}

/// Parses "trace|debug|info|warn|error|off"; anything else leaves the level
/// unchanged.  Benches call this with the DPU_LOG environment variable.
void set_log_level_from_string(const std::string& name);

/// Builds one log line; emitted on destruction.  Usage:
///   DPU_LOG(kDebug, "s" << node << "/rp2p") << "retransmit seq=" << s;
class LogLine {
 public:
  LogLine(LogLevel level, std::string tag) : level_(level), tag_(std::move(tag)) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream os_;
};

}  // namespace dpu

/// Log macro: evaluates the stream expression only when the level is active.
#define DPU_LOG(level, tag)                              \
  if (!::dpu::log_enabled(::dpu::LogLevel::level)) {     \
  } else                                                 \
    ::dpu::LogLine(::dpu::LogLevel::level, (tag))
