// LinkTable<T> — dense per-directed-link (src, dst) storage.
//
// The engines keep several n×n link-indexed tables (per-link RNG
// substreams, per-link fault overrides, per-link packet sequence
// counters).  Before this helper each site hand-rolled the
// `src * world_size + dst` arithmetic with its own growth assumptions and
// no bounds checking; LinkTable centralizes the layout and asserts the
// bounds once.
//
// Layout is row-major by src, so one sender's links are contiguous — on
// the sharded simulator every row has a single writer (the shard owning
// `src`), which keeps concurrent per-link mutation race-free without
// locks.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/ids.hpp"

namespace dpu {

template <class T>
class LinkTable {
 public:
  LinkTable() = default;
  explicit LinkTable(std::size_t world_size) { reset(world_size); }

  /// (Re)initializes to an n×n table of default-constructed cells.
  void reset(std::size_t world_size) {
    n_ = world_size;
    cells_.assign(n_ * n_, T{});
  }

  /// (Re)initializes with `make(flat_index)` per cell, flat_index being
  /// `src * world_size + dst` — the per-link RNG substream convention.
  template <class Make>
  void reset(std::size_t world_size, Make&& make) {
    n_ = world_size;
    cells_.clear();
    cells_.reserve(n_ * n_);
    for (std::size_t i = 0; i < n_ * n_; ++i) {
      cells_.push_back(make(i));
    }
  }

  [[nodiscard]] T& at(NodeId src, NodeId dst) {
    assert(src < n_ && dst < n_ && "LinkTable: link index out of range");
    return cells_[static_cast<std::size_t>(src) * n_ + dst];
  }

  [[nodiscard]] const T& at(NodeId src, NodeId dst) const {
    assert(src < n_ && dst < n_ && "LinkTable: link index out of range");
    return cells_[static_cast<std::size_t>(src) * n_ + dst];
  }

  /// True until the first reset() — the lazy-allocation idiom
  /// LinkFaultTable uses to keep the no-faults fast path free.
  [[nodiscard]] bool empty() const { return cells_.empty(); }

  [[nodiscard]] std::size_t world_size() const { return n_; }

 private:
  std::size_t n_ = 0;
  std::vector<T> cells_;
};

}  // namespace dpu
