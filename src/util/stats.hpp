// Statistics helpers for benchmarks and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dpu {

/// Streaming mean/variance/min/max (Welford).  Cheap enough to keep per
/// time-bucket in the latency harness.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const OnlineStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(n_);
    const auto n2 = static_cast<double>(other.n_);
    mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return n_ ? min_ : 0.0;
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : 0.0;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact-percentile sample set.  The evaluation workloads produce at most a
/// few hundred thousand samples per series, so storing them outright is
/// simpler and more accurate than a sketch.
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
    stats_.add(x);
  }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const { return stats_.mean(); }
  [[nodiscard]] double stddev() const { return stats_.stddev(); }
  [[nodiscard]] double min() const { return stats_.min(); }
  [[nodiscard]] double max() const { return stats_.max(); }

  /// Percentile in [0,100]; linear interpolation between closest ranks.
  [[nodiscard]] double percentile(double p) {
    if (values_.empty()) return 0.0;
    sort_once();
    const double rank =
        (p / 100.0) * static_cast<double>(values_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  [[nodiscard]] double median() { return percentile(50.0); }

  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// Appends another sample set.  Percentiles are order-independent (the
  /// values get re-sorted) but mean/stddev come from OnlineStats merging —
  /// callers that need bit-reproducible output must merge in a fixed order.
  void merge(const Samples& other) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
    sorted_ = false;
    stats_.merge(other.stats_);
  }

 private:
  void sort_once() {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }

  std::vector<double> values_;
  OnlineStats stats_;
  bool sorted_ = false;
};

/// Fixed-width time-bucketed series: maps a timestamp to a bucket and
/// accumulates per-bucket statistics.  Used to regenerate Figure 5 (latency
/// as a function of time around a replacement).
class TimeSeries {
 public:
  /// `bucket_width` and timestamps share a unit (the sim uses nanoseconds).
  explicit TimeSeries(std::int64_t bucket_width) : width_(bucket_width) {}

  void add(std::int64_t t, double value) {
    const std::int64_t idx = t / width_;
    if (buckets_.size() <= static_cast<std::size_t>(idx)) {
      buckets_.resize(static_cast<std::size_t>(idx) + 1);
    }
    buckets_[static_cast<std::size_t>(idx)].add(value);
  }

  [[nodiscard]] std::int64_t bucket_width() const { return width_; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] const OnlineStats& bucket(std::size_t i) const {
    return buckets_[i];
  }
  [[nodiscard]] std::int64_t bucket_start(std::size_t i) const {
    return static_cast<std::int64_t>(i) * width_;
  }

  /// Bucket-wise merge of a series with the same bucket width.  Same
  /// ordering caveat as Samples::merge.
  void merge(const TimeSeries& other) {
    if (buckets_.size() < other.buckets_.size()) {
      buckets_.resize(other.buckets_.size());
    }
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
      buckets_[i].merge(other.buckets_[i]);
    }
  }

 private:
  std::int64_t width_;
  std::vector<OnlineStats> buckets_;
};

/// Formats a double with fixed decimals (benchmark tables).
[[nodiscard]] std::string fmt_fixed(double v, int decimals);

}  // namespace dpu
