// Identifier types shared across the whole middleware.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/bytes.hpp"

namespace dpu {

/// Identifies one machine/process, i.e. one protocol stack (paper §2: "a
/// module ... on a machine; the set of all modules located on a machine is
/// called a protocol stack").  Stacks are numbered 0..n-1.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = 0xFFFFFFFFu;

/// Globally unique id of an application message handed to atomic broadcast.
/// The pair (origin stack, per-origin counter) is unique without any
/// coordination, which Algorithm 1 needs so that re-issued messages can be
/// recognised and deduplicated across protocol versions.
struct MsgId {
  NodeId origin = kNoNode;
  std::uint64_t seq = 0;

  friend bool operator==(const MsgId&, const MsgId&) = default;
  friend auto operator<=>(const MsgId&, const MsgId&) = default;

  void encode(BufWriter& w) const {
    w.put_u32(origin);
    w.put_varint(seq);
  }

  static MsgId decode(BufReader& r) {
    MsgId id;
    id.origin = r.get_u32();
    id.seq = r.get_varint();
    return id;
  }

  [[nodiscard]] std::string str() const {
    return std::to_string(origin) + "#" + std::to_string(seq);
  }
};

struct MsgIdHash {
  std::size_t operator()(const MsgId& id) const noexcept {
    // Mix the two halves; splitmix-style finalizer.
    std::uint64_t x = (static_cast<std::uint64_t>(id.origin) << 40) ^ id.seq;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace dpu
