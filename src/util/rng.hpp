// Deterministic random number generation for the simulation engine.
//
// Reproducibility is a hard requirement: every benchmark figure and every
// property test is keyed by a single 64-bit seed, so the generator must be
// fully specified (no std::random_device, no unspecified distributions).
// We use xoshiro256** seeded via splitmix64, and implement the few
// distributions we need (uniform, bernoulli, exponential) explicitly.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

namespace dpu {

/// splitmix64 — used to expand one seed into generator state and to derive
/// independent per-stack streams from a world seed.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, and with a
/// `jump()`-free substream scheme: substreams are derived by hashing the
/// parent seed with a stream index through splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  /// Derives an independent generator for (seed, stream) pairs; used to give
  /// every stack and every network link its own stream so that adding a
  /// consumer does not perturb the draws seen by others.
  [[nodiscard]] static Rng substream(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t sm = seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
    return Rng(splitmix64(sm));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// simplified to rejection sampling on the top bits).
  std::uint64_t uniform_u64(std::uint64_t bound) {
    assert(bound > 0);
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next_u64()
                                                    : uniform_u64(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Exponential with the given mean (inter-arrival times of Poisson load).
  double exponential(double mean) {
    double u;
    do {
      u = uniform01();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Fisher–Yates shuffle of an indexable container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace dpu
