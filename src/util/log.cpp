#include "util/log.hpp"

#include <cstdio>
#include <mutex>

namespace dpu {
namespace log_detail {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

namespace {
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void emit(LogLevel level, const std::string& line) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), line.c_str());
}

}  // namespace log_detail

void set_log_level_from_string(const std::string& name) {
  if (name == "trace") set_log_level(LogLevel::kTrace);
  else if (name == "debug") set_log_level(LogLevel::kDebug);
  else if (name == "info") set_log_level(LogLevel::kInfo);
  else if (name == "warn") set_log_level(LogLevel::kWarn);
  else if (name == "error") set_log_level(LogLevel::kError);
  else if (name == "off") set_log_level(LogLevel::kOff);
}

LogLine::~LogLine() {
  if (!log_enabled(level_)) return;
  log_detail::emit(level_, tag_ + ": " + os_.str());
}

}  // namespace dpu
