// CT — Chandra–Toueg <>S consensus with rotating coordinator (paper
// Figure 4: "the CT module provides a distributed consensus service using
// the Chandra-Toueg <>S consensus algorithm based on a rotating
// coordinator").
//
// Round structure (round r, coordinator c = r mod n):
//   Phase 1  every participant sends its (ts, estimate) to c
//            (skipped in round 0: all timestamps are 0, so c may use its own
//            estimate — the standard optimization, making the failure-free
//            decision latency 3 one-way hops: PROPOSE, ACK, DECIDE).
//   Phase 2  c picks, among a majority of estimates, one with maximal ts and
//            PROPOSEs it to all.
//   Phase 3  a participant that receives the proposal adopts it
//            (estimate := v, ts := r) and ACKs; a participant whose failure
//            detector suspects c NACKs and advances to round r+1.
//   Phase 4  c decides (reliable-broadcasts DECIDE) upon a majority of ACKs;
//            upon a majority of replies containing a NACK it ABORTs the
//            round so waiting participants advance.
//
// Deviations from the textbook algorithm, both standard in practical
// implementations (cf. Urbán's evaluation methodology [19]):
//  * after ACKing, a participant stays in round r until DECIDE, ABORT,
//    suspicion of c, or a round timeout — instead of free-running through
//    rounds ahead of the decision;
//  * a per-round timeout (doubling, capped) backs up the failure detector,
//    making every round close at every correct stack.
// Safety is untouched (the ts-locking argument is unchanged); both changes
// only affect when rounds advance.
#pragma once

#include <map>

#include "consensus/consensus.hpp"

namespace dpu {

struct CtConsensusConfig {
  Duration round_timeout = 500 * kMillisecond;
  Duration round_timeout_max = 4 * kSecond;
  bool skip_phase1_round0 = true;
};

class CtConsensusModule final : public ConsensusBase, public FdListener {
 public:
  using Config = CtConsensusConfig;

  static constexpr char kProtocolName[] = "consensus.ct";

  static CtConsensusModule* create(Stack& stack,
                                   const std::string& service = kConsensusService,
                                   Config config = Config{},
                                   const std::string& instance_name = "");

  /// Registers "consensus.ct": requires rp2p + rbcast + fd; ModuleParams:
  /// "instance".
  static void register_protocol(ProtocolLibrary& library,
                                Config config = Config{});

  CtConsensusModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // FdListener (round-advance fast path)
  void on_suspect(NodeId node) override;
  void on_trust(NodeId /*node*/) override {}

  [[nodiscard]] std::uint64_t rounds_started() const { return rounds_started_; }
  [[nodiscard]] std::uint64_t rounds_aborted() const { return rounds_aborted_; }

 protected:
  void algo_propose(const Key& key, const Bytes& value) override;
  void algo_on_decided(const Key& key) override;
  void on_peer_message(NodeId from, const Payload& data) override;

 private:
  enum MsgType : std::uint8_t {
    kEstimate = 0,
    kPropose = 1,
    kAck = 2,
    kNack = 3,
    kAbort = 4,
  };

  /// Coordinator-side state of one round.
  struct CoordRound {
    std::map<NodeId, std::pair<std::uint64_t, Bytes>> estimates;
    bool proposed = false;
    Bytes proposal;
    std::set<NodeId> acks;
    std::set<NodeId> nacks;
    bool closed = false;  // decided or aborted
  };

  /// Participant + coordinator state of one instance.
  struct Inst {
    bool started = false;       // local propose() happened
    bool has_estimate = false;
    Bytes estimate;
    std::uint64_t ts = 0;       // round of last estimate adoption
    std::uint64_t round = 0;
    bool awaiting_proposal = false;  // phase 3 (vs waiting for decide)
    bool entered = false;            // enter_round ran for `round`
    std::map<std::uint64_t, CoordRound> coord;       // per-round coord state
    std::map<std::uint64_t, Bytes> early_proposals;  // proposals for future rounds
    TimerId round_timer = kNoTimer;
  };

  [[nodiscard]] NodeId coord_of(std::uint64_t round) const {
    return static_cast<NodeId>(round % env().world_size());
  }

  Inst& inst(const Key& key) { return instances_[key]; }

  void enter_round(const Key& key, Inst& s);
  void advance_round(const Key& key, Inst& s, std::uint64_t to_round);
  void maybe_coordinate(const Key& key, Inst& s, std::uint64_t round);
  void handle_estimate(NodeId from, const Key& key, std::uint64_t round,
                       std::uint64_t ts, Bytes value);
  void handle_proposal(const Key& key, std::uint64_t round, Bytes value);
  void handle_reply(NodeId from, const Key& key, std::uint64_t round, bool ack);
  void handle_abort(const Key& key, std::uint64_t round);
  void on_coordinator_unreachable(const Key& key, Inst& s);
  void arm_round_timer(const Key& key, Inst& s);
  void cancel_round_timer(Inst& s);

  void send_typed(NodeId dst, MsgType type, const Key& key,
                  std::uint64_t round, std::uint64_t ts, const Bytes* value);

  Config config_;
  std::map<Key, Inst> instances_;
  std::uint64_t rounds_started_ = 0;
  std::uint64_t rounds_aborted_ = 0;
};

}  // namespace dpu
