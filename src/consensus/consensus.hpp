// Consensus service interface and the shared machinery of its providers.
//
// The consensus service is multi-stream and multi-instance:
//  * a *stream* isolates one client protocol instance (each dynamically
//    created ABcast module derives a fresh stream id from its instance
//    name, so two ABcast versions coexisting during a replacement never
//    collide in instance numbering);
//  * an *instance* is one consensus execution; clients use them sequentially
//    (instance k+1 proposed only after k decided), which the replacement
//    algorithms rely on.
//
// Decisions are disseminated with reliable broadcast, so a decision reached
// anywhere reaches every correct stack, including stacks that never proposed
// (uniform agreement of the service).  Decisions for streams with no
// registered handler are buffered and released when the handler binds —
// the same late-module mechanism as RP2P pending channels.
#pragma once

#include <map>
#include <vector>

#include "core/module.hpp"
#include "core/stack.hpp"
#include "fd/fd.hpp"
#include "net/services.hpp"

namespace dpu {

inline constexpr char kConsensusService[] = "consensus";

using StreamId = std::uint64_t;
using InstanceId = std::uint64_t;
using DecisionHandler =
    std::function<void(InstanceId instance, const Bytes& value)>;

/// Call interface of the consensus service.
///
/// Properties (assuming a majority of stacks stay correct):
///  * Validity — a decided value was proposed by some stack.
///  * Uniform agreement — no two stacks decide differently for the same
///    (stream, instance).
///  * Uniform integrity — at most one decision per (stream, instance).
///  * Termination — if a correct stack proposes, every correct stack
///    eventually decides (given the <>S failure-detector behaviour).
struct ConsensusApi {
  virtual ~ConsensusApi() = default;
  virtual void propose(StreamId stream, InstanceId instance,
                       const Bytes& value) = 0;
  virtual void consensus_bind_stream(StreamId stream,
                                     DecisionHandler handler) = 0;
  virtual void consensus_release_stream(StreamId stream) = 0;

  /// Straggler catch-up (crash-recovery support): asks the peers to resend
  /// every decision of `stream` with instance >= `from_instance` that they
  /// have settled.  Clients call this when they observe a decision gap (a
  /// decided instance far ahead of the next one they can apply) — which,
  /// with decisions disseminated by fire-once reliable broadcast, happens
  /// exactly when the client missed decisions it can never receive again:
  /// after recovering from a crash, or after rejoining from a partition so
  /// long that peers already garbage-collected the retransmission state.
  /// Resent decisions arrive through the normal decision path (exactly-once
  /// per instance still holds).
  virtual void consensus_sync(StreamId stream, InstanceId from_instance) = 0;
};

/// Shared plumbing of consensus providers: stream handler registry, decided
/// cache, decision dissemination (via rbcast) and exactly-once delivery.
/// Subclasses implement the per-instance agreement algorithm.
class ConsensusBase : public Module, public ConsensusApi {
 public:
  ConsensusBase(Stack& stack, std::string instance_name);

  void start() override;
  void stop() override;

  // ConsensusApi
  void propose(StreamId stream, InstanceId instance,
               const Bytes& value) final;
  void consensus_bind_stream(StreamId stream, DecisionHandler handler) final;
  void consensus_release_stream(StreamId stream) final;
  void consensus_sync(StreamId stream, InstanceId from_instance) final;

  [[nodiscard]] std::uint64_t decisions_delivered() const {
    return decisions_delivered_;
  }
  /// consensus_sync requests re-sent to a rotated peer after the previous
  /// target went unanswered.
  [[nodiscard]] std::uint64_t sync_retries() const { return sync_retries_; }

  /// Unanswered-sync retry cadence; each retry rotates to the next
  /// fd-trusted peer (the one targeted peer can crash before responding).
  static constexpr Duration kSyncRetryInterval = 250 * kMillisecond;
  /// Rounds through the candidate list before giving up (the straggler path
  /// still covers a gap that outlives every retry).
  static constexpr std::uint32_t kSyncRetryRounds = 3;

 protected:
  struct Key {
    StreamId stream;
    InstanceId instance;
    friend auto operator<=>(const Key&, const Key&) = default;
  };

  /// Subclass algorithm entry: run consensus for `key` with initial value
  /// `value`.  Called at most once per key, never after a decision.
  virtual void algo_propose(const Key& key, const Bytes& value) = 0;

  /// Subclass cleanup hook, called once when `key` reaches a decision.
  virtual void algo_on_decided(const Key& key) = 0;

  /// Subclass call: a coordinator concluded `value` for `key`.  Disseminates
  /// via reliable broadcast; every stack (self included) learns the decision
  /// through on_decide_message.
  void broadcast_decide(const Key& key, const Bytes& value);

  [[nodiscard]] bool is_decided(const Key& key) const {
    return decided_.count(key) != 0;
  }

  /// Subclasses call this when an algorithm message arrives for an
  /// already-decided key.  If the sender is talking about an instance at
  /// least two behind the stream's decided frontier, it can only be a
  /// straggler that missed the (fire-once) DECIDE broadcasts — a recovered
  /// stack replaying from instance 1, or a peer returning from a long
  /// partition — so this stack resends, point-to-point, every decision it
  /// holds for the stream from that instance on.  The margin keeps the
  /// steady state silent: late ACKs/votes for the *just*-decided instance
  /// (which race the DECIDE on every consensus round) never trigger it.
  void maybe_catch_up_straggler(NodeId from, const Key& key);

  [[nodiscard]] std::size_t majority() const {
    return env().world_size() / 2 + 1;
  }

  /// Peer channel for algorithm messages, unique per module instance.
  [[nodiscard]] ChannelId peer_channel() const { return peer_channel_; }

  /// Subclass receive hook for algorithm messages on peer_channel().
  virtual void on_peer_message(NodeId from, const Payload& data) = 0;

  /// Sends an algorithm message to one stack (self included; self-sends go
  /// through the same transport path).
  void send_peer(NodeId dst, Payload data);

  ServiceRef<Rp2pApi> rp2p_;
  ServiceRef<RbcastApi> rbcast_;
  ServiceRef<FdApi> fd_;

 private:
  void on_decide_message(NodeId origin, const Payload& data);
  void on_sync_message(NodeId from, const Payload& data);
  /// Shared ingress of decisions, whether broadcast (decide channel) or
  /// resent point-to-point (sync channel): exactly-once, then deliver.
  void ingest_decide(const Key& key, const Bytes& value);
  void deliver_decision(const Key& key, const Bytes& value);
  void resend_decided(NodeId dst, StreamId stream, InstanceId from_instance);

  /// An unanswered consensus_sync, retried against rotating trusted peers
  /// until any decision of its stream arrives (progress) or the attempt
  /// budget runs out.
  struct SyncPending {
    InstanceId from_instance = 0;
    std::uint32_t attempt = 0;
  };
  void send_sync_request(StreamId stream, const SyncPending& pending);
  [[nodiscard]] NodeId pick_sync_target(std::uint32_t attempt) const;
  void on_sync_retry_tick();

  ChannelId peer_channel_;
  ChannelId decide_channel_;
  /// Point-to-point catch-up channel (sync requests + resent decisions).
  ChannelId sync_channel_;
  std::map<StreamId, DecisionHandler> streams_;
  std::map<Key, Bytes> decided_;
  /// Highest decided instance per stream — the frontier that tells a late
  /// algorithm message from a genuine straggler.
  std::map<StreamId, InstanceId> max_decided_;
  /// Resend dedup: a straggler returning from a partition flushes *many*
  /// late messages at once (1+ per instance and round it worked through
  /// alone), and without this each of them would trigger a full-history
  /// resend.  One resend per (peer, stream) covers everything up to the
  /// frontier; another is only owed after the frontier advances or the
  /// peer asks about an even older instance.
  struct ResendMark {
    InstanceId from = 0;
    InstanceId through = 0;
  };
  std::map<std::pair<NodeId, StreamId>, ResendMark> resent_;
  std::map<StreamId, std::vector<std::pair<InstanceId, Bytes>>>
      pending_decisions_;
  std::map<StreamId, SyncPending> pending_syncs_;
  TimerSlot sync_retry_timer_;
  std::uint64_t sync_retries_ = 0;
  std::uint64_t decisions_delivered_ = 0;
};

}  // namespace dpu
