#include "consensus/mr_consensus.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace dpu {

MrConsensusModule* MrConsensusModule::create(Stack& stack,
                                             const std::string& service,
                                             Config config,
                                             const std::string& instance_name) {
  const std::string instance = instance_name.empty() ? service : instance_name;
  auto* m = stack.emplace_module<MrConsensusModule>(stack, instance, config);
  stack.bind<ConsensusApi>(service, m, m);
  return m;
}

void MrConsensusModule::register_protocol(ProtocolLibrary& library,
                                          Config config) {
  library.register_protocol(ProtocolInfo{
      .protocol = kProtocolName,
      .default_service = kConsensusService,
      .requires_services = {kRp2pService, kRbcastService, kFdService},
      .factory = [config](Stack& stack, const std::string& provide_as,
                          const ModuleParams& params) -> Module* {
        return create(stack, provide_as, config, params.get("instance"));
      }});
}

MrConsensusModule::MrConsensusModule(Stack& stack, std::string instance_name,
                                     Config config)
    : ConsensusBase(stack, std::move(instance_name)), config_(config) {}

void MrConsensusModule::start() {
  ConsensusBase::start();
  stack().listen<FdListener>(kFdService, this, this);
}

void MrConsensusModule::stop() {
  stack().unlisten<FdListener>(kFdService, this);
  for (auto& [key, s] : instances_) cancel_round_timer(s);
  instances_.clear();
  ConsensusBase::stop();
}

// Wire: u8 type | varint stream | varint instance | varint round |
//       u8 has_value [blob value]
void MrConsensusModule::send_typed(NodeId dst, MsgType type, const Key& key,
                                   std::uint64_t round,
                                   const std::optional<Bytes>& value) {
  BufWriter w((value ? value->size() : 0) + 32);
  w.put_u8(type);
  w.put_varint(key.stream);
  w.put_varint(key.instance);
  w.put_varint(round);
  w.put_bool(value.has_value());
  if (value) w.put_blob(*value);
  send_peer(dst, w.take_payload());
}

void MrConsensusModule::on_peer_message(NodeId from,
                                          const Payload& data) {
  try {
    BufReader r(data);
    const auto type = static_cast<MsgType>(r.get_u8());
    Key key{};
    key.stream = r.get_varint();
    key.instance = r.get_varint();
    const std::uint64_t round = r.get_varint();
    std::optional<Bytes> value;
    if (r.get_bool()) value = r.get_blob();
    r.expect_done();
    if (is_decided(key)) {
      // Settled; resend decisions to senders far behind the frontier (see
      // ConsensusBase::maybe_catch_up_straggler).
      maybe_catch_up_straggler(from, key);
      return;
    }
    switch (type) {
      case kEst:
        if (!value) throw CodecError("EST without value");
        handle_est(key, round, std::move(*value));
        break;
      case kVote:
        handle_vote(from, key, round, std::move(value));
        break;
      default:
        throw CodecError("unknown mr message type");
    }
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "mr") << "s" << env().node_id()
                         << " malformed message from s" << from << ": "
                         << e.what();
  }
}

void MrConsensusModule::algo_propose(const Key& key, const Bytes& value) {
  Inst& s = inst(key);
  if (s.started) return;
  s.started = true;
  if (!s.has_estimate) {
    s.estimate = value;
    s.has_estimate = true;
  }
  if (!s.entered) {
    enter_round(key, s);
  } else {
    // We were participating passively; now that we hold an estimate we can
    // coordinate the current round if it is ours.
    maybe_send_est(key, s);
  }
}

void MrConsensusModule::enter_round(const Key& key, Inst& s) {
  s.entered = true;
  arm_round_timer(key, s);
  maybe_send_est(key, s);

  RoundState& rs = s.rounds[s.round];
  // An EST may have arrived before we entered this round.
  if (!rs.voted && rs.est) {
    cast_vote(key, s, *rs.est);
  } else if (!rs.voted) {
    FdApi* fd = fd_.try_get();
    const NodeId c = coord_of(s.round);
    if (fd != nullptr && c != env().node_id() && fd->fd_suspects(c)) {
      cast_vote(key, s, std::nullopt);
    }
  }
  // Votes may have accumulated while we were in earlier rounds.
  maybe_complete_round(key, s);
}

void MrConsensusModule::maybe_send_est(const Key& key, Inst& s) {
  if (coord_of(s.round) != env().node_id()) return;
  if (!s.started || !s.has_estimate) return;
  RoundState& rs = s.rounds[s.round];
  if (rs.est_sent) return;
  rs.est_sent = true;
  for (NodeId dst = 0; dst < env().world_size(); ++dst) {
    send_typed(dst, kEst, key, s.round, s.estimate);
  }
}

void MrConsensusModule::cast_vote(const Key& key, Inst& s,
                                  std::optional<Bytes> value) {
  RoundState& rs = s.rounds[s.round];
  if (rs.voted) return;
  rs.voted = true;
  for (NodeId dst = 0; dst < env().world_size(); ++dst) {
    send_typed(dst, kVote, key, s.round, value);
  }
}

void MrConsensusModule::handle_est(const Key& key, std::uint64_t round,
                                   Bytes value) {
  Inst& s = inst(key);
  RoundState& rs = s.rounds[round];
  rs.est = std::move(value);
  if (!s.entered) {
    // Passive participant drawn in by instance traffic: join at round 0 and
    // let stored ESTs/votes replay it forward.
    enter_round(key, s);
    return;
  }
  if (round == s.round && !rs.voted) cast_vote(key, s, *rs.est);
}

void MrConsensusModule::handle_vote(NodeId from, const Key& key,
                                    std::uint64_t round,
                                    std::optional<Bytes> value) {
  Inst& s = inst(key);
  RoundState& rs = s.rounds[round];
  rs.votes.emplace(from, std::move(value));
  if (!s.entered) {
    enter_round(key, s);
    return;
  }
  if (round == s.round) maybe_complete_round(key, s);
}

void MrConsensusModule::maybe_complete_round(const Key& key, Inst& s) {
  RoundState& rs = s.rounds[s.round];
  if (rs.completed || !s.entered) return;
  if (!rs.voted) return;  // must contribute before counting (n-f collection)
  if (rs.votes.size() < majority()) return;
  rs.completed = true;
  ++rounds_completed_;

  // Evaluate exactly the votes present at completion time.
  const Bytes* v = nullptr;
  std::size_t value_votes = 0;
  for (const auto& [node, vote] : rs.votes) {
    if (vote) {
      v = &*vote;  // all non-⊥ votes of a round carry the coordinator value
      ++value_votes;
    }
  }
  if (v != nullptr) {
    s.estimate = *v;
    s.has_estimate = true;
    if (value_votes == rs.votes.size()) {
      // Unanimous majority: decide.
      broadcast_decide(key, s.estimate);
      return;  // instance state is torn down on DECIDE delivery
    }
  }
  cancel_round_timer(s);
  ++s.round;
  enter_round(key, s);
}

void MrConsensusModule::on_suspect(NodeId node) {
  for (auto& [key, s] : instances_) {
    if (is_decided(key) || !s.entered) continue;
    if (coord_of(s.round) != node) continue;
    RoundState& rs = s.rounds[s.round];
    if (!rs.voted) cast_vote(key, s, std::nullopt);
  }
}

void MrConsensusModule::arm_round_timer(const Key& key, Inst& s) {
  cancel_round_timer(s);
  const int shift = static_cast<int>(std::min<std::uint64_t>(s.round, 6));
  const Duration timeout =
      std::min(config_.round_timeout << shift, config_.round_timeout_max);
  s.round_timer = env().set_timer(timeout, [this, key]() {
    auto it = instances_.find(key);
    if (it == instances_.end() || is_decided(key)) return;
    Inst& state = it->second;
    state.round_timer = kNoTimer;
    RoundState& rs = state.rounds[state.round];
    if (!rs.voted) {
      // Give up on the coordinator for this round.
      cast_vote(key, state, std::nullopt);
      maybe_complete_round(key, state);
    }
    // Keep waiting for the majority of votes (guaranteed from correct
    // stacks); re-arm so a quiet network is re-checked.
    if (!rs.completed) arm_round_timer(key, state);
  });
}

void MrConsensusModule::cancel_round_timer(Inst& s) {
  if (s.round_timer != kNoTimer) {
    env().cancel_timer(s.round_timer);
    s.round_timer = kNoTimer;
  }
}

void MrConsensusModule::algo_on_decided(const Key& key) {
  auto it = instances_.find(key);
  if (it == instances_.end()) return;
  cancel_round_timer(it->second);
  instances_.erase(it);
}

}  // namespace dpu
