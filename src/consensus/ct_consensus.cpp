#include "consensus/ct_consensus.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace dpu {

CtConsensusModule* CtConsensusModule::create(Stack& stack,
                                             const std::string& service,
                                             Config config,
                                             const std::string& instance_name) {
  const std::string instance = instance_name.empty() ? service : instance_name;
  auto* m = stack.emplace_module<CtConsensusModule>(stack, instance, config);
  stack.bind<ConsensusApi>(service, m, m);
  return m;
}

void CtConsensusModule::register_protocol(ProtocolLibrary& library,
                                          Config config) {
  library.register_protocol(ProtocolInfo{
      .protocol = kProtocolName,
      .default_service = kConsensusService,
      .requires_services = {kRp2pService, kRbcastService, kFdService},
      .factory = [config](Stack& stack, const std::string& provide_as,
                          const ModuleParams& params) -> Module* {
        return create(stack, provide_as, config, params.get("instance"));
      }});
}

CtConsensusModule::CtConsensusModule(Stack& stack, std::string instance_name,
                                     Config config)
    : ConsensusBase(stack, std::move(instance_name)), config_(config) {}

void CtConsensusModule::start() {
  ConsensusBase::start();
  stack().listen<FdListener>(kFdService, this, this);
}

void CtConsensusModule::stop() {
  stack().unlisten<FdListener>(kFdService, this);
  for (auto& [key, s] : instances_) cancel_round_timer(s);
  instances_.clear();
  ConsensusBase::stop();
}

// ---------------------------------------------------------------------------
// Wire format: u8 type | varint stream | varint instance | varint round |
//              [varint ts] [blob value]   (fields by type)
// ---------------------------------------------------------------------------

void CtConsensusModule::send_typed(NodeId dst, MsgType type, const Key& key,
                                   std::uint64_t round, std::uint64_t ts,
                                   const Bytes* value) {
  BufWriter w((value != nullptr ? value->size() : 0) + 32);
  w.put_u8(type);
  w.put_varint(key.stream);
  w.put_varint(key.instance);
  w.put_varint(round);
  if (type == kEstimate) w.put_varint(ts);
  if (type == kEstimate || type == kPropose) {
    assert(value != nullptr);
    w.put_blob(*value);
  }
  send_peer(dst, w.take_payload());
}

void CtConsensusModule::on_peer_message(NodeId from,
                                          const Payload& data) {
  try {
    BufReader r(data);
    const auto type = static_cast<MsgType>(r.get_u8());
    Key key{};
    key.stream = r.get_varint();
    key.instance = r.get_varint();
    const std::uint64_t round = r.get_varint();
    if (is_decided(key)) {
      // Settled.  Racing stragglers of the current round learn via the
      // DECIDE broadcast; a sender far behind the frontier lost it and gets
      // the decisions resent (crash-recovery / partition-rejoin catch-up).
      maybe_catch_up_straggler(from, key);
      return;
    }
    switch (type) {
      case kEstimate: {
        const std::uint64_t ts = r.get_varint();
        Bytes value = r.get_blob();
        r.expect_done();
        handle_estimate(from, key, round, ts, std::move(value));
        break;
      }
      case kPropose: {
        Bytes value = r.get_blob();
        r.expect_done();
        handle_proposal(key, round, std::move(value));
        break;
      }
      case kAck:
        r.expect_done();
        handle_reply(from, key, round, /*ack=*/true);
        break;
      case kNack:
        r.expect_done();
        handle_reply(from, key, round, /*ack=*/false);
        break;
      case kAbort:
        r.expect_done();
        handle_abort(key, round);
        break;
      default:
        throw CodecError("unknown ct message type");
    }
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "ct") << "s" << env().node_id()
                         << " malformed message from s" << from << ": "
                         << e.what();
  }
}

// ---------------------------------------------------------------------------
// Participant side
// ---------------------------------------------------------------------------

void CtConsensusModule::algo_propose(const Key& key, const Bytes& value) {
  Inst& s = inst(key);
  if (s.started) return;  // duplicate propose
  s.started = true;
  if (!s.has_estimate) {
    s.estimate = value;
    s.has_estimate = true;
    s.ts = 0;
  }
  if (!s.entered) {
    enter_round(key, s);
  } else if (coord_of(s.round) == env().node_id()) {
    // We joined the instance passively (adopted a proposal) before proposing
    // locally; now that we have started we may act as round coordinator.
    maybe_coordinate(key, s, s.round);
  }
}

void CtConsensusModule::enter_round(const Key& key, Inst& s) {
  s.entered = true;
  s.awaiting_proposal = true;
  ++rounds_started_;
  arm_round_timer(key, s);
  const NodeId c = coord_of(s.round);
  const bool skip_phase1 = s.round == 0 && config_.skip_phase1_round0;
  if (!skip_phase1 && s.has_estimate) {
    send_typed(c, kEstimate, key, s.round, s.ts, &s.estimate);
  }
  if (c == env().node_id()) maybe_coordinate(key, s, s.round);

  // A proposal for this round may have arrived while we were behind.
  auto it = s.early_proposals.find(s.round);
  if (it != s.early_proposals.end()) {
    Bytes v = std::move(it->second);
    s.early_proposals.erase(it);
    handle_proposal(key, s.round, std::move(v));
    return;
  }
  // The coordinator may already be suspected.
  FdApi* fd = fd_.try_get();
  if (fd != nullptr && c != env().node_id() && fd->fd_suspects(c)) {
    on_coordinator_unreachable(key, s);
  }
}

void CtConsensusModule::advance_round(const Key& key, Inst& s,
                                      std::uint64_t to_round) {
  assert(to_round > s.round || (to_round == s.round && !s.entered));
  s.round = to_round;
  enter_round(key, s);
}

void CtConsensusModule::handle_proposal(const Key& key, std::uint64_t round,
                                        Bytes value) {
  Inst& s = inst(key);
  if (round < s.round) return;  // stale round
  if (round > s.round) {
    // We are behind: the system reached round `round`, so rounds below it
    // cannot decide at us anymore — jump forward and process the proposal.
    cancel_round_timer(s);
    s.early_proposals[round] = std::move(value);
    advance_round(key, s, round);
    return;
  }
  if (!s.entered) {
    // Passive participant (no local propose yet): join directly at the
    // proposal's round and process it from the early-proposal buffer.
    s.early_proposals[round] = std::move(value);
    s.round = round;
    enter_round(key, s);
    return;
  }
  if (!s.awaiting_proposal) return;  // already acked or nacked this round
  // Phase 3: adopt and ack.
  s.estimate = std::move(value);
  s.has_estimate = true;
  s.ts = round;
  s.awaiting_proposal = false;
  send_typed(coord_of(round), kAck, key, round, 0, nullptr);
  // Stay in this round awaiting DECIDE / ABORT / suspicion / timeout.
}

void CtConsensusModule::on_coordinator_unreachable(const Key& key, Inst& s) {
  if (s.awaiting_proposal) {
    send_typed(coord_of(s.round), kNack, key, s.round, 0, nullptr);
    s.awaiting_proposal = false;
  }
  cancel_round_timer(s);
  advance_round(key, s, s.round + 1);
}

void CtConsensusModule::handle_abort(const Key& key, std::uint64_t round) {
  Inst& s = inst(key);
  if (round < s.round) return;
  cancel_round_timer(s);
  const std::uint64_t target = round + 1;
  s.awaiting_proposal = false;
  advance_round(key, s, target);
}

void CtConsensusModule::on_suspect(NodeId node) {
  // Fast path round advance: every instance currently waiting on `node` as
  // its round coordinator moves on.  Iterate over keys defensively — the
  // handlers mutate instance state but never erase entries.
  for (auto& [key, s] : instances_) {
    if (is_decided(key)) continue;
    if (!s.entered) continue;
    if (coord_of(s.round) != node) continue;
    on_coordinator_unreachable(key, s);
  }
}

void CtConsensusModule::arm_round_timer(const Key& key, Inst& s) {
  cancel_round_timer(s);
  const int shift = static_cast<int>(std::min<std::uint64_t>(s.round, 6));
  const Duration timeout =
      std::min(config_.round_timeout << shift, config_.round_timeout_max);
  s.round_timer = env().set_timer(timeout, [this, key]() {
    auto it = instances_.find(key);
    if (it == instances_.end() || is_decided(key)) return;
    Inst& state = it->second;
    state.round_timer = kNoTimer;
    // Timeout backstop: treat like a suspicion of the round coordinator.
    DPU_LOG(kDebug, "ct") << "s" << env().node_id() << " round timeout"
                          << " stream=" << key.stream
                          << " inst=" << key.instance
                          << " round=" << state.round;
    on_coordinator_unreachable(key, state);
  });
}

void CtConsensusModule::cancel_round_timer(Inst& s) {
  if (s.round_timer != kNoTimer) {
    env().cancel_timer(s.round_timer);
    s.round_timer = kNoTimer;
  }
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

void CtConsensusModule::handle_estimate(NodeId from, const Key& key,
                                        std::uint64_t round, std::uint64_t ts,
                                        Bytes value) {
  Inst& s = inst(key);
  CoordRound& cr = s.coord[round];
  cr.estimates[from] = {ts, std::move(value)};
  maybe_coordinate(key, s, round);
}

void CtConsensusModule::maybe_coordinate(const Key& key, Inst& s,
                                         std::uint64_t round) {
  if (coord_of(round) != env().node_id()) return;
  CoordRound& cr = s.coord[round];
  if (cr.proposed || cr.closed) return;

  if (round == 0 && config_.skip_phase1_round0) {
    // Round-0 optimization: all timestamps are 0, any proposer's own
    // estimate is a legal pick — but only once we have one.
    if (!s.started || !s.has_estimate) return;
    cr.proposal = s.estimate;
  } else {
    // Include our own estimate alongside received ones.
    if (s.has_estimate && s.entered && s.round == round) {
      cr.estimates[env().node_id()] = {s.ts, s.estimate};
    }
    if (cr.estimates.size() < majority()) return;
    // Phase 2: pick an estimate with maximal timestamp.
    const std::pair<std::uint64_t, Bytes>* best = nullptr;
    for (const auto& [node, entry] : cr.estimates) {
      if (best == nullptr || entry.first > best->first) best = &entry;
    }
    cr.proposal = best->second;
  }
  cr.proposed = true;
  for (NodeId dst = 0; dst < env().world_size(); ++dst) {
    send_typed(dst, kPropose, key, round, 0, &cr.proposal);
  }
}

void CtConsensusModule::handle_reply(NodeId from, const Key& key,
                                     std::uint64_t round, bool ack) {
  Inst& s = inst(key);
  CoordRound& cr = s.coord[round];
  if (cr.closed || !cr.proposed) return;
  if (ack) {
    cr.acks.insert(from);
  } else {
    cr.nacks.insert(from);
  }
  if (cr.acks.size() >= majority()) {
    // Phase 4: decide.
    cr.closed = true;
    broadcast_decide(key, cr.proposal);
    return;
  }
  if (!cr.nacks.empty() && cr.acks.size() + cr.nacks.size() >= majority()) {
    // The round can no longer produce a timely decision; release waiting
    // participants (see header: liveness addition to the textbook protocol).
    cr.closed = true;
    ++rounds_aborted_;
    for (NodeId dst = 0; dst < env().world_size(); ++dst) {
      send_typed(dst, kAbort, key, round, 0, nullptr);
    }
  }
}

void CtConsensusModule::algo_on_decided(const Key& key) {
  auto it = instances_.find(key);
  if (it == instances_.end()) return;
  cancel_round_timer(it->second);
  instances_.erase(it);
}

}  // namespace dpu
