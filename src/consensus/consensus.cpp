#include "consensus/consensus.hpp"

#include "util/log.hpp"

namespace dpu {

namespace {

/// Sync-channel message types.  Decisions resent point-to-point reuse the
/// decide-record layout after the tag byte.
enum SyncMsg : std::uint8_t { kSyncRequest = 0, kSyncDecide = 1 };

}  // namespace

ConsensusBase::ConsensusBase(Stack& stack, std::string instance_name)
    : Module(stack, std::move(instance_name)),
      rp2p_(stack.require<Rp2pApi>(kRp2pService)),
      rbcast_(stack.require<RbcastApi>(kRbcastService)),
      fd_(stack.require<FdApi>(kFdService)),
      peer_channel_(fnv1a64(Module::instance_name() + "/msg")),
      decide_channel_(fnv1a64(Module::instance_name() + "/dec")),
      sync_channel_(fnv1a64(Module::instance_name() + "/sync")),
      sync_retry_timer_(stack.host()) {}

void ConsensusBase::start() {
  rp2p_.call([this](Rp2pApi& rp2p) {
    rp2p.rp2p_bind_channel(peer_channel_,
                           [this](NodeId from, const Payload& data) {
                             on_peer_message(from, data);
                           });
    rp2p.rp2p_bind_channel(sync_channel_,
                           [this](NodeId from, const Payload& data) {
                             on_sync_message(from, data);
                           });
  });
  rbcast_.call([this](RbcastApi& rbcast) {
    rbcast.rbcast_bind_channel(decide_channel_,
                               [this](NodeId origin, const Payload& data) {
                                 on_decide_message(origin, data);
                               });
  });
}

void ConsensusBase::stop() {
  rp2p_.call([this](Rp2pApi& rp2p) {
    rp2p.rp2p_release_channel(peer_channel_);
    rp2p.rp2p_release_channel(sync_channel_);
  });
  rbcast_.call(
      [this](RbcastApi& rbcast) { rbcast.rbcast_release_channel(decide_channel_); });
  streams_.clear();
  pending_decisions_.clear();
  pending_syncs_.clear();
  sync_retry_timer_.cancel();
}

void ConsensusBase::propose(StreamId stream, InstanceId instance,
                            const Bytes& value) {
  const Key key{stream, instance};
  auto it = decided_.find(key);
  if (it != decided_.end()) {
    // Late proposal for a settled instance: the proposer already received
    // (or will receive) the decision via the decide channel; nothing to do.
    return;
  }
  algo_propose(key, value);
}

void ConsensusBase::consensus_bind_stream(StreamId stream,
                                          DecisionHandler handler) {
  streams_[stream] = std::move(handler);
  auto it = pending_decisions_.find(stream);
  if (it == pending_decisions_.end()) return;
  auto queued = std::move(it->second);
  pending_decisions_.erase(it);
  for (auto& [instance, value] : queued) {
    ++decisions_delivered_;
    streams_[stream](instance, value);
  }
}

void ConsensusBase::consensus_release_stream(StreamId stream) {
  streams_.erase(stream);
}

void ConsensusBase::consensus_sync(StreamId stream,
                                   InstanceId from_instance) {
  // One targeted request, not a broadcast: every peer holds the same
  // decided history (uniform agreement), so asking all of them would just
  // deliver world_size-1 identical copies of the full decision log.  But a
  // single request can die with its target (the trusted peer may crash
  // before responding), so the request stays pending and rotates to the
  // next trusted peer on a timer until any decision of the stream arrives.
  auto [it, inserted] =
      pending_syncs_.try_emplace(stream, SyncPending{from_instance, 0});
  if (!inserted) {
    it->second.from_instance =
        std::min(it->second.from_instance, from_instance);
  }
  send_sync_request(stream, it->second);
  if (!sync_retry_timer_.pending()) {
    sync_retry_timer_.schedule(kSyncRetryInterval,
                               [this]() { on_sync_retry_tick(); });
  }
}

NodeId ConsensusBase::pick_sync_target(std::uint32_t attempt) const {
  const FdApi* fd = fd_.try_get();
  const auto world = static_cast<NodeId>(env().world_size());
  std::vector<NodeId> candidates;
  for (NodeId dst = 0; dst < world; ++dst) {
    if (dst == env().node_id()) continue;
    if (fd != nullptr && fd->fd_suspects(dst)) continue;
    candidates.push_back(dst);
  }
  if (candidates.empty()) return kNoNode;  // nobody trusted: retried later
  return candidates[attempt % candidates.size()];
}

void ConsensusBase::send_sync_request(StreamId stream,
                                      const SyncPending& pending) {
  const NodeId target = pick_sync_target(pending.attempt);
  if (target == kNoNode) return;
  BufWriter w(24);
  w.put_u8(kSyncRequest);
  w.put_varint(stream);
  w.put_varint(pending.from_instance);
  rp2p_.call([this, target, wire = w.take_payload()](Rp2pApi& rp2p) mutable {
    rp2p.rp2p_send(target, sync_channel_, std::move(wire));
  });
}

void ConsensusBase::on_sync_retry_tick() {
  const auto world = static_cast<std::uint32_t>(env().world_size());
  const std::uint32_t max_attempts =
      kSyncRetryRounds * (world > 1 ? world - 1 : 1);
  for (auto it = pending_syncs_.begin(); it != pending_syncs_.end();) {
    SyncPending& pending = it->second;
    ++pending.attempt;
    if (pending.attempt >= max_attempts) {
      // Give up: the straggler path (late algorithm messages hitting
      // decided instances at any peer) still covers the gap.
      it = pending_syncs_.erase(it);
      continue;
    }
    ++sync_retries_;
    send_sync_request(it->first, pending);
    ++it;
  }
  if (!pending_syncs_.empty()) {
    sync_retry_timer_.schedule(kSyncRetryInterval,
                               [this]() { on_sync_retry_tick(); });
  }
}

void ConsensusBase::broadcast_decide(const Key& key, const Bytes& value) {
  BufWriter w(value.size() + 24);
  w.put_varint(key.stream);
  w.put_varint(key.instance);
  w.put_blob(value);
  rbcast_.call([this, bytes = w.take_payload()](RbcastApi& rbcast) mutable {
    rbcast.rbcast(decide_channel_, std::move(bytes));
  });
}

void ConsensusBase::send_peer(NodeId dst, Payload data) {
  rp2p_.call([this, dst, data = std::move(data)](Rp2pApi& rp2p) mutable {
    rp2p.rp2p_send(dst, peer_channel_, std::move(data));
  });
}

void ConsensusBase::maybe_catch_up_straggler(NodeId from, const Key& key) {
  if (from == env().node_id()) return;
  auto it = max_decided_.find(key.stream);
  // Margin of two: messages about the frontier instance are ordinary racing
  // stragglers of the current round; messages at least two instances behind
  // a decided frontier can only come from a peer that lost the decisions.
  if (it == max_decided_.end() || it->second < key.instance + 2) return;
  // A peer flushing a backlog of late messages gets one resend, not one per
  // message: skip when an earlier resend already covered this instance
  // range up to the current frontier.
  auto [mark, inserted] =
      resent_.try_emplace({from, key.stream},
                          ResendMark{key.instance, it->second});
  if (!inserted) {
    if (mark->second.from <= key.instance &&
        mark->second.through >= it->second) {
      return;
    }
    mark->second.from = std::min(mark->second.from, key.instance);
    mark->second.through = it->second;
  }
  resend_decided(from, key.stream, key.instance);
}

void ConsensusBase::resend_decided(NodeId dst, StreamId stream,
                                   InstanceId from_instance) {
  std::size_t resent = 0;
  for (auto it = decided_.lower_bound(Key{stream, from_instance});
       it != decided_.end() && it->first.stream == stream; ++it) {
    BufWriter w(it->second.size() + 24);
    w.put_u8(kSyncDecide);
    w.put_varint(it->first.stream);
    w.put_varint(it->first.instance);
    w.put_blob(it->second);
    rp2p_.call([this, dst, bytes = w.take_payload()](Rp2pApi& rp2p) mutable {
      rp2p.rp2p_send(dst, sync_channel_, std::move(bytes));
    });
    ++resent;
  }
  if (resent != 0) {
    DPU_LOG(kInfo, "consensus") << "s" << env().node_id() << " resent "
                                << resent << " decision(s) of stream "
                                << stream << " to straggler s" << dst;
  }
}

void ConsensusBase::on_decide_message(NodeId origin, const Payload& data) {
  (void)origin;
  Key key{};
  Bytes value;
  try {
    BufReader r(data);
    key.stream = r.get_varint();
    key.instance = r.get_varint();
    value = r.get_blob();
    r.expect_done();
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "consensus") << "s" << env().node_id()
                                << " malformed decide: " << e.what();
    return;
  }
  ingest_decide(key, value);
}

void ConsensusBase::on_sync_message(NodeId from, const Payload& data) {
  try {
    BufReader r(data);
    const auto type = static_cast<SyncMsg>(r.get_u8());
    if (type == kSyncRequest) {
      const StreamId stream = r.get_varint();
      const InstanceId from_instance = r.get_varint();
      r.expect_done();
      resend_decided(from, stream, from_instance);
      return;
    }
    if (type != kSyncDecide) throw CodecError("unknown sync message type");
    Key key{};
    key.stream = r.get_varint();
    key.instance = r.get_varint();
    Bytes value = r.get_blob();
    r.expect_done();
    ingest_decide(key, value);
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "consensus") << "s" << env().node_id()
                                << " malformed sync message from s" << from
                                << ": " << e.what();
  }
}

void ConsensusBase::ingest_decide(const Key& key, const Bytes& value) {
  if (!decided_.emplace(key, value).second) return;  // duplicate decide
  // Progress on the stream answers (or obsoletes) a pending sync request.
  pending_syncs_.erase(key.stream);
  auto [it, inserted] = max_decided_.emplace(key.stream, key.instance);
  if (!inserted && it->second < key.instance) it->second = key.instance;
  algo_on_decided(key);
  deliver_decision(key, value);
}

void ConsensusBase::deliver_decision(const Key& key, const Bytes& value) {
  auto it = streams_.find(key.stream);
  if (it == streams_.end()) {
    pending_decisions_[key.stream].emplace_back(key.instance, value);
    return;
  }
  ++decisions_delivered_;
  it->second(key.instance, value);
}

}  // namespace dpu
