#include "consensus/consensus.hpp"

#include "util/log.hpp"

namespace dpu {

ConsensusBase::ConsensusBase(Stack& stack, std::string instance_name)
    : Module(stack, std::move(instance_name)),
      rp2p_(stack.require<Rp2pApi>(kRp2pService)),
      rbcast_(stack.require<RbcastApi>(kRbcastService)),
      fd_(stack.require<FdApi>(kFdService)),
      peer_channel_(fnv1a64(Module::instance_name() + "/msg")),
      decide_channel_(fnv1a64(Module::instance_name() + "/dec")) {}

void ConsensusBase::start() {
  rp2p_.call([this](Rp2pApi& rp2p) {
    rp2p.rp2p_bind_channel(peer_channel_,
                           [this](NodeId from, const Payload& data) {
                             on_peer_message(from, data);
                           });
  });
  rbcast_.call([this](RbcastApi& rbcast) {
    rbcast.rbcast_bind_channel(decide_channel_,
                               [this](NodeId origin, const Payload& data) {
                                 on_decide_message(origin, data);
                               });
  });
}

void ConsensusBase::stop() {
  rp2p_.call([this](Rp2pApi& rp2p) { rp2p.rp2p_release_channel(peer_channel_); });
  rbcast_.call(
      [this](RbcastApi& rbcast) { rbcast.rbcast_release_channel(decide_channel_); });
  streams_.clear();
  pending_decisions_.clear();
}

void ConsensusBase::propose(StreamId stream, InstanceId instance,
                            const Bytes& value) {
  const Key key{stream, instance};
  auto it = decided_.find(key);
  if (it != decided_.end()) {
    // Late proposal for a settled instance: the proposer already received
    // (or will receive) the decision via the decide channel; nothing to do.
    return;
  }
  algo_propose(key, value);
}

void ConsensusBase::consensus_bind_stream(StreamId stream,
                                          DecisionHandler handler) {
  streams_[stream] = std::move(handler);
  auto it = pending_decisions_.find(stream);
  if (it == pending_decisions_.end()) return;
  auto queued = std::move(it->second);
  pending_decisions_.erase(it);
  for (auto& [instance, value] : queued) {
    ++decisions_delivered_;
    streams_[stream](instance, value);
  }
}

void ConsensusBase::consensus_release_stream(StreamId stream) {
  streams_.erase(stream);
}

void ConsensusBase::broadcast_decide(const Key& key, const Bytes& value) {
  BufWriter w(value.size() + 24);
  w.put_varint(key.stream);
  w.put_varint(key.instance);
  w.put_blob(value);
  rbcast_.call([this, bytes = w.take_payload()](RbcastApi& rbcast) mutable {
    rbcast.rbcast(decide_channel_, std::move(bytes));
  });
}

void ConsensusBase::send_peer(NodeId dst, Payload data) {
  rp2p_.call([this, dst, data = std::move(data)](Rp2pApi& rp2p) mutable {
    rp2p.rp2p_send(dst, peer_channel_, std::move(data));
  });
}

void ConsensusBase::on_decide_message(NodeId origin, const Payload& data) {
  (void)origin;
  Key key{};
  Bytes value;
  try {
    BufReader r(data);
    key.stream = r.get_varint();
    key.instance = r.get_varint();
    value = r.get_blob();
    r.expect_done();
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "consensus") << "s" << env().node_id()
                                << " malformed decide: " << e.what();
    return;
  }
  if (!decided_.emplace(key, value).second) return;  // duplicate decide
  algo_on_decided(key);
  deliver_decision(key, value);
}

void ConsensusBase::deliver_decision(const Key& key, const Bytes& value) {
  auto it = streams_.find(key.stream);
  if (it == streams_.end()) {
    pending_decisions_[key.stream].emplace_back(key.instance, value);
    return;
  }
  ++decisions_delivered_;
  it->second(key.instance, value);
}

}  // namespace dpu
