// MR — a Mostéfaoui–Raynal-style <>S consensus (the alternate provider of
// the "consensus" service; used by the consensus-replacement extension,
// DESIGN.md experiment E1).
//
// Round structure (round r, coordinator c = r mod n):
//   Phase A  c broadcasts its estimate EST(r, v).
//   Phase B  every participant broadcasts a VOTE(r, x) where x = v if it
//            received EST, or ⊥ if its failure detector suspects c (or the
//            round timer fires).  Each participant collects a majority of
//            votes for round r, then:
//              - all collected votes equal v  → decide v (reliable-broadcast
//                DECIDE) and adopt v,
//              - at least one vote equals v   → adopt v, next round,
//              - all ⊥                        → keep estimate, next round.
//
// Safety sketch: all non-⊥ votes of round r carry the same value (the
// coordinator's), and any two majorities intersect; so if some stack decides
// v in round r, every stack completing round r sees at least one v-vote and
// adopts v — from round r+1 on, only v can be proposed or decided.
// Unlike CT, a stack must *complete* every round (collect a majority of
// votes); rounds are never skipped.
#pragma once

#include <map>
#include <optional>

#include "consensus/consensus.hpp"

namespace dpu {

struct MrConsensusConfig {
  /// Delay before a participant gives up on the coordinator's EST and votes
  /// ⊥ (on top of the FD fast path).
  Duration round_timeout = 500 * kMillisecond;
  Duration round_timeout_max = 4 * kSecond;
};

class MrConsensusModule final : public ConsensusBase, public FdListener {
 public:
  using Config = MrConsensusConfig;

  static constexpr char kProtocolName[] = "consensus.mr";

  static MrConsensusModule* create(Stack& stack,
                                   const std::string& service = kConsensusService,
                                   Config config = Config{},
                                   const std::string& instance_name = "");

  /// Registers "consensus.mr": requires rp2p + rbcast + fd; ModuleParams:
  /// "instance".
  static void register_protocol(ProtocolLibrary& library,
                                Config config = Config{});

  MrConsensusModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // FdListener
  void on_suspect(NodeId node) override;
  void on_trust(NodeId /*node*/) override {}

  [[nodiscard]] std::uint64_t rounds_completed() const {
    return rounds_completed_;
  }

 protected:
  void algo_propose(const Key& key, const Bytes& value) override;
  void algo_on_decided(const Key& key) override;
  void on_peer_message(NodeId from, const Payload& data) override;

 private:
  enum MsgType : std::uint8_t { kEst = 0, kVote = 1 };

  struct RoundState {
    /// Votes received for this round; nullopt encodes ⊥.
    std::map<NodeId, std::optional<Bytes>> votes;
    std::optional<Bytes> est;  // coordinator estimate, if received
    bool voted = false;
    bool est_sent = false;   // coordinator only
    bool completed = false;  // majority votes processed
  };

  struct Inst {
    bool started = false;
    bool has_estimate = false;
    Bytes estimate;
    std::uint64_t round = 0;
    bool entered = false;
    std::map<std::uint64_t, RoundState> rounds;
    TimerId round_timer = kNoTimer;
  };

  [[nodiscard]] NodeId coord_of(std::uint64_t round) const {
    return static_cast<NodeId>(round % env().world_size());
  }

  Inst& inst(const Key& key) { return instances_[key]; }

  void enter_round(const Key& key, Inst& s);
  void maybe_send_est(const Key& key, Inst& s);
  void cast_vote(const Key& key, Inst& s, std::optional<Bytes> value);
  void maybe_complete_round(const Key& key, Inst& s);
  void handle_est(const Key& key, std::uint64_t round, Bytes value);
  void handle_vote(NodeId from, const Key& key, std::uint64_t round,
                   std::optional<Bytes> value);
  void arm_round_timer(const Key& key, Inst& s);
  void cancel_round_timer(Inst& s);

  void send_typed(NodeId dst, MsgType type, const Key& key,
                  std::uint64_t round, const std::optional<Bytes>& value);

  Config config_;
  std::map<Key, Inst> instances_;
  std::uint64_t rounds_completed_ = 0;
};

}  // namespace dpu
