// Stack: the set of modules on one machine, plus the module factory registry
// used by Algorithm 1's create_module.
//
// The Stack owns all modules and all service slots of one machine.  It also
// implements the `create_module(p)` procedure of the paper's Algorithm 1
// (lines 22–28): create the module, bind it, then recursively create a
// provider for every required service that has no bound module.  That
// recursion is what lets a *new* protocol version require services the old
// version never used (the flexibility advantage over Graceful Adaptation
// discussed in §4.2).
#pragma once

#include <cassert>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/module.hpp"
#include "core/registry.hpp"
#include "core/service.hpp"
#include "core/trace.hpp"
#include "runtime/host.hpp"

namespace dpu {

/// Per-call cost model (see DESIGN.md §8).  The simulator charges
/// `service_hop_cost` of stack CPU time for every service call and every
/// response delivery, which is how the indirection cost of the replacement
/// layer becomes measurable instead of hard-coded.  `module_create_cost`
/// models dynamic module instantiation (the paper's SAMOA/Java runtime paid
/// class-loading and wiring costs there); it is what makes a replacement
/// perturb latency for a visible window.
struct StackCostModel {
  Duration service_hop_cost = 0;
  Duration module_create_cost = 0;
};

class Stack {
 public:
  explicit Stack(HostEnv& host, const ProtocolLibrary* library = nullptr,
                 TraceSink* trace = nullptr)
      : host_(&host), library_(library), trace_(trace) {}

  ~Stack();

  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  [[nodiscard]] HostEnv& host() const { return *host_; }
  [[nodiscard]] NodeId node() const { return host_->node_id(); }
  [[nodiscard]] const ProtocolLibrary* library() const { return library_; }

  void set_cost_model(const StackCostModel& m) { cost_ = m; }
  [[nodiscard]] const StackCostModel& cost_model() const { return cost_; }

  // ---- Module management -------------------------------------------------

  /// Constructs a module in place; the stack takes ownership.  The module is
  /// NOT started; call start_all() (static composition) or rely on
  /// create_module (dynamic composition).
  template <class M, class... Args>
  M* emplace_module(Args&&... args) {
    auto owned = std::make_unique<M>(std::forward<Args>(args)...);
    M* raw = owned.get();
    modules_.push_back(std::move(owned));
    if (cost_.module_create_cost > 0) host_->charge(cost_.module_create_cost);
    trace(TraceKind::kModuleCreated, "", raw->instance_name());
    return raw;
  }

  /// Starts every not-yet-started module, in creation order.
  void start_all() {
    // Index loop: start() may legitimately create more modules.
    for (std::size_t i = 0; i < modules_.size(); ++i) {
      modules_[i]->start_once();
    }
  }

  /// Stops a module, removes its bindings and owned listeners, and destroys
  /// it after the current event completes (deferred via post, so a module
  /// may destroy itself from one of its own handlers).
  void destroy_module(Module* m);

  [[nodiscard]] Module* find_module(const std::string& instance_name) const {
    for (const auto& m : modules_) {
      if (m->instance_name() == instance_name) return m.get();
    }
    return nullptr;
  }

  [[nodiscard]] std::size_t module_count() const { return modules_.size(); }

  // ---- Services ----------------------------------------------------------

  /// Returns the slot for `service`, creating it on first use.  Slot
  /// addresses are stable for the stack's lifetime.
  ServiceSlot& slot(const std::string& service) {
    auto it = slots_.find(service);
    if (it == slots_.end()) {
      it = slots_
               .emplace(service,
                        std::make_unique<ServiceSlot>(*this, service))
               .first;
    }
    return *it->second;
  }

  template <class Iface>
  void bind(const std::string& service, Iface* impl, Module* owner) {
    slot(service).bind<Iface>(impl, owner);
  }

  void unbind(const std::string& service) { slot(service).unbind(); }

  template <class Iface>
  [[nodiscard]] ServiceRef<Iface> require(const std::string& service) {
    return ServiceRef<Iface>(&slot(service));
  }

  template <class Up>
  void listen(const std::string& service, Up* listener, Module* owner) {
    slot(service).add_listener<Up>(listener, owner);
  }

  template <class Up>
  void unlisten(const std::string& service, Up* listener) {
    slot(service).remove_listener<Up>(listener);
  }

  template <class Up>
  [[nodiscard]] UpcallRef<Up> upcalls(const std::string& service) {
    return UpcallRef<Up>(&slot(service));
  }

  /// Total queued (blocked) service calls across all slots; zero at the end
  /// of a run is the weak stack-well-formedness check.
  [[nodiscard]] std::size_t pending_call_count() const {
    std::size_t n = 0;
    for (const auto& [name, s] : slots_) n += s->pending_calls();
    return n;
  }

  // ---- Dynamic creation (Algorithm 1, lines 22–28) ------------------------

  /// create_module(p): create the module for `protocol`, bind it to
  /// `provide_as`, then for every service it requires that has no bound
  /// module, create the library's default provider recursively.  Returns the
  /// created module (started).
  Module* create_module(const std::string& protocol,
                        const std::string& provide_as,
                        const ModuleParams& params = ModuleParams());

  // ---- Trace & cost hooks -------------------------------------------------

  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  void trace(TraceKind kind, const std::string& service,
             const std::string& module, const std::string& detail = "") {
    if (trace_ == nullptr) return;
    TraceEvent e;
    e.time = host_->now();
    e.node = host_->node_id();
    e.kind = kind;
    e.service = service;
    e.module = module;
    e.detail = detail;
    trace_->on_trace(e);
  }

  void charge_hop() {
    if (cost_.service_hop_cost > 0) host_->charge(cost_.service_hop_cost);
  }

 private:
  HostEnv* host_;
  const ProtocolLibrary* library_;
  TraceSink* trace_;
  StackCostModel cost_;
  // std::map keeps ServiceSlot addresses stable; unique_ptr additionally
  // protects against future container changes.
  std::map<std::string, std::unique_ptr<ServiceSlot>> slots_;
  std::vector<std::unique_ptr<Module>> modules_;
  std::set<std::string> creating_;  // create_module cycle guard
};

inline HostEnv& Module::env() const { return stack_->host(); }

inline void ServiceSlot::charge_hop() { stack_->charge_hop(); }

}  // namespace dpu
