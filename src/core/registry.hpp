// ProtocolRegistry: the factory-by-library-name registry behind dynamic
// module creation, extracted from core/stack.hpp (where it started life as
// `ProtocolLibrary`) so the dynamic-update control plane can reason about it
// directly.
//
// The registry answers three questions:
//  * "create the module for library name p" — Algorithm 1's create_module
//    looks factories up here (Stack::create_module, lines 22-28);
//  * "which protocol provides service s by default" — the recursive-creation
//    step of the same algorithm (line 27);
//  * "may service s be replaced at runtime, and by which libraries" — the
//    declaration the service-generic UpdateApi (repl/update.hpp) validates
//    update requests against.  A service that is never declared replaceable
//    cannot be switched through the control plane, no matter which libraries
//    could implement it.
#pragma once

#include <cassert>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace dpu {

class Module;
class Stack;

/// String key/value parameters handed to module factories (timeouts, batch
/// sizes, protocol-specific knobs).  Kept as strings so parameters can ride
/// inside replacement messages unchanged.
class ModuleParams {
 public:
  ModuleParams() = default;

  ModuleParams& set(const std::string& key, std::string value) {
    kv_[key] = std::move(value);
    return *this;
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
  }

  /// Integer view of a parameter.  Malformed or out-of-range values yield
  /// `fallback` — parameters ride inside replacement messages from other
  /// stacks, so garbage must not throw mid-switch.
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    try {
      std::size_t consumed = 0;
      const std::int64_t value = std::stoll(it->second, &consumed);
      // Trailing garbage ("12abc") is malformed, not the number 12.
      return consumed == it->second.size() ? value : fallback;
    } catch (const std::invalid_argument&) {
      return fallback;
    } catch (const std::out_of_range&) {
      return fallback;
    }
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return kv_.count(key) != 0;
  }

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return kv_;
  }

 private:
  std::map<std::string, std::string> kv_;
};

/// Registry entry describing one protocol implementation.
struct ProtocolInfo {
  /// Registry key (the *library name*), e.g. "abcast.ct", "consensus.mr".
  std::string protocol;
  /// Service this protocol provides when no explicit name is given.
  std::string default_service;
  /// Public names of the services this protocol requires (paper Fig. 1:
  /// the gray trapezoids).  Used by create_module's recursion.
  std::vector<std::string> requires_services;
  /// Creates the module inside `stack`, binds it to `provide_as`, and
  /// returns it (non-owning; the stack owns it).
  std::function<Module*(Stack& stack, const std::string& provide_as,
                        const ModuleParams& params)>
      factory;
};

/// Immutable (after setup) registry shared by all stacks of a world.  Maps
/// library names to factories, services to their default provider — the
/// "find a module q providing service s" step of Algorithm 1 line 27 — and
/// declares which services are replaceable at runtime.
class ProtocolRegistry {
 public:
  void register_protocol(ProtocolInfo info) {
    assert(!info.protocol.empty());
    const std::string service = info.default_service;
    auto [it, inserted] = protocols_.emplace(info.protocol, std::move(info));
    assert(inserted && "duplicate protocol registration");
    (void)inserted;
    // First registered provider becomes the service default.
    if (!service.empty() && default_provider_.count(service) == 0) {
      default_provider_[service] = it->second.protocol;
    }
  }

  /// Overrides which protocol create_module picks for a required service.
  void set_default_provider(const std::string& service,
                            const std::string& protocol) {
    assert(protocols_.count(protocol) != 0);
    default_provider_[service] = protocol;
  }

  /// Capabilities of a replaceable service beyond plain hot-swap, declared
  /// at composition time alongside replaceability itself.
  struct ReplaceableInfo {
    /// The service's replacement layer answers state requests from a
    /// recovering or late-joining stack (the facade substrate's snapshot +
    /// replay-tail machinery, or an equivalent bespoke catch-up protocol).
    /// Scenarios that crash-recover or late-join nodes while this service's
    /// layer is managed require it.
    bool state_transfer = false;
  };

  /// Declares `service` switchable through the dynamic-update control plane.
  /// UpdateManagerModule::request_update rejects services never declared
  /// here — replaceability is a composition decision, not a capability every
  /// service silently has.
  void declare_replaceable(const std::string& service) {
    replaceable_[service] = ReplaceableInfo{};
  }
  void declare_replaceable(const std::string& service, ReplaceableInfo info) {
    replaceable_[service] = info;
  }

  [[nodiscard]] bool replaceable(const std::string& service) const {
    return replaceable_.count(service) != 0;
  }

  /// True iff `service` is replaceable and its layer declared the
  /// state-transfer capability.
  [[nodiscard]] bool state_transfer(const std::string& service) const {
    auto it = replaceable_.find(service);
    return it != replaceable_.end() && it->second.state_transfer;
  }

  /// Library names that provide `service` as their default service — the
  /// candidate targets of an update of that service, in registry order.
  [[nodiscard]] std::vector<std::string> libraries_for(
      const std::string& service) const {
    std::vector<std::string> out;
    for (const auto& [name, info] : protocols_) {
      if (info.default_service == service) out.push_back(name);
    }
    return out;
  }

  [[nodiscard]] const ProtocolInfo* find(const std::string& protocol) const {
    auto it = protocols_.find(protocol);
    return it == protocols_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const ProtocolInfo* default_provider(
      const std::string& service) const {
    auto it = default_provider_.find(service);
    return it == default_provider_.end() ? nullptr : find(it->second);
  }

 private:
  std::map<std::string, ProtocolInfo> protocols_;
  std::map<std::string, std::string> default_provider_;
  std::map<std::string, ReplaceableInfo> replaceable_;
};

/// Historical name, kept so module register_protocol signatures and existing
/// composition code read unchanged.
using ProtocolLibrary = ProtocolRegistry;

}  // namespace dpu
