// Module base class and timer RAII helper.
//
// A module is one per-machine instance of a protocol (paper §2: "protocols
// are implemented by a set of identical modules, each module running on a
// different machine").  Modules are owned by their Stack, are created and
// destroyed dynamically, and interact with the rest of the stack exclusively
// through services (core/service.hpp).
#pragma once

#include <functional>
#include <string>

#include "runtime/host.hpp"

namespace dpu {

class Stack;

class Module {
 public:
  /// `instance_name` identifies this module instance; dynamically created
  /// protocol instances use names that are identical across stacks (e.g.
  /// "abcast.ct@2") so traces can correlate them for the protocol-
  /// operationability property.
  Module(Stack& stack, std::string instance_name)
      : stack_(&stack), instance_name_(std::move(instance_name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Called once after the module has been created, bound, and its required
  /// services resolved; modules arm timers and begin I/O here.
  virtual void start() {}

  /// Called before destruction; modules cancel timers and detach here.
  /// Service bindings and listeners registered with an owner are removed by
  /// the Stack automatically.
  virtual void stop() {}

  [[nodiscard]] const std::string& instance_name() const {
    return instance_name_;
  }
  [[nodiscard]] Stack& stack() const { return *stack_; }

  /// Idempotent start, used by Stack::start_all and create_module.
  void start_once() {
    if (!started_) {
      started_ = true;
      start();
    }
  }

  [[nodiscard]] bool started() const { return started_; }

 protected:
  [[nodiscard]] HostEnv& env() const;

 private:
  Stack* stack_;
  std::string instance_name_;
  bool started_ = false;
};

/// RAII one-shot timer owned by a module.  Re-scheduling cancels the
/// previous shot; destruction cancels any pending shot, so a destroyed
/// module can never receive a stale callback.
///
/// The callback is stored in the slot and the engine-facing wrapper only
/// captures `this`, so arming a timer never heap-allocates (hot paths arm
/// timers per delivery batch / per retransmit tick).
class TimerSlot {
 public:
  explicit TimerSlot(HostEnv& host) : host_(&host) {}
  ~TimerSlot() { cancel(); }

  TimerSlot(const TimerSlot&) = delete;
  TimerSlot& operator=(const TimerSlot&) = delete;

  /// Arms the timer `after` from now, replacing any pending shot.
  void schedule(Duration after, std::function<void()> cb) {
    cancel();
    cb_ = std::move(cb);
    id_ = host_->set_timer(after, [this]() {
      // Move out before invoking: the callback may re-schedule this slot,
      // which would otherwise assign cb_ while it is executing.
      auto pending_cb = std::move(cb_);
      id_ = kNoTimer;
      pending_cb();
    });
  }

  void cancel() {
    if (id_ != kNoTimer) {
      host_->cancel_timer(id_);
      id_ = kNoTimer;
      cb_ = nullptr;
    }
  }

  [[nodiscard]] bool pending() const { return id_ != kNoTimer; }

 private:
  HostEnv* host_;
  TimerId id_ = kNoTimer;
  std::function<void()> cb_;
};

}  // namespace dpu
