#include "core/stack.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace dpu {

Stack::~Stack() {
  // Stop in reverse creation order (dependents before substrates), then let
  // unique_ptr destruction free everything.
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    if ((*it)->started()) (*it)->stop();
  }
}

void Stack::destroy_module(Module* m) {
  assert(m != nullptr);
  if (m->started()) m->stop();
  // Remove every binding and listener that points into the module.
  for (auto& [name, s] : slots_) {
    if (s->provider_module() == m) s->unbind();
    s->remove_listeners_owned_by(m);
  }
  trace(TraceKind::kModuleStopped, "", m->instance_name());
  // Defer the delete: the caller may be executing inside one of m's own
  // handlers (e.g. a module retiring itself after a switch).
  host_->post([this, m]() {
    auto it = std::find_if(
        modules_.begin(), modules_.end(),
        [m](const std::unique_ptr<Module>& owned) { return owned.get() == m; });
    if (it == modules_.end()) return;  // already destroyed
    trace(TraceKind::kModuleDestroyed, "", m->instance_name());
    modules_.erase(it);
  });
}

Module* Stack::create_module(const std::string& protocol,
                             const std::string& provide_as,
                             const ModuleParams& params) {
  if (library_ == nullptr) {
    throw std::logic_error("create_module without a protocol library");
  }
  const ProtocolInfo* info = library_->find(protocol);
  if (info == nullptr) {
    throw std::logic_error("unknown protocol '" + protocol + "'");
  }

  // Guard against dependency cycles: while we are creating the provider of
  // `provide_as`, a recursive requirement on the same service is satisfied
  // by the creation already in flight.
  creating_.insert(provide_as);

  // Line 23-24: create p; bind p.  The factory performs the typed bind.
  Module* m = info->factory(*this, provide_as, params);
  assert(m != nullptr);

  // Lines 25-28: for all services s required by p, if no module is bound to
  // s, find the default provider q and create_module(q).
  for (const std::string& s : info->requires_services) {
    if (slot(s).bound() || creating_.count(s) != 0) continue;
    const ProtocolInfo* dep = library_->default_provider(s);
    if (dep == nullptr) {
      creating_.erase(provide_as);
      throw std::logic_error("no provider registered for required service '" +
                             s + "' (needed by " + protocol + ")");
    }
    DPU_LOG(kDebug, "stack") << "s" << node() << " create_module recursion: "
                             << protocol << " needs " << s << " -> "
                             << dep->protocol;
    create_module(dep->protocol, s);
  }

  creating_.erase(provide_as);
  m->start_once();
  return m;
}

}  // namespace dpu
