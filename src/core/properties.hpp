// Checkers for the paper's generic DPU correctness properties (§3).
//
// Both properties are trace properties: they are evaluated over the
// TraceEvent stream recorded during a run (plus knowledge of which stacks
// the fault injector crashed).  Tests run a scenario to quiescence and then
// assert these reports are clean.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/trace.hpp"

namespace dpu {

struct PropertyReport {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string why) {
    ok = false;
    violations.push_back(std::move(why));
  }

  [[nodiscard]] std::string summary() const;
};

/// Weak stack-well-formedness: "whenever a module calls a service, the
/// service is *eventually* bound to one module."  In trace terms: every
/// kCallQueued on (node, service) is matched by a later kCallFlushed, i.e.
/// no call is still blocked at the end of the run.
[[nodiscard]] PropertyReport check_weak_stack_well_formedness(
    const std::vector<TraceEvent>& events);

/// Strong stack-well-formedness: "whenever a module calls a service, the
/// service *is* bound" — no call is ever queued at all.
[[nodiscard]] PropertyReport check_strong_stack_well_formedness(
    const std::vector<TraceEvent>& events);

/// Weak protocol-operationability for dynamically created protocol
/// instances: "whenever a module P_i is bound in some stack i, all
/// non-crashed stacks j eventually contain a module P_j."
///
/// Module instances that belong to one distributed protocol carry the same
/// instance name on every stack (convention: names containing '@', e.g.
/// "abcast.ct@2" created by the replacement algorithm).  For every such name
/// bound on at least one stack, every non-crashed stack must have created a
/// module with that name by the end of the trace.
///
/// `join_time` (optional, one entry per stack, -1 = up from the start)
/// marks when a recovered or late-joining stack (re-)entered the group: an
/// instance whose last create/bound event anywhere precedes that point was
/// retired before the stack existed, so the stack is exempt from creating
/// it — it enters at the group's current version via state transfer, not
/// by re-living every superseded instance.
[[nodiscard]] PropertyReport check_protocol_operationability(
    const std::vector<TraceEvent>& events, std::size_t world_size,
    const std::set<NodeId>& crashed = {},
    const std::vector<TimePoint>& join_time = {});

}  // namespace dpu
