#include "core/properties.hpp"

#include <map>
#include <sstream>

namespace dpu {

std::string PropertyReport::summary() const {
  if (ok) return "OK";
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (const auto& v : violations) os << "\n  - " << v;
  return os.str();
}

PropertyReport check_weak_stack_well_formedness(
    const std::vector<TraceEvent>& events) {
  PropertyReport report;
  // queued - flushed per (node, service); must be zero at end of trace.
  std::map<std::pair<NodeId, std::string>, long> outstanding;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceKind::kCallQueued) {
      ++outstanding[{e.node, e.service}];
    } else if (e.kind == TraceKind::kCallFlushed) {
      --outstanding[{e.node, e.service}];
    }
  }
  for (const auto& [key, count] : outstanding) {
    if (count > 0) {
      report.fail("stack " + std::to_string(key.first) + ": " +
                  std::to_string(count) + " call(s) on service '" +
                  key.second + "' still blocked at end of run");
    } else if (count < 0) {
      report.fail("stack " + std::to_string(key.first) +
                  ": more flushes than queues on service '" + key.second +
                  "' (trace instrumentation bug)");
    }
  }
  return report;
}

PropertyReport check_strong_stack_well_formedness(
    const std::vector<TraceEvent>& events) {
  PropertyReport report;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceKind::kCallQueued) {
      report.fail("stack " + std::to_string(e.node) + ": call on service '" +
                  e.service + "' at t=" + std::to_string(e.time) +
                  " found the service unbound");
    }
  }
  return report;
}

PropertyReport check_protocol_operationability(
    const std::vector<TraceEvent>& events, std::size_t world_size,
    const std::set<NodeId>& crashed,
    const std::vector<TimePoint>& join_time) {
  PropertyReport report;
  // Global protocol instances are identified by '@' in the instance name.
  std::set<std::string> bound_somewhere;
  std::map<std::string, std::set<NodeId>> created_on;
  std::map<std::string, TimePoint> last_seen;
  for (const TraceEvent& e : events) {
    if (e.module.find('@') == std::string::npos) continue;
    if (e.kind == TraceKind::kServiceBound) bound_somewhere.insert(e.module);
    if (e.kind == TraceKind::kModuleCreated) created_on[e.module].insert(e.node);
    if (e.kind == TraceKind::kServiceBound ||
        e.kind == TraceKind::kModuleCreated) {
      auto [it, inserted] = last_seen.emplace(e.module, e.time);
      if (!inserted) it->second = std::max(it->second, e.time);
    }
  }
  for (const std::string& name : bound_somewhere) {
    const auto& nodes = created_on[name];
    for (NodeId j = 0; j < world_size; ++j) {
      if (crashed.count(j) != 0) continue;
      if (nodes.count(j) != 0) continue;
      // A stack that (re-)joined after the instance was retired enters at
      // the group's current version instead of re-living this one.
      if (j < join_time.size() && join_time[j] >= 0 &&
          last_seen[name] < join_time[j]) {
        continue;
      }
      report.fail("protocol instance '" + name +
                  "' was bound on some stack but never created on "
                  "non-crashed stack " +
                  std::to_string(j));
    }
  }
  return report;
}

}  // namespace dpu
