#include "core/service.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/stack.hpp"

namespace dpu {

ServiceSlot::ServiceSlot(Stack& stack, std::string name)
    : stack_(&stack), name_(std::move(name)) {}

void ServiceSlot::unbind() {
  if (provider_ == nullptr) return;
  const std::string module_name =
      provider_module_ != nullptr ? provider_module_->instance_name() : "";
  provider_ = nullptr;
  provider_module_ = nullptr;
  stack_->trace(TraceKind::kServiceUnbound, name_, module_name);
}

void ServiceSlot::flush_pending() {
  if (flushing_) return;  // a queued call re-bound the service; outer loop continues
  flushing_ = true;
  // Queued calls may enqueue further calls or unbind the provider; loop on
  // the live deque and stop as soon as the service is unbound again.
  while (!pending_.empty() && provider_ != nullptr) {
    auto fn = std::move(pending_.front());
    pending_.pop_front();
    fn();
  }
  flushing_ = false;
}

void ServiceSlot::throw_if_already_bound() const {
  if (provider_ != nullptr) {
    throw std::logic_error(
        "service '" + name_ + "' is already bound to module '" +
        (provider_module_ != nullptr ? provider_module_->instance_name()
                                     : std::string("?")) +
        "' (at most one module may be bound to a service at a time)");
  }
}

void ServiceSlot::set_provider_type(std::type_index t) {
  if (provider_type_ == std::type_index(typeid(void))) {
    provider_type_ = t;
    return;
  }
  if (provider_type_ != t) {
    throw std::logic_error("service '" + name_ +
                           "' bound with mismatched interface type");
  }
}

void ServiceSlot::throw_provider_type_mismatch() const {
  throw std::logic_error("service '" + name_ +
                         "' called with mismatched interface type");
}

void ServiceSlot::set_listener_type(std::type_index t) {
  if (listener_type_ == std::type_index(typeid(void))) {
    listener_type_ = t;
    return;
  }
  if (listener_type_ != t) {
    throw std::logic_error("service '" + name_ +
                           "' listener type mismatch");
  }
}

void ServiceSlot::verify_listener_type(std::type_index t) const {
  if (listener_type_ != t) {
    throw std::logic_error("service '" + name_ +
                           "' notified with mismatched listener type");
  }
}

bool ServiceSlot::still_registered(void* p) const {
  return std::any_of(listeners_.begin(), listeners_.end(),
                     [p](const ListenerEntry& e) { return e.ptr == p; });
}

void ServiceSlot::remove_listener_erased(void* p) {
  listeners_.erase(
      std::remove_if(listeners_.begin(), listeners_.end(),
                     [p](const ListenerEntry& e) { return e.ptr == p; }),
      listeners_.end());
}

void ServiceSlot::remove_listeners_owned_by(Module* owner) {
  listeners_.erase(
      std::remove_if(listeners_.begin(), listeners_.end(),
                     [owner](const ListenerEntry& e) {
                       return e.owner != nullptr && e.owner == owner;
                     }),
      listeners_.end());
}

void ServiceSlot::note_bound() {
  stack_->trace(TraceKind::kServiceBound, name_,
                provider_module_ != nullptr ? provider_module_->instance_name()
                                            : "");
}

void ServiceSlot::note_queued() {
  stack_->trace(TraceKind::kCallQueued, name_, "");
}

void ServiceSlot::note_flushed() {
  stack_->trace(TraceKind::kCallFlushed, name_, "");
}


}  // namespace dpu
