#include "core/trace.hpp"

#include <sstream>

namespace dpu {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kModuleCreated: return "module-created";
    case TraceKind::kModuleStopped: return "module-stopped";
    case TraceKind::kModuleDestroyed: return "module-destroyed";
    case TraceKind::kServiceBound: return "service-bound";
    case TraceKind::kServiceUnbound: return "service-unbound";
    case TraceKind::kCallQueued: return "call-queued";
    case TraceKind::kCallFlushed: return "call-flushed";
    case TraceKind::kStackCrashed: return "stack-crashed";
    case TraceKind::kStackRecovered: return "stack-recovered";
    case TraceKind::kCustom: return "custom";
  }
  return "?";
}

std::string TraceEvent::str() const {
  std::ostringstream os;
  os << "t=" << time << " s" << node << " " << trace_kind_name(kind);
  if (!service.empty()) os << " service=" << service;
  if (!module.empty()) os << " module=" << module;
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

}  // namespace dpu
