// Services, dynamic binding, and the pending-call queue.
//
// This implements the composition model of the paper's Section 2:
//
//  * A *service* is a name ("abcast", "rp2p", ...) with a typed call
//    interface (the `Iface` template parameter below) and a typed response
//    interface (the `Up` listener parameter).
//  * A *module* may be dynamically bound to a service it provides, and later
//    unbound; unbinding does not remove the module from the stack.
//  * At most one module is bound to a service at a time.
//  * A service call executes the bound module.  If no module is bound, the
//    call "blocks" — in this event-driven implementation it is queued and
//    re-dispatched when a module binds.  Weak stack-well-formedness (§3)
//    states exactly that every such queued call is eventually released.
//  * Responses flow to *listeners* registered on the service.  Listeners
//    survive rebinding, and an unbound module may still issue responses
//    ("a module Q_i can respond to a service call even if Q_i has been
//    unbound") — both facts are what the Repl module relies on.
//
// A ServiceSlot is deliberately type-erased so the Stack can manage all
// services uniformly; the typed templates check interface identity with
// std::type_index at bind/call/listen time.
#pragma once

#include <cassert>
#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <typeindex>
#include <vector>

namespace dpu {

class Module;
class Stack;

/// One named service inside one stack.
class ServiceSlot {
 public:
  ServiceSlot(Stack& stack, std::string name);
  ServiceSlot(const ServiceSlot&) = delete;
  ServiceSlot& operator=(const ServiceSlot&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool bound() const { return provider_ != nullptr; }
  [[nodiscard]] Module* provider_module() const { return provider_module_; }
  [[nodiscard]] std::size_t pending_calls() const { return pending_.size(); }

  /// Number of times a module has been bound to this service; used by tests
  /// and by modules that must detect epochs across rebinds.
  [[nodiscard]] std::uint64_t bind_epoch() const { return bind_epoch_; }

  /// Binds `impl` (owned by `owner`) to this service.  Precondition: the
  /// service is unbound (at most one bound module, §2) — violating it throws.
  /// Queued calls are released synchronously, in order.
  template <class Iface>
  void bind(Iface* impl, Module* owner) {
    throw_if_already_bound();
    set_provider_type(std::type_index(typeid(Iface)));
    provider_ = static_cast<void*>(impl);
    provider_module_ = owner;
    ++bind_epoch_;
    note_bound();
    flush_pending();
  }

  /// Unbinds the current module.  The module stays in the stack, may still
  /// respond, and may be re-bound later.  No-op if already unbound.
  void unbind();

  /// Makes a service call.  Runs `fn` on the bound provider now, or queues
  /// the call until some provider binds (paper §2: "the service call is
  /// blocked until some module is bound to the service").
  template <class Iface>
  void call(std::function<void(Iface&)> fn) {
    call_impl<Iface>(std::move(fn), /*was_queued=*/false);
  }

  /// Hot-path variant of call(): invokes the callable directly while a
  /// provider is bound — no std::function type erasure, so a bound call
  /// allocates nothing.  Only the (rare) blocked path pays for the erasure.
  template <class Iface, class Fn>
  void call_with(Fn&& fn) {
    if (provider_ != nullptr) {
      verify_provider_type(std::type_index(typeid(Iface)));
      charge_hop();
      std::forward<Fn>(fn)(*static_cast<Iface*>(provider_));
    } else {
      note_queued();
      std::function<void(Iface&)> erased(std::forward<Fn>(fn));
      pending_.push_back([this, f = std::move(erased)]() mutable {
        this->call_impl<Iface>(std::move(f), /*was_queued=*/true);
      });
    }
  }

  /// Query access for synchronous request/response interfaces (e.g. the
  /// failure detector's is_suspected).  Returns nullptr while unbound;
  /// callers must handle that instead of relying on queueing.
  template <class Iface>
  [[nodiscard]] Iface* try_get() const {
    if (provider_ == nullptr) return nullptr;
    verify_provider_type(std::type_index(typeid(Iface)));
    return static_cast<Iface*>(provider_);
  }

  /// Registers a response listener owned by `owner` (nullptr for listeners
  /// owned by the application/test harness).
  template <class Up>
  void add_listener(Up* listener, Module* owner) {
    set_listener_type(std::type_index(typeid(Up)));
    listeners_.push_back(
        ListenerEntry{static_cast<void*>(listener), owner});
  }

  template <class Up>
  void remove_listener(Up* listener) {
    remove_listener_erased(static_cast<void*>(listener));
  }

  /// Delivers a response to every registered listener.  Listeners may add
  /// or remove listeners (including themselves) during the callback; the
  /// iteration works over a snapshot and re-validates each entry.
  template <class Up, class Fn>
  void notify(Fn&& fn) {
    if (listeners_.empty()) return;
    verify_listener_type(std::type_index(typeid(Up)));
    charge_hop();
    // Snapshot: listeners registered during delivery see only later events;
    // listeners removed during delivery are skipped.
    std::vector<void*> snapshot;
    snapshot.reserve(listeners_.size());
    for (const auto& e : listeners_) snapshot.push_back(e.ptr);
    for (void* p : snapshot) {
      if (!still_registered(p)) continue;
      fn(*static_cast<Up*>(p));
    }
  }

  [[nodiscard]] std::size_t listener_count() const {
    return listeners_.size();
  }

 private:
  friend class Stack;

  struct ListenerEntry {
    void* ptr;
    Module* owner;
  };

  template <class Iface>
  void call_impl(std::function<void(Iface&)> fn, bool was_queued) {
    if (provider_ != nullptr) {
      verify_provider_type(std::type_index(typeid(Iface)));
      if (was_queued) note_flushed();
      charge_hop();
      fn(*static_cast<Iface*>(provider_));
    } else {
      if (!was_queued) note_queued();
      pending_.push_back([this, fn = std::move(fn)]() mutable {
        this->call_impl<Iface>(std::move(fn), /*was_queued=*/true);
      });
    }
  }

  /// Runs queued calls in FIFO order.  Executes synchronously inside bind:
  /// this preserves call order with respect to calls made right after bind
  /// returns.  If the provider unbinds mid-flush, the remainder stays queued.
  void flush_pending();

  void throw_if_already_bound() const;
  void set_provider_type(std::type_index t);
  /// Inline fast path for the per-call interface check; the throw lives
  /// out of line so the hot path is one pointer compare.
  void verify_provider_type(std::type_index t) const {
    if (provider_type_ != t) throw_provider_type_mismatch();
  }
  [[noreturn]] void throw_provider_type_mismatch() const;
  void set_listener_type(std::type_index t);
  void verify_listener_type(std::type_index t) const;
  [[nodiscard]] bool still_registered(void* p) const;
  void remove_listener_erased(void* p);
  void remove_listeners_owned_by(Module* owner);

  // Trace/cost hooks, implemented in service.cpp against the Stack.
  // charge_hop is on the per-call hot path and is inlined below Stack
  // (core/stack.hpp), like Module::env().
  void note_bound();
  void note_queued();
  void note_flushed();
  inline void charge_hop();

  Stack* stack_;
  std::string name_;
  void* provider_ = nullptr;
  Module* provider_module_ = nullptr;
  std::type_index provider_type_{typeid(void)};
  std::type_index listener_type_{typeid(void)};
  std::uint64_t bind_epoch_ = 0;
  std::deque<std::function<void()>> pending_;
  std::vector<ListenerEntry> listeners_;
  bool flushing_ = false;
};

/// Typed handle for making calls on a service.  Cheap to copy; valid for the
/// stack's lifetime (slots are never deallocated while the stack lives).
template <class Iface>
class ServiceRef {
 public:
  ServiceRef() = default;
  explicit ServiceRef(ServiceSlot* slot) : slot_(slot) {}

  template <class Fn>
  void call(Fn&& fn) const {
    assert(slot_ != nullptr);
    slot_->call_with<Iface>(std::forward<Fn>(fn));
  }

  [[nodiscard]] Iface* try_get() const {
    assert(slot_ != nullptr);
    return slot_->try_get<Iface>();
  }

  [[nodiscard]] bool bound() const { return slot_ != nullptr && slot_->bound(); }
  [[nodiscard]] ServiceSlot* slot() const { return slot_; }
  [[nodiscard]] bool valid() const { return slot_ != nullptr; }

 private:
  ServiceSlot* slot_ = nullptr;
};

/// Typed handle for issuing responses (upcalls) on a service a module
/// provides.  Works whether or not the module is currently bound.
template <class Up>
class UpcallRef {
 public:
  UpcallRef() = default;
  explicit UpcallRef(ServiceSlot* slot) : slot_(slot) {}

  template <class Fn>
  void notify(Fn&& fn) const {
    assert(slot_ != nullptr);
    slot_->notify<Up>(std::forward<Fn>(fn));
  }

  [[nodiscard]] bool valid() const { return slot_ != nullptr; }
  [[nodiscard]] ServiceSlot* slot() const { return slot_; }

 private:
  ServiceSlot* slot_ = nullptr;
};

}  // namespace dpu
