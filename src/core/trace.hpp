// Structured trace of framework-level events.
//
// The generic DPU correctness properties of the paper (§3: stack-well-
// formedness, protocol-operationability) are statements about *sequences of
// framework events* — binds, unbinds, queued calls, module creations.  The
// stack emits those events to an optional TraceSink, and the property
// checkers in core/properties.hpp evaluate recorded traces.  With no sink
// attached, tracing costs one pointer test.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "runtime/time.hpp"
#include "util/ids.hpp"

namespace dpu {

enum class TraceKind {
  kModuleCreated,
  kModuleStopped,
  kModuleDestroyed,
  kServiceBound,
  kServiceUnbound,
  kCallQueued,    // service call made while the service was unbound (§2:
                  // "the service call is blocked until some module is bound")
  kCallFlushed,   // a previously queued call executed after a bind
  kStackCrashed,    // fault injection marker (engines emit this)
  kStackRecovered,  // crash-recovery marker (engines emit this)
  kCustom,          // module-defined markers (e.g. "switch-started")
};

[[nodiscard]] const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  TimePoint time = 0;
  NodeId node = kNoNode;
  TraceKind kind = TraceKind::kCustom;
  std::string service;  // service name, when applicable
  std::string module;   // module instance name, when applicable
  std::string detail;   // free-form annotation

  [[nodiscard]] std::string str() const;
};

/// Receives every framework event.  Implementations must tolerate calls from
/// multiple threads when used with the real-time engine.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_trace(const TraceEvent& event) = 0;
};

/// Records events in memory for post-hoc property checking (tests) and
/// experiment reports (benches).  Thread-safe.
class TraceRecorder final : public TraceSink {
 public:
  void on_trace(const TraceEvent& event) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(event);
  }

  /// Snapshot of all recorded events so far.
  [[nodiscard]] std::vector<TraceEvent> events() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace dpu
