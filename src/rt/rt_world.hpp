// Real-time engine: one OS thread per protocol stack.
//
// The same protocol modules that run deterministically in dpu::sim run here
// under real concurrency (DESIGN.md §2): each stack owns a thread, an event
// queue and a timer heap; packets travel either through lock-protected
// in-process queues or through real POSIX UDP sockets on the loopback
// device (the paper's transport).  On Linux the socket path amortizes
// syscalls: outbound datagrams stage on a per-host queue flushed with one
// sendmmsg() per event-loop iteration, and the receiver drains up to a
// whole burst per recvmmsg() call, posting it to the stack thread as one
// closure — so syscall and wakeup counts scale with bursts, not messages.
//
// The engine implements the full WorldControl surface (runtime/world.hpp),
// so scenario campaigns run here unchanged: scheduled control events
// (at/at_node, executed by the thread driving run()), crash and
// crash-recovery fault injection, link filters and loss/duplication
// injection, directional per-link faults with extra latency, and
// packet counters.  Unlike the simulator, nothing here is byte-
// deterministic — rt runs are audited for protocol properties, not for
// reproducible output.
//
// Concurrency contract (Core Guidelines CP.2/CP.3): all interaction with a
// stack's modules happens on that stack's thread.  External drivers use
// post_to()/call_on() to marshal closures onto it; cross-thread state
// (queues, the crash flag, counters, the fault model) is mutex- or
// atomic-protected, and protocol code itself stays lock-free exactly as in
// the simulator.
#pragma once

#include <netinet/in.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/stack.hpp"
#include "core/trace.hpp"
#include "rt/delay_wheel.hpp"
#include "runtime/host.hpp"
#include "runtime/world.hpp"

namespace dpu {

enum class RtTransport {
  kInproc,      ///< lock-protected queues between threads
  kUdpSockets,  ///< real UDP datagrams over 127.0.0.1
};

/// One node's real UDP endpoint (agent mode; see RtConfig::peers).
struct RtPeer {
  std::string host;  ///< IPv4 dotted quad, e.g. "127.0.0.1"
  std::uint16_t port = 0;
};

struct RtConfig {
  std::size_t num_stacks = 3;
  std::uint64_t seed = 1;
  RtTransport transport = RtTransport::kInproc;
  /// First UDP port for transport kUdpSockets (stack i uses base+i).
  std::uint16_t udp_base_port = 37900;
  /// In-proc transport fault injection (0 = reliable).
  double drop_probability = 0.0;
  /// In-proc transport duplication injection (0 = none).
  double duplicate_probability = 0.0;

  // ---- Agent mode (process-per-node cluster runner, src/cluster) ----------
  /// When != kNoNode, this process hosts exactly one stack — `local_node` —
  /// and the world holds null slots for every other id (size() still
  /// reports the full num_stacks, which is what modules ask for).  Implies
  /// kUdpSockets; outbound datagrams resolve through `peers`, and the
  /// fault model is applied on the *receive* path (the supervisor installs
  /// it per-agent over the control channel — egress emits everything).
  NodeId local_node = kNoNode;
  /// Real endpoint per node id, size num_stacks (agent mode only).
  std::vector<RtPeer> peers;
  /// Incarnation stamp for the local host at boot: 0 for a first spawn,
  /// the supervisor's global counter value for a respawn — mirroring what
  /// recover() stamps in-process, so rp2p epoch adoption works unchanged.
  std::uint32_t initial_incarnation = 0;
  /// Shared campaign timebase: CLOCK_MONOTONIC nanoseconds at which world
  /// time 0 falls.  CLOCK_MONOTONIC is machine-wide on Linux, so every
  /// agent passed the same value reports directly comparable now()s
  /// (negative before the epoch, which is harmless).  0 = epoch at
  /// construction (the in-process default).
  std::int64_t epoch_ns = 0;
};

class RtWorld final : public WorldControl {
 public:
  explicit RtWorld(RtConfig config, const ProtocolLibrary* library = nullptr,
                   TraceSink* trace = nullptr);
  ~RtWorld() override;

  RtWorld(const RtWorld&) = delete;
  RtWorld& operator=(const RtWorld&) = delete;

  [[nodiscard]] std::size_t size() const override { return hosts_.size(); }
  [[nodiscard]] Stack& stack(NodeId node) override { return *stacks_[node]; }

  /// Monotonic time since world construction; the same clock every host's
  /// HostEnv::now() reports, so driver schedules and in-stack timestamps
  /// are directly comparable.
  [[nodiscard]] TimePoint now() const override;

  /// Starts every stack thread.  Composition (module creation) must happen
  /// either before start() or via post_to()/call_on() afterwards.
  void start();

  /// Stops and joins all threads.  Idempotent; called by the destructor.
  void stop();

  /// Schedules `fn` on `node`'s thread (fire and forget).
  void post_to(NodeId node, std::function<void()> fn);

  /// Runs `fn` on `node`'s thread and waits for completion.
  void call_on(NodeId node, std::function<void()> fn);

  // ---- WorldControl: scheduled control events -------------------------------

  /// Best-effort scheduled driver event: executed by the thread inside
  /// run() when `now() >= t`, subject to scheduler jitter.  Must be called
  /// before run().
  void at(TimePoint t, std::function<void()> fn) override;

  /// Best-effort scheduled closure on `node`'s thread (posted at `t`).
  /// Must be called before run().
  void at_node(TimePoint t, NodeId node, std::function<void()> fn) override;

  void run_on_node(NodeId node, std::function<void()> fn) override {
    call_on(node, std::move(fn));
  }

  // ---- WorldControl: fault injection ---------------------------------------

  /// Crash-stop fault injection: the stack's thread stops processing and
  /// packets to it are dropped.  Crash-stop until recover().
  void crash(NodeId node) override;

  /// Joins a crashed stack's threads so the control thread can read its
  /// module state without racing the dying loop thread's final writes.
  void quiesce_node(NodeId node) override;

  /// Crash-recovery: joins the crashed stack's threads, resets the host
  /// (incarnation bumped, queue/timers cleared, RNG reseeded), replaces the
  /// Stack object and restarts the threads.  Call from the control thread
  /// (an at() closure or between run()s); compose modules afterwards via
  /// run_on_node.
  void recover(NodeId node) override;

  [[nodiscard]] bool crashed(NodeId node) const override;
  [[nodiscard]] std::set<NodeId> crashed_set() const override;

  void set_link_filter(
      std::function<bool(NodeId, NodeId)> deliverable) override;
  void set_loss(double drop_probability,
                double duplicate_probability) override;
  void set_link_fault(NodeId src, NodeId dst,
                      std::optional<LinkFault> fault) override;

  // ---- WorldControl: execution ---------------------------------------------

  /// Drives the world wall-clock: starts the stacks (if not yet started),
  /// fires scheduled control events until `active_until`, then polls
  /// `quiesced` (every ~100 ms, from this thread) and returns at the first
  /// true or at `deadline` — whichever comes first.  Without a `quiesced`
  /// callback the drain is capped at 2 s past `active_until`.  Stops and
  /// joins all stack threads before returning, so the caller may harvest
  /// module state without racing.  Always returns true (`max_events` is a
  /// simulator concept).
  bool run(TimePoint active_until, TimePoint deadline,
           std::uint64_t max_events,
           const std::function<bool()>& quiesced = nullptr) override;

  [[nodiscard]] std::uint64_t packets_sent() const override {
    return packets_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t packets_dropped() const override {
    return packets_dropped_.load(std::memory_order_relaxed);
  }

  // Socket-transport syscall amortization counters (kUdpSockets only):
  // datagrams staged per sendmmsg/recvmmsg call.  datagrams/syscalls is the
  // achieved amortization factor; on non-Linux builds the fallback path
  // reports 1:1.  Benches read these to show syscall count no longer
  // scaling with message count.
  [[nodiscard]] std::uint64_t socket_tx_syscalls() const {
    return socket_tx_syscalls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t socket_tx_datagrams() const {
    return socket_tx_datagrams_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t socket_rx_syscalls() const {
    return socket_rx_syscalls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t socket_rx_datagrams() const {
    return socket_rx_datagrams_.load(std::memory_order_relaxed);
  }

  /// Agent mode: this process hosts only config.local_node's stack.
  [[nodiscard]] bool agent_mode() const {
    return config_.local_node != kNoNode;
  }

 private:
  class RtHost;
  friend class RtHost;

  void route_packet(NodeId src, NodeId dst, Payload data);

  /// One receive-path fault verdict (agent mode): the same model
  /// route_packet applies at egress in-process, applied at ingress here
  /// because a real remote sender cannot consult this process's faults.
  struct IngressDecision {
    bool drop = false;
    int copies = 1;
    Duration extra_latency = 0;
  };
  [[nodiscard]] IngressDecision ingress_decision(NodeId src, NodeId dst);

  /// Destination address of `dst`'s socket: the peer table in agent mode,
  /// loopback base+dst otherwise.
  [[nodiscard]] sockaddr_in peer_sockaddr(NodeId dst) const;

  RtConfig config_;
  const ProtocolLibrary* library_ = nullptr;  // kept for recover()
  TraceSink* trace_ = nullptr;                // kept for recover()
  /// Resolved config_.peers (agent mode; empty otherwise).
  std::vector<sockaddr_in> peer_addrs_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<RtHost>> hosts_;
  std::vector<std::unique_ptr<Stack>> stacks_;
  bool started_ = false;
  /// World-global incarnation stamp for the next recovery (control thread
  /// only; see recover()).
  std::uint32_t next_incarnation_ = 1;

  struct ControlEvent {
    TimePoint at = 0;
    NodeId node = kNoNode;  // kNoNode: driver closure; else posted to node
    std::function<void()> fn;
  };
  std::vector<ControlEvent> schedule_;  // driver thread only, pre-run

  /// Cross-thread fault model (senders route concurrently with the control
  /// thread mutating this).  A plain mutex: scenario-scale packet rates are
  /// thousands/sec, far below contention territory.
  struct FaultModel {
    std::function<bool(NodeId, NodeId)> link_filter;
    double drop = 0.0;
    double duplicate = 0.0;
    LinkFaultTable link_faults;
  };
  mutable std::mutex fault_mutex_;
  FaultModel faults_;
  /// Dedicated thread for slow-link delay injection (see delay_wheel.hpp).
  /// Created by set_link_fault before the first extra_latency fault becomes
  /// visible; senders reach it only after observing such a fault under
  /// fault_mutex_, so the pointer read is ordered.  Joined in ~RtWorld.
  std::unique_ptr<DelayWheel> wheel_;

  void note_socket_tx(std::uint64_t syscalls, std::uint64_t datagrams) {
    socket_tx_syscalls_.fetch_add(syscalls, std::memory_order_relaxed);
    socket_tx_datagrams_.fetch_add(datagrams, std::memory_order_relaxed);
  }
  void note_socket_rx(std::uint64_t syscalls, std::uint64_t datagrams) {
    socket_rx_syscalls_.fetch_add(syscalls, std::memory_order_relaxed);
    socket_rx_datagrams_.fetch_add(datagrams, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> packets_sent_{0};
  std::atomic<std::uint64_t> packets_dropped_{0};
  std::atomic<std::uint64_t> socket_tx_syscalls_{0};
  std::atomic<std::uint64_t> socket_tx_datagrams_{0};
  std::atomic<std::uint64_t> socket_rx_syscalls_{0};
  std::atomic<std::uint64_t> socket_rx_datagrams_{0};
};

}  // namespace dpu
